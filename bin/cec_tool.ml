(* Combinational equivalence checking of two BENCH netlists.

   cec_tool A.bench B.bench [--engine mono|fraig|bdd] [--stats]
            [--jobs N] [--no-elim] [--inprocess] [--guide]
            [--metrics FILE.json] [--trace FILE.jsonl]

   The default engine is the fraiging pipeline: structural hashing,
   simulation-derived candidate classes, incremental SAT sweeping.
   "mono" solves the monolithic miter CNF; "bdd" compares canonical
   output functions.  The legacy --method spellings (sat, rl, aig,
   sweep) are kept as deprecated aliases. *)

open Cmdliner

let run a b engine method_ stats jobs no_elim inprocess guide metrics_path
    trace_path =
  let obs = Obs.setup ~tool:"cec_tool" metrics_path trace_path in
  let metrics = obs.Obs.metrics and trace = obs.Obs.trace in
  let c1 = Circuit.Bench_format.parse_file a in
  let c2 = Circuit.Bench_format.parse_file b in
  let engine =
    match (engine, method_) with
    | Some e, _ -> e
    | None, Some m ->
      Printf.eprintf "warning: --method is deprecated, use --engine\n%!";
      (match m with "sat" -> "mono" | "sweep" -> "fraig" | m -> m)
    | None, None -> "fraig"
  in
  if jobs > 1 && engine <> "mono" && engine <> "fraig" then begin
    Printf.eprintf "--jobs requires --engine mono or fraig\n";
    exit 2
  end;
  if guide && engine <> "fraig" then begin
    Printf.eprintf "--guide requires --engine fraig\n";
    exit 2
  end;
  let sweep_report = ref None in
  let report =
    match engine with
    | "fraig" ->
      let r = Eda.Sweep.check ~jobs ~guide ?metrics ?trace c1 c2 in
      sweep_report := Some r;
      {
        Eda.Equiv.verdict = r.Eda.Sweep.verdict;
        time_seconds = r.Eda.Sweep.times.Eda.Sweep.total_s;
        sat_stats = r.Eda.Sweep.solver_stats;
        bdd_nodes = r.Eda.Sweep.stats.Eda.Sweep.fraig_nodes;
      }
    | "mono" ->
      let config =
        { Sat.Types.default with Sat.Types.inprocessing = inprocess }
      in
      let engine =
        if jobs > 1 then
          Some
            (Sat.Solver.Portfolio
               { Sat.Portfolio.default_options with
                 Sat.Portfolio.jobs;
                 config })
        else Some (Sat.Solver.Cdcl config)
      in
      let pipeline =
        { Sat.Solver.full_pipeline with Sat.Solver.elim = not no_elim }
      in
      Eda.Equiv.check_sat ?metrics ?trace ?engine ~pipeline c1 c2
    | "bdd" -> Eda.Equiv.check_bdd c1 c2
    | "rl" -> Eda.Equiv.check_rl ?metrics ?trace ~depth:1 c1 c2
    | "aig" -> Eda.Equiv.check_aig c1 c2
    | other ->
      Printf.eprintf "unknown engine %s (mono|fraig|bdd)\n" other;
      exit 2
  in
  if stats then begin
    (match !sweep_report with
     | Some r ->
       let s = r.Eda.Sweep.stats and t = r.Eda.Sweep.times in
       Printf.printf
         "stats: aig_nodes=%d fraig_nodes=%d classes=%d candidates=%d \
          merges=%d refuted=%d skipped=%d refinement_rounds=%d \
          sat_calls=%d sim_words=%d\n"
         s.Eda.Sweep.aig_nodes s.Eda.Sweep.fraig_nodes s.Eda.Sweep.classes
         s.Eda.Sweep.candidates s.Eda.Sweep.merges s.Eda.Sweep.refuted
         s.Eda.Sweep.skipped s.Eda.Sweep.refinement_rounds
         s.Eda.Sweep.sat_calls s.Eda.Sweep.simulation_words;
       Printf.printf "phases: simulate=%.3fs refine=%.3fs prove=%.3fs\n"
         t.Eda.Sweep.simulate_s t.Eda.Sweep.refine_s t.Eda.Sweep.prove_s
     | None -> ());
    (match report.Eda.Equiv.sat_stats with
     | Some st ->
       Printf.printf "solver: decisions=%d conflicts=%d propagations=%d\n"
         st.Sat.Types.decisions st.Sat.Types.conflicts
         st.Sat.Types.propagations
     | None -> ())
  end;
  match report.Eda.Equiv.verdict with
  | Eda.Equiv.Equivalent ->
    Printf.printf "EQUIVALENT (%.3fs)\n" report.Eda.Equiv.time_seconds;
    exit 0
  | Eda.Equiv.Inequivalent v ->
    let bits = String.init (Array.length v) (fun i -> if v.(i) then '1' else '0') in
    Printf.printf "NOT EQUIVALENT: distinguishing input %s (%.3fs)\n" bits
      report.Eda.Equiv.time_seconds;
    exit 1
  | Eda.Equiv.Inconclusive why ->
    Printf.printf "INCONCLUSIVE: %s\n" why;
    exit 3

let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"first netlist")
let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"second netlist")

let engine =
  Arg.(value & opt (some string) None
       & info [ "engine" ]
         ~doc:"mono (one miter CNF), fraig (AIG sweeping; default) or bdd")

let method_ =
  Arg.(value & opt (some string) None
       & info [ "method" ]
         ~doc:"deprecated alias of --engine (sat=mono, sweep=fraig)")

let stats =
  Arg.(value & flag
       & info [ "stats" ]
         ~doc:"print per-phase times and sweep counters before the verdict")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs" ]
         ~doc:"mono: solve the miter with N diversified parallel workers; \
               fraig: escalate residual hard output pairs to \
               cube-and-conquer on N workers")

let no_elim =
  Arg.(value & flag
       & info [ "no-elim" ]
         ~doc:"disable bounded variable elimination on the miter CNF \
               (mono engine only)")

let inprocess =
  Arg.(value & flag
       & info [ "inprocess" ]
         ~doc:"simplify the learnt-clause database during search \
               (mono engine only)")

let guide =
  Arg.(value & flag
       & info [ "guide" ]
         ~doc:"fraig engine: seed each sweep query's activities and \
               phases from the simulation signatures and AIG fanout \
               counts (docs/TUNING.md); heuristic only, the verdict is \
               unchanged")

let cmd =
  Cmd.v
    (Cmd.info "cec_tool" ~doc:"combinational equivalence checker")
    Term.(const run $ a $ b $ engine $ method_ $ stats $ jobs $ no_elim
          $ inprocess $ guide $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
