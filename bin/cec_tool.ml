(* Combinational equivalence checking of two BENCH netlists.

   cec_tool A.bench B.bench [--method sat|bdd|rl|aig|sweep] [--jobs N]
            [--no-elim] [--inprocess]
            [--metrics FILE.json] [--trace FILE.jsonl] *)

open Cmdliner

let run a b method_ jobs no_elim inprocess metrics_path trace_path =
  let obs = Obs.setup ~tool:"cec_tool" metrics_path trace_path in
  let metrics = obs.Obs.metrics and trace = obs.Obs.trace in
  let c1 = Circuit.Bench_format.parse_file a in
  let c2 = Circuit.Bench_format.parse_file b in
  if jobs > 1 && method_ <> "sat" then begin
    Printf.eprintf "--jobs requires --method sat\n";
    exit 2
  end;
  let report =
    match method_ with
    | "sat" ->
      let config =
        { Sat.Types.default with Sat.Types.inprocessing = inprocess }
      in
      let engine =
        if jobs > 1 then
          Some
            (Sat.Solver.Portfolio
               { Sat.Portfolio.default_options with
                 Sat.Portfolio.jobs;
                 config })
        else Some (Sat.Solver.Cdcl config)
      in
      let pipeline =
        { Sat.Solver.full_pipeline with Sat.Solver.elim = not no_elim }
      in
      Eda.Equiv.check_sat ?metrics ?trace ?engine ~pipeline c1 c2
    | "bdd" -> Eda.Equiv.check_bdd c1 c2
    | "rl" -> Eda.Equiv.check_rl ?metrics ?trace ~depth:1 c1 c2
    | "aig" -> Eda.Equiv.check_aig c1 c2
    | "sweep" ->
      let r = Eda.Sweep.check c1 c2 in
      {
        Eda.Equiv.verdict = r.Eda.Sweep.verdict;
        time_seconds = r.Eda.Sweep.time_seconds;
        sat_stats = None;
        bdd_nodes = 0;
      }
    | other ->
      Printf.eprintf "unknown method %s (sat|bdd|rl|aig|sweep)\n" other;
      exit 2
  in
  match report.Eda.Equiv.verdict with
  | Eda.Equiv.Equivalent ->
    Printf.printf "EQUIVALENT (%.3fs)\n" report.Eda.Equiv.time_seconds;
    exit 0
  | Eda.Equiv.Inequivalent v ->
    let bits = String.init (Array.length v) (fun i -> if v.(i) then '1' else '0') in
    Printf.printf "NOT EQUIVALENT: distinguishing input %s (%.3fs)\n" bits
      report.Eda.Equiv.time_seconds;
    exit 1
  | Eda.Equiv.Inconclusive why ->
    Printf.printf "INCONCLUSIVE: %s\n" why;
    exit 3

let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"first netlist")
let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"second netlist")

let method_ =
  Arg.(value & opt string "sat"
       & info [ "method" ] ~doc:"sat, bdd, rl, aig or sweep")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs" ]
         ~doc:"solve the miter with N diversified parallel workers \
               (sat method only)")

let no_elim =
  Arg.(value & flag
       & info [ "no-elim" ]
         ~doc:"disable bounded variable elimination on the miter CNF \
               (sat method only)")

let inprocess =
  Arg.(value & flag
       & info [ "inprocess" ]
         ~doc:"simplify the learnt-clause database during search \
               (sat method only)")

let cmd =
  Cmd.v
    (Cmd.info "cec_tool" ~doc:"combinational equivalence checker")
    Term.(const run $ a $ b $ method_ $ jobs $ no_elim $ inprocess
          $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
