(* Bounded model checking of sequential circuits: either the built-in
   counter family or an ISCAS-89-style BENCH file with DFFs.

   bmc_tool [--bits N] [--buggy-at K] [--bound B] [--bench FILE --bad OUT]
            [--inprocess] [--guide] [--timeout SECS]
            [--metrics FILE.json] [--trace FILE.jsonl]
   bmc_tool --induction ... additionally attempts a k-induction proof.

   There is no --no-elim here: the incremental BMC encoder grows the
   formula frame by frame inside a session, where bounded variable
   elimination is never applied (see Solver.Incremental). *)

open Cmdliner

let run bits buggy_at bound bench bad induction explain from_scratch stats
    inprocess guide timeout metrics_path trace_path =
  let obs = Obs.setup ~tool:"bmc_tool" metrics_path trace_path in
  let config =
    { Sat.Types.default with Sat.Types.inprocessing = inprocess }
  in
  let seq =
    match bench with
    | Some path -> Circuit.Bench_format.parse_sequential_file path
    | None -> Circuit.Sequential.counter ~bits ~buggy_at
  in
  if induction then begin
    match
      Eda.Bmc.prove_inductive ?metrics:obs.Obs.metrics ~config ~bad_output:bad
        ~max_k:bound seq
    with
    | Eda.Bmc.Proved k -> Printf.printf "PROVED for all depths (k=%d)\n" k
    | Eda.Bmc.Refuted frames ->
      Printf.printf "REFUTED: counterexample of length %d\n"
        (List.length frames)
    | Eda.Bmc.Bound_reached ->
      Printf.printf "inconclusive up to k=%d\n" bound
  end;
  let r =
    Eda.Bmc.check ?metrics:obs.Obs.metrics ?trace:obs.Obs.trace ~config
      ~incremental:(not from_scratch) ~bad_output:bad ~guide ?timeout
      ~max_bound:bound seq
  in
  (match r.Eda.Bmc.result with
   | Eda.Bmc.Counterexample frames ->
     Printf.printf "counterexample of length %d:\n" (List.length frames);
     List.iteri
       (fun t f ->
          Printf.printf "  cycle %d: enable=%b\n" t f.(0))
       frames
   | Eda.Bmc.No_counterexample when r.Eda.Bmc.timed_out ->
     Printf.printf "UNKNOWN (timeout): no counterexample up to bound %d\n"
       (r.Eda.Bmc.bound_reached - 1)
   | Eda.Bmc.No_counterexample ->
     Printf.printf "no counterexample up to bound %d\n" r.Eda.Bmc.bound_reached);
  (match r.Eda.Bmc.result with
   | Eda.Bmc.No_counterexample
     when explain && r.Eda.Bmc.bound_reached >= 1 && not r.Eda.Bmc.timed_out
     -> (
     (* core-driven assumption minimization: which frames' transition
        logic does the final bound's refutation actually rest on? *)
     let b = r.Eda.Bmc.bound_reached in
     match Eda.Bmc.explain_bound ~config ~bad_output:bad ~bound:b seq with
     | Some frames ->
       Printf.printf "unreachability at bound %d depends on frames {%s}\n"
         (b - 1)
         (String.concat ", " (List.map string_of_int frames))
     | None -> print_endline "explain: counterexample found on re-encode")
   | _ -> ());
  if stats then begin
    Printf.printf "per-bound query stats (%s):\n"
      (if from_scratch then "from-scratch" else "incremental");
    Printf.printf "  %5s %10s %10s %12s %9s\n" "bound" "decisions" "conflicts"
      "propagations" "restarts";
    List.iter
      (fun (k, (st : Sat.Types.stats)) ->
         Printf.printf "  %5d %10d %10d %12d %9d\n" k st.Sat.Types.decisions
           st.Sat.Types.conflicts st.Sat.Types.propagations
           st.Sat.Types.restarts_done)
      r.Eda.Bmc.per_bound_stats;
    let t = r.Eda.Bmc.total_stats in
    Printf.printf "  %5s %10d %10d %12d %9d\n" "total" t.Sat.Types.decisions
      t.Sat.Types.conflicts t.Sat.Types.propagations t.Sat.Types.restarts_done;
    Printf.printf "frames encoded: %d\n" r.Eda.Bmc.frames_encoded;
    if t.Sat.Types.interrupts > 0 then
      Printf.printf "interrupted queries: %d\n" t.Sat.Types.interrupts
  end;
  Printf.printf "time %.3fs\n" r.Eda.Bmc.time_seconds

let bits = Arg.(value & opt int 4 & info [ "bits" ] ~doc:"counter width")

let buggy_at =
  Arg.(value & opt (some int) None & info [ "buggy-at" ] ~doc:"inject a jump bug at this count")

let bound = Arg.(value & opt int 20 & info [ "bound" ] ~doc:"maximum unrolling depth")

let bench =
  Arg.(value & opt (some file) None & info [ "bench" ] ~doc:"sequential BENCH netlist")

let bad =
  Arg.(value & opt string "bad" & info [ "bad" ] ~doc:"property output name")

let induction =
  Arg.(value & flag & info [ "induction" ] ~doc:"also attempt a k-induction proof")

let explain =
  Arg.(value & flag
       & info [ "explain" ]
         ~doc:"after a counterexample-free run, minimize the final \
               bound's assumptions (per-frame activation literals) to \
               report which frames the unreachability proof depends on")

let from_scratch =
  Arg.(value & flag
       & info [ "from-scratch" ]
         ~doc:"re-encode and re-solve every bound with a fresh solver")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"print per-bound query statistics")

let inprocess =
  Arg.(value & flag
       & info [ "inprocess" ]
         ~doc:"simplify the learnt-clause database during search")

let guide =
  Arg.(value & flag
       & info [ "guide" ]
         ~doc:"seed each newly encoded frame's activities and phases from \
               one simulation pass over the transition logic \
               (docs/TUNING.md); heuristic only")

let timeout =
  Arg.(value & opt (some float) None
       & info [ "timeout" ]
         ~doc:"wall-clock limit in seconds for the bounded check; partial \
               per-bound statistics are still reported")

let cmd =
  Cmd.v
    (Cmd.info "bmc_tool" ~doc:"bounded model checker demo")
    Term.(const run $ bits $ buggy_at $ bound $ bench $ bad $ induction
          $ explain $ from_scratch $ stats $ inprocess $ guide $ timeout
          $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
