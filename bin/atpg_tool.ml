(* ATPG over a BENCH-format netlist.

   atpg_tool FILE.bench [--no-fault-sim] [--structural] [--incremental]
             [--metrics FILE.json] [--trace FILE.jsonl] *)

open Cmdliner

let run path no_fault_sim structural incremental per_query metrics_path
    trace_path =
  let obs = Obs.setup ~tool:"atpg_tool" metrics_path trace_path in
  let c = Circuit.Bench_format.parse_file path in
  Format.printf "circuit: %a@." Circuit.Netlist.pp_stats c;
  let on_query f (st : Sat.Types.stats) =
    if per_query then
      Format.printf "  %a: %d decisions, %d conflicts, %d restarts@."
        (Eda.Atpg.pp_fault c) f st.Sat.Types.decisions st.Sat.Types.conflicts
        st.Sat.Types.restarts_done
  in
  let summary =
    if incremental || per_query || obs.Obs.trace <> None then
      Eda.Atpg.run_incremental ?metrics:obs.Obs.metrics ?trace:obs.Obs.trace
        ~on_query c
    else
      Eda.Atpg.run ?metrics:obs.Obs.metrics ~use_structural:structural
        ~fault_simulation:(not no_fault_sim) c
  in
  Format.printf "%a@." Eda.Atpg.pp_summary summary;
  let redundant = summary.Eda.Atpg.redundant in
  if redundant > 0 then
    Format.printf "%d redundant fault(s): the circuit contains removable logic@."
      redundant

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"BENCH netlist")

let no_fault_sim =
  Arg.(value & flag & info [ "no-fault-sim" ] ~doc:"disable fault simulation")

let structural =
  Arg.(value & flag & info [ "structural" ] ~doc:"use the Section 5 circuit layer")

let incremental =
  Arg.(value & flag & info [ "incremental" ] ~doc:"one incremental solver for all faults")

let per_query =
  Arg.(value & flag
       & info [ "per-query" ]
         ~doc:"print per-fault solver statistics (implies --incremental)")

let cmd =
  Cmd.v
    (Cmd.info "atpg_tool" ~doc:"stuck-at test pattern generation")
    Term.(const run $ file $ no_fault_sim $ structural $ incremental
          $ per_query $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
