(* DIMACS CNF solver front-end.

   satsolve FILE [--engine cdcl|dpll|walksat] [--preprocess] [--no-elim]
                 [--inprocess] [--equiv] [--rl DEPTH] [--seed N] [--stats]
                 [--jobs N] [--timeout SECS] [--no-share] [--share-lbd N]
                 [--cube-conquer] [--cube-depth N] [--cube-cutoff N]
                 [--auto] [--explain-tuning] [--guide]
                 [--proof FILE] [--check] [--core FILE]
                 [--metrics FILE.json] [--trace FILE.jsonl]              *)

open Cmdliner

(* read all of stdin (a pipe: no length to preallocate) *)
let read_stdin () =
  let b = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input stdin chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes b chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents b

let solve_file path engine_name preprocess no_elim inprocess equiv rl seed
    stats certify jobs timeout no_share share_lbd cube_conquer cube_depth
    cube_cutoff auto explain_tuning guide proof_path check core_path
    metrics_path trace_path =
  let obs = Obs.setup ~tool:"satsolve" metrics_path trace_path in
  let auto = auto || explain_tuning in
  let want_proof = proof_path <> None || check || core_path <> None in
  if want_proof
     && (engine_name <> "cdcl" || jobs > 1 || cube_conquer || timeout <> None)
  then begin
    Printf.eprintf
      "satsolve: --proof/--check/--core need the sequential cdcl engine \
       (no --jobs/--cube-conquer/--timeout): parallel workers import \
       clauses their own proofs cannot justify\n";
    exit 2
  end;
  if auto
     && (want_proof || certify || cube_conquer || engine_name <> "cdcl"
         || timeout <> None)
  then begin
    Printf.eprintf
      "satsolve: --auto picks the engine and pipeline itself; it is \
       incompatible with --proof/--check/--core/--certify/--cube-conquer/\
       --timeout and non-cdcl --engine\n";
    exit 2
  end;
  if auto && guide then begin
    Printf.eprintf
      "satsolve: --auto decides guidance from the decision table; drop \
       --guide\n";
    exit 2
  end;
  let formula =
    if path = "-" then Cnf.Dimacs.parse_string (read_stdin ())
    else if Sys.file_exists path then Cnf.Dimacs.parse_file path
    else begin
      Printf.eprintf "satsolve: no such file %s\n" path;
      exit 2
    end
  in
  let config =
    { Sat.Types.default with
      Sat.Types.random_seed = seed;
      inprocessing = inprocess;
      proof_logging = want_proof }
  in
  let config =
    if guide then begin
      let g = Sat.Guide.of_formula formula in
      Option.iter (fun m -> Sat.Guide.emit_metrics m g) obs.Obs.metrics;
      Sat.Guide.apply_config g config
    end
    else config
  in
  if certify then begin
    let outcome, verdict = Sat.Proof.solve_certified ~config formula in
    (match outcome with
     | Sat.Types.Sat _ -> print_endline "s SATISFIABLE"
     | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
       print_endline "s UNSATISFIABLE"
     | Sat.Types.Unknown why -> Printf.printf "s UNKNOWN (%s)\n" why);
    (match verdict with
     | Sat.Proof.Valid_refutation ->
       print_endline "c proof: valid refutation (UNSAT certified)"
     | Sat.Proof.Valid_derivation ->
       print_endline "c proof: all learned clauses verified"
     | Sat.Proof.Invalid_step i ->
       Printf.printf "c proof: INVALID at step %d\n" i);
    (* SAT-competition exit codes, same as the plain path: an UNSAT
       answer only earns 20 when the refutation checks out *)
    exit
      (match outcome, verdict with
       | Sat.Types.Sat _, _ -> 10
       | (Sat.Types.Unsat | Sat.Types.Unsat_assuming _),
         Sat.Proof.Valid_refutation -> 20
       | Sat.Types.Unknown _, _ -> 0
       | _ -> 2)
  end;
  let solve_manual () =
    let sharing =
      { Sat.Portfolio.default_sharing with
        Sat.Portfolio.share = not no_share;
        max_lbd = share_lbd }
    in
    let engine =
      match engine_name with
      | "cdcl" when cube_conquer ->
        Sat.Solver.Cube_conquer
          {
            Sat.Conquer.default_options with
            Sat.Conquer.jobs = max 1 jobs;
            cube =
              { Sat.Cube.default_options with
                Sat.Cube.depth = cube_depth;
                seed };
            config;
            sharing;
            cutoff = cube_cutoff;
            timeout;
          }
      | "cdcl" ->
        (* --jobs 1 without a timeout takes the plain sequential path
           bit-for-bit; a portfolio wrapper only enters for N > 1 or when
           a wall clock must be enforced *)
        if jobs > 1 || timeout <> None then
          Sat.Solver.Portfolio
            {
              Sat.Portfolio.jobs;
              config;
              sharing;
              timeout;
              metrics = None;
              trace = None;
            }
        else Sat.Solver.Cdcl config
      | "dpll" -> Sat.Solver.Dpll config
      | "walksat" ->
        Sat.Solver.Walksat
          { Sat.Local_search.default with Sat.Local_search.seed }
      | other ->
        Printf.eprintf "unknown engine %s (cdcl|dpll|walksat)\n" other;
        exit 2
    in
    if jobs > 1 && engine_name <> "cdcl" then begin
      Printf.eprintf "--jobs requires the cdcl engine\n";
      exit 2
    end;
    if cube_conquer && engine_name <> "cdcl" then begin
      Printf.eprintf "--cube-conquer requires the cdcl engine\n";
      exit 2
    end;
    let pipeline =
      {
        Sat.Solver.preprocess;
        elim = not no_elim;
        probe_failed_literals = false;
        equivalence = equiv;
        recursive_learning = rl;
      }
    in
    Sat.Solver.solve ?metrics:obs.Obs.metrics ?trace:obs.Obs.trace ~engine
      ~pipeline formula
  in
  let report =
    if auto then begin
      let plan, report =
        Sat.Solver.Auto.solve ?metrics:obs.Obs.metrics ?trace:obs.Obs.trace
          ~jobs ~config formula
      in
      if explain_tuning then begin
        List.iter
          (fun (name, v) -> Printf.printf "c autotune feature %s %g\n" name v)
          (Sat.Autotune.feature_fields plan.Sat.Solver.Auto.features);
        let p = plan.Sat.Solver.Auto.policy in
        Printf.printf
          "c autotune policy engine=%s preprocess=%s restarts=%s \
           inprocessing=%b guided=%b\n"
          (Sat.Autotune.engine_label p.Sat.Autotune.engine)
          (Sat.Autotune.preprocess_label p.Sat.Autotune.preprocess)
          (Sat.Autotune.restarts_label p.Sat.Autotune.restarts)
          p.Sat.Autotune.inprocessing p.Sat.Autotune.guided;
        Printf.printf "c autotune rules %s\n"
          (String.concat " " p.Sat.Autotune.reason)
      end;
      report
    end
    else solve_manual ()
  in
  (match report.Sat.Solver.outcome with
   | Sat.Types.Sat m ->
     print_endline "s SATISFIABLE";
     let buf = Buffer.create 256 in
     Buffer.add_string buf "v ";
     Array.iteri
       (fun v b ->
          Buffer.add_string buf (string_of_int (if b then v + 1 else -(v + 1)));
          Buffer.add_char buf ' ')
       m;
     Buffer.add_string buf "0";
     print_endline (Buffer.contents buf)
   | Sat.Types.Unsat -> print_endline "s UNSATISFIABLE"
   | Sat.Types.Unsat_assuming _ -> print_endline "s UNSATISFIABLE"
   | Sat.Types.Unknown why -> Printf.printf "s UNKNOWN (%s)\n" why);
  if stats then begin
    Printf.printf "c time %.4fs\n" report.Sat.Solver.time_seconds;
    (match report.Sat.Solver.solver_stats with
     | Some st -> Format.printf "c %a@." Sat.Types.pp_stats st
     | None -> ());
    (match report.Sat.Solver.preprocess_stats with
     | Some p -> Format.printf "c preprocess %a@." Sat.Preprocess.pp_stats p
     | None -> ());
    if report.Sat.Solver.equivalence_merged > 0 then
      Printf.printf "c equivalence merged %d vars\n"
        report.Sat.Solver.equivalence_merged
  end;
  let steps = Option.value report.Sat.Solver.proof ~default:[] in
  (match proof_path with
   | Some out ->
     Sat.Proof.write_drat_file out steps;
     Printf.printf "c proof: %d steps written to %s\n" (List.length steps) out
   | None -> ());
  (* with --check or --core, an UNSAT answer must survive our own
     backward trim before it earns exit 20 *)
  let verified =
    match report.Sat.Solver.outcome with
    | (Sat.Types.Unsat | Sat.Types.Unsat_assuming _) when check || core_path <> None
      -> (
      match Sat.Proof.trim formula steps with
      | Sat.Proof.Trimmed { lines; core; kept_adds; total_adds } ->
        Printf.printf "c check: refutation verified (%d/%d additions kept)\n"
          kept_adds total_adds;
        (match core_path with
         | Some out ->
           Cnf.Dimacs.write_file out (Sat.Proof.core_formula formula core);
           Printf.printf "c core: %d of %d clauses written to %s\n"
             (List.length core)
             (Cnf.Formula.nclauses formula)
             out
         | None -> ());
        ignore lines;
        true
      | Sat.Proof.Not_refutation ->
        print_endline "c check: FAILED (proof is not a refutation)";
        false
      | Sat.Proof.Trim_invalid i ->
        Printf.printf "c check: FAILED (invalid step %d)\n" i;
        false)
    | _ -> true
  in
  match report.Sat.Solver.outcome with
  | Sat.Types.Sat _ -> exit 10
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
    exit (if verified then 20 else 2)
  | Sat.Types.Unknown _ -> exit 0

let file =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"DIMACS CNF file, or - for stdin")

let engine =
  Arg.(value & opt string "cdcl" & info [ "engine" ] ~doc:"cdcl, dpll or walksat")

let preprocess = Arg.(value & flag & info [ "preprocess" ] ~doc:"enable preprocessing")

let no_elim =
  Arg.(value & flag
       & info [ "no-elim" ]
         ~doc:"disable bounded variable elimination within --preprocess \
               (elimination is proof-complete: it emits its resolvent \
               additions and clause deletions into --proof streams)")

let inprocess =
  Arg.(value & flag
       & info [ "inprocess" ]
         ~doc:"simplify the learnt-clause database during search \
               (subsumption + vivification at restart boundaries)")
let equiv = Arg.(value & flag & info [ "equiv" ] ~doc:"equivalency reasoning")
let rl = Arg.(value & opt int 0 & info [ "rl" ] ~doc:"recursive learning depth")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"print statistics")

let certify =
  Arg.(value & flag & info [ "certify" ] ~doc:"check the learned-clause proof")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs" ]
         ~doc:"solve with N diversified parallel workers (cdcl engine); \
               1 is the plain sequential solver")

let timeout =
  Arg.(value & opt (some float) None
       & info [ "timeout" ]
         ~doc:"wall-clock limit in seconds (cdcl engine); reports UNKNOWN \
               (timeout)")

let no_share =
  Arg.(value & flag
       & info [ "no-share" ] ~doc:"disable learned-clause sharing between workers")

let share_lbd =
  Arg.(value & opt int Sat.Portfolio.default_sharing.Sat.Portfolio.max_lbd
       & info [ "share-lbd" ]
         ~doc:"share learned clauses with LBD at most N between workers \
               (portfolio and cube-conquer)")

let cube_conquer =
  Arg.(value & flag
       & info [ "cube-conquer" ]
         ~doc:"cube-and-conquer: split the formula into cubes by lookahead, \
               then solve them on --jobs work-stealing workers (cdcl engine)")

let cube_depth =
  Arg.(value & opt int Sat.Cube.default_options.Sat.Cube.depth
       & info [ "cube-depth" ]
         ~doc:"emit cubes after N lookahead decisions (--cube-conquer)")

let cube_cutoff =
  Arg.(value & opt int 10_000
       & info [ "cube-cutoff" ]
         ~doc:"conflict budget per cube before it is split dynamically \
               (--cube-conquer)")

let auto =
  Arg.(value & flag
       & info [ "auto" ]
         ~doc:"per-instance auto-tuning: measure the formula (clause shape \
               + probe-measured propagation density) and pick the engine, \
               preprocessing, restart schedule, inprocessing and guidance \
               from the published decision table (docs/TUNING.md).  \
               Answers are unchanged; incompatible with --proof/--check/\
               --core/--certify/--cube-conquer/--timeout and non-cdcl \
               engines.  --jobs bounds the parallelism the table may use")

let explain_tuning =
  Arg.(value & flag
       & info [ "explain-tuning" ]
         ~doc:"imply --auto and print the measured features, the chosen \
               policy and the decision-table rules that fired as \
               $(i,c autotune) comment lines (checkable by hand against \
               docs/TUNING.md)")

let guide =
  Arg.(value & flag
       & info [ "guide" ]
         ~doc:"seed VSIDS activities and saved phases from the formula's \
               literal-weight profile (Jeroslow-Wang, docs/TUNING.md) \
               before search; purely heuristic, works with any cdcl path")

let proof_path =
  Arg.(value & opt (some string) None
       & info [ "proof" ] ~docv:"FILE"
         ~doc:"write the DRAT proof (additions and deletions) to FILE; \
               needs the sequential cdcl engine")

let check_flag =
  Arg.(value & flag
       & info [ "check" ]
         ~doc:"on UNSAT, trim and verify the proof in-memory with the \
               built-in backward checker; exit 20 only when the \
               refutation verifies (2 otherwise)")

let core_path =
  Arg.(value & opt (some string) None
       & info [ "core" ] ~docv:"FILE"
         ~doc:"on UNSAT, write the unsat core (original clauses the \
               trimmed proof depends on) to FILE in DIMACS; implies the \
               verification of --check")

let cmd =
  Cmd.v
    (Cmd.info "satsolve" ~doc:"SAT solver for DIMACS CNF")
    Term.(const solve_file $ file $ engine $ preprocess $ no_elim $ inprocess
          $ equiv $ rl $ seed $ stats $ certify $ jobs $ timeout $ no_share
          $ share_lbd $ cube_conquer $ cube_depth $ cube_cutoff
          $ auto $ explain_tuning $ guide
          $ proof_path $ check_flag $ core_path
          $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
