(* Shared --metrics / --trace plumbing for the CLI tools.

   [setup ~tool] allocates a registry and/or trace sink when the
   corresponding flag was given and registers at_exit writers, so the
   files are emitted even when a tool leaves through [exit] — the
   SAT-competition exit codes make that the normal path.  The JSON
   schemas are documented in docs/METRICS.md. *)

open Cmdliner

type t = {
  metrics : Sat.Metrics.t option;
  trace : Sat.Trace.sink option;
}

let metrics_term =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
         ~doc:"write a versioned JSON metrics snapshot to $(docv) on exit \
               (schema documented in docs/METRICS.md)")

let trace_term =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
         ~doc:"write the structured solver event trace to $(docv) as JSON \
               Lines on exit (schema documented in docs/METRICS.md)")

let setup ~tool metrics_path trace_path =
  let metrics =
    Option.map
      (fun path ->
         let m = Sat.Metrics.create () in
         at_exit (fun () -> Sat.Metrics.write_file ~tool m path);
         m)
      metrics_path
  in
  let trace =
    Option.map
      (fun path ->
         let s = Sat.Trace.make_sink () in
         at_exit (fun () -> Sat.Trace.write_file ~tool [ s ] path);
         s)
      trace_path
  in
  { metrics; trace }
