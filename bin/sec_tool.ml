(* Sequential equivalence checking of two DFF BENCH netlists.

   sec_tool A.bench B.bench [--max-k K] [--bound B] [--jobs N]
            [--metrics FILE.json] [--trace FILE.jsonl] *)

open Cmdliner

let run a b max_k bound jobs metrics_path trace_path =
  let obs = Obs.setup ~tool:"sec_tool" metrics_path trace_path in
  let s1 = Circuit.Bench_format.parse_sequential_file a in
  let s2 = Circuit.Bench_format.parse_sequential_file b in
  match
    Eda.Seq_equiv.check ?metrics:obs.Obs.metrics ?trace:obs.Obs.trace ~max_k
      ~bound ~jobs s1 s2
  with
  | Eda.Seq_equiv.Equivalent k ->
    Printf.printf "EQUIVALENT for all input sequences (k=%d induction)\n" k;
    exit 0
  | Eda.Seq_equiv.Bounded_equivalent n ->
    Printf.printf "no difference within %d cycles (not proven beyond)\n" n;
    exit 3
  | Eda.Seq_equiv.Different frames ->
    Printf.printf "DIFFERENT: distinguishing sequence of %d cycles\n"
      (List.length frames);
    List.iteri
      (fun t f ->
         let bits =
           String.init (Array.length f) (fun i -> if f.(i) then '1' else '0')
         in
         Printf.printf "  cycle %d: %s\n" t bits)
      frames;
    exit 1

let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"first design")
let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"second design")
let max_k = Arg.(value & opt int 4 & info [ "max-k" ] ~doc:"induction depth limit")
let bound = Arg.(value & opt int 16 & info [ "bound" ] ~doc:"bounded-search fallback depth")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs" ]
         ~doc:"with 2 or more, race the induction chain against the \
               bounded search on separate domains")

let cmd =
  Cmd.v
    (Cmd.info "sec_tool" ~doc:"sequential equivalence checker")
    Term.(const run $ a $ b $ max_k $ bound $ jobs $ Obs.metrics_term
          $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
