(* Command-line client for the satd daemon.

   satc solve FILE [-a LITS] [--timeout-ms N] [--max-conflicts N]
              [--tenant T] [--no-cache]
   satc ping | stats | shutdown
   Common: --socket PATH | --tcp HOST:PORT                               *)

open Cmdliner

let split_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg "expected HOST:PORT")
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p > 0 && p < 65536 ->
       Ok ((if host = "" then "127.0.0.1" else host), p)
     | _ -> Error (`Msg "expected HOST:PORT"))

let hostport =
  Arg.conv
    (split_hostport,
     fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let connect socket tcp =
  match socket, tcp with
  | Some path, _ ->
    (try Service.Client.connect_unix path
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "satc: cannot connect to %s (%s)\n" path
         (Unix.error_message e);
       exit 2)
  | None, Some (host, port) ->
    (try Service.Client.connect_tcp host port
     with
     | Unix.Unix_error (e, _, _) ->
       Printf.eprintf "satc: cannot connect to %s:%d (%s)\n" host port
         (Unix.error_message e);
       exit 2
     | Not_found ->
       Printf.eprintf "satc: cannot resolve %s\n" host;
       exit 2)
  | None, None ->
    Printf.eprintf "satc: one of --socket or --tcp is required\n";
    exit 2

let fail_reply what = function
  | Error e ->
    Printf.eprintf "satc: %s failed: %s\n" what e;
    exit 2
  | Ok (r : Service.Protocol.reply) ->
    (match r.Service.Protocol.r_error with
     | Some (code, msg) ->
       Printf.eprintf "satc: %s: %s (%s)\n" what
         (Service.Protocol.error_code_string code)
         msg;
       exit
         (match code with Service.Protocol.Overloaded -> 3 | _ -> 2)
     | None -> r)

(* read all of stdin (a pipe: no length to preallocate) *)
let read_stdin () =
  let b = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input stdin chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes b chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents b

let load_formula path =
  let f =
    if path = "-" then Cnf.Dimacs.parse_string (read_stdin ())
    else if Sys.file_exists path then Cnf.Dimacs.parse_file path
    else begin
      Printf.eprintf "satc: no such file %s\n" path;
      exit 2
    end
  in
  let clauses = ref [] in
  Cnf.Formula.iter_clauses f (fun c ->
      clauses :=
        List.map Cnf.Lit.to_dimacs (Cnf.Clause.to_list c) :: !clauses);
  (List.rev !clauses, Cnf.Formula.nvars f)

let solve_cmd socket tcp file assumptions timeout_ms max_conflicts tenant
    no_cache quiet =
  let clauses, nvars = load_formula file in
  let params =
    Service.Protocol.mk_solve ~nvars ~assumptions ?timeout_ms ?max_conflicts
      ~tenant ~use_cache:(not no_cache) clauses
  in
  let c = connect socket tcp in
  let r = fail_reply "solve" (Service.Client.solve c params) in
  Service.Client.close c;
  (match r.Service.Protocol.r_status with
   | "sat" ->
     print_endline "s SATISFIABLE";
     (match r.Service.Protocol.r_model with
      | Some m when not quiet ->
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v ";
        Array.iteri
          (fun v b ->
             Buffer.add_string
               buf
               (string_of_int (if b then v + 1 else -(v + 1)));
             Buffer.add_char buf ' ')
          m;
        Buffer.add_string buf "0";
        print_endline (Buffer.contents buf)
      | _ -> ())
   | "unsat" -> print_endline "s UNSATISFIABLE"
   | "unknown" ->
     Printf.printf "s UNKNOWN (%s)\n"
       (Option.value ~default:"?" r.Service.Protocol.r_reason)
   | other -> Printf.printf "s UNKNOWN (unexpected status %s)\n" other);
  if not quiet then
    Printf.printf "c service time %.4fs%s%s\n"
      r.Service.Protocol.r_time_s
      (if r.Service.Protocol.r_cached then " (cached)" else "")
      (if r.Service.Protocol.r_warm then " (warm session)" else "");
  (* SAT-competition exit codes, like satsolve *)
  match r.Service.Protocol.r_status with
  | "sat" -> exit 10
  | "unsat" -> exit 20
  | _ -> exit 0

let ping_cmd socket tcp =
  let c = connect socket tcp in
  let _ = fail_reply "ping" (Service.Client.ping c) in
  Service.Client.close c;
  print_endline "ok"

let stats_cmd socket tcp =
  let c = connect socket tcp in
  let r = fail_reply "stats" (Service.Client.stats c) in
  Service.Client.close c;
  match r.Service.Protocol.r_data with
  | Some data -> print_endline (Sat.Json.to_string data)
  | None ->
    Printf.eprintf "satc: stats reply carried no data\n";
    exit 2

let shutdown_cmd socket tcp =
  let c = connect socket tcp in
  let _ = fail_reply "shutdown" (Service.Client.shutdown c) in
  Service.Client.close c;
  print_endline "ok"

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket"; "s" ] ~docv:"PATH"
         ~doc:"connect to a Unix-domain socket at $(docv)")

let tcp =
  Arg.(value & opt (some hostport) None
       & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"connect to a TCP address")

let file =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"DIMACS CNF file, or - for stdin")

let assumptions =
  Arg.(value & opt (list int) []
       & info [ "assume"; "a" ] ~docv:"LITS"
         ~doc:"comma-separated DIMACS literals assumed for this query")

let timeout_ms =
  Arg.(value & opt (some int) None
       & info [ "timeout-ms" ] ~doc:"wall-clock deadline in milliseconds")

let max_conflicts =
  Arg.(value & opt (some int) None
       & info [ "max-conflicts" ] ~doc:"per-query conflict budget")

let tenant =
  Arg.(value & opt string "default"
       & info [ "tenant" ] ~doc:"metrics-rollup tenant name")

let no_cache =
  Arg.(value & flag
       & info [ "no-cache" ]
         ~doc:"bypass the daemon's result cache and warm-session pool")

let quiet =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"status line only (no model, no timing)")

let solve_c =
  Cmd.v
    (Cmd.info "solve" ~doc:"submit one DIMACS CNF query")
    Term.(const solve_cmd $ socket $ tcp $ file $ assumptions $ timeout_ms
          $ max_conflicts $ tenant $ no_cache $ quiet)

let ping_c =
  Cmd.v (Cmd.info "ping" ~doc:"liveness check")
    Term.(const ping_cmd $ socket $ tcp)

let stats_c =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"print the daemon's service/cache/tenant metrics as JSON")
    Term.(const stats_cmd $ socket $ tcp)

let shutdown_c =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"drain in-flight queries and stop the daemon")
    Term.(const shutdown_cmd $ socket $ tcp)

let cmd =
  Cmd.group
    (Cmd.info "satc" ~doc:"client for the satd SAT service daemon")
    [ solve_c; ping_c; stats_c; shutdown_c ]

let () = exit (Cmd.eval cmd)
