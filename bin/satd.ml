(* The SAT service daemon.

   satd --socket /tmp/satd.sock [--tcp HOST:PORT] [--jobs N]
        [--max-queue N] [--max-conflicts N] [--cube-threshold N] [--auto]
        [--cache-results N] [--cache-sessions N] [--verbose]              *)

open Cmdliner

let split_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg "expected HOST:PORT")
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p > 0 && p < 65536 ->
       Ok ((if host = "" then "127.0.0.1" else host), p)
     | _ -> Error (`Msg "expected HOST:PORT"))

let hostport =
  Arg.conv
    (split_hostport,
     fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let run socket tcp jobs max_queue max_conflicts_cap cube_threshold autotune
    max_results max_sessions verbose =
  if socket = None && tcp = None then begin
    Printf.eprintf "satd: at least one of --socket or --tcp is required\n";
    exit 2
  end;
  let cfg =
    { Service.Server.default_config with
      Service.Server.unix_path = socket;
      tcp;
      jobs;
      max_queue;
      max_conflicts_cap;
      cube_threshold;
      autotune;
      max_results;
      max_sessions;
      verbose }
  in
  let server =
    try Service.Server.create cfg
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "satd: cannot listen (%s %s: %s)\n" fn arg
        (Unix.error_message e);
      exit 2
  in
  (* SIGINT/SIGTERM drain gracefully, like a shutdown verb *)
  let request_stop _ = Service.Server.stop server in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  if verbose then begin
    (match socket with
     | Some p -> Printf.eprintf "satd: listening on unix:%s\n%!" p
     | None -> ());
    (match tcp with
     | Some (h, p) -> Printf.eprintf "satd: listening on tcp:%s:%d\n%!" h p
     | None -> ())
  end;
  Service.Server.run server

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket"; "s" ] ~docv:"PATH"
         ~doc:"listen on a Unix-domain socket at $(docv)")

let tcp =
  Arg.(value & opt (some hostport) None
       & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"listen on a TCP address")

let jobs =
  Arg.(value
       & opt int Service.Server.default_config.Service.Server.jobs
       & info [ "jobs"; "j" ]
         ~doc:"worker domains solving queries concurrently")

let max_queue =
  Arg.(value & opt int 128
       & info [ "max-queue" ]
         ~doc:"admission control: queries queued beyond this are refused \
               with an $(i,overloaded) error")

let max_conflicts_cap =
  Arg.(value & opt (some int) None
       & info [ "max-conflicts" ]
         ~doc:"server-wide cap on every query's conflict budget")

let cube_threshold =
  Arg.(value & opt (some int) None
       & info [ "cube-threshold" ]
         ~doc:"decompose unbudgeted assumption-free queries with at least \
               this many clauses by cube-and-conquer across the worker \
               domains (off by default)")

let autotune =
  Arg.(value & flag
       & info [ "auto" ]
         ~doc:"auto-tune each cold unbudgeted query: measure its CNF \
               (docs/TUNING.md feature set, 16 probes) and pick restarts, \
               inprocessing and guidance from the decision table; warm \
               and budgeted queries are untouched")

let max_results =
  Arg.(value & opt int 4096
       & info [ "cache-results" ] ~doc:"result-cache capacity (entries)")

let max_sessions =
  Arg.(value & opt int 64
       & info [ "cache-sessions" ] ~doc:"warm-session-pool capacity")

let verbose =
  Arg.(value & flag
       & info [ "verbose"; "v" ] ~doc:"log connections and queries to stderr")

let cmd =
  Cmd.v
    (Cmd.info "satd"
       ~doc:"multi-tenant SAT solving daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Serves SAT queries over line-delimited JSON (one frame per \
              line) on a Unix-domain socket and/or a TCP address.  \
              Concurrent queries are scheduled onto a bounded pool of \
              worker domains; repeated formulas answer from a result \
              cache, and incrementally grown formulas resume on pooled \
              warm sessions with learned clauses intact.  See \
              docs/SATD.md for the protocol.";
         ])
    Term.(const run $ socket $ tcp $ jobs $ max_queue $ max_conflicts_cap
          $ cube_threshold $ autotune $ max_results $ max_sessions $ verbose)

let () = exit (Cmd.eval cmd)
