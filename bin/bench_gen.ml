(* Emit the built-in circuit generators as BENCH files, or miter CNFs.

   bench_gen FAMILY [--bits N] [--seed S] [-o FILE] [--metrics FILE.json]
             [--miter-with FAMILY2 --cnf]
   families: c17 fig1 fig3 ripple carryskip kogge multiplier wallace
             comparator parity mux alu random majority barrel decoder
             priority *)

open Cmdliner

let run family bits seed out miter_with cnf metrics_path trace_path =
  let obs = Obs.setup ~tool:"bench_gen" metrics_path trace_path in
  let generate family =
    match family with
    | "c17" -> Circuit.Generators.c17 ()
    | "fig1" -> Circuit.Generators.fig1 ()
    | "fig3" -> Circuit.Generators.fig3 ()
    | "ripple" -> Circuit.Generators.ripple_adder ~bits
    | "carryskip" -> Circuit.Generators.carry_skip_adder ~bits ~block:(max 1 (bits / 2))
    | "kogge" -> Circuit.Generators.kogge_stone_adder ~bits
    | "multiplier" -> Circuit.Generators.multiplier ~bits
    | "wallace" -> Circuit.Generators.wallace_multiplier ~bits
    | "comparator" -> Circuit.Generators.comparator ~bits
    | "parity" -> Circuit.Generators.parity ~bits
    | "mux" -> Circuit.Generators.mux_tree ~select_bits:bits
    | "alu" -> Circuit.Generators.alu ~bits
    | "random" -> Circuit.Generators.random_circuit ~inputs:bits ~gates:(bits * 6) ~seed
    | "majority" -> Circuit.Generators.majority3 ()
    | "barrel" -> Circuit.Generators.barrel_shifter ~bits
    | "decoder" -> Circuit.Generators.decoder ~select_bits:bits
    | "priority" -> Circuit.Generators.priority_encoder ~bits
    | other ->
      Printf.eprintf "unknown family %s\n" other;
      exit 2
  in
  let circuit = generate family in
  (* no solving happens here; the snapshot records the generated shape *)
  Option.iter
    (fun m ->
       let set name v = Sat.Metrics.set_counter (Sat.Metrics.counter m name) v in
       set "circuit/nodes" (Circuit.Netlist.num_nodes circuit);
       set "circuit/inputs" (List.length (Circuit.Netlist.inputs circuit));
       set "circuit/outputs"
         (List.length (Circuit.Netlist.outputs circuit)))
    obs.Obs.metrics;
  if cnf && miter_with = None then begin
    Printf.eprintf "bench_gen: --cnf needs --miter-with FAMILY2 (a lone \
                    circuit's Tseitin CNF is trivially satisfiable)\n";
    exit 2
  end;
  let text =
    match miter_with with
    | None -> Circuit.Bench_format.to_string circuit
    | Some family2 ->
      if not cnf then begin
        Printf.eprintf "bench_gen: --miter-with needs --cnf\n";
        exit 2
      end;
      let other = generate family2 in
      (match Circuit.Miter.to_cnf circuit other with
       | f, _map ->
         Printf.ksprintf
           (fun header -> header ^ Cnf.Dimacs.to_string f)
           "c miter %s vs %s (bits %d, seed %d): UNSAT iff equivalent\n"
           family family2 bits seed
       | exception Invalid_argument msg ->
         Printf.eprintf "bench_gen: %s\n" msg;
         exit 2)
  in
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    if miter_with = None then
      Format.printf "%s: %a@." path Circuit.Netlist.pp_stats circuit
    else Printf.printf "%s: miter CNF written\n" path
  | None -> print_string text

let family =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc:"circuit family")

let bits = Arg.(value & opt int 4 & info [ "bits" ] ~doc:"size parameter")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")
let out = Arg.(value & opt (some string) None & info [ "o" ] ~doc:"output file")

let miter_with =
  Arg.(value & opt (some string) None
       & info [ "miter-with" ] ~docv:"FAMILY2"
         ~doc:"build the equivalence miter of FAMILY against FAMILY2 \
               (same --bits/--seed); with --cnf, emit it as DIMACS — \
               UNSAT iff the two circuits are equivalent")

let cnf =
  Arg.(value & flag
       & info [ "cnf" ]
         ~doc:"emit DIMACS CNF instead of BENCH (requires --miter-with)")

let cmd =
  Cmd.v
    (Cmd.info "bench_gen" ~doc:"generate benchmark netlists and miter CNFs")
    Term.(const run $ family $ bits $ seed $ out $ miter_with $ cnf
          $ Obs.metrics_term $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
