(* Emit the built-in circuit generators as BENCH files.

   bench_gen FAMILY [--bits N] [--seed S] [-o FILE] [--metrics FILE.json]
   families: c17 fig1 fig3 ripple carryskip kogge multiplier wallace
             comparator parity mux alu random majority barrel decoder
             priority *)

open Cmdliner

let run family bits seed out metrics_path trace_path =
  let obs = Obs.setup ~tool:"bench_gen" metrics_path trace_path in
  let circuit =
    match family with
    | "c17" -> Circuit.Generators.c17 ()
    | "fig1" -> Circuit.Generators.fig1 ()
    | "fig3" -> Circuit.Generators.fig3 ()
    | "ripple" -> Circuit.Generators.ripple_adder ~bits
    | "carryskip" -> Circuit.Generators.carry_skip_adder ~bits ~block:(max 1 (bits / 2))
    | "kogge" -> Circuit.Generators.kogge_stone_adder ~bits
    | "multiplier" -> Circuit.Generators.multiplier ~bits
    | "wallace" -> Circuit.Generators.wallace_multiplier ~bits
    | "comparator" -> Circuit.Generators.comparator ~bits
    | "parity" -> Circuit.Generators.parity ~bits
    | "mux" -> Circuit.Generators.mux_tree ~select_bits:bits
    | "alu" -> Circuit.Generators.alu ~bits
    | "random" -> Circuit.Generators.random_circuit ~inputs:bits ~gates:(bits * 6) ~seed
    | "majority" -> Circuit.Generators.majority3 ()
    | "barrel" -> Circuit.Generators.barrel_shifter ~bits
    | "decoder" -> Circuit.Generators.decoder ~select_bits:bits
    | "priority" -> Circuit.Generators.priority_encoder ~bits
    | other ->
      Printf.eprintf "unknown family %s\n" other;
      exit 2
  in
  (* no solving happens here; the snapshot records the generated shape *)
  Option.iter
    (fun m ->
       let set name v = Sat.Metrics.set_counter (Sat.Metrics.counter m name) v in
       set "circuit/nodes" (Circuit.Netlist.num_nodes circuit);
       set "circuit/inputs" (List.length (Circuit.Netlist.inputs circuit));
       set "circuit/outputs"
         (List.length (Circuit.Netlist.outputs circuit)))
    obs.Obs.metrics;
  let text = Circuit.Bench_format.to_string circuit in
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "%s: %a@." path Circuit.Netlist.pp_stats circuit
  | None -> print_string text

let family =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc:"circuit family")

let bits = Arg.(value & opt int 4 & info [ "bits" ] ~doc:"size parameter")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")
let out = Arg.(value & opt (some string) None & info [ "o" ] ~doc:"output file")

let cmd =
  Cmd.v
    (Cmd.info "bench_gen" ~doc:"generate benchmark netlists")
    Term.(const run $ family $ bits $ seed $ out $ Obs.metrics_term
          $ Obs.trace_term)

let () = exit (Cmd.eval cmd)
