(* DRAT proof checker and trimmer.

   dratcheck CNF [PROOF] [--forward] [--lrat OUT] [--core OUT]
                 [--check-lrat FILE] [--stats]

   Default mode ingests the whole DRAT stream (additions and deletions),
   verifies the refutation backward drat-trim style, and can emit the
   trimmed LRAT certificate and the unsat core.  --forward replays the
   stream front-to-back checking every addition.  --check-lrat validates
   an LRAT certificate against the CNF, independently of any trimming.

   Exit codes: 0 verified refutation, 1 valid but not a refutation,
   2 invalid step / failed certificate, 3 I/O or parse error. *)

open Cmdliner

let exit_verified = 0
let exit_not_refutation = 1
let exit_invalid = 2
let exit_io = 3

let load path parse what =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "dratcheck: no such %s file %s\n" what path;
    exit exit_io
  end;
  match parse path with
  | f -> f
  | exception (Failure msg | Cnf.Dimacs.Parse_error msg) ->
    Printf.eprintf "dratcheck: %s\n" msg;
    exit exit_io

let run cnf_path proof_path forward lrat_out core_out lrat_in stats =
  let formula = load cnf_path Cnf.Dimacs.parse_file "CNF" in
  (* standalone LRAT validation needs no DRAT stream *)
  (match lrat_in with
   | Some path ->
     let lines = load path Sat.Proof.parse_lrat_file "LRAT" in
     (match Sat.Proof.check_lrat formula lines with
      | Ok () ->
        Printf.printf "c lrat: %d lines verified against %s\n"
          (List.length lines) cnf_path;
        if proof_path = None then exit exit_verified
      | Error msg ->
        Printf.printf "c lrat: FAILED (%s)\n" msg;
        exit exit_invalid)
   | None -> ());
  let proof_path =
    match proof_path with
    | Some p -> p
    | None ->
      Printf.eprintf "dratcheck: missing PROOF argument (or --check-lrat)\n";
      exit exit_io
  in
  let steps = load proof_path Sat.Proof.parse_drat_file "DRAT" in
  if forward then begin
    if lrat_out <> None || core_out <> None then begin
      Printf.eprintf "dratcheck: --lrat/--core need the backward trimmer \
                      (drop --forward)\n";
      exit exit_io
    end;
    match Sat.Proof.check formula steps with
    | Sat.Proof.Valid_refutation ->
      print_endline "c forward: verified refutation";
      exit exit_verified
    | Sat.Proof.Valid_derivation ->
      print_endline "c forward: valid derivation (no refutation)";
      exit exit_not_refutation
    | Sat.Proof.Invalid_step i ->
      Printf.printf "c forward: INVALID at step %d\n" i;
      exit exit_invalid
  end;
  let t0 = Unix.gettimeofday () in
  match Sat.Proof.trim formula steps with
  | Sat.Proof.Trimmed { lines; core; kept_adds; total_adds } ->
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "c trim: verified refutation, kept %d of %d additions\n"
      kept_adds total_adds;
    if stats then begin
      Printf.printf "c stats: steps %d, lrat lines %d, core %d of %d \
                     clauses, check time %.4fs\n"
        (List.length steps) (List.length lines) (List.length core)
        (Cnf.Formula.nclauses formula) dt
    end;
    (match lrat_out with
     | Some out ->
       Sat.Proof.write_lrat_file out lines;
       Printf.printf "c lrat: written to %s\n" out
     | None -> ());
    (match core_out with
     | Some out ->
       Cnf.Dimacs.write_file out (Sat.Proof.core_formula formula core);
       Printf.printf "c core: written to %s\n" out
     | None -> ());
    exit exit_verified
  | Sat.Proof.Not_refutation ->
    print_endline "c trim: proof is not a refutation";
    exit exit_not_refutation
  | Sat.Proof.Trim_invalid i ->
    Printf.printf "c trim: INVALID at step %d\n" i;
    exit exit_invalid

let cnf =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"CNF" ~doc:"DIMACS CNF formula")

let proof =
  Arg.(value & pos 1 (some string) None
       & info [] ~docv:"PROOF"
         ~doc:"DRAT proof stream (additions and 'd'-prefixed deletions); \
               optional with --check-lrat")

let forward =
  Arg.(value & flag
       & info [ "forward" ]
         ~doc:"check every addition front-to-back instead of trimming \
               backward (slower; verifies unused steps too)")

let lrat_out =
  Arg.(value & opt (some string) None
       & info [ "lrat" ] ~docv:"OUT"
         ~doc:"write the trimmed LRAT certificate (per-step antecedent \
               hints) to OUT")

let core_out =
  Arg.(value & opt (some string) None
       & info [ "core" ] ~docv:"OUT"
         ~doc:"write the unsat core (original clauses the trimmed proof \
               uses) to OUT in DIMACS")

let lrat_in =
  Arg.(value & opt (some string) None
       & info [ "check-lrat" ] ~docv:"FILE"
         ~doc:"validate an LRAT certificate against CNF (exit 2 when it \
               fails); may be combined with trimming a PROOF")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"print trim/check statistics")

let cmd =
  Cmd.v
    (Cmd.info "dratcheck"
       ~doc:"check, trim and export DRAT refutations (LRAT, unsat cores)")
    Term.(const run $ cnf $ proof $ forward $ lrat_out $ core_out $ lrat_in
          $ stats)

let () = exit (Cmd.eval cmd)
