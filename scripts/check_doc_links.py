#!/usr/bin/env python3
"""Verify that relative markdown links in the documentation resolve.

Scans README.md, the top-level guides (DESIGN.md, EXPERIMENTS.md,
ROADMAP.md, CHANGES.md) and docs/*.md for [text](target) links and
checks that every non-URL target exists relative to the file that
mentions it.  Anchors (#...) are stripped before the existence check.

odoc {!module} cross-references inside doc/*.mld and the .mli files are
deliberately out of scope here: the repo builds docs with fatal odoc
warnings (see the api-docs CI job), so a broken {!ref} already fails
`dune build @doc`.

Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def doc_files():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                 "CHANGES.md"):
        p = ROOT / name
        if p.exists():
            yield p
    yield from sorted((ROOT / "docs").glob("*.md"))


def check(path):
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path.relative_to(ROOT)}:{line}: "
                          f"broken link -> {target}")
    return errors


def main():
    errors = []
    checked = 0
    for path in doc_files():
        checked += 1
        errors.extend(check(path))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
