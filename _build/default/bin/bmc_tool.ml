(* Bounded model checking of sequential circuits: either the built-in
   counter family or an ISCAS-89-style BENCH file with DFFs.

   bmc_tool [--bits N] [--buggy-at K] [--bound B] [--bench FILE --bad OUT]
   bmc_tool --induction ... additionally attempts a k-induction proof. *)

open Cmdliner

let run bits buggy_at bound bench bad induction =
  let seq =
    match bench with
    | Some path -> Circuit.Bench_format.parse_sequential_file path
    | None -> Circuit.Sequential.counter ~bits ~buggy_at
  in
  if induction then begin
    match Eda.Bmc.prove_inductive ~bad_output:bad ~max_k:bound seq with
    | Eda.Bmc.Proved k -> Printf.printf "PROVED for all depths (k=%d)\n" k
    | Eda.Bmc.Refuted frames ->
      Printf.printf "REFUTED: counterexample of length %d\n"
        (List.length frames)
    | Eda.Bmc.Bound_reached ->
      Printf.printf "inconclusive up to k=%d\n" bound
  end;
  let r = Eda.Bmc.check ~bad_output:bad ~max_bound:bound seq in
  (match r.Eda.Bmc.result with
   | Eda.Bmc.Counterexample frames ->
     Printf.printf "counterexample of length %d:\n" (List.length frames);
     List.iteri
       (fun t f ->
          Printf.printf "  cycle %d: enable=%b\n" t f.(0))
       frames
   | Eda.Bmc.No_counterexample ->
     Printf.printf "no counterexample up to bound %d\n" r.Eda.Bmc.bound_reached);
  Printf.printf "time %.3fs\n" r.Eda.Bmc.time_seconds

let bits = Arg.(value & opt int 4 & info [ "bits" ] ~doc:"counter width")

let buggy_at =
  Arg.(value & opt (some int) None & info [ "buggy-at" ] ~doc:"inject a jump bug at this count")

let bound = Arg.(value & opt int 20 & info [ "bound" ] ~doc:"maximum unrolling depth")

let bench =
  Arg.(value & opt (some file) None & info [ "bench" ] ~doc:"sequential BENCH netlist")

let bad =
  Arg.(value & opt string "bad" & info [ "bad" ] ~doc:"property output name")

let induction =
  Arg.(value & flag & info [ "induction" ] ~doc:"also attempt a k-induction proof")

let cmd =
  Cmd.v
    (Cmd.info "bmc_tool" ~doc:"bounded model checker demo")
    Term.(const run $ bits $ buggy_at $ bound $ bench $ bad $ induction)

let () = exit (Cmd.eval cmd)
