bin/bmc_tool.ml: Arg Array Circuit Cmd Cmdliner Eda List Printf Term
