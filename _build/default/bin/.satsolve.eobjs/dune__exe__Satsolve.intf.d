bin/satsolve.mli:
