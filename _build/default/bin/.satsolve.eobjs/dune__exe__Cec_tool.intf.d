bin/cec_tool.mli:
