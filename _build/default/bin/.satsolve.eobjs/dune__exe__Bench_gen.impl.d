bin/bench_gen.ml: Arg Circuit Cmd Cmdliner Format Printf Term
