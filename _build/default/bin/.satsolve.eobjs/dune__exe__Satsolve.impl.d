bin/satsolve.ml: Arg Array Buffer Cmd Cmdliner Cnf Format Printf Sat Term
