bin/cec_tool.ml: Arg Array Circuit Cmd Cmdliner Eda Printf Sat String Term
