bin/bench_gen.mli:
