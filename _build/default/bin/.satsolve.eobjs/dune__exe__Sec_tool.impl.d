bin/sec_tool.ml: Arg Array Circuit Cmd Cmdliner Eda List Printf String Term
