bin/atpg_tool.mli:
