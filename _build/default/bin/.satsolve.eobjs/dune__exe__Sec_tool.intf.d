bin/sec_tool.mli:
