bin/atpg_tool.ml: Arg Circuit Cmd Cmdliner Eda Format Term
