(* Emit the built-in circuit generators as BENCH files.

   bench_gen FAMILY [--bits N] [--seed S] [-o FILE]
   families: c17 fig1 fig3 ripple carryskip multiplier comparator parity
             mux alu random majority *)

open Cmdliner

let run family bits seed out =
  let circuit =
    match family with
    | "c17" -> Circuit.Generators.c17 ()
    | "fig1" -> Circuit.Generators.fig1 ()
    | "fig3" -> Circuit.Generators.fig3 ()
    | "ripple" -> Circuit.Generators.ripple_adder ~bits
    | "carryskip" -> Circuit.Generators.carry_skip_adder ~bits ~block:(max 1 (bits / 2))
    | "multiplier" -> Circuit.Generators.multiplier ~bits
    | "comparator" -> Circuit.Generators.comparator ~bits
    | "parity" -> Circuit.Generators.parity ~bits
    | "mux" -> Circuit.Generators.mux_tree ~select_bits:bits
    | "alu" -> Circuit.Generators.alu ~bits
    | "random" -> Circuit.Generators.random_circuit ~inputs:bits ~gates:(bits * 6) ~seed
    | "majority" -> Circuit.Generators.majority3 ()
    | other ->
      Printf.eprintf "unknown family %s\n" other;
      exit 2
  in
  let text = Circuit.Bench_format.to_string circuit in
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "%s: %a@." path Circuit.Netlist.pp_stats circuit
  | None -> print_string text

let family =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc:"circuit family")

let bits = Arg.(value & opt int 4 & info [ "bits" ] ~doc:"size parameter")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")
let out = Arg.(value & opt (some string) None & info [ "o" ] ~doc:"output file")

let cmd =
  Cmd.v
    (Cmd.info "bench_gen" ~doc:"generate benchmark netlists")
    Term.(const run $ family $ bits $ seed $ out)

let () = exit (Cmd.eval cmd)
