bench/experiments_apps.ml: Array Circuit Cnf Eda List Printf Sat Util
