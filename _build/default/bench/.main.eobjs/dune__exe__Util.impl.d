bench/util.ml: Analyze Bechamel Benchmark Cnf Format Hashtbl List Measure Sat Staged String Test Time Toolkit Unix
