bench/main.ml: Array Experiments_apps Experiments_core Format List Printf Sys Unix
