bench/main.mli:
