bench/experiments_core.ml: Array Circuit Cnf Csat Eda Int List Option Printf Sat String Util
