(* Shared benchmark utilities: timing, table printing, instance
   generation, and a thin Bechamel wrapper for micro-kernels. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let header title anchor =
  Format.printf "@.=== %s ===@.%s@.@." title anchor

let row fmt = Format.printf fmt

let line () = Format.printf "%s@." (String.make 78 '-')

let random_3sat ~seed ~nvars ~ratio =
  let rng = Sat.Rng.create seed in
  let f = Cnf.Formula.create ~nvars () in
  let nclauses = int_of_float (float_of_int nvars *. ratio) in
  for _ = 1 to nclauses do
    let rec distinct acc n =
      if n = 0 then acc
      else
        let v = Sat.Rng.int rng nvars in
        if List.mem v acc then distinct acc n else distinct (v :: acc) (n - 1)
    in
    let vars = distinct [] 3 in
    Cnf.Formula.add_clause_l f
      (List.map (fun v -> Cnf.Lit.of_var v (Sat.Rng.bool rng)) vars)
  done;
  f

let pigeonhole n m =
  let v i j = Cnf.Lit.pos ((i * m) + j) in
  let f = Cnf.Formula.create ~nvars:(n * m) () in
  for i = 0 to n - 1 do
    Cnf.Formula.add_clause_l f (List.init m (fun j -> v i j))
  done;
  for j = 0 to m - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        Cnf.Formula.add_clause_l f
          [ Cnf.Lit.negate (v i1 j); Cnf.Lit.negate (v i2 j) ]
      done
    done
  done;
  f

let is_sat = function
  | Sat.Types.Sat _ -> true
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false

let outcome_label = function
  | Sat.Types.Sat _ -> "SAT"
  | Sat.Types.Unsat -> "UNSAT"
  | Sat.Types.Unsat_assuming _ -> "UNSAT*"
  | Sat.Types.Unknown _ -> ">budget"

(* Bechamel micro-kernel measurement: ns per run. *)
let measure_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun _ v acc ->
       match Analyze.OLS.estimates v with
       | Some (e :: _) -> e
       | Some [] | None -> acc)
    results nan
