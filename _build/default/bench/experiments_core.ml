(* Experiments E1-E8: the paper's figures/tables and the SAT-algorithm
   claims of Sections 2, 4, 5 and 6.  See DESIGN.md for the index. *)

module T = Sat.Types

(* E1 — Table 1 and Figure 1: gate CNF formulas; the example circuit. *)
let e1 () =
  Util.header "E1  Table 1 + Figure 1: CNF formulas of simple gates"
    "paper: Sec. 2, Table 1, Fig. 1";
  let show g arity =
    let out = Cnf.Lit.pos 0 in
    let ins = List.init arity (fun i -> Cnf.Lit.pos (i + 1)) in
    let clauses = Circuit.Encode.gate_clauses ~out ~ins g in
    let names = [| "x"; "w1"; "w2"; "w3" |] in
    let lit_name l =
      let base = names.(Cnf.Lit.var l) in
      if Cnf.Lit.is_pos l then base else "~" ^ base
    in
    let clause_text c =
      "(" ^ String.concat " + " (List.map lit_name (Cnf.Clause.to_list c)) ^ ")"
    in
    Util.row "  x = %-5s(%s):  %s@."
      (Circuit.Gate.to_string g)
      (String.concat ", " (List.init arity (fun i -> names.(i + 1))))
      (String.concat " . " (List.map clause_text clauses))
  in
  List.iter (fun g -> show g 2)
    [ Circuit.Gate.And; Circuit.Gate.Or; Circuit.Gate.Nand;
      Circuit.Gate.Nor; Circuit.Gate.Xor; Circuit.Gate.Xnor ];
  show Circuit.Gate.Not 1;
  show Circuit.Gate.Buf 1;
  (* Figure 1: the example circuit and the property z = 0 *)
  let c = Circuit.Generators.fig1 () in
  let enc = Circuit.Encode.encode c in
  let node n = Option.get (Circuit.Netlist.find_by_name c n) in
  Util.row "@.Figure 1 circuit: %a; CNF: %d vars, %d clauses@."
    Circuit.Netlist.pp_stats c
    (Cnf.Formula.nvars enc.Circuit.Encode.formula)
    (Cnf.Formula.nclauses enc.Circuit.Encode.formula);
  Circuit.Encode.assert_output enc.Circuit.Encode.formula
    (enc.Circuit.Encode.lit_of_node (node "z"))
    false;
  (match Sat.Cdcl.solve (Sat.Cdcl.create enc.Circuit.Encode.formula) with
   | T.Sat m ->
     let v n = m.(Cnf.Lit.var (enc.Circuit.Encode.lit_of_node (node n))) in
     Util.row
       "property z=0: SATISFIABLE with w1=%b w2=%b (x=%b, y=%b) — matches \
        Fig. 1(b)@."
       (v "w1") (v "w2") (v "x") (v "y")
   | o -> Util.row "property z=0: %s (unexpected)@." (Util.outcome_label o));
  Util.row "@.microkernels (Bechamel):@.";
  let enc_ns =
    Util.measure_ns "encode c17" (fun () ->
        Circuit.Encode.encode (Circuit.Generators.c17 ()))
  in
  let mult = Circuit.Generators.multiplier ~bits:6 in
  let enc2_ns =
    Util.measure_ns "encode mult6" (fun () -> Circuit.Encode.encode mult)
  in
  Util.row "  Table-1 encoding: c17 %.0f ns, 6-bit multiplier %.0f ns@."
    enc_ns enc2_ns

(* E2 — Figure 2 / Sec. 4.1 claims 1-2: conflict analysis (learning +
   non-chronological backtracking) vs plain DPLL. *)
let e2 () =
  Util.header
    "E2  Modern backtrack search vs plain DPLL (learning + non-chronological \
     backtracking)"
    "paper: Fig. 2, Sec. 4.1 properties 1-2";
  let adder = Circuit.Generators.carry_skip_adder ~bits:6 ~block:3 in
  let instances =
    [
      ("cec parity16", fst (Circuit.Miter.to_cnf
                              (Circuit.Generators.parity ~bits:16)
                              (Circuit.Transform.demorgan ~seed:4
                                 (Circuit.Generators.parity ~bits:16))));
      ("cec carryskip6", fst (Circuit.Miter.to_cnf adder
                                (Circuit.Transform.demorgan ~seed:5 adder)));
      ("php(6,5)", Util.pigeonhole 6 5);
      ("php(8,7)", Util.pigeonhole 8 7);
      ("rand3sat n=60 sat", Util.random_3sat ~seed:3 ~nvars:60 ~ratio:3.5);
      ("rand3sat n=60 unsat", Util.random_3sat ~seed:3 ~nvars:60 ~ratio:5.2);
    ]
  in
  let budget = 400_000 in
  let solvers =
    [
      ("dpll (no learning)",
       fun f ->
         let cfg = { T.default with T.heuristic = T.Jeroslow_wang;
                     max_decisions = Some budget } in
         let o, st = Sat.Dpll.solve ~config:cfg f in
         (o, st));
      ("cdcl chronological",
       fun f ->
         let cfg = { T.default with T.chronological = true } in
         let s = Sat.Cdcl.create ~config:cfg f in
         (Sat.Cdcl.solve s, Sat.Cdcl.stats s));
      ("cdcl (grasp-like)",
       fun f ->
         let s = Sat.Cdcl.create ~config:T.grasp_like f in
         (Sat.Cdcl.solve s, Sat.Cdcl.stats s));
      ("cdcl (default)",
       fun f ->
         let s = Sat.Cdcl.create f in
         (Sat.Cdcl.solve s, Sat.Cdcl.stats s));
    ]
  in
  Util.row "%-22s %-20s %8s %10s %10s %9s@." "instance" "solver" "result"
    "decisions" "conflicts" "time";
  Util.line ();
  List.iter
    (fun (iname, f) ->
       List.iter
         (fun (sname, solve) ->
            let (o, st), dt = Util.time (fun () -> solve f) in
            Util.row "%-22s %-20s %8s %10d %10d %8.3fs@." iname sname
              (Util.outcome_label o) st.T.decisions st.T.conflicts dt)
         solvers;
       Util.line ())
    instances;
  Util.row
    "expected shape: CDCL decisions/conflicts orders of magnitude below \
     DPLL on the structured (EDA) instances; DPLL exceeds its %d-decision \
     budget where marked.@."
    budget

(* E3 — Figure 3: conflict analysis derives (~x1 + ~w + y3). *)
let e3 () =
  Util.header "E3  Figure 3: conflict analysis on the example circuit"
    "paper: Sec. 4.1, Fig. 3";
  let c = Circuit.Generators.fig3 () in
  let enc = Circuit.Encode.encode c in
  let node n = Option.get (Circuit.Netlist.find_by_name c n) in
  let l n = enc.Circuit.Encode.lit_of_node (node n) in
  let f = enc.Circuit.Encode.formula in
  let s = Sat.Cdcl.create f in
  Util.row "assignments: w = 1, y3 = 0, then decide x1 = 1@.";
  (match
     Sat.Cdcl.solve ~assumptions:[ l "w"; Cnf.Lit.negate (l "y3"); l "x1" ] s
   with
   | T.Unsat_assuming core ->
     Util.row "conflict as in the paper; failed assumption set: {%s}@."
       (String.concat ", "
          (List.map
             (fun lit ->
                let name =
                  Circuit.Netlist.name c
                    (Cnf.Lit.var lit) (* node ids = vars here *)
                in
                (if Cnf.Lit.is_pos lit then "" else "~") ^ name)
             core))
   | o -> Util.row "unexpected outcome %s@." (Util.outcome_label o));
  let expected =
    Cnf.Clause.of_list
      [ Cnf.Lit.negate (l "x1"); Cnf.Lit.negate (l "w"); l "y3" ]
  in
  Util.row "derived clause (~x1 + ~w + y3) is an implicate: %b@."
    (Cnf.Resolution.is_implicate f expected);
  (* and the solver's own learned clause from the episode *)
  List.iter
    (fun cl -> Util.row "recorded clause: %s@." (Cnf.Clause.to_string cl))
    (Sat.Cdcl.learned_clauses s)

(* E4 — Figure 4 / Sec. 4.2: recursive learning on CNF formulas. *)
let e4 () =
  Util.header "E4  Recursive learning on CNF formulas"
    "paper: Sec. 4.2, Fig. 4";
  (* the exact Figure 4 run *)
  let u = 0 and x = 1 and y = 2 and z = 3 and w = 4 in
  let names = [| "u"; "x"; "y"; "z"; "w" |] in
  let f = Cnf.Formula.create ~nvars:5 () in
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos u; Cnf.Lit.pos x; Cnf.Lit.neg_of_var w ];
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos x; Cnf.Lit.neg_of_var y ];
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos w; Cnf.Lit.pos y; Cnf.Lit.neg_of_var z ];
  let r =
    Sat.Recursive_learning.learn
      ~assumptions:[ Cnf.Lit.pos z; Cnf.Lit.neg_of_var u ] f
  in
  let lit_name l =
    (if Cnf.Lit.is_pos l then "" else "~") ^ names.(Cnf.Lit.var l)
  in
  Util.row "assignments z=1, u=0; splits=%d@." r.Sat.Recursive_learning.splits;
  List.iter
    (fun l -> Util.row "necessary assignment: %s = 1@." (lit_name l))
    r.Sat.Recursive_learning.necessary;
  List.iter
    (fun c ->
       Util.row "recorded implicate: (%s)   [paper: (~z + u + x)]@."
         (String.concat " + " (List.map lit_name (Cnf.Clause.to_list c))))
    r.Sat.Recursive_learning.implicates;
  (* preprocessing effect on equivalence-checking miters *)
  Util.row "@.%-28s %6s %11s %10s %10s %8s@." "miter instance" "depth"
    "implicates" "decisions" "conflicts" "time";
  Util.line ();
  let miters =
    [
      ("parity12 vs demorgan",
       fst (Circuit.Miter.to_cnf
              (Circuit.Generators.parity ~bits:12)
              (Circuit.Transform.demorgan ~seed:2
                 (Circuit.Generators.parity ~bits:12))));
      ("mult3 vs rewrite",
       fst (Circuit.Miter.to_cnf
              (Circuit.Generators.multiplier ~bits:3)
              (Circuit.Transform.rewrite_xor
                 (Circuit.Generators.multiplier ~bits:3))));
    ]
  in
  List.iter
    (fun (name, f) ->
       List.iter
         (fun depth ->
            let (result : T.outcome * T.stats * int), dt =
              Util.time (fun () ->
                  if depth = 0 then begin
                    let s = Sat.Cdcl.create f in
                    let o = Sat.Cdcl.solve s in
                    (o, Sat.Cdcl.stats s, 0)
                  end
                  else begin
                    let g, r = Sat.Recursive_learning.strengthen ~depth f in
                    let s = Sat.Cdcl.create g in
                    let o = Sat.Cdcl.solve s in
                    (o, Sat.Cdcl.stats s,
                     List.length r.Sat.Recursive_learning.implicates)
                  end)
            in
            let o, st, impl = result in
            Util.row "%-28s %6d %11d %10d %10d %7.3fs  %s@." name depth impl
              st.T.decisions st.T.conflicts dt (Util.outcome_label o))
         [ 0; 1; 2 ])
    miters

(* E5 — Sec. 5, Tables 2-3: the structural layer on ATPG instances. *)
let e5 () =
  Util.header
    "E5  Structural layer (justification frontier): decisions and \
     overspecification"
    "paper: Sec. 5, Tables 2-3";
  let circuits =
    [
      ("carryskip4", Circuit.Generators.carry_skip_adder ~bits:4 ~block:2);
      ("alu3", Circuit.Generators.alu ~bits:3);
      ("random r1", Circuit.Generators.random_circuit ~inputs:10 ~gates:60 ~seed:11);
      ("random r2", Circuit.Generators.random_circuit ~inputs:10 ~gates:60 ~seed:12);
    ]
  in
  Util.row "%-12s %-26s %10s %12s %12s@." "circuit" "mode" "sat calls"
    "avg spec in" "avg decisions";
  Util.line ();
  List.iter
    (fun (name, c) ->
       let faults = Eda.Atpg.fault_list c in
       let modes =
         [
           ("plain CNF", false, false);
           ("layer", true, false);
           ("layer + backtracing", true, true);
         ]
       in
       List.iter
         (fun (mode, use_layer, backtrace) ->
            let spec = ref 0 and total = ref 0 and dec = ref 0 and n = ref 0 in
            List.iter
              (fun fault ->
                 let inst, objectives = Eda.Atpg.instance c fault in
                 let r =
                   Csat.solve ~use_layer ~backtrace ~objectives inst
                 in
                 if Util.is_sat r.Csat.outcome then begin
                   incr n;
                   spec := !spec + r.Csat.specified_inputs;
                   total := !total + r.Csat.total_inputs;
                   dec := !dec + r.Csat.stats.T.decisions
                 end)
              faults;
            if !n > 0 then
              Util.row "%-12s %-26s %10d %6.1f/%-5.1f %12.1f@." name mode !n
                (float_of_int !spec /. float_of_int !n)
                (float_of_int !total /. float_of_int !n)
                (float_of_int !dec /. float_of_int !n))
         modes;
       Util.line ())
    circuits;
  Util.row
    "expected shape: with the layer, far fewer specified inputs (the \
     overspecification fix of Sec. 5) at comparable or lower decision \
     counts.@."

(* E6 — Sec. 6: randomization and restarts on satisfiable instances. *)
let e6 () =
  Util.header "E6  Randomized restarts on satisfiable instances"
    "paper: Sec. 6 (randomization [14, 21])";
  let configs =
    [
      ("no restarts", { T.default with T.restarts = T.No_restarts });
      ("luby 100", T.default);
      ("luby 100 + rnd 5%",
       { T.default with T.random_decision_freq = 0.05 });
      ("geometric 100x1.5",
       { T.default with T.restarts = T.Geometric (100, 1.5) });
    ]
  in
  Util.row "%-22s %12s %12s %12s@." "config" "median dec" "max dec" "total time";
  Util.line ();
  let seeds = [ 1; 2; 3; 4; 5; 6; 7 ] in
  List.iter
    (fun (name, cfg) ->
       let runs =
         List.map
           (fun seed ->
              let f = Util.random_3sat ~seed ~nvars:120 ~ratio:4.1 in
              let cfg = { cfg with T.random_seed = seed * 7 } in
              let s = Sat.Cdcl.create ~config:cfg f in
              let _, dt = Util.time (fun () -> Sat.Cdcl.solve s) in
              ((Sat.Cdcl.stats s).T.decisions, dt))
           seeds
       in
       let decs = List.map fst runs |> List.sort Int.compare in
       let median = List.nth decs (List.length decs / 2) in
       let worst = List.fold_left max 0 decs in
       let total = List.fold_left (fun a (_, t) -> a +. t) 0. runs in
       Util.row "%-22s %12d %12d %11.3fs@." name median worst total)
    configs;
  Util.row
    "expected shape: restarts cut the worst-case tail on satisfiable \
     instances (the heavy-tail effect the paper cites).@."

(* E7 — Sec. 6: equivalency reasoning. *)
let e7 () =
  Util.header "E7  Equivalency reasoning on CEC miters"
    "paper: Sec. 6 (equivalency reasoning [21])";
  let miters =
    List.map
      (fun (name, c) ->
         let c2 =
           Circuit.Transform.double_invert ~seed:9 ~count:6
             (Circuit.Transform.demorgan ~seed:8 c)
         in
         (name, fst (Circuit.Miter.to_cnf c c2)))
      [
        ("parity16", Circuit.Generators.parity ~bits:16);
        ("ripple6", Circuit.Generators.ripple_adder ~bits:6);
        ("mult4", Circuit.Generators.multiplier ~bits:4);
      ]
  in
  Util.row "%-12s %8s %8s %9s %9s | %-18s %-18s@." "miter" "vars" "clauses"
    "merged" "cl after" "plain solve" "equiv+simplify";
  Util.line ();
  List.iter
    (fun (name, f) ->
       let merged, reduced =
         match Sat.Equivalence.detect f with
         | Sat.Equivalence.Reduced r ->
           (r.Sat.Equivalence.merged, r.Sat.Equivalence.formula)
         | Sat.Equivalence.Unsat_equiv -> (0, f)
       in
       (* substitution leaves duplicate/subsumed clauses behind; the
          preprocessor sweeps them up, as GRASP-era flows did *)
       let swept =
         match Sat.Preprocess.run reduced with
         | Sat.Preprocess.Simplified s -> s.Sat.Preprocess.formula
         | Sat.Preprocess.Unsat -> Cnf.Formula.of_clauses [ Cnf.Clause.of_list [] ]
       in
       let solve g =
         let s = Sat.Cdcl.create g in
         let o, dt = Util.time (fun () -> Sat.Cdcl.solve s) in
         Printf.sprintf "%s %6.3fs %6dd" (Util.outcome_label o) dt
           (Sat.Cdcl.stats s).T.decisions
       in
       Util.row "%-12s %8d %8d %9d %9d | %-18s %-18s@." name
         (Cnf.Formula.nvars f) (Cnf.Formula.nclauses f) merged
         (Cnf.Formula.nclauses swept) (solve f) (solve swept))
    miters;
  Util.row
    "expected shape: miters are rich in equivalent variables; \
     substitution shrinks the instance and the search.@."

(* E8 — Sec. 6: incremental SAT across an ATPG fault list. *)
let e8 () =
  Util.header "E8  Iterated vs incremental SAT over an ATPG fault list"
    "paper: Sec. 6 (incremental / iterative use [18, 25])";
  let circuits =
    [
      ("ripple4", Circuit.Generators.ripple_adder ~bits:4);
      ("alu3", Circuit.Generators.alu ~bits:3);
      ("carryskip6", Circuit.Generators.carry_skip_adder ~bits:6 ~block:3);
    ]
  in
  Util.row "%-12s %-22s %8s %10s %10s %9s@." "circuit" "mode" "faults"
    "decisions" "conflicts" "time";
  Util.line ();
  List.iter
    (fun (name, c) ->
       let scratch, t1 =
         Util.time (fun () -> Eda.Atpg.run ~fault_simulation:false c)
       in
       let incr_, t2 = Util.time (fun () -> Eda.Atpg.run_incremental c) in
       Util.row "%-12s %-22s %8d %10d %10d %8.3fs@." name "fresh solver per fault"
         scratch.Eda.Atpg.total scratch.Eda.Atpg.decisions
         scratch.Eda.Atpg.conflicts t1;
       Util.row "%-12s %-22s %8d %10d %10d %8.3fs@." name
         "incremental (shared)" incr_.Eda.Atpg.total incr_.Eda.Atpg.decisions
         incr_.Eda.Atpg.conflicts t2;
       assert (scratch.Eda.Atpg.detected = incr_.Eda.Atpg.detected);
       Util.line ())
    circuits;
  Util.row
    "expected shape: the incremental formulation reuses fault-free-logic \
     clauses and learned facts across the fault list, cutting decisions \
     and conflicts per fault.@."
