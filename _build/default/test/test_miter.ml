module M = Circuit.Miter

let unsat_on_equal () =
  let c = Circuit.Generators.ripple_adder ~bits:2 in
  Th.assert_equivalent c (Circuit.Netlist.copy c)

let sat_on_different () =
  let c1 = Circuit.Generators.parity ~bits:3 in
  (* parity vs AND of the same inputs *)
  let c2 = Circuit.Netlist.create () in
  let ins = List.init 3 (fun _ -> Circuit.Netlist.add_input c2) in
  let g = Circuit.Netlist.add_gate c2 Circuit.Gate.And ins in
  Circuit.Netlist.set_output c2 g;
  let f, lit_of = M.to_cnf c1 c2 in
  match Th.solve_cdcl f with
  | Sat.Types.Sat m ->
    (* the model's input vector must distinguish the circuits *)
    let vec =
      Array.init 3 (fun i ->
          let l = lit_of i in
          if Cnf.Lit.is_pos l then m.(Cnf.Lit.var l)
          else not m.(Cnf.Lit.var l))
    in
    let o1 = Circuit.Simulate.eval_outputs c1 vec in
    let o2 = Circuit.Simulate.eval_outputs c2 vec in
    Alcotest.(check bool) "distinguishing vector" true (o1 <> o2)
  | _ -> Alcotest.fail "expected inequivalence"

let interface_mismatch () =
  let c1 = Circuit.Generators.parity ~bits:3 in
  let c2 = Circuit.Generators.parity ~bits:4 in
  Alcotest.check_raises "inputs" (Invalid_argument "Miter.build: input counts differ")
    (fun () -> ignore (M.build c1 c2))

let multi_output_miters () =
  let c1 = Circuit.Generators.ripple_adder ~bits:3 in
  let c2 = Circuit.Transform.demorgan ~seed:9 c1 in
  Th.assert_equivalent c1 c2;
  (* single-bit output corruption caught across multiple outputs *)
  let buggy, _ = Circuit.Transform.inject_bug ~seed:2 c1 in
  let f, _ = M.to_cnf c1 buggy in
  match Th.solve_cdcl f with
  | Sat.Types.Sat _ -> ()
  | Sat.Types.Unsat -> () (* rare benign mutation *)
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    Th.case "unsat on equal" unsat_on_equal;
    Th.case "sat on different" sat_on_different;
    Th.case "interface mismatch" interface_mismatch;
    Th.case "multi-output" multi_output_miters;
  ]
