module X = Eda.Crosstalk
module N = Circuit.Netlist

let witness_vectors_switch_oppositely () =
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  let pairs = X.coupled_pairs c ~max_level_gap:1 in
  Alcotest.(check bool) "pairs exist" true (pairs <> []);
  let checked = ref 0 in
  List.iteri
    (fun i (a, b) ->
       if i < 5 then begin
         let q = { X.victim = a; aggressor = b; window = (1, 6) } in
         match X.analyze c q with
         | X.Noise (v1, v2, t) ->
           incr checked;
           let o1 = Circuit.Simulate.eval_all c v1 in
           let o2 = Circuit.Simulate.eval_all c v2 in
           Alcotest.(check bool) "victim rises" true (not o1.(a) && o2.(a));
           Alcotest.(check bool) "aggressor falls" true (o1.(b) && not o2.(b));
           Alcotest.(check bool) "time in window" true (t >= 1 && t <= 6)
         | X.Safe -> ()
         | X.Unknown why -> Alcotest.failf "unknown: %s" why
       end)
    pairs;
  ignore !checked

let impossible_switching_safe () =
  (* two copies of the same node cannot switch in opposite directions *)
  let c = N.create () in
  let a = N.add_input c in
  let g = N.add_gate c Circuit.Gate.Buf [ a ] in
  let h = N.add_gate c Circuit.Gate.Buf [ a ] in
  N.set_output c g;
  N.set_output c h;
  let q = { X.victim = g; aggressor = h; window = (0, 4) } in
  match X.analyze c q with
  | X.Safe -> ()
  | X.Noise _ -> Alcotest.fail "same-signal nets cannot oppose"
  | X.Unknown why -> Alcotest.failf "unknown: %s" why

let window_beyond_horizon_safe () =
  let c = Circuit.Generators.majority3 () in
  let g = List.hd (N.output_ids c) in
  let pairs = X.coupled_pairs c ~max_level_gap:2 in
  match pairs with
  | (a, b) :: _ ->
    ignore g;
    let q = { X.victim = a; aggressor = b; window = (50, 60) } in
    (match X.analyze c q with
     | X.Safe -> ()
     | _ -> Alcotest.fail "nothing is unstable past the horizon")
  | [] -> Alcotest.fail "pairs expected"

let level_gap_respected () =
  let c = Circuit.Generators.ripple_adder ~bits:4 in
  List.iter
    (fun (a, b) ->
       Alcotest.(check bool) "gap" true
         (abs (N.level c a - N.level c b) <= 1))
    (X.coupled_pairs c ~max_level_gap:1)

let suite =
  [
    Th.case "witness vectors" witness_vectors_switch_oppositely;
    Th.case "impossible switching" impossible_switching_safe;
    Th.case "beyond horizon" window_beyond_horizon_safe;
    Th.case "level gap" level_gap_respected;
  ]
