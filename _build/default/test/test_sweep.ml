module S = Eda.Sweep

let equivalent_pairs_proven () =
  List.iter
    (fun (name, c1, c2) ->
       match (S.check c1 c2).S.verdict with
       | Eda.Equiv.Equivalent -> ()
       | Eda.Equiv.Inequivalent _ -> Alcotest.failf "%s: false negative" name
       | Eda.Equiv.Inconclusive why -> Alcotest.failf "%s: %s" name why)
    [
      ("mult3", Circuit.Generators.multiplier ~bits:3,
       Circuit.Transform.rewrite_xor (Circuit.Generators.multiplier ~bits:3));
      ("adder", Circuit.Generators.ripple_adder ~bits:4,
       Circuit.Transform.demorgan ~seed:2 (Circuit.Generators.ripple_adder ~bits:4));
      ("parity", Circuit.Generators.parity ~bits:6,
       Circuit.Transform.double_invert ~seed:3 (Circuit.Generators.parity ~bits:6));
      ("self", Circuit.Generators.alu ~bits:2,
       Circuit.Netlist.copy (Circuit.Generators.alu ~bits:2));
    ]

let counterexamples_valid () =
  let base = Circuit.Generators.ripple_adder ~bits:3 in
  let found = ref 0 in
  for seed = 1 to 8 do
    let buggy, _ = Circuit.Transform.inject_bug ~seed base in
    match (S.check base buggy).S.verdict with
    | Eda.Equiv.Inequivalent vec ->
      incr found;
      let o1 = Circuit.Simulate.eval_outputs base vec in
      let o2 = Circuit.Simulate.eval_outputs buggy vec in
      Alcotest.(check bool) "cex distinguishes" true (o1 <> o2)
    | Eda.Equiv.Equivalent -> () (* benign mutation *)
    | Eda.Equiv.Inconclusive why -> Alcotest.failf "inconclusive: %s" why
  done;
  Alcotest.(check bool) "bugs found" true (!found > 0)

let agrees_with_miter () =
  let rng = Sat.Rng.create 111 in
  for seed = 1 to 12 do
    let c1 = Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:(seed + 300) in
    let c2 =
      if Sat.Rng.bool rng then Circuit.Transform.demorgan ~seed c1
      else fst (Circuit.Transform.inject_bug ~seed c1)
    in
    let sweep = (S.check c1 c2).S.verdict in
    let miter = (Eda.Equiv.check_sat c1 c2).Eda.Equiv.verdict in
    match sweep, miter with
    | Eda.Equiv.Equivalent, Eda.Equiv.Equivalent -> ()
    | Eda.Equiv.Inequivalent _, Eda.Equiv.Inequivalent _ -> ()
    | _ -> Alcotest.failf "sweep and miter disagree on seed %d" seed
  done

let internal_equivalences_found () =
  let c = Circuit.Generators.multiplier ~bits:3 in
  let c2 = Circuit.Transform.rewrite_xor c in
  let r = S.check c c2 in
  Alcotest.(check bool) "pairs proved" true (r.S.stats.S.proved > 0);
  Alcotest.(check bool) "simulation ran" true (r.S.stats.S.simulation_words > 0)

let refinement_on_counterexamples () =
  (* random circuits vs their mutants force refinement *)
  let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:40 ~seed:7 in
  let c2, _ = Circuit.Transform.inject_bug ~seed:5 c in
  let r = S.check ~words:1 c c2 in
  (* with a single seed word, some candidates are spurious and must be
     refuted (statistically certain on 40-gate circuits) *)
  Alcotest.(check bool) "some activity" true
    (r.S.stats.S.proved + r.S.stats.S.refuted > 0)

let interface_mismatch () =
  let a = Circuit.Generators.parity ~bits:3 in
  let b = Circuit.Generators.parity ~bits:4 in
  match (S.check a b).S.verdict with
  | Eda.Equiv.Inequivalent _ -> ()
  | _ -> Alcotest.fail "interface mismatch"

let suite =
  [
    Th.case "equivalent pairs" equivalent_pairs_proven;
    Th.case "counterexamples" counterexamples_valid;
    Th.case "agrees with miter" agrees_with_miter;
    Th.case "internal equivalences" internal_equivalences_found;
    Th.case "refinement" refinement_on_counterexamples;
    Th.case "interface mismatch" interface_mismatch;
  ]
