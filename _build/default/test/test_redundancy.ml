module R = Eda.Redundancy

let identify_on_injected () =
  let base = Circuit.Generators.majority3 () in
  let red = Circuit.Transform.add_redundancy ~seed:2 base in
  let found = R.identify red in
  Alcotest.(check bool) "redundant faults found" true (found <> [])

let identify_clean_circuit () =
  (* c17 famously has no redundant faults *)
  let c = Circuit.Generators.c17 () in
  Alcotest.(check int) "c17 irredundant" 0 (List.length (R.identify c))

let removal_preserves_function () =
  List.iter
    (fun seed ->
       let base = Circuit.Generators.ripple_adder ~bits:2 in
       let red = Circuit.Transform.add_redundancy ~seed base in
       let r = R.remove red in
       Th.assert_equivalent ~msg:"removal equivalence" red r.R.result;
       Th.assert_equivalent ~msg:"matches original" base r.R.result;
       Alcotest.(check bool) "no growth" true
         (r.R.gates_after <= r.R.gates_before))
    [ 1; 2; 3 ]

let removal_shrinks_injected () =
  let base = Circuit.Generators.parity ~bits:4 in
  let red = Circuit.Transform.add_redundancy ~seed:7 ~count:3 base in
  let r = R.remove red in
  Alcotest.(check bool) "faults removed" true (r.R.removed_faults > 0);
  Alcotest.(check bool) "gates reduced" true (r.R.gates_after < r.R.gates_before)

let fixpoint_terminates () =
  let c = Circuit.Generators.majority3 () in
  let r = R.remove ~max_rounds:3 c in
  Alcotest.(check bool) "bounded rounds" true (r.R.rounds <= 3)

let suite =
  [
    Th.case "identify injected" identify_on_injected;
    Th.case "c17 irredundant" identify_clean_circuit;
    Th.case "removal preserves function" removal_preserves_function;
    Th.case "removal shrinks" removal_shrinks_injected;
    Th.case "fixpoint" fixpoint_terminates;
  ]
