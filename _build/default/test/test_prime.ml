module P = Eda.Prime

(* brute-force check: is term a minimum-size implicant of f? *)
let brute_min_implicant_size f =
  let n = Cnf.Formula.nvars f in
  let best = ref None in
  (* enumerate terms as (subset, polarity) pairs *)
  let rec terms chosen v =
    if v = n then begin
      if chosen <> [] || true then begin
        let term = chosen in
        (* implicant test: every completion satisfies f *)
        let free =
          List.filter (fun x -> not (List.mem_assoc x term)) (List.init n Fun.id)
        in
        let implies = ref true in
        let k = List.length free in
        for mask = 0 to (1 lsl k) - 1 do
          let value v =
            match List.assoc_opt v term with
            | Some b -> b
            | None ->
              (match List.find_index (Int.equal v) free with
               | Some i -> mask land (1 lsl i) <> 0
               | None -> false)
          in
          if not (Cnf.Formula.eval value f) then implies := false
        done;
        if !implies then
          match !best with
          | Some b when b <= List.length term -> ()
          | Some _ | None -> best := Some (List.length term)
      end
    end
    else begin
      terms chosen (v + 1);
      terms ((v, true) :: chosen) (v + 1);
      terms ((v, false) :: chosen) (v + 1)
    end
  in
  terms [] 0;
  !best

let minimality_vs_brute () =
  let rng = Sat.Rng.create 91 in
  for _ = 1 to 15 do
    let f = Th.random_cnf rng 5 8 3 in
    match P.minimum_prime_implicant f with
    | Some term ->
      Alcotest.(check bool) "is implicant" true (P.is_implicant f term);
      (match brute_min_implicant_size f with
       | Some b -> Alcotest.(check int) "minimum size" b (List.length term)
       | None -> Alcotest.fail "brute disagrees about satisfiability")
    | None ->
      Alcotest.(check bool) "unsat confirmed" false
        (Th.outcome_sat (Sat.Brute.solve f))
  done

let minimal_implicants_are_prime () =
  (* a minimum implicant cannot shrink: dropping any literal breaks it *)
  let rng = Sat.Rng.create 97 in
  for _ = 1 to 10 do
    let f = Th.random_cnf rng 5 8 3 in
    match P.minimum_prime_implicant f with
    | Some term when List.length term > 0 ->
      List.iter
        (fun (v, _) ->
           let shrunk = List.filter (fun (w, _) -> w <> v) term in
           (* the shrunk term must not be an implicant semantically *)
           let n = Cnf.Formula.nvars f in
           let free =
             List.filter (fun x -> not (List.mem_assoc x shrunk)) (List.init n Fun.id)
           in
           let still = ref true in
           for mask = 0 to (1 lsl List.length free) - 1 do
             let value x =
               match List.assoc_opt x shrunk with
               | Some b -> b
               | None ->
                 (match List.find_index (Int.equal x) free with
                  | Some i -> mask land (1 lsl i) <> 0
                  | None -> false)
             in
             if not (Cnf.Formula.eval value f) then still := false
           done;
           Alcotest.(check bool) "shrunk term not implicant" false !still)
        term
    | Some _ | None -> ()
  done

let tautology_gives_empty_term () =
  (* a formula with no clauses is the constant 1: the empty term works *)
  let f = Cnf.Formula.create ~nvars:3 () in
  match P.minimum_prime_implicant f with
  | Some term -> Alcotest.(check int) "empty term" 0 (List.length term)
  | None -> Alcotest.fail "constant one has implicants"

let unsat_gives_none () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "none" true (P.minimum_prime_implicant f = None)

let single_literal_function () =
  let f = Th.formula_of [ [ 1; 2 ]; [ 1; 3 ]; [ 1; -4 ] ] in
  match P.minimum_prime_implicant f with
  | Some term ->
    Alcotest.(check int) "x1 alone" 1 (List.length term);
    Alcotest.(check bool) "it is x1=true" true (List.mem (0, true) term)
  | None -> Alcotest.fail "satisfiable"

let suite =
  [
    Th.case "minimality vs brute force" minimality_vs_brute;
    Th.case "minimal implies prime" minimal_implicants_are_prime;
    Th.case "tautology" tautology_gives_empty_term;
    Th.case "unsat" unsat_gives_none;
    Th.case "single literal" single_literal_function;
  ]
