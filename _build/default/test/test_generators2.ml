(* Tests for the second wave of circuit generators. *)
module G = Circuit.Generators
module S = Circuit.Simulate

let kogge_stone_arithmetic () =
  List.iter
    (fun bits ->
       let c = G.kogge_stone_adder ~bits in
       let rng = Sat.Rng.create bits in
       for _ = 1 to 150 do
         let a = Sat.Rng.int rng (1 lsl bits) in
         let b = Sat.Rng.int rng (1 lsl bits) in
         let cin = Sat.Rng.bool rng in
         let ins =
           Array.concat [ Th.bits_of a bits; Th.bits_of b bits; [| cin |] ]
         in
         Alcotest.(check int) "ks sum"
           (a + b + if cin then 1 else 0)
           (Th.int_of_bits (S.eval_outputs c ins))
       done)
    [ 2; 3; 4; 5; 8 ]

let kogge_stone_vs_ripple_cec () =
  List.iter
    (fun bits ->
       Th.assert_equivalent ~msg:"ks = ripple"
         (G.ripple_adder ~bits)
         (G.kogge_stone_adder ~bits))
    [ 3; 4; 6 ]

let kogge_stone_log_depth () =
  let d8 = Circuit.Netlist.depth (G.kogge_stone_adder ~bits:8) in
  let r8 = Circuit.Netlist.depth (G.ripple_adder ~bits:8) in
  Alcotest.(check bool) "shallower than ripple" true (d8 < r8)

let wallace_arithmetic () =
  List.iter
    (fun bits ->
       let c = G.wallace_multiplier ~bits in
       let rng = Sat.Rng.create (bits * 3) in
       for _ = 1 to 150 do
         let a = Sat.Rng.int rng (1 lsl bits) in
         let b = Sat.Rng.int rng (1 lsl bits) in
         let ins = Array.append (Th.bits_of a bits) (Th.bits_of b bits) in
         Alcotest.(check int) "wallace product" (a * b)
           (Th.int_of_bits (S.eval_outputs c ins))
       done)
    [ 2; 3; 4; 5 ]

let wallace_vs_array_cec () =
  List.iter
    (fun bits ->
       Th.assert_equivalent ~msg:"wallace = array"
         (G.multiplier ~bits)
         (G.wallace_multiplier ~bits))
    [ 2; 3; 4 ]

let wallace_shallower () =
  let w = Circuit.Netlist.depth (G.wallace_multiplier ~bits:6) in
  let a = Circuit.Netlist.depth (G.multiplier ~bits:6) in
  Alcotest.(check bool) "tree beats array" true (w < a)

let barrel_semantics () =
  let bits = 8 in
  let c = G.barrel_shifter ~bits in
  let rng = Sat.Rng.create 9 in
  for _ = 1 to 200 do
    let d = Sat.Rng.int rng 256 in
    let sh = Sat.Rng.int rng 8 in
    let ins = Array.append (Th.bits_of d bits) (Th.bits_of sh 3) in
    Alcotest.(check int) "shift" ((d lsl sh) land 255)
      (Th.int_of_bits (S.eval_outputs c ins))
  done;
  Alcotest.check_raises "power of two"
    (Invalid_argument "barrel_shifter: power-of-two width required")
    (fun () -> ignore (G.barrel_shifter ~bits:6))

let decoder_one_hot () =
  let c = G.decoder ~select_bits:3 in
  for sel = 0 to 7 do
    let outs = S.eval_outputs c (Th.bits_of sel 3) in
    Array.iteri
      (fun i v -> Alcotest.(check bool) "one-hot" (i = sel) v)
      outs
  done

let priority_encoder_semantics () =
  let bits = 6 in
  let c = G.priority_encoder ~bits in
  for mask = 0 to (1 lsl bits) - 1 do
    let outs = S.eval_outputs c (Th.bits_of mask bits) in
    let n_out = Array.length outs in
    let valid = outs.(n_out - 1) in
    Alcotest.(check bool) "valid" (mask <> 0) valid;
    if mask <> 0 then begin
      let expected =
        let rec first i = if mask land (1 lsl i) <> 0 then i else first (i + 1) in
        first 0
      in
      let index = Th.int_of_bits (Array.sub outs 0 (n_out - 1)) in
      Alcotest.(check int) "highest priority index" expected index
    end
  done

let new_families_roundtrip_and_atpg () =
  (* the new generators compose with the rest of the stack *)
  let c = G.kogge_stone_adder ~bits:3 in
  let c2 = Circuit.Bench_format.parse_string (Circuit.Bench_format.to_string c) in
  Th.assert_equivalent ~msg:"bench roundtrip" c c2;
  let s = Eda.Atpg.run (G.decoder ~select_bits:2) in
  Alcotest.(check int) "decoder fully testable" s.Eda.Atpg.total
    s.Eda.Atpg.detected

let suite =
  [
    Th.case "kogge-stone arithmetic" kogge_stone_arithmetic;
    Th.case "kogge-stone vs ripple" kogge_stone_vs_ripple_cec;
    Th.case "kogge-stone depth" kogge_stone_log_depth;
    Th.case "wallace arithmetic" wallace_arithmetic;
    Th.case "wallace vs array" wallace_vs_array_cec;
    Th.case "wallace depth" wallace_shallower;
    Th.case "barrel shifter" barrel_semantics;
    Th.case "decoder" decoder_one_hot;
    Th.case "priority encoder" priority_encoder_semantics;
    Th.case "integration" new_families_roundtrip_and_atpg;
  ]
