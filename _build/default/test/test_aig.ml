module A = Aig
module N = Circuit.Netlist

let constants_and_identities () =
  let m = A.create () in
  let a = A.add_input m in
  Alcotest.(check bool) "a & true = a" true (A.and_ m a A.const_true = a);
  Alcotest.(check bool) "a & false = false" true
    (A.and_ m a A.const_false = A.const_false);
  Alcotest.(check bool) "a & a = a" true (A.and_ m a a = a);
  Alcotest.(check bool) "a & ~a = false" true
    (A.and_ m a (A.neg a) = A.const_false);
  Alcotest.(check bool) "double negation" true (A.neg (A.neg a) = a)

let hash_consing () =
  let m = A.create () in
  let a = A.add_input m in
  let b = A.add_input m in
  let g1 = A.and_ m a b in
  let g2 = A.and_ m b a in
  Alcotest.(check bool) "commutative sharing" true (g1 = g2);
  Alcotest.(check int) "one AND node" 1 (A.num_ands m);
  let x1 = A.xor m a b in
  let x2 = A.xor m a b in
  Alcotest.(check bool) "xor shared" true (x1 = x2)

let eval_semantics () =
  let m = A.create () in
  let a = A.add_input m in
  let b = A.add_input m in
  let f = A.mux m a (A.xor m a b) (A.or_ m a b) in
  for mask = 0 to 3 do
    let ins = [| mask land 1 <> 0; mask land 2 <> 0 |] in
    let expected = if ins.(0) then ins.(0) <> ins.(1) else ins.(0) || ins.(1) in
    Alcotest.(check bool) "mux/xor/or eval" expected (A.eval m ins f)
  done

let netlist_roundtrip () =
  List.iter
    (fun c ->
       let m, outs = A.of_netlist c in
       let back = A.to_netlist m ~outputs:outs in
       Th.assert_equivalent ~msg:"aig roundtrip" c back;
       (* AIG evaluation matches circuit simulation *)
       let rng = Sat.Rng.create 3 in
       for _ = 1 to 30 do
         let ins =
           Array.init (List.length (N.inputs c)) (fun _ -> Sat.Rng.bool rng)
         in
         let sim = Circuit.Simulate.eval_outputs c ins in
         List.iteri
           (fun i (_, e) ->
              Alcotest.(check bool) "aig eval" sim.(i) (A.eval m ins e))
           outs
       done)
    [
      Circuit.Generators.c17 ();
      Circuit.Generators.ripple_adder ~bits:3;
      Circuit.Generators.multiplier ~bits:3;
      Circuit.Generators.parity ~bits:5;
      Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:9;
    ]

let merge_shares_structure () =
  let c = Circuit.Generators.ripple_adder ~bits:4 in
  let m_single, _ = A.of_netlist c in
  let m_double, pairs = A.merge_netlists c (N.copy c) in
  (* an identical copy adds no AND nodes at all *)
  Alcotest.(check int) "full sharing" (A.num_ands m_single)
    (A.num_ands m_double);
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "outputs collapse" true (a = b))
    pairs

let cnf_translation () =
  let rng = Sat.Rng.create 21 in
  for seed = 1 to 15 do
    let c = Circuit.Generators.random_circuit ~inputs:5 ~gates:25 ~seed:(seed + 40) in
    let m, outs = A.of_netlist c in
    let f, lit_of = A.to_cnf m in
    let ins = Array.init 5 (fun _ -> Sat.Rng.bool rng) in
    (* constrain the inputs through fresh input edges *)
    let g = Cnf.Formula.copy f in
    List.iteri
      (fun i _ ->
         let l = lit_of (A.input m i) in
         Cnf.Formula.add_clause_l g
           [ (if ins.(i) then l else Cnf.Lit.negate l) ])
      (N.inputs c);
    match Th.solve_cdcl g with
    | Sat.Types.Sat model ->
      List.iteri
        (fun i (_, e) ->
           let l = lit_of e in
           let v = model.(Cnf.Lit.var l) in
           let v = if Cnf.Lit.is_pos l then v else not v in
           Alcotest.(check bool) "cnf model matches simulation"
             (Circuit.Simulate.eval_outputs c ins).(i) v)
        outs
    | _ -> Alcotest.fail "inputs fixed: sat expected"
  done

let aig_based_cec () =
  (* merged-manager equivalence check: miter over shared-structure AIG *)
  let c1 = Circuit.Generators.multiplier ~bits:3 in
  let c2 = Circuit.Transform.rewrite_xor c1 in
  let m, pairs = A.merge_netlists c1 c2 in
  let diff =
    List.fold_left
      (fun acc (a, b) -> A.or_ m acc (A.xor m a b))
      A.const_false pairs
  in
  let f, lit_of = A.to_cnf m in
  Cnf.Formula.add_clause_l f [ lit_of diff ];
  Alcotest.(check bool) "equivalent via AIG miter" false
    (Th.outcome_sat (Th.solve_cdcl f))

let suite =
  [
    Th.case "constants" constants_and_identities;
    Th.case "hash consing" hash_consing;
    Th.case "eval" eval_semantics;
    Th.case "netlist roundtrip" netlist_roundtrip;
    Th.case "merge sharing" merge_shares_structure;
    Th.case "cnf translation" cnf_translation;
    Th.case "aig cec" aig_based_cec;
  ]
