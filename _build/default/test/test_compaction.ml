module C = Eda.Compaction

let coverage_preserved () =
  List.iter
    (fun circuit ->
       let s = Eda.Atpg.run circuit in
       let r = C.compact circuit s.Eda.Atpg.vectors in
       Alcotest.(check bool) "no growth" true
         (List.length r.C.compacted <= r.C.original);
       (* the compacted set detects exactly the same faults *)
       let faults = Eda.Atpg.fault_list circuit in
       let before = Eda.Atpg.fault_simulate circuit faults s.Eda.Atpg.vectors in
       let after = Eda.Atpg.fault_simulate circuit faults r.C.compacted in
       Alcotest.(check int) "coverage preserved" (List.length before)
         (List.length after);
       Alcotest.(check int) "matrix agrees" (List.length before)
         r.C.faults_covered)
    [
      Circuit.Generators.c17 ();
      Circuit.Generators.ripple_adder ~bits:4;
      Circuit.Generators.alu ~bits:2;
    ]

let optimal_not_worse_than_greedy () =
  let circuit = Circuit.Generators.carry_skip_adder ~bits:4 ~block:2 in
  let s = Eda.Atpg.run circuit in
  let opt = C.compact ~optimal:true circuit s.Eda.Atpg.vectors in
  let grd = C.compact ~optimal:false circuit s.Eda.Atpg.vectors in
  Alcotest.(check bool) "optimal <= greedy" true
    (List.length opt.C.compacted <= List.length grd.C.compacted);
  Alcotest.(check bool) "flag" true opt.C.optimal

let empty_vector_set () =
  let circuit = Circuit.Generators.majority3 () in
  let r = C.compact circuit [] in
  Alcotest.(check int) "nothing to keep" 0 (List.length r.C.compacted);
  Alcotest.(check int) "nothing covered" 0 r.C.faults_covered

let suite =
  [
    Th.case "coverage preserved" coverage_preserved;
    Th.case "optimal vs greedy" optimal_not_worse_than_greedy;
    Th.case "empty set" empty_vector_set;
  ]
