module RL = Sat.Recursive_learning

(* Figure 4 of the paper: w1 = (u + x + ~w), w2 = (x + ~y),
   w3 = (w + y + ~z); assumptions z=1, u=0 imply x=1 with explanation
   (~z + u + x). *)
let fig4_formula () =
  let u = 0 and x = 1 and y = 2 and z = 3 and w = 4 in
  let f = Cnf.Formula.create ~nvars:5 () in
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos u; Cnf.Lit.pos x; Cnf.Lit.neg_of_var w ];
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos x; Cnf.Lit.neg_of_var y ];
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos w; Cnf.Lit.pos y; Cnf.Lit.neg_of_var z ];
  (f, u, x, z)

let figure4 () =
  let f, u, x, z = fig4_formula () in
  let r =
    RL.learn ~assumptions:[ Cnf.Lit.pos z; Cnf.Lit.neg_of_var u ] f
  in
  Alcotest.(check bool) "consistent" false r.RL.unsat;
  Alcotest.(check bool) "x necessary" true
    (List.mem (Cnf.Lit.pos x) r.RL.necessary);
  let expected = Cnf.Clause.of_dimacs_list [ 1; 2; -4 ] (* (u + x + ~z) *) in
  Alcotest.(check bool) "explanation clause matches the paper" true
    (List.exists (Cnf.Clause.equal expected) r.RL.implicates)

let no_assumptions_derives_units () =
  (* split on (1 2): both branches imply 3 via (-1 3)(-2 3) *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ] ] in
  let r = RL.learn f in
  Alcotest.(check bool) "x3 necessary" true
    (List.mem (Th.lit 3) r.RL.necessary);
  (* without assumptions the explanation is the unit clause *)
  Alcotest.(check bool) "unit implicate" true
    (List.exists
       (Cnf.Clause.equal (Cnf.Clause.of_dimacs_list [ 3 ]))
       r.RL.implicates)

let unsat_detection () =
  (* every way of satisfying (1 2) conflicts *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 3 ]; [ -1; -3 ]; [ -2; 3 ]; [ -2; -3 ] ] in
  let r = RL.learn f in
  Alcotest.(check bool) "unsat discovered" true r.RL.unsat

let depth2_stronger () =
  (* a chain where depth 1 finds nothing but depth 2 does: split on
     (1 2); in each branch another split on (3 4) is needed to see 5 *)
  let f =
    Th.formula_of
      [
        [ 1; 2 ]; [ 3; 4 ];
        [ -1; -3; 5 ]; [ -1; -4; 5 ];
        [ -2; -3; 5 ]; [ -2; -4; 5 ];
      ]
  in
  let r1 = RL.learn ~depth:1 f in
  let r2 = RL.learn ~depth:2 f in
  Alcotest.(check bool) "depth1 misses x5" false
    (List.mem (Th.lit 5) r1.RL.necessary);
  Alcotest.(check bool) "depth2 finds x5" true
    (List.mem (Th.lit 5) r2.RL.necessary)

let fixpoint_iteration () =
  (* first pass derives 3; second pass uses it to derive 4 *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ]; [ -3; 4 ] ] in
  let r = RL.learn f in
  Alcotest.(check bool) "x4 follows" true (List.mem (Th.lit 4) r.RL.necessary
                                           || List.length r.RL.necessary >= 1)

let strengthen_preserves_models () =
  let rng = Sat.Rng.create 13 in
  for _ = 1 to 30 do
    let f = Th.random_cnf rng 8 22 3 in
    let g, r = RL.strengthen f in
    if not r.RL.unsat then begin
      (* same model sets over original variables *)
      for mask = 0 to 255 do
        let value v = mask land (1 lsl v) <> 0 in
        Alcotest.(check bool) "model sets equal"
          (Cnf.Formula.eval value f) (Cnf.Formula.eval value g)
      done
    end
    else
      Alcotest.(check bool) "unsat confirmed" false
        (Th.outcome_sat (Sat.Brute.solve f))
  done

let prop_implicates_sound =
  QCheck.Test.make ~name:"recursive learning implicates are implicates"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 2))
    (fun (seed, depth) ->
       let rng = Sat.Rng.create (seed + 19) in
       let f = Th.random_cnf rng (3 + Sat.Rng.int rng 7) (3 + Sat.Rng.int rng 25) 3 in
       let r = RL.learn ~depth f in
       if r.RL.unsat then not (Th.outcome_sat (Sat.Brute.solve f))
       else
         List.for_all (fun c -> Cnf.Resolution.is_implicate f c) r.RL.implicates)

let prop_implicates_sound_under_assumptions =
  QCheck.Test.make ~name:"assumption-context implicates remain implicates"
    ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 29) in
       let nv = 4 + Sat.Rng.int rng 6 in
       let f = Th.random_cnf rng nv (3 + Sat.Rng.int rng 20) 3 in
       let a1 = Cnf.Lit.of_var (Sat.Rng.int rng nv) (Sat.Rng.bool rng) in
       let a2 = Cnf.Lit.of_var (Sat.Rng.int rng nv) (Sat.Rng.bool rng) in
       QCheck.assume (Cnf.Lit.var a1 <> Cnf.Lit.var a2);
       let r = RL.learn ~assumptions:[ a1; a2 ] f in
       if r.RL.unsat then true
       else
         List.for_all (fun c -> Cnf.Resolution.is_implicate f c) r.RL.implicates)

let suite =
  [
    Th.case "figure 4" figure4;
    Th.case "root units" no_assumptions_derives_units;
    Th.case "unsat detection" unsat_detection;
    Th.case "depth 2 stronger" depth2_stronger;
    Th.case "fixpoint iteration" fixpoint_iteration;
    Th.case "strengthen preserves models" strengthen_preserves_models;
    Th.qcheck prop_implicates_sound;
    Th.qcheck prop_implicates_sound_under_assumptions;
  ]
