let truth_tables () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let check name f expected =
    for mask = 0 to 3 do
      let env v = mask land (1 lsl v) <> 0 in
      Alcotest.(check bool) name (expected (env 0) (env 1)) (Bdd.eval f env)
    done
  in
  check "and" (Bdd.and_ m x y) ( && );
  check "or" (Bdd.or_ m x y) ( || );
  check "xor" (Bdd.xor m x y) ( <> );
  check "iff" (Bdd.iff m x y) ( = );
  check "imp" (Bdd.imp m x y) (fun a b -> (not a) || b);
  check "not x" (Bdd.not_ m x) (fun a _ -> not a)

let canonicity () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "commutative and" true
    (Bdd.equal (Bdd.and_ m x y) (Bdd.and_ m y x));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal
       (Bdd.not_ m (Bdd.and_ m x y))
       (Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y)));
  Alcotest.(check bool) "double negation" true
    (Bdd.equal x (Bdd.not_ m (Bdd.not_ m x)));
  Alcotest.(check bool) "x and ~x is zero" true
    (Bdd.is_zero (Bdd.and_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x or ~x is one" true
    (Bdd.is_one (Bdd.or_ m x (Bdd.not_ m x)))

let ite_cases () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.ite m x y z in
  for mask = 0 to 7 do
    let env v = mask land (1 lsl v) <> 0 in
    Alcotest.(check bool) "ite semantics"
      (if env 0 then env 1 else env 2)
      (Bdd.eval f env)
  done

let restrict_exists () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.xor m x y in
  Alcotest.(check bool) "restrict x=1" true
    (Bdd.equal (Bdd.restrict m f 0 true) (Bdd.not_ m y));
  Alcotest.(check bool) "exists x" true (Bdd.is_one (Bdd.exists m [ 0 ] f));
  Alcotest.(check bool) "exists both" true (Bdd.is_one (Bdd.exists m [ 0; 1 ] f))

let sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 0.001)) "xor has 2 models" 2.
    (Bdd.sat_count m ~nvars:2 (Bdd.xor m x y));
  Alcotest.(check (float 0.001)) "and has 1" 1.
    (Bdd.sat_count m ~nvars:2 (Bdd.and_ m x y));
  Alcotest.(check (float 0.001)) "one over 3 vars" 8.
    (Bdd.sat_count m ~nvars:3 (Bdd.one m));
  Alcotest.(check (float 0.001)) "var over 3 vars" 4.
    (Bdd.sat_count m ~nvars:3 (Bdd.var m 1))

let any_sat_support () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and z = Bdd.var m 2 in
  let f = Bdd.and_ m x (Bdd.not_ m z) in
  (match Bdd.any_sat f with
   | Some assignment ->
     Alcotest.(check bool) "assignment correct" true
       (List.mem (0, true) assignment && List.mem (2, false) assignment)
   | None -> Alcotest.fail "satisfiable");
  Alcotest.(check bool) "zero has no sat" true (Bdd.any_sat (Bdd.zero m) = None);
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Bdd.support f)

let node_limit () =
  let m = Bdd.manager ~node_limit:10 () in
  Alcotest.check_raises "limit" Bdd.Node_limit (fun () ->
      (* parity of 12 variables needs > 10 nodes *)
      let rec build acc v =
        if v >= 12 then acc else build (Bdd.xor m acc (Bdd.var m v)) (v + 1)
      in
      ignore (build (Bdd.zero m) 0))

let prop_bdd_matches_eval =
  QCheck.Test.make ~name:"bdd of random expression matches evaluation"
    ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 41) in
       let f = Th.random_cnf rng 6 12 3 in
       let m = Bdd.manager () in
       (* CNF -> BDD *)
       let clause_bdd c =
         Cnf.Clause.to_list c
         |> List.map (fun l ->
             let v = Bdd.var m (Cnf.Lit.var l) in
             if Cnf.Lit.is_pos l then v else Bdd.not_ m v)
         |> List.fold_left (Bdd.or_ m) (Bdd.zero m)
       in
       let whole =
         Array.fold_left
           (fun acc c -> Bdd.and_ m acc (clause_bdd c))
           (Bdd.one m) (Cnf.Formula.clauses f)
       in
       let ok = ref true in
       for mask = 0 to 63 do
         let env v = mask land (1 lsl v) <> 0 in
         if Bdd.eval whole env <> Cnf.Formula.eval env f then ok := false
       done;
       !ok
       && Bdd.sat_count m ~nvars:6 whole
          = float_of_int (Sat.Brute.count_models f))

let prop_size_positive =
  QCheck.Test.make ~name:"size counts internal nodes" ~count:50
    QCheck.(int_range 1 10)
    (fun n ->
       let m = Bdd.manager () in
       let rec parity acc v =
         if v >= n then acc else parity (Bdd.xor m acc (Bdd.var m v)) (v + 1)
       in
       let f = parity (Bdd.zero m) 0 in
       (* the parity function's BDD has exactly 2n - 1 internal nodes *)
       Bdd.size f = (2 * n) - 1)

let suite =
  [
    Th.case "truth tables" truth_tables;
    Th.case "canonicity" canonicity;
    Th.case "ite" ite_cases;
    Th.case "restrict/exists" restrict_exists;
    Th.case "sat_count" sat_count;
    Th.case "any_sat/support" any_sat_support;
    Th.case "node limit" node_limit;
    Th.qcheck prop_bdd_matches_eval;
    Th.qcheck prop_size_positive;
  ]
