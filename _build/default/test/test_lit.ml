let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let basics () =
  check_int "pos var" 0 (Cnf.Lit.pos 0);
  check_int "neg var" 1 (Cnf.Lit.neg_of_var 0);
  check_int "pos 3" 6 (Cnf.Lit.pos 3);
  check_int "var of pos" 3 (Cnf.Lit.var (Cnf.Lit.pos 3));
  check_int "var of neg" 3 (Cnf.Lit.var (Cnf.Lit.neg_of_var 3));
  check_bool "is_pos" true (Cnf.Lit.is_pos (Cnf.Lit.pos 5));
  check_bool "is_neg" true (Cnf.Lit.is_neg (Cnf.Lit.neg_of_var 5));
  check_int "negate pos" (Cnf.Lit.neg_of_var 4) (Cnf.Lit.negate (Cnf.Lit.pos 4))

let dimacs () =
  check_int "of_dimacs 1" (Cnf.Lit.pos 0) (Cnf.Lit.of_dimacs 1);
  check_int "of_dimacs -1" (Cnf.Lit.neg_of_var 0) (Cnf.Lit.of_dimacs (-1));
  check_int "to_dimacs" (-7) (Cnf.Lit.to_dimacs (Cnf.Lit.neg_of_var 6));
  Alcotest.check_raises "zero rejected" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Cnf.Lit.of_dimacs 0))

let invalid () =
  Alcotest.check_raises "negative var"
    (Invalid_argument "Lit.of_var: negative variable") (fun () ->
        ignore (Cnf.Lit.of_var (-1) true))

let prop_negate_involution =
  QCheck.Test.make ~name:"negate is an involution" ~count:500
    QCheck.(int_bound 10_000)
    (fun l -> Cnf.Lit.negate (Cnf.Lit.negate l) = l)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs roundtrip" ~count:500
    QCheck.(int_range (-500) 500)
    (fun i ->
       QCheck.assume (i <> 0);
       Cnf.Lit.to_dimacs (Cnf.Lit.of_dimacs i) = i)

let prop_negate_flips_polarity =
  QCheck.Test.make ~name:"negate flips polarity, keeps var" ~count:500
    QCheck.(int_bound 10_000)
    (fun l ->
       let n = Cnf.Lit.negate l in
       Cnf.Lit.var n = Cnf.Lit.var l && Cnf.Lit.is_pos n <> Cnf.Lit.is_pos l)

let suite =
  [
    Th.case "basics" basics;
    Th.case "dimacs" dimacs;
    Th.case "invalid" invalid;
    Th.qcheck prop_negate_involution;
    Th.qcheck prop_dimacs_roundtrip;
    Th.qcheck prop_negate_flips_polarity;
  ]
