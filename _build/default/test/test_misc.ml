(* Cross-cutting robustness: determinism, solver reuse, printers, and
   edge cases that don't belong to a single module. *)

let solver_determinism () =
  (* same seed, same instance -> identical statistics *)
  let f = Th.random_cnf (Sat.Rng.create 5) 40 170 3 in
  let run () =
    let s = Sat.Cdcl.create f in
    ignore (Sat.Cdcl.solve s);
    let st = Sat.Cdcl.stats s in
    (st.Sat.Types.decisions, st.Sat.Types.conflicts, st.Sat.Types.propagations)
  in
  Alcotest.(check bool) "deterministic" true (run () = run ());
  (* randomized configs are deterministic per seed too *)
  let run_seeded seed =
    let cfg =
      { Sat.Types.default with Sat.Types.random_decision_freq = 0.3;
        random_seed = seed }
    in
    let s = Sat.Cdcl.create ~config:cfg f in
    ignore (Sat.Cdcl.solve s);
    (Sat.Cdcl.stats s).Sat.Types.decisions
  in
  Alcotest.(check int) "seeded determinism" (run_seeded 7) (run_seeded 7)

let solver_reuse_many_solves () =
  let s = Sat.Cdcl.create (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ]) in
  for i = 1 to 50 do
    let a = if i mod 2 = 0 then Th.lit 1 else Th.lit (-1) in
    match Sat.Cdcl.solve ~assumptions:[ a ] s with
    | Sat.Types.Sat m ->
      Alcotest.(check bool) "assumption honoured" true
        (m.(0) = (i mod 2 = 0))
    | _ -> Alcotest.fail "sat expected"
  done

let outcome_accessors () =
  Alcotest.(check bool) "is_sat" true
    (Sat.Types.is_sat (Sat.Types.Sat [||]));
  Alcotest.(check bool) "is_sat unsat" false (Sat.Types.is_sat Sat.Types.Unsat);
  Alcotest.check_raises "model_exn"
    (Invalid_argument "Types.model_exn: not a satisfiable outcome")
    (fun () -> ignore (Sat.Types.model_exn Sat.Types.Unsat))

let printers_smoke () =
  let non_empty s = Alcotest.(check bool) "printed" true (String.length s > 0) in
  non_empty (Format.asprintf "%a" Cnf.Lit.pp (Th.lit (-3)));
  non_empty (Format.asprintf "%a" Cnf.Clause.pp (Cnf.Clause.of_dimacs_list [ 1; -2 ]));
  non_empty (Format.asprintf "%a" Cnf.Formula.pp (Th.formula_of [ [ 1; 2 ] ]));
  non_empty (Format.asprintf "%a" Cnf.Expr.pp Cnf.Expr.(atom 0 &&& Not (atom 1)));
  non_empty (Format.asprintf "%a" Sat.Types.pp_stats (Sat.Types.mk_stats ()));
  non_empty (Format.asprintf "%a" Sat.Types.pp_outcome Sat.Types.Unsat);
  non_empty (Format.asprintf "%a" Circuit.Gate.pp Circuit.Gate.Nand);
  non_empty
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Generators.c17 ()))

let csat_multiple_objectives () =
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  let out n = List.assoc n (Circuit.Netlist.outputs c) in
  let s0 = out "s0" in
  let s2 = out "s2" in
  let cout = out "cout" in
  let r =
    Csat.solve ~objectives:[ (s0, true); (s2, false); (cout, true) ] c
  in
  Alcotest.(check bool) "multi-objective sat" true (Th.outcome_sat r.Csat.outcome);
  (* the pattern meets all three objectives under any completion *)
  List.iter
    (fun default ->
       let ins =
         List.map
           (fun id ->
              match List.assoc_opt id r.Csat.pattern with
              | Some b -> b
              | None -> default)
           (Circuit.Netlist.inputs c)
         |> Array.of_list
       in
       let v = Circuit.Simulate.eval_all c ins in
       Alcotest.(check bool) "objectives hold" true
         (v.(s0) && (not v.(s2)) && v.(cout)))
    [ false; true ]

let csat_objective_on_input () =
  let c = Circuit.Generators.majority3 () in
  let i0 = List.hd (Circuit.Netlist.inputs c) in
  let r = Csat.solve ~objectives:[ (i0, true) ] c in
  Alcotest.(check bool) "input objective" true (Th.outcome_sat r.Csat.outcome);
  Alcotest.(check bool) "input constrained" true
    (List.assoc_opt i0 r.Csat.pattern = Some true)

let dimacs_file_roundtrip () =
  let f = Th.random_cnf (Sat.Rng.create 3) 10 25 4 in
  let path = Filename.temp_file "satreda" ".cnf" in
  Cnf.Dimacs.write_file path f;
  let g = Cnf.Dimacs.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "clauses survive" (Cnf.Formula.nclauses f)
    (Cnf.Formula.nclauses g)

let bench_file_roundtrip () =
  let c = Circuit.Generators.alu ~bits:2 in
  let path = Filename.temp_file "satreda" ".bench" in
  Circuit.Bench_format.write_file path c;
  let c2 = Circuit.Bench_format.parse_file path in
  Sys.remove path;
  Th.assert_equivalent ~msg:"file roundtrip" c c2

let pb_empty_objective () =
  (* pure feasibility through the PB engine *)
  let open Eda.Pseudo_boolean in
  let p =
    { nvars = 2;
      constraints = [ ([ { coeff = 1; lit = Th.lit 1 };
                         { coeff = 1; lit = Th.lit 2 } ], 2) ];
      objective = [] }
  in
  match solve p with
  | Optimal (m, 0), _ -> Alcotest.(check bool) "both true" true (m.(0) && m.(1))
  | _ -> Alcotest.fail "feasible with empty objective"

let empty_circuit_edge_cases () =
  let c = Circuit.Netlist.create () in
  Alcotest.(check int) "depth of empty" 0 (Circuit.Netlist.depth c);
  let enc = Circuit.Encode.encode c in
  Alcotest.(check int) "no clauses" 0
    (Cnf.Formula.nclauses enc.Circuit.Encode.formula)

let suite =
  [
    Th.case "solver determinism" solver_determinism;
    Th.case "solver reuse" solver_reuse_many_solves;
    Th.case "outcome accessors" outcome_accessors;
    Th.case "printers" printers_smoke;
    Th.case "csat multiple objectives" csat_multiple_objectives;
    Th.case "csat objective on input" csat_objective_on_input;
    Th.case "dimacs file roundtrip" dimacs_file_roundtrip;
    Th.case "bench file roundtrip" bench_file_roundtrip;
    Th.case "pb empty objective" pb_empty_objective;
    Th.case "empty circuit" empty_circuit_edge_cases;
  ]
