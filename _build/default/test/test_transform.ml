module T = Circuit.Transform

let sample_circuits () =
  [
    Circuit.Generators.c17 ();
    Circuit.Generators.ripple_adder ~bits:3;
    Circuit.Generators.multiplier ~bits:2;
    Circuit.Generators.parity ~bits:5;
    Circuit.Generators.alu ~bits:2;
    Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:44;
  ]

let equivalence_preserving () =
  List.iteri
    (fun i c ->
       Th.assert_equivalent ~msg:"rewrite_xor" c (T.rewrite_xor c);
       Th.assert_equivalent ~msg:"demorgan" c (T.demorgan ~seed:i c);
       Th.assert_equivalent ~msg:"double_invert" c (T.double_invert ~seed:i c);
       Th.assert_equivalent ~msg:"add_redundancy" c (T.add_redundancy ~seed:i c);
       Th.assert_equivalent ~msg:"simplify" c (T.simplify c);
       (* compositions *)
       Th.assert_equivalent ~msg:"composed" c
         (T.simplify (T.demorgan ~seed:i (T.rewrite_xor c))))
    (sample_circuits ())

let xor_gone_after_rewrite () =
  let c = Circuit.Generators.parity ~bits:6 in
  let c2 = T.rewrite_xor c in
  for id = 0 to Circuit.Netlist.num_nodes c2 - 1 do
    match Circuit.Netlist.node c2 id with
    | Circuit.Netlist.Gate ((Circuit.Gate.Xor | Circuit.Gate.Xnor), _) ->
      Alcotest.fail "xor survived rewrite"
    | _ -> ()
  done

let bug_injection_usually_detected () =
  let detected = ref 0 in
  for seed = 1 to 12 do
    let c = Circuit.Generators.ripple_adder ~bits:3 in
    let buggy, _ = T.inject_bug ~seed c in
    let f, _ = Circuit.Miter.to_cnf c buggy in
    if Th.outcome_sat (Th.solve_cdcl f) then incr detected
  done;
  Alcotest.(check bool) "most mutants detected" true (!detected >= 9)

let simplify_folds_constants () =
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input ~name:"a" c in
  let zero = Circuit.Netlist.add_const c false in
  let one = Circuit.Netlist.add_const c true in
  let g1 = Circuit.Netlist.add_gate c Circuit.Gate.And [ a; one ] in
  let g2 = Circuit.Netlist.add_gate c Circuit.Gate.Or [ g1; zero ] in
  let g3 = Circuit.Netlist.add_gate c Circuit.Gate.Xor [ g2; zero ] in
  Circuit.Netlist.set_output ~name:"z" c g3;
  let s = T.simplify c in
  Alcotest.(check int) "all gates folded" 0 (Circuit.Netlist.gate_count s);
  Th.assert_equivalent c s

let simplify_cancels_xor_pairs () =
  (* a XOR a = 0 inside one gate *)
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let b = Circuit.Netlist.add_input c in
  let x1 = Circuit.Netlist.add_gate c Circuit.Gate.Xor [ a; a ] in
  let z = Circuit.Netlist.add_gate c Circuit.Gate.Or [ x1; b ] in
  Circuit.Netlist.set_output c z;
  (* z = b *)
  let s = T.simplify c in
  Alcotest.(check int) "all folded" 0 (Circuit.Netlist.gate_count s);
  Th.assert_equivalent c s

let simplify_contradiction () =
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let na = Circuit.Netlist.add_gate c Circuit.Gate.Not [ a ] in
  let z = Circuit.Netlist.add_gate c Circuit.Gate.And [ a; na ] in
  Circuit.Netlist.set_output ~name:"z" c z;
  let s = T.simplify c in
  Alcotest.(check int) "a & ~a folded" 0 (Circuit.Netlist.gate_count s);
  Th.assert_equivalent c s

let redundancy_adds_gates () =
  let c = Circuit.Generators.majority3 () in
  let r = T.add_redundancy ~seed:1 c in
  Alcotest.(check bool) "larger" true
    (Circuit.Netlist.gate_count r > Circuit.Netlist.gate_count c)

let strash_dedupes () =
  (* two copies of the same logic collapse into one *)
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let b = Circuit.Netlist.add_input c in
  let g1 = Circuit.Netlist.add_gate c Circuit.Gate.And [ a; b ] in
  let g2 = Circuit.Netlist.add_gate c Circuit.Gate.And [ b; a ] in
  let g3 = Circuit.Netlist.add_gate c Circuit.Gate.Or [ g1; g2 ] in
  Circuit.Netlist.set_output c g3;
  let s = T.strash c in
  (* the two ANDs merge; the OR over identical fanins survives strash *)
  Alcotest.(check int) "deduped" 2 (Circuit.Netlist.gate_count s);
  Th.assert_equivalent c s

let strash_respects_noncommutative_chains () =
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let n1 = Circuit.Netlist.add_gate c Circuit.Gate.Not [ a ] in
  let n2 = Circuit.Netlist.add_gate c Circuit.Gate.Not [ a ] in
  let g = Circuit.Netlist.add_gate c Circuit.Gate.And [ n1; n2 ] in
  Circuit.Netlist.set_output c g;
  let s = T.strash c in
  Alcotest.(check int) "duplicate inverters merged" 2
    (Circuit.Netlist.gate_count s);
  Th.assert_equivalent c s

let strash_on_doubled_circuit () =
  (* importing a circuit twice over shared inputs then strashing halves it *)
  List.iter
    (fun c ->
       let m = Circuit.Miter.build c (Circuit.Netlist.copy c) in
       let s = T.strash m in
       Alcotest.(check bool) "miter shrinks under strash" true
         (Circuit.Netlist.gate_count s < Circuit.Netlist.gate_count m);
       Th.assert_equivalent m s)
    [ Circuit.Generators.ripple_adder ~bits:3;
      Circuit.Generators.multiplier ~bits:3 ]

let suite =
  [
    Th.case "equivalence preserving" equivalence_preserving;
    Th.case "strash dedupes" strash_dedupes;
    Th.case "strash non-commutative" strash_respects_noncommutative_chains;
    Th.case "strash doubled circuit" strash_on_doubled_circuit;
    Th.case "xor rewrite complete" xor_gone_after_rewrite;
    Th.case "bug injection" bug_injection_usually_detected;
    Th.case "constant folding" simplify_folds_constants;
    Th.case "xor cancellation" simplify_cancels_xor_pairs;
    Th.case "contradiction folding" simplify_contradiction;
    Th.case "redundancy grows" redundancy_adds_gates;
  ]
