module Clause = Cnf.Clause

let clause ints = Clause.of_dimacs_list ints

let normalisation () =
  Alcotest.(check int) "dedup" 2 (Clause.size (clause [ 1; 2; 1; 2 ]));
  Alcotest.(check bool) "sorted equal" true
    (Clause.equal (clause [ 2; 1 ]) (clause [ 1; 2 ]));
  Alcotest.(check bool) "empty" true (Clause.is_empty (clause []))

let tautology () =
  Alcotest.(check bool) "x or ~x" true (Clause.is_tautology (clause [ 1; -1 ]));
  Alcotest.(check bool) "mixed" true
    (Clause.is_tautology (clause [ 3; 2; -2; 1 ]));
  Alcotest.(check bool) "no taut" false (Clause.is_tautology (clause [ 1; 2; 3 ]))

let membership () =
  Alcotest.(check bool) "mem" true (Clause.mem (Th.lit 2) (clause [ 1; 2 ]));
  Alcotest.(check bool) "mem neg" false
    (Clause.mem (Th.lit (-2)) (clause [ 1; 2 ]))

let subsumption () =
  Alcotest.(check bool) "subset" true
    (Clause.subsumes (clause [ 1 ]) (clause [ 1; 2 ]));
  Alcotest.(check bool) "not subset" false
    (Clause.subsumes (clause [ 1; 3 ]) (clause [ 1; 2 ]));
  Alcotest.(check bool) "self" true
    (Clause.subsumes (clause [ 1; 2 ]) (clause [ 1; 2 ]))

let eval () =
  let c = clause [ 1; -2 ] in
  Alcotest.(check bool) "sat by pos" true
    (Clause.eval (fun v -> v = 0) c);
  Alcotest.(check bool) "sat by neg" true
    (Clause.eval (fun _ -> false) c);
  Alcotest.(check bool) "unsat" false
    (Clause.eval (fun v -> v = 1) c)

let map_vars () =
  let c = clause [ 1; -2 ] in
  let mapped = Clause.map_vars (fun v -> Cnf.Lit.pos (v + 10)) c in
  Alcotest.(check bool) "shifted" true
    (Clause.equal mapped (Clause.of_list [ Cnf.Lit.pos 10; Cnf.Lit.neg_of_var 11 ]))

let lit_gen = QCheck.map (fun (v, p) -> Cnf.Lit.of_var v p)
    QCheck.(pair (int_bound 10) bool)

let clause_gen = QCheck.list_of_size (QCheck.Gen.int_range 0 8) lit_gen

let prop_subsumes_semantics =
  (* if c subsumes d then every assignment satisfying c satisfies d *)
  QCheck.Test.make ~name:"subsumption implies entailment" ~count:300
    QCheck.(pair clause_gen clause_gen)
    (fun (ls1, ls2) ->
       let c = Clause.of_list ls1 and d = Clause.of_list ls2 in
       if not (Clause.subsumes c d) then true
       else
         let n = 11 in
         let ok = ref true in
         for mask = 0 to (1 lsl n) - 1 do
           let value v = mask land (1 lsl v) <> 0 in
           if Clause.eval value c && not (Clause.eval value d) then ok := false
         done;
         !ok)

let prop_tautology_always_true =
  QCheck.Test.make ~name:"tautologies satisfied everywhere" ~count:300
    clause_gen
    (fun ls ->
       let c = Clause.of_list ls in
       if not (Clause.is_tautology c) then true
       else
         let ok = ref true in
         for mask = 0 to (1 lsl 11) - 1 do
           if not (Clause.eval (fun v -> mask land (1 lsl v) <> 0) c) then
             ok := false
         done;
         !ok)

let suite =
  [
    Th.case "normalisation" normalisation;
    Th.case "tautology" tautology;
    Th.case "membership" membership;
    Th.case "subsumption" subsumption;
    Th.case "eval" eval;
    Th.case "map_vars" map_vars;
    Th.qcheck prop_subsumes_semantics;
    Th.qcheck prop_tautology_always_true;
  ]
