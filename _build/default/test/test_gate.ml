module G = Circuit.Gate

let eval_truth_tables () =
  let cases =
    [
      (G.And, [ true; true ], true);
      (G.And, [ true; false ], false);
      (G.Or, [ false; false ], false);
      (G.Or, [ false; true ], true);
      (G.Nand, [ true; true ], false);
      (G.Nand, [ false; true ], true);
      (G.Nor, [ false; false ], true);
      (G.Nor, [ true; false ], false);
      (G.Xor, [ true; false ], true);
      (G.Xor, [ true; true ], false);
      (G.Xnor, [ true; true ], true);
      (G.Xnor, [ true; false ], false);
      (G.Not, [ true ], false);
      (G.Buf, [ true ], true);
    ]
  in
  List.iter
    (fun (g, ins, expected) ->
       Alcotest.(check bool) (G.to_string g) expected (G.eval g ins))
    cases

let nary () =
  Alcotest.(check bool) "and3" true (G.eval G.And [ true; true; true ]);
  Alcotest.(check bool) "or4" true (G.eval G.Or [ false; false; false; true ]);
  Alcotest.(check bool) "xor3 parity" true (G.eval G.Xor [ true; true; true ]);
  Alcotest.(check bool) "xnor3" false (G.eval G.Xnor [ true; true; true ])

let arity () =
  Alcotest.(check bool) "not unary only" false (G.arity_ok G.Not 2);
  Alcotest.(check bool) "and needs 2" false (G.arity_ok G.And 1);
  Alcotest.check_raises "eval arity" (Invalid_argument "Gate.eval: arity")
    (fun () -> ignore (G.eval G.Not [ true; false ]))

let controlling_semantics () =
  (* a controlling input determines the output: check against eval *)
  List.iter
    (fun g ->
       match G.controlling g, G.controlled_output g with
       | Some c, Some out ->
         Alcotest.(check bool)
           (G.to_string g ^ " controlled")
           out
           (G.eval g [ c; not c ]);
         Alcotest.(check bool)
           (G.to_string g ^ " controlled 2")
           out
           (G.eval g [ not c; c ])
       | None, None -> ()
       | Some _, None | None, Some _ ->
         Alcotest.fail "controlling/controlled_output inconsistent")
    G.all

let inverting_semantics () =
  (* inverting gates complement their base counterpart *)
  let base = [ (G.Nand, G.And); (G.Nor, G.Or); (G.Xnor, G.Xor) ] in
  List.iter
    (fun (inv, pos) ->
       Alcotest.(check bool) "inverting flag" true (G.inverting inv);
       for mask = 0 to 3 do
         let ins = [ mask land 1 <> 0; mask land 2 <> 0 ] in
         Alcotest.(check bool) "complement" (not (G.eval pos ins))
           (G.eval inv ins)
       done)
    base;
  Alcotest.(check bool) "not inverting buf" false (G.inverting G.Buf)

let string_roundtrip () =
  List.iter
    (fun g ->
       Alcotest.(check bool) "roundtrip" true
         (G.of_string (G.to_string g) = Some g))
    G.all;
  Alcotest.(check bool) "bench BUFF" true (G.of_string "BUFF" = Some G.Buf);
  Alcotest.(check bool) "lowercase" true (G.of_string "nand" = Some G.Nand);
  Alcotest.(check bool) "unknown" true (G.of_string "MAJ" = None)

let suite =
  [
    Th.case "truth tables" eval_truth_tables;
    Th.case "n-ary" nary;
    Th.case "arity" arity;
    Th.case "controlling" controlling_semantics;
    Th.case "inverting" inverting_semantics;
    Th.case "strings" string_roundtrip;
  ]
