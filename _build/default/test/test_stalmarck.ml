module S = Sat.Stalmarck

let simple_refutations () =
  Alcotest.(check bool) "empty clause" true
    (S.prove_unsat (Th.formula_of [ [] ]));
  Alcotest.(check bool) "unit clash" true
    (S.prove_unsat (Th.formula_of [ [ 1 ]; [ -1 ] ]));
  (* all four 2-clauses over two variables: depth-1 dilemma closes it *)
  Alcotest.(check bool) "2-var complete" true
    (S.prove_unsat (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ]))

let never_wrong_on_sat () =
  let rng = Sat.Rng.create 7 in
  for _ = 1 to 60 do
    let f = Th.random_cnf rng 8 20 3 in
    if Th.outcome_sat (Sat.Brute.solve f) then
      Alcotest.(check bool) "no false refutation" false
        (S.prove_unsat ~depth:2 f)
  done

let dilemma_derives_common_assignments () =
  (* both values of x1 force x2 *)
  let f = Th.formula_of [ [ -1; 2 ]; [ 1; 2 ]; [ 3; 4 ] ] in
  match S.saturate f with
  | S.Saturated forced ->
    Alcotest.(check bool) "x2 forced" true (List.mem (Th.lit 2) forced)
  | S.Refuted _ -> Alcotest.fail "satisfiable"

let forced_literals_are_backbones () =
  (* every literal reported forced must hold in every model *)
  let rng = Sat.Rng.create 13 in
  for _ = 1 to 40 do
    let f = Th.random_cnf rng 7 16 3 in
    match S.saturate ~depth:2 f with
    | S.Refuted _ ->
      Alcotest.(check bool) "refutations sound" false
        (Th.outcome_sat (Sat.Brute.solve f))
    | S.Saturated forced ->
      List.iter
        (fun l ->
           let g = Cnf.Formula.copy f in
           Cnf.Formula.add_clause_l g [ Cnf.Lit.negate l ];
           Alcotest.(check bool) "backbone literal" false
             (Th.outcome_sat (Sat.Brute.solve g)))
        forced
  done

let depth_hierarchy () =
  (* php(3,2) needs more than plain BCP; saturation refutes it *)
  let php n m =
    let v i j = (i * m) + j + 1 in
    let cls = ref [] in
    for i = 0 to n - 1 do
      cls := List.init m (fun j -> v i j) :: !cls
    done;
    for j = 0 to m - 1 do
      for i1 = 0 to n - 1 do
        for i2 = i1 + 1 to n - 1 do
          cls := [ -(v i1 j); -(v i2 j) ] :: !cls
        done
      done
    done;
    Th.formula_of !cls
  in
  Alcotest.(check bool) "php(3,2) refuted at low depth" true
    (S.prove_unsat ~depth:2 (php 3 2));
  (* a CEC miter of a small circuit pair is within depth 2 *)
  let c = Circuit.Generators.majority3 () in
  let f, _ = Circuit.Miter.to_cnf c (Circuit.Transform.demorgan ~seed:4 c) in
  Alcotest.(check bool) "small miter refuted" true (S.prove_unsat ~depth:2 f)

let incompleteness_is_honest () =
  (* php(5,4) is beyond depth-1 saturation: must NOT claim refutation,
     and must not loop forever *)
  let v i j = (i * 4) + j + 1 in
  let cls = ref [] in
  for i = 0 to 4 do
    cls := List.init 4 (fun j -> v i j) :: !cls
  done;
  for j = 0 to 3 do
    for i1 = 0 to 4 do
      for i2 = i1 + 1 to 4 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  match S.saturate ~depth:1 (Th.formula_of !cls) with
  | S.Saturated _ -> ()
  | S.Refuted d ->
    (* if it does refute, it must at least be correct *)
    Alcotest.(check bool) "sound" true (d >= 1)

let suite =
  [
    Th.case "simple refutations" simple_refutations;
    Th.case "never wrong on sat" never_wrong_on_sat;
    Th.case "dilemma" dilemma_derives_common_assignments;
    Th.case "backbones" forced_literals_are_backbones;
    Th.case "depth hierarchy" depth_hierarchy;
    Th.case "incompleteness" incompleteness_is_honest;
  ]
