(* Cross-module property battery: randomized end-to-end invariants tying
   the substrates together. *)

let seed_gen = QCheck.(int_bound 1_000_000)

let random_pair seed =
  let c1 =
    Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:(seed + 1)
  in
  let c2 =
    if seed mod 3 = 0 then fst (Circuit.Transform.inject_bug ~seed c1)
    else if seed mod 3 = 1 then Circuit.Transform.demorgan ~seed c1
    else Circuit.Transform.rewrite_xor c1
  in
  (c1, c2)

let prop_cec_methods_agree =
  QCheck.Test.make ~name:"all CEC methods return the same verdict" ~count:40
    seed_gen
    (fun seed ->
       let c1, c2 = random_pair seed in
       let norm (v : Eda.Equiv.verdict) =
         match v with
         | Eda.Equiv.Equivalent -> true
         | Eda.Equiv.Inequivalent _ -> false
         | Eda.Equiv.Inconclusive _ -> QCheck.assume_fail ()
       in
       let miter = norm (Eda.Equiv.check_sat c1 c2).Eda.Equiv.verdict in
       let bdd = norm (Eda.Equiv.check_bdd c1 c2).Eda.Equiv.verdict in
       let aig = norm (Eda.Equiv.check_aig c1 c2).Eda.Equiv.verdict in
       let sweep = norm (Eda.Sweep.check c1 c2).Eda.Sweep.verdict in
       miter = bdd && miter = aig && miter = sweep)

let prop_atpg_vectors_detect =
  QCheck.Test.make ~name:"every generated test vector detects its fault"
    ~count:25 seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:6 ~gates:20 ~seed:(seed + 7)
       in
       let ok = ref true in
       List.iteri
         (fun i fault ->
            if i < 10 then
              match Eda.Atpg.generate_test c fault with
              | Eda.Atpg.Test v, _ ->
                if Eda.Atpg.fault_simulate c [ fault ] [ v ] = [] then
                  ok := false
              | (Eda.Atpg.Redundant | Eda.Atpg.Aborted _), _ -> ())
         (Eda.Atpg.fault_list c);
       !ok)

let prop_true_delay_bounded =
  QCheck.Test.make ~name:"true delay within [0, weighted topological]"
    ~count:20 seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:5 ~gates:18 ~seed:(seed + 13)
       in
       let gate_delay = function
         | Circuit.Gate.Xor | Circuit.Gate.Xnor -> 2
         | _ -> 1
       in
       List.for_all
         (fun (_, o) ->
            let tru, _ = Eda.Delay.true_delay ~gate_delay c o in
            tru >= 0 && tru <= Eda.Delay.weighted_level ~gate_delay c o)
         (Circuit.Netlist.outputs c))

let prop_aig_netlist_semantics =
  QCheck.Test.make ~name:"AIG conversion preserves circuit semantics"
    ~count:30 seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 19)
       in
       let m, outs = Aig.of_netlist c in
       let rng = Sat.Rng.create (seed + 23) in
       let ok = ref true in
       for _ = 1 to 10 do
         let ins = Array.init 6 (fun _ -> Sat.Rng.bool rng) in
         let sim = Circuit.Simulate.eval_outputs c ins in
         List.iteri
           (fun i (_, e) -> if Aig.eval m ins e <> sim.(i) then ok := false)
           outs
       done;
       !ok)

let prop_transforms_preserve_function =
  QCheck.Test.make ~name:"strash/simplify compose and preserve the function"
    ~count:25 seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:(seed + 29)
       in
       let variants =
         [
           Circuit.Transform.strash c;
           Circuit.Transform.simplify (Circuit.Transform.strash c);
           Circuit.Transform.strash
             (Circuit.Transform.demorgan ~seed (Circuit.Transform.rewrite_xor c));
         ]
       in
       List.for_all
         (fun v ->
            let f, _ = Circuit.Miter.to_cnf c v in
            match Sat.Cdcl.solve (Sat.Cdcl.create f) with
            | Sat.Types.Unsat -> true
            | _ -> false)
         variants)

let prop_proofs_certify_circuit_unsat =
  QCheck.Test.make ~name:"equivalence proofs certify via RUP" ~count:15
    seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 37)
       in
       let f, _ = Circuit.Miter.to_cnf c (Circuit.Transform.demorgan ~seed c) in
       match Sat.Proof.solve_certified f with
       | Sat.Types.Unsat, Sat.Proof.Valid_refutation -> true
       | Sat.Types.Unsat, _ -> false
       | _ -> false)

let prop_saturation_agrees_with_cdcl =
  QCheck.Test.make ~name:"saturation refutations are confirmed by CDCL"
    ~count:40 seed_gen
    (fun seed ->
       let rng = Sat.Rng.create (seed + 41) in
       let f = Th.random_cnf rng 8 28 3 in
       match Sat.Stalmarck.saturate ~depth:2 f with
       | Sat.Stalmarck.Refuted _ ->
         not (Th.outcome_sat (Th.solve_cdcl f))
       | Sat.Stalmarck.Saturated _ -> true)

let prop_seq_equiv_sound =
  QCheck.Test.make ~name:"sequential equivalence never lies" ~count:15
    seed_gen
    (fun seed ->
       (* mutate a counter's combinational core; compare against the
          original with the product-machine checker, then validate the
          verdict by simulation *)
       let good = Circuit.Sequential.counter ~bits:3 ~buggy_at:None in
       let mutated =
         { good with
           Circuit.Sequential.comb =
             fst (Circuit.Transform.inject_bug ~seed good.Circuit.Sequential.comb) }
       in
       let rng = Sat.Rng.create (seed + 43) in
       match Eda.Seq_equiv.check ~bound:20 good mutated with
       | Eda.Seq_equiv.Different frames ->
         (* the trace is a genuine witness *)
         Circuit.Sequential.simulate good ~inputs:frames
         <> Circuit.Sequential.simulate mutated ~inputs:frames
       | Eda.Seq_equiv.Equivalent _ | Eda.Seq_equiv.Bounded_equivalent _ ->
         (* claimed equal: random traces must agree *)
         let ok = ref true in
         for _ = 1 to 10 do
           let inputs =
             List.init 12 (fun _ -> [| Sat.Rng.bool rng |])
           in
           if
             Circuit.Sequential.simulate good ~inputs
             <> Circuit.Sequential.simulate mutated ~inputs
           then ok := false
         done;
         !ok)

let prop_bench_roundtrip_random =
  QCheck.Test.make ~name:"BENCH roundtrip on random circuits" ~count:30
    seed_gen
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:5 ~gates:20 ~seed:(seed + 53)
       in
       let c2 =
         Circuit.Bench_format.parse_string (Circuit.Bench_format.to_string c)
       in
       let f, _ = Circuit.Miter.to_cnf c c2 in
       match Sat.Cdcl.solve (Sat.Cdcl.create f) with
       | Sat.Types.Unsat -> true
       | _ -> false)

let suite =
  [
    Th.qcheck prop_seq_equiv_sound;
    Th.qcheck prop_bench_roundtrip_random;
    Th.qcheck prop_cec_methods_agree;
    Th.qcheck prop_atpg_vectors_detect;
    Th.qcheck prop_true_delay_bounded;
    Th.qcheck prop_aig_netlist_semantics;
    Th.qcheck prop_transforms_preserve_function;
    Th.qcheck prop_proofs_certify_circuit_unsat;
    Th.qcheck prop_saturation_agrees_with_cdcl;
  ]
