module G = Circuit.Gate

(* Table 2 of the paper *)
let thresholds_table2 () =
  let check g fanins expected =
    Alcotest.(check (pair int int)) (G.to_string g) expected
      (Csat.thresholds g ~fanins)
  in
  check G.And 3 (1, 3);
  check G.Or 3 (3, 1);
  check G.Nand 3 (3, 1);
  check G.Nor 3 (1, 3);
  check G.Xor 3 (3, 3);
  check G.Xnor 2 (2, 2);
  check G.Not 1 (1, 1);
  check G.Buf 1 (1, 1)

(* Table 3 of the paper *)
let counters_table3 () =
  let check g v expected =
    Alcotest.(check (pair bool bool))
      (Printf.sprintf "%s w=%b" (G.to_string g) v)
      expected (Csat.counter_update g v)
  in
  check G.And false (true, false);
  check G.And true (false, true);
  check G.Or false (true, false);
  check G.Or true (false, true);
  check G.Nand false (false, true);
  check G.Nand true (true, false);
  check G.Nor false (false, true);
  check G.Nor true (true, false);
  check G.Xor false (true, true);
  check G.Xor true (true, true);
  check G.Xnor true (true, true)

(* consistency of Tables 2+3 with gate semantics: a value v on the output
   is justified by t_v suitably-assigned inputs iff those inputs force v *)
let tables_consistent_with_semantics () =
  List.iter
    (fun g ->
       let k = 3 in
       if G.arity_ok g k then begin
         let u0, u1 = Csat.thresholds g ~fanins:k in
         (* minimal justifying sets: check that u_v inputs with the
            counting polarity indeed force the output *)
         List.iter
           (fun v ->
              let u = if v then u1 else u0 in
              if u = 1 then begin
                (* one input with the right value decides the output *)
                let w =
                  (* find the input value whose counter matches v *)
                  let d0, d1 = Csat.counter_update g false in
                  if (if v then d1 else d0) then false else true
                in
                (* output = v for any values of the remaining inputs *)
                for rest = 0 to 3 do
                  let ins = [ w; rest land 1 <> 0; rest land 2 <> 0 ] in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s one input justifies %b" (G.to_string g) v)
                    v (G.eval g ins)
                done
              end)
           [ false; true ]
       end)
    [ G.And; G.Or; G.Nand; G.Nor ]

let solve_agrees_with_plain () =
  let rng = Sat.Rng.create 61 in
  for seed = 1 to 30 do
    let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:(seed + 500) in
    let outs = Circuit.Netlist.output_ids c in
    let obj = List.nth outs (Sat.Rng.int rng (List.length outs)) in
    let v = Sat.Rng.bool rng in
    let plain = Csat.solve ~use_layer:false ~objectives:[ (obj, v) ] c in
    let layered = Csat.solve ~use_layer:true ~objectives:[ (obj, v) ] c in
    let single = Csat.solve ~use_layer:true ~backtrace:false ~objectives:[ (obj, v) ] c in
    Alcotest.(check bool) "layer agrees"
      (Th.outcome_sat plain.Csat.outcome)
      (Th.outcome_sat layered.Csat.outcome);
    Alcotest.(check bool) "single-step agrees"
      (Th.outcome_sat plain.Csat.outcome)
      (Th.outcome_sat single.Csat.outcome)
  done

let pattern_dont_cares_are_real () =
  let rng = Sat.Rng.create 67 in
  for seed = 1 to 25 do
    let c = Circuit.Generators.random_circuit ~inputs:7 ~gates:30 ~seed:(seed + 900) in
    let outs = Circuit.Netlist.output_ids c in
    let obj = List.nth outs 0 in
    let v = Sat.Rng.bool rng in
    let r = Csat.solve ~objectives:[ (obj, v) ] c in
    if Th.outcome_sat r.Csat.outcome then begin
      (* any completion of the partial pattern meets the objective *)
      List.iter
        (fun default ->
           let ins =
             List.map
               (fun id ->
                  match List.assoc_opt id r.Csat.pattern with
                  | Some b -> b
                  | None -> default)
               (Circuit.Netlist.inputs c)
             |> Array.of_list
           in
           let values = Circuit.Simulate.eval_all c ins in
           Alcotest.(check bool) "objective holds under completion" v
             values.(obj))
        [ false; true ]
    end
  done

let overspecification_reduced () =
  (* aggregate: the layer must leave some inputs unassigned somewhere *)
  let total_plain = ref 0 and total_layer = ref 0 in
  for seed = 1 to 15 do
    let c = Circuit.Generators.random_circuit ~inputs:8 ~gates:35 ~seed:(seed + 40) in
    let obj = List.nth (Circuit.Netlist.output_ids c) 0 in
    let plain = Csat.solve ~use_layer:false ~objectives:[ (obj, true) ] c in
    let layer = Csat.solve ~use_layer:true ~objectives:[ (obj, true) ] c in
    if Th.outcome_sat plain.Csat.outcome then begin
      total_plain := !total_plain + plain.Csat.specified_inputs;
      total_layer := !total_layer + layer.Csat.specified_inputs
    end
  done;
  Alcotest.(check bool) "fewer specified inputs" true (!total_layer < !total_plain)

let unsat_objectives () =
  (* AND output 1 with an input forced 0 *)
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let zero = Circuit.Netlist.add_const c false in
  let g = Circuit.Netlist.add_gate c G.And [ a; zero ] in
  Circuit.Netlist.set_output c g;
  let r = Csat.solve ~objectives:[ (g, true) ] c in
  Alcotest.(check bool) "unsat" false (Th.outcome_sat r.Csat.outcome);
  Alcotest.(check (list (pair int bool))) "no pattern" [] r.Csat.pattern

let early_termination_on_fig1 () =
  (* Figure 1 with objective z = 0: one input at 0 suffices *)
  let c = Circuit.Generators.fig1 () in
  let z = Option.get (Circuit.Netlist.find_by_name c "z") in
  let r = Csat.solve ~objectives:[ (z, false) ] c in
  Alcotest.(check bool) "sat" true (Th.outcome_sat r.Csat.outcome);
  Alcotest.(check bool) "partial pattern" true (r.Csat.specified_inputs <= 1)

let suite =
  [
    Th.case "table 2" thresholds_table2;
    Th.case "table 3" counters_table3;
    Th.case "tables consistent" tables_consistent_with_semantics;
    Th.case "agrees with plain CNF" solve_agrees_with_plain;
    Th.case "don't-cares are real" pattern_dont_cares_are_real;
    Th.case "overspecification reduced" overspecification_reduced;
    Th.case "unsat objectives" unsat_objectives;
    Th.case "figure 1 early termination" early_termination_on_fig1;
  ]
