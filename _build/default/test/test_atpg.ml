module A = Eda.Atpg
module N = Circuit.Netlist

let c17_full_coverage () =
  let c = Circuit.Generators.c17 () in
  let s = A.run c in
  Alcotest.(check int) "22 faults" 22 s.A.total;
  Alcotest.(check int) "all detected" 22 s.A.detected;
  Alcotest.(check int) "no redundancy in c17" 0 s.A.redundant;
  Alcotest.(check int) "no aborts" 0 s.A.aborted;
  Alcotest.(check bool) "simulation dropped faults" true
    (s.A.dropped_by_simulation > 0)

let vectors_actually_detect () =
  let c = Circuit.Generators.ripple_adder ~bits:2 in
  List.iter
    (fun f ->
       match A.generate_test c f with
       | A.Test v, _ ->
         (* the vector distinguishes good and faulty circuits *)
         let good = Circuit.Simulate.eval_all c v in
         let inst, _ = A.instance c f in
         let n_inputs = List.length (N.inputs c) in
         ignore n_inputs;
         let diff_out = List.hd (N.output_ids inst) in
         let inst_vals = Circuit.Simulate.eval_all inst v in
         Alcotest.(check bool) "diff raised" true inst_vals.(diff_out);
         ignore good
       | A.Redundant, _ -> ()
       | A.Aborted _, _ -> Alcotest.fail "aborted")
    (A.fault_list c)

let structural_and_incremental_agree () =
  let c = Circuit.Transform.add_redundancy ~seed:5 (Circuit.Generators.majority3 ()) in
  let plain = A.run ~fault_simulation:false c in
  let struct_ = A.run ~use_structural:true ~fault_simulation:false c in
  let incr = A.run_incremental c in
  Alcotest.(check int) "structural detected" plain.A.detected struct_.A.detected;
  Alcotest.(check int) "structural redundant" plain.A.redundant struct_.A.redundant;
  Alcotest.(check int) "incremental detected" plain.A.detected incr.A.detected;
  Alcotest.(check int) "incremental redundant" plain.A.redundant incr.A.redundant

let redundant_faults_on_injected_logic () =
  let c = Circuit.Transform.add_redundancy ~seed:3 (Circuit.Generators.ripple_adder ~bits:2) in
  let s = A.run ~fault_simulation:false c in
  Alcotest.(check bool) "redundancies exist" true (s.A.redundant > 0)

let fault_simulation_consistent () =
  (* every fault reported detected by a vector must be detected by
     fault_simulate on that vector set *)
  let c = Circuit.Generators.c17 () in
  let s = A.run c in
  let all = A.fault_list c in
  let detected = A.fault_simulate c all s.A.vectors in
  Alcotest.(check int) "fault simulation confirms coverage" s.A.detected
    (List.length detected)

let unobservable_fault_redundant () =
  (* a gate with no path to any output: fault undetectable *)
  let c = N.create () in
  let a = N.add_input c in
  let b = N.add_input c in
  let dead = N.add_gate c Circuit.Gate.And [ a; b ] in
  let live = N.add_gate c Circuit.Gate.Or [ a; b ] in
  N.set_output c live;
  (match A.generate_test c { A.node = dead; stuck_at = true } with
   | A.Redundant, _ -> ()
   | _ -> Alcotest.fail "dead logic fault must be redundant")

let coverage_on_families () =
  List.iter
    (fun c ->
       let s = A.run c in
       Alcotest.(check int) "full accounting" s.A.total
         (s.A.detected + s.A.redundant + s.A.aborted);
       Alcotest.(check int) "no aborts" 0 s.A.aborted)
    [
      Circuit.Generators.parity ~bits:4;
      Circuit.Generators.comparator ~bits:3;
      Circuit.Generators.mux_tree ~select_bits:2;
    ]

let random_pattern_phase () =
  let c = Circuit.Generators.ripple_adder ~bits:5 in
  let two_phase = A.run ~random_patterns:2 c in
  let plain = A.run c in
  Alcotest.(check int) "same coverage" plain.A.detected two_phase.A.detected;
  Alcotest.(check int) "same redundancy" plain.A.redundant two_phase.A.redundant;
  Alcotest.(check bool) "fewer SAT calls" true
    (two_phase.A.sat_calls <= plain.A.sat_calls);
  (* the final vector set still covers everything detected *)
  let all = A.fault_list c in
  Alcotest.(check int) "vectors witness coverage" two_phase.A.detected
    (List.length (A.fault_simulate c all two_phase.A.vectors))

let summary_printer () =
  let c = Circuit.Generators.majority3 () in
  let s = A.run c in
  let text = Format.asprintf "%a" A.pp_summary s in
  Alcotest.(check bool) "printable" true (String.length text > 0)

let suite =
  [
    Th.case "c17 full coverage" c17_full_coverage;
    Th.case "vectors detect" vectors_actually_detect;
    Th.case "structural/incremental agree" structural_and_incremental_agree;
    Th.case "injected redundancy" redundant_faults_on_injected_logic;
    Th.case "fault simulation consistent" fault_simulation_consistent;
    Th.case "unobservable fault" unobservable_fault_redundant;
    Th.case "coverage accounting" coverage_on_families;
    Th.case "random-pattern phase" random_pattern_phase;
    Th.case "summary printer" summary_printer;
  ]
