module B = Circuit.Bench_format

let roundtrip_generators () =
  List.iter
    (fun c ->
       let c2 = B.parse_string (B.to_string c) in
       Th.assert_equivalent ~msg:"bench roundtrip" c c2)
    [
      Circuit.Generators.c17 ();
      Circuit.Generators.ripple_adder ~bits:3;
      Circuit.Generators.parity ~bits:5;
      Circuit.Generators.majority3 ();
    ]

let parse_basic () =
  let text =
    "# a comment\nINPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
  in
  let c = B.parse_string text in
  Alcotest.(check int) "inputs" 2 (List.length (Circuit.Netlist.inputs c));
  Alcotest.(check int) "outputs" 1 (List.length (Circuit.Netlist.outputs c));
  let out = Circuit.Simulate.eval_outputs c [| true; true |] in
  Alcotest.(check bool) "nand semantics" false out.(0)

let out_of_order_definitions () =
  let text =
    "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = BUFF(a)\n"
  in
  let c = B.parse_string text in
  let out = Circuit.Simulate.eval_outputs c [| true |] in
  Alcotest.(check bool) "chained" false out.(0)

let one_input_and_is_buffer () =
  let c = B.parse_string "INPUT(a)\nOUTPUT(z)\nz = AND(a)\n" in
  Alcotest.(check bool) "buffer semantics" true
    (Circuit.Simulate.eval_outputs c [| true |]).(0)

let errors () =
  let expect_error text =
    match B.parse_string text with
    | exception B.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "INPUT(a)\nz = DFF(a)\nOUTPUT(z)\n";
  expect_error "INPUT(a)\nOUTPUT(z)\n";
  (* undefined output *)
  expect_error "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n";
  (* unresolved signal *)
  expect_error "foo bar baz\n"

let constants_printed () =
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input ~name:"a" c in
  let k = Circuit.Netlist.add_const c true in
  let g = Circuit.Netlist.add_gate c Circuit.Gate.Xor [ a; k ] in
  Circuit.Netlist.set_output c g;
  let c2 = B.parse_string (B.to_string c) in
  Th.assert_equivalent ~msg:"const roundtrip" c c2

let sequential_roundtrip () =
  List.iter
    (fun seq ->
       let text = B.sequential_to_string seq in
       let back = B.parse_sequential_string text in
       Circuit.Sequential.validate back;
       (* identical step behaviour from the initial state *)
       let n_pi = List.length seq.Circuit.Sequential.primary_inputs in
       let inputs = List.init 6 (fun i -> Array.make n_pi (i mod 2 = 0)) in
       let o1 = Circuit.Sequential.simulate seq ~inputs in
       let o2 = Circuit.Sequential.simulate back ~inputs in
       Alcotest.(check bool) "sequential roundtrip traces" true (o1 = o2))
    [
      Circuit.Sequential.counter ~bits:3 ~buggy_at:None;
      Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 2);
      Circuit.Sequential.ring_counter ~bits:4 |> fun r ->
      { r with Circuit.Sequential.init =
                 List.map (fun _ -> false) r.Circuit.Sequential.init };
    ]

let sequential_parse_basic () =
  let text =
    "INPUT(en)\nOUTPUT(bad)\nq = DFF(nq)\nnq = XOR(q, en)\nbad = AND(q, en)\n"
  in
  let s = B.parse_sequential_string text in
  Circuit.Sequential.validate s;
  Alcotest.(check int) "one state bit" 1
    (List.length s.Circuit.Sequential.state_inputs);
  Alcotest.(check int) "one primary input" 1
    (List.length s.Circuit.Sequential.primary_inputs);
  (* q toggles while enabled; bad when q=1 and en=1 *)
  let outs =
    Circuit.Sequential.simulate s
      ~inputs:[ [| true |]; [| true |]; [| true |] ]
  in
  Alcotest.(check (list bool)) "trace" [ false; true; false ]
    (List.map (fun o -> o.(0)) outs)

let dff_rejected_combinationally () =
  match B.parse_string "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n" with
  | exception B.Parse_error _ -> ()
  | _ -> Alcotest.fail "DFF must be rejected by the combinational parser"

let bmc_on_parsed_bench () =
  let text =
    B.sequential_to_string (Circuit.Sequential.counter ~bits:3 ~buggy_at:None)
  in
  let seq = B.parse_sequential_string text in
  match (Eda.Bmc.check ~max_bound:10 seq).Eda.Bmc.result with
  | Eda.Bmc.Counterexample frames ->
    Alcotest.(check int) "same depth through the file format" 8
      (List.length frames)
  | Eda.Bmc.No_counterexample -> Alcotest.fail "expected cex"

let s27_benchmark () =
  let s = Circuit.Generators.s27 () in
  Circuit.Sequential.validate s;
  Alcotest.(check int) "4 primary inputs" 4
    (List.length s.Circuit.Sequential.primary_inputs);
  Alcotest.(check int) "3 flip-flops" 3
    (List.length s.Circuit.Sequential.state_inputs);
  Alcotest.(check int) "1 output" 1
    (List.length (Circuit.Netlist.outputs s.Circuit.Sequential.comb));
  (* runs under simulation and BMC against its own output property *)
  let outs =
    Circuit.Sequential.simulate s
      ~inputs:(List.init 6 (fun i -> Array.make 4 (i mod 2 = 0)))
  in
  Alcotest.(check int) "six cycles" 6 (List.length outs);
  (* s27 is equivalent to its own roundtrip through the printer *)
  let s' =
    Circuit.Bench_format.parse_sequential_string
      (Circuit.Bench_format.sequential_to_string s)
  in
  (match Eda.Seq_equiv.check s s' with
   | Eda.Seq_equiv.Equivalent _ -> ()
   | _ -> Alcotest.fail "s27 self-equivalence");
  (* and distinguishable from a mutated version *)
  let mutated =
    { s with
      Circuit.Sequential.comb =
        fst (Circuit.Transform.inject_bug ~seed:2 s.Circuit.Sequential.comb) }
  in
  match Eda.Seq_equiv.check s mutated with
  | Eda.Seq_equiv.Different _ -> ()
  | Eda.Seq_equiv.Equivalent _ -> () (* mutation may be benign *)
  | Eda.Seq_equiv.Bounded_equivalent _ -> ()

let suite =
  [
    Th.case "iscas s27" s27_benchmark;
    Th.case "sequential roundtrip" sequential_roundtrip;
    Th.case "sequential parse" sequential_parse_basic;
    Th.case "dff rejected" dff_rejected_combinationally;
    Th.case "bmc via bench file" bmc_on_parsed_bench;
    Th.case "roundtrip generators" roundtrip_generators;
    Th.case "parse basic" parse_basic;
    Th.case "out of order" out_of_order_definitions;
    Th.case "unary and buffer" one_input_and_is_buffer;
    Th.case "errors" errors;
    Th.case "constants" constants_printed;
  ]
