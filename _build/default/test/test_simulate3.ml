(* Three-valued simulation and its agreement with the structural layer's
   partial patterns. *)
module S = Circuit.Simulate

let controlling_values_decide () =
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let b = Circuit.Netlist.add_input c in
  let g_and = Circuit.Netlist.add_gate c Circuit.Gate.And [ a; b ] in
  let g_or = Circuit.Netlist.add_gate c Circuit.Gate.Or [ a; b ] in
  let g_xor = Circuit.Netlist.add_gate c Circuit.Gate.Xor [ a; b ] in
  Circuit.Netlist.set_output c g_and;
  Circuit.Netlist.set_output c g_or;
  Circuit.Netlist.set_output c g_xor;
  let case ins expected =
    Alcotest.(check bool) "ternary row" true
      (S.eval3_outputs c ins = expected)
  in
  case [| S.F; S.X |] [| S.F; S.X; S.X |];  (* AND killed by 0 *)
  case [| S.T; S.X |] [| S.X; S.T; S.X |];  (* OR decided by 1 *)
  case [| S.X; S.X |] [| S.X; S.X; S.X |];
  case [| S.T; S.F |] [| S.F; S.T; S.T |]   (* definite inputs: classic *)

let refines_boolean_simulation () =
  (* with no X inputs, ternary equals Boolean simulation *)
  let rng = Sat.Rng.create 31 in
  for seed = 1 to 20 do
    let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 700) in
    let ins = Array.init 6 (fun _ -> Sat.Rng.bool rng) in
    let tern = Array.map (fun b -> if b then S.T else S.F) ins in
    let bools = S.eval_all c ins in
    let terns = S.eval3_all c tern in
    Array.iteri
      (fun i b ->
         Alcotest.(check bool) "agrees" true
           (terns.(i) = if b then S.T else S.F))
      bools
  done

let monotone_refinement () =
  (* a definite ternary output stays identical under any X completion *)
  let rng = Sat.Rng.create 37 in
  for seed = 1 to 20 do
    let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 800) in
    let tern =
      Array.init 6 (fun _ ->
          match Sat.Rng.int rng 3 with 0 -> S.F | 1 -> S.T | _ -> S.X)
    in
    let t_out = S.eval3_outputs c tern in
    for _ = 1 to 5 do
      let completion =
        Array.map
          (function S.X -> Sat.Rng.bool rng | S.T -> true | S.F -> false)
          tern
      in
      let b_out = S.eval_outputs c completion in
      Array.iteri
        (fun i t ->
           match t with
           | S.X -> ()
           | S.T -> Alcotest.(check bool) "definite T" true b_out.(i)
           | S.F -> Alcotest.(check bool) "definite F" false b_out.(i))
        t_out
    done
  done

let csat_patterns_justify_ternarily () =
  (* the structural layer's partial patterns must already determine the
     objective under ternary simulation — no luck involved *)
  let rng = Sat.Rng.create 41 in
  for seed = 1 to 25 do
    let c = Circuit.Generators.random_circuit ~inputs:8 ~gates:40 ~seed:(seed + 900) in
    let obj = List.hd (Circuit.Netlist.output_ids c) in
    let v = Sat.Rng.bool rng in
    let r = Csat.solve ~objectives:[ (obj, v) ] c in
    if Sat.Types.is_sat r.Csat.outcome then begin
      let tern = S.ternary_of_pattern c r.Csat.pattern in
      let values = S.eval3_all c tern in
      Alcotest.(check bool) "objective definite under X-simulation" true
        (values.(obj) = if v then S.T else S.F)
    end
  done

let atpg_patterns_from_structural_layer () =
  (* structural-layer ATPG patterns propagate the fault difference even
     with every unspecified input left X *)
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  List.iteri
    (fun i fault ->
       if i < 12 then begin
         let inst, objectives = Eda.Atpg.instance c fault in
         let r = Csat.solve ~objectives inst in
         if Sat.Types.is_sat r.Csat.outcome then begin
           let tern = S.ternary_of_pattern inst r.Csat.pattern in
           let values = S.eval3_all inst tern in
           List.iter
             (fun (node, v) ->
                Alcotest.(check bool) "objective justified" true
                  (values.(node) = if v then S.T else S.F))
             objectives
         end
       end)
    (Eda.Atpg.fault_list c)

let suite =
  [
    Th.case "controlling values" controlling_values_decide;
    Th.case "refines boolean" refines_boolean_simulation;
    Th.case "monotone refinement" monotone_refinement;
    Th.case "csat patterns ternary-justified" csat_patterns_justify_ternarily;
    Th.case "atpg patterns ternary-justified" atpg_patterns_from_structural_layer;
  ]
