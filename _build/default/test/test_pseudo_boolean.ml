module PB = Eda.Pseudo_boolean

let lit = Cnf.Lit.pos

let term c v = { PB.coeff = c; lit = lit v }

let feasibility_basic () =
  (* x0 + x1 >= 1, minimize x0 + x1 -> value 1 *)
  let p =
    {
      PB.nvars = 2;
      constraints = [ ([ term 1 0; term 1 1 ], 1) ];
      objective = [ term 1 0; term 1 1 ];
    }
  in
  match PB.solve p with
  | PB.Optimal (m, v), _ ->
    Alcotest.(check int) "optimum 1" 1 v;
    Alcotest.(check int) "model consistent" 1
      (PB.eval_linear (fun x -> m.(x)) p.PB.objective)
  | _ -> Alcotest.fail "feasible"

let weighted_objective () =
  (* cover element with set A (cost 5) or B (cost 1): optimum 1 *)
  let p =
    {
      PB.nvars = 2;
      constraints = [ ([ term 1 0; term 1 1 ], 1) ];
      objective = [ term 5 0; term 1 1 ];
    }
  in
  match PB.solve p with
  | PB.Optimal (m, v), _ ->
    Alcotest.(check int) "picks cheap set" 1 v;
    Alcotest.(check bool) "B chosen" true m.(1)
  | _ -> Alcotest.fail "feasible"

let coefficients_matter () =
  (* 3 x0 + 2 x1 + 2 x2 >= 4: x0 alone insufficient *)
  let p =
    {
      PB.nvars = 3;
      constraints = [ ([ term 3 0; term 2 1; term 2 2 ], 4) ];
      objective = [ term 1 0; term 1 1; term 1 2 ];
    }
  in
  match PB.solve p with
  | PB.Optimal (m, v), _ ->
    Alcotest.(check int) "needs two" 2 v;
    Alcotest.(check int) "constraint met" 4
      (min 4 (PB.eval_linear (fun x -> m.(x)) [ term 3 0; term 2 1; term 2 2 ]))
  | _ -> Alcotest.fail "feasible"

let infeasible () =
  (* x0 >= 1 and ~x0 >= 1 *)
  let p =
    {
      PB.nvars = 1;
      constraints =
        [ ([ term 1 0 ], 1);
          ([ { PB.coeff = 1; lit = Cnf.Lit.neg_of_var 0 } ], 1) ];
      objective = [];
    }
  in
  match PB.solve p with
  | PB.Infeasible, _ -> ()
  | _ -> Alcotest.fail "expected infeasible"

let negative_coefficients_normalised () =
  (* -2 x0 >= -1  <=>  x0 = 0 allowed, x0 = 1 violates *)
  let p =
    {
      PB.nvars = 1;
      constraints = [ ([ { PB.coeff = -2; lit = lit 0 } ], -1) ];
      objective = [];
    }
  in
  match PB.solve p with
  | PB.Optimal (m, _), _ -> Alcotest.(check bool) "x0 false" false m.(0)
  | _ -> Alcotest.fail "feasible"

let clause_conversion () =
  let c = Cnf.Clause.of_dimacs_list [ 1; -2 ] in
  let terms, bound = PB.of_clause c in
  Alcotest.(check int) "bound 1" 1 bound;
  Alcotest.(check int) "two terms" 2 (List.length terms)

let agrees_with_sat_covering () =
  for seed = 1 to 8 do
    let inst =
      Eda.Covering.random_instance ~seed ~nelems:12 ~nsets:8 ~density:0.3
    in
    let p = PB.covering_problem inst in
    match PB.solve p, Eda.Covering.sat_optimal inst with
    | (PB.Optimal (_, v), _), Some sol ->
      Alcotest.(check int) "pb matches cardinality search"
        (Eda.Covering.cover_cost inst sol) v
    | _ -> Alcotest.fail "both must solve"
  done

let propagation_counted () =
  let p =
    {
      PB.nvars = 3;
      constraints = [ ([ term 3 0; term 1 1; term 1 2 ], 3) ];
      objective = [];
    }
  in
  (* x0 is forced: coeff 3 > slack 2 *)
  match PB.solve p with
  | PB.Optimal (m, _), st ->
    Alcotest.(check bool) "x0 forced" true m.(0);
    Alcotest.(check bool) "propagations counted" true (st.PB.propagations > 0)
  | _ -> Alcotest.fail "feasible"

let objective_sign_guard () =
  let p =
    { PB.nvars = 1; constraints = []; objective = [ { PB.coeff = -1; lit = lit 0 } ] }
  in
  Alcotest.check_raises "negative objective"
    (Invalid_argument "Pseudo_boolean.solve: objective coefficients >= 0")
    (fun () -> ignore (PB.solve p))

let prop_optimum_matches_brute_force =
  QCheck.Test.make ~name:"pb optimum equals brute-force optimum" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
       let inst =
         Eda.Covering.random_instance ~seed:(seed + 1) ~nelems:10 ~nsets:8
           ~density:0.3
       in
       let rng = Sat.Rng.create (seed + 2) in
       let inst =
         { inst with
           Eda.Covering.cost =
             Array.map (fun _ -> 1 + Sat.Rng.int rng 4) inst.Eda.Covering.cost }
       in
       let nsets = Array.length inst.Eda.Covering.sets in
       let brute = ref max_int in
       for mask = 0 to (1 lsl nsets) - 1 do
         let chosen =
           List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init nsets Fun.id)
         in
         if Eda.Covering.is_cover inst chosen then
           brute := min !brute (Eda.Covering.cover_cost inst chosen)
       done;
       match PB.solve (PB.covering_problem inst) with
       | PB.Optimal (_, v), _ -> v = !brute
       | _ -> false)

let suite =
  [
    Th.qcheck prop_optimum_matches_brute_force;
    Th.case "basic" feasibility_basic;
    Th.case "weighted" weighted_objective;
    Th.case "coefficients" coefficients_matter;
    Th.case "infeasible" infeasible;
    Th.case "normalisation" negative_coefficients_normalised;
    Th.case "clause conversion" clause_conversion;
    Th.case "agrees with covering" agrees_with_sat_covering;
    Th.case "propagation" propagation_counted;
    Th.case "objective guard" objective_sign_guard;
  ]
