module E = Eda.Equiv

let methods_agree_on_equivalent () =
  let base = Circuit.Generators.multiplier ~bits:2 in
  let variant =
    Circuit.Transform.demorgan ~seed:11 (Circuit.Transform.rewrite_xor base)
  in
  List.iter
    (fun (name, r) ->
       match r.E.verdict with
       | E.Equivalent -> ()
       | E.Inequivalent _ -> Alcotest.failf "%s: false inequivalence" name
       | E.Inconclusive why -> Alcotest.failf "%s inconclusive: %s" name why)
    [
      ("sat", E.check_sat base variant);
      ("bdd", E.check_bdd base variant);
      ("rl", E.check_rl ~depth:1 base variant);
      ("aig", E.check_aig base variant);
      ("sat+pipeline",
       E.check_sat ~pipeline:Sat.Solver.full_pipeline base variant);
    ]

let counterexamples_valid () =
  let base = Circuit.Generators.ripple_adder ~bits:3 in
  let seen_bug = ref false in
  for seed = 1 to 8 do
    let buggy, _ = Circuit.Transform.inject_bug ~seed base in
    let validate name = function
      | E.Inequivalent vec ->
        seen_bug := true;
        let o1 = Circuit.Simulate.eval_outputs base vec in
        let o2 = Circuit.Simulate.eval_outputs buggy vec in
        if o1 = o2 then Alcotest.failf "%s: bogus counterexample" name
      | E.Equivalent -> ()
      | E.Inconclusive why -> Alcotest.failf "%s inconclusive: %s" name why
    in
    validate "sat" (E.check_sat base buggy).E.verdict;
    validate "bdd" (E.check_bdd base buggy).E.verdict;
    (* the two methods must agree *)
    let s = (E.check_sat base buggy).E.verdict in
    let b = (E.check_bdd base buggy).E.verdict in
    (match s, b with
     | E.Equivalent, E.Equivalent -> ()
     | E.Inequivalent _, E.Inequivalent _ -> ()
     | _ -> Alcotest.fail "sat and bdd disagree")
  done;
  Alcotest.(check bool) "at least one real bug" true !seen_bug

let bdd_blowup_reported () =
  let m = Circuit.Generators.multiplier ~bits:6 in
  let m2 = Circuit.Transform.rewrite_xor m in
  match (E.check_bdd ~node_limit:2000 m m2).E.verdict with
  | E.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected node-limit blowup"

let sat_handles_what_bdd_cannot () =
  let m = Circuit.Generators.multiplier ~bits:4 in
  let m2 = Circuit.Transform.rewrite_xor m in
  match (E.check_sat m m2).E.verdict with
  | E.Equivalent -> ()
  | _ -> Alcotest.fail "sat should prove 4-bit multiplier equivalence"

let interface_mismatch_inequivalent () =
  let a = Circuit.Generators.parity ~bits:3 in
  let b = Circuit.Generators.parity ~bits:4 in
  match (E.check_bdd a b).E.verdict with
  | E.Inequivalent _ -> ()
  | _ -> Alcotest.fail "interface mismatch must be inequivalent"

let stats_populated () =
  let a = Circuit.Generators.majority3 () in
  let r = E.check_sat a (Circuit.Netlist.copy a) in
  Alcotest.(check bool) "sat stats" true (r.E.sat_stats <> None);
  let rb = E.check_bdd a (Circuit.Netlist.copy a) in
  Alcotest.(check bool) "bdd nodes" true (rb.E.bdd_nodes > 0)

let aig_method () =
  (* identical copies discharge without SAT: zero conflicts *)
  let c = Circuit.Generators.ripple_adder ~bits:4 in
  let r = E.check_aig c (Circuit.Netlist.copy c) in
  Alcotest.(check bool) "copy equivalent" true (r.E.verdict = E.Equivalent);
  Alcotest.(check bool) "no solver needed" true (r.E.sat_stats = None);
  (* counterexamples valid *)
  let buggy, _ = Circuit.Transform.inject_bug ~seed:4 c in
  (match (E.check_aig c buggy).E.verdict with
   | E.Inequivalent vec ->
     Alcotest.(check bool) "aig cex valid" true
       (Circuit.Simulate.eval_outputs c vec
        <> Circuit.Simulate.eval_outputs buggy vec)
   | E.Equivalent -> ()
   | E.Inconclusive why -> Alcotest.failf "aig: %s" why);
  (* agrees with the plain miter on random pairs *)
  for seed = 1 to 8 do
    let a = Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 600) in
    let b =
      if seed mod 2 = 0 then Circuit.Transform.demorgan ~seed a
      else fst (Circuit.Transform.inject_bug ~seed a)
    in
    let va = (E.check_aig a b).E.verdict in
    let vs = (E.check_sat a b).E.verdict in
    match va, vs with
    | E.Equivalent, E.Equivalent -> ()
    | E.Inequivalent _, E.Inequivalent _ -> ()
    | _ -> Alcotest.fail "aig and miter disagree"
  done

let suite =
  [
    Th.case "aig method" aig_method;
    Th.case "methods agree on equivalent" methods_agree_on_equivalent;
    Th.case "counterexamples valid" counterexamples_valid;
    Th.case "bdd blowup" bdd_blowup_reported;
    Th.case "sat scales past bdd" sat_handles_what_bdd_cannot;
    Th.case "interface mismatch" interface_mismatch_inequivalent;
    Th.case "stats" stats_populated;
  ]
