module T = Sat.Types

let solve ?config f = fst (Sat.Dpll.solve ?config f)

let basics () =
  Alcotest.(check bool) "sat" true
    (Th.outcome_sat (solve (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ])));
  Alcotest.(check bool) "unsat" false
    (Th.outcome_sat
       (solve (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ])));
  Alcotest.(check bool) "empty clause" false
    (Th.outcome_sat (solve (Th.formula_of [ [] ])));
  Alcotest.(check bool) "trivial" true
    (Th.outcome_sat (solve (Cnf.Formula.create ())))

let unit_chains () =
  let o, st = Sat.Dpll.solve (Th.formula_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ]) in
  Alcotest.(check bool) "sat" true (Th.outcome_sat o);
  Alcotest.(check int) "no decisions needed" 0 st.T.decisions

let model_validity () =
  let rng = Sat.Rng.create 3 in
  for _ = 1 to 40 do
    let f = Th.random_cnf rng 9 28 4 in
    match solve f with
    | T.Sat m ->
      Alcotest.(check bool) "model ok" true (Cnf.Formula.eval (fun v -> m.(v)) f)
    | T.Unsat -> ()
    | T.Unsat_assuming _ | T.Unknown _ -> Alcotest.fail "unexpected"
  done

let assumptions () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  (match Sat.Dpll.solve ~assumptions:[ Th.lit (-2) ] f with
   | T.Unsat_assuming _, _ -> ()
   | _ -> Alcotest.fail "expected unsat under -2");
  match Sat.Dpll.solve ~assumptions:[ Th.lit 2 ] f with
  | T.Sat _, _ -> ()
  | _ -> Alcotest.fail "expected sat"

let budget () =
  let php =
    Th.formula_of
      (let v i j = (i * 5) + j + 1 in
       let cls = ref [] in
       for i = 0 to 5 do
         cls := List.init 5 (fun j -> v i j) :: !cls
       done;
       for j = 0 to 4 do
         for i1 = 0 to 5 do
           for i2 = i1 + 1 to 5 do
             cls := [ -(v i1 j); -(v i2 j) ] :: !cls
           done
         done
       done;
       !cls)
  in
  let cfg = { T.default with T.max_decisions = Some 3 } in
  match solve ~config:cfg php with
  | T.Unknown _ -> ()
  | _ -> Alcotest.fail "expected budget"

let heuristics_differential () =
  let rng = Sat.Rng.create 81 in
  let hs = [ T.Fixed_order; T.Dlis; T.Moms; T.Jeroslow_wang; T.Random_order ] in
  for _ = 1 to 25 do
    let f = Th.random_cnf rng 9 30 4 in
    let expected = Th.outcome_sat (Sat.Brute.solve f) in
    List.iter
      (fun h ->
         let got = Th.outcome_sat (solve ~config:{ T.default with T.heuristic = h } f) in
         Alcotest.(check bool) "dpll heuristic agrees" expected got)
      hs
  done

let stats_meaningful () =
  (* DPLL on an unsat instance must conflict at least once *)
  let _, st = Sat.Dpll.solve (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ]) in
  Alcotest.(check bool) "conflicts counted" true (st.T.conflicts > 0);
  Alcotest.(check bool) "propagations counted" true (st.T.propagations > 0)

let prop_differential =
  QCheck.Test.make ~name:"dpll agrees with brute force" ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 11) in
       let f = Th.random_cnf rng (3 + Sat.Rng.int rng 8) (3 + Sat.Rng.int rng 35) 4 in
       Th.outcome_sat (solve f) = Th.outcome_sat (Sat.Brute.solve f))

let suite =
  [
    Th.case "basics" basics;
    Th.case "unit chains" unit_chains;
    Th.case "model validity" model_validity;
    Th.case "assumptions" assumptions;
    Th.case "budget" budget;
    Th.case "heuristics" heuristics_differential;
    Th.case "stats" stats_meaningful;
    Th.qcheck prop_differential;
  ]
