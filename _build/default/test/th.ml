(* Shared test helpers. *)

let lit = Cnf.Lit.of_dimacs

let formula_of cls =
  let f = Cnf.Formula.create () in
  List.iter (Cnf.Formula.add_dimacs f) cls;
  f

let random_cnf rng nvars nclauses maxlen =
  let f = Cnf.Formula.create ~nvars () in
  for _ = 1 to nclauses do
    let len = 1 + Sat.Rng.int rng maxlen in
    let lits =
      List.init len (fun _ ->
          Cnf.Lit.of_var (Sat.Rng.int rng nvars) (Sat.Rng.bool rng))
    in
    Cnf.Formula.add_clause_l f lits
  done;
  f

let outcome_sat = function
  | Sat.Types.Sat _ -> true
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false

let model_of = function
  | Sat.Types.Sat m -> m
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
    Alcotest.fail "expected SAT"

let solve_cdcl ?config f = Sat.Cdcl.solve (Sat.Cdcl.create ?config f)

let assert_equivalent ?(msg = "circuits equivalent") c1 c2 =
  let f, _ = Circuit.Miter.to_cnf c1 c2 in
  match solve_cdcl f with
  | Sat.Types.Unsat -> ()
  | Sat.Types.Sat _ -> Alcotest.fail (msg ^ ": found distinguishing vector")
  | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
    Alcotest.fail (msg ^ ": inconclusive")

let assert_inequivalent ?(msg = "circuits differ") c1 c2 =
  let f, _ = Circuit.Miter.to_cnf c1 c2 in
  match solve_cdcl f with
  | Sat.Types.Sat _ -> ()
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
    Alcotest.fail msg

let bits_of n width = Array.init width (fun i -> n land (1 lsl i) <> 0)

let int_of_bits a =
  Array.to_list a
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let qcheck = QCheck_alcotest.to_alcotest

let case name f = Alcotest.test_case name `Quick f
