module F = Cnf.Formula

let building () =
  let f = F.create () in
  Alcotest.(check int) "empty vars" 0 (F.nvars f);
  let v = F.fresh_var f in
  Alcotest.(check int) "fresh" 0 v;
  F.add_dimacs f [ 1; -3 ];
  Alcotest.(check int) "vars grow with clauses" 3 (F.nvars f);
  Alcotest.(check int) "one clause" 1 (F.nclauses f);
  F.add_dimacs f [ 2; -2 ];
  Alcotest.(check int) "tautology dropped" 1 (F.nclauses f)

let eval () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  Alcotest.(check bool) "x2 true sat" true (F.eval (fun v -> v = 1) f);
  Alcotest.(check bool) "all false unsat" false (F.eval (fun _ -> false) f)

let snapshot_order () =
  let f = Th.formula_of [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let cls = F.clauses f in
  Alcotest.(check int) "count" 3 (Array.length cls);
  Alcotest.(check bool) "insertion order" true
    (Cnf.Clause.equal cls.(0) (Cnf.Clause.of_dimacs_list [ 1 ]))

let copy_independent () =
  let f = Th.formula_of [ [ 1; 2 ] ] in
  let g = F.copy f in
  F.add_dimacs g [ 3 ];
  Alcotest.(check int) "copy grew" 2 (F.nclauses g);
  Alcotest.(check int) "original unchanged" 1 (F.nclauses f)

let literals_count () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1 ] ] in
  Alcotest.(check int) "num_literals" 3 (F.num_literals f)

let dimacs_roundtrip () =
  let f = Th.formula_of [ [ 1; -2; 3 ]; [ -3 ]; [ 2; 1 ] ] in
  let g = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
  Alcotest.(check int) "vars" (F.nvars f) (F.nvars g);
  Alcotest.(check int) "clauses" (F.nclauses f) (F.nclauses g)

let dimacs_parsing () =
  let f = Cnf.Dimacs.parse_string "c comment\np cnf 4 2\n1 -2 0\n3 4 0\n" in
  Alcotest.(check int) "header vars" 4 (F.nvars f);
  Alcotest.(check int) "clauses" 2 (F.nclauses f);
  (* clause spanning lines, missing trailing zero *)
  let g = Cnf.Dimacs.parse_string "1 2\n3 0\n-1 -2" in
  Alcotest.(check int) "multiline + trailing" 2 (F.nclauses g);
  Alcotest.check_raises "garbage" (Cnf.Dimacs.Parse_error "bad token \"xyz\"")
    (fun () -> ignore (Cnf.Dimacs.parse_string "1 xyz 0"))

let prop_dimacs_roundtrip_random =
  QCheck.Test.make ~name:"dimacs roundtrip on random formulas" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 1) in
       let f = Th.random_cnf rng 8 15 4 in
       let g = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
       (* same models *)
       let same = ref true in
       for mask = 0 to 255 do
         let value v = mask land (1 lsl v) <> 0 in
         if F.eval value f <> F.eval value g then same := false
       done;
       !same && F.nvars f = F.nvars g)

let suite =
  [
    Th.case "building" building;
    Th.case "eval" eval;
    Th.case "snapshot order" snapshot_order;
    Th.case "copy independent" copy_independent;
    Th.case "literal count" literals_count;
    Th.case "dimacs roundtrip" dimacs_roundtrip;
    Th.case "dimacs parsing" dimacs_parsing;
    Th.qcheck prop_dimacs_roundtrip_random;
  ]
