module R = Cnf.Resolution
module Clause = Cnf.Clause

let clause = Clause.of_dimacs_list

let resolve_basic () =
  (match R.resolve (clause [ 1; 2 ]) (clause [ -1; 3 ]) 0 with
   | Some r -> Alcotest.(check bool) "resolvent" true (Clause.equal r (clause [ 2; 3 ]))
   | None -> Alcotest.fail "expected resolvent");
  Alcotest.(check bool) "no clash" true
    (R.resolve (clause [ 1; 2 ]) (clause [ 1; 3 ]) 0 = None);
  (* tautological resolvent suppressed *)
  Alcotest.(check bool) "taut suppressed" true
    (R.resolve (clause [ 1; 2 ]) (clause [ -1; -2 ]) 0 = None)

let resolvable_cases () =
  Alcotest.(check (option int)) "single clash" (Some 0)
    (R.resolvable (clause [ 1; 2 ]) (clause [ -1; 3 ]));
  Alcotest.(check (option int)) "double clash" None
    (R.resolvable (clause [ 1; 2 ]) (clause [ -1; -2 ]));
  Alcotest.(check (option int)) "no clash" None
    (R.resolvable (clause [ 1; 2 ]) (clause [ 1; 3 ]))

let self_subsumption () =
  (* (1 2) with (-1 2 3): resolvent (2 3) subsumes (-1 2 3) by dropping -1 *)
  (match R.self_subsumes (clause [ 1; 2 ]) (clause [ -1; 2; 3 ]) with
   | Some dropped ->
     Alcotest.(check int) "drops -1" (Cnf.Lit.of_dimacs (-1)) dropped
   | None -> Alcotest.fail "expected self-subsumption");
  Alcotest.(check bool) "no strengthening" true
    (R.self_subsumes (clause [ 1; 4 ]) (clause [ -1; 2; 3 ]) = None)

let is_implicate_cases () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  Alcotest.(check bool) "x2 implied" true (R.is_implicate f (clause [ 2 ]));
  Alcotest.(check bool) "x1 not implied" false (R.is_implicate f (clause [ 1 ]));
  Alcotest.(check bool) "weaker clause implied" true
    (R.is_implicate f (clause [ 1; 2; 3 ]))

let prop_resolvent_is_implicate =
  (* the resolvent of two clauses is an implicate of their conjunction *)
  QCheck.Test.make ~name:"resolvents are implicates" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (int_range 1 6))
              (list_of_size (Gen.int_range 1 5) (int_range 1 6)))
    (fun (raw1, raw2) ->
       let signed rng_seed l =
         List.mapi (fun i x -> if (i + rng_seed) mod 2 = 0 then x else -x) l
       in
       let c = clause (signed 0 raw1) and d = clause (signed 1 raw2) in
       match R.resolvable c d with
       | None -> true
       | Some v -> (
           match R.resolve c d v with
           | None -> true
           | Some r ->
             let f = Cnf.Formula.of_clauses ~nvars:7 [ c; d ] in
             R.is_implicate f r))

let suite =
  [
    Th.case "resolve" resolve_basic;
    Th.case "resolvable" resolvable_cases;
    Th.case "self-subsumption" self_subsumption;
    Th.case "is_implicate" is_implicate_cases;
    Th.qcheck prop_resolvent_is_implicate;
  ]
