module E = Sat.Equivalence

let detect_pair () =
  (* (1 -2)(-1 2) makes x1 = x2 *)
  match E.detect (Th.formula_of [ [ 1; -2 ]; [ -1; 2 ]; [ 2; 3 ] ]) with
  | E.Reduced r ->
    Alcotest.(check int) "one merged" 1 r.E.merged;
    (* x2 must no longer occur *)
    let occurs = ref false in
    Cnf.Formula.iter_clauses r.E.formula (fun c ->
        if List.exists (fun l -> Cnf.Lit.var l = 1) (Cnf.Clause.to_list c) then
          occurs := true);
    Alcotest.(check bool) "x2 substituted" false !occurs
  | E.Unsat_equiv -> Alcotest.fail "not unsat"

let detect_negated_pair () =
  (* (1 2)(-1 -2) makes x1 = ~x2 *)
  match E.detect (Th.formula_of [ [ 1; 2 ]; [ -1; -2 ]; [ 2; 3; 4 ] ]) with
  | E.Reduced r ->
    Alcotest.(check int) "one merged" 1 r.E.merged;
    let m = E.complete_model ~rep:r.E.rep [| true; true; false; false |] in
    Alcotest.(check bool) "complement restored" true (m.(0) <> m.(1))
  | E.Unsat_equiv -> Alcotest.fail "not unsat"

let chain_of_equivalences () =
  (* x1=x2=x3=x4: three merged *)
  let f =
    Th.formula_of
      [ [ 1; -2 ]; [ -1; 2 ]; [ 2; -3 ]; [ -2; 3 ]; [ 3; -4 ]; [ -3; 4 ] ]
  in
  match E.detect f with
  | E.Reduced r -> Alcotest.(check int) "three merged" 3 r.E.merged
  | E.Unsat_equiv -> Alcotest.fail "not unsat"

let contradiction_cycle () =
  (* x1 -> x2 -> ~x1 and ~x1 -> x2? build x = ~x via 2-clauses:
     (x1 -> x2), (x2 -> ~x1), (~x1 -> x2)? simpler: (1 1)? Use
     (−1 2)(−2 −1)(1 2)... i.e. x1 <-> x2 and x1 <-> ~x2 *)
  let f = Th.formula_of [ [ 1; -2 ]; [ -1; 2 ]; [ 1; 2 ]; [ -1; -2 ] ] in
  match E.detect f with
  | E.Unsat_equiv -> ()
  | E.Reduced _ -> Alcotest.fail "expected contradiction"

let no_binary_clauses () =
  let f = Th.formula_of [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ] in
  match E.detect f with
  | E.Reduced r -> Alcotest.(check int) "nothing merged" 0 r.E.merged
  | E.Unsat_equiv -> Alcotest.fail "not unsat"

let prop_reduction_preserves_models =
  QCheck.Test.make ~name:"equivalence reduction preserves satisfiability"
    ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 7) in
       let nv = 4 + Sat.Rng.int rng 6 in
       let f = Th.random_cnf rng nv (3 + Sat.Rng.int rng 20) 4 in
       (* inject random equivalence pairs *)
       for _ = 1 to 2 do
         let a = Sat.Rng.int rng nv and b = Sat.Rng.int rng nv in
         if a <> b then begin
           Cnf.Formula.add_clause_l f [ Cnf.Lit.pos a; Cnf.Lit.neg_of_var b ];
           Cnf.Formula.add_clause_l f [ Cnf.Lit.neg_of_var a; Cnf.Lit.pos b ]
         end
       done;
       let expected = Th.outcome_sat (Sat.Brute.solve f) in
       match E.detect f with
       | E.Unsat_equiv -> not expected
       | E.Reduced r -> (
           match Th.solve_cdcl r.E.formula with
           | Sat.Types.Sat m ->
             expected
             &&
             let full = E.complete_model ~rep:r.E.rep m in
             Cnf.Formula.eval (fun v -> full.(v)) f
           | Sat.Types.Unsat -> not expected
           | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false))

let miter_detects_equivalences () =
  (* equivalence reasoning on a miter finds merged variables *)
  let c = Circuit.Generators.parity ~bits:4 in
  let c2 = Circuit.Transform.double_invert ~seed:3 c in
  let f, _ = Circuit.Miter.to_cnf c c2 in
  match E.detect f with
  | E.Reduced r ->
    Alcotest.(check bool) "miter equivalences found" true (r.E.merged > 0)
  | E.Unsat_equiv -> Alcotest.fail "unexpected"

let suite =
  [
    Th.case "pair" detect_pair;
    Th.case "negated pair" detect_negated_pair;
    Th.case "chain" chain_of_equivalences;
    Th.case "contradiction" contradiction_cycle;
    Th.case "no binaries" no_binary_clauses;
    Th.case "miter equivalences" miter_detects_equivalences;
    Th.qcheck prop_reduction_preserves_models;
  ]
