let count_true model lits =
  List.fold_left
    (fun acc l ->
       let v = model.(Cnf.Lit.var l) in
       let t = if Cnf.Lit.is_pos l then v else not v in
       if t then acc + 1 else acc)
    0 lits

(* check both soundness (every model obeys the bound) and completeness
   (every base assignment obeying the bound extends to a model of the
   encoding) by brute-force over the base variables *)
let check_encoding ~n ~k ~build ~ok_count =
  let lits = List.init n Cnf.Lit.pos in
  let f = Cnf.Formula.create ~nvars:n () in
  build f lits k;
  for mask = 0 to (1 lsl n) - 1 do
    let g = Cnf.Formula.copy f in
    for v = 0 to n - 1 do
      Cnf.Formula.add_clause_l g
        [ (if mask land (1 lsl v) <> 0 then Cnf.Lit.pos v else Cnf.Lit.neg_of_var v) ]
    done;
    let cnt =
      List.length (List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id))
    in
    let sat = Th.outcome_sat (Th.solve_cdcl g) in
    if sat <> ok_count cnt then
      Alcotest.failf "n=%d k=%d mask=%d: sat=%b count=%d" n k mask sat cnt
  done

let at_most_exhaustive () =
  for n = 1 to 5 do
    for k = 0 to n do
      check_encoding ~n ~k ~build:Cnf.Cardinality.at_most
        ~ok_count:(fun c -> c <= k)
    done
  done

let at_least_exhaustive () =
  for n = 1 to 5 do
    for k = 0 to n + 1 do
      check_encoding ~n ~k ~build:Cnf.Cardinality.at_least
        ~ok_count:(fun c -> c >= k)
    done
  done

let exactly_exhaustive () =
  for n = 1 to 5 do
    for k = 0 to n do
      check_encoding ~n ~k ~build:Cnf.Cardinality.exactly
        ~ok_count:(fun c -> c = k)
    done
  done

let pairwise_amo () =
  check_encoding ~n:5 ~k:1
    ~build:(fun f lits _ -> Cnf.Cardinality.at_most_one_pairwise f lits)
    ~ok_count:(fun c -> c <= 1)

let negative_literals () =
  (* bounds over mixed-polarity literals *)
  let f = Cnf.Formula.create ~nvars:4 () in
  let lits = [ Cnf.Lit.pos 0; Cnf.Lit.neg_of_var 1; Cnf.Lit.pos 2; Cnf.Lit.neg_of_var 3 ] in
  Cnf.Cardinality.at_most f lits 2;
  for mask = 0 to 15 do
    let g = Cnf.Formula.copy f in
    for v = 0 to 3 do
      Cnf.Formula.add_clause_l g
        [ (if mask land (1 lsl v) <> 0 then Cnf.Lit.pos v else Cnf.Lit.neg_of_var v) ]
    done;
    let model = Array.init 4 (fun v -> mask land (1 lsl v) <> 0) in
    let cnt = count_true model lits in
    let sat = Th.outcome_sat (Th.solve_cdcl g) in
    Alcotest.(check bool) "mixed polarity" (cnt <= 2) sat
  done

let prop_unit_propagation_bound_zero =
  QCheck.Test.make ~name:"k=0 forces all literals false" ~count:50
    QCheck.(int_range 1 8)
    (fun n ->
       let f = Cnf.Formula.create ~nvars:n () in
       let lits = List.init n Cnf.Lit.pos in
       Cnf.Cardinality.at_most f lits 0;
       match Th.solve_cdcl f with
       | Sat.Types.Sat m -> Array.for_all not (Array.sub m 0 n)
       | _ -> false)

let suite =
  [
    Th.case "at_most exhaustive" at_most_exhaustive;
    Th.case "at_least exhaustive" at_least_exhaustive;
    Th.case "exactly exhaustive" exactly_exhaustive;
    Th.case "pairwise amo" pairwise_amo;
    Th.case "negative literals" negative_literals;
    Th.qcheck prop_unit_propagation_bound_zero;
  ]
