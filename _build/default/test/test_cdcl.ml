module T = Sat.Types

let php n m =
  (* pigeonhole: n pigeons, m holes; UNSAT iff n > m *)
  let v i j = (i * m) + j + 1 in
  let cls = ref [] in
  for i = 0 to n - 1 do
    cls := List.init m (fun j -> v i j) :: !cls
  done;
  for j = 0 to m - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  Th.formula_of !cls

let basic_outcomes () =
  Alcotest.(check bool) "sat" true
    (Th.outcome_sat (Th.solve_cdcl (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ])));
  Alcotest.(check bool) "unsat" false
    (Th.outcome_sat
       (Th.solve_cdcl (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ])));
  Alcotest.(check bool) "empty formula sat" true
    (Th.outcome_sat (Th.solve_cdcl (Cnf.Formula.create ())));
  Alcotest.(check bool) "empty clause unsat" false
    (Th.outcome_sat (Th.solve_cdcl (Th.formula_of [ [] ])))

let pigeonhole () =
  Alcotest.(check bool) "php 6 5 unsat" false (Th.outcome_sat (Th.solve_cdcl (php 6 5)));
  Alcotest.(check bool) "php 5 5 sat" true (Th.outcome_sat (Th.solve_cdcl (php 5 5)))

let model_validity () =
  let rng = Sat.Rng.create 17 in
  for _ = 1 to 50 do
    let f = Th.random_cnf rng 10 30 4 in
    match Th.solve_cdcl f with
    | T.Sat m ->
      Alcotest.(check bool) "model satisfies" true
        (Cnf.Formula.eval (fun v -> m.(v)) f)
    | T.Unsat -> ()
    | T.Unsat_assuming _ | T.Unknown _ -> Alcotest.fail "unexpected"
  done

let assumptions () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  let s = Sat.Cdcl.create f in
  (match Sat.Cdcl.solve ~assumptions:[ Th.lit (-2) ] s with
   | T.Unsat_assuming core ->
     Alcotest.(check bool) "core mentions -2" true
       (List.mem (Th.lit (-2)) core)
   | _ -> Alcotest.fail "expected unsat under -2");
  (match Sat.Cdcl.solve ~assumptions:[ Th.lit 2 ] s with
   | T.Sat _ -> ()
   | _ -> Alcotest.fail "expected sat under 2");
  (* solver is reusable without assumptions afterwards *)
  Alcotest.(check bool) "still sat" true (Th.outcome_sat (Sat.Cdcl.solve s))

let assumption_core_subset () =
  (* assumptions a, b, c where only a, b conflict: core excludes c *)
  let f = Th.formula_of [ [ -1; -2 ] ] in
  let s = Sat.Cdcl.create f in
  (* ensure var 3 exists *)
  Sat.Cdcl.add_clause s [ Th.lit 3; Th.lit (-3) ];
  match
    Sat.Cdcl.solve ~assumptions:[ Th.lit 3; Th.lit 1; Th.lit 2 ] s
  with
  | T.Unsat_assuming core ->
    Alcotest.(check bool) "core omits 3" false (List.mem (Th.lit 3) core);
    Alcotest.(check bool) "core small" true (List.length core <= 2)
  | _ -> Alcotest.fail "expected failure"

let incremental () =
  let f = Th.formula_of [ [ 1; 2 ] ] in
  let s = Sat.Cdcl.create f in
  Alcotest.(check bool) "sat initially" true (Th.outcome_sat (Sat.Cdcl.solve s));
  Sat.Cdcl.add_clause s [ Th.lit (-1) ];
  Sat.Cdcl.add_clause s [ Th.lit (-2) ];
  Alcotest.(check bool) "unsat after additions" false
    (Th.outcome_sat (Sat.Cdcl.solve s));
  (* further solves stay unsat *)
  Alcotest.(check bool) "sticky" false (Th.outcome_sat (Sat.Cdcl.solve s))

let new_vars_mid_flight () =
  let s = Sat.Cdcl.create (Cnf.Formula.create ()) in
  let v = Sat.Cdcl.new_var s in
  Sat.Cdcl.add_clause s [ Cnf.Lit.pos v ];
  match Sat.Cdcl.solve s with
  | T.Sat m -> Alcotest.(check bool) "new var true" true m.(v)
  | _ -> Alcotest.fail "sat expected"

let budget () =
  let cfg = { T.default with T.max_conflicts = Some 1 } in
  match Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg (php 7 6)) with
  | T.Unknown _ -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

let learned_clauses_are_implicates () =
  let rng = Sat.Rng.create 23 in
  for _ = 1 to 20 do
    let f = Th.random_cnf rng 8 25 3 in
    let s = Sat.Cdcl.create f in
    ignore (Sat.Cdcl.solve s);
    List.iter
      (fun c ->
         Alcotest.(check bool) "learned clause is implicate" true
           (Cnf.Resolution.is_implicate f c))
      (Sat.Cdcl.learned_clauses s)
  done

let nonchronological_backtracking_observed () =
  let s = Sat.Cdcl.create (php 7 6) in
  ignore (Sat.Cdcl.solve s);
  let st = Sat.Cdcl.stats s in
  Alcotest.(check bool) "conflicts happened" true (st.T.conflicts > 0);
  Alcotest.(check bool) "learning happened" true (st.T.learned > 0)

let chronological_config_sound () =
  let cfg = { T.default with T.chronological = true } in
  Alcotest.(check bool) "php unsat chrono" false
    (Th.outcome_sat (Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg (php 5 4))));
  let rng = Sat.Rng.create 31 in
  for _ = 1 to 30 do
    let f = Th.random_cnf rng 8 25 4 in
    let a = Th.outcome_sat (Th.solve_cdcl f) in
    let b = Th.outcome_sat (Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg f)) in
    Alcotest.(check bool) "chrono agrees" a b
  done

let all_heuristics_differential () =
  let rng = Sat.Rng.create 47 in
  let heuristics =
    [ T.Vsids; T.Dlis; T.Moms; T.Jeroslow_wang; T.Fixed_order; T.Random_order ]
  in
  for _ = 1 to 25 do
    let f = Th.random_cnf rng 9 30 4 in
    let expected = Th.outcome_sat (Sat.Brute.solve f) in
    List.iter
      (fun h ->
         let cfg = { T.default with T.heuristic = h } in
         let got = Th.outcome_sat (Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg f)) in
         Alcotest.(check bool) "heuristic agrees with brute force" expected got)
      heuristics
  done

let deletion_policies_sound () =
  let policies =
    [ T.No_deletion; T.Size_bounded 4; T.Relevance (4, 2);
      T.Lbd_bounded 3; T.Activity_halving ]
  in
  List.iter
    (fun d ->
       let cfg = { T.default with T.deletion = d } in
       Alcotest.(check bool) "php unsat under deletion policy" false
         (Th.outcome_sat (Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg (php 6 5)))))
    policies

let restart_policies_sound () =
  let policies = [ T.No_restarts; T.Luby 10; T.Geometric (5, 1.3) ] in
  List.iter
    (fun r ->
       let cfg = { T.default with T.restarts = r; T.random_decision_freq = 0.2 } in
       Alcotest.(check bool) "php unsat under restarts" false
         (Th.outcome_sat (Sat.Cdcl.solve (Sat.Cdcl.create ~config:cfg (php 6 5)))))
    policies

let prop_differential_vs_brute =
  QCheck.Test.make ~name:"cdcl agrees with brute force" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 1) in
       let nv = 3 + Sat.Rng.int rng 9 in
       let nc = 3 + Sat.Rng.int rng 40 in
       let f = Th.random_cnf rng nv nc 4 in
       Th.outcome_sat (Th.solve_cdcl f) = Th.outcome_sat (Sat.Brute.solve f))

let suite =
  [
    Th.case "basic outcomes" basic_outcomes;
    Th.case "pigeonhole" pigeonhole;
    Th.case "model validity" model_validity;
    Th.case "assumptions" assumptions;
    Th.case "assumption core subset" assumption_core_subset;
    Th.case "incremental" incremental;
    Th.case "new vars" new_vars_mid_flight;
    Th.case "budget" budget;
    Th.case "learned clauses are implicates" learned_clauses_are_implicates;
    Th.case "conflict analysis engaged" nonchronological_backtracking_observed;
    Th.case "chronological config" chronological_config_sound;
    Th.case "all heuristics" all_heuristics_differential;
    Th.case "deletion policies" deletion_policies_sound;
    Th.case "restart policies" restart_policies_sound;
    Th.qcheck prop_differential_vs_brute;
  ]
