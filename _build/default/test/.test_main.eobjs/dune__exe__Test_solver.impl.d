test/test_solver.ml: Alcotest Array Circuit Cnf List Sat Th
