test/test_stalmarck.ml: Alcotest Circuit Cnf List Sat Th
