test/test_routing.ml: Alcotest Eda Th
