test/test_recursive_learning.ml: Alcotest Cnf List QCheck Sat Th
