test/test_bmc.ml: Alcotest Array Circuit Eda List Th
