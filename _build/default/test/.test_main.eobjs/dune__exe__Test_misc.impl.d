test/test_misc.ml: Alcotest Array Circuit Cnf Csat Eda Filename Format List Sat String Sys Th
