test/th.ml: Alcotest Array Circuit Cnf List QCheck_alcotest Sat
