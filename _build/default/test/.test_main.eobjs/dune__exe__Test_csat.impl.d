test/test_csat.ml: Alcotest Array Circuit Csat List Option Printf Sat Th
