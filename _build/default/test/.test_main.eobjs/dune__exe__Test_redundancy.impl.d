test/test_redundancy.ml: Alcotest Circuit Eda List Th
