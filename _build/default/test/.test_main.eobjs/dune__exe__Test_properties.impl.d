test/test_properties.ml: Aig Array Circuit Eda List QCheck Sat Th
