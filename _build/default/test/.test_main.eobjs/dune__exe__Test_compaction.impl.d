test/test_compaction.ml: Alcotest Circuit Eda List Th
