test/test_encode.ml: Alcotest Array Circuit Cnf List Option QCheck Sat Th
