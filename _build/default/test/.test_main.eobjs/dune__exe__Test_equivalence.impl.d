test/test_equivalence.ml: Alcotest Array Circuit Cnf List QCheck Sat Th
