test/test_formula.ml: Alcotest Array Cnf QCheck Sat Th
