test/test_crosstalk.ml: Alcotest Array Circuit Eda List Th
