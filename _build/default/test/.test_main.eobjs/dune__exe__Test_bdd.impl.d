test/test_bdd.ml: Alcotest Array Bdd Cnf List QCheck Sat Th
