test/test_resolution.ml: Alcotest Cnf Gen List QCheck Th
