test/test_cdcl.ml: Alcotest Array Cnf List QCheck Sat Th
