test/test_clause.ml: Alcotest Cnf QCheck Th
