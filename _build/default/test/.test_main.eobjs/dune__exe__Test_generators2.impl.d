test/test_generators2.ml: Alcotest Array Circuit Eda List Sat Th
