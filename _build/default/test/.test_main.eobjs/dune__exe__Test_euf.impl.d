test/test_euf.ml: Alcotest Eda Th
