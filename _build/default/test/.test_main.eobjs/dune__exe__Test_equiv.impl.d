test/test_equiv.ml: Alcotest Circuit Eda List Sat Th
