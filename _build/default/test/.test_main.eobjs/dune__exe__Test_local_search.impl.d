test/test_local_search.ml: Alcotest Array Cnf QCheck Sat Th
