test/test_transform.ml: Alcotest Circuit List Th
