test/test_atpg.ml: Alcotest Array Circuit Eda Format List String Th
