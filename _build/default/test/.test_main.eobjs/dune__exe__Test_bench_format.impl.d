test/test_bench_format.ml: Alcotest Array Circuit Eda List Th
