test/test_bcp.ml: Alcotest Cnf List Sat Th
