test/test_simulate3.ml: Alcotest Array Circuit Csat Eda List Sat Th
