test/test_path_delay.ml: Alcotest Array Circuit Eda List Th
