test/test_covering.ml: Alcotest Array Eda Fun List Th
