test/test_fvg.ml: Alcotest Array Circuit Eda Hashtbl List Th
