test/test_dpll.ml: Alcotest Array Cnf List QCheck Sat Th
