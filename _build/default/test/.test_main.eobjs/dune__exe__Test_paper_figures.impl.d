test/test_paper_figures.ml: Alcotest Array Circuit Cnf Csat List Option Sat Th
