test/test_proof.ml: Alcotest Array Cnf List QCheck Sat Th
