test/test_sequential.ml: Alcotest Array Circuit List Th
