test/test_cardinality.ml: Alcotest Array Cnf Fun List QCheck Sat Th
