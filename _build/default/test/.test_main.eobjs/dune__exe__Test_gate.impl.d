test/test_gate.ml: Alcotest Circuit List Th
