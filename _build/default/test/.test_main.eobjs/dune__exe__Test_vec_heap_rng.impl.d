test/test_vec_heap_rng.ml: Alcotest Array Int List Sat Th
