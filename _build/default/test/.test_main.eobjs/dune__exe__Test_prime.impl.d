test/test_prime.ml: Alcotest Cnf Eda Fun Int List Sat Th
