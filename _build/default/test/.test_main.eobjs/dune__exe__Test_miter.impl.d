test/test_miter.ml: Alcotest Array Circuit Cnf List Sat Th
