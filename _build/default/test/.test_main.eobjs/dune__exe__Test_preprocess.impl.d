test/test_preprocess.ml: Alcotest Array Cnf QCheck Sat Th
