test/test_delay.ml: Alcotest Circuit Cnf Eda List Sat Th
