test/test_lit.ml: Alcotest Cnf QCheck Th
