test/test_pseudo_boolean.ml: Alcotest Array Cnf Eda Fun List QCheck Sat Th
