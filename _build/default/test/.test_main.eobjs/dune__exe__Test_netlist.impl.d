test/test_netlist.ml: Alcotest Array Circuit Hashtbl List Option Printf Th
