test/test_seq_equiv.ml: Alcotest Circuit Eda Th
