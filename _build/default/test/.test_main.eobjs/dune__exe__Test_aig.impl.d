test/test_aig.ml: Aig Alcotest Array Circuit Cnf List Sat Th
