test/test_sweep.ml: Alcotest Circuit Eda List Sat Th
