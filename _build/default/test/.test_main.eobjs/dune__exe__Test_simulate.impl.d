test/test_simulate.ml: Alcotest Array Circuit Printf QCheck Sat Th
