test/test_expr.ml: Alcotest Array Cnf Format Int List QCheck Sat Th
