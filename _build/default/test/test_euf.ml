module E = Eda.Euf
open Eda.Euf

let x = var "x"
let y = var "y"
let z = var "z"
let f t = fn "f" [ t ]
let g t = fn "g" [ t ]

let congruence_valid () =
  Alcotest.(check bool) "x=y => f(x)=f(y)" true
    (E.valid (Imp (x === y, f x === f y)));
  Alcotest.(check bool) "nested congruence" true
    (E.valid (Imp (And [ x === y; y === z ], f (g x) === f (g z))));
  Alcotest.(check bool) "binary congruence" true
    (E.valid
       (Imp
          ( And [ x === y; var "u" === var "v" ],
            fn "h" [ x; var "u" ] === fn "h" [ y; var "v" ] )))

let non_injectivity () =
  Alcotest.(check bool) "f(x)=f(y) does not force x=y" false
    (E.valid (Imp (f x === f y, x === y)));
  Alcotest.(check bool) "x=y satisfiable" true
    (E.solve (x === y)).E.satisfiable;
  Alcotest.(check bool) "x<>x unsatisfiable" false
    (E.solve (Not (x === x))).E.satisfiable

let transitivity () =
  Alcotest.(check bool) "equality chains" true
    (E.valid
       (Imp (And [ x === y; y === z; z === var "w" ], x === var "w")));
  Alcotest.(check bool) "broken chain invalid" false
    (E.valid (Imp (And [ x === y; z === var "w" ], x === var "w")))

(* the classic EUF benchmark: f^3(x) = x and f^5(x) = x force f(x) = x *)
let iterate k t =
  let rec go acc n = if n = 0 then acc else go (f acc) (n - 1) in
  go t k

let function_cycles () =
  Alcotest.(check bool) "f3=x & f5=x => f(x)=x" true
    (E.valid
       (Imp (And [ iterate 3 x === x; iterate 5 x === x ], f x === x)));
  (* coprime powers needed: f2 and f4 do not suffice *)
  Alcotest.(check bool) "f2=x & f4=x do not force f(x)=x" false
    (E.valid
       (Imp (And [ iterate 2 x === x; iterate 4 x === x ], f x === x)))

let ite_terms () =
  (* mux pull-through: ite(c, f(x), f(y)) = f(ite(c, x, y)) *)
  let c = x === y in
  Alcotest.(check bool) "ite congruence" true
    (E.valid (Ite (c, f x, f y) === f (Ite (c, x, y))));
  Alcotest.(check bool) "ite true branch" true
    (E.valid (Imp (x === y, Ite (x === y, f x, f y) === f x)));
  Alcotest.(check bool) "ite branches differ" true
    (E.solve (Not (Ite (x === y, x, y) === x))).E.satisfiable

(* a miniature forwarding-path check in the style of the cited processor
   verification work: a bypass mux must produce exactly what the
   specification computes *)
let bypass_correctness () =
  let regval = var "regval" in
  let bus = var "bus" in
  let dest = var "dest" in
  let src = var "src" in
  let alu a b = fn "alu" [ a; b ] in
  (* spec: operand = if src = dest then bus else regval *)
  let spec_operand = Ite (src === dest, bus, regval) in
  (* impl: the same mux, but built the other way around *)
  let impl_operand = Ite (Not (src === dest), regval, bus) in
  Alcotest.(check bool) "bypass operands agree" true
    (E.valid (spec_operand === impl_operand));
  Alcotest.(check bool) "alu results agree" true
    (E.valid (alu spec_operand (var "op2") === alu impl_operand (var "op2")));
  (* a broken bypass (polarity swapped) is caught *)
  let broken = Ite (src === dest, regval, bus) in
  Alcotest.(check bool) "broken bypass caught" false
    (E.valid (spec_operand === broken))

let stats_populated () =
  let r = E.solve (Imp (x === y, f x === f y)) in
  Alcotest.(check bool) "constants counted" true (r.E.term_constants >= 4);
  Alcotest.(check bool) "equality vars" true (r.E.equality_vars > 0)

let suite =
  [
    Th.case "congruence" congruence_valid;
    Th.case "non-injectivity" non_injectivity;
    Th.case "transitivity" transitivity;
    Th.case "function cycles" function_cycles;
    Th.case "ite terms" ite_terms;
    Th.case "bypass correctness" bypass_correctness;
    Th.case "stats" stats_populated;
  ]
