module S = Circuit.Sequential

let counter_counts () =
  let c = S.counter ~bits:4 ~buggy_at:None in
  S.validate c;
  let state = ref c.S.init in
  for expected = 0 to 20 do
    (* state should encode expected mod 16 *)
    let value =
      List.mapi (fun i b -> if b then 1 lsl i else 0) !state
      |> List.fold_left ( + ) 0
    in
    Alcotest.(check int) "count" (expected mod 16) value;
    let next, outs = S.step c ~state:!state ~inputs:[| true |] in
    Alcotest.(check bool) "bad iff 15" (expected mod 16 = 15) outs.(0);
    state := next
  done

let counter_respects_enable () =
  let c = S.counter ~bits:3 ~buggy_at:None in
  let next, _ = S.step c ~state:c.S.init ~inputs:[| false |] in
  Alcotest.(check (list bool)) "disabled holds" c.S.init next

let buggy_counter_jumps () =
  let c = S.counter ~bits:3 ~buggy_at:(Some 2) in
  (* 0 -> 1 -> 2 -> 7 *)
  let s0 = c.S.init in
  let s1, _ = S.step c ~state:s0 ~inputs:[| true |] in
  let s2, _ = S.step c ~state:s1 ~inputs:[| true |] in
  let s3, _ = S.step c ~state:s2 ~inputs:[| true |] in
  let to_int s =
    List.mapi (fun i b -> if b then 1 lsl i else 0) s |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "jumped to 7" 7 (to_int s3)

let lfsr_period () =
  (* 3-bit maximal LFSR with taps [1; 2] cycles through 7 states *)
  let l = S.lfsr ~bits:3 ~taps:[ 1; 2 ] in
  S.validate l;
  let rec iterate state n =
    if n = 0 then state
    else
      let next, _ = S.step l ~state ~inputs:[||] in
      iterate next (n - 1)
  in
  let back = iterate l.S.init 7 in
  Alcotest.(check (list bool)) "period 7" l.S.init back;
  (* and not earlier *)
  for k = 1 to 6 do
    if iterate l.S.init k = l.S.init then Alcotest.fail "period too short"
  done

let simulate_collects_outputs () =
  let c = S.counter ~bits:2 ~buggy_at:None in
  let outs = S.simulate c ~inputs:(List.init 5 (fun _ -> [| true |])) in
  Alcotest.(check int) "five cycles" 5 (List.length outs);
  let bads = List.map (fun o -> o.(0)) outs in
  Alcotest.(check (list bool)) "bad at count 3" [ false; false; false; true; false ]
    bads

let validation_errors () =
  let c = S.counter ~bits:2 ~buggy_at:None in
  let broken = { c with S.init = [ true ] } in
  Alcotest.check_raises "init length"
    (Invalid_argument "Sequential: init length mismatch") (fun () ->
        S.validate broken)

let suite =
  [
    Th.case "counter counts" counter_counts;
    Th.case "enable" counter_respects_enable;
    Th.case "buggy jump" buggy_counter_jumps;
    Th.case "lfsr period" lfsr_period;
    Th.case "simulate" simulate_collects_outputs;
    Th.case "validation" validation_errors;
  ]
