module R = Eda.Routing

let routable_instances_verified () =
  for seed = 1 to 8 do
    let inst =
      R.random_instance ~seed ~width:4 ~height:4 ~tracks:4 ~nets:6
    in
    match fst (R.route inst) with
    | R.Routed routes ->
      Alcotest.(check bool) "routes check out" true (R.check_routes inst routes)
    | R.Unroutable -> () (* possible but rare at 4 tracks *)
    | R.Unknown why -> Alcotest.failf "unknown: %s" why
  done

let forced_conflict_unroutable () =
  (* two nets over the same single horizontal segment, one track *)
  let inst =
    {
      R.width = 2;
      height = 1;
      tracks = 1;
      nets = [ { R.src = (0, 0); dst = (1, 0) }; { R.src = (0, 0); dst = (1, 0) } ];
    }
  in
  match fst (R.route inst) with
  | R.Unroutable -> ()
  | R.Routed _ -> Alcotest.fail "capacity violated"
  | R.Unknown _ -> Alcotest.fail "unknown"

let two_tracks_resolve_conflict () =
  let inst =
    {
      R.width = 2;
      height = 1;
      tracks = 2;
      nets = [ { R.src = (0, 0); dst = (1, 0) }; { R.src = (0, 0); dst = (1, 0) } ];
    }
  in
  match fst (R.route inst) with
  | R.Routed routes ->
    Alcotest.(check bool) "valid" true (R.check_routes inst routes);
    (* distinct tracks *)
    (match routes with
     | [ a; b ] -> Alcotest.(check bool) "different tracks" true (a.R.track <> b.R.track)
     | _ -> Alcotest.fail "two routes expected")
  | _ -> Alcotest.fail "routable at 2 tracks"

let monotone_in_tracks () =
  for seed = 20 to 26 do
    let base = R.random_instance ~seed ~width:4 ~height:4 ~tracks:1 ~nets:7 in
    let routable t =
      match fst (R.route { base with R.tracks = t }) with
      | R.Routed _ -> true
      | R.Unroutable -> false
      | R.Unknown _ -> Alcotest.fail "unknown"
    in
    let prev = ref false in
    for t = 1 to 4 do
      let now = routable t in
      if !prev && not now then Alcotest.fail "routability not monotone";
      prev := now
    done;
    Alcotest.(check bool) "eventually routable" true !prev
  done

let l_shapes_matter () =
  (* a diagonal net has two L options; blocking one leaves the other *)
  let inst =
    {
      R.width = 2;
      height = 2;
      tracks = 1;
      nets =
        [
          { R.src = (0, 0); dst = (1, 1) };
          { R.src = (0, 0); dst = (1, 0) } (* blocks the horizontal-first row 0 *);
        ];
    }
  in
  match fst (R.route inst) with
  | R.Routed routes -> Alcotest.(check bool) "valid" true (R.check_routes inst routes)
  | _ -> Alcotest.fail "the vertical-first option must save this"

let suite =
  [
    Th.case "random instances" routable_instances_verified;
    Th.case "forced conflict" forced_conflict_unroutable;
    Th.case "two tracks" two_tracks_resolve_conflict;
    Th.case "monotone in width" monotone_in_tracks;
    Th.case "L-shape choice" l_shapes_matter;
  ]
