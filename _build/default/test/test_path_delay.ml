module P = Eda.Path_delay
module N = Circuit.Netlist

let enumeration_valid () =
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  let paths = P.enumerate_paths c ~limit:20 in
  Alcotest.(check int) "limit respected" 20 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check bool) "valid path" true (P.validate_path c p))
    paths

let validate_rejects () =
  let c = Circuit.Generators.majority3 () in
  Alcotest.(check bool) "empty" false (P.validate_path c []);
  (* gate-first path *)
  let gate = List.hd (N.output_ids c) in
  Alcotest.(check bool) "must start at input" false (P.validate_path c [ gate ]);
  (* disconnected pair *)
  let i0 = List.nth (N.inputs c) 0 in
  let i1 = List.nth (N.inputs c) 1 in
  Alcotest.(check bool) "disconnected" false (P.validate_path c [ i0; i1 ])

let robust_tests_transition () =
  let c = Circuit.Generators.ripple_adder ~bits:2 in
  let paths = P.enumerate_paths c ~limit:8 in
  let found = ref 0 in
  List.iter
    (fun path ->
       List.iter
         (fun rising ->
            match P.robust_test c ~path ~rising with
            | P.Test (v1, v2) ->
              incr found;
              let o1 = Circuit.Simulate.eval_all c v1 in
              let o2 = Circuit.Simulate.eval_all c v2 in
              (* every on-path node switches *)
              List.iter
                (fun n ->
                   Alcotest.(check bool) "on-path transition" true
                     (o1.(n) <> o2.(n)))
                path
            | P.Untestable -> ()
            | P.Aborted why -> Alcotest.failf "aborted: %s" why)
         [ true; false ])
    paths;
  Alcotest.(check bool) "some robust tests exist" true (!found > 0)

let xor_paths_have_steady_sides () =
  (* in a parity tree every side input must be steady in a robust test *)
  let c = Circuit.Generators.parity ~bits:4 in
  let paths = P.enumerate_paths c ~limit:4 in
  List.iter
    (fun path ->
       match P.robust_test c ~path ~rising:true with
       | P.Test (v1, v2) ->
         let o1 = Circuit.Simulate.eval_all c v1 in
         let o2 = Circuit.Simulate.eval_all c v2 in
         (* off-path inputs of on-path XOR gates are steady *)
         let rec walk = function
           | [] | [ _ ] -> ()
           | prev :: (next :: _ as rest) ->
             (match N.node c next with
              | N.Gate (_, fs) ->
                List.iter
                  (fun w ->
                     if w <> prev then
                       Alcotest.(check bool) "side steady" true
                         (o1.(w) = o2.(w)))
                  fs
              | N.Input | N.Const _ -> ());
             walk rest
         in
         walk path
       | P.Untestable -> ()
       | P.Aborted why -> Alcotest.failf "aborted: %s" why)
    paths

let incremental_matches_scratch () =
  let c = Circuit.Generators.carry_skip_adder ~bits:4 ~block:2 in
  let paths = P.enumerate_paths c ~limit:15 in
  let inc = P.test_paths ~incremental:true c paths in
  let scr = P.test_paths ~incremental:false c paths in
  Alcotest.(check int) "testable match" scr.P.testable inc.P.testable;
  Alcotest.(check int) "untestable match" scr.P.untestable inc.P.untestable;
  Alcotest.(check int) "paths" (List.length paths) inc.P.paths

let false_paths_untestable () =
  (* the skip path of a carry-skip adder is robust-untestable in at
     least one case: just check untestable paths exist in the sweep *)
  let c = Circuit.Generators.carry_skip_adder ~bits:6 ~block:3 in
  let paths = P.enumerate_paths c ~limit:30 in
  let s = P.test_paths c paths in
  Alcotest.(check bool) "untestable paths exist" true (s.P.untestable > 0)

let suite =
  [
    Th.case "enumeration" enumeration_valid;
    Th.case "validate rejects" validate_rejects;
    Th.case "robust transitions" robust_tests_transition;
    Th.case "xor steady sides" xor_paths_have_steady_sides;
    Th.case "incremental matches scratch" incremental_matches_scratch;
    Th.case "false paths untestable" false_paths_untestable;
  ]
