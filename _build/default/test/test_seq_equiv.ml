module Q = Eda.Seq_equiv
module S = Circuit.Sequential
module B = Circuit.Bench_format

let identical_machines_proved () =
  let c = S.counter ~bits:3 ~buggy_at:None in
  let c' = B.parse_sequential_string (B.sequential_to_string c) in
  match Q.check c c' with
  | Q.Equivalent k -> Alcotest.(check bool) "small k" true (k <= 2)
  | Q.Bounded_equivalent _ -> Alcotest.fail "register correspondence should close"
  | Q.Different _ -> Alcotest.fail "identical machines"

let ring_counters_proved () =
  let r = S.ring_counter ~bits:5 in
  match Q.check r (S.ring_counter ~bits:5) with
  | Q.Equivalent _ -> ()
  | _ -> Alcotest.fail "identical rings"

let buggy_machine_refuted () =
  let good = S.counter ~bits:3 ~buggy_at:None in
  let bad = S.counter ~bits:3 ~buggy_at:(Some 2) in
  match Q.check good bad with
  | Q.Different frames ->
    (* replaying the trace must expose an output difference *)
    let o1 = S.simulate good ~inputs:frames in
    let o2 = S.simulate bad ~inputs:frames in
    Alcotest.(check bool) "trace distinguishes" true (o1 <> o2)
  | Q.Equivalent _ -> Alcotest.fail "buggy machine proved equivalent?!"
  | Q.Bounded_equivalent _ -> Alcotest.fail "difference is shallow (depth 4)"

let interface_mismatch () =
  let a = S.counter ~bits:2 ~buggy_at:None in
  let b = S.ring_counter ~bits:3 in
  Alcotest.check_raises "pi mismatch"
    (Invalid_argument "Seq_equiv.check: primary input counts differ")
    (fun () -> ignore (Q.check a b))

let lfsr_self_equivalence () =
  let l = S.lfsr ~bits:4 ~taps:[ 2; 3 ] in
  match Q.check l (S.lfsr ~bits:4 ~taps:[ 2; 3 ]) with
  | Q.Equivalent _ -> ()
  | _ -> Alcotest.fail "identical lfsrs"

let suite =
  [
    Th.case "identical machines" identical_machines_proved;
    Th.case "ring counters" ring_counters_proved;
    Th.case "buggy machine refuted" buggy_machine_refuted;
    Th.case "interface mismatch" interface_mismatch;
    Th.case "lfsr" lfsr_self_equivalence;
  ]
