module C = Eda.Covering

(* brute-force minimum cover for small instances *)
let brute_optimal inst =
  let nsets = Array.length inst.C.sets in
  let best = ref None in
  for mask = 0 to (1 lsl nsets) - 1 do
    let chosen =
      List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init nsets Fun.id)
    in
    if C.is_cover inst chosen then
      let cost = C.cover_cost inst chosen in
      match !best with
      | Some b when b <= cost -> ()
      | Some _ | None -> best := Some cost
  done;
  !best

let greedy_covers () =
  for seed = 1 to 10 do
    let inst = C.random_instance ~seed ~nelems:25 ~nsets:12 ~density:0.25 in
    Alcotest.(check bool) "greedy covers" true (C.is_cover inst (C.greedy inst))
  done

let sat_optimal_is_optimal () =
  for seed = 1 to 10 do
    let inst = C.random_instance ~seed ~nelems:15 ~nsets:10 ~density:0.25 in
    match C.sat_optimal inst with
    | Some sol ->
      Alcotest.(check bool) "covers" true (C.is_cover inst sol);
      (match brute_optimal inst with
       | Some b -> Alcotest.(check int) "matches brute force" b (C.cover_cost inst sol)
       | None -> Alcotest.fail "brute found no cover")
    | None -> Alcotest.fail "instance is coverable by construction"
  done

let sat_never_worse_than_greedy () =
  for seed = 11 to 25 do
    let inst = C.random_instance ~seed ~nelems:30 ~nsets:14 ~density:0.2 in
    let g = C.greedy inst in
    match C.sat_optimal inst with
    | Some sol ->
      Alcotest.(check bool) "opt <= greedy" true
        (C.cover_cost inst sol <= C.cover_cost inst g)
    | None -> Alcotest.fail "coverable"
  done

let weighted_rejected () =
  let inst =
    { C.nelems = 2; sets = [| [ 0 ]; [ 1 ] |]; cost = [| 2; 1 |] }
  in
  Alcotest.check_raises "unit costs only"
    (Invalid_argument "Covering.sat_optimal: unit costs only") (fun () ->
        ignore (C.sat_optimal inst))

let is_cover_checks () =
  let inst = { C.nelems = 3; sets = [| [ 0; 1 ]; [ 2 ] |]; cost = [| 1; 1 |] } in
  Alcotest.(check bool) "full" true (C.is_cover inst [ 0; 1 ]);
  Alcotest.(check bool) "partial" false (C.is_cover inst [ 0 ]);
  Alcotest.(check int) "cost" 2 (C.cover_cost inst [ 0; 1 ])

let branch_and_bound_matches () =
  for seed = 1 to 12 do
    let inst = C.random_instance ~seed ~nelems:15 ~nsets:10 ~density:0.25 in
    match C.branch_and_bound inst, brute_optimal inst with
    | Some (sol, nodes), Some b ->
      Alcotest.(check bool) "bnb covers" true (C.is_cover inst sol);
      Alcotest.(check int) "bnb optimal" b (C.cover_cost inst sol);
      Alcotest.(check bool) "nodes counted" true (nodes > 0)
    | None, _ -> Alcotest.fail "budget should suffice"
    | _, None -> Alcotest.fail "coverable by construction"
  done

let branch_and_bound_uncoverable () =
  let inst = { C.nelems = 2; sets = [| [ 0 ] |]; cost = [| 1 |] } in
  Alcotest.(check bool) "uncoverable" true (C.branch_and_bound inst = None)

let suite =
  [
    Th.case "branch and bound" branch_and_bound_matches;
    Th.case "bnb uncoverable" branch_and_bound_uncoverable;
    Th.case "greedy covers" greedy_covers;
    Th.case "sat optimal" sat_optimal_is_optimal;
    Th.case "sat <= greedy" sat_never_worse_than_greedy;
    Th.case "weighted rejected" weighted_rejected;
    Th.case "is_cover" is_cover_checks;
  ]
