module E = Circuit.Encode
module G = Circuit.Gate

(* Table 1 check: for each gate type, the clause set admits exactly the
   consistent input/output assignments. *)
let table1_exact () =
  let gates2 = [ G.And; G.Or; G.Nand; G.Nor; G.Xor; G.Xnor ] in
  let test g arity =
    let out = Cnf.Lit.pos 0 in
    let ins = List.init arity (fun i -> Cnf.Lit.pos (i + 1)) in
    let clauses = E.gate_clauses ~out ~ins g in
    for mask = 0 to (1 lsl (arity + 1)) - 1 do
      let value v = mask land (1 lsl v) <> 0 in
      let consistent =
        value 0 = G.eval g (List.init arity (fun i -> value (i + 1)))
      in
      let satisfied = List.for_all (Cnf.Clause.eval value) clauses in
      if consistent <> satisfied then
        Alcotest.failf "Table 1 mismatch for %s arity %d mask %d"
          (G.to_string g) arity mask
    done
  in
  List.iter
    (fun g ->
       test g 2;
       match g with
       | G.Xor | G.Xnor -> () (* n-ary handled by decomposition *)
       | G.And | G.Or | G.Nand | G.Nor -> test g 3
       | G.Not | G.Buf -> ())
    gates2;
  test G.Not 1;
  test G.Buf 1

let nary_xor_rejected () =
  Alcotest.check_raises "xor3 direct"
    (Invalid_argument "Encode.gate_clauses: n-ary XOR/XNOR must be decomposed")
    (fun () ->
       ignore
         (E.gate_clauses ~out:(Cnf.Lit.pos 0)
            ~ins:[ Cnf.Lit.pos 1; Cnf.Lit.pos 2; Cnf.Lit.pos 3 ]
            G.Xor))

let nary_xor_decomposition () =
  (* n-ary XOR through encode_into must match simulation *)
  let c = Circuit.Netlist.create () in
  let ins = List.init 4 (fun _ -> Circuit.Netlist.add_input c) in
  let x = Circuit.Netlist.add_gate c G.Xor ins in
  let y = Circuit.Netlist.add_gate c G.Xnor ins in
  Circuit.Netlist.set_output c x;
  Circuit.Netlist.set_output c y;
  let enc = E.encode c in
  for mask = 0 to 15 do
    let iv = Array.init 4 (fun i -> mask land (1 lsl i) <> 0) in
    let g = Cnf.Formula.copy enc.E.formula in
    List.iteri
      (fun i id ->
         let l = enc.E.lit_of_node id in
         Cnf.Formula.add_clause_l g
           [ (if iv.(i) then l else Cnf.Lit.negate l) ])
      (Circuit.Netlist.inputs c);
    match Th.solve_cdcl g with
    | Sat.Types.Sat m ->
      let values = Circuit.Simulate.eval_all c iv in
      List.iter
        (fun node ->
           let l = enc.E.lit_of_node node in
           Alcotest.(check bool) "xor chain value" values.(node)
             (m.(Cnf.Lit.var l)))
        [ x; y ]
    | _ -> Alcotest.fail "inputs fixed: must be sat"
  done

let constants_encoded () =
  let c = Circuit.Netlist.create () in
  let k = Circuit.Netlist.add_const c true in
  let a = Circuit.Netlist.add_input c in
  let g = Circuit.Netlist.add_gate c G.And [ k; a ] in
  Circuit.Netlist.set_output c g;
  let enc = E.encode c in
  E.assert_output enc.E.formula (enc.E.lit_of_node g) true;
  match Th.solve_cdcl enc.E.formula with
  | Sat.Types.Sat m ->
    Alcotest.(check bool) "input forced true" true
      m.(Cnf.Lit.var (enc.E.lit_of_node a))
  | _ -> Alcotest.fail "sat expected"

let figure1_circuit () =
  (* the paper's Figure 1: property z = 0 forces at least one of w1, w2
     to 0, making x or y rise *)
  let c = Circuit.Generators.fig1 () in
  let enc = E.encode c in
  let z = Option.get (Circuit.Netlist.find_by_name c "z") in
  let x = Option.get (Circuit.Netlist.find_by_name c "x") in
  let y = Option.get (Circuit.Netlist.find_by_name c "y") in
  E.assert_output enc.E.formula (enc.E.lit_of_node z) false;
  match Th.solve_cdcl enc.E.formula with
  | Sat.Types.Sat m ->
    let value n =
      m.(Cnf.Lit.var (enc.E.lit_of_node n))
    in
    Alcotest.(check bool) "z is 0" false (value z);
    Alcotest.(check bool) "x or y is 1" true (value x || value y)
  | _ -> Alcotest.fail "z=0 must be reachable"

let prop_encode_matches_simulation =
  QCheck.Test.make ~name:"circuit CNF has exactly the simulation models"
    ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:5 ~gates:20 ~seed:(seed + 3)
       in
       let enc = E.encode c in
       let rng = Sat.Rng.create (seed + 4) in
       let iv = Array.init 5 (fun _ -> Sat.Rng.bool rng) in
       let g = Cnf.Formula.copy enc.E.formula in
       List.iteri
         (fun i id ->
            let l = enc.E.lit_of_node id in
            Cnf.Formula.add_clause_l g
              [ (if iv.(i) then l else Cnf.Lit.negate l) ])
         (Circuit.Netlist.inputs c);
       match Th.solve_cdcl g with
       | Sat.Types.Sat m ->
         let values = Circuit.Simulate.eval_all c iv in
         let ok = ref true in
         for id = 0 to Circuit.Netlist.num_nodes c - 1 do
           let l = enc.E.lit_of_node id in
           if m.(Cnf.Lit.var l) <> values.(id) then ok := false
         done;
         !ok
       | _ -> false)

let suite =
  [
    Th.case "table 1 exact" table1_exact;
    Th.case "n-ary xor rejected" nary_xor_rejected;
    Th.case "n-ary xor decomposition" nary_xor_decomposition;
    Th.case "constants" constants_encoded;
    Th.case "figure 1" figure1_circuit;
    Th.qcheck prop_encode_matches_simulation;
  ]
