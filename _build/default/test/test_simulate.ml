module S = Circuit.Simulate

let adder_arithmetic () =
  let bits = 4 in
  let c = Circuit.Generators.ripple_adder ~bits in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let ins =
          Array.concat [ Th.bits_of a bits; Th.bits_of b bits; [| cin = 1 |] ]
        in
        let outs = S.eval_outputs c ins in
        Alcotest.(check int)
          (Printf.sprintf "%d+%d+%d" a b cin)
          (a + b + cin) (Th.int_of_bits outs)
      done
    done
  done

let carry_skip_arithmetic () =
  let c = Circuit.Generators.carry_skip_adder ~bits:6 ~block:3 in
  let rng = Sat.Rng.create 3 in
  for _ = 1 to 200 do
    let a = Sat.Rng.int rng 64 and b = Sat.Rng.int rng 64 in
    let ins = Array.concat [ Th.bits_of a 6; Th.bits_of b 6; [| false |] ] in
    Alcotest.(check int) "carry-skip sum" (a + b)
      (Th.int_of_bits (S.eval_outputs c ins))
  done

let multiplier_arithmetic () =
  let c = Circuit.Generators.multiplier ~bits:4 in
  let rng = Sat.Rng.create 4 in
  for _ = 1 to 200 do
    let a = Sat.Rng.int rng 16 and b = Sat.Rng.int rng 16 in
    let ins = Array.append (Th.bits_of a 4) (Th.bits_of b 4) in
    Alcotest.(check int) "product" (a * b)
      (Th.int_of_bits (S.eval_outputs c ins))
  done

let comparator_semantics () =
  let c = Circuit.Generators.comparator ~bits:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let ins = Array.append (Th.bits_of a 4) (Th.bits_of b 4) in
      Alcotest.(check bool) "lt" (a < b) (S.eval_outputs c ins).(0)
    done
  done

let parity_semantics () =
  let c = Circuit.Generators.parity ~bits:7 in
  for mask = 0 to 127 do
    let ins = Th.bits_of mask 7 in
    let expected = Array.fold_left (fun acc b -> acc <> b) false ins in
    Alcotest.(check bool) "parity" expected (S.eval_outputs c ins).(0)
  done

let mux_semantics () =
  let c = Circuit.Generators.mux_tree ~select_bits:3 in
  let rng = Sat.Rng.create 5 in
  for _ = 1 to 100 do
    let data = Array.init 8 (fun _ -> Sat.Rng.bool rng) in
    let sel = Sat.Rng.int rng 8 in
    let ins = Array.append data (Th.bits_of sel 3) in
    Alcotest.(check bool) "mux selects" data.(sel) (S.eval_outputs c ins).(0)
  done

let alu_semantics () =
  let bits = 4 in
  let c = Circuit.Generators.alu ~bits in
  let rng = Sat.Rng.create 6 in
  for _ = 1 to 200 do
    let a = Sat.Rng.int rng 16 and b = Sat.Rng.int rng 16 in
    let op = Sat.Rng.int rng 4 in
    let ins =
      Array.concat
        [ Th.bits_of a bits; Th.bits_of b bits;
          [| op land 1 <> 0; op land 2 <> 0 |] ]
    in
    let outs = S.eval_outputs c ins in
    let y = Th.int_of_bits (Array.sub outs 0 bits) in
    let expected =
      match op with
      | 0 -> a land b
      | 1 -> a lor b
      | 2 -> a lxor b
      | 3 -> (a + b) land 15
      | _ -> assert false
    in
    Alcotest.(check int) (Printf.sprintf "alu op %d" op) expected y;
    if op = 3 then
      Alcotest.(check bool) "alu carry" (a + b > 15) outs.(bits)
  done

let prop_parallel_equals_scalar =
  QCheck.Test.make ~name:"bit-parallel simulation equals scalar" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
       let c =
         Circuit.Generators.random_circuit ~inputs:6 ~gates:25 ~seed:(seed + 1)
       in
       let rng = Sat.Rng.create (seed + 2) in
       let words = S.random_words rng 6 in
       let packed = S.parallel_all c words in
       let ok = ref true in
       for bit = 0 to 9 do
         let ins = Array.map (fun w -> w land (1 lsl bit) <> 0) words in
         let scalar = S.eval_all c ins in
         for id = 0 to Circuit.Netlist.num_nodes c - 1 do
           if (packed.(id) land (1 lsl bit) <> 0) <> scalar.(id) then ok := false
         done
       done;
       !ok)

let input_mismatch () =
  let c = Circuit.Generators.majority3 () in
  Alcotest.check_raises "count" (Invalid_argument "Simulate: input count mismatch")
    (fun () -> ignore (S.eval_all c [| true |]))

let suite =
  [
    Th.case "ripple adder" adder_arithmetic;
    Th.case "carry-skip adder" carry_skip_arithmetic;
    Th.case "multiplier" multiplier_arithmetic;
    Th.case "comparator" comparator_semantics;
    Th.case "parity" parity_semantics;
    Th.case "mux tree" mux_semantics;
    Th.case "alu" alu_semantics;
    Th.case "input mismatch" input_mismatch;
    Th.qcheck prop_parallel_equals_scalar;
  ]
