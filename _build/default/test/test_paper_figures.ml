(* End-to-end reproduction of every figure and table in the paper. *)

(* Figure 1: example circuit, its CNF per Table 1, and the property z=0. *)
let figure1 () =
  let c = Circuit.Generators.fig1 () in
  let enc = Circuit.Encode.encode c in
  (* the CNF of Figure 1(a): 2 clauses per NOT, 3 for the 2-input AND *)
  Alcotest.(check int) "clause count" 7
    (Cnf.Formula.nclauses enc.Circuit.Encode.formula);
  let z = Option.get (Circuit.Netlist.find_by_name c "z") in
  Circuit.Encode.assert_output enc.Circuit.Encode.formula
    (enc.Circuit.Encode.lit_of_node z) false;
  match Th.solve_cdcl enc.Circuit.Encode.formula with
  | Sat.Types.Sat m ->
    let w1 = Option.get (Circuit.Netlist.find_by_name c "w1") in
    let w2 = Option.get (Circuit.Netlist.find_by_name c "w2") in
    let value n = m.(Cnf.Lit.var (enc.Circuit.Encode.lit_of_node n)) in
    Alcotest.(check bool) "z=0 needs a 0 input" true
      ((not (value w1)) || not (value w2))
  | _ -> Alcotest.fail "Figure 1 property is satisfiable"

(* Table 1: the gate CNF formulas (checked exactly in test_encode;
   here: the printed form used by bench E1 is consistent). *)
let table1 () =
  let clauses =
    Circuit.Encode.gate_clauses ~out:(Cnf.Lit.pos 0)
      ~ins:[ Cnf.Lit.pos 1; Cnf.Lit.pos 2 ]
      Circuit.Gate.And
  in
  (* x = AND(w1, w2): (~x + w1)(~x + w2)(x + ~w1 + ~w2) *)
  let expected =
    List.map Cnf.Clause.of_dimacs_list [ [ -1; 2 ]; [ -1; 3 ]; [ 1; -2; -3 ] ]
  in
  List.iter
    (fun e ->
       Alcotest.(check bool) "Table 1 AND clause present" true
         (List.exists (Cnf.Clause.equal e) clauses))
    expected;
  Alcotest.(check int) "exactly three" 3 (List.length clauses)

(* Figure 2: the generic algorithm's Decide/Deduce/Diagnose/Erase loop —
   witnessed by a solver that must decide, propagate, conflict and
   backtrack to solve the pigeonhole instance. *)
let figure2 () =
  let v i j = (i * 3) + j + 1 in
  let cls = ref [] in
  for i = 0 to 3 do
    cls := List.init 3 (fun j -> v i j) :: !cls
  done;
  for j = 0 to 2 do
    for i1 = 0 to 3 do
      for i2 = i1 + 1 to 3 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  let s = Sat.Cdcl.create (Th.formula_of !cls) in
  (match Sat.Cdcl.solve s with
   | Sat.Types.Unsat -> ()
   | _ -> Alcotest.fail "pigeonhole 4/3 is unsatisfiable");
  let st = Sat.Cdcl.stats s in
  Alcotest.(check bool) "Decide ran" true (st.Sat.Types.decisions > 0);
  Alcotest.(check bool) "Deduce ran" true (st.Sat.Types.propagations > 0);
  Alcotest.(check bool) "Diagnose ran" true (st.Sat.Types.conflicts > 0)

(* Figure 3: the conflict-analysis example.  With w=1, y3=0 and the
   decision x1=1, the conflict yields the clause (~x1 + ~w + y3). *)
let figure3 () =
  let c = Circuit.Generators.fig3 () in
  let enc = Circuit.Encode.encode c in
  let node n = Option.get (Circuit.Netlist.find_by_name c n) in
  let l n = enc.Circuit.Encode.lit_of_node (node n) in
  let f = enc.Circuit.Encode.formula in
  (* force w = 1 and y3 = 0 as clauses (the example's test objective) *)
  Circuit.Encode.assert_output f (l "w") true;
  Circuit.Encode.assert_output f (l "y3") false;
  let cfg = { Sat.Types.default with Sat.Types.heuristic = Sat.Types.Fixed_order } in
  let s = Sat.Cdcl.create ~config:cfg f in
  (* x1 = 1 yields a conflict: the instance is in fact UNSAT overall or
     the solver flips x1; either way x1 must end up 0 *)
  (match Sat.Cdcl.solve s with
   | Sat.Types.Sat m ->
     Alcotest.(check bool) "x1 forced to 0" false
       m.(Cnf.Lit.var (l "x1"))
   | Sat.Types.Unsat -> Alcotest.fail "w=1, y3=0 is consistent (x1=0)"
   | _ -> Alcotest.fail "unexpected");
  (* the derived implicate: (~x1 + ~w + y3) *)
  let expected =
    Cnf.Clause.of_list
      [ Cnf.Lit.negate (l "x1"); Cnf.Lit.negate (l "w"); l "y3" ]
  in
  Alcotest.(check bool) "Figure 3 clause is an implicate" true
    (Cnf.Resolution.is_implicate enc.Circuit.Encode.formula expected)

(* Figure 4 is covered exactly in test_recursive_learning; repeat the
   headline here so the paper index is complete in one suite. *)
let figure4 () =
  let f = Cnf.Formula.create ~nvars:5 () in
  Cnf.Formula.add_dimacs f [ 1; 2; -5 ];
  Cnf.Formula.add_dimacs f [ 2; -3 ];
  Cnf.Formula.add_dimacs f [ 5; 3; -4 ];
  (* vars: 1=u 2=x 3=y 4=z 5=w *)
  let r =
    Sat.Recursive_learning.learn
      ~assumptions:[ Th.lit 4; Th.lit (-1) ]
      f
  in
  Alcotest.(check bool) "x = 1 necessary" true
    (List.mem (Th.lit 2) r.Sat.Recursive_learning.necessary);
  Alcotest.(check bool) "(u + x + ~z) recorded" true
    (List.exists
       (Cnf.Clause.equal (Cnf.Clause.of_dimacs_list [ 1; 2; -4 ]))
       r.Sat.Recursive_learning.implicates)

(* Tables 2 and 3 are checked value-by-value in test_csat; here the
   integrated behaviour: justification-frontier termination solves the
   Figure 1 objective with a partial input assignment. *)
let tables23_integration () =
  let c = Circuit.Generators.fig1 () in
  let z = Option.get (Circuit.Netlist.find_by_name c "z") in
  let r = Csat.solve ~objectives:[ (z, false) ] c in
  Alcotest.(check bool) "solved" true (Th.outcome_sat r.Csat.outcome);
  Alcotest.(check bool) "underspecified" true
    (r.Csat.specified_inputs < r.Csat.total_inputs)

let suite =
  [
    Th.case "figure 1" figure1;
    Th.case "table 1" table1;
    Th.case "figure 2" figure2;
    Th.case "figure 3" figure3;
    Th.case "figure 4" figure4;
    Th.case "tables 2-3" tables23_integration;
  ]
