module P = Sat.Proof

let certified_unsat () =
  let f =
    Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ]
  in
  match P.solve_certified f with
  | Sat.Types.Unsat, P.Valid_refutation -> ()
  | Sat.Types.Unsat, _ -> Alcotest.fail "UNSAT but proof did not certify"
  | _ -> Alcotest.fail "expected UNSAT"

let certified_pigeonhole () =
  let v i j = (i * 4) + j + 1 in
  let cls = ref [] in
  for i = 0 to 4 do
    cls := List.init 4 (fun j -> v i j) :: !cls
  done;
  for j = 0 to 3 do
    for i1 = 0 to 4 do
      for i2 = i1 + 1 to 4 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  match P.solve_certified (Th.formula_of !cls) with
  | Sat.Types.Unsat, P.Valid_refutation -> ()
  | _ -> Alcotest.fail "php(5,4) must certify"

let sat_runs_give_valid_derivations () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 3; -2 ] ] in
  match P.solve_certified f with
  | Sat.Types.Sat _, (P.Valid_derivation | P.Valid_refutation) -> ()
  | Sat.Types.Sat _, P.Invalid_step i -> Alcotest.failf "invalid step %d" i
  | _ -> Alcotest.fail "expected SAT"

let corrupted_proof_rejected () =
  (* a clause that is not an implicate cannot be RUP *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  let bogus = [ Cnf.Clause.of_dimacs_list [ 1 ] ] in
  (match P.check f bogus with
   | P.Invalid_step 0 -> ()
   | _ -> Alcotest.fail "bogus step accepted");
  (* a valid step followed by a bogus one *)
  let mixed =
    [ Cnf.Clause.of_dimacs_list [ 2 ]; Cnf.Clause.of_dimacs_list [ -1 ] ]
  in
  match P.check f mixed with
  | P.Invalid_step 1 -> ()
  | _ -> Alcotest.fail "second step should fail"

let empty_proof_of_sat () =
  let f = Th.formula_of [ [ 1 ] ] in
  match P.check f [] with
  | P.Valid_derivation -> ()
  | _ -> Alcotest.fail "empty proof is a valid derivation"

let inconsistent_formula_trivially_refuted () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ] ] in
  match P.check f [] with
  | P.Valid_refutation -> ()
  | _ -> Alcotest.fail "root conflict is already a refutation"

let prop_unsat_always_certifiable =
  QCheck.Test.make ~name:"every UNSAT run certifies" ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 51) in
       let f =
         Th.random_cnf rng (4 + Sat.Rng.int rng 8) (10 + Sat.Rng.int rng 40) 3
       in
       match P.solve_certified f with
       | Sat.Types.Unsat, v -> v = P.Valid_refutation
       | Sat.Types.Sat m, v ->
         Cnf.Formula.eval (fun x -> m.(x)) f
         && (match v with
             | P.Valid_derivation | P.Valid_refutation -> true
             | P.Invalid_step _ -> false)
       | (Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _), _ -> false)

let prop_deletion_policies_still_certify =
  QCheck.Test.make ~name:"proofs survive clause deletion" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 61) in
       let f = Th.random_cnf rng 9 45 3 in
       let config =
         { Sat.Types.default with Sat.Types.deletion = Sat.Types.Size_bounded 3 }
       in
       match P.solve_certified ~config f with
       | Sat.Types.Unsat, v -> v = P.Valid_refutation
       | Sat.Types.Sat _, P.Invalid_step _ -> false
       | _ -> true)

let suite =
  [
    Th.case "certified unsat" certified_unsat;
    Th.case "certified pigeonhole" certified_pigeonhole;
    Th.case "sat derivations" sat_runs_give_valid_derivations;
    Th.case "corrupted proofs rejected" corrupted_proof_rejected;
    Th.case "empty proof" empty_proof_of_sat;
    Th.case "trivial refutation" inconsistent_formula_trivially_refuted;
    Th.qcheck prop_unsat_always_certifiable;
    Th.qcheck prop_deletion_policies_still_certify;
  ]
