module B = Sat.Bcp

let chain_formula () = Th.formula_of [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ]

let propagation_chain () =
  let b = B.create (chain_formula ()) in
  Alcotest.(check bool) "consistent" true (B.is_consistent b);
  match B.assume b (Th.lit 1) with
  | Some implied ->
    Alcotest.(check int) "chain length" 4 (List.length implied);
    Alcotest.(check int) "x4 true" 1 (B.value b (Th.lit 4))
  | None -> Alcotest.fail "no conflict expected"

let conflict_detection () =
  let f = Th.formula_of [ [ -1; 2 ]; [ -1; -2 ] ] in
  let b = B.create f in
  (match B.assume b (Th.lit 1) with
   | None -> ()
   | Some _ -> Alcotest.fail "conflict expected");
  (* engine must have rolled back *)
  Alcotest.(check int) "rolled back" (-1) (B.value b (Th.lit 1));
  Alcotest.(check bool) "still consistent" true (B.is_consistent b)

let checkpoints_restore () =
  let b = B.create (chain_formula ()) in
  let mark = B.checkpoint b in
  (match B.assume b (Th.lit 1) with Some _ -> () | None -> Alcotest.fail "sat");
  B.backtrack b mark;
  Alcotest.(check int) "x2 cleared" (-1) (B.value b (Th.lit 2));
  (* re-assume works identically *)
  match B.assume b (Th.lit 1) with
  | Some implied -> Alcotest.(check int) "again 4" 4 (List.length implied)
  | None -> Alcotest.fail "sat 2"

let root_units () =
  let f = Th.formula_of [ [ 1 ]; [ -1; 2 ] ] in
  let b = B.create f in
  Alcotest.(check int) "unit propagated" 1 (B.value b (Th.lit 2));
  Alcotest.(check int) "trail" 2 (List.length (B.trail b))

let root_conflict () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ] ] in
  let b = B.create f in
  Alcotest.(check bool) "inconsistent" false (B.is_consistent b)

let add_unit_behaviour () =
  let b = B.create (chain_formula ()) in
  Alcotest.(check bool) "ok" true (B.add_unit b (Th.lit 1));
  Alcotest.(check int) "propagated" 1 (B.value b (Th.lit 4));
  Alcotest.(check bool) "conflicting unit" false (B.add_unit b (Th.lit (-4)))

let reason_and_support () =
  (* z=1, u=0 imply x=1 through (u + x + ~w) after w forced by (w + ~z) *)
  let f = Th.formula_of [ [ 1; 2; -3 ]; [ 3; -4 ] ] in
  (* vars: 1=u 2=x 3=w 4=z *)
  let b = B.create f in
  ignore (B.add_unit b (Th.lit 4));
  let mark = B.checkpoint b in
  ignore (B.add_unit b (Th.lit (-1)));
  (* w forced by z through (3 -4) *)
  Alcotest.(check int) "w forced" 1 (B.value b (Th.lit 3));
  (match B.reason b (Cnf.Lit.var (Th.lit 2)) with
   | Some c ->
     Alcotest.(check bool) "x reason clause" true
       (Cnf.Clause.equal c (Cnf.Clause.of_dimacs_list [ 1; 2; -3 ]))
   | None -> Alcotest.fail "x should be implied with a reason");
  (* x's implication (after [mark]) rests on w, which predates [mark];
     the post-mark assumption ~u is excluded by design *)
  let sup = B.support b ~since:mark (Th.lit 2) in
  Alcotest.(check bool) "w in support" true (List.mem (Th.lit 3) sup)

let trail_position_tracking () =
  let b = B.create (chain_formula ()) in
  ignore (B.add_unit b (Th.lit 1));
  Alcotest.(check int) "pos of first" 0 (B.trail_position b 0);
  Alcotest.(check bool) "later greater" true
    (B.trail_position b 3 > B.trail_position b 0);
  let fresh = B.create (chain_formula ()) in
  Alcotest.(check int) "unassigned" (-1) (B.trail_position fresh 2)

let suite =
  [
    Th.case "propagation chain" propagation_chain;
    Th.case "conflict detection" conflict_detection;
    Th.case "checkpoints restore" checkpoints_restore;
    Th.case "root units" root_units;
    Th.case "root conflict" root_conflict;
    Th.case "add_unit" add_unit_behaviour;
    Th.case "reason and support" reason_and_support;
    Th.case "trail positions" trail_position_tracking;
  ]
