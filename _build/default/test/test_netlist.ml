module N = Circuit.Netlist

let builder () =
  let c = N.create () in
  let a = N.add_input ~name:"a" c in
  let b = N.add_input ~name:"b" c in
  let g = N.add_gate ~name:"g" c Circuit.Gate.And [ a; b ] in
  N.set_output c g;
  Alcotest.(check int) "nodes" 3 (N.num_nodes c);
  Alcotest.(check int) "inputs" 2 (List.length (N.inputs c));
  Alcotest.(check int) "gates" 1 (N.gate_count c);
  Alcotest.(check string) "name" "g" (N.name c g);
  let k = N.add_const c false in
  Alcotest.(check string) "default name" (Printf.sprintf "n%d" k) (N.name c k);
  Alcotest.(check (option int)) "find" (Some a) (N.find_by_name c "a");
  Alcotest.(check (list int)) "fanins" [ a; b ] (N.fanins c g);
  Alcotest.(check (list int)) "fanouts of a" [ g ] (N.fanouts c a)

let validation () =
  let c = N.create () in
  let a = N.add_input c in
  Alcotest.check_raises "arity" (Invalid_argument "Netlist.add_gate: arity")
    (fun () -> ignore (N.add_gate c Circuit.Gate.And [ a ]));
  Alcotest.check_raises "dangling"
    (Invalid_argument "Netlist.add_gate: dangling fanin") (fun () ->
        ignore (N.add_gate c Circuit.Gate.Not [ 99 ]));
  ignore (N.add_input ~name:"x" c);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Netlist: duplicate name x") (fun () ->
        ignore (N.add_input ~name:"x" c))

let levels () =
  let c = N.create () in
  let a = N.add_input c in
  let n1 = N.add_gate c Circuit.Gate.Not [ a ] in
  let n2 = N.add_gate c Circuit.Gate.Not [ n1 ] in
  let n3 = N.add_gate c Circuit.Gate.And [ a; n2 ] in
  N.set_output c n3;
  Alcotest.(check int) "input level" 0 (N.level c a);
  Alcotest.(check int) "chain level" 2 (N.level c n2);
  Alcotest.(check int) "and level" 3 (N.level c n3);
  Alcotest.(check int) "depth" 3 (N.depth c)

let transitive () =
  let c = Circuit.Generators.c17 () in
  let outs = N.output_ids c in
  let o1 = List.nth outs 0 in
  let tfi = N.transitive_fanin c o1 in
  Alcotest.(check bool) "tfi includes self" true (List.mem o1 tfi);
  let i1 = Option.get (N.find_by_name c "i1") in
  Alcotest.(check bool) "tfi includes i1" true (List.mem i1 tfi);
  let tfo = N.transitive_fanout c i1 in
  Alcotest.(check bool) "tfo includes o1" true (List.mem o1 tfo)

let copy_and_import () =
  let c = Circuit.Generators.majority3 () in
  let d = N.copy c in
  Th.assert_equivalent c d;
  (* import with shared inputs *)
  let m = N.create () in
  let shared = List.map (fun _ -> N.add_input m) (N.inputs c) in
  let table = Hashtbl.create 4 in
  List.iter2 (fun s t -> Hashtbl.replace table s t) (N.inputs c) shared;
  let map = N.import c ~into:m ~map_node:(Hashtbl.find_opt table) in
  Alcotest.(check bool) "imported nodes exist" true
    (Array.for_all (fun x -> x >= 0) map)

let import_unmapped_input_fails () =
  let c = Circuit.Generators.majority3 () in
  let m = N.create () in
  Alcotest.check_raises "unmapped"
    (Invalid_argument "Netlist.import: unmapped input") (fun () ->
        ignore (N.import c ~into:m ~map_node:(fun _ -> None)))

let output_marking () =
  let c = N.create () in
  let a = N.add_input ~name:"a" c in
  N.set_output ~name:"out_a" c a;
  Alcotest.(check (list (pair string int))) "outputs" [ ("out_a", a) ]
    (N.outputs c)

let suite =
  [
    Th.case "builder" builder;
    Th.case "validation" validation;
    Th.case "levels" levels;
    Th.case "transitive closures" transitive;
    Th.case "copy and import" copy_and_import;
    Th.case "unmapped import" import_unmapped_input_fails;
    Th.case "output marking" output_marking;
  ]
