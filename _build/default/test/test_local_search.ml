module L = Sat.Local_search

let finds_easy_models () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 3 ] ] in
  let r = L.solve f in
  match r.L.outcome with
  | Sat.Types.Sat m ->
    Alcotest.(check bool) "model valid" true (Cnf.Formula.eval (fun v -> m.(v)) f)
  | _ -> Alcotest.fail "walksat should find this"

let never_claims_unsat () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ] ] in
  let cfg = { L.default with L.max_flips = 200; L.max_tries = 2 } in
  match (L.solve ~config:cfg f).L.outcome with
  | Sat.Types.Unknown _ -> ()
  | Sat.Types.Sat _ -> Alcotest.fail "claimed sat on unsat instance"
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
    Alcotest.fail "local search cannot prove unsat"

let gsat_works () =
  let rng = Sat.Rng.create 3 in
  let found = ref 0 and total = ref 0 in
  for seed = 1 to 20 do
    let f = Th.random_cnf rng 8 18 3 in
    if Th.outcome_sat (Sat.Brute.solve f) then begin
      incr total;
      let cfg = { L.algorithm = L.Gsat; max_flips = 3000; max_tries = 5; seed } in
      match (L.solve ~config:cfg f).L.outcome with
      | Sat.Types.Sat m ->
        incr found;
        Alcotest.(check bool) "gsat model valid" true
          (Cnf.Formula.eval (fun v -> m.(v)) f)
      | _ -> ()
    end
  done;
  Alcotest.(check bool) "gsat finds most" true (!found * 10 >= !total * 7)

let counters_progress () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; -2 ] ] in
  let r = L.solve f in
  Alcotest.(check bool) "tries counted" true (r.L.tries >= 1)

let prop_walksat_models_valid =
  QCheck.Test.make ~name:"walksat models satisfy the formula" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 5) in
       let f = Th.random_cnf rng 8 20 3 in
       let cfg = { L.default with L.max_flips = 5000; L.seed = seed + 1 } in
       match (L.solve ~config:cfg f).L.outcome with
       | Sat.Types.Sat m -> Cnf.Formula.eval (fun v -> m.(v)) f
       | _ -> true)

let suite =
  [
    Th.case "finds easy models" finds_easy_models;
    Th.case "never claims unsat" never_claims_unsat;
    Th.case "gsat" gsat_works;
    Th.case "counters" counters_progress;
    Th.qcheck prop_walksat_models_valid;
  ]
