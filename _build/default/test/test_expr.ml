module E = Cnf.Expr

let rec expr_gen_sized n =
  let open QCheck.Gen in
  if n <= 0 then
    oneof [ map E.atom (int_bound 5); return E.True; return E.False ]
  else
    let sub = expr_gen_sized (n / 2) in
    oneof
      [
        map E.atom (int_bound 5);
        map (fun e -> E.Not e) sub;
        map2 (fun a b -> E.And [ a; b ]) sub sub;
        map2 (fun a b -> E.Or [ a; b ]) sub sub;
        map2 (fun a b -> E.Xor (a, b)) sub sub;
        map2 (fun a b -> E.Iff (a, b)) sub sub;
        map2 (fun a b -> E.Imp (a, b)) sub sub;
        ( sub >>= fun a ->
          sub >>= fun b ->
          sub >>= fun c -> return (E.Ite (a, b, c)) );
      ]

let expr_gen =
  QCheck.make
    ~print:(Format.asprintf "%a" E.pp)
    (QCheck.Gen.sized_size (QCheck.Gen.int_bound 5) expr_gen_sized)

let eval_cases () =
  let x = E.atom 0 and y = E.atom 1 in
  let env0 _ = false and env1 _ = true in
  Alcotest.(check bool) "and" false (E.eval env0 E.(x &&& y));
  Alcotest.(check bool) "or" true (E.eval env1 E.(x ||| y));
  Alcotest.(check bool) "xor" false (E.eval env1 E.(x ^^^ y));
  Alcotest.(check bool) "imp false ante" true (E.eval env0 E.(x ==> y));
  Alcotest.(check bool) "iff" true (E.eval env0 E.(x <=> y));
  Alcotest.(check bool) "ite" true (E.eval env1 (E.Ite (x, y, E.False)));
  Alcotest.(check bool) "empty and" true (E.eval env0 (E.And []));
  Alcotest.(check bool) "empty or" false (E.eval env1 (E.Or []))

let atoms () =
  let e = E.(atom 3 &&& (atom 1 ||| atom 3)) in
  Alcotest.(check (list int)) "atoms sorted unique" [ 1; 3 ] (E.atoms e)

(* Tseitin correctness: for every assignment of the original atoms, the
   CNF is satisfiable with that atom assignment iff the expression is
   true under it. *)
let prop_tseitin_equisatisfiable =
  QCheck.Test.make ~name:"tseitin preserves the function" ~count:200 expr_gen
    (fun e ->
       let f, lit_of_atom = Cnf.Tseitin.cnf_of_expr e in
       let atoms = E.atoms e in
       let ok = ref true in
       let n_assignments = 1 lsl List.length atoms in
       for mask = 0 to n_assignments - 1 do
         let env a =
           match List.find_index (Int.equal a) atoms with
           | Some i -> mask land (1 lsl i) <> 0
           | None -> false
         in
         let expected = E.eval env e in
         (* constrain atom values, ask the solver *)
         let g = Cnf.Formula.copy f in
         List.iter
           (fun a ->
              let l = lit_of_atom a in
              Cnf.Formula.add_clause_l g
                [ (if env a then l else Cnf.Lit.negate l) ])
           atoms;
         let sat = Th.outcome_sat (Th.solve_cdcl g) in
         if sat <> expected then ok := false
       done;
       !ok)

let prop_tseitin_models_project =
  QCheck.Test.make ~name:"tseitin models satisfy the expression" ~count:200
    expr_gen
    (fun e ->
       let f, lit_of_atom = Cnf.Tseitin.cnf_of_expr e in
       match Th.solve_cdcl f with
       | Sat.Types.Sat m ->
         let env a =
           let l = lit_of_atom a in
           if Cnf.Lit.is_pos l then m.(Cnf.Lit.var l)
           else not m.(Cnf.Lit.var l)
         in
         E.eval env e
       | Sat.Types.Unsat ->
         (* expression must be unsatisfiable over its atoms *)
         let atoms = E.atoms e in
         let any = ref false in
         for mask = 0 to (1 lsl List.length atoms) - 1 do
           let env a =
             match List.find_index (Int.equal a) atoms with
             | Some i -> mask land (1 lsl i) <> 0
             | None -> false
           in
           if E.eval env e then any := true
         done;
         not !any
       | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false)

let assert_expr_shallow () =
  (* shallow disjunctions of literals become single clauses *)
  let ctx = Cnf.Tseitin.create () in
  Cnf.Tseitin.assert_expr ctx
    Cnf.Expr.(Or [ atom 0; Not (atom 1); atom 2 ]);
  Alcotest.(check int) "one clause" 1
    (Cnf.Formula.nclauses (Cnf.Tseitin.formula ctx))

let suite =
  [
    Th.case "eval cases" eval_cases;
    Th.case "atoms" atoms;
    Th.case "shallow assert" assert_expr_shallow;
    Th.qcheck prop_tseitin_equisatisfiable;
    Th.qcheck prop_tseitin_models_project;
  ]
