module F = Eda.Fvg

let full_coverage_accounting () =
  let c = Circuit.Generators.alu ~bits:2 in
  let objs = F.toggle_objectives c in
  let r = F.generate c objs in
  Alcotest.(check int) "accounting" r.F.objectives
    (r.F.covered + r.F.unreachable);
  Alcotest.(check bool) "objectives exist" true (r.F.objectives > 0)

let vectors_witness_coverage () =
  (* simulating the returned vectors must hit every covered objective *)
  let c = Circuit.Generators.comparator ~bits:3 in
  let objs = F.toggle_objectives c in
  let r = F.generate c objs in
  let hit = Hashtbl.create 64 in
  List.iter
    (fun vec ->
       let values = Circuit.Simulate.eval_all c vec in
       List.iter
         (fun (node, v) ->
            if values.(node) = v then Hashtbl.replace hit (node, v) ())
         objs)
    r.F.vectors;
  let witnessed = Hashtbl.length hit in
  Alcotest.(check int) "all covered objectives witnessed" r.F.covered witnessed

let unreachable_detected () =
  (* x AND ~x can never be 1 *)
  let c = Circuit.Netlist.create () in
  let a = Circuit.Netlist.add_input c in
  let na = Circuit.Netlist.add_gate c Circuit.Gate.Not [ a ] in
  let z = Circuit.Netlist.add_gate c Circuit.Gate.And [ a; na ] in
  Circuit.Netlist.set_output c z;
  let r = F.generate ~random_warmup:0 c [ (z, true); (z, false) ] in
  Alcotest.(check int) "one unreachable" 1 r.F.unreachable;
  Alcotest.(check int) "one covered" 1 r.F.covered

let warmup_reduces_sat_calls () =
  let c = Circuit.Generators.parity ~bits:6 in
  let objs = F.toggle_objectives c in
  let with_warmup = F.generate ~random_warmup:2 c objs in
  let without = F.generate ~random_warmup:0 c objs in
  Alcotest.(check bool) "warmup drops objectives" true
    (with_warmup.F.sat_calls <= without.F.sat_calls)

let suite =
  [
    Th.case "accounting" full_coverage_accounting;
    Th.case "vectors witness coverage" vectors_witness_coverage;
    Th.case "unreachable" unreachable_detected;
    Th.case "warmup" warmup_reduces_sat_calls;
  ]
