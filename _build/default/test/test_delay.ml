module D = Eda.Delay
module N = Circuit.Netlist

let out_named c name = List.assoc name (N.outputs c)

let ripple_no_false_path () =
  let c = Circuit.Generators.ripple_adder ~bits:6 in
  let cout = out_named c "cout" in
  let tru, calls = D.true_delay c cout in
  Alcotest.(check int) "ripple true = topo" (D.topological_delay c cout) tru;
  Alcotest.(check bool) "one query suffices" true (calls >= 1)

let carry_skip_false_path () =
  let c = Circuit.Generators.carry_skip_adder ~bits:8 ~block:4 in
  let cout = out_named c "cout" in
  let tru, _ = D.true_delay c cout in
  Alcotest.(check bool) "false path detected" true
    (tru < D.topological_delay c cout)

let true_delay_bounded () =
  let rng = Sat.Rng.create 73 in
  for seed = 1 to 10 do
    let c = Circuit.Generators.random_circuit ~inputs:5 ~gates:20 ~seed:(seed + 70) in
    List.iter
      (fun (_, o) ->
         let tru, _ = D.true_delay c o in
         Alcotest.(check bool) "0 <= true <= topo" true
           (tru >= 0 && tru <= D.topological_delay c o))
      (N.outputs c);
    ignore (Sat.Rng.int rng 2)
  done

let input_output_zero_delay () =
  let c = N.create () in
  let a = N.add_input ~name:"a" c in
  N.set_output ~name:"z" c a;
  let tru, _ = D.true_delay c a in
  Alcotest.(check int) "PI delay 0" 0 tru

let single_gate_delay_one () =
  let c = N.create () in
  let a = N.add_input c in
  let b = N.add_input c in
  let g = N.add_gate c Circuit.Gate.And [ a; b ] in
  N.set_output ~name:"z" c g;
  let tru, _ = D.true_delay c g in
  Alcotest.(check int) "one gate, delay 1" 1 tru

let xor_never_early () =
  (* XOR chains have no controlling values: true delay = topological *)
  let c = Circuit.Generators.parity ~bits:8 in
  let o = out_named c "par" in
  let tru, _ = D.true_delay c o in
  Alcotest.(check int) "parity exact" (D.topological_delay c o) tru

let and_chain_can_be_early () =
  (* a long AND chain stabilises in 1 step when the side input is 0 *)
  let c = N.create () in
  let a = N.add_input c in
  let prev = ref a in
  for _ = 1 to 5 do
    let b = N.add_input c in
    prev := N.add_gate c Circuit.Gate.And [ !prev; b ]
  done;
  N.set_output ~name:"z" c !prev;
  let tru, _ = D.true_delay c !prev in
  (* the last gate's controlling input still needs its own arrival: the
     chain can't settle before depth... but the output CAN still be late:
     true delay equals topological here because the all-ones vector
     sensitises the full chain *)
  Alcotest.(check int) "and chain worst case" (D.topological_delay c !prev) tru

let report_shape () =
  let c = Circuit.Generators.carry_skip_adder ~bits:6 ~block:3 in
  let rows = D.report c in
  Alcotest.(check int) "one row per output" (List.length (N.outputs c))
    (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool) "flag consistent" r.D.false_path
         (r.D.true_floating < r.D.topological))
    rows

let encoding_stability_vars_monotone () =
  (* semantic monotonicity: stable_by o t=horizon is constant true *)
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  let enc = D.encode_stability c in
  let o = out_named c "cout" in
  let s = Sat.Cdcl.create enc.D.formula in
  (match Sat.Cdcl.solve ~assumptions:[ Cnf.Lit.negate (enc.D.stable_by o enc.D.horizon) ] s with
   | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> ()
   | _ -> Alcotest.fail "never unstable past the horizon")

let weighted_delays () =
  (* XOR costs 3, everything else 1 *)
  let gate_delay = function Circuit.Gate.Xor | Circuit.Gate.Xnor -> 3 | _ -> 1 in
  (* parity tree of 8: three XOR levels -> weighted depth 9, exact *)
  let p = Circuit.Generators.parity ~bits:8 in
  let o = out_named p "par" in
  Alcotest.(check int) "weighted level" 9 (D.weighted_level ~gate_delay p o);
  let tru, _ = D.true_delay ~gate_delay p o in
  Alcotest.(check int) "weighted parity exact" 9 tru;
  (* unit model unchanged *)
  let tru_unit, _ = D.true_delay p o in
  Alcotest.(check int) "unit model" 3 tru_unit;
  (* carry-skip false paths survive the weighted model *)
  let c = Circuit.Generators.carry_skip_adder ~bits:6 ~block:3 in
  let cout = out_named c "cout" in
  let w_topo = D.weighted_level ~gate_delay c cout in
  let w_true, _ = D.true_delay ~gate_delay c cout in
  Alcotest.(check bool) "weighted false path" true (w_true < w_topo);
  Alcotest.check_raises "delays positive"
    (Invalid_argument "Delay: gate delays must be positive") (fun () ->
        ignore (D.weighted_level ~gate_delay:(fun _ -> 0) c cout))

let suite =
  [
    Th.case "weighted delays" weighted_delays;
    Th.case "ripple exact" ripple_no_false_path;
    Th.case "carry-skip false path" carry_skip_false_path;
    Th.case "bounded" true_delay_bounded;
    Th.case "PI zero" input_output_zero_delay;
    Th.case "single gate" single_gate_delay_one;
    Th.case "xor exact" xor_never_early;
    Th.case "and chain" and_chain_can_be_early;
    Th.case "report" report_shape;
    Th.case "horizon stability" encoding_stability_vars_monotone;
  ]
