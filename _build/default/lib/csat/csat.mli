(** Solving SAT on combinational circuits with a structural layer
    (Section 5 of the paper).

    A generic CDCL solver is augmented — through its plugin interface,
    with {e no} change to the solver's data structures — with
    circuit-derived information:

    - per-node justification thresholds [u_v(x)] (Table 2) and
      justification counters [t_v(x)] (Table 3), maintained as the solver
      assigns and unassigns variables;
    - a justification frontier: the set of assigned but not-yet-justified
      gate outputs;
    - a termination test that declares satisfiability as soon as the
      frontier is empty — yielding {e partial} input patterns (the
      overspecification fix the paper advertises);
    - an optional backtracing decision procedure that walks from an
      unjustified node to an unassigned primary input. *)

type result = {
  outcome : Sat.Types.outcome;
      (** [Sat model] is a full, simulation-verified assignment of every
          circuit node (don't-care inputs completed with [false]) *)
  stats : Sat.Types.stats;
  pattern : (Circuit.Netlist.node_id * bool) list;
      (** the partial input pattern actually decided (empty unless SAT) *)
  total_inputs : int;
  specified_inputs : int;  (** = [List.length pattern] when SAT *)
}

val solve :
  ?config:Sat.Types.config ->
  ?use_layer:bool ->
  ?backtrace:bool ->
  objectives:(Circuit.Netlist.node_id * bool) list ->
  Circuit.Netlist.t ->
  result
(** Satisfies the circuit's consistency function together with the
    objective values ([(C, o)] in the paper's notation).

    [use_layer] (default true) enables the structural layer; with it off
    the solve degenerates to plain CNF SAT and the pattern specifies
    every input (the baseline for experiment E5).  [backtrace] (default
    true) additionally replaces the decision heuristic by backtracing;
    it only matters while the layer is on. *)

val thresholds : Circuit.Gate.t -> fanins:int -> int * int
(** [(u0, u1)] per Table 2. *)

val counter_update : Circuit.Gate.t -> bool -> bool * bool
(** [counter_update g v] = which of [(t0, t1)] of the gate output are
    incremented when one of its inputs is assigned [v] (Table 3). *)
