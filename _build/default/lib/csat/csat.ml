module N = Circuit.Netlist
module G = Circuit.Gate
module Lit = Cnf.Lit

type result = {
  outcome : Sat.Types.outcome;
  stats : Sat.Types.stats;
  pattern : (N.node_id * bool) list;
  total_inputs : int;
  specified_inputs : int;
}

(* Table 2: thresholds on the number of suitably assigned inputs needed
   to justify value v on the gate output. *)
let thresholds g ~fanins =
  match g with
  | G.And -> (1, fanins)
  | G.Nand -> (fanins, 1)
  | G.Or -> (fanins, 1)
  | G.Nor -> (1, fanins)
  | G.Xor | G.Xnor -> (fanins, fanins)
  | G.Not | G.Buf -> (1, 1)

(* Table 3: counters incremented on the gate output when one of its
   inputs is assigned v; XOR-type gates bump both. *)
let counter_update g v =
  match g with
  | G.And -> if v then (false, true) else (true, false)
  | G.Nand -> if v then (true, false) else (false, true)
  | G.Or -> if v then (false, true) else (true, false)
  | G.Nor -> if v then (true, false) else (false, true)
  | G.Xor | G.Xnor -> (true, true)
  | G.Buf -> if v then (false, true) else (true, false)
  | G.Not -> if v then (true, false) else (false, true)

type layer = {
  circuit : N.t;
  node_of_var : int array; (* formula var -> node id, or -1 *)
  lit_of_node : N.node_id -> Lit.t;
  gate : G.t option array; (* per node *)
  u0 : int array;
  u1 : int array;
  t0 : int array;
  t1 : int array;
  unjustified : bool array;
  mutable frontier_size : int;
  solver : Sat.Cdcl.t;
}

let node_value layer x =
  Sat.Cdcl.value layer.solver (layer.lit_of_node x)

(* frontier membership for node [x]: assigned gate output whose
   justification counter has not reached the threshold *)
let refresh_status layer x =
  let should =
    match layer.gate.(x) with
    | None -> false
    | Some _ -> (
        match node_value layer x with
        | 1 -> layer.t1.(x) < layer.u1.(x)
        | 0 -> layer.t0.(x) < layer.u0.(x)
        | _ -> false)
  in
  if should && not layer.unjustified.(x) then begin
    layer.unjustified.(x) <- true;
    layer.frontier_size <- layer.frontier_size + 1
  end
  else if (not should) && layer.unjustified.(x) then begin
    layer.unjustified.(x) <- false;
    layer.frontier_size <- layer.frontier_size - 1
  end

let on_event layer ~assigned l =
  let v = Lit.var l in
  if v < Array.length layer.node_of_var then begin
    let x = layer.node_of_var.(v) in
    if x >= 0 then begin
      let value = Lit.is_pos l in
      (* Table 3 updates on every fanout gate of [x] *)
      List.iter
        (fun y ->
           match layer.gate.(y) with
           | None -> ()
           | Some g ->
             let d0, d1 = counter_update g value in
             let delta = if assigned then 1 else -1 in
             if d0 then layer.t0.(y) <- layer.t0.(y) + delta;
             if d1 then layer.t1.(y) <- layer.t1.(y) + delta;
             refresh_status layer y)
        (N.fanouts layer.circuit x);
      refresh_status layer x
    end
  end

(* Which value to request on an unassigned fanin so the gate output can
   take [want]: a controlling input when [want] is the controlled output
   value, a non-controlling one otherwise; XOR-family fanins are free. *)
let fanin_request g want =
  match G.controlling g, G.controlled_output g with
  | Some c, Some co -> if want = co then c else not c
  | Some _, None | None, Some _ -> assert false
  | None, None -> (
      match g with
      | G.Not -> not want
      | G.Buf -> want
      | G.Xor | G.Xnor -> false
      | G.And | G.Or | G.Nand | G.Nor -> assert false)

let first_unjustified layer =
  let rec find x =
    if x >= Array.length layer.unjustified then None
    else if layer.unjustified.(x) then Some x
    else find (x + 1)
  in
  find 0

(* one justification step: an unassigned fanin of [x] and the value that
   helps justify [x]'s current value *)
let justification_step layer x =
  match N.node layer.circuit x with
  | N.Input | N.Const _ -> None
  | N.Gate (g, fs) -> (
      match List.filter (fun f -> node_value layer f < 0) fs with
      | [] -> None (* fully assigned; the consistency clauses decide *)
      | w :: _ -> Some (w, fanin_request g (node_value layer x = 1)))

(* Backtracing (Sec. 5 / [1]): from an unjustified node, walk fanins
   towards an unassigned primary input, requesting justifying values. *)
let backtrace_decision layer =
  match first_unjustified layer with
  | None -> None
  | Some start ->
    let rec descend x want =
      match N.node layer.circuit x with
      | N.Input | N.Const _ ->
        Some (Lit.of_var (Lit.var (layer.lit_of_node x)) want)
      | N.Gate (g, fs) -> (
          match List.filter (fun f -> node_value layer f < 0) fs with
          | [] -> None
          | w :: _ -> descend w (fanin_request g want))
    in
    (match justification_step layer start with
     | None -> None
     | Some (w, want) -> descend w want)

(* single-step variant: decide directly on the unassigned fanin *)
let frontier_decision layer =
  match first_unjustified layer with
  | None -> None
  | Some x -> (
      match justification_step layer x with
      | None -> None
      | Some (w, want) ->
        Some (Lit.of_var (Lit.var (layer.lit_of_node w)) want))

let solve ?(config = Sat.Types.default) ?(use_layer = true)
    ?(backtrace = true) ~objectives circuit =
  let enc = Circuit.Encode.encode circuit in
  let f = enc.Circuit.Encode.formula in
  List.iter
    (fun (x, v) ->
       Circuit.Encode.assert_output f (enc.Circuit.Encode.lit_of_node x) v)
    objectives;
  let solver = Sat.Cdcl.create ~config f in
  let n = N.num_nodes circuit in
  let inputs = N.inputs circuit in
  let total_inputs = List.length inputs in
  let finish outcome pattern =
    {
      outcome;
      stats = Sat.Cdcl.stats solver;
      pattern;
      total_inputs;
      specified_inputs = List.length pattern;
    }
  in
  if use_layer then begin
    let node_of_var = Array.make (max 1 (Cnf.Formula.nvars f)) (-1) in
    let gate = Array.make (max 1 n) None in
    let u0 = Array.make (max 1 n) 0 and u1 = Array.make (max 1 n) 0 in
    for x = 0 to n - 1 do
      node_of_var.(Lit.var (enc.Circuit.Encode.lit_of_node x)) <- x;
      match N.node circuit x with
      | N.Gate (g, fs) ->
        gate.(x) <- Some g;
        let a, b = thresholds g ~fanins:(List.length fs) in
        u0.(x) <- a;
        u1.(x) <- b
      | N.Input | N.Const _ -> ()
    done;
    let layer =
      {
        circuit;
        node_of_var;
        lit_of_node = enc.Circuit.Encode.lit_of_node;
        gate;
        u0;
        u1;
        t0 = Array.make (max 1 n) 0;
        t1 = Array.make (max 1 n) 0;
        unjustified = Array.make (max 1 n) false;
        frontier_size = 0;
        solver;
      }
    in
    Sat.Cdcl.set_plugin solver
      {
        Sat.Cdcl.on_assign = (fun l -> on_event layer ~assigned:true l);
        on_unassign = (fun l -> on_event layer ~assigned:false l);
        decide =
          (fun () ->
             if backtrace then backtrace_decision layer
             else frontier_decision layer);
        is_complete = (fun () -> layer.frontier_size = 0);
      };
    (* level-0 propagation (objectives, constants) happened before the
       plugin existed; replay those assignments into the layer *)
    for x = 0 to n - 1 do
      let v = Lit.var (enc.Circuit.Encode.lit_of_node x) in
      match Sat.Cdcl.value_var solver v with
      | -1 -> ()
      | value -> on_event layer ~assigned:true (Lit.of_var v (value = 1))
    done;
    match Sat.Cdcl.solve solver with
    | Sat.Types.Sat _ ->
      (* read the partial pattern off the pre-backtrack snapshot, then
         verify by simulation with don't-cares set to 0 *)
      let partial =
        match Sat.Cdcl.last_partial_assignment solver with
        | Some a -> a
        | None -> [||]
      in
      let pattern =
        List.filter_map
          (fun x ->
             let v = Lit.var (enc.Circuit.Encode.lit_of_node x) in
             if v < Array.length partial && partial.(v) >= 0 then
               Some (x, partial.(v) = 1)
             else None)
          inputs
      in
      let in_values =
        List.map
          (fun x ->
             match List.assoc_opt x pattern with
             | Some b -> b
             | None -> false)
          inputs
        |> Array.of_list
      in
      let values = Circuit.Simulate.eval_all circuit in_values in
      let consistent =
        List.for_all (fun (x, v) -> values.(x) = v) objectives
      in
      if not consistent then
        failwith "Csat.solve: structural layer produced inconsistent pattern";
      let model = Array.make (Cnf.Formula.nvars f) false in
      for x = 0 to n - 1 do
        model.(Lit.var (enc.Circuit.Encode.lit_of_node x)) <- values.(x)
      done;
      finish (Sat.Types.Sat model) pattern
    | other -> finish other []
  end
  else begin
    match Sat.Cdcl.solve solver with
    | Sat.Types.Sat m ->
      let pattern =
        List.map
          (fun x -> (x, m.(Lit.var (enc.Circuit.Encode.lit_of_node x))))
          inputs
      in
      finish (Sat.Types.Sat m) pattern
    | other -> finish other []
  end
