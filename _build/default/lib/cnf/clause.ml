type t = Lit.t array

let of_list lits =
  let sorted = List.sort_uniq Lit.compare lits in
  Array.of_list sorted

let of_dimacs_list ints = of_list (List.map Lit.of_dimacs ints)
let to_list c = Array.to_list c
let to_array c = Array.copy c
let size c = Array.length c
let is_empty c = Array.length c = 0

(* Literals are sorted, so l and negate l are adjacent when both present. *)
let is_tautology c =
  let n = Array.length c in
  let rec check i =
    if i + 1 >= n then false
    else if Lit.var c.(i) = Lit.var c.(i + 1) then true
    else check (i + 1)
  in
  check 0

let mem l c = Array.exists (Lit.equal l) c
let equal a b = a = b
let compare a b = Stdlib.compare a b
let subsumes c d = Array.for_all (fun l -> mem l d) c

let eval value c =
  Array.exists (fun l -> value (Lit.var l) = Lit.is_pos l) c

let map_vars f c =
  let image l =
    let l' = f (Lit.var l) in
    if Lit.is_pos l then l' else Lit.negate l'
  in
  of_list (List.map image (to_list c))

let pp ppf c =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Lit.pp)
    (to_list c)

let to_string c = Format.asprintf "%a" pp c
