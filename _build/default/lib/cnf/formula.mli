(** CNF formulas: conjunctions of clauses over variables [0 .. nvars-1].

    A formula is a mutable builder: variables are allocated with
    {!fresh_var} (or implied by {!add_clause}) and clauses are appended.
    Solvers consume the snapshot {!clauses}. *)

type t

val create : ?nvars:int -> unit -> t
(** [create ~nvars ()] is an empty formula with [nvars] pre-allocated
    variables (default 0). *)

val fresh_var : t -> int
(** Allocates and returns a new variable index. *)

val nvars : t -> int
val nclauses : t -> int

val add_clause : t -> Clause.t -> unit
(** Appends a clause.  Grows the variable count if the clause mentions an
    unallocated variable.  Tautologies are silently dropped. *)

val add_clause_l : t -> Lit.t list -> unit
(** [add_clause_l f lits] is [add_clause f (Clause.of_list lits)]. *)

val add_dimacs : t -> int list -> unit
(** Appends a clause given as DIMACS literals. *)

val clauses : t -> Clause.t array
(** Snapshot of the clauses, in insertion order. *)

val iter_clauses : t -> (Clause.t -> unit) -> unit

val copy : t -> t

val of_clauses : ?nvars:int -> Clause.t list -> t

val eval : (int -> bool) -> t -> bool
(** [eval value f] is [true] iff every clause is satisfied by the total
    assignment [value]. *)

val num_literals : t -> int
(** Total number of literal occurrences. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line form. *)
