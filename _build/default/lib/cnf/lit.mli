(** Propositional literals.

    A variable is a non-negative integer [v]; the positive literal of [v] is
    the even integer [2v] and the negative literal is [2v + 1].  This packed
    representation lets solvers index watch lists and value arrays directly
    by literal. *)

type t = int
(** A literal.  Invariant: [t >= 0]. *)

val of_var : int -> bool -> t
(** [of_var v positive] is the literal of variable [v] with the given
    polarity.  Raises [Invalid_argument] if [v < 0]. *)

val pos : int -> t
(** [pos v] is the positive literal of variable [v]. *)

val neg_of_var : int -> t
(** [neg_of_var v] is the negative literal of variable [v]. *)

val var : t -> int
(** [var l] is the variable of literal [l]. *)

val negate : t -> t
(** [negate l] is the complement of [l]. *)

val is_pos : t -> bool
(** [is_pos l] is [true] iff [l] is a positive literal. *)

val is_neg : t -> bool
(** [is_neg l] is [true] iff [l] is a negative literal. *)

val of_dimacs : int -> t
(** [of_dimacs i] converts a non-zero DIMACS literal ([+v] / [-v], variables
    numbered from 1) to the packed representation (variables numbered from
    0).  Raises [Invalid_argument] on [0]. *)

val to_dimacs : t -> int
(** [to_dimacs l] is the DIMACS integer for [l]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the DIMACS form, e.g. [-3]. *)

val to_string : t -> string
