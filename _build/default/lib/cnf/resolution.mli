(** Resolution and subsumption utilities. *)

val resolve : Clause.t -> Clause.t -> int -> Clause.t option
(** [resolve c d v] is the resolvent of [c] and [d] on variable [v], or
    [None] if the pair does not clash on [v] or the resolvent is a
    tautology. *)

val resolvable : Clause.t -> Clause.t -> int option
(** [resolvable c d] is [Some v] for the unique clash variable when [c]
    and [d] clash on exactly one variable, [None] otherwise. *)

val self_subsumes : Clause.t -> Clause.t -> Lit.t option
(** [self_subsumes c d] is [Some l] when resolving [c] with [d] on
    [Lit.var l] yields a clause that subsumes [d] by dropping literal [l]
    from [d] (self-subsuming resolution: [c] strengthens [d]). *)

val is_implicate : Formula.t -> Clause.t -> bool
(** [is_implicate f c] checks by exhaustive enumeration (intended for
    tests, up to ~20 variables) that [c] is an implicate of [f]: every
    model of [f] satisfies [c]. *)
