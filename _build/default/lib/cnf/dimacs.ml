exception Parse_error of string

let parse_string text =
  let f = Formula.create () in
  let lines = String.split_on_char '\n' text in
  let pending = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> raise (Parse_error (Printf.sprintf "bad token %S" tok))
    | Some 0 ->
      Formula.add_dimacs f (List.rev !pending);
      pending := []
    | Some i -> pending := i :: !pending
  in
  let handle_line line =
    let line = String.trim line in
    if line = "" then ()
    else
      match line.[0] with
      | 'c' | '%' -> ()
      | 'p' ->
        (match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "p"; "cnf"; v; _ ] ->
           (match int_of_string_opt v with
            | Some nv ->
              for _ = Formula.nvars f to nv - 1 do
                ignore (Formula.fresh_var f)
              done
            | None -> raise (Parse_error "bad header"))
         | _ -> raise (Parse_error "bad header"))
      | '0' .. '9' | '-' ->
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (( <> ) "")
        |> List.iter handle_token
      | _ -> raise (Parse_error (Printf.sprintf "bad line %S" line))
  in
  List.iter handle_line lines;
  (match !pending with
   | [] -> ()
   | lits -> Formula.add_dimacs f (List.rev lits));
  f

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Formula.nvars f) (Formula.nclauses f));
  Formula.iter_clauses f (fun c ->
      Clause.to_list c
      |> List.iter (fun l -> Buffer.add_string buf (Lit.to_string l ^ " "));
      Buffer.add_string buf "0\n");
  Buffer.contents buf

let write_file path f =
  let oc = open_out path in
  output_string oc (to_string f);
  close_out oc
