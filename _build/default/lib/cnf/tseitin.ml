type context = {
  f : Formula.t;
  atom_lit : (int, Lit.t) Hashtbl.t;
  cache : (Expr.t, Lit.t) Hashtbl.t;
  mutable const_true : Lit.t option;
}

let create () =
  { f = Formula.create (); atom_lit = Hashtbl.create 64;
    cache = Hashtbl.create 64; const_true = None }

let formula ctx = ctx.f

let lit_of_atom ctx i =
  match Hashtbl.find_opt ctx.atom_lit i with
  | Some l -> l
  | None ->
    let l = Lit.pos (Formula.fresh_var ctx.f) in
    Hashtbl.add ctx.atom_lit i l;
    l

(* A literal constrained to be true, used to translate constants. *)
let true_lit ctx =
  match ctx.const_true with
  | Some l -> l
  | None ->
    let l = Lit.pos (Formula.fresh_var ctx.f) in
    Formula.add_clause_l ctx.f [ l ];
    ctx.const_true <- Some l;
    l

let define_and ctx out ins =
  List.iter (fun w -> Formula.add_clause_l ctx.f [ Lit.negate out; w ]) ins;
  Formula.add_clause_l ctx.f (out :: List.map Lit.negate ins)

let define_or ctx out ins =
  List.iter (fun w -> Formula.add_clause_l ctx.f [ out; Lit.negate w ]) ins;
  Formula.add_clause_l ctx.f (Lit.negate out :: ins)

let define_xor ctx out a b =
  Formula.add_clause_l ctx.f [ Lit.negate out; a; b ];
  Formula.add_clause_l ctx.f [ Lit.negate out; Lit.negate a; Lit.negate b ];
  Formula.add_clause_l ctx.f [ out; Lit.negate a; b ];
  Formula.add_clause_l ctx.f [ out; a; Lit.negate b ]

let define_ite ctx out c t e =
  Formula.add_clause_l ctx.f [ Lit.negate c; Lit.negate t; out ];
  Formula.add_clause_l ctx.f [ Lit.negate c; t; Lit.negate out ];
  Formula.add_clause_l ctx.f [ c; Lit.negate e; out ];
  Formula.add_clause_l ctx.f [ c; e; Lit.negate out ]

let rec translate ctx (e : Expr.t) : Lit.t =
  match Hashtbl.find_opt ctx.cache e with
  | Some l -> l
  | None ->
    let l = translate_uncached ctx e in
    Hashtbl.replace ctx.cache e l;
    l

and translate_uncached ctx = function
  | Expr.True -> true_lit ctx
  | Expr.False -> Lit.negate (true_lit ctx)
  | Expr.Atom i -> lit_of_atom ctx i
  | Expr.Not e -> Lit.negate (translate ctx e)
  | Expr.And [] -> true_lit ctx
  | Expr.And [ e ] -> translate ctx e
  | Expr.And es ->
    let ins = List.map (translate ctx) es in
    let out = Lit.pos (Formula.fresh_var ctx.f) in
    define_and ctx out ins;
    out
  | Expr.Or [] -> Lit.negate (true_lit ctx)
  | Expr.Or [ e ] -> translate ctx e
  | Expr.Or es ->
    let ins = List.map (translate ctx) es in
    let out = Lit.pos (Formula.fresh_var ctx.f) in
    define_or ctx out ins;
    out
  | Expr.Xor (a, b) ->
    let la = translate ctx a and lb = translate ctx b in
    let out = Lit.pos (Formula.fresh_var ctx.f) in
    define_xor ctx out la lb;
    out
  | Expr.Iff (a, b) -> Lit.negate (translate ctx (Expr.Xor (a, b)))
  | Expr.Imp (a, b) -> translate ctx (Expr.Or [ Expr.Not a; b ])
  | Expr.Ite (c, t, e) ->
    let lc = translate ctx c
    and lt = translate ctx t
    and le = translate ctx e in
    let out = Lit.pos (Formula.fresh_var ctx.f) in
    define_ite ctx out lc lt le;
    out

let assert_expr ctx e =
  (* Assert top-level conjuncts clause-by-clause where possible: shallow
     disjunctions of literals avoid needless definition variables. *)
  let rec as_literal = function
    | Expr.Atom i -> Some (lit_of_atom ctx i)
    | Expr.Not e -> Option.map Lit.negate (as_literal e)
    | Expr.True | Expr.False | Expr.And _ | Expr.Or _ | Expr.Xor _
    | Expr.Iff _ | Expr.Imp _ | Expr.Ite _ -> None
  in
  let rec assert_true = function
    | Expr.True -> ()
    | Expr.And es -> List.iter assert_true es
    | Expr.Or es ->
      let lits = List.map (fun e ->
          match as_literal e with
          | Some l -> l
          | None -> translate ctx e)
          es
      in
      Formula.add_clause_l ctx.f lits
    | e -> Formula.add_clause_l ctx.f [ translate ctx e ]
  in
  assert_true e

let cnf_of_expr e =
  let ctx = create () in
  (* Allocate atom literals first so atom k maps to formula var k. *)
  List.iter (fun a -> ignore (lit_of_atom ctx a)) (Expr.atoms e);
  assert_expr ctx e;
  (formula ctx, lit_of_atom ctx)
