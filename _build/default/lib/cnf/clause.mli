(** Clauses: disjunctions of literals.

    A clause is represented as an immutable, sorted, duplicate-free literal
    array.  Construction normalises the literal list; a clause containing
    both [l] and [negate l] is a tautology. *)

type t

val of_list : Lit.t list -> t
(** [of_list lits] builds a clause, sorting and removing duplicate
    literals. *)

val of_dimacs_list : int list -> t
(** [of_dimacs_list ints] builds a clause from DIMACS literals. *)

val to_list : t -> Lit.t list
val to_array : t -> Lit.t array
(** [to_array c] is a fresh array of the literals of [c]. *)

val size : t -> int
val is_empty : t -> bool

val is_tautology : t -> bool
(** [is_tautology c] is [true] iff [c] contains a literal and its
    complement. *)

val mem : Lit.t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val subsumes : t -> t -> bool
(** [subsumes c d] is [true] iff every literal of [c] occurs in [d]
    (hence [c] logically implies [d]). *)

val eval : (int -> bool) -> t -> bool
(** [eval value c] evaluates [c] under the total assignment
    [value : var -> bool]. *)

val map_vars : (int -> Lit.t) -> t -> t
(** [map_vars f c] replaces each literal [l] by [f (var l)], preserving
    polarity: a negative occurrence of [v] becomes [negate (f v)]. *)

val pp : Format.formatter -> t -> unit
(** Prints as a DIMACS-style list, e.g. [(1 -2 3)]. *)

val to_string : t -> string
