lib/cnf/resolution.ml: Clause Formula List Lit
