lib/cnf/formula.mli: Clause Format Lit
