lib/cnf/clause.ml: Array Format List Lit Stdlib
