lib/cnf/cardinality.ml: Array Formula List Lit
