lib/cnf/tseitin.ml: Expr Formula Hashtbl List Lit Option
