lib/cnf/expr.mli: Format
