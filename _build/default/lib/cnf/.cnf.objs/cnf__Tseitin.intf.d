lib/cnf/tseitin.mli: Expr Formula Lit
