lib/cnf/dimacs.ml: Buffer Clause Formula List Lit Printf String
