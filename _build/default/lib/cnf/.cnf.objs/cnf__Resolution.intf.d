lib/cnf/resolution.mli: Clause Formula Lit
