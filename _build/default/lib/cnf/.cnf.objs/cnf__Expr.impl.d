lib/cnf/expr.ml: Format Int List Set
