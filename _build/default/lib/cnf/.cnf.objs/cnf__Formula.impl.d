lib/cnf/formula.ml: Array Clause Format List Lit
