lib/cnf/cardinality.mli: Formula Lit
