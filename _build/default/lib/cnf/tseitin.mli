(** Tseitin transformation: linear-size, equisatisfiable CNF translation of
    Boolean expressions.

    Expression atoms map to formula variables through a caller-visible
    mapping so models of the CNF can be read back as assignments of the
    original atoms. *)

type context
(** A translation context owning a target {!Formula.t}. *)

val create : unit -> context

val formula : context -> Formula.t
(** The CNF accumulated so far. *)

val lit_of_atom : context -> int -> Lit.t
(** The formula literal standing for an expression atom (allocated on first
    use). *)

val translate : context -> Expr.t -> Lit.t
(** [translate ctx e] adds defining clauses for [e] and returns a literal
    equivalent to [e] (in every model of the defining clauses).  Repeated
    identical sub-expressions are shared structurally. *)

val assert_expr : context -> Expr.t -> unit
(** [assert_expr ctx e] constrains [e] to be true. *)

val cnf_of_expr : Expr.t -> Formula.t * (int -> Lit.t)
(** One-shot: [cnf_of_expr e] asserts [e] and returns the CNF together with
    the atom-to-literal mapping. *)
