type t = int

let of_var v positive =
  if v < 0 then invalid_arg "Lit.of_var: negative variable";
  (v * 2) + if positive then 0 else 1

let pos v = of_var v true
let neg_of_var v = of_var v false
let var l = l lsr 1
let negate l = l lxor 1
let is_pos l = l land 1 = 0
let is_neg l = l land 1 = 1

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos (i - 1) else neg_of_var (-i - 1)

let to_dimacs l = if is_pos l then var l + 1 else -(var l + 1)
let compare = Int.compare
let equal = Int.equal
let hash l = l
let pp ppf l = Format.fprintf ppf "%d" (to_dimacs l)
let to_string l = string_of_int (to_dimacs l)
