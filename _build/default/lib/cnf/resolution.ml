let resolve c d v =
  let lp = Lit.pos v and ln = Lit.neg_of_var v in
  let has_pos cl = Clause.mem lp cl and has_neg cl = Clause.mem ln cl in
  let pick =
    if has_pos c && has_neg d then Some (c, d)
    else if has_neg c && has_pos d then Some (d, c)
    else None
  in
  match pick with
  | None -> None
  | Some (cp, cn) ->
    let keep cl bad = List.filter (fun l -> not (Lit.equal l bad)) (Clause.to_list cl) in
    let r = Clause.of_list (keep cp lp @ keep cn ln) in
    if Clause.is_tautology r then None else Some r

let resolvable c d =
  let clashes =
    Clause.to_list c
    |> List.filter (fun l -> Clause.mem (Lit.negate l) d)
    |> List.map Lit.var
  in
  match clashes with [ v ] -> Some v | [] | _ :: _ -> None

let self_subsumes c d =
  match resolvable c d with
  | None -> None
  | Some v ->
    (match resolve c d v with
     | Some r when Clause.subsumes r d ->
       let dropped = if Clause.mem (Lit.pos v) d then Lit.pos v else Lit.neg_of_var v in
       Some dropped
     | Some _ | None -> None)

let is_implicate f c =
  let n = Formula.nvars f in
  if n > 24 then invalid_arg "Resolution.is_implicate: too many variables";
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = mask land (1 lsl v) <> 0 in
    if Formula.eval value f && not (Clause.eval value c) then ok := false
  done;
  !ok
