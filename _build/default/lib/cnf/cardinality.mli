(** Cardinality constraints over literals, encoded with the sequential
    (totalizer-free) counter encoding of Sinz.

    Auxiliary variables are allocated in the target formula; the encodings
    are satisfiability-preserving and arc-consistent under unit
    propagation. *)

val at_most : Formula.t -> Lit.t list -> int -> unit
(** [at_most f lits k] constrains at most [k] of [lits] to be true.
    [k = 0] emits unit clauses; [k >= length lits] emits nothing. *)

val at_least : Formula.t -> Lit.t list -> int -> unit
(** [at_least f lits k] constrains at least [k] of [lits] to be true. *)

val exactly : Formula.t -> Lit.t list -> int -> unit

val at_most_one_pairwise : Formula.t -> Lit.t list -> unit
(** Quadratic pairwise at-most-one (no auxiliary variables); preferable for
    very small literal sets. *)
