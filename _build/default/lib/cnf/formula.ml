type t = { mutable nvars : int; mutable clauses : Clause.t list; mutable n : int }

let create ?(nvars = 0) () = { nvars; clauses = []; n = 0 }

let fresh_var f =
  let v = f.nvars in
  f.nvars <- v + 1;
  v

let nvars f = f.nvars
let nclauses f = f.n

let add_clause f c =
  if not (Clause.is_tautology c) then begin
    Clause.to_list c
    |> List.iter (fun l -> if Lit.var l >= f.nvars then f.nvars <- Lit.var l + 1);
    f.clauses <- c :: f.clauses;
    f.n <- f.n + 1
  end

let add_clause_l f lits = add_clause f (Clause.of_list lits)
let add_dimacs f ints = add_clause f (Clause.of_dimacs_list ints)

let clauses f =
  let a = Array.make f.n (Clause.of_list []) in
  List.iteri (fun i c -> a.(f.n - 1 - i) <- c) f.clauses;
  a

let iter_clauses f g = Array.iter g (clauses f)
let copy f = { nvars = f.nvars; clauses = f.clauses; n = f.n }

let of_clauses ?(nvars = 0) cs =
  let f = create ~nvars () in
  List.iter (add_clause f) cs;
  f

let eval value f = List.for_all (Clause.eval value) f.clauses
let num_literals f = List.fold_left (fun acc c -> acc + Clause.size c) 0 f.clauses

let pp ppf f =
  Format.fprintf ppf "@[<v>cnf %d vars, %d clauses@,%a@]" f.nvars f.n
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Clause.pp)
    (Array.to_list (clauses f))
