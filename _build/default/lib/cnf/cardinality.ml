(* Sequential counter encoding (Sinz 2005): registers s_{i,j} meaning
   "at least j of the first i+1 literals are true". *)
let at_most f lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k < 0 then invalid_arg "Cardinality.at_most: negative bound";
  if k = 0 then Array.iter (fun l -> Formula.add_clause_l f [ Lit.negate l ]) lits
  else if k < n then begin
    let s = Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Lit.pos (Formula.fresh_var f))) in
    Formula.add_clause_l f [ Lit.negate lits.(0); s.(0).(0) ];
    for j = 1 to k - 1 do
      Formula.add_clause_l f [ Lit.negate s.(0).(j) ]
    done;
    for i = 1 to n - 2 do
      Formula.add_clause_l f [ Lit.negate lits.(i); s.(i).(0) ];
      Formula.add_clause_l f [ Lit.negate s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        Formula.add_clause_l f
          [ Lit.negate lits.(i); Lit.negate s.(i - 1).(j - 1); s.(i).(j) ];
        Formula.add_clause_l f [ Lit.negate s.(i - 1).(j); s.(i).(j) ]
      done;
      Formula.add_clause_l f [ Lit.negate lits.(i); Lit.negate s.(i - 1).(k - 1) ]
    done;
    if n >= 2 then
      Formula.add_clause_l f
        [ Lit.negate lits.(n - 1); Lit.negate s.(n - 2).(k - 1) ]
  end

let at_least f lits k =
  let n = List.length lits in
  if k <= 0 then ()
  else if k > n then Formula.add_clause_l f []
  else if k = 1 then Formula.add_clause_l f lits
  else at_most f (List.map Lit.negate lits) (n - k)

let exactly f lits k =
  at_most f lits k;
  at_least f lits k

let at_most_one_pairwise f lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
      List.iter (fun m -> Formula.add_clause_l f [ Lit.negate l; Lit.negate m ]) rest;
      pairs rest
  in
  pairs lits
