(** DIMACS CNF reader and writer. *)

exception Parse_error of string

val parse_string : string -> Formula.t
(** Parses DIMACS CNF text.  Comment lines ([c ...]) are skipped, the
    [p cnf v c] header is honoured if present (and variable/clause counts
    are allowed to exceed it).  Raises {!Parse_error} on malformed input. *)

val parse_file : string -> Formula.t

val to_string : Formula.t -> string
(** Renders a formula in DIMACS, including the [p cnf] header. *)

val write_file : string -> Formula.t -> unit
