type t =
  | True
  | False
  | Atom of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Iff of t * t
  | Imp of t * t
  | Ite of t * t * t

let atom i =
  if i < 0 then invalid_arg "Expr.atom: negative index";
  Atom i

let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let ( ^^^ ) a b = Xor (a, b)
let ( ==> ) a b = Imp (a, b)
let ( <=> ) a b = Iff (a, b)
let not_ a = Not a
let conj es = And es
let disj es = Or es

let rec eval env = function
  | True -> true
  | False -> false
  | Atom i -> env i
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b
  | Iff (a, b) -> eval env a = eval env b
  | Imp (a, b) -> (not (eval env a)) || eval env b
  | Ite (c, t, e) -> if eval env c then eval env t else eval env e

let atoms e =
  let module S = Set.Make (Int) in
  let rec go acc = function
    | True | False -> acc
    | Atom i -> S.add i acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
    | Xor (a, b) | Iff (a, b) | Imp (a, b) -> go (go acc a) b
    | Ite (c, t, e) -> go (go (go acc c) t) e
  in
  S.elements (go S.empty e)

let rec size = function
  | True | False | Atom _ -> 1
  | Not e -> 1 + size e
  | And es | Or es -> List.fold_left (fun acc e -> acc + size e) 1 es
  | Xor (a, b) | Iff (a, b) | Imp (a, b) -> 1 + size a + size b
  | Ite (c, t, e) -> 1 + size c + size t + size e

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | Atom i -> Format.fprintf ppf "x%d" i
  | Not e -> Format.fprintf ppf "!%a" pp e
  | And es -> pp_nary ppf "&" es
  | Or es -> pp_nary ppf "|" es
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a <=> %a)" pp a pp b
  | Imp (a, b) -> Format.fprintf ppf "(%a => %a)" pp a pp b
  | Ite (c, t, e) -> Format.fprintf ppf "ite(%a, %a, %a)" pp c pp t pp e

and pp_nary ppf op = function
  | [] -> Format.pp_print_string ppf (if op = "&" then "1" else "0")
  | [ e ] -> pp ppf e
  | es ->
    let sep ppf () = Format.fprintf ppf " %s " op in
    Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:sep pp) es
