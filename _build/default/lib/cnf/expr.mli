(** Boolean expressions over integer-named atoms.

    Used as the front-end to the Tseitin transformation ({!Tseitin}) and in
    tests as an executable semantics reference. *)

type t =
  | True
  | False
  | Atom of int                 (** an external variable index, [>= 0] *)
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Iff of t * t
  | Imp of t * t
  | Ite of t * t * t            (** [Ite (c, t, e)] = if [c] then [t] else [e] *)

val atom : int -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val ( ==> ) : t -> t -> t
val ( <=> ) : t -> t -> t
val not_ : t -> t
val conj : t list -> t
val disj : t list -> t

val eval : (int -> bool) -> t -> bool
(** [eval env e] evaluates [e] under the atom assignment [env]. *)

val atoms : t -> int list
(** Sorted list of distinct atom indices occurring in the expression. *)

val size : t -> int
(** Number of operator and atom nodes. *)

val pp : Format.formatter -> t -> unit
