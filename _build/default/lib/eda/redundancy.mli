(** Redundancy identification and removal (Sec. 3, [17]).

    A stuck-at fault that no input vector can detect is redundant: the
    faulty and fault-free circuits are indistinguishable, so the fault
    site can be replaced by the stuck value without changing any output.
    Iterating identification and replacement (with constant folding)
    shrinks the circuit. *)

val identify :
  ?config:Sat.Types.config -> Circuit.Netlist.t -> Atpg.fault list
(** All redundant faults of the (uncollapsed) fault list. *)

type removal = {
  result : Circuit.Netlist.t;
  removed_faults : int;   (** redundancies applied across all rounds *)
  rounds : int;
  gates_before : int;
  gates_after : int;
}

val remove : ?config:Sat.Types.config -> ?max_rounds:int -> Circuit.Netlist.t -> removal
(** Applies one redundancy at a time (replacement can create or destroy
    other redundancies), folding constants after each round; stops at a
    fixpoint or after [max_rounds] (default 10).  The result is
    functionally equivalent to the input. *)
