module Expr = Cnf.Expr

type term =
  | Var of string
  | App of string * term list
  | Ite of formula * term * term

and formula =
  | Eq of term * term
  | True
  | False
  | Not of formula
  | And of formula list
  | Or of formula list
  | Imp of formula * formula
  | Iff of formula * formula

let ( === ) a b = Eq (a, b)
let fn name args = App (name, args)
let var name = Var name

type result = {
  satisfiable : bool;
  term_constants : int;
  equality_vars : int;
  sat_stats : Sat.Types.stats;
}

type const_key =
  | Kvar of string
  | Kapp of string * int list
  | Kite of formula * int * int

let solve ?(config = Sat.Types.default) input =
  let ids : (const_key, int) Hashtbl.t = Hashtbl.create 32 in
  let next_id = ref 0 in
  let apps = ref [] (* (symbol, arg ids, result id) *)
  and ites = ref [] (* (condition, then id, else id, result id) *) in
  let intern key on_fresh =
    match Hashtbl.find_opt ids key with
    | Some i -> i
    | None ->
      let i = !next_id in
      incr next_id;
      Hashtbl.add ids key i;
      on_fresh i;
      i
  in
  (* Ackermann flattening: every subterm becomes a constant id *)
  let rec term_id = function
    | Var s -> intern (Kvar s) (fun _ -> ())
    | App (f, args) ->
      let arg_ids = List.map term_id args in
      intern
        (Kapp (f, arg_ids))
        (fun i -> apps := (f, arg_ids, i) :: !apps)
    | Ite (c, a, b) ->
      let ia = term_id a in
      let ib = term_id b in
      intern (Kite (c, ia, ib)) (fun i -> ites := (c, ia, ib, i) :: !ites)
  in
  (* first pass interns every term (including those inside ite guards) *)
  let rec scan = function
    | Eq (a, b) ->
      ignore (term_id a);
      ignore (term_id b)
    | True | False -> ()
    | Not f -> scan f
    | And fs | Or fs -> List.iter scan fs
    | Imp (a, b) | Iff (a, b) ->
      scan a;
      scan b
  in
  scan input;
  (* ite guards may contain further terms (and further ites): drain *)
  let scanned = ref 0 in
  let rec drain () =
    let all = List.rev !ites in
    let total = List.length all in
    if total > !scanned then begin
      let fresh = List.filteri (fun idx _ -> idx >= !scanned) all in
      scanned := total;
      List.iter (fun (c, _, _, _) -> scan c) fresh;
      drain ()
    end
  in
  drain ();
  let n = !next_id in
  (* equality atom e_{i,j} (i < j) maps to expression atom i*n + j *)
  let eq_atom i j =
    if i = j then Expr.True
    else
      let a = min i j and b = max i j in
      Expr.atom ((a * n) + b)
  in
  let rec translate = function
    | Eq (a, b) -> eq_atom (term_id a) (term_id b)
    | True -> Expr.True
    | False -> Expr.False
    | Not f -> Expr.Not (translate f)
    | And fs -> Expr.And (List.map translate fs)
    | Or fs -> Expr.Or (List.map translate fs)
    | Imp (a, b) -> Expr.Imp (translate a, translate b)
    | Iff (a, b) -> Expr.Iff (translate a, translate b)
  in
  let ctx = Cnf.Tseitin.create () in
  Cnf.Tseitin.assert_expr ctx (translate input);
  (* functional consistency: equal arguments force equal results *)
  let rec consistency = function
    | [] -> ()
    | (f1, args1, r1) :: rest ->
      List.iter
        (fun (f2, args2, r2) ->
           if f1 = f2 && List.length args1 = List.length args2 && r1 <> r2
           then
             Cnf.Tseitin.assert_expr ctx
               (Expr.Imp
                  ( Expr.And (List.map2 eq_atom args1 args2),
                    eq_atom r1 r2 )))
        rest;
      consistency rest
  in
  consistency !apps;
  (* ite semantics *)
  List.iter
    (fun (c, ia, ib, i) ->
       let c' = translate c in
       Cnf.Tseitin.assert_expr ctx (Expr.Imp (c', eq_atom i ia));
       Cnf.Tseitin.assert_expr ctx (Expr.Imp (Expr.Not c', eq_atom i ib)))
    !ites;
  (* transitivity over every triple of term constants *)
  let g = Cnf.Tseitin.formula ctx in
  let lit i j = Cnf.Tseitin.lit_of_atom ctx ((min i j * n) + max i j) in
  let neg = Cnf.Lit.negate in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        let eij = lit i j and ejk = lit j k and eik = lit i k in
        Cnf.Formula.add_clause_l g [ neg eij; neg ejk; eik ];
        Cnf.Formula.add_clause_l g [ neg eij; neg eik; ejk ];
        Cnf.Formula.add_clause_l g [ neg ejk; neg eik; eij ]
      done
    done
  done;
  let solver = Sat.Cdcl.create ~config g in
  let outcome = Sat.Cdcl.solve solver in
  {
    satisfiable =
      (match outcome with
       | Sat.Types.Sat _ -> true
       | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> false
       | Sat.Types.Unknown why -> failwith ("Euf.solve: " ^ why));
    term_constants = n;
    equality_vars = n * (n - 1) / 2;
    sat_stats = Sat.Cdcl.stats solver;
  }

let valid ?config f = not (solve ?config (Not f)).satisfiable
