(** Covering problems (Sec. 3, Coudert [9], Manquinho & Marques-Silva
    [23]).

    Unate covering: choose a minimum-cost subset of sets whose union is
    the whole element universe.  The SAT-based optimum encodes "cost at
    most k" with cardinality constraints and binary-searches k; the
    greedy baseline is the classical log-factor approximation. *)

type instance = {
  nelems : int;
  sets : int list array;   (** sets.(j) = elements covered by set j *)
  cost : int array;        (** per-set cost (uniform 1 is standard) *)
}

val random_instance :
  seed:int -> nelems:int -> nsets:int -> density:float -> instance
(** Each (element, set) membership drawn with probability [density];
    every element is guaranteed at least one covering set.  Unit
    costs. *)

val is_cover : instance -> int list -> bool
val cover_cost : instance -> int list -> int

val greedy : instance -> int list
(** Repeatedly picks the set with the best uncovered-elements per cost
    ratio. *)

val sat_optimal :
  ?config:Sat.Types.config -> instance -> int list option
(** Minimum-cost cover via SAT + binary search on the cardinality bound
    (unit costs required; raises [Invalid_argument] otherwise — use
    {!Pseudo_boolean} for weighted instances).  [None] if the instance
    is uncoverable (impossible for {!random_instance}). *)

val branch_and_bound : ?max_nodes:int -> instance -> (int list * int) option
(** Classical covering branch-and-bound with an independent-set lower
    bound, pruning as in the SAT-based covering work the paper cites
    ([23]).  Returns the optimal cover and the number of search nodes
    explored, or [None] when the node budget (default 1_000_000) is
    exhausted or the instance is uncoverable.  Unit costs. *)
