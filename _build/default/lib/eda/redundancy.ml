module N = Circuit.Netlist

let identify ?(config = Sat.Types.default) c =
  Atpg.fault_list c
  |> List.filter (fun f ->
      match Atpg.generate_test ~config c f with
      | Atpg.Redundant, _ -> true
      | (Atpg.Test _ | Atpg.Aborted _), _ -> false)

type removal = {
  result : Circuit.Netlist.t;
  removed_faults : int;
  rounds : int;
  gates_before : int;
  gates_after : int;
}

(* replace the fault site by its stuck value and fold constants *)
let apply_redundancy c (f : Atpg.fault) =
  let d = N.create () in
  let map = Array.make (max 1 (N.num_nodes c)) (-1) in
  for id = 0 to N.num_nodes c - 1 do
    map.(id) <-
      (if id = f.Atpg.node then N.add_const d f.Atpg.stuck_at
       else
         match N.node c id with
         | N.Input -> N.add_input ~name:(N.name c id) d
         | N.Const b -> N.add_const d b
         | N.Gate (g, fs) -> N.add_gate d g (List.map (fun x -> map.(x)) fs))
  done;
  (* inputs must survive replacement to preserve the interface *)
  List.iter (fun (n, o) -> N.set_output ~name:n d map.(o)) (N.outputs c);
  Circuit.Transform.simplify d

let remove ?(config = Sat.Types.default) ?(max_rounds = 10) c =
  let gates_before = N.gate_count c in
  let rec go c removed rounds =
    if rounds >= max_rounds then (c, removed, rounds)
    else
      let redundant =
        (* first redundant fault on a gate output, if any *)
        Atpg.fault_list c
        |> List.find_opt (fun f ->
            (match N.node c f.Atpg.node with
             | N.Gate _ -> true
             | N.Input | N.Const _ -> false)
            &&
            match Atpg.generate_test ~config c f with
            | Atpg.Redundant, _ -> true
            | (Atpg.Test _ | Atpg.Aborted _), _ -> false)
      in
      match redundant with
      | None -> (c, removed, rounds)
      | Some f -> go (apply_redundancy c f) (removed + 1) (rounds + 1)
  in
  let result, removed_faults, rounds = go c 0 0 in
  {
    result;
    removed_faults;
    rounds;
    gates_before;
    gates_after = N.gate_count result;
  }
