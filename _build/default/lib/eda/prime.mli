(** Minimum-size prime implicants (Sec. 3, Manquinho et al. [22]).

    For a function given in CNF, a term t implies the function iff every
    clause contains a literal of t, so the search for a minimum-size
    implicant is a covering problem over literal selectors; a
    minimum-size implicant is necessarily prime. *)

type term = (int * bool) list
(** Variable/value pairs, e.g. [[(0, true); (3, false)]] for x0 ~x3. *)

val is_implicant : Cnf.Formula.t -> term -> bool
(** Syntactic check: every clause touched (sound for CNF inputs). *)

val minimum_prime_implicant :
  ?config:Sat.Types.config -> Cnf.Formula.t -> term option
(** [None] when the formula is unsatisfiable.  The result has minimum
    literal count over all implicants. *)
