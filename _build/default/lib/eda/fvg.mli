(** Functional test vector generation (Sec. 3, Fallah et al. [13]).

    Coverage objectives are (node, value) pairs — e.g. both-polarity
    toggle coverage of every gate output.  One incremental solver holds
    the circuit clauses; each uncovered objective is queried under an
    assumption, and every generated vector is simulated against all
    remaining objectives (coverage dropping), the iterative SAT usage
    pattern of Sec. 6. *)

type objective = Circuit.Netlist.node_id * bool

val toggle_objectives : Circuit.Netlist.t -> objective list
(** Both values on every gate output. *)

type report = {
  objectives : int;
  covered : int;
  unreachable : int;   (** objectives proven unsatisfiable *)
  vectors : bool array list;
  sat_calls : int;
  dropped_by_simulation : int;
  time_seconds : float;
}

val generate :
  ?config:Sat.Types.config ->
  ?random_warmup:int ->
  Circuit.Netlist.t -> objective list -> report
(** [random_warmup] (default 2) words of random patterns are simulated
    first to knock out easy objectives before any SAT call. *)
