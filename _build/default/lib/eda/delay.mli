(** SAT-based circuit delay computation (Sec. 3; McGeer et al. [28],
    Silva et al. [36]).

    Unit gate delays, floating mode: an input vector is applied at time 0
    with unknown previous state; a gate output is {e stable by} time [t]
    when all its inputs are stable by [t-1], or some input with a
    controlling final value is.  The {e true delay} of an output [o] is
    the largest [T] such that some vector leaves [o] unstable at [T-1] —
    at most, and on false-path circuits strictly below, the topological
    delay. *)

type encoding = {
  formula : Cnf.Formula.t;
  value_lit : Circuit.Netlist.node_id -> Cnf.Lit.t;
      (** final (settled) value of a node *)
  stable_by : Circuit.Netlist.node_id -> int -> Cnf.Lit.t;
      (** [stable_by x t]: node [x] stable at its final value by time
          [t]; constant-true beyond the node's level, constant-false for
          gates at [t <= 0] *)
  horizon : int;  (** circuit depth *)
}

val encode_stability :
  ?gate_delay:(Circuit.Gate.t -> int) -> Circuit.Netlist.t -> encoding
(** [gate_delay] maps each gate type to a positive integer delay
    (default: 1 for every gate — the paper's unit-delay model). *)

val weighted_level :
  ?gate_delay:(Circuit.Gate.t -> int) ->
  Circuit.Netlist.t -> Circuit.Netlist.node_id -> int
(** Longest weighted path from an input. *)

val topological_delay : Circuit.Netlist.t -> Circuit.Netlist.node_id -> int
(** The node's level — the classical (pessimistic) delay bound. *)

val true_delay :
  ?config:Sat.Types.config ->
  ?gate_delay:(Circuit.Gate.t -> int) ->
  Circuit.Netlist.t -> Circuit.Netlist.node_id -> int * int
(** [(delay, sat_calls)] — queries decreasing thresholds on one
    incremental solver. *)

type output_report = {
  output : string;
  topological : int;
  true_floating : int;
  false_path : bool;  (** [true_floating < topological] *)
}

val report :
  ?config:Sat.Types.config -> Circuit.Netlist.t -> output_report list
