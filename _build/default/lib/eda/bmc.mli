(** Bounded model checking of sequential circuits (Sec. 3, Biere et
    al. [5]).

    The transition relation is unrolled frame by frame into one
    incremental SAT solver; the safety property ("output [bad] never
    rises") is queried per bound under an assumption, so frames are
    shared across bounds and learned clauses persist. *)

type result =
  | Counterexample of bool array list
      (** primary-input vector per frame, frame 0 first; the property
          fails in the last frame *)
  | No_counterexample
      (** up to the requested bound *)

type report = {
  result : result;
  bound_reached : int;
  per_bound_conflicts : (int * int) list;  (** (k, conflicts spent at k) *)
  time_seconds : float;
}

val check :
  ?config:Sat.Types.config ->
  ?bad_output:string ->
  max_bound:int ->
  Circuit.Sequential.t ->
  report
(** [bad_output] (default ["bad"]) names the property output in the
    sequential circuit's combinational part. *)

type induction_result =
  | Proved of int
      (** the property holds at every depth; the argument is the
          induction length k that closed the proof *)
  | Refuted of bool array list
      (** a real counterexample (input vectors per frame) *)
  | Bound_reached
      (** neither proved nor refuted within [max_k] *)

val prove_inductive :
  ?config:Sat.Types.config ->
  ?bad_output:string ->
  ?max_k:int ->
  Circuit.Sequential.t ->
  induction_result
(** Simple k-induction (sound, incomplete: no state-uniqueness
    constraints).  Where bounded checking can only say "no
    counterexample up to k", an inductive property is certified for
    {e all} depths — the natural unbounded extension of the BMC usage
    the paper surveys. *)
