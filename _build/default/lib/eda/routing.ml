module Lit = Cnf.Lit

type net = { src : int * int; dst : int * int }

type instance = {
  width : int;
  height : int;
  tracks : int;
  nets : net list;
}

type route = {
  net_index : int;
  vertical_first : bool;
  track : int;
}

type result =
  | Routed of route list
  | Unroutable
  | Unknown of string

(* channel segments used by an L-shaped route: horizontal steps are
   (`H, x, y) edges from (x,y) to (x+1,y); vertical steps (`V, x, y) from
   (x,y) to (x,y+1) *)
let segments_of (n : net) ~vertical_first =
  let x0, y0 = n.src and x1, y1 = n.dst in
  let horiz y =
    let lo = min x0 x1 and hi = max x0 x1 in
    List.init (hi - lo) (fun i -> (`H, lo + i, y))
  in
  let vert x =
    let lo = min y0 y1 and hi = max y0 y1 in
    List.init (hi - lo) (fun i -> (`V, x, lo + i))
  in
  if vertical_first then vert x0 @ horiz y1 else horiz y0 @ vert x1

let route ?(config = Sat.Types.default) inst =
  let f = Cnf.Formula.create () in
  let nets = Array.of_list inst.nets in
  let var = Hashtbl.create 256 in
  (* x_{net, vertical_first, track} *)
  let lit n vf t =
    match Hashtbl.find_opt var (n, vf, t) with
    | Some l -> l
    | None ->
      let l = Lit.pos (Cnf.Formula.fresh_var f) in
      Hashtbl.add var (n, vf, t) l;
      l
  in
  let resource_users = Hashtbl.create 256 in
  Array.iteri
    (fun n net ->
       let options = ref [] in
       List.iter
         (fun vf ->
            let segs = segments_of net ~vertical_first:vf in
            for t = 0 to inst.tracks - 1 do
              let l = lit n vf t in
              options := l :: !options;
              List.iter
                (fun seg ->
                   let key = (seg, t) in
                   let cur =
                     Option.value ~default:[]
                       (Hashtbl.find_opt resource_users key)
                   in
                   Hashtbl.replace resource_users key (l :: cur))
                segs
            done)
         [ false; true ];
       (* at least one realisation per net *)
       Cnf.Formula.add_clause_l f !options;
       (* at most one realisation per net *)
       Cnf.Cardinality.at_most_one_pairwise f !options)
    nets;
  (* capacity 1 per (segment, track) *)
  Hashtbl.iter
    (fun _ users ->
       match users with
       | [] | [ _ ] -> ()
       | us -> Cnf.Cardinality.at_most_one_pairwise f us)
    resource_users;
  let solver = Sat.Cdcl.create ~config f in
  let outcome = Sat.Cdcl.solve solver in
  let result =
    match outcome with
    | Sat.Types.Sat m ->
      let routes = ref [] in
      Array.iteri
        (fun n _ ->
           List.iter
             (fun vf ->
                for t = 0 to inst.tracks - 1 do
                  match Hashtbl.find_opt var (n, vf, t) with
                  | Some l when m.(Lit.var l) ->
                    routes :=
                      { net_index = n; vertical_first = vf; track = t }
                      :: !routes
                  | Some _ | None -> ()
                done)
             [ false; true ])
        nets;
      Routed (List.rev !routes)
    | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> Unroutable
    | Sat.Types.Unknown why -> Unknown why
  in
  (result, Sat.Cdcl.stats solver)

let random_instance ~seed ~width ~height ~tracks ~nets =
  let rng = Sat.Rng.create seed in
  let cell () = (Sat.Rng.int rng width, Sat.Rng.int rng height) in
  let rec mk_net tries =
    let s = cell () and d = cell () in
    if s <> d || tries > 20 then { src = s; dst = d } else mk_net (tries + 1)
  in
  {
    width;
    height;
    tracks;
    nets = List.init nets (fun _ -> mk_net 0);
  }

let check_routes inst routes =
  let nets = Array.of_list inst.nets in
  let used = Hashtbl.create 64 in
  List.length routes = Array.length nets
  && List.for_all
       (fun r ->
          r.net_index >= 0
          && r.net_index < Array.length nets
          && r.track >= 0
          && r.track < inst.tracks
          &&
          let segs =
            segments_of nets.(r.net_index) ~vertical_first:r.vertical_first
          in
          List.for_all
            (fun seg ->
               let key = (seg, r.track) in
               if Hashtbl.mem used key then false
               else begin
                 Hashtbl.add used key ();
                 true
               end)
            segs)
       routes
  &&
  let distinct =
    List.sort_uniq Int.compare (List.map (fun r -> r.net_index) routes)
  in
  List.length distinct = Array.length nets
