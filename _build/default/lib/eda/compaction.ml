type result = {
  original : int;
  compacted : bool array list;
  faults_covered : int;
  optimal : bool;
}

let compact ?(config = Sat.Types.default) ?(optimal = true) c vectors =
  let faults = Atpg.fault_list c in
  let vector_arr = Array.of_list vectors in
  (* detection matrix: which faults each vector detects *)
  let detected_by =
    Array.map (fun v -> Atpg.fault_simulate c faults [ v ]) vector_arr
  in
  let fault_key (f : Atpg.fault) = (f.Atpg.node, f.Atpg.stuck_at) in
  let covered = Hashtbl.create 64 in
  Array.iter
    (fun fs -> List.iter (fun f -> Hashtbl.replace covered (fault_key f) ()) fs)
    detected_by;
  let fault_ids = Hashtbl.create 64 in
  let n_faults = ref 0 in
  Hashtbl.iter
    (fun k () ->
       Hashtbl.replace fault_ids k !n_faults;
       incr n_faults)
    covered;
  let instance =
    {
      Covering.nelems = !n_faults;
      sets =
        Array.map
          (fun fs ->
             List.map (fun f -> Hashtbl.find fault_ids (fault_key f)) fs)
          detected_by;
      cost = Array.make (Array.length vector_arr) 1;
    }
  in
  let chosen, optimal_used =
    if !n_faults = 0 then ([], optimal)
    else if optimal then
      match Covering.sat_optimal ~config instance with
      | Some sol -> (sol, true)
      | None -> (Covering.greedy instance, false)
    else (Covering.greedy instance, false)
  in
  {
    original = Array.length vector_arr;
    compacted = List.map (fun j -> vector_arr.(j)) chosen;
    faults_covered = !n_faults;
    optimal = optimal_used;
  }
