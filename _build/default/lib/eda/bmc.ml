module N = Circuit.Netlist
module S = Circuit.Sequential
module Lit = Cnf.Lit

type result =
  | Counterexample of bool array list
  | No_counterexample

type report = {
  result : result;
  bound_reached : int;
  per_bound_conflicts : (int * int) list;
  time_seconds : float;
}

(* Each frame is encoded into a scratch formula whose variables are then
   remapped into the live solver; state inputs are bound to the previous
   frame's next-state literals. *)
let encode_frame solver seq state_lits =
  let comb = seq.S.comb in
  let scratch = Cnf.Formula.create () in
  let pre_table = Hashtbl.create 16 in
  List.iter2
    (fun node l -> Hashtbl.replace pre_table node l)
    seq.S.state_inputs state_lits;
  let remap = Hashtbl.create 64 in
  let lit_of_scratch l =
    let v = Lit.var l in
    let nv =
      match Hashtbl.find_opt remap v with
      | Some nv -> nv
      | None ->
        let nv = Sat.Cdcl.new_var solver in
        Hashtbl.replace remap v nv;
        nv
    in
    if Lit.is_pos l then Lit.pos nv else Lit.neg_of_var nv
  in
  let pre id =
    match Hashtbl.find_opt pre_table id with
    | Some solver_lit ->
      (* a scratch var bound to the (positive) solver literal *)
      let sv = Cnf.Formula.fresh_var scratch in
      Hashtbl.replace remap sv (Lit.var solver_lit);
      assert (Lit.is_pos solver_lit);
      Some (Lit.pos sv)
    | None -> None
  in
  let lit_of = Circuit.Encode.encode_into scratch ~pre comb in
  Cnf.Formula.iter_clauses scratch (fun cl ->
      Sat.Cdcl.add_clause solver
        (List.map lit_of_scratch (Cnf.Clause.to_list cl)));
  fun id -> lit_of_scratch (lit_of id)

let bad_node_of seq bad_output =
  match
    List.find_opt (fun (n, _) -> n = bad_output) (N.outputs seq.S.comb)
  with
  | Some (_, id) -> id
  | None -> invalid_arg ("Bmc.check: no output named " ^ bad_output)

let check ?(config = Sat.Types.default) ?(bad_output = "bad") ~max_bound seq =
  S.validate seq;
  let t0 = Unix.gettimeofday () in
  let bad_node = bad_node_of seq bad_output in
  let f = Cnf.Formula.create () in
  let solver = Sat.Cdcl.create ~config f in
  (* frame 0 state: constants from init *)
  let init_lits =
    List.map
      (fun b ->
         let v = Sat.Cdcl.new_var solver in
         Sat.Cdcl.add_clause solver
           [ (if b then Lit.pos v else Lit.neg_of_var v) ];
         Lit.pos v)
      seq.S.init
  in
  let frames : (N.node_id -> Lit.t) list ref = ref [] in
  let encode_frame state_lits = encode_frame solver seq state_lits in
  let per_bound = ref [] in
  let result = ref None in
  let state = ref init_lits in
  let k = ref 0 in
  while !result = None && !k < max_bound do
    let frame = encode_frame !state in
    frames := frame :: !frames;
    let bad_lit = frame bad_node in
    let conflicts_before = (Sat.Cdcl.stats solver).Sat.Types.conflicts in
    (match Sat.Cdcl.solve ~assumptions:[ bad_lit ] solver with
     | Sat.Types.Sat m ->
       let inputs_per_frame =
         List.rev_map
           (fun fr ->
              List.map
                (fun pi ->
                   let l = fr pi in
                   let v = m.(Lit.var l) in
                   if Lit.is_pos l then v else not v)
                seq.S.primary_inputs
              |> Array.of_list)
           !frames
       in
       result := Some (Counterexample inputs_per_frame)
     | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> ()
     | Sat.Types.Unknown _ -> result := Some No_counterexample);
    per_bound :=
      (!k, (Sat.Cdcl.stats solver).Sat.Types.conflicts - conflicts_before)
      :: !per_bound;
    state := List.map frame seq.S.next_state;
    incr k
  done;
  {
    result = Option.value ~default:No_counterexample !result;
    bound_reached = !k;
    per_bound_conflicts = List.rev !per_bound;
    time_seconds = Unix.gettimeofday () -. t0;
  }

type induction_result =
  | Proved of int
  | Refuted of bool array list
  | Bound_reached

(* Simple k-induction (no uniqueness constraints): sound for proving,
   incomplete.  Base: no counterexample within k steps of the initial
   state.  Step: from any state, k consecutive good cycles force a good
   (k+1)-th. *)
let prove_inductive ?(config = Sat.Types.default) ?(bad_output = "bad")
    ?(max_k = 8) seq =
  S.validate seq;
  let bad_node = bad_node_of seq bad_output in
  let step_holds k =
    let f = Cnf.Formula.create () in
    let solver = Sat.Cdcl.create ~config f in
    (* arbitrary starting state: free variables *)
    let state =
      ref (List.map (fun _ -> Lit.pos (Sat.Cdcl.new_var solver)) seq.S.init)
    in
    let last_bad = ref None in
    for i = 0 to k do
      let frame = encode_frame solver seq !state in
      let bad = frame bad_node in
      if i < k then Sat.Cdcl.add_clause solver [ Lit.negate bad ]
      else last_bad := Some bad;
      state := List.map frame seq.S.next_state
    done;
    match !last_bad with
    | None -> false
    | Some bad -> (
        match Sat.Cdcl.solve ~assumptions:[ bad ] solver with
        | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> true
        | Sat.Types.Sat _ | Sat.Types.Unknown _ -> false)
  in
  let rec attempt k =
    if k > max_k then Bound_reached
    else
      match (check ~config ~bad_output ~max_bound:k seq).result with
      | Counterexample frames -> Refuted frames
      | No_counterexample ->
        if step_holds k then Proved k else attempt (k + 1)
  in
  attempt 1
