(** Linear pseudo-Boolean optimization (Sec. 3, Barth [3]).

    A Davis-Putnam-style enumeration over PB constraints
    [sum a_i * l_i >= b]: slack-based propagation (a literal whose
    coefficient exceeds the slack is forced), chronological backtracking,
    and linear search on the objective — each solution adds the
    constraint "strictly better", until infeasibility proves
    optimality. *)

type term = { coeff : int; lit : Cnf.Lit.t }

type linear = term list

type problem = {
  nvars : int;
  constraints : (linear * int) list;  (** (terms, lower bound) *)
  objective : linear;                 (** minimised; coefficients >= 0 *)
}

val of_clause : Cnf.Clause.t -> linear * int
(** A CNF clause as the PB constraint [sum l_i >= 1]. *)

val eval_linear : (int -> bool) -> linear -> int

type result =
  | Optimal of bool array * int  (** model and objective value *)
  | Infeasible
  | Unknown of string

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  improvements : int;  (** solutions found during the descent *)
}

val solve : ?max_decisions:int -> problem -> result * stats

val covering_problem : Covering.instance -> problem
(** Weighted covering as PB minimisation. *)
