(** Static test-set compaction: selecting a minimum subset of generated
    vectors that keeps fault coverage is exactly the covering problem the
    paper lists among SAT's optimization applications (Sec. 3, [9, 23]).

    The fault/vector detection matrix comes from bit-parallel fault
    simulation; the minimum cover comes from {!Covering.sat_optimal}. *)

type result = {
  original : int;
  compacted : bool array list;
  faults_covered : int;
  optimal : bool;  (** [false] when the greedy fallback was used *)
}

val compact :
  ?config:Sat.Types.config ->
  ?optimal:bool ->
  Circuit.Netlist.t -> bool array list -> result
(** [compact c vectors] keeps coverage of every fault of [c] detected by
    [vectors].  With [optimal] (default true) the minimum subset is
    computed by SAT; otherwise greedy covering is used. *)
