(** Equality with uninterpreted functions, reduced to SAT (Sec. 3,
    Velev & Bryant [6]).

    Processor verification abstracts datapath blocks (ALUs, memories)
    into uninterpreted function symbols; correctness becomes validity of
    a formula over equalities between terms.  The reduction here is the
    classical one: Ackermann expansion replaces each function
    application by a fresh constant plus functional-consistency
    constraints, equalities become propositional variables, and
    transitivity over every triple of term constants closes the
    theory — leaving a plain SAT instance. *)

type term =
  | Var of string
  | App of string * term list
  | Ite of formula * term * term
      (** term-level if-then-else (multiplexers, bypass paths) *)

and formula =
  | Eq of term * term
  | True
  | False
  | Not of formula
  | And of formula list
  | Or of formula list
  | Imp of formula * formula
  | Iff of formula * formula

val ( === ) : term -> term -> formula
val fn : string -> term list -> term
val var : string -> term

type result = {
  satisfiable : bool;
  term_constants : int;   (** distinct term constants after Ackermann *)
  equality_vars : int;
  sat_stats : Sat.Types.stats;
}

val solve : ?config:Sat.Types.config -> formula -> result
(** Satisfiability of the formula modulo EUF. *)

val valid : ?config:Sat.Types.config -> formula -> bool
(** [valid f] iff [Not f] is EUF-unsatisfiable. *)
