module Lit = Cnf.Lit

type instance = {
  nelems : int;
  sets : int list array;
  cost : int array;
}

let random_instance ~seed ~nelems ~nsets ~density =
  let rng = Sat.Rng.create seed in
  let members = Array.make nsets [] in
  let covered = Array.make nelems false in
  for j = 0 to nsets - 1 do
    for e = 0 to nelems - 1 do
      if Sat.Rng.float rng < density then begin
        members.(j) <- e :: members.(j);
        covered.(e) <- true
      end
    done
  done;
  (* guarantee coverage of stragglers *)
  Array.iteri
    (fun e got ->
       if not got then begin
         let j = Sat.Rng.int rng nsets in
         members.(j) <- e :: members.(j)
       end)
    covered;
  { nelems; sets = members; cost = Array.make nsets 1 }

let is_cover inst chosen =
  let hit = Array.make inst.nelems false in
  List.iter
    (fun j -> List.iter (fun e -> hit.(e) <- true) inst.sets.(j))
    chosen;
  Array.for_all Fun.id hit

let cover_cost inst chosen =
  List.fold_left (fun acc j -> acc + inst.cost.(j)) 0 chosen

let greedy inst =
  let covered = Array.make inst.nelems false in
  let remaining () =
    Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 covered
  in
  let chosen = ref [] in
  let continue = ref true in
  while remaining () > 0 && !continue do
    let best = ref (-1) and best_ratio = ref 0. in
    Array.iteri
      (fun j elems ->
         let gain =
           List.fold_left
             (fun acc e -> if covered.(e) then acc else acc + 1)
             0 elems
         in
         let ratio = float_of_int gain /. float_of_int (max 1 inst.cost.(j)) in
         if gain > 0 && ratio > !best_ratio then begin
           best := j;
           best_ratio := ratio
         end)
      inst.sets;
    if !best < 0 then continue := false
    else begin
      chosen := !best :: !chosen;
      List.iter (fun e -> covered.(e) <- true) inst.sets.(!best)
    end
  done;
  List.rev !chosen

let encode inst =
  let nsets = Array.length inst.sets in
  let f = Cnf.Formula.create ~nvars:nsets () in
  (* element e must be covered by a chosen set *)
  let covering_sets = Array.make inst.nelems [] in
  Array.iteri
    (fun j elems ->
       List.iter (fun e -> covering_sets.(e) <- Lit.pos j :: covering_sets.(e)) elems)
    inst.sets;
  Array.iter (fun lits -> Cnf.Formula.add_clause_l f lits) covering_sets;
  f

let solve_with_bound config inst k =
  let f = encode inst in
  let nsets = Array.length inst.sets in
  let selectors = List.init nsets Lit.pos in
  Cnf.Cardinality.at_most f selectors k;
  match Sat.Cdcl.solve (Sat.Cdcl.create ~config f) with
  | Sat.Types.Sat m ->
    let chosen = ref [] in
    for j = nsets - 1 downto 0 do
      if m.(j) then chosen := j :: !chosen
    done;
    Some !chosen
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> None

let sat_optimal ?(config = Sat.Types.default) inst =
  if Array.exists (fun c -> c <> 1) inst.cost then
    invalid_arg "Covering.sat_optimal: unit costs only";
  let nsets = Array.length inst.sets in
  match solve_with_bound config inst nsets with
  | None -> None
  | Some initial ->
    (* binary search the smallest feasible k *)
    let best = ref initial in
    let lo = ref 0 and hi = ref (List.length initial) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      match solve_with_bound config inst mid with
      | Some sol ->
        best := sol;
        hi := List.length sol
      | None -> lo := mid + 1
    done;
    Some !best

(* Branch-and-bound for unate covering.  The lower bound is the classic
   maximal-independent-set bound: greedily pick uncovered elements no
   remaining set covers twice; each needs a distinct set. *)
let branch_and_bound ?(max_nodes = 1_000_000) inst =
  if Array.exists (fun c -> c <> 1) inst.cost then
    invalid_arg "Covering.branch_and_bound: unit costs only";
  let nsets = Array.length inst.sets in
  let covering_sets = Array.make inst.nelems [] in
  Array.iteri
    (fun j elems -> List.iter (fun e -> covering_sets.(e) <- j :: covering_sets.(e)) elems)
    inst.sets;
  if Array.exists (fun l -> l = []) covering_sets then None
  else begin
    let best_cost = ref (nsets + 1) in
    let best_sol = ref None in
    let nodes = ref 0 in
    let covered = Array.make inst.nelems 0 in
    let banned = Array.make nsets false in
    let lower_bound () =
      (* greedy independent elements among the uncovered ones *)
      let used = Array.make nsets false in
      let lb = ref 0 in
      for e = 0 to inst.nelems - 1 do
        if covered.(e) = 0
           && List.for_all (fun j -> banned.(j) || not used.(j)) covering_sets.(e)
           && List.exists (fun j -> not banned.(j)) covering_sets.(e)
        then begin
          incr lb;
          List.iter (fun j -> used.(j) <- true) covering_sets.(e)
        end
      done;
      !lb
    in
    let rec explore chosen depth =
      incr nodes;
      if !nodes <= max_nodes then begin
        let uncovered =
          let rec find e =
            if e >= inst.nelems then None
            else if covered.(e) = 0 then Some e
            else find (e + 1)
          in
          find 0
        in
        match uncovered with
        | None ->
          if depth < !best_cost then begin
            best_cost := depth;
            best_sol := Some (List.rev chosen)
          end
        | Some e ->
          if depth + lower_bound () < !best_cost then begin
            (* branch on the sets covering the first uncovered element *)
            let candidates =
              List.filter (fun j -> not banned.(j)) covering_sets.(e)
            in
            List.iter
              (fun j ->
                 List.iter (fun x -> covered.(x) <- covered.(x) + 1) inst.sets.(j);
                 explore (j :: chosen) (depth + 1);
                 List.iter (fun x -> covered.(x) <- covered.(x) - 1) inst.sets.(j);
                 (* left-to-right exclusion keeps branches disjoint *)
                 banned.(j) <- true)
              candidates;
            List.iter (fun j -> banned.(j) <- false) candidates
          end
      end
    in
    explore [] 0;
    if !nodes > max_nodes then None
    else Option.map (fun sol -> (sol, !nodes)) !best_sol
  end
