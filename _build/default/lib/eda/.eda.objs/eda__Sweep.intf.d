lib/eda/sweep.mli: Circuit Equiv Sat
