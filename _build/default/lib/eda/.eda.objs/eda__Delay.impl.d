lib/eda/delay.ml: Array Circuit Cnf Hashtbl List Sat
