lib/eda/pseudo_boolean.mli: Cnf Covering
