lib/eda/atpg.mli: Circuit Format Sat
