lib/eda/covering.mli: Sat
