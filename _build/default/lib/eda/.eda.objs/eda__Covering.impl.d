lib/eda/covering.ml: Array Cnf Fun List Option Sat
