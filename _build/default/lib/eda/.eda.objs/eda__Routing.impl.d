lib/eda/routing.ml: Array Cnf Hashtbl Int List Option Sat
