lib/eda/pseudo_boolean.ml: Array Cnf Covering List Option Sat
