lib/eda/bmc.mli: Circuit Sat
