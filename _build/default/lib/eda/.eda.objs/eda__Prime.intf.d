lib/eda/prime.mli: Cnf Sat
