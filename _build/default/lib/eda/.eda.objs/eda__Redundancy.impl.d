lib/eda/redundancy.ml: Array Atpg Circuit List Sat
