lib/eda/routing.mli: Sat
