lib/eda/equiv.ml: Aig Array Bdd Circuit Cnf List Sat Unix
