lib/eda/prime.ml: Array Cnf Fun List Sat
