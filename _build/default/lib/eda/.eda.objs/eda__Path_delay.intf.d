lib/eda/path_delay.mli: Circuit Sat
