lib/eda/bmc.ml: Array Circuit Cnf Hashtbl List Option Sat Unix
