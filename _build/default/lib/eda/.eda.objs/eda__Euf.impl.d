lib/eda/euf.ml: Cnf Hashtbl List Sat
