lib/eda/redundancy.mli: Atpg Circuit Sat
