lib/eda/crosstalk.ml: Array Circuit Cnf Delay List Sat
