lib/eda/atpg.ml: Array Circuit Cnf Csat Format Hashtbl List Sat Unix
