lib/eda/seq_equiv.ml: Array Bmc Circuit Hashtbl List Printf Sat
