lib/eda/path_delay.ml: Array Circuit Cnf Int List Sat Unix
