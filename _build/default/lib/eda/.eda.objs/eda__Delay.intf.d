lib/eda/delay.mli: Circuit Cnf Sat
