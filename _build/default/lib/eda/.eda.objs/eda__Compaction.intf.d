lib/eda/compaction.mli: Circuit Sat
