lib/eda/fvg.mli: Circuit Sat
