lib/eda/fvg.ml: Array Circuit Cnf Hashtbl List Sat Unix
