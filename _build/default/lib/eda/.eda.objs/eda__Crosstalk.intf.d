lib/eda/crosstalk.mli: Circuit Sat
