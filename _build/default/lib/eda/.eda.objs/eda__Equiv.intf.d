lib/eda/equiv.mli: Circuit Sat
