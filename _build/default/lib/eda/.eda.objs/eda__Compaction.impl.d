lib/eda/compaction.ml: Array Atpg Covering Hashtbl List Sat
