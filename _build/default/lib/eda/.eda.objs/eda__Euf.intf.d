lib/eda/euf.mli: Sat
