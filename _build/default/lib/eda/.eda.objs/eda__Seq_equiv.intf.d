lib/eda/seq_equiv.mli: Circuit Sat
