lib/eda/sweep.ml: Array Circuit Cnf Equiv Hashtbl List Option Printf Sat Unix
