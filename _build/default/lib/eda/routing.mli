(** SAT-based FPGA detailed routing (Sec. 3, Nam et al. [29, 30]).

    Track/segment model: a [width] x [height] grid of logic cells with
    horizontal and vertical routing channels of [tracks] parallel tracks.
    Each two-pin net is realised by one of its two L-shaped candidate
    routes, on one uniform track.  Variables select (net, route, track);
    each channel segment-track pair carries at most one net.  The
    instance is satisfiable iff the netlist is routable at that channel
    width — sweeping [tracks] reproduces the routability crossover. *)

type net = { src : int * int; dst : int * int }

type instance = {
  width : int;
  height : int;
  tracks : int;
  nets : net list;
}

type route = {
  net_index : int;
  vertical_first : bool;
  track : int;
}

type result =
  | Routed of route list
  | Unroutable
  | Unknown of string

val route : ?config:Sat.Types.config -> instance -> result * Sat.Types.stats

val random_instance :
  seed:int -> width:int -> height:int -> tracks:int -> nets:int -> instance
(** Random distinct-endpoint two-pin nets on the grid. *)

val check_routes : instance -> route list -> bool
(** Independently verifies exclusivity and completeness of a routing. *)
