(** SAT sweeping: equivalence checking through simulation-guided
    incremental equivalence proofs (Sec. 3 / Sec. 6 — the combination of
    structural methods with an incrementally-used SAT solver behind
    [16, 25]).

    Both circuits are merged over shared inputs; random bit-parallel
    simulation partitions the nodes into candidate-equivalence classes
    (up to complementation).  Working from the inputs outward, each
    candidate is proven or refuted with a SAT call on one incremental
    solver; proven equivalences are added as clauses, strengthening all
    later queries, and refuting counterexamples refine the candidate
    classes.  The output pair falls out as one final (usually trivial)
    query. *)

type stats = {
  simulation_words : int;
  candidate_pairs : int;
  proved : int;
  refuted : int;
  sat_calls : int;
  decisions : int;
  conflicts : int;
}

type report = {
  verdict : Equiv.verdict;
  stats : stats;
  time_seconds : float;
}

val check :
  ?config:Sat.Types.config ->
  ?words:int ->
  ?seed:int ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** [words] (default 4) simulation words seed the candidate classes. *)
