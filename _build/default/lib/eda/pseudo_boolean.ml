module Lit = Cnf.Lit

type term = { coeff : int; lit : Lit.t }

type linear = term list

type problem = {
  nvars : int;
  constraints : (linear * int) list;
  objective : linear;
}

let of_clause c =
  (List.map (fun l -> { coeff = 1; lit = l }) (Cnf.Clause.to_list c), 1)

let eval_linear value terms =
  List.fold_left
    (fun acc t ->
       let v = value (Lit.var t.lit) in
       let lit_true = if Lit.is_pos t.lit then v else not v in
       if lit_true then acc + t.coeff else acc)
    0 terms

type result =
  | Optimal of bool array * int
  | Infeasible
  | Unknown of string

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  improvements : int;
}

(* normal form: positive coefficients *)
let normalize (terms, bound) =
  List.fold_left
    (fun (ts, b) t ->
       if t.coeff = 0 then (ts, b)
       else if t.coeff > 0 then (t :: ts, b)
       else ({ coeff = -t.coeff; lit = Lit.negate t.lit } :: ts, b - t.coeff))
    ([], bound) terms

exception Conflict

type engine = {
  nvars : int;
  cons : (int array * int array) array; (* coeffs, lits (parallel) *)
  slack : int array;
  occ_false : (int * int) list array;   (* literal -> (constraint, coeff)
                                           entries where the literal's
                                           negation occurs *)
  assign : int array;
  trail : int Sat.Vec.t;
  decisions : (int * int * bool) Sat.Vec.t; (* trail mark, lit, flipped *)
  mutable st_decisions : int;
  mutable st_propagations : int;
  mutable st_conflicts : int;
}

let value e l =
  let a = e.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let mk_engine nvars constraints =
  let cons =
    List.map
      (fun (terms, bound) ->
         let ts, b = normalize (terms, bound) in
         let coeffs = Array.of_list (List.map (fun t -> t.coeff) ts) in
         let lits = Array.of_list (List.map (fun t -> t.lit) ts) in
         ((coeffs, lits), b))
      constraints
  in
  let e =
    {
      nvars;
      cons = Array.of_list (List.map fst cons);
      slack = Array.of_list
          (List.map
             (fun (((coeffs, _), b) : (int array * int array) * int) ->
                Array.fold_left ( + ) 0 coeffs - b)
             cons);
      occ_false = Array.make (max 1 (2 * nvars)) [];
      assign = Array.make (max 1 nvars) (-1);
      trail = Sat.Vec.create ~dummy:0 ();
      decisions = Sat.Vec.create ~dummy:(0, 0, false) ();
      st_decisions = 0;
      st_propagations = 0;
      st_conflicts = 0;
    }
  in
  Array.iteri
    (fun ci (coeffs, lits) ->
       Array.iteri
         (fun k l ->
            (* when [negate l] becomes true, l is false: slack drops *)
            e.occ_false.(Lit.negate l) <- (ci, coeffs.(k)) :: e.occ_false.(Lit.negate l))
         lits)
    e.cons;
  e

(* assign l true; update every slack first (so unassignment stays exact),
   then raise Conflict on violation *)
let assign_lit e l =
  e.assign.(Lit.var l) <- (if Lit.is_pos l then 1 else 0);
  Sat.Vec.push e.trail l;
  let violated = ref false in
  List.iter
    (fun (ci, coeff) ->
       e.slack.(ci) <- e.slack.(ci) - coeff;
       if e.slack.(ci) < 0 then violated := true)
    e.occ_false.(l);
  if !violated then raise Conflict

let unassign_to e mark =
  while Sat.Vec.size e.trail > mark do
    let l = Sat.Vec.pop e.trail in
    e.assign.(Lit.var l) <- -1;
    List.iter
      (fun (ci, coeff) -> e.slack.(ci) <- e.slack.(ci) + coeff)
      e.occ_false.(l)
  done

(* slack propagation: any literal with coeff > slack must be true *)
let propagate e =
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun ci (coeffs, lits) ->
         if e.slack.(ci) >= 0 then
           Array.iteri
             (fun k l ->
                if coeffs.(k) > e.slack.(ci) && value e l < 0 then begin
                  e.st_propagations <- e.st_propagations + 1;
                  assign_lit e l;
                  changed := true
                end)
             lits)
      e.cons
  done

let rec backtrack e =
  if Sat.Vec.is_empty e.decisions then false
  else begin
    let mark, lit, flipped = Sat.Vec.pop e.decisions in
    unassign_to e mark;
    if flipped then backtrack e
    else begin
      Sat.Vec.push e.decisions (mark, Lit.negate lit, true);
      match assign_lit e (Lit.negate lit) with
      | () -> true
      | exception Conflict ->
        e.st_conflicts <- e.st_conflicts + 1;
        backtrack e
    end
  end

let decide e objective =
  (* prefer turning objective literals off *)
  let rec from_objective = function
    | [] -> None
    | t :: rest ->
      if e.assign.(Lit.var t.lit) < 0 then Some (Lit.negate t.lit)
      else from_objective rest
  in
  match from_objective objective with
  | Some l -> Some l
  | None ->
    let rec scan v =
      if v >= e.nvars then None
      else if e.assign.(v) < 0 then Some (Lit.neg_of_var v)
      else scan (v + 1)
    in
    scan 0

let solve_decision e objective max_decisions =
  let result = ref None in
  if Array.exists (fun s -> s < 0) e.slack then result := Some `Unsat;
  (try
     if !result = None then (try propagate e with Conflict -> raise Exit);
     while !result = None do
       if e.st_decisions > max_decisions then result := Some `Budget
       else
         match decide e objective with
         | None -> result := Some `Sat
         | Some l ->
           e.st_decisions <- e.st_decisions + 1;
           Sat.Vec.push e.decisions (Sat.Vec.size e.trail, l, false);
           let ok =
             match assign_lit e l with
             | () -> (try propagate e; true with Conflict -> false)
             | exception Conflict -> false
           in
           if not ok then begin
             e.st_conflicts <- e.st_conflicts + 1;
             (* flip the deepest open decision and re-propagate until a
                consistent state is restored (or the tree is exhausted) *)
             let rec settle () =
               if not (backtrack e) then result := Some `Unsat
               else
                 match propagate e with
                 | () -> ()
                 | exception Conflict ->
                   e.st_conflicts <- e.st_conflicts + 1;
                   settle ()
             in
             settle ()
           end
     done
   with Exit -> result := Some `Unsat);
  Option.get !result

let solve ?(max_decisions = 1_000_000) problem =
  List.iter
    (fun t ->
       if t.coeff < 0 then
         invalid_arg "Pseudo_boolean.solve: objective coefficients >= 0")
    problem.objective;
  let totals = ref { decisions = 0; propagations = 0; conflicts = 0; improvements = 0 } in
  let add_stats e =
    totals :=
      {
        decisions = !totals.decisions + e.st_decisions;
        propagations = !totals.propagations + e.st_propagations;
        conflicts = !totals.conflicts + e.st_conflicts;
        improvements = !totals.improvements;
      }
  in
  (* linear search on the objective: each solution adds "strictly
     better" (over negated literals, to stay in >= form) and re-solves *)
  let best = ref None in
  let constraints = ref problem.constraints in
  let finished = ref false in
  let outcome = ref (Unknown "not started") in
  while not !finished do
    let e = mk_engine problem.nvars !constraints in
    (match solve_decision e problem.objective max_decisions with
     | `Budget ->
       add_stats e;
       outcome :=
         (match !best with
          | Some _ -> Unknown "budget before optimality proof"
          | None -> Unknown "decision budget");
       finished := true
     | `Unsat ->
       add_stats e;
       outcome :=
         (match !best with
          | Some (m, v) -> Optimal (m, v)
          | None -> Infeasible);
       finished := true
     | `Sat ->
       add_stats e;
       let model = Array.init problem.nvars (fun v -> e.assign.(v) = 1) in
       let v = eval_linear (fun x -> model.(x)) problem.objective in
       totals := { !totals with improvements = !totals.improvements + 1 };
       best := Some (model, v);
       if v = 0 then begin
         outcome := Optimal (model, 0);
         finished := true
       end
       else begin
         let total =
           List.fold_left (fun acc t -> acc + t.coeff) 0 problem.objective
         in
         let flipped =
           List.map
             (fun t -> { coeff = t.coeff; lit = Lit.negate t.lit })
             problem.objective
         in
         constraints := (flipped, total - v + 1) :: !constraints
       end)
  done;
  (!outcome, !totals)

let covering_problem (inst : Covering.instance) =
  let nsets = Array.length inst.Covering.sets in
  let covering_sets = Array.make inst.Covering.nelems [] in
  Array.iteri
    (fun j elems ->
       List.iter
         (fun e ->
            covering_sets.(e) <-
              { coeff = 1; lit = Lit.pos j } :: covering_sets.(e))
         elems)
    inst.Covering.sets;
  {
    nvars = nsets;
    constraints = Array.to_list covering_sets |> List.map (fun ts -> (ts, 1));
    objective =
      List.init nsets (fun j ->
          { coeff = inst.Covering.cost.(j); lit = Lit.pos j });
  }
