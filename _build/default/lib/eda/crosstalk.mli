(** Crosstalk noise analysis (Sec. 3, Chen & Keutzer [8]), simplified.

    A victim/aggressor pair is noise-critical when some input transition
    makes the two nets switch in opposite directions with overlapping
    switching windows.  Both conditions are SAT queries over a two-copy
    (vector pair) encoding; switching windows reuse the floating-mode
    stability variables of {!Delay} on the second vector: the nets
    overlap at time [t] when neither is stable by [t].

    This preserves the cited work's code path — a timed CNF encoding
    queried by a SAT solver — with a synthetic coupling model in place
    of extracted parasitics (see DESIGN.md substitutions). *)

type query = {
  victim : Circuit.Netlist.node_id;
  aggressor : Circuit.Netlist.node_id;
  window : int * int;  (** inclusive time window of coupling, in gate delays *)
}

type verdict =
  | Noise of bool array * bool array * int
      (** (v1, v2, t): vectors and an overlap time witnessing opposite
          simultaneous switching *)
  | Safe
  | Unknown of string

val analyze :
  ?config:Sat.Types.config -> Circuit.Netlist.t -> query -> verdict

val coupled_pairs :
  Circuit.Netlist.t -> max_level_gap:int -> (Circuit.Netlist.node_id * Circuit.Netlist.node_id) list
(** Heuristic synthetic coupling candidates: distinct gate-output pairs
    at similar circuit levels (stand-in for layout adjacency). *)
