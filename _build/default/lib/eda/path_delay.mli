(** Path delay fault test generation (Sec. 3, Chen & Gupta [7]) and its
    incremental formulation (Sec. 6, Kim et al. [18]).

    A path delay fault is tested by a two-vector pair (v1, v2): v1
    initialises, v2 launches a transition at the path input that must
    propagate along every path gate.  The encoding holds two copies of
    the circuit (one per vector); robustness uses the standard
    restricted conditions — side inputs of AND/NAND gates steady at 1
    for an on-path rising transition and non-controlling in v2 for a
    falling one (dually for OR/NOR), XOR side inputs steady — plus exact
    launch/propagation values along the path. *)

type path = Circuit.Netlist.node_id list
(** Input-to-output, consecutive nodes connected by fanin edges. *)

val enumerate_paths : Circuit.Netlist.t -> limit:int -> path list
(** Structurally longest-first depth-first enumeration, up to [limit]. *)

val validate_path : Circuit.Netlist.t -> path -> bool

type outcome =
  | Test of bool array * bool array  (** (v1, v2) in input order *)
  | Untestable
  | Aborted of string

val robust_test :
  ?config:Sat.Types.config ->
  Circuit.Netlist.t -> path:path -> rising:bool -> outcome

type summary = {
  paths : int;
  testable : int;
  untestable : int;
  aborted : int;
  decisions : int;
  conflicts : int;
  time_seconds : float;
}

val test_paths :
  ?config:Sat.Types.config ->
  ?incremental:bool ->
  Circuit.Netlist.t -> path list -> summary
(** With [incremental] (default true) one solver holds the two circuit
    copies; per-path constraints are clauses guarded by an activation
    literal and solved under assumptions, reusing learned clauses across
    the path list.  With it off, each path gets a fresh solver over a
    fresh encoding. *)
