(** Local search for SAT: GSAT and WalkSAT.

    The paper (Sec. 4) notes that of all the approaches proposed for SAT,
    only backtrack search has proven useful for EDA applications, in
    particular for proving unsatisfiability.  These incomplete solvers are
    the baseline for that claim (experiment E15): they can exhibit
    satisfying assignments but can never return "unsatisfiable". *)

type algorithm =
  | Gsat                (** greedy flips of the best-gain variable *)
  | Walksat of float    (** break-count flips with the given noise *)

type config = {
  algorithm : algorithm;
  max_flips : int;      (** per try *)
  max_tries : int;      (** random restarts *)
  seed : int;
}

val default : config
(** WalkSAT, noise 0.5, 100_000 flips, 10 tries. *)

type result = {
  outcome : Types.outcome;  (** [Sat model] or [Unknown]; never [Unsat] *)
  flips : int;
  tries : int;
}

val solve : ?config:config -> Cnf.Formula.t -> result
