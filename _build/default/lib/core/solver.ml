type engine =
  | Cdcl of Types.config
  | Dpll of Types.config
  | Walksat of Local_search.config

type pipeline = {
  preprocess : bool;
  probe_failed_literals : bool;
  equivalence : bool;
  recursive_learning : int;
}

let no_pipeline =
  { preprocess = false; probe_failed_literals = false; equivalence = false;
    recursive_learning = 0 }

let full_pipeline =
  { preprocess = true; probe_failed_literals = false; equivalence = true;
    recursive_learning = 1 }

type report = {
  outcome : Types.outcome;
  solver_stats : Types.stats option;
  preprocess_stats : Preprocess.stats option;
  equivalence_merged : int;
  recursive_learning_implicates : int;
  time_seconds : float;
}

let run_engine engine f =
  match engine with
  | Cdcl cfg ->
    let s = Cdcl.create ~config:cfg f in
    let outcome = Cdcl.solve s in
    (outcome, Some (Cdcl.stats s))
  | Dpll cfg ->
    let outcome, st = Dpll.solve ~config:cfg f in
    (outcome, Some st)
  | Walksat cfg ->
    let r = Local_search.solve ~config:cfg f in
    (r.outcome, None)

let solve ?(engine = Cdcl Types.default) ?(pipeline = no_pipeline) f =
  let t0 = Unix.gettimeofday () in
  let preprocess_stats = ref None in
  let equivalence_merged = ref 0 in
  let rl_implicates = ref 0 in
  (* each stage yields the formula to solve plus a model-lifting step *)
  let lift0 m = m in
  let stage_preprocess (f, lift) =
    if not pipeline.preprocess then `Go (f, lift)
    else
      match
        Preprocess.run
          ~probe_failed_literals:pipeline.probe_failed_literals f
      with
      | Preprocess.Unsat -> `Unsat
      | Preprocess.Simplified simp ->
        preprocess_stats := Some simp.Preprocess.stats;
        `Go
          ( simp.Preprocess.formula,
            fun m -> lift (Preprocess.complete_model simp m) )
  in
  let stage_equivalence (f, lift) =
    if not pipeline.equivalence then `Go (f, lift)
    else
      match Equivalence.detect f with
      | Equivalence.Unsat_equiv -> `Unsat
      | Equivalence.Reduced red ->
        equivalence_merged := red.Equivalence.merged;
        `Go
          ( red.Equivalence.formula,
            fun m ->
              lift (Equivalence.complete_model ~rep:red.Equivalence.rep m) )
  in
  let stage_rl (f, lift) =
    if pipeline.recursive_learning <= 0 then `Go (f, lift)
    else begin
      let g, r =
        Recursive_learning.strengthen ~depth:pipeline.recursive_learning f
      in
      rl_implicates := List.length r.Recursive_learning.implicates;
      if r.Recursive_learning.unsat then `Unsat else `Go (g, lift)
    end
  in
  let finish outcome solver_stats =
    {
      outcome;
      solver_stats;
      preprocess_stats = !preprocess_stats;
      equivalence_merged = !equivalence_merged;
      recursive_learning_implicates = !rl_implicates;
      time_seconds = Unix.gettimeofday () -. t0;
    }
  in
  let ( >>= ) x k = match x with `Unsat -> `Unsat | `Go y -> k y in
  let staged =
    stage_preprocess (f, lift0)
    >>= fun x -> stage_equivalence x
    >>= fun x -> stage_rl x
  in
  match staged with
  | `Unsat -> finish Types.Unsat None
  | `Go (g, lift) ->
    let outcome, st = run_engine engine g in
    let outcome =
      match outcome with
      | Types.Sat m ->
        (* pad in case simplification dropped trailing variables *)
        let n = Cnf.Formula.nvars f in
        let padded =
          Array.init (max n (Array.length m)) (fun v ->
              if v < Array.length m then m.(v) else false)
        in
        Types.Sat (lift padded)
      | (Types.Unsat | Types.Unsat_assuming _ | Types.Unknown _) as o -> o
    in
    finish outcome st

let solve_dimacs ?engine ?pipeline text =
  solve ?engine ?pipeline (Cnf.Dimacs.parse_string text)
