module Lit = Cnf.Lit

type state = {
  cfg : Types.config;
  stats : Types.stats;
  rng : Rng.t;
  nvars : int;
  clauses : int array array;
  occ : int list array;
  ntrue : int array;
  nfree : int array;
  assign : int array;
  trail : int Vec.t;
  (* decision stack: (trail size before the decision, literal, flipped) *)
  decisions : (int * int * bool) Vec.t;
  mutable qhead : int;
  jw : float array;
}

let value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let assign_lit s l =
  s.assign.(Lit.var l) <- (if Lit.is_pos l then 1 else 0);
  Vec.push s.trail l

(* Process trail entries from qhead: update counters, enqueue implied
   literals; returns false on conflict (counters stay consistent). *)
let propagate s =
  let conflict = ref false in
  while (not !conflict) && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.stats.propagations <- s.stats.propagations + 1;
    let units = ref [] in
    List.iter
      (fun ci ->
         s.nfree.(ci) <- s.nfree.(ci) - 1;
         if s.ntrue.(ci) = 0 then begin
           if s.nfree.(ci) = 0 then conflict := true
           else if s.nfree.(ci) = 1 then units := ci :: !units
         end)
      s.occ.(Lit.negate p);
    List.iter (fun ci -> s.ntrue.(ci) <- s.ntrue.(ci) + 1) s.occ.(p);
    if not !conflict then
      List.iter
        (fun ci ->
           (* a sibling unit from this batch may already have consumed the
              clause's last free literal; counters catch that later *)
           if s.ntrue.(ci) = 0 && s.nfree.(ci) = 1 then begin
             let c = s.clauses.(ci) in
             let rec free i =
               if i >= Array.length c then None
               else if value s c.(i) < 0 then Some c.(i)
               else free (i + 1)
             in
             match free 0 with Some l -> assign_lit s l | None -> ()
           end)
        !units
  done;
  not !conflict

let unassign_to s bound =
  while Vec.size s.trail > bound do
    let l = Vec.pop s.trail in
    if Vec.size s.trail < s.qhead then begin
      (* this entry's counter updates were applied; reverse them *)
      List.iter (fun ci -> s.nfree.(ci) <- s.nfree.(ci) + 1) s.occ.(Lit.negate l);
      List.iter (fun ci -> s.ntrue.(ci) <- s.ntrue.(ci) - 1) s.occ.(l)
    end;
    s.assign.(Lit.var l) <- -1
  done;
  s.qhead <- min s.qhead bound

(* chronological backtracking: flip the deepest unflipped decision *)
let rec backtrack s =
  if Vec.is_empty s.decisions then false
  else begin
    let bound, lit, flipped = Vec.pop s.decisions in
    unassign_to s bound;
    if flipped then backtrack s
    else begin
      Vec.push s.decisions (bound, Lit.negate lit, true);
      assign_lit s (Lit.negate lit);
      true
    end
  end

(* --- decision heuristics (database-scanning forms) --- *)

let clause_counts s ~restrict_to_min =
  let counts = Hashtbl.create 64 in
  let min_size = ref max_int in
  if restrict_to_min then
    Array.iteri
      (fun ci _ ->
         if s.ntrue.(ci) = 0 && s.nfree.(ci) > 0 && s.nfree.(ci) < !min_size
         then min_size := s.nfree.(ci))
      s.clauses;
  Array.iteri
    (fun ci c ->
       if s.ntrue.(ci) = 0 && s.nfree.(ci) > 0
          && ((not restrict_to_min) || s.nfree.(ci) = !min_size)
       then
         Array.iter
           (fun l ->
              if value s l < 0 then
                Hashtbl.replace counts l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
           c)
    s.clauses;
  counts

let best_of_counts counts =
  Hashtbl.fold
    (fun l c acc ->
       match acc with
       | Some (_, bc) when bc > c -> acc
       | Some (bl, bc) when bc = c && bl < l -> acc
       | Some _ | None -> Some (l, c))
    counts None
  |> Option.map fst

let decide s =
  let fixed () =
    let rec go v =
      if v >= s.nvars then None
      else if s.assign.(v) < 0 then Some (Lit.neg_of_var v)
      else go (v + 1)
    in
    go 0
  in
  let heuristic_pick =
    match s.cfg.heuristic with
    | Types.Dlis -> best_of_counts (clause_counts s ~restrict_to_min:false)
    | Types.Moms -> best_of_counts (clause_counts s ~restrict_to_min:true)
    | Types.Jeroslow_wang ->
      let best = ref (-1) and bw = ref neg_infinity in
      for l = 0 to (2 * s.nvars) - 1 do
        if value s l < 0 && s.jw.(l) > !bw then begin
          best := l;
          bw := s.jw.(l)
        end
      done;
      if !best < 0 then None else Some !best
    | Types.Random_order ->
      let free = ref [] and n = ref 0 in
      for v = s.nvars - 1 downto 0 do
        if s.assign.(v) < 0 then begin
          free := v :: !free;
          incr n
        end
      done;
      if !n = 0 then None
      else Some (Lit.of_var (List.nth !free (Rng.int s.rng !n)) (Rng.bool s.rng))
    | Types.Vsids | Types.Fixed_order -> fixed ()
  in
  match heuristic_pick with Some l -> Some l | None -> fixed ()

let budget_exceeded s =
  (match s.cfg.max_conflicts with
   | Some m -> s.stats.conflicts >= m
   | None -> false)
  ||
  match s.cfg.max_decisions with
  | Some m -> s.stats.decisions >= m
  | None -> false

let solve ?(config = Types.default) ?(assumptions = []) f =
  let n = Cnf.Formula.nvars f in
  let clause_arrays =
    Cnf.Formula.clauses f
    |> Array.map (fun c -> Array.of_list (Cnf.Clause.to_list c))
  in
  let s =
    {
      cfg = config;
      stats = Types.mk_stats ();
      rng = Rng.create config.Types.random_seed;
      nvars = n;
      clauses = clause_arrays;
      occ = Array.make (max 1 (2 * n)) [];
      ntrue = Array.make (max 1 (Array.length clause_arrays)) 0;
      nfree = Array.map Array.length clause_arrays;
      assign = Array.make (max 1 n) (-1);
      trail = Vec.create ~dummy:0 ();
      decisions = Vec.create ~dummy:(0, 0, false) ();
      qhead = 0;
      jw = Array.make (max 1 (2 * n)) 0.;
    }
  in
  Array.iteri
    (fun ci c ->
       Array.iter
         (fun l ->
            s.occ.(l) <- ci :: s.occ.(l);
            s.jw.(l) <- s.jw.(l) +. (2. ** float_of_int (-Array.length c)))
         c)
    s.clauses;
  let empty_clause = Array.exists (fun c -> Array.length c = 0) s.clauses in
  (* formula units *)
  Array.iter
    (fun c ->
       if Array.length c = 1 && value s c.(0) < 0 then assign_lit s c.(0))
    s.clauses;
  let result = ref None in
  if empty_clause then result := Some Types.Unsat;
  (* assumptions become forced first decisions that are never flipped *)
  let assumptions = Array.of_list assumptions in
  let n_assumed = ref 0 in
  while !result = None do
    if not (propagate s) then begin
      s.stats.conflicts <- s.stats.conflicts + 1;
      if budget_exceeded s then result := Some (Types.Unknown "budget")
      else if not (backtrack s) then
        result :=
          Some
            (if Array.length assumptions = 0 then Types.Unsat
             else Types.Unsat_assuming (Array.to_list assumptions))
    end
    else if budget_exceeded s then result := Some (Types.Unknown "budget")
    else if !n_assumed < Array.length assumptions then begin
      let a = assumptions.(!n_assumed) in
      incr n_assumed;
      match value s a with
      | 1 -> Vec.push s.decisions (Vec.size s.trail, a, true)
      | 0 ->
        result := Some (Types.Unsat_assuming (Array.to_list assumptions))
      | _ ->
        Vec.push s.decisions (Vec.size s.trail, a, true);
        assign_lit s a
    end
    else
      match decide s with
      | None ->
        let m = Array.init s.nvars (fun v -> s.assign.(v) = 1) in
        result := Some (Types.Sat m)
      | Some l ->
        s.stats.decisions <- s.stats.decisions + 1;
        s.stats.max_level <- max s.stats.max_level (Vec.size s.decisions + 1);
        Vec.push s.decisions (Vec.size s.trail, l, false);
        assign_lit s l
  done;
  (Option.get !result, s.stats)
