(** Equivalency reasoning (Sec. 6): detect pairs of equivalence clauses
    [(x + ~y) . (~x + y)] — more generally, strongly connected components
    of the binary-implication graph — and eliminate variables by
    substitution.

    Miters built for equivalence checking are full of such pairs, which
    is why the paper singles the technique out for EDA. *)

type result =
  | Unsat_equiv
      (** some [x] and [~x] are in the same implication cycle *)
  | Reduced of reduced

and reduced = {
  formula : Cnf.Formula.t;
      (** rewritten formula over the same variable space; merged variables
          no longer occur *)
  rep : Cnf.Lit.t array;
      (** [rep.(v)] is the literal that replaced variable [v]; it is
          [Lit.pos v] for class representatives *)
  merged : int;  (** number of variables eliminated by substitution *)
}

val detect : Cnf.Formula.t -> result
(** Builds the implication graph from the binary clauses, computes SCCs
    (Tarjan), and substitutes class representatives throughout. *)

val complete_model : rep:Cnf.Lit.t array -> bool array -> bool array
(** Extends a model of the reduced formula to the merged variables. *)
