module Lit = Cnf.Lit
module Clause = Cnf.Clause

type result = Unsat_equiv | Reduced of reduced

and reduced = {
  formula : Cnf.Formula.t;
  rep : Lit.t array;
  merged : int;
}

(* Iterative Tarjan SCC over the literal implication graph. *)
let sccs nlits succ =
  let index = Array.make nlits (-1) in
  let low = Array.make nlits 0 in
  let on_stack = Array.make nlits false in
  let comp = Array.make nlits (-1) in
  let stack = Vec.create ~dummy:0 () in
  let counter = ref 0 and ncomp = ref 0 in
  let visit root =
    (* explicit DFS stack: (node, next successor index) *)
    let call = Vec.create ~dummy:(0, 0) () in
    Vec.push call (root, 0);
    index.(root) <- !counter;
    low.(root) <- !counter;
    incr counter;
    Vec.push stack root;
    on_stack.(root) <- true;
    while not (Vec.is_empty call) do
      let node, si = Vec.pop call in
      let children = succ node in
      if si < List.length children then begin
        Vec.push call (node, si + 1);
        let child = List.nth children si in
        if index.(child) < 0 then begin
          index.(child) <- !counter;
          low.(child) <- !counter;
          incr counter;
          Vec.push stack child;
          on_stack.(child) <- true;
          Vec.push call (child, 0)
        end
        else if on_stack.(child) then low.(node) <- min low.(node) index.(child)
      end
      else begin
        if low.(node) = index.(node) then begin
          let continue = ref true in
          while !continue do
            let w = Vec.pop stack in
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            if w = node then continue := false
          done;
          incr ncomp
        end;
        if not (Vec.is_empty call) then begin
          let parent, _ = Vec.last call in
          low.(parent) <- min low.(parent) low.(node)
        end
      end
    done
  in
  for v = 0 to nlits - 1 do
    if index.(v) < 0 then visit v
  done;
  (comp, !ncomp)

let detect f =
  let n = Cnf.Formula.nvars f in
  let nlits = 2 * max 1 n in
  let adj = Array.make nlits [] in
  Cnf.Formula.iter_clauses f (fun c ->
      match Clause.to_list c with
      | [ a; b ] ->
        adj.(Lit.negate a) <- b :: adj.(Lit.negate a);
        adj.(Lit.negate b) <- a :: adj.(Lit.negate b)
      | _ -> ());
  let comp, _ = sccs nlits (fun l -> adj.(l)) in
  (* minimum literal of each component *)
  let min_of = Hashtbl.create 16 in
  for l = nlits - 1 downto 0 do
    Hashtbl.replace min_of comp.(l) l
  done;
  let contradiction = ref false in
  for v = 0 to n - 1 do
    if comp.(Lit.pos v) = comp.(Lit.neg_of_var v) then contradiction := true
  done;
  if !contradiction then Unsat_equiv
  else begin
    let rep = Array.init (max 1 n) (fun v -> Hashtbl.find min_of comp.(Lit.pos v)) in
    let merged = ref 0 in
    for v = 0 to n - 1 do
      if rep.(v) <> Lit.pos v then incr merged
    done;
    let g = Cnf.Formula.create ~nvars:n () in
    let map_lit l =
      let r = rep.(Lit.var l) in
      if Lit.is_pos l then r else Lit.negate r
    in
    Cnf.Formula.iter_clauses f (fun c ->
        Cnf.Formula.add_clause g
          (Clause.of_list (List.map map_lit (Clause.to_list c))));
    Reduced { formula = g; rep; merged = !merged }
  end

let complete_model ~rep model =
  let m = Array.copy model in
  Array.iteri
    (fun v r ->
       if v < Array.length m then begin
         let base = model.(Lit.var r) in
         m.(v) <- (if Lit.is_pos r then base else not base)
       end)
    rep;
  m
