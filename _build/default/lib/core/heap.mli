(** Indexed binary max-heap over variable indices, ordered by a mutable
    external score (VSIDS activity).

    When a score changes, call {!update} to restore heap order for that
    element. *)

type t

val create : score:(int -> float) -> int -> t
(** [create ~score n] builds an empty heap admitting elements
    [0 .. n-1]. *)

val grow : t -> int -> unit
(** [grow h n] extends the admissible element range to [0 .. n-1]. *)

val insert : t -> int -> unit
(** No-op when the element is already present. *)

val mem : t -> int -> bool
val is_empty : t -> bool

val pop_max : t -> int
(** Removes and returns the element with the highest score.  Raises
    [Not_found] when empty. *)

val update : t -> int -> unit
(** Re-establishes heap order after the element's score changed.  No-op
    when the element is absent. *)

val rebuild : t -> int list -> unit
(** Clears the heap and inserts the given elements. *)
