module Lit = Cnf.Lit

type t = {
  nvars : int;
  clauses : int array Vec.t;
  occ : int list array; (* literal -> indices of clauses containing it *)
  ntrue : int Vec.t;    (* per clause *)
  nfree : int Vec.t;    (* per clause: literals not yet false *)
  assign : int array;   (* var -> -1/0/1 *)
  reason : int array;   (* var -> clause index or -1 *)
  trail : int Vec.t;
  trail_pos : int array; (* var -> position on trail, -1 if unassigned *)
  mutable consistent : bool;
}

let nvars t = t.nvars
let is_consistent t = t.consistent

let value t l =
  let a = t.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let value_var t v = t.assign.(v)
let checkpoint t = Vec.size t.trail

(* Assign [l] true and update clause counters; returns the clause indices
   that became unit and sets [consistent := false] on an empty clause. *)
let assign_lit t l reason =
  let v = Lit.var l in
  t.assign.(v) <- (if Lit.is_pos l then 1 else 0);
  t.reason.(v) <- reason;
  t.trail_pos.(v) <- Vec.size t.trail;
  Vec.push t.trail l;
  let units = ref [] in
  List.iter
    (fun ci ->
       Vec.set t.nfree ci (Vec.get t.nfree ci - 1);
       if Vec.get t.ntrue ci = 0 then begin
         if Vec.get t.nfree ci = 0 then t.consistent <- false
         else if Vec.get t.nfree ci = 1 then units := ci :: !units
       end)
    t.occ.(Lit.negate l);
  List.iter (fun ci -> Vec.set t.ntrue ci (Vec.get t.ntrue ci + 1)) t.occ.(l);
  !units

let unassign_last t =
  let l = Vec.pop t.trail in
  let v = Lit.var l in
  t.assign.(v) <- -1;
  t.reason.(v) <- -1;
  t.trail_pos.(v) <- -1;
  List.iter (fun ci -> Vec.set t.nfree ci (Vec.get t.nfree ci + 1)) t.occ.(Lit.negate l);
  List.iter (fun ci -> Vec.set t.ntrue ci (Vec.get t.ntrue ci - 1)) t.occ.(l)

let backtrack t mark =
  while Vec.size t.trail > mark do
    unassign_last t
  done;
  t.consistent <- true

let free_lit_of t ci =
  let c = Vec.get t.clauses ci in
  let rec go i =
    if i >= Array.length c then raise Not_found
    else if value t c.(i) < 0 then c.(i)
    else go (i + 1)
  in
  go 0

(* Propagate from a queue of unit clauses to fixpoint. *)
let propagate t units =
  let queue = Queue.create () in
  List.iter (fun ci -> Queue.add ci queue) units;
  while t.consistent && not (Queue.is_empty queue) do
    let ci = Queue.pop queue in
    (* the clause may have been satisfied meanwhile *)
    if Vec.get t.ntrue ci = 0 && Vec.get t.nfree ci = 1 then begin
      let l = free_lit_of t ci in
      let more = assign_lit t l ci in
      List.iter (fun u -> Queue.add u queue) more
    end
  done

let assume t l =
  if not t.consistent then None
  else
    let mark = checkpoint t in
    match value t l with
    | 1 -> Some [ l ]
    | 0 -> None
    | _ ->
      let units = assign_lit t l (-1) in
      propagate t units;
      if t.consistent then begin
        let implied = ref [] in
        for i = Vec.size t.trail - 1 downto mark do
          implied := Vec.get t.trail i :: !implied
        done;
        Some !implied
      end
      else begin
        backtrack t mark;
        None
      end

let add_unit t l =
  if not t.consistent then false
  else
    match value t l with
    | 1 -> true
    | 0 ->
      t.consistent <- false;
      false
    | _ ->
      let units = assign_lit t l (-1) in
      propagate t units;
      t.consistent

let reason t v =
  let ci = t.reason.(v) in
  if ci < 0 then None
  else Some (Cnf.Clause.of_list (Array.to_list (Vec.get t.clauses ci)))

let trail t = Vec.to_list t.trail
let trail_position t v = t.trail_pos.(v)

let support t ~since l =
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  let rec walk l =
    let v = Lit.var l in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      if t.trail_pos.(v) < since then out := l :: !out
      else
        let ci = t.reason.(v) in
        if ci >= 0 then
          Array.iter
            (fun m -> if Lit.var m <> v then walk (Lit.negate m))
            (Vec.get t.clauses ci)
    end
  in
  walk l;
  !out

(* append a clause, computing its counters under the current root
   assignment; propagates if it became unit, flags inconsistency if
   falsified *)
let add_clause t c =
  if not (Cnf.Clause.is_tautology c) then begin
    let lits = Array.of_list (Cnf.Clause.to_list c) in
    Array.iter
      (fun l ->
         if Lit.var l >= t.nvars then invalid_arg "Bcp.add_clause: unknown var")
      lits;
    let ci = Vec.size t.clauses in
    Vec.push t.clauses lits;
    let ntrue =
      Array.fold_left (fun acc l -> if value t l = 1 then acc + 1 else acc) 0 lits
    in
    let nfree =
      Array.fold_left (fun acc l -> if value t l <> 0 then acc + 1 else acc) 0 lits
    in
    Vec.push t.ntrue ntrue;
    Vec.push t.nfree nfree;
    Array.iter (fun l -> t.occ.(l) <- ci :: t.occ.(l)) lits;
    if t.consistent && ntrue = 0 then begin
      if nfree = 0 then t.consistent <- false
      else if nfree = 1 then propagate t [ ci ]
    end
  end

let create f =
  let n = Cnf.Formula.nvars f in
  let t =
    {
      nvars = n;
      clauses = Vec.create ~dummy:[||] ();
      occ = Array.make (max 1 (2 * n)) [];
      ntrue = Vec.create ~dummy:0 ();
      nfree = Vec.create ~dummy:0 ();
      assign = Array.make (max 1 n) (-1);
      reason = Array.make (max 1 n) (-1);
      trail = Vec.create ~dummy:0 ();
      trail_pos = Array.make (max 1 n) (-1);
      consistent = true;
    }
  in
  Cnf.Formula.iter_clauses f (fun c -> add_clause t c);
  t
