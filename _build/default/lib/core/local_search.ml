module Lit = Cnf.Lit

type algorithm = Gsat | Walksat of float

type config = {
  algorithm : algorithm;
  max_flips : int;
  max_tries : int;
  seed : int;
}

let default =
  { algorithm = Walksat 0.5; max_flips = 100_000; max_tries = 10; seed = 1 }

type result = { outcome : Types.outcome; flips : int; tries : int }

type state = {
  nvars : int;
  clauses : int array array;
  occ : int list array;      (* literal -> clause indices containing it *)
  assign : bool array;
  ntrue : int array;         (* per clause: satisfied literal count *)
  unsat : int Vec.t;         (* indices of currently unsatisfied clauses *)
  unsat_pos : int array;     (* clause -> position in [unsat] or -1 *)
  rng : Rng.t;
}

let lit_true s l = s.assign.(Lit.var l) = Lit.is_pos l

let add_unsat s ci =
  if s.unsat_pos.(ci) < 0 then begin
    s.unsat_pos.(ci) <- Vec.size s.unsat;
    Vec.push s.unsat ci
  end

let remove_unsat s ci =
  let pos = s.unsat_pos.(ci) in
  if pos >= 0 then begin
    let lastc = Vec.last s.unsat in
    Vec.set s.unsat pos lastc;
    s.unsat_pos.(lastc) <- pos;
    ignore (Vec.pop s.unsat);
    s.unsat_pos.(ci) <- -1
  end

let flip s v =
  let old_lit = Lit.of_var v s.assign.(v) in
  s.assign.(v) <- not s.assign.(v);
  List.iter
    (fun ci ->
       s.ntrue.(ci) <- s.ntrue.(ci) - 1;
       if s.ntrue.(ci) = 0 then add_unsat s ci)
    s.occ.(old_lit);
  List.iter
    (fun ci ->
       s.ntrue.(ci) <- s.ntrue.(ci) + 1;
       if s.ntrue.(ci) = 1 then remove_unsat s ci)
    s.occ.(Lit.negate old_lit)

(* clauses that would newly become unsatisfied if [v] flipped *)
let break_count s v =
  let crit = Lit.of_var v s.assign.(v) in
  List.fold_left
    (fun acc ci -> if s.ntrue.(ci) = 1 then acc + 1 else acc)
    0 s.occ.(crit)

(* clauses newly satisfied minus newly broken *)
let gain s v =
  let crit = Lit.of_var v s.assign.(v) in
  let makes =
    List.fold_left
      (fun acc ci -> if s.ntrue.(ci) = 0 then acc + 1 else acc)
      0
      s.occ.(Lit.negate crit)
  in
  makes - break_count s v

let random_restart s =
  for v = 0 to s.nvars - 1 do
    s.assign.(v) <- Rng.bool s.rng
  done;
  Vec.clear s.unsat;
  Array.fill s.unsat_pos 0 (Array.length s.unsat_pos) (-1);
  Array.iteri
    (fun ci c ->
       let n = Array.fold_left (fun acc l -> if lit_true s l then acc + 1 else acc) 0 c in
       s.ntrue.(ci) <- n;
       if n = 0 && Array.length c > 0 then add_unsat s ci)
    s.clauses

let pick_walksat s noise =
  let ci = Vec.get s.unsat (Rng.int s.rng (Vec.size s.unsat)) in
  let c = s.clauses.(ci) in
  if Rng.float s.rng < noise then Lit.var c.(Rng.int s.rng (Array.length c))
  else begin
    let best = ref (Lit.var c.(0)) and bb = ref max_int in
    Array.iter
      (fun l ->
         let b = break_count s (Lit.var l) in
         if b < !bb then begin
           bb := b;
           best := Lit.var l
         end)
      c;
    !best
  end

let pick_gsat s =
  let best = ref 0 and bg = ref min_int in
  for v = 0 to s.nvars - 1 do
    let g = gain s v in
    if g > !bg then begin
      bg := g;
      best := v
    end
  done;
  !best

let solve ?(config = default) f =
  let n = Cnf.Formula.nvars f in
  let clause_arrays =
    Cnf.Formula.clauses f
    |> Array.map (fun c -> Array.of_list (Cnf.Clause.to_list c))
  in
  let nclauses = Array.length clause_arrays in
  let s =
    {
      nvars = n;
      clauses = clause_arrays;
      occ = Array.make (max 1 (2 * n)) [];
      assign = Array.make (max 1 n) false;
      ntrue = Array.make (max 1 nclauses) 0;
      unsat = Vec.create ~dummy:0 ();
      unsat_pos = Array.make (max 1 nclauses) (-1);
      rng = Rng.create config.seed;
    }
  in
  Array.iteri
    (fun ci c -> Array.iter (fun l -> s.occ.(l) <- ci :: s.occ.(l)) c)
    s.clauses;
  let has_empty = Array.exists (fun c -> Array.length c = 0) s.clauses in
  let flips = ref 0 and tries = ref 0 in
  let found = ref None in
  while !found = None && !tries < config.max_tries && not has_empty do
    incr tries;
    random_restart s;
    let local_flips = ref 0 in
    while !found = None && !local_flips < config.max_flips do
      if Vec.is_empty s.unsat then found := Some (Array.copy s.assign)
      else begin
        incr local_flips;
        incr flips;
        let v =
          match config.algorithm with
          | Walksat noise -> pick_walksat s noise
          | Gsat -> pick_gsat s
        in
        flip s v
      end
    done;
    if !found = None && Vec.is_empty s.unsat then
      found := Some (Array.copy s.assign)
  done;
  let outcome =
    match !found with
    | Some m -> Types.Sat m
    | None -> Types.Unknown "local search: flip budget exhausted"
  in
  { outcome; flips = !flips; tries = !tries }
