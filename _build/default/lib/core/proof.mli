(** Reverse-unit-propagation (RUP) proof checking.

    A CDCL run with [proof_logging] emits its learned clauses in
    derivation order.  Each learned clause C is {e RUP} with respect to
    the clauses known before it: asserting the negation of every literal
    of C and unit-propagating yields a conflict.  Replaying the sequence
    therefore verifies, independently of the solver's internals, that
    every recorded clause is an implicate — and an [UNSAT] answer is
    certified when the accumulated clause set propagates to a root
    conflict.

    This is the certification mechanism modern solvers grew out of the
    clause-recording idea the paper describes in Sec. 4.1. *)

type verdict =
  | Valid_refutation
      (** all steps RUP and the final clause set is root-inconsistent:
          the formula is certified unsatisfiable *)
  | Valid_derivation
      (** all steps RUP, no final conflict (the run ended SAT or the
          proof is a partial derivation) *)
  | Invalid_step of int
      (** the clause at this index (0-based) is not RUP *)

val check : Cnf.Formula.t -> Cnf.Clause.t list -> verdict

val solve_certified :
  ?config:Types.config -> Cnf.Formula.t -> Types.outcome * verdict
(** Convenience: solve with proof logging forced on and check the
    emitted proof.  An [Unsat] outcome paired with anything but
    [Valid_refutation] indicates a solver defect. *)
