(** Exhaustive-enumeration reference solver, for tests and tiny instances
    (up to ~24 variables). *)

val solve : Cnf.Formula.t -> Types.outcome
(** Tries all assignments in lexicographic order.  Raises
    [Invalid_argument] beyond 24 variables. *)

val count_models : Cnf.Formula.t -> int

val models : Cnf.Formula.t -> bool array list
(** All satisfying assignments (tests only). *)
