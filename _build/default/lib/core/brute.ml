let check_size f =
  if Cnf.Formula.nvars f > 24 then invalid_arg "Brute: too many variables"

let fold f init g =
  check_size g;
  let n = Cnf.Formula.nvars g in
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    let value v = mask land (1 lsl v) <> 0 in
    if Cnf.Formula.eval value g then acc := f !acc mask
  done;
  !acc

let mask_to_model n mask = Array.init n (fun v -> mask land (1 lsl v) <> 0)

let solve g =
  match fold (fun acc m -> match acc with None -> Some m | some -> some) None g with
  | Some mask -> Types.Sat (mask_to_model (Cnf.Formula.nvars g) mask)
  | None -> Types.Unsat

let count_models g = fold (fun acc _ -> acc + 1) 0 g

let models g =
  let n = Cnf.Formula.nvars g in
  List.rev (fold (fun acc m -> mask_to_model n m :: acc) [] g)
