(** Stålmarck-style saturation (Sheeran & Stålmarck [34] in the paper's
    survey of SAT approaches).

    The k-saturation procedure applies the {e dilemma rule}: split on a
    variable, propagate both branches (recursively saturating at depth
    k-1), and keep the assignments common to both.  0-saturation is unit
    propagation; depth-k saturation is a polynomial-time, incomplete
    proof procedure that refutes exactly the formulas of proof hardness
    at most k.  The paper notes that, unlike backtrack search, such
    procedures have not displaced CDCL for EDA — experiment E15 measures
    both sides of that comparison. *)

type result =
  | Refuted of int
      (** unsatisfiability proven; the argument is the saturation depth
          that closed the proof *)
  | Saturated of Cnf.Lit.t list
      (** fixpoint reached without refutation: the returned literals are
          forced in every model (possibly empty); the formula may still
          be either satisfiable or unsatisfiable *)

val saturate : ?depth:int -> Cnf.Formula.t -> result
(** Saturates at increasing depths up to [depth] (default 1). *)

val prove_unsat : ?depth:int -> Cnf.Formula.t -> bool
(** [true] only when saturation refutes the formula (sound, incomplete). *)
