(** Standalone Boolean constraint propagation over a static clause set,
    with checkpoints and reason tracking.

    This is the implication engine used by preprocessing (failed-literal
    probing) and by recursive learning on CNF formulas (Sec. 4.2), where
    each case split needs its implied assignments and the clauses that
    produced them. *)

type t

val create : Cnf.Formula.t -> t
(** Builds the engine and propagates the formula's unit clauses.
    Check {!is_consistent} afterwards. *)

val add_clause : t -> Cnf.Clause.t -> unit
(** Appends a clause at the root level (no assumptions may be active)
    and propagates.  Used by the proof checker to grow the clause set as
    a derivation is replayed. *)

val is_consistent : t -> bool
(** [false] once a conflict was reached at the root level. *)

val nvars : t -> int
val value : t -> Cnf.Lit.t -> int
(** 1 true, 0 false, -1 unassigned. *)

val value_var : t -> int -> int

val checkpoint : t -> int
(** Returns a mark for {!backtrack}. *)

val backtrack : t -> int -> unit

val assume : t -> Cnf.Lit.t -> Cnf.Lit.t list option
(** [assume t l] assigns [l] and propagates.  Returns [Some implied] (the
    newly assigned literals, [l] first) or [None] on conflict, in which
    case the engine has already undone the assumption's consequences and
    the assumption itself. *)

val add_unit : t -> Cnf.Lit.t -> bool
(** Permanently asserts a literal at the current level; returns [false]
    on conflict (engine state then inconsistent — only meaningful at the
    root). *)

val reason : t -> int -> Cnf.Clause.t option
(** [reason t v] is the clause that implied variable [v]'s current value,
    or [None] for assumptions, root units given in the formula, or
    unassigned variables. *)

val trail : t -> Cnf.Lit.t list
(** Currently assigned literals, oldest first. *)

val trail_position : t -> int -> int
(** [trail_position t v] is the position of variable [v]'s assignment on
    the trail, or [-1] when unassigned. *)

val support : t -> since:int -> Cnf.Lit.t -> Cnf.Lit.t list
(** [support t ~since l] — for a literal [l] implied after checkpoint
    [since], the set of literals assigned *before* [since] that the
    implication chain of [l] rests on (the "explanation" antecedents of
    recursive learning).  Assumes [l] is currently assigned true. *)
