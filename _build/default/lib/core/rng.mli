(** Deterministic pseudo-random numbers (xorshift64-star).

    All randomization in the solver family flows through this module so
    experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator; any seed is accepted (0 is
    remapped internally). *)

val int : t -> int -> int
(** [int rng bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val copy : t -> t
