module Lit = Cnf.Lit

type result =
  | Refuted of int
  | Saturated of Cnf.Lit.t list

exception Contradiction

(* One depth-k saturation round over every variable; returns true when
   some new literal was asserted.  Raises [Contradiction] when both
   branches of some split conflict. *)
let rec round bcp ~depth =
  let progress = ref false in
  for v = 0 to Bcp.nvars bcp - 1 do
    if Bcp.value_var bcp v < 0 then begin
      let branch l =
        let mark = Bcp.checkpoint bcp in
        match Bcp.assume bcp l with
        | None -> None
        | Some implied ->
          let implied =
            if depth <= 1 then implied
            else begin
              (* saturate recursively inside the branch *)
              (try
                 while round bcp ~depth:(depth - 1) do
                   ()
                 done
               with Contradiction ->
                 Bcp.backtrack bcp mark;
                 raise Exit);
              (* everything implied since the split *)
              List.filteri (fun i _ -> i >= mark) (Bcp.trail bcp)
            end
          in
          Bcp.backtrack bcp mark;
          Some implied
      in
      let pos = (try branch (Lit.pos v) with Exit -> None) in
      let neg = (try branch (Lit.neg_of_var v) with Exit -> None) in
      match pos, neg with
      | None, None -> raise Contradiction
      | None, Some _ ->
        if not (Bcp.add_unit bcp (Lit.neg_of_var v)) then raise Contradiction;
        progress := true
      | Some _, None ->
        if not (Bcp.add_unit bcp (Lit.pos v)) then raise Contradiction;
        progress := true
      | Some il, Some ir ->
        (* dilemma: assignments implied by both branches are necessary *)
        let common = List.filter (fun l -> List.mem l ir) il in
        List.iter
          (fun l ->
             if Bcp.value bcp l < 0 then begin
               if not (Bcp.add_unit bcp l) then raise Contradiction;
               progress := true
             end)
          common
    end
  done;
  !progress

let saturate ?(depth = 1) f =
  let bcp = Bcp.create f in
  if not (Bcp.is_consistent bcp) then Refuted 0
  else begin
    let rec try_depth d =
      if d > depth then
        Saturated (Bcp.trail bcp)
      else
        match
          (try
             while round bcp ~depth:d do
               ()
             done;
             `Saturated
           with Contradiction -> `Refuted)
        with
        | `Refuted -> Refuted d
        | `Saturated -> try_depth (d + 1)
    in
    try_depth 1
  end

let prove_unsat ?depth f =
  match saturate ?depth f with
  | Refuted _ -> true
  | Saturated _ -> false
