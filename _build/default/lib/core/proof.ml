module Lit = Cnf.Lit

type verdict =
  | Valid_refutation
  | Valid_derivation
  | Invalid_step of int

(* A clause is RUP iff asserting the negations of its literals conflicts
   under unit propagation over the current clause set. *)
let rup bcp clause =
  let mark = Bcp.checkpoint bcp in
  let rec refute = function
    | [] -> false (* all negations stood: not RUP *)
    | l :: rest -> (
        match Bcp.assume bcp (Lit.negate l) with
        | None -> true
        | Some _ -> refute rest)
  in
  let result = refute (Cnf.Clause.to_list clause) in
  Bcp.backtrack bcp mark;
  result

let check formula proof =
  let bcp = Bcp.create formula in
  let rec steps i = function
    | [] -> if Bcp.is_consistent bcp then Valid_derivation else Valid_refutation
    | c :: rest ->
      if not (Bcp.is_consistent bcp) then Valid_refutation
      else if Cnf.Clause.is_empty c then
        (* an explicit empty clause must itself be RUP *)
        if rup bcp c then Valid_refutation else Invalid_step i
      else if rup bcp c then begin
        Bcp.add_clause bcp c;
        steps (i + 1) rest
      end
      else Invalid_step i
  in
  steps 0 proof

let solve_certified ?(config = Types.default) formula =
  let config = { config with Types.proof_logging = true } in
  let solver = Cdcl.create ~config formula in
  let outcome = Cdcl.solve solver in
  (outcome, check formula (Cdcl.proof solver))
