type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int seed in
  { state = (if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s) }

let next rng =
  let x = rng.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  rng.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (next rng) land max_int in
  r mod bound

let float rng =
  let r = Int64.to_int (next rng) land max_int in
  float_of_int r /. float_of_int max_int

let bool rng = Int64.to_int (next rng) land 1 = 1
let copy rng = { state = rng.state }
