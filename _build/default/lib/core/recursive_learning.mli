(** Recursive learning on CNF formulas (Sec. 4.2, Figure 4).

    For a clause that is neither satisfied nor resolved under the current
    (assumption) assignment, each of its free literals is assumed in turn
    and propagated; assignments implied in {e every} branch are necessary
    for the clause — hence for the formula — to be satisfied.  Each
    necessary assignment is recorded together with an explanation clause:
    an implicate of the formula built from the assumption-level
    antecedents the branches actually used, so the same assignments are
    never re-derived during subsequent search (the improvement over
    circuit recursive learning that the paper emphasises).

    Depth [k] recursion performs nested case splits inside branches that
    are not conclusive on their own. *)

type result = {
  necessary : Cnf.Lit.t list;
      (** assignments implied under the given assumptions *)
  implicates : Cnf.Clause.t list;
      (** one explanation clause per necessary assignment; with no
          assumptions these are unit clauses *)
  unsat : bool;
      (** some clause cannot be satisfied under the assumptions *)
  splits : int;  (** number of case splits performed *)
}

val learn :
  ?assumptions:Cnf.Lit.t list ->
  ?depth:int ->
  ?max_clause_size:int ->
  ?max_passes:int ->
  Cnf.Formula.t ->
  result
(** Defaults: no assumptions, depth 1, clauses up to size 8, 4 passes
    (each pass re-examines clauses with the newly derived assignments in
    force). *)

val strengthen :
  ?depth:int -> Cnf.Formula.t -> Cnf.Formula.t * result
(** Preprocessing wrapper: runs {!learn} without assumptions and returns
    the formula extended with the derived unit implicates. *)
