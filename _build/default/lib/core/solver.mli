(** Unified solving front-end: preprocessing pipeline + engine choice +
    model reconstruction.

    This is the paper's overall recipe — [Preprocess()] followed by
    backtrack search — packaged so applications and experiments choose
    techniques declaratively. *)

type engine =
  | Cdcl of Types.config
  | Dpll of Types.config
  | Walksat of Local_search.config

type pipeline = {
  preprocess : bool;           (** unit/pure/subsumption/strengthening *)
  probe_failed_literals : bool;
  equivalence : bool;          (** equivalency reasoning (Sec. 6) *)
  recursive_learning : int;    (** recursion depth; 0 disables (Sec. 4.2) *)
}

val no_pipeline : pipeline
val full_pipeline : pipeline

type report = {
  outcome : Types.outcome;
  solver_stats : Types.stats option;  (** absent for local search *)
  preprocess_stats : Preprocess.stats option;
  equivalence_merged : int;
  recursive_learning_implicates : int;
  time_seconds : float;
}

val solve : ?engine:engine -> ?pipeline:pipeline -> Cnf.Formula.t -> report
(** Models returned in [outcome] are models of the {e original}
    formula. *)

val solve_dimacs : ?engine:engine -> ?pipeline:pipeline -> string -> report
(** Convenience: parse DIMACS text and solve. *)
