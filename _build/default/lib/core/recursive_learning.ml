module Lit = Cnf.Lit
module Clause = Cnf.Clause

type result = {
  necessary : Lit.t list;
  implicates : Clause.t list;
  unsat : bool;
  splits : int;
}

module LitSet = Set.Make (Int)

type env = {
  bcp : Bcp.t;
  mark_root : int; (* trail position after root-level propagation *)
  assumptions : Lit.t list;
  (* support atoms for units we derived and asserted: citing a derived
     literal in a later explanation expands into what it rests on, so
     every recorded clause is an implicate of the original formula *)
  derived_support : (int, LitSet.t) Hashtbl.t;
  mutable splits : int;
}

(* Assumption-level atoms explaining why [l] (currently true) holds.
   Root facts are unconditional and dropped; derived units are expanded. *)
let explain env ~since l =
  let raw = Bcp.support env.bcp ~since l in
  List.fold_left
    (fun acc m ->
       let v = Lit.var m in
       if Bcp.trail_position env.bcp v < env.mark_root then acc
       else
         match Hashtbl.find_opt env.derived_support v with
         | Some atoms -> LitSet.union atoms acc
         | None -> LitSet.add m acc)
    LitSet.empty raw

let free_lits env c =
  List.filter (fun l -> Bcp.value env.bcp l < 0) (Clause.to_list c)

let clause_unresolved env c ~max_clause_size =
  Clause.size c <= max_clause_size
  && (not (List.exists (fun l -> Bcp.value env.bcp l = 1) (Clause.to_list c)))
  && List.length (free_lits env c) >= 2

(* Case split on clause [c] at the given recursion depth.

   Each free literal is assumed and propagated; at depth > 1, unresolved
   clauses inside the branch are split recursively and their common
   implications are asserted within the branch before collecting its
   implied set.  Depth-1 explanations are precise; recursion depth > 1
   marks its derivations with the coarse support (all assumptions), which
   keeps recorded clauses sound.

   Returns [None] when every branch conflicts, otherwise the literals
   implied in all surviving branches, each with its support atoms, and a
   flag telling whether some branch was pruned by a conflict.  A pruned
   branch is impossible only {e given the assumption context}, so any
   derivation that relied on the pruning must cite every assumption —
   the caller widens those supports to the coarse set. *)
let rec split env c ~depth ~max_clause_size ~inner_limit all_clauses =
  env.splits <- env.splits + 1;
  let coarse =
    lazy (LitSet.of_list env.assumptions)
  in
  let pruned = ref false in
  let branch l =
    let mark = Bcp.checkpoint env.bcp in
    match Bcp.assume env.bcp l with
    | None ->
      pruned := true;
      None
    | Some implied ->
      let conflict_inside = ref false in
      let extra = ref [] in
      if depth > 1 then begin
        let examined = ref 0 in
        Array.iter
          (fun c' ->
             if (not !conflict_inside) && !examined < inner_limit
                && clause_unresolved env c' ~max_clause_size
             then begin
               incr examined;
               match
                 split env c' ~depth:(depth - 1) ~max_clause_size
                   ~inner_limit all_clauses
               with
               | None -> conflict_inside := true
               | Some commons ->
                 List.iter
                   (fun (x, _) ->
                      if Bcp.value env.bcp x < 0 then
                        if Bcp.add_unit env.bcp x then extra := x :: !extra
                        else conflict_inside := true)
                   commons
             end)
          all_clauses
      end;
      if !conflict_inside then begin
        Bcp.backtrack env.bcp mark;
        pruned := true;
        None
      end
      else begin
        let precise x = (x, explain env ~since:mark x) in
        let with_support =
          List.map precise implied
          @ List.map (fun x -> (x, Lazy.force coarse)) !extra
        in
        Bcp.backtrack env.bcp mark;
        Some with_support
      end
  in
  let branch_results = List.filter_map branch (free_lits env c) in
  match branch_results with
  | [] -> None
  | first :: rest ->
    let common =
      List.fold_left
        (fun acc br ->
           List.filter_map
             (fun (x, sup) ->
                match List.assoc_opt x br with
                | Some sup' -> Some (x, LitSet.union sup sup')
                | None -> None)
             acc)
        first rest
    in
    let widen (x, sup) =
      if !pruned then (x, LitSet.union (Lazy.force coarse) sup) else (x, sup)
    in
    Some
      (List.map widen
         (List.filter (fun (x, _) -> Bcp.value env.bcp x < 0) common))

(* Assumption-level reasons why the already-falsified literals of [c]
   are false; they join every explanation derived from [c]. *)
let falsified_support env c =
  let since = Bcp.checkpoint env.bcp in
  List.fold_left
    (fun acc m ->
       if Bcp.value env.bcp m = 0 then
         LitSet.union acc (explain env ~since (Lit.negate m))
       else acc)
    LitSet.empty (Clause.to_list c)

let learn ?(assumptions = []) ?(depth = 1) ?(max_clause_size = 8)
    ?(max_passes = 4) f =
  let bcp = Bcp.create f in
  let fail splits = { necessary = []; implicates = []; unsat = true; splits } in
  if not (Bcp.is_consistent bcp) then fail 0
  else begin
    let env =
      {
        bcp;
        mark_root = Bcp.checkpoint bcp;
        assumptions;
        derived_support = Hashtbl.create 16;
        splits = 0;
      }
    in
    if not (List.for_all (fun a -> Bcp.add_unit bcp a) assumptions) then fail 0
    else begin
      let necessary = ref [] and implicates = ref [] in
      let unsat = ref false in
      let clauses = Cnf.Formula.clauses f in
      let pass = ref 0 and progress = ref true in
      while (not !unsat) && !progress && !pass < max_passes do
        incr pass;
        progress := false;
        Array.iter
          (fun c ->
             if (not !unsat) && clause_unresolved env c ~max_clause_size
             then begin
               let fsup = falsified_support env c in
               match
                 split env c ~depth ~max_clause_size ~inner_limit:16 clauses
               with
               | None -> unsat := true
               | Some commons ->
                 List.iter
                   (fun (x, sup) ->
                      if Bcp.value env.bcp x < 0 then begin
                        let atoms = LitSet.union sup fsup in
                        let clause =
                          Clause.of_list
                            (x :: List.map Lit.negate (LitSet.elements atoms))
                        in
                        necessary := x :: !necessary;
                        implicates := clause :: !implicates;
                        Hashtbl.replace env.derived_support (Lit.var x) atoms;
                        if Bcp.add_unit env.bcp x then progress := true
                        else unsat := true
                      end)
                   commons
             end)
          clauses
      done;
      {
        necessary = List.rev !necessary;
        implicates = List.rev !implicates;
        unsat = !unsat;
        splits = env.splits;
      }
    end
  end

let strengthen ?(depth = 1) f =
  let r = learn ~depth f in
  let g = Cnf.Formula.copy f in
  if r.unsat then Cnf.Formula.add_clause_l g []
  else List.iter (fun c -> Cnf.Formula.add_clause g c) r.implicates;
  (g, r)
