(** DPLL baseline: backtrack search with unit propagation, chronological
    backtracking and {e no} clause learning.

    This is the point of comparison for the paper's Section 4.1 claims:
    modern solvers owe their performance to conflict analysis — learning
    and non-chronological backtracking — which this solver deliberately
    lacks.  Decision heuristics are shared with {!Cdcl} via
    {!Types.config} (VSIDS degenerates to fixed-order here since there are
    no conflict clauses to bump activity). *)

val solve :
  ?config:Types.config -> ?assumptions:Cnf.Lit.t list -> Cnf.Formula.t ->
  Types.outcome * Types.stats
(** One-shot solve.  [max_decisions]/[max_conflicts] budgets yield
    [Unknown].  Assumptions are installed as the first decisions; an
    unsatisfiable result under assumptions is reported as
    [Unsat_assuming] with the full assumption list (no core
    minimization). *)
