lib/core/solver.ml: Array Cdcl Cnf Dpll Equivalence List Local_search Preprocess Recursive_learning Types Unix
