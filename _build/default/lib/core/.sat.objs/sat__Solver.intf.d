lib/core/solver.mli: Cnf Local_search Preprocess Types
