lib/core/equivalence.mli: Cnf
