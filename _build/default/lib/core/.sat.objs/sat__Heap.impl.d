lib/core/heap.ml: Array List
