lib/core/vec.mli:
