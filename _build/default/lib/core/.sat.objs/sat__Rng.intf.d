lib/core/rng.mli:
