lib/core/preprocess.mli: Cnf
