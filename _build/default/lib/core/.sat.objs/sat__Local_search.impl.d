lib/core/local_search.ml: Array Cnf List Rng Types Vec
