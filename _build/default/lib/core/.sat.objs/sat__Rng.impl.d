lib/core/rng.ml: Int64
