lib/core/heap.mli:
