lib/core/recursive_learning.mli: Cnf
