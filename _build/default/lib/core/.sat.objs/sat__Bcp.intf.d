lib/core/bcp.mli: Cnf
