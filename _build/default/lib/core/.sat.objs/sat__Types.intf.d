lib/core/types.mli: Cnf Format
