lib/core/preprocess.ml: Array Bcp Cnf List
