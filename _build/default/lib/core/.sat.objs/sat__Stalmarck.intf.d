lib/core/stalmarck.mli: Cnf
