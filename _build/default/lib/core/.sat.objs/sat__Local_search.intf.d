lib/core/local_search.mli: Cnf Types
