lib/core/cdcl.mli: Cnf Types
