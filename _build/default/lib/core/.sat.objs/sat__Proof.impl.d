lib/core/proof.ml: Bcp Cdcl Cnf Types
