lib/core/dpll.mli: Cnf Types
