lib/core/equivalence.ml: Array Cnf Hashtbl List Vec
