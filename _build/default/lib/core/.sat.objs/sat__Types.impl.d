lib/core/types.ml: Cnf Format
