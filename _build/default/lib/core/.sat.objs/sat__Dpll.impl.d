lib/core/dpll.ml: Array Cnf Hashtbl List Option Rng Types Vec
