lib/core/proof.mli: Cnf Types
