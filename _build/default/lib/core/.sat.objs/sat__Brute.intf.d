lib/core/brute.mli: Cnf Types
