lib/core/stalmarck.ml: Bcp Cnf List
