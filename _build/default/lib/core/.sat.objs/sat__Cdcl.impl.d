lib/core/cdcl.ml: Array Cnf Float Hashtbl Heap Int List Option Rng Types Vec
