lib/core/brute.ml: Array Cnf List Types
