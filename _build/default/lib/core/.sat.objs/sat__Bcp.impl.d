lib/core/bcp.ml: Array Cnf Hashtbl List Queue Vec
