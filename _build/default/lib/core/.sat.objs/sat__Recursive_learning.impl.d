lib/core/recursive_learning.ml: Array Bcp Cnf Hashtbl Int Lazy List Set
