(** Reduced ordered binary decision diagrams.

    The comparison technology of the paper's introduction: "SAT packages
    are currently expected to have an impact on EDA applications similar
    to that of BDD packages".  Used by the equivalence-checking
    experiments to reproduce the classic SAT-vs-BDD trade-off (BDDs
    canonical but exponential on multipliers; SAT robust).

    A manager hash-conses nodes for one fixed variable order (variable
    index = order position).  Operations are memoised.  A node budget
    guards against blow-up: crossing it raises {!Node_limit}. *)

type manager
type t
(** A BDD handle, valid only with the manager that produced it.
    Equality of handles ({!equal}) is semantic equivalence. *)

exception Node_limit

val manager : ?node_limit:int -> unit -> manager
(** [node_limit] default: 1_000_000 live nodes. *)

val node_count : manager -> int
(** Total unique nodes allocated so far. *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** [var m i] is the function of variable [i].  Raises
    [Invalid_argument] for negative [i]. *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val iff : manager -> t -> t -> t
val imp : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Constant-time semantic equivalence (canonicity). *)

val is_zero : t -> bool
val is_one : t -> bool

val restrict : manager -> t -> int -> bool -> t
(** Cofactor with respect to a variable value. *)

val exists : manager -> int list -> t -> t
(** Existential quantification over the listed variables. *)

val size : t -> int
(** Number of distinct internal nodes reachable from the handle. *)

val eval : t -> (int -> bool) -> bool

val sat_count : manager -> nvars:int -> t -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : t -> (int * bool) list option
(** Some partial assignment reaching [one], or [None] for [zero]. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)
