exception Node_limit

type t = Zero | One | Node of { id : int; var : int; lo : t; hi : t }

type manager = {
  node_limit : int;
  mutable next_id : int;
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo id, hi id) *)
  ite_memo : (int * int * int, t) Hashtbl.t;
}

let manager ?(node_limit = 1_000_000) () =
  {
    node_limit;
    next_id = 2;
    unique = Hashtbl.create 1024;
    ite_memo = Hashtbl.create 1024;
  }

let node_count m = m.next_id - 2
let id = function Zero -> 0 | One -> 1 | Node n -> n.id
let top_var = function Zero | One -> max_int | Node n -> n.var

let mk m v lo hi =
  if lo == hi then lo
  else begin
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if node_count m >= m.node_limit then raise Node_limit;
      let n = Node { id = m.next_id; var = v; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n
  end

let zero _ = Zero
let one _ = One

let var m i =
  if i < 0 then invalid_arg "Bdd.var";
  mk m i Zero One

(* cofactor of [f] with respect to the top variable [v] (v <= top f) *)
let cof f v b =
  match f with
  | Node n when n.var = v -> if b then n.hi else n.lo
  | Zero | One | Node _ -> f

let rec ite m f g h =
  match f, g, h with
  | One, _, _ -> g
  | Zero, _, _ -> h
  | _, One, Zero -> f
  | _ when g == h -> g
  | _ ->
    let key = (id f, id g, id h) in
    (match Hashtbl.find_opt m.ite_memo key with
     | Some r -> r
     | None ->
       let v = min (top_var f) (min (top_var g) (top_var h)) in
       let lo = ite m (cof f v false) (cof g v false) (cof h v false) in
       let hi = ite m (cof f v true) (cof g v true) (cof h v true) in
       let r = mk m v lo hi in
       Hashtbl.add m.ite_memo key r;
       r)

let not_ m f = ite m f Zero One
let and_ m f g = ite m f g Zero
let or_ m f g = ite m f One g
let xor m f g = ite m f (not_ m g) g
let iff m f g = ite m f g (not_ m g)
let imp m f g = ite m f g One
let equal a b = a == b
let is_zero f = f == Zero
let is_one f = f == One

let restrict m f v b =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f with
    | Zero | One -> f
    | Node n ->
      if n.var > v then f
      else if n.var = v then if b then n.hi else n.lo
      else (
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
          let r = mk m n.var (go n.lo) (go n.hi) in
          Hashtbl.add memo n.id r;
          r)
  in
  go f

let exists m vs f =
  List.fold_left
    (fun acc v -> or_ m (restrict m acc v false) (restrict m acc v true))
    f vs

let size f =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        go n.lo;
        go n.hi
      end
  in
  go f;
  Hashtbl.length seen

let rec eval f env =
  match f with
  | Zero -> false
  | One -> true
  | Node n -> if env n.var then eval n.hi env else eval n.lo env

let sat_count _ ~nvars f =
  let memo = Hashtbl.create 64 in
  (* models over variables with index >= top_var, padded below *)
  let rec go f =
    match f with
    | Zero -> 0.
    | One -> 1.
    | Node n -> (
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
          let weight sub =
            let gap = min (top_var sub) nvars - n.var - 1 in
            go sub *. (2. ** float_of_int gap)
          in
          let r = weight n.lo +. weight n.hi in
          Hashtbl.add memo n.id r;
          r)
  in
  go f *. (2. ** float_of_int (min (top_var f) nvars))

let any_sat f =
  let rec go acc = function
    | Zero -> None
    | One -> Some (List.rev acc)
    | Node n -> (
        match go ((n.var, false) :: acc) n.lo with
        | Some r -> Some r
        | None -> go ((n.var, true) :: acc) n.hi)
  in
  go [] f

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        Hashtbl.replace vars n.var ();
        go n.lo;
        go n.hi
      end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Int.compare
