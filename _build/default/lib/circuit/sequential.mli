(** Sequential circuits for bounded model checking (Sec. 3, [5]).

    A sequential circuit is a combinational netlist whose inputs split
    into primary inputs and current-state inputs; designated outputs
    compute the next state.  Observable outputs (including a property
    node) are ordinary netlist outputs. *)

type t = {
  comb : Netlist.t;
  primary_inputs : Netlist.node_id list;
  state_inputs : Netlist.node_id list;
  next_state : Netlist.node_id list;  (** aligned with [state_inputs] *)
  init : bool list;                   (** initial state values *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on malformed registers (length mismatches,
    state inputs that are not inputs of [comb]). *)

val step : t -> state:bool list -> inputs:bool array -> bool list * bool array
(** One clock cycle: returns (next state, output values).  The [inputs]
    array covers only the primary inputs, in order. *)

val simulate : t -> inputs:bool array list -> bool array list
(** Runs from the initial state; one output vector per cycle. *)

val counter : bits:int -> buggy_at:int option -> t
(** An up-counter (primary input [enable]) whose output [bad] rises when
    the count reaches [2^bits - 1].  With [buggy_at = Some k] the
    next-state logic erroneously jumps from count [k] straight to
    all-ones, so the shortest path to [bad] shrinks from [2^bits - 1]
    enabled cycles to [k + 1]. *)

val ring_counter : bits:int -> t
(** A one-hot token ring: the single token rotates one position per
    cycle.  Output [bad] rises if two tokens ever coexist — unreachable,
    and provable by 1-induction (the one-hot invariant is preserved by
    rotation), which plain BMC can never conclude. *)

val lfsr : bits:int -> taps:int list -> t
(** Fibonacci LFSR with the given tap positions; output [tap0] exposes
    bit 0.  No primary inputs. *)
