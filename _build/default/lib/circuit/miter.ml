module N = Netlist

let build c1 c2 =
  let in1 = N.inputs c1 and in2 = N.inputs c2 in
  if List.length in1 <> List.length in2 then
    invalid_arg "Miter.build: input counts differ";
  let out1 = N.output_ids c1 and out2 = N.output_ids c2 in
  if List.length out1 <> List.length out2 then
    invalid_arg "Miter.build: output counts differ";
  let m = N.create () in
  let shared =
    List.mapi (fun i _ -> N.add_input ~name:(Printf.sprintf "pi%d" i) m) in1
  in
  let input_map ins =
    let table = Hashtbl.create 16 in
    List.iter2 (fun src dst -> Hashtbl.replace table src dst) ins shared;
    fun id -> Hashtbl.find_opt table id
  in
  let map1 = N.import c1 ~into:m ~map_node:(input_map in1) in
  let map2 = N.import c2 ~into:m ~map_node:(input_map in2) in
  let xors =
    List.map2
      (fun o1 o2 -> N.add_gate m Gate.Xor [ map1.(o1); map2.(o2) ])
      out1 out2
  in
  let diff =
    match xors with
    | [ x ] -> N.add_gate ~name:"diff" m Gate.Buf [ x ]
    | xs -> N.add_gate ~name:"diff" m Gate.Or xs
  in
  N.set_output m diff;
  m

let to_cnf c1 c2 =
  let m = build c1 c2 in
  let enc = Encode.encode m in
  (match N.output_ids m with
   | [ diff ] -> Encode.assert_output enc.Encode.formula (enc.Encode.lit_of_node diff) true
   | [] | _ :: _ -> assert false);
  (enc.Encode.formula, enc.Encode.lit_of_node)
