type t = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

let all = [ And; Or; Nand; Nor; Xor; Xnor; Not; Buf ]

let arity_ok g n =
  match g with
  | Not | Buf -> n = 1
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 2

let eval g ins =
  if not (arity_ok g (List.length ins)) then invalid_arg "Gate.eval: arity";
  match g, ins with
  | And, _ -> List.for_all Fun.id ins
  | Or, _ -> List.exists Fun.id ins
  | Nand, _ -> not (List.for_all Fun.id ins)
  | Nor, _ -> not (List.exists Fun.id ins)
  | Xor, _ -> List.fold_left ( <> ) false ins
  | Xnor, _ -> not (List.fold_left ( <> ) false ins)
  | Not, [ a ] -> not a
  | Buf, [ a ] -> a
  | (Not | Buf), _ -> assert false

let controlling = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf -> None

let inverting = function
  | Nand | Nor | Xnor | Not -> true
  | And | Or | Xor | Buf -> false

let controlled_output = function
  | And -> Some false
  | Nand -> Some true
  | Or -> Some true
  | Nor -> Some false
  | Xor | Xnor | Not | Buf -> None

let to_string = function
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

let pp ppf g = Format.pp_print_string ppf (to_string g)
