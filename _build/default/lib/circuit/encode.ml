module Lit = Cnf.Lit
module Clause = Cnf.Clause

(* Table 1.  For AND (x = AND(w1..wk)): (~x + wi) for each i, and
   (x + ~w1 + ... + ~wk); the others follow by duality/inversion. *)
let gate_clauses ~out ~ins g =
  let neg = Lit.negate in
  let mk = Clause.of_list in
  match g, ins with
  | Gate.And, _ ->
    mk (out :: List.map neg ins) :: List.map (fun w -> mk [ neg out; w ]) ins
  | Gate.Nand, _ ->
    mk (neg out :: List.map neg ins) :: List.map (fun w -> mk [ out; w ]) ins
  | Gate.Or, _ ->
    mk (neg out :: ins) :: List.map (fun w -> mk [ out; neg w ]) ins
  | Gate.Nor, _ ->
    mk (out :: ins) :: List.map (fun w -> mk [ neg out; neg w ]) ins
  | Gate.Not, [ w ] -> [ mk [ out; w ]; mk [ neg out; neg w ] ]
  | Gate.Buf, [ w ] -> [ mk [ out; neg w ]; mk [ neg out; w ] ]
  | Gate.Xor, [ a; b ] ->
    [ mk [ neg out; a; b ]; mk [ neg out; neg a; neg b ];
      mk [ out; neg a; b ]; mk [ out; a; neg b ] ]
  | Gate.Xnor, [ a; b ] ->
    [ mk [ out; a; b ]; mk [ out; neg a; neg b ];
      mk [ neg out; neg a; b ]; mk [ neg out; a; neg b ] ]
  | (Gate.Xor | Gate.Xnor), _ ->
    invalid_arg "Encode.gate_clauses: n-ary XOR/XNOR must be decomposed"
  | (Gate.Not | Gate.Buf), _ -> invalid_arg "Encode.gate_clauses: arity"

type mapping = {
  formula : Cnf.Formula.t;
  lit_of_node : Netlist.node_id -> Cnf.Lit.t;
}

let fresh_lit f = Lit.pos (Cnf.Formula.fresh_var f)

let add_gate_cnf f ~out ~ins g =
  match g with
  | Gate.Xor | Gate.Xnor when List.length ins > 2 ->
    (* left-to-right chain of binary XORs; the final stage absorbs the
       possible inversion *)
    let rec chain acc = function
      | [] -> acc
      | [ last ] ->
        let final = if g = Gate.Xor then Gate.Xor else Gate.Xnor in
        List.iter (Cnf.Formula.add_clause f)
          (gate_clauses ~out ~ins:[ acc; last ] final);
        out
      | w :: rest ->
        let aux = fresh_lit f in
        List.iter (Cnf.Formula.add_clause f)
          (gate_clauses ~out:aux ~ins:[ acc; w ] Gate.Xor);
        chain aux rest
    in
    (match ins with
     | a :: rest -> ignore (chain a rest)
     | [] -> invalid_arg "Encode: empty XOR")
  | _ -> List.iter (Cnf.Formula.add_clause f) (gate_clauses ~out ~ins g)

let encode_into f ?(pre = fun _ -> None) c =
  let n = Netlist.num_nodes c in
  let map = Array.make (max 1 n) (-1) in
  for id = 0 to n - 1 do
    match pre id with
    | Some l -> map.(id) <- l
    | None ->
      let out = fresh_lit f in
      map.(id) <- out;
      (match Netlist.node c id with
       | Netlist.Input -> ()
       | Netlist.Const b ->
         Cnf.Formula.add_clause_l f [ (if b then out else Lit.negate out) ]
       | Netlist.Gate (g, fs) ->
         let ins = List.map (fun x -> map.(x)) fs in
         add_gate_cnf f ~out ~ins g)
  done;
  fun id -> map.(id)

let encode c =
  let f = Cnf.Formula.create () in
  let lit_of_node = encode_into f c in
  { formula = f; lit_of_node }

let assert_output f l v =
  Cnf.Formula.add_clause_l f [ (if v then l else Lit.negate l) ]
