(** Miter construction for combinational equivalence checking (Sec. 3).

    Two circuits with matching input counts share their primary inputs;
    corresponding outputs are XORed and the disjunction of all the XORs is
    the single miter output: satisfiable (output 1 reachable) iff the
    circuits differ. *)

val build : Netlist.t -> Netlist.t -> Netlist.t
(** Inputs are matched positionally; raises [Invalid_argument] when input
    or output counts disagree.  The result's single output is named
    ["diff"]. *)

val to_cnf : Netlist.t -> Netlist.t -> Cnf.Formula.t * (Netlist.node_id -> Cnf.Lit.t)
(** [to_cnf c1 c2] is the CNF of [build c1 c2] with the miter output
    asserted to 1; the returned map covers the miter's nodes (the shared
    inputs come first, in input order). *)
