let word_width = 62
let mask = (1 lsl word_width) - 1

let eval_generic ~zero ~ones ~op c ins =
  let input_ids = Netlist.inputs c in
  if List.length input_ids <> Array.length ins then
    invalid_arg "Simulate: input count mismatch";
  let values = Array.make (max 1 (Netlist.num_nodes c)) zero in
  List.iteri (fun i id -> values.(id) <- ins.(i)) input_ids;
  for id = 0 to Netlist.num_nodes c - 1 do
    match Netlist.node c id with
    | Netlist.Input -> ()
    | Netlist.Const b -> values.(id) <- (if b then ones else zero)
    | Netlist.Gate (g, fs) -> values.(id) <- op g (List.map (fun f -> values.(f)) fs)
  done;
  values

let bool_op g vs = Gate.eval g vs

let word_op g vs =
  let conj = List.fold_left ( land ) mask vs in
  let disj = List.fold_left ( lor ) 0 vs in
  let parity = List.fold_left ( lxor ) 0 vs in
  match g, vs with
  | Gate.And, _ -> conj
  | Gate.Or, _ -> disj
  | Gate.Nand, _ -> lnot conj land mask
  | Gate.Nor, _ -> lnot disj land mask
  | Gate.Xor, _ -> parity
  | Gate.Xnor, _ -> lnot parity land mask
  | Gate.Not, [ a ] -> lnot a land mask
  | Gate.Buf, [ a ] -> a
  | (Gate.Not | Gate.Buf), _ -> invalid_arg "Simulate: arity"

let parallel_gate = word_op
let eval_all c ins = eval_generic ~zero:false ~ones:true ~op:bool_op c ins

let select_outputs c values =
  Netlist.outputs c |> List.map (fun (_, id) -> values.(id)) |> Array.of_list

let eval_outputs c ins = select_outputs c (eval_all c ins)
let eval_node c ins id = (eval_all c ins).(id)
let parallel_all c ins = eval_generic ~zero:0 ~ones:mask ~op:word_op c ins
let parallel_outputs c ins = select_outputs c (parallel_all c ins)

let random_words rng n =
  Array.init n (fun _ ->
      (* two 31-bit draws per 62-bit word *)
      let lo = Sat.Rng.int rng (1 lsl 31) in
      let hi = Sat.Rng.int rng (1 lsl 31) in
      (hi lsl 31) lor lo land mask)

type ternary = F | T | X

let t_not = function F -> T | T -> F | X -> X

let t_and vs =
  if List.exists (fun v -> v = F) vs then F
  else if List.for_all (fun v -> v = T) vs then T
  else X

let t_or vs =
  if List.exists (fun v -> v = T) vs then T
  else if List.for_all (fun v -> v = F) vs then F
  else X

let t_xor vs =
  if List.exists (fun v -> v = X) vs then X
  else if List.fold_left (fun acc v -> acc <> (v = T)) false vs then T
  else F

let ternary_op g vs =
  match g with
  | Gate.And -> t_and vs
  | Gate.Nand -> t_not (t_and vs)
  | Gate.Or -> t_or vs
  | Gate.Nor -> t_not (t_or vs)
  | Gate.Xor -> t_xor vs
  | Gate.Xnor -> t_not (t_xor vs)
  | Gate.Not -> (match vs with [ a ] -> t_not a | _ -> invalid_arg "Simulate: arity")
  | Gate.Buf -> (match vs with [ a ] -> a | _ -> invalid_arg "Simulate: arity")

let eval3_all c ins = eval_generic ~zero:F ~ones:T ~op:ternary_op c ins

let eval3_outputs c ins = select_outputs c (eval3_all c ins)

let ternary_of_pattern c pattern =
  Netlist.inputs c
  |> List.map (fun id ->
      match List.assoc_opt id pattern with
      | Some true -> T
      | Some false -> F
      | None -> X)
  |> Array.of_list
