module N = Netlist

exception Parse_error of string

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

type raw_line =
  | Rinput of string
  | Routput of string
  | Rgate of string * string * string list

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else
    let inside s =
      match String.index_opt s '(' with
      | None -> raise (Parse_error ("missing ( in: " ^ line))
      | Some i ->
        (match String.rindex_opt s ')' with
         | None -> raise (Parse_error ("missing ) in: " ^ line))
         | Some j when j > i -> String.sub s (i + 1) (j - i - 1)
         | Some _ -> raise (Parse_error ("bad parens in: " ^ line)))
    in
    let upper = String.uppercase_ascii line in
    if String.length upper >= 5 && String.sub upper 0 5 = "INPUT" then
      Some (Rinput (String.trim (inside line)))
    else if String.length upper >= 6 && String.sub upper 0 6 = "OUTPUT" then
      Some (Routput (String.trim (inside line)))
    else
      match String.index_opt line '=' with
      | None -> raise (Parse_error ("unparsable line: " ^ line))
      | Some eq ->
        let name = String.trim (String.sub line 0 eq) in
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let gate_name =
          match String.index_opt rhs '(' with
          | Some i -> String.trim (String.sub rhs 0 i)
          | None -> raise (Parse_error ("missing gate call: " ^ line))
        in
        let args =
          inside rhs |> String.split_on_char ',' |> List.map String.trim
          |> List.filter (( <> ) "")
        in
        Some (Rgate (name, gate_name, args))

(* [dff]: when [Some], DFF definitions are collected as (q, d-name)
   state pairs instead of being rejected. *)
let parse_lines ?dff lines =
  let c = N.create () in
  let pending_outputs = ref [] in
  let state_pairs = ref [] in
  (* two passes: declare inputs first, then add gates in dependency order *)
  List.iter
    (function
      | Rinput name -> ignore (N.add_input ~name c)
      | Routput name -> pending_outputs := name :: !pending_outputs
      | Rgate (name, gate, args) when String.uppercase_ascii gate = "DFF" -> (
          match dff, args with
          | Some _, [ d ] ->
            (* the flip-flop output is a fresh state input *)
            let q = N.add_input ~name c in
            state_pairs := (q, d) :: !state_pairs
          | Some _, _ -> raise (Parse_error ("DFF arity: " ^ name))
          | None, _ -> raise (Parse_error ("unknown gate: DFF (combinational parser)")))
      | Rgate _ -> ())
    lines;
  let gates =
    List.filter_map
      (function
        | Rgate (_, g, _) when String.uppercase_ascii g = "DFF" -> None
        | Rgate (n, g, args) -> Some (n, g, args)
        | Rinput _ | Routput _ -> None)
      lines
  in
  (* iterate until all gates are placed (they may be listed out of order) *)
  let remaining = ref gates in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    remaining :=
      List.filter
        (fun (name, gate_name, args) ->
           let fanins = List.map (N.find_by_name c) args in
           if List.for_all Option.is_some fanins then begin
             let g =
               match Gate.of_string gate_name with
               | Some g -> g
               | None -> raise (Parse_error ("unknown gate: " ^ gate_name))
             in
             let fanins = List.filter_map Fun.id fanins in
             (* BENCH allows 1-input AND/OR as a buffer *)
             if List.length fanins = 1 && not (Gate.arity_ok g 1) then
               ignore (N.add_gate ~name c Gate.Buf fanins)
             else ignore (N.add_gate ~name c g fanins);
             progress := true;
             false
           end
           else true)
        !remaining
  done;
  (match !remaining with
   | [] -> ()
   | (name, _, _) :: _ ->
     raise (Parse_error ("unresolved signal in definition of " ^ name)));
  List.iter
    (fun name ->
       match N.find_by_name c name with
       | Some id -> N.set_output ~name c id
       | None -> raise (Parse_error ("undefined output: " ^ name)))
    (List.rev !pending_outputs);
  let states =
    List.rev_map
      (fun (q, dname) ->
         match N.find_by_name c dname with
         | Some d -> (q, d)
         | None -> raise (Parse_error ("undefined DFF input: " ^ dname)))
      !state_pairs
  in
  (c, states)

let parse_string text =
  let lines = String.split_on_char '\n' text |> List.filter_map parse_line in
  let c, _ = parse_lines lines in
  c

let parse_sequential_string text =
  let lines = String.split_on_char '\n' text |> List.filter_map parse_line in
  let c, states = parse_lines ~dff:() lines in
  let state_inputs = List.map fst states in
  let primary_inputs =
    List.filter (fun i -> not (List.mem i state_inputs)) (N.inputs c)
  in
  {
    Sequential.comb = c;
    primary_inputs;
    state_inputs;
    next_state = List.map snd states;
    init = List.map (fun _ -> false) states;
  }

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let parse_file path = parse_string (read_file path)
let parse_sequential_file path = parse_sequential_string (read_file path)

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# generated by satreda\n";
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (N.name c id)))
    (N.inputs c);
  List.iter
    (fun (_, id) ->
       Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (N.name c id)))
    (N.outputs c);
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Input -> ()
    | N.Const b ->
      (* constants are not in the BENCH vocabulary; derive them from the
         first primary input: XOR(a, a) = 0, XNOR(a, a) = 1 *)
      (match N.inputs c with
       | first :: _ ->
         Buffer.add_string buf
           (Printf.sprintf "%s = %s(%s, %s)\n" (N.name c id)
              (if b then "XNOR" else "XOR")
              (N.name c first) (N.name c first))
       | [] -> invalid_arg "Bench_format: constant in input-free circuit")
    | N.Gate (g, fs) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (N.name c id) (Gate.to_string g)
           (String.concat ", " (List.map (N.name c) fs)))
  done;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc

let sequential_to_string (s : Sequential.t) =
  if List.exists Fun.id s.Sequential.init then
    invalid_arg "Bench_format: only all-false initial states print";
  let c = s.Sequential.comb in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# generated by satreda (sequential)\n";
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (N.name c id)))
    s.Sequential.primary_inputs;
  List.iter
    (fun (_, id) ->
       Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (N.name c id)))
    (N.outputs c);
  List.iter2
    (fun q d ->
       Buffer.add_string buf
         (Printf.sprintf "%s = DFF(%s)\n" (N.name c q) (N.name c d)))
    s.Sequential.state_inputs s.Sequential.next_state;
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Input -> ()
    | N.Const b ->
      (match N.inputs c with
       | first :: _ ->
         Buffer.add_string buf
           (Printf.sprintf "%s = %s(%s, %s)\n" (N.name c id)
              (if b then "XNOR" else "XOR")
              (N.name c first) (N.name c first))
       | [] -> invalid_arg "Bench_format: constant in input-free circuit")
    | N.Gate (g, fs) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (N.name c id) (Gate.to_string g)
           (String.concat ", " (List.map (N.name c) fs)))
  done;
  Buffer.contents buf
