(** Circuit simulation: scalar and 62-way bit-parallel. *)

val eval_all : Netlist.t -> bool array -> bool array
(** [eval_all c ins] simulates with input values given in input creation
    order; returns a value per node.  Raises [Invalid_argument] on input
    count mismatch. *)

val eval_outputs : Netlist.t -> bool array -> bool array
(** Output values, in output declaration order. *)

val eval_node : Netlist.t -> bool array -> Netlist.node_id -> bool

val parallel_all : Netlist.t -> int array -> int array
(** Bit-parallel simulation: each input carries up to [word_width]
    patterns packed into an [int]; returns the packed value per node. *)

val parallel_outputs : Netlist.t -> int array -> int array

val word_width : int
(** Patterns per simulation word (62 on a 64-bit system). *)

val parallel_gate : Gate.t -> int list -> int
(** One gate evaluated over packed words (exposed for cone-limited fault
    simulation). *)

val random_words : Sat.Rng.t -> int -> int array
(** [random_words rng n] draws [n] full simulation words. *)

type ternary = F | T | X
(** Three-valued logic for partial input patterns (X = unknown). *)

val eval3_all : Netlist.t -> ternary array -> ternary array
(** Ternary simulation: controlling values decide gates even when other
    inputs are X — the classical justification check for partial test
    patterns. *)

val eval3_outputs : Netlist.t -> ternary array -> ternary array

val ternary_of_pattern :
  Netlist.t -> (Netlist.node_id * bool) list -> ternary array
(** Builds an input vector from a partial pattern: unlisted inputs are
    [X]. *)
