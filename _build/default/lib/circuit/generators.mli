(** Parametric circuit families standing in for the industrial benchmark
    suites of the paper's experiments (see DESIGN.md, substitutions).

    Input and output names follow the patterns noted per generator, so
    application code can locate buses by name. *)

val c17 : unit -> Netlist.t
(** The 6-NAND ISCAS-85 example circuit (inputs [i1..i5], outputs
    [o1 o2]). *)

val s27 : unit -> Sequential.t
(** The ISCAS-89 s27 benchmark (4 primary inputs, 3 flip-flops, 1
    output), parsed from its standard BENCH text. *)

val fig1 : unit -> Netlist.t
(** The example circuit of Figure 1 of the paper: [x = NOT w1],
    [y = NOT w2], [z = AND (w1, w2)], all three outputs visible. *)

val fig3 : unit -> Netlist.t
(** The example circuit of Figure 3 — the conflict-analysis walkthrough:
    [y1 = NOT x1], [y2 = NOT w], [y3 = NOR (y1, y2)] (so [y3 = x1 AND w]).
    With [w = 1], [y3 = 0], assigning [x1 = 1] conflicts and yields the
    clause [(~x1 + ~w + y3)]. *)

val ripple_adder : bits:int -> Netlist.t
(** Inputs [a0.. b0.. cin], outputs [s0.. cout]. *)

val carry_skip_adder : bits:int -> block:int -> Netlist.t
(** Ripple blocks with carry-skip bypass — the classic source of false
    paths for delay computation (E11).  Same interface as
    {!ripple_adder}. *)

val kogge_stone_adder : bits:int -> Netlist.t
(** Parallel-prefix (Kogge-Stone) adder: logarithmic depth, same
    interface as {!ripple_adder} — the classic equivalence-checking
    partner and delay-computation contrast. *)

val multiplier : bits:int -> Netlist.t
(** Array multiplier, inputs [a0.. b0..], outputs [p0..p(2n-1)].  The
    standard BDD-killer (E10). *)

val wallace_multiplier : bits:int -> Netlist.t
(** Wallace-tree multiplier: 3:2 column compression with a final ripple
    stage.  Same interface as {!multiplier}. *)

val barrel_shifter : bits:int -> Netlist.t
(** Logical left shifter: data [d0..], shift amount [s0..s(log n - 1)],
    outputs [y0..].  [bits] must be a power of two. *)

val decoder : select_bits:int -> Netlist.t
(** One-hot decoder: selectors [s0..], outputs [d0..d(2^k - 1)]. *)

val priority_encoder : bits:int -> Netlist.t
(** Priority encoder: requests [r0..] ([r0] wins), outputs the binary
    index [y0..] of the highest-priority active request plus a [valid]
    flag. *)

val comparator : bits:int -> Netlist.t
(** Output [lt] = (a < b), unsigned. *)

val parity : bits:int -> Netlist.t
(** XOR tree over [x0..], output [par]. *)

val mux_tree : select_bits:int -> Netlist.t
(** [2^s] data inputs [d0..], selectors [s0..], output [y]. *)

val alu : bits:int -> Netlist.t
(** Two-operand ALU: op bits [op0 op1] select AND / OR / XOR / ADD;
    outputs [y0..] and [cout]. *)

val random_circuit :
  inputs:int -> gates:int -> seed:int -> Netlist.t
(** Random DAG of 1/2-input gates; every sink is made an output. *)

val majority3 : unit -> Netlist.t
(** 3-input majority (carry of a full adder). *)
