module N = Netlist

(* Rebuild [c], letting [rewrite] decide how to realise each gate from
   already-mapped fanins; outputs are re-marked through the map. *)
let rebuild c rewrite =
  let d = N.create () in
  let map = Array.make (max 1 (N.num_nodes c)) (-1) in
  for id = 0 to N.num_nodes c - 1 do
    map.(id) <-
      (match N.node c id with
       | N.Input -> N.add_input ~name:(N.name c id) d
       | N.Const b -> N.add_const d b
       | N.Gate (g, fs) -> rewrite d g (List.map (fun f -> map.(f)) fs))
  done;
  List.iter (fun (n, id) -> N.set_output ~name:n d map.(id)) (N.outputs c);
  d

let rewrite_xor c =
  let rewrite d g ins =
    match g, ins with
    | Gate.Xor, [ a; b ] ->
      let na = N.add_gate d Gate.Not [ a ] in
      let nb = N.add_gate d Gate.Not [ b ] in
      let t1 = N.add_gate d Gate.And [ a; nb ] in
      let t2 = N.add_gate d Gate.And [ na; b ] in
      N.add_gate d Gate.Or [ t1; t2 ]
    | Gate.Xnor, [ a; b ] ->
      let na = N.add_gate d Gate.Not [ a ] in
      let nb = N.add_gate d Gate.Not [ b ] in
      let t1 = N.add_gate d Gate.And [ a; b ] in
      let t2 = N.add_gate d Gate.And [ na; nb ] in
      N.add_gate d Gate.Or [ t1; t2 ]
    | _ -> N.add_gate d g ins
  in
  rebuild c rewrite

let demorgan ~seed c =
  let rng = Sat.Rng.create seed in
  let rewrite d g ins =
    if Sat.Rng.float rng < 0.5 then N.add_gate d g ins
    else
      match g with
      | Gate.And ->
        let negs = List.map (fun x -> N.add_gate d Gate.Not [ x ]) ins in
        N.add_gate d Gate.Nor negs
      | Gate.Or ->
        let negs = List.map (fun x -> N.add_gate d Gate.Not [ x ]) ins in
        N.add_gate d Gate.Nand negs
      | Gate.Nand ->
        let negs = List.map (fun x -> N.add_gate d Gate.Not [ x ]) ins in
        N.add_gate d Gate.Or negs
      | Gate.Nor ->
        let negs = List.map (fun x -> N.add_gate d Gate.Not [ x ]) ins in
        N.add_gate d Gate.And negs
      | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buf -> N.add_gate d g ins
  in
  rebuild c rewrite

let double_invert ~seed ?(count = 4) c =
  let rng = Sat.Rng.create seed in
  let targets =
    (* wires eligible for inverter-pair insertion: any gate fanin edge *)
    let all = ref [] in
    for id = 0 to N.num_nodes c - 1 do
      match N.node c id with
      | N.Gate _ -> all := id :: !all
      | N.Input | N.Const _ -> ()
    done;
    !all
  in
  let chosen = Hashtbl.create 8 in
  let n = List.length targets in
  if n > 0 then
    for _ = 1 to count do
      Hashtbl.replace chosen (List.nth targets (Sat.Rng.int rng n)) ()
    done;
  let rewrite d g ins =
    let out = N.add_gate d g ins in
    out
  in
  (* rebuild, then re-route chosen nodes through two inverters *)
  let d = N.create () in
  let map = Array.make (max 1 (N.num_nodes c)) (-1) in
  for id = 0 to N.num_nodes c - 1 do
    let base =
      match N.node c id with
      | N.Input -> N.add_input ~name:(N.name c id) d
      | N.Const b -> N.add_const d b
      | N.Gate (g, fs) -> rewrite d g (List.map (fun f -> map.(f)) fs)
    in
    map.(id) <-
      (if Hashtbl.mem chosen id then begin
         let n1 = N.add_gate d Gate.Not [ base ] in
         N.add_gate d Gate.Not [ n1 ]
       end
       else base)
  done;
  List.iter (fun (n, id) -> N.set_output ~name:n d map.(id)) (N.outputs c);
  d

let inject_bug ~seed c =
  let rng = Sat.Rng.create seed in
  let gates = ref [] in
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Gate (g, fs) when List.length fs >= 2 -> gates := (id, g) :: !gates
    | N.Gate _ | N.Input | N.Const _ -> ()
  done;
  match !gates with
  | [] -> (N.copy c, "no mutable gate")
  | gs ->
    let victim, old_gate = List.nth gs (Sat.Rng.int rng (List.length gs)) in
    let replacement =
      let pool =
        List.filter (fun g -> g <> old_gate)
          [ Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ]
      in
      List.nth pool (Sat.Rng.int rng (List.length pool))
    in
    let d = N.create () in
    let map = Array.make (max 1 (N.num_nodes c)) (-1) in
    for id = 0 to N.num_nodes c - 1 do
      map.(id) <-
        (match N.node c id with
         | N.Input -> N.add_input ~name:(N.name c id) d
         | N.Const b -> N.add_const d b
         | N.Gate (g, fs) ->
           let g' = if id = victim then replacement else g in
           N.add_gate d g' (List.map (fun f -> map.(f)) fs))
    done;
    List.iter (fun (n, id) -> N.set_output ~name:n d map.(id)) (N.outputs c);
    ( d,
      Printf.sprintf "node %s: %s -> %s" (N.name c victim)
        (Gate.to_string old_gate)
        (Gate.to_string replacement) )

let strash c =
  let d = N.create () in
  let map = Array.make (max 1 (N.num_nodes c)) (-1) in
  let table : (Gate.t * int list, int) Hashtbl.t = Hashtbl.create 64 in
  let commutative = function
    | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> true
    | Gate.Not | Gate.Buf -> false
  in
  for id = 0 to N.num_nodes c - 1 do
    map.(id) <-
      (match N.node c id with
       | N.Input -> N.add_input ~name:(N.name c id) d
       | N.Const b -> N.add_const d b
       | N.Gate (g, fs) ->
         let fanins = List.map (fun f -> map.(f)) fs in
         let key =
           (g, if commutative g then List.sort Int.compare fanins else fanins)
         in
         (match Hashtbl.find_opt table key with
          | Some existing -> existing
          | None ->
            let fresh = N.add_gate d g fanins in
            Hashtbl.add table key fresh;
            fresh))
  done;
  List.iter (fun (n, o) -> N.set_output ~name:n d map.(o)) (N.outputs c);
  d

(* A simplification-time value: a constant or a (node, inverted) wire. *)
type wire = Cval of bool | W of int * bool

let simplify c =
  let d = N.create () in
  let repr = Array.make (max 1 (N.num_nodes c)) (Cval false) in
  let not_memo = Hashtbl.create 16 in
  let realize = function
    | Cval b -> N.add_const d b
    | W (id, false) -> id
    | W (id, true) -> (
        match Hashtbl.find_opt not_memo id with
        | Some n -> n
        | None ->
          let n = N.add_gate d Gate.Not [ id ] in
          Hashtbl.add not_memo id n;
          n)
  in
  let invert = function Cval b -> Cval (not b) | W (i, v) -> W (i, not v) in
  (* keep only nodes feeding an output, but preserve the input interface *)
  let reachable = Array.make (max 1 (N.num_nodes c)) false in
  List.iter
    (fun (_, o) -> List.iter (fun x -> reachable.(x) <- true) (N.transitive_fanin c o))
    (N.outputs c);
  (* AND/OR family with controlling value [ctrl]: drop non-controlling
     constants and duplicates, detect [w op ~w]; [gate]/[gate_inv] realise
     the residue (And/Nand or Or/Nor), keeping inversion on the output
     wire rather than materialising inverters *)
  let controlled_like ~ctrl ~gate ~gate_inv inverting ws =
    let rec dedup acc = function
      | [] -> Some acc
      | Cval c :: rest ->
        if c = ctrl then None else dedup acc rest
      | W (i, v) :: rest ->
        if List.exists (fun (j, u) -> j = i && u <> v) acc then None
        else if List.mem (i, v) acc then dedup acc rest
        else dedup ((i, v) :: acc) rest
    in
    match dedup [] ws with
    | None -> Cval (ctrl <> inverting) (* controlled output *)
    | Some [] -> Cval ((not ctrl) <> inverting)
    | Some [ (i, v) ] -> W (i, v <> inverting)
    | Some ws ->
      let ins = List.map (fun (i, v) -> realize (W (i, v))) ws in
      W (N.add_gate d (if inverting then gate_inv else gate) ins, false)
  in
  let and_like = controlled_like ~ctrl:false ~gate:Gate.And ~gate_inv:Gate.Nand in
  let or_like = controlled_like ~ctrl:true ~gate:Gate.Or ~gate_inv:Gate.Nor in
  let xor_like inverting ws =
    let parity = ref inverting in
    let seen = Hashtbl.create 8 in
    List.iter
      (function
        | Cval b -> if b then parity := not !parity
        | W (i, v) ->
          if v then parity := not !parity;
          (match Hashtbl.find_opt seen i with
           | Some () -> Hashtbl.remove seen i (* x ^ x = 0 *)
           | None -> Hashtbl.add seen i ()))
      ws;
    let rest = Hashtbl.fold (fun i () acc -> i :: acc) seen [] in
    match List.sort Int.compare rest with
    | [] -> Cval !parity
    | [ i ] -> W (i, !parity)
    | is ->
      let g = if !parity then Gate.Xnor else Gate.Xor in
      W (N.add_gate d g is, false)
  in
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Input ->
      repr.(id) <- W (N.add_input ~name:(N.name c id) d, false)
    | N.Const b -> repr.(id) <- Cval b
    | N.Gate (g, fs) ->
      if reachable.(id) then begin
        let ws = List.map (fun f -> repr.(f)) fs in
        repr.(id) <-
          (match g with
           | Gate.And -> and_like false ws
           | Gate.Nand -> and_like true ws
           | Gate.Or -> or_like false ws
           | Gate.Nor -> or_like true ws
           | Gate.Xor -> xor_like false ws
           | Gate.Xnor -> xor_like true ws
           | Gate.Buf -> (match ws with [ w ] -> w | _ -> assert false)
           | Gate.Not -> (match ws with [ w ] -> invert w | _ -> assert false))
      end
  done;
  List.iter (fun (n, o) -> N.set_output ~name:n d (realize repr.(o))) (N.outputs c);
  d

let add_redundancy ~seed ?(count = 2) c =
  let rng = Sat.Rng.create seed in
  let wires = ref [] in
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Gate _ | N.Input -> wires := id :: !wires
    | N.Const _ -> ()
  done;
  let chosen = Hashtbl.create 8 in
  let n = List.length !wires in
  if n > 0 then
    for _ = 1 to count do
      Hashtbl.replace chosen (List.nth !wires (Sat.Rng.int rng n)) ()
    done;
  let d = N.create () in
  let map = Array.make (max 1 (N.num_nodes c)) (-1) in
  for id = 0 to N.num_nodes c - 1 do
    let base =
      match N.node c id with
      | N.Input -> N.add_input ~name:(N.name c id) d
      | N.Const b -> N.add_const d b
      | N.Gate (g, fs) -> N.add_gate d g (List.map (fun f -> map.(f)) fs)
    in
    map.(id) <-
      (if Hashtbl.mem chosen id && id > 0 then begin
         (* OR with (w AND NOT w): never changes the value, and the
            inserted gates harbour untestable stuck-at-0 faults *)
         let partner = map.(Sat.Rng.int rng id) in
         let np = N.add_gate d Gate.Not [ partner ] in
         let zero = N.add_gate d Gate.And [ partner; np ] in
         N.add_gate d Gate.Or [ base; zero ]
       end
       else base)
  done;
  List.iter (fun (n, id) -> N.set_output ~name:n d map.(id)) (N.outputs c);
  d
