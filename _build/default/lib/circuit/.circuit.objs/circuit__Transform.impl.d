lib/circuit/transform.ml: Array Gate Hashtbl Int List Netlist Printf Sat
