lib/circuit/generators.ml: Array Bench_format Gate List Netlist Printf Sat
