lib/circuit/encode.ml: Array Cnf Gate List Netlist
