lib/circuit/bench_format.ml: Buffer Fun Gate List Netlist Option Printf Sequential String
