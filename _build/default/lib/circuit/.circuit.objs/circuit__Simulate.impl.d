lib/circuit/simulate.ml: Array Gate List Netlist Sat
