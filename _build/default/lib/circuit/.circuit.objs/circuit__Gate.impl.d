lib/circuit/gate.ml: Format Fun List String
