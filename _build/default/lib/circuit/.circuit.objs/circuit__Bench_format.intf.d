lib/circuit/bench_format.mli: Netlist Sequential
