lib/circuit/miter.ml: Array Encode Gate Hashtbl List Netlist Printf
