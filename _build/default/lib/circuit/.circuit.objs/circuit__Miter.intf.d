lib/circuit/miter.mli: Cnf Netlist
