lib/circuit/generators.mli: Netlist Sequential
