lib/circuit/encode.mli: Cnf Gate Netlist
