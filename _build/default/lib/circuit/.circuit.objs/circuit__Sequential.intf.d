lib/circuit/sequential.mli: Netlist
