lib/circuit/sequential.ml: Array Gate Hashtbl List Netlist Printf Simulate
