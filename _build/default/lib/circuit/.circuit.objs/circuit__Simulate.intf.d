lib/circuit/simulate.mli: Gate Netlist Sat
