lib/circuit/netlist.ml: Array Format Gate Hashtbl Int List Printf Sat
