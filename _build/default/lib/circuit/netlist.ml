type node_id = int

type node =
  | Input
  | Const of bool
  | Gate of Gate.t * node_id list

type t = {
  nodes : node Sat.Vec.t;
  names : (node_id, string) Hashtbl.t;
  by_name : (string, node_id) Hashtbl.t;
  mutable input_ids : node_id list; (* reverse creation order *)
  mutable outs : (string * node_id) list; (* reverse order *)
  mutable fanout_cache : node_id list array option;
  mutable level_cache : int array option;
}

let create () =
  {
    nodes = Sat.Vec.create ~dummy:Input ();
    names = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
    input_ids = [];
    outs = [];
    fanout_cache = None;
    level_cache = None;
  }

let num_nodes c = Sat.Vec.size c.nodes
let node c i = Sat.Vec.get c.nodes i

let invalidate c =
  c.fanout_cache <- None;
  c.level_cache <- None

let register_name c id = function
  | None -> ()
  | Some name ->
    if Hashtbl.mem c.by_name name then
      invalid_arg ("Netlist: duplicate name " ^ name);
    Hashtbl.replace c.names id name;
    Hashtbl.replace c.by_name name id

let add_node ?name c n =
  let id = num_nodes c in
  Sat.Vec.push c.nodes n;
  register_name c id name;
  invalidate c;
  id

let add_input ?name c =
  let id = add_node ?name c Input in
  c.input_ids <- id :: c.input_ids;
  id

let add_const c b = add_node c (Const b)

let add_gate ?name c g fanins =
  if not (Gate.arity_ok g (List.length fanins)) then
    invalid_arg "Netlist.add_gate: arity";
  let limit = num_nodes c in
  List.iter
    (fun f ->
       if f < 0 || f >= limit then invalid_arg "Netlist.add_gate: dangling fanin")
    fanins;
  add_node ?name c (Gate (g, fanins))

let set_output ?name c id =
  if id < 0 || id >= num_nodes c then invalid_arg "Netlist.set_output";
  let name =
    match name with
    | Some n -> n
    | None -> (
        match Hashtbl.find_opt c.names id with
        | Some n -> n
        | None -> Printf.sprintf "o%d" (List.length c.outs))
  in
  c.outs <- (name, id) :: c.outs

let inputs c = List.rev c.input_ids
let outputs c = List.rev c.outs
let output_ids c = List.map snd (outputs c)

let name c id =
  match Hashtbl.find_opt c.names id with
  | Some n -> n
  | None -> Printf.sprintf "n%d" id

let find_by_name c n = Hashtbl.find_opt c.by_name n

let fanins c id =
  match node c id with Input | Const _ -> [] | Gate (_, fs) -> fs

let fanout_table c =
  match c.fanout_cache with
  | Some t -> t
  | None ->
    let t = Array.make (max 1 (num_nodes c)) [] in
    for id = num_nodes c - 1 downto 0 do
      List.iter (fun f -> t.(f) <- id :: t.(f)) (fanins c id)
    done;
    c.fanout_cache <- Some t;
    t

let fanouts c id = (fanout_table c).(id)

let gate_count c =
  let n = ref 0 in
  for id = 0 to num_nodes c - 1 do
    match node c id with Gate _ -> incr n | Input | Const _ -> ()
  done;
  !n

let level_table c =
  match c.level_cache with
  | Some t -> t
  | None ->
    let t = Array.make (max 1 (num_nodes c)) 0 in
    for id = 0 to num_nodes c - 1 do
      t.(id) <-
        (match node c id with
         | Input | Const _ -> 0
         | Gate (_, fs) -> 1 + List.fold_left (fun m f -> max m t.(f)) 0 fs)
    done;
    c.level_cache <- Some t;
    t

let level c id = (level_table c).(id)

let depth c =
  List.fold_left (fun m (_, id) -> max m (level c id)) 0 (outputs c)

let closure c ~next seeds =
  let seen = Array.make (max 1 (num_nodes c)) false in
  let rec go acc = function
    | [] -> acc
    | id :: rest ->
      if seen.(id) then go acc rest
      else begin
        seen.(id) <- true;
        go (id :: acc) (next id @ rest)
      end
  in
  List.sort Int.compare (go [] seeds)

let transitive_fanin c id = closure c ~next:(fanins c) [ id ]
let transitive_fanout c id = closure c ~next:(fanouts c) [ id ]

let import src ~into ~map_node =
  let map = Array.make (max 1 (num_nodes src)) (-1) in
  for id = 0 to num_nodes src - 1 do
    match map_node id with
    | Some dst -> map.(id) <- dst
    | None -> (
        match node src id with
        | Input -> invalid_arg "Netlist.import: unmapped input"
        | Const b -> map.(id) <- add_const into b
        | Gate (g, fs) ->
          map.(id) <- add_gate into g (List.map (fun f -> map.(f)) fs))
  done;
  map

let copy c =
  let d = create () in
  for id = 0 to num_nodes c - 1 do
    let nid =
      match node c id with
      | Input -> add_input ?name:(Hashtbl.find_opt c.names id) d
      | Const b -> add_const d b
      | Gate (g, fs) ->
        add_gate ?name:(Hashtbl.find_opt c.names id) d g fs
    in
    assert (nid = id)
  done;
  List.iter (fun (n, id) -> set_output ~name:n d id) (outputs c);
  d

let pp_stats ppf c =
  Format.fprintf ppf "nodes=%d inputs=%d outputs=%d gates=%d depth=%d"
    (num_nodes c)
    (List.length (inputs c))
    (List.length (outputs c))
    (gate_count c) (depth c)
