(** Simple gate types (Table 1 of the paper). *)

type t = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

val all : t list

val eval : t -> bool list -> bool
(** Raises [Invalid_argument] on arity violations. *)

val arity_ok : t -> int -> bool
(** [Not]/[Buf] take exactly one input; the others at least two. *)

val controlling : t -> bool option
(** The input value that determines the output regardless of the other
    inputs ([Some false] for AND/NAND, [Some true] for OR/NOR, [None]
    for XOR/XNOR/NOT/BUF). *)

val inverting : t -> bool
(** Whether the gate complements its base function (NAND, NOR, XNOR,
    NOT). *)

val controlled_output : t -> bool option
(** Output value produced when a controlling input is present. *)

val to_string : t -> string
val of_string : string -> t option
(** Case-insensitive; accepts the BENCH-format spelling [BUFF]. *)

val pp : Format.formatter -> t -> unit
