module N = Netlist

let c17 () =
  let c = N.create () in
  let i1 = N.add_input ~name:"i1" c in
  let i2 = N.add_input ~name:"i2" c in
  let i3 = N.add_input ~name:"i3" c in
  let i4 = N.add_input ~name:"i4" c in
  let i5 = N.add_input ~name:"i5" c in
  let g1 = N.add_gate ~name:"g1" c Gate.Nand [ i1; i3 ] in
  let g2 = N.add_gate ~name:"g2" c Gate.Nand [ i3; i4 ] in
  let g3 = N.add_gate ~name:"g3" c Gate.Nand [ i2; g2 ] in
  let g4 = N.add_gate ~name:"g4" c Gate.Nand [ g2; i5 ] in
  let g5 = N.add_gate ~name:"o1" c Gate.Nand [ g1; g3 ] in
  let g6 = N.add_gate ~name:"o2" c Gate.Nand [ g3; g4 ] in
  N.set_output c g5;
  N.set_output c g6;
  c

let s27_text =
  "# ISCAS-89 s27\n\
   INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\n\
   G14 = NOT(G0)\nG17 = NOT(G11)\nG8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\nG16 = OR(G3, G8)\nG9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\nG11 = NOR(G5, G9)\nG12 = NOR(G1, G7)\n\
   G13 = NOR(G2, G12)\n"

let s27 () = Bench_format.parse_sequential_string s27_text

let fig1 () =
  let c = N.create () in
  let w1 = N.add_input ~name:"w1" c in
  let w2 = N.add_input ~name:"w2" c in
  let x = N.add_gate ~name:"x" c Gate.Not [ w1 ] in
  let y = N.add_gate ~name:"y" c Gate.Not [ w2 ] in
  let z = N.add_gate ~name:"z" c Gate.And [ w1; w2 ] in
  N.set_output c x;
  N.set_output c y;
  N.set_output c z;
  c

let fig3 () =
  let c = N.create () in
  let x1 = N.add_input ~name:"x1" c in
  let w = N.add_input ~name:"w" c in
  let y1 = N.add_gate ~name:"y1" c Gate.Not [ x1 ] in
  let y2 = N.add_gate ~name:"y2" c Gate.Not [ w ] in
  let y3 = N.add_gate ~name:"y3" c Gate.Nor [ y1; y2 ] in
  N.set_output c y3;
  c

let full_adder c a b cin =
  let axb = N.add_gate c Gate.Xor [ a; b ] in
  let s = N.add_gate c Gate.Xor [ axb; cin ] in
  let t1 = N.add_gate c Gate.And [ a; b ] in
  let t2 = N.add_gate c Gate.And [ axb; cin ] in
  let cout = N.add_gate c Gate.Or [ t1; t2 ] in
  (s, cout)

let mux2 c s a b =
  (* s ? b : a *)
  let ns = N.add_gate c Gate.Not [ s ] in
  let ta = N.add_gate c Gate.And [ ns; a ] in
  let tb = N.add_gate c Gate.And [ s; b ] in
  N.add_gate c Gate.Or [ ta; tb ]

let adder_frame ~bits =
  let c = N.create () in
  let a = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let cin = N.add_input ~name:"cin" c in
  (c, a, b, cin)

let ripple_adder ~bits =
  let c, a, b, cin = adder_frame ~bits in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, cout = full_adder c a.(i) b.(i) !carry in
    N.set_output ~name:(Printf.sprintf "s%d" i) c s;
    carry := cout
  done;
  N.set_output ~name:"cout" c !carry;
  c

let carry_skip_adder ~bits ~block =
  if block < 1 then invalid_arg "carry_skip_adder: block";
  let c, a, b, cin = adder_frame ~bits in
  let carry = ref cin in
  let i = ref 0 in
  while !i < bits do
    let hi = min (!i + block) bits in
    let block_cin = !carry in
    let props = ref [] in
    let ripple = ref block_cin in
    for j = !i to hi - 1 do
      let s, cout = full_adder c a.(j) b.(j) !ripple in
      N.set_output ~name:(Printf.sprintf "s%d" j) c s;
      let p = N.add_gate c Gate.Xor [ a.(j); b.(j) ] in
      props := p :: !props;
      ripple := cout
    done;
    (* skip mux: if every stage propagates, the block carry-in skips the
       ripple chain — the ripple path becomes a false path *)
    let all_p =
      match !props with
      | [ p ] -> p
      | ps -> N.add_gate c Gate.And ps
    in
    let skip = N.add_gate c Gate.And [ all_p; block_cin ] in
    let keep_n = N.add_gate c Gate.Not [ all_p ] in
    let keep = N.add_gate c Gate.And [ keep_n; !ripple ] in
    carry := N.add_gate c Gate.Or [ skip; keep ];
    i := hi
  done;
  N.set_output ~name:"cout" c !carry;
  c

let kogge_stone_adder ~bits =
  let c, a, b, cin = adder_frame ~bits in
  let p = Array.init bits (fun i -> N.add_gate c Gate.Xor [ a.(i); b.(i) ]) in
  let g = Array.init bits (fun i -> N.add_gate c Gate.And [ a.(i); b.(i) ]) in
  (* parallel prefix: (G, P) pairs with span doubling *)
  let gg = ref (Array.copy g) and pp = ref (Array.copy p) in
  let d = ref 1 in
  while !d < bits do
    let g' = Array.copy !gg and p' = Array.copy !pp in
    for i = !d to bits - 1 do
      let through = N.add_gate c Gate.And [ !pp.(i); !gg.(i - !d) ] in
      g'.(i) <- N.add_gate c Gate.Or [ !gg.(i); through ];
      p'.(i) <- N.add_gate c Gate.And [ !pp.(i); !pp.(i - !d) ]
    done;
    gg := g';
    pp := p';
    d := !d * 2
  done;
  (* carries: c_0 = cin, c_{i+1} = G*_i | (P*_i & cin) *)
  let carry = Array.make (bits + 1) cin in
  for i = 0 to bits - 1 do
    let through = N.add_gate c Gate.And [ !pp.(i); cin ] in
    carry.(i + 1) <- N.add_gate c Gate.Or [ !gg.(i); through ]
  done;
  for i = 0 to bits - 1 do
    let s = N.add_gate c Gate.Xor [ p.(i); carry.(i) ] in
    N.set_output ~name:(Printf.sprintf "s%d" i) c s
  done;
  N.set_output ~name:"cout" c carry.(bits);
  c

let multiplier ~bits =
  let c = N.create () in
  let a = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let zero = N.add_const c false in
  (* row accumulation of partial products *)
  let acc = Array.make (2 * bits) zero in
  for j = 0 to bits - 1 do
    let carry = ref zero in
    for i = 0 to bits - 1 do
      let pp = N.add_gate c Gate.And [ a.(i); b.(j) ] in
      let s, cout = full_adder c acc.(i + j) pp !carry in
      acc.(i + j) <- s;
      carry := cout
    done;
    (* fold the row carry into the next column *)
    let s, cout = full_adder c acc.(j + bits) !carry zero in
    acc.(j + bits) <- s;
    if j + bits + 1 < 2 * bits then begin
      let s', cout' = full_adder c acc.(j + bits + 1) cout zero in
      acc.(j + bits + 1) <- s';
      ignore cout'
    end
  done;
  Array.iteri
    (fun k n -> N.set_output ~name:(Printf.sprintf "p%d" k) c n)
    acc;
  c

let wallace_multiplier ~bits =
  let c = N.create () in
  let a = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let width = 2 * bits in
  let cols = Array.make width [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      let pp = N.add_gate c Gate.And [ a.(i); b.(j) ] in
      cols.(i + j) <- pp :: cols.(i + j)
    done
  done;
  (* 3:2 compression until every column holds at most two bits *)
  let max_height () = Array.fold_left (fun m col -> max m (List.length col)) 0 cols in
  while max_height () > 2 do
    let next = Array.make width [] in
    for k = 0 to width - 1 do
      let rec reduce = function
        | x :: y :: z :: rest ->
          let s, cout = full_adder c x y z in
          next.(k) <- s :: next.(k);
          if k + 1 < width then next.(k + 1) <- cout :: next.(k + 1);
          reduce rest
        | leftovers -> next.(k) <- leftovers @ next.(k)
      in
      reduce cols.(k)
    done;
    Array.blit next 0 cols 0 width
  done;
  (* final carry-propagate stage over the two remaining rows *)
  let zero = N.add_const c false in
  let carry = ref zero in
  for k = 0 to width - 1 do
    let bits_here =
      match cols.(k) with
      | [] -> [ zero ]
      | l -> l
    in
    let x, y =
      match bits_here with
      | [ x ] -> (x, zero)
      | [ x; y ] -> (x, y)
      | _ -> assert false
    in
    let s, cout = full_adder c x y !carry in
    N.set_output ~name:(Printf.sprintf "p%d" k) c s;
    carry := cout
  done;
  c

let barrel_shifter ~bits =
  if bits land (bits - 1) <> 0 || bits < 2 then
    invalid_arg "barrel_shifter: power-of-two width required";
  let c = N.create () in
  let data =
    Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "d%d" i) c)
  in
  let stages =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 bits
  in
  let sels =
    Array.init stages (fun j -> N.add_input ~name:(Printf.sprintf "s%d" j) c)
  in
  let zero = N.add_const c false in
  let current = ref data in
  for j = 0 to stages - 1 do
    let amount = 1 lsl j in
    current :=
      Array.init bits (fun i ->
          let shifted = if i >= amount then !current.(i - amount) else zero in
          mux2 c sels.(j) !current.(i) shifted)
  done;
  Array.iteri
    (fun i y -> N.set_output ~name:(Printf.sprintf "y%d" i) c y)
    !current;
  c

let decoder ~select_bits =
  let c = N.create () in
  let sels =
    Array.init select_bits (fun j -> N.add_input ~name:(Printf.sprintf "s%d" j) c)
  in
  let nsels =
    Array.map (fun s -> N.add_gate c Gate.Not [ s ]) sels
  in
  for i = 0 to (1 lsl select_bits) - 1 do
    let terms =
      List.init select_bits (fun j ->
          if i land (1 lsl j) <> 0 then sels.(j) else nsels.(j))
    in
    let d =
      match terms with
      | [ one ] -> N.add_gate c Gate.Buf [ one ]
      | ts -> N.add_gate c Gate.And ts
    in
    N.set_output ~name:(Printf.sprintf "d%d" i) c d
  done;
  c

let priority_encoder ~bits =
  let c = N.create () in
  let reqs =
    Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "r%d" i) c)
  in
  (* grant_i = r_i and no higher-priority (lower index) request *)
  let none_before = ref (N.add_const c true) in
  let grants =
    Array.map
      (fun r ->
         let g = N.add_gate c Gate.And [ r; !none_before ] in
         let nr = N.add_gate c Gate.Not [ r ] in
         none_before := N.add_gate c Gate.And [ !none_before; nr ];
         g)
      reqs
  in
  let out_bits =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 ((n + 1) / 2) in
    max 1 (log2 bits)
  in
  for b = 0 to out_bits - 1 do
    let sources =
      Array.to_list grants
      |> List.filteri (fun i _ -> i land (1 lsl b) <> 0)
    in
    let y =
      match sources with
      | [] -> N.add_const c false
      | [ one ] -> N.add_gate c Gate.Buf [ one ]
      | gs -> N.add_gate c Gate.Or gs
    in
    N.set_output ~name:(Printf.sprintf "y%d" b) c y
  done;
  let valid =
    match Array.to_list reqs with
    | [ one ] -> N.add_gate c Gate.Buf [ one ]
    | rs -> N.add_gate c Gate.Or rs
  in
  N.set_output ~name:"valid" c valid;
  c

let comparator ~bits =
  let c = N.create () in
  let a = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "b%d" i) c) in
  (* from LSB: lt_i = (~a_i & b_i) | (a_i XNOR b_i) & lt_{i-1} *)
  let lt = ref (N.add_const c false) in
  for i = 0 to bits - 1 do
    let na = N.add_gate c Gate.Not [ a.(i) ] in
    let here = N.add_gate c Gate.And [ na; b.(i) ] in
    let eq = N.add_gate c Gate.Xnor [ a.(i); b.(i) ] in
    let keep = N.add_gate c Gate.And [ eq; !lt ] in
    lt := N.add_gate c Gate.Or [ here; keep ]
  done;
  N.set_output ~name:"lt" c !lt;
  c

let parity ~bits =
  let c = N.create () in
  let xs = List.init bits (fun i -> N.add_input ~name:(Printf.sprintf "x%d" i) c) in
  let out =
    match xs with
    | [] -> N.add_const c false
    | [ x ] -> N.add_gate c Gate.Buf [ x ]
    | xs ->
      (* balanced tree *)
      let rec build = function
        | [] -> assert false
        | [ x ] -> x
        | nodes ->
          let rec pair = function
            | [] -> []
            | [ x ] -> [ x ]
            | x :: y :: rest -> N.add_gate c Gate.Xor [ x; y ] :: pair rest
          in
          build (pair nodes)
      in
      build xs
  in
  N.set_output ~name:"par" c out;
  c

let mux_tree ~select_bits =
  let c = N.create () in
  let n = 1 lsl select_bits in
  let data = List.init n (fun i -> N.add_input ~name:(Printf.sprintf "d%d" i) c) in
  let sels = List.init select_bits (fun i -> N.add_input ~name:(Printf.sprintf "s%d" i) c) in
  let rec reduce level = function
    | [ x ] -> x
    | nodes ->
      let s = List.nth sels level in
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | a :: b :: rest -> mux2 c s a b :: pair rest
      in
      reduce (level + 1) (pair nodes)
  in
  N.set_output ~name:"y" c (reduce 0 data);
  c

let alu ~bits =
  let c = N.create () in
  let a = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init bits (fun i -> N.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let op0 = N.add_input ~name:"op0" c in
  let op1 = N.add_input ~name:"op1" c in
  let zero = N.add_const c false in
  let carry = ref zero in
  let sums =
    Array.init bits (fun i ->
        let s, cout = full_adder c a.(i) b.(i) !carry in
        carry := cout;
        s)
  in
  for i = 0 to bits - 1 do
    let f_and = N.add_gate c Gate.And [ a.(i); b.(i) ] in
    let f_or = N.add_gate c Gate.Or [ a.(i); b.(i) ] in
    let f_xor = N.add_gate c Gate.Xor [ a.(i); b.(i) ] in
    (* op1 op0: 00 AND, 01 OR, 10 XOR, 11 ADD *)
    let lo = mux2 c op0 f_and f_or in
    let hi = mux2 c op0 f_xor sums.(i) in
    let y = mux2 c op1 lo hi in
    N.set_output ~name:(Printf.sprintf "y%d" i) c y
  done;
  N.set_output ~name:"cout" c !carry;
  c

let random_circuit ~inputs ~gates ~seed =
  let rng = Sat.Rng.create seed in
  let c = N.create () in
  let nodes = ref [] in
  for i = 0 to inputs - 1 do
    nodes := N.add_input ~name:(Printf.sprintf "x%d" i) c :: !nodes
  done;
  let pick () =
    let l = !nodes in
    List.nth l (Sat.Rng.int rng (List.length l))
  in
  for _ = 1 to gates do
    let gate_pool =
      [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not |]
    in
    let g = gate_pool.(Sat.Rng.int rng (Array.length gate_pool)) in
    let fanins =
      match g with
      | Gate.Not | Gate.Buf -> [ pick () ]
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
        let a = pick () in
        let rec other tries =
          let b = pick () in
          if b <> a || tries > 5 then b else other (tries + 1)
        in
        [ a; other 0 ]
    in
    nodes := N.add_gate c g fanins :: !nodes
  done;
  (* every node without fanout becomes an output *)
  let has_fanout = Array.make (N.num_nodes c) false in
  for id = 0 to N.num_nodes c - 1 do
    List.iter (fun f -> has_fanout.(f) <- true) (N.fanins c id)
  done;
  for id = 0 to N.num_nodes c - 1 do
    if not has_fanout.(id) then
      match N.node c id with
      | N.Gate _ -> N.set_output c id
      | N.Input | N.Const _ -> ()
  done;
  if N.outputs c = [] && N.num_nodes c > 0 then N.set_output c (N.num_nodes c - 1);
  c

let majority3 () =
  let c = N.create () in
  let a = N.add_input ~name:"a" c in
  let b = N.add_input ~name:"b" c in
  let d = N.add_input ~name:"c" c in
  let ab = N.add_gate c Gate.And [ a; b ] in
  let ad = N.add_gate c Gate.And [ a; d ] in
  let bd = N.add_gate c Gate.And [ b; d ] in
  let m = N.add_gate ~name:"maj" c Gate.Or [ ab; ad; bd ] in
  N.set_output c m;
  c
