(** Structural transformations.

    Equivalence-preserving rewrites manufacture "independently
    implemented" versions of a circuit for equivalence-checking
    experiments; mutation and redundancy insertion manufacture buggy and
    redundant versions for ATPG and redundancy-identification
    experiments. *)

val rewrite_xor : Netlist.t -> Netlist.t
(** Replaces every 2-input XOR/XNOR by an AND/OR/NOT network
    (equivalence-preserving). *)

val demorgan : seed:int -> Netlist.t -> Netlist.t
(** Randomly rewrites AND/OR gates through De Morgan duals
    (equivalence-preserving). *)

val double_invert : seed:int -> ?count:int -> Netlist.t -> Netlist.t
(** Inserts inverter pairs on randomly chosen wires
    (equivalence-preserving; default 4 pairs). *)

val inject_bug : seed:int -> Netlist.t -> Netlist.t * string
(** Flips one randomly chosen gate to a different type; returns the
    mutant and a description.  Usually — not always — inequivalent. *)

val strash : Netlist.t -> Netlist.t
(** Structural hashing: gates with the same type and (for commutative
    gates, order-insensitive) fanin list are shared
    (equivalence-preserving).  The workhorse normalisation in front of
    equivalence checking. *)

val simplify : Netlist.t -> Netlist.t
(** Constant folding, buffer/double-inverter collapsing and dead-node
    removal (equivalence-preserving).  Used after redundancy removal to
    expose the gate-count saving. *)

val add_redundancy : seed:int -> ?count:int -> Netlist.t -> Netlist.t
(** Inserts logic that cannot affect any output — e.g. OR-ing a wire
    with [x AND NOT x] — creating untestable stuck-at faults (default 2
    sites).  Equivalence-preserving. *)
