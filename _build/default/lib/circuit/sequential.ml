module N = Netlist

type t = {
  comb : Netlist.t;
  primary_inputs : Netlist.node_id list;
  state_inputs : Netlist.node_id list;
  next_state : Netlist.node_id list;
  init : bool list;
}

let validate s =
  if List.length s.state_inputs <> List.length s.next_state then
    invalid_arg "Sequential: state arity mismatch";
  if List.length s.state_inputs <> List.length s.init then
    invalid_arg "Sequential: init length mismatch";
  let all_inputs = N.inputs s.comb in
  List.iter
    (fun id ->
       if not (List.mem id all_inputs) then
         invalid_arg "Sequential: state input is not a comb input")
    (s.primary_inputs @ s.state_inputs);
  List.iter
    (fun id ->
       if id < 0 || id >= N.num_nodes s.comb then
         invalid_arg "Sequential: bad next-state node")
    s.next_state

(* order a full input vector for [comb] from primary + state values *)
let comb_inputs s ~state ~inputs =
  let assoc = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace assoc id inputs.(i)) s.primary_inputs;
  List.iter2 (fun id v -> Hashtbl.replace assoc id v) s.state_inputs state;
  N.inputs s.comb
  |> List.map (fun id ->
      match Hashtbl.find_opt assoc id with
      | Some v -> v
      | None -> false)
  |> Array.of_list

let step s ~state ~inputs =
  let values = Simulate.eval_all s.comb (comb_inputs s ~state ~inputs) in
  let next = List.map (fun id -> values.(id)) s.next_state in
  let outs =
    N.outputs s.comb |> List.map (fun (_, id) -> values.(id)) |> Array.of_list
  in
  (next, outs)

let simulate s ~inputs =
  let rec go state acc = function
    | [] -> List.rev acc
    | iv :: rest ->
      let next, outs = step s ~state ~inputs:iv in
      go next (outs :: acc) rest
  in
  go s.init [] inputs

let counter ~bits ~buggy_at =
  let c = N.create () in
  let enable = N.add_input ~name:"enable" c in
  let state =
    List.init bits (fun i -> N.add_input ~name:(Printf.sprintf "q%d" i) c)
  in
  (* incremented value: ripple of half adders gated by enable *)
  let carry = ref enable in
  let incremented =
    List.map
      (fun q ->
         let s = N.add_gate c Gate.Xor [ q; !carry ] in
         carry := N.add_gate c Gate.And [ q; !carry ];
         s)
      state
  in
  let eq_const value =
    let bits_eq =
      List.mapi
        (fun i q ->
           if value land (1 lsl i) <> 0 then N.add_gate c Gate.Buf [ q ]
           else N.add_gate c Gate.Not [ q ])
        state
    in
    match bits_eq with
    | [ b ] -> b
    | bs -> N.add_gate c Gate.And bs
  in
  let all_ones = (1 lsl bits) - 1 in
  let next =
    match buggy_at with
    | None -> incremented
    | Some k ->
      let jump = eq_const k in
      List.map
        (fun inc ->
           (* on count = k, force the bit to 1 (jump to all-ones) *)
           N.add_gate c Gate.Or [ inc; jump ])
        incremented
  in
  let bad = N.add_gate ~name:"bad" c Gate.Buf [ eq_const all_ones ] in
  N.set_output c bad;
  {
    comb = c;
    primary_inputs = [ enable ];
    state_inputs = state;
    next_state = next;
    init = List.map (fun _ -> false) state;
  }

let ring_counter ~bits =
  if bits < 2 then invalid_arg "ring_counter: bits >= 2";
  let c = N.create () in
  let state =
    List.init bits (fun i -> N.add_input ~name:(Printf.sprintf "t%d" i) c)
  in
  let state_arr = Array.of_list state in
  let next =
    List.init bits (fun i ->
        N.add_gate c Gate.Buf [ state_arr.((i + bits - 1) mod bits) ])
  in
  (* bad: two tokens at once *)
  let pairs = ref [] in
  for i = 0 to bits - 1 do
    for j = i + 1 to bits - 1 do
      pairs := N.add_gate c Gate.And [ state_arr.(i); state_arr.(j) ] :: !pairs
    done
  done;
  let bad =
    match !pairs with
    | [ one ] -> N.add_gate ~name:"bad" c Gate.Buf [ one ]
    | ps -> N.add_gate ~name:"bad" c Gate.Or ps
  in
  N.set_output c bad;
  {
    comb = c;
    primary_inputs = [];
    state_inputs = state;
    next_state = next;
    init = List.mapi (fun i _ -> i = 0) state;
  }

let lfsr ~bits ~taps =
  let c = N.create () in
  let state =
    List.init bits (fun i -> N.add_input ~name:(Printf.sprintf "r%d" i) c)
  in
  let state_arr = Array.of_list state in
  let feedback =
    match taps with
    | [] -> invalid_arg "lfsr: no taps"
    | [ t ] -> N.add_gate c Gate.Buf [ state_arr.(t) ]
    | ts ->
      let lits = List.map (fun t -> state_arr.(t)) ts in
      N.add_gate c Gate.Xor lits
  in
  (* shift towards higher indices; bit 0 receives the feedback *)
  let next =
    List.mapi
      (fun i _ ->
         if i = 0 then feedback
         else N.add_gate c Gate.Buf [ state_arr.(i - 1) ])
      state
  in
  N.set_output ~name:"tap0" c state_arr.(0);
  {
    comb = c;
    primary_inputs = [];
    state_inputs = state;
    next_state = next;
    init = List.mapi (fun i _ -> i = 0) state;
  }
