(** CNF encoding of circuits (Sec. 2, Table 1 and Figure 1 of the paper).

    Each circuit node gets a formula variable; each gate contributes the
    clauses of Table 1, which characterise its consistent input/output
    assignments.  The circuit CNF is the union of the per-gate clause
    sets. *)

val gate_clauses :
  out:Cnf.Lit.t -> ins:Cnf.Lit.t list -> Gate.t -> Cnf.Clause.t list
(** The Table 1 clause set for a single gate.  XOR/XNOR beyond two inputs
    are not accepted here (no room for auxiliary variables): raises
    [Invalid_argument]; {!encode_into} decomposes them instead. *)

type mapping = {
  formula : Cnf.Formula.t;
  lit_of_node : Netlist.node_id -> Cnf.Lit.t;
      (** the formula literal standing for a node's value *)
}

val encode : Netlist.t -> mapping
(** Encodes the whole circuit into a fresh formula.  Constants become
    unit clauses. *)

val encode_into :
  Cnf.Formula.t ->
  ?pre:(Netlist.node_id -> Cnf.Lit.t option) ->
  Netlist.t ->
  Netlist.node_id -> Cnf.Lit.t
(** Encodes into an existing formula.  [pre] supplies literals for nodes
    that must not receive fresh variables — shared primary inputs across
    circuit copies, or a fault-site override (the node's clauses are then
    omitted and the supplied literal used by its fanouts).  Returns the
    node-to-literal map. *)

val assert_output : Cnf.Formula.t -> Cnf.Lit.t -> bool -> unit
(** Constrains a node literal to an objective value, e.g. the [z = 0]
    property of Figure 1. *)
