(** And-inverter graphs: two-input AND nodes with complemented edges,
    hash-consed on construction.

    The normal form behind most SAT-based EDA flows: conversion to AIG
    is itself a structural-hashing pass, two circuits built into one
    manager share all common logic, and the CNF translation emits three
    clauses per AND node. *)

type man
(** A manager; owns the node table. *)

type lit = private int
(** An edge: node index with a complement bit.  Only valid with the
    manager that created it. *)

val create : unit -> man

val const_false : lit
val const_true : lit

val add_input : man -> lit
(** Inputs are numbered in creation order. *)

val num_inputs : man -> int

val input : man -> int -> lit
(** The edge of the i-th input (creation order).  Raises [Not_found]
    when out of range. *)

val num_ands : man -> int

val neg : lit -> lit
val is_complemented : lit -> bool

val and_ : man -> lit -> lit -> lit
(** Hash-consed with the usual simplifications
    ([a & a = a], [a & ~a = 0], constants). *)

val or_ : man -> lit -> lit -> lit
val xor : man -> lit -> lit -> lit
val mux : man -> lit -> lit -> lit -> lit
(** [mux m s t e] = if [s] then [t] else [e]. *)

val eval : man -> bool array -> lit -> bool
(** Input values in creation order. *)

val of_netlist : Circuit.Netlist.t -> man * (string * lit) list
(** Converts a combinational netlist; returns the manager and the named
    output edges.  The AIG inputs correspond positionally to the
    netlist's inputs. *)

val merge_netlists :
  Circuit.Netlist.t -> Circuit.Netlist.t -> man * (lit * lit) list
(** Builds both circuits over shared inputs in one manager — common
    structure is hash-consed away — and returns the paired output
    edges.  Raises [Invalid_argument] on interface mismatch. *)

val to_netlist : man -> outputs:(string * lit) list -> Circuit.Netlist.t
(** Re-materialises as a gate netlist (AND/NOT gates). *)

val to_cnf : man -> Cnf.Formula.t * (lit -> Cnf.Lit.t)
(** Tseitin translation: one variable per node, three clauses per AND.
    The mapping converts any edge of the manager to a formula literal. *)

val node_count : man -> int
(** Inputs + AND nodes + the constant. *)
