(* Nodes: node 0 is the constant (TRUE when referenced uncomplemented);
   inputs and ANDs follow.  An edge (lit) packs a node index and a
   complement bit, like CNF literals. *)

type lit = int

type node =
  | Const
  | Input of int
  | And of lit * lit

type man = {
  nodes : node Sat.Vec.t;
  strash : (lit * lit, int) Hashtbl.t;
  mutable inputs : int;
}

let create () =
  let m =
    { nodes = Sat.Vec.create ~dummy:Const (); strash = Hashtbl.create 256;
      inputs = 0 }
  in
  Sat.Vec.push m.nodes Const;
  m

let const_true : lit = 0
let const_false : lit = 1
let node_of (l : lit) = l lsr 1
let neg (l : lit) : lit = l lxor 1
let is_complemented l = l land 1 = 1

let add_input m =
  let id = Sat.Vec.size m.nodes in
  Sat.Vec.push m.nodes (Input m.inputs);
  m.inputs <- m.inputs + 1;
  (id * 2 : lit)

let num_inputs m = m.inputs

let input m i =
  if i < 0 || i >= m.inputs then raise Not_found;
  (* inputs occupy consecutive node slots after the constant *)
  let found = ref (-1) in
  Sat.Vec.iter
    (let id = ref (-1) in
     fun node ->
       incr id;
       match node with
       | Input k -> if k = i then found := !id
       | Const | And _ -> ())
    m.nodes;
  ((!found * 2) : lit)

let num_ands m =
  let n = ref 0 in
  Sat.Vec.iter (function And _ -> incr n | Const | Input _ -> ()) m.nodes;
  !n

let node_count m = Sat.Vec.size m.nodes

let and_ m a b =
  if a = const_false || b = const_false then const_false
  else if a = const_true then b
  else if b = const_true then a
  else if a = b then a
  else if a = neg b then const_false
  else begin
    let x, y = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.strash (x, y) with
    | Some id -> (id * 2 : lit)
    | None ->
      let id = Sat.Vec.size m.nodes in
      Sat.Vec.push m.nodes (And (x, y));
      Hashtbl.add m.strash (x, y) id;
      (id * 2 : lit)
  end

let or_ m a b = neg (and_ m (neg a) (neg b))

let xor m a b =
  (* a xor b = (a | b) & ~(a & b) *)
  and_ m (or_ m a b) (neg (and_ m a b))

let mux m s t e = or_ m (and_ m s t) (and_ m (neg s) e)

let eval m inputs l =
  let memo = Array.make (Sat.Vec.size m.nodes) (-1) in
  let rec node_val id =
    if memo.(id) >= 0 then memo.(id) = 1
    else begin
      let v =
        match Sat.Vec.get m.nodes id with
        | Const -> true
        | Input k -> inputs.(k)
        | And (a, b) -> edge_val a && edge_val b
      in
      memo.(id) <- (if v then 1 else 0);
      v
    end
  and edge_val l =
    let v = node_val (node_of l) in
    if is_complemented l then not v else v
  in
  edge_val l

let build_from m circuit input_edges =
  let values = Array.make (max 1 (Circuit.Netlist.num_nodes circuit)) const_false in
  List.iteri
    (fun i id -> values.(id) <- input_edges.(i))
    (Circuit.Netlist.inputs circuit);
  let conj = function
    | [] -> const_true
    | e :: rest -> List.fold_left (and_ m) e rest
  in
  for id = 0 to Circuit.Netlist.num_nodes circuit - 1 do
    match Circuit.Netlist.node circuit id with
    | Circuit.Netlist.Input -> ()
    | Circuit.Netlist.Const b ->
      values.(id) <- (if b then const_true else const_false)
    | Circuit.Netlist.Gate (g, fs) ->
      let ins = List.map (fun f -> values.(f)) fs in
      values.(id) <-
        (match g with
         | Circuit.Gate.And -> conj ins
         | Circuit.Gate.Nand -> neg (conj ins)
         | Circuit.Gate.Or -> neg (conj (List.map neg ins))
         | Circuit.Gate.Nor -> conj (List.map neg ins)
         | Circuit.Gate.Xor ->
           (match ins with
            | e :: rest -> List.fold_left (xor m) e rest
            | [] -> const_false)
         | Circuit.Gate.Xnor ->
           (match ins with
            | e :: rest -> neg (List.fold_left (xor m) e rest)
            | [] -> const_true)
         | Circuit.Gate.Not -> (match ins with [ e ] -> neg e | _ -> assert false)
         | Circuit.Gate.Buf -> (match ins with [ e ] -> e | _ -> assert false))
  done;
  values

let of_netlist circuit =
  let m = create () in
  let input_edges =
    Array.of_list (List.map (fun _ -> add_input m) (Circuit.Netlist.inputs circuit))
  in
  let values = build_from m circuit input_edges in
  (m, List.map (fun (n, o) -> (n, values.(o))) (Circuit.Netlist.outputs circuit))

let merge_netlists c1 c2 =
  if List.length (Circuit.Netlist.inputs c1)
     <> List.length (Circuit.Netlist.inputs c2)
     || List.length (Circuit.Netlist.outputs c1)
        <> List.length (Circuit.Netlist.outputs c2)
  then invalid_arg "Aig.merge_netlists: interface mismatch";
  let m = create () in
  let input_edges =
    Array.of_list (List.map (fun _ -> add_input m) (Circuit.Netlist.inputs c1))
  in
  let v1 = build_from m c1 input_edges in
  let v2 = build_from m c2 input_edges in
  let pairs =
    List.map2
      (fun a b -> (v1.(a), v2.(b)))
      (Circuit.Netlist.output_ids c1) (Circuit.Netlist.output_ids c2)
  in
  (m, pairs)

let to_netlist m ~outputs =
  let c = Circuit.Netlist.create () in
  let node_map = Array.make (Sat.Vec.size m.nodes) (-1) in
  let not_memo = Hashtbl.create 32 in
  let rec node_id id =
    if node_map.(id) >= 0 then node_map.(id)
    else begin
      let nid =
        match Sat.Vec.get m.nodes id with
        | Const ->
          Circuit.Netlist.add_const c true
        | Input _ -> Circuit.Netlist.add_input c
        | And (a, b) ->
          let fa = edge a and fb = edge b in
          Circuit.Netlist.add_gate c Circuit.Gate.And [ fa; fb ]
      in
      node_map.(id) <- nid;
      nid
    end
  and edge l =
    let nid = node_id (node_of l) in
    if is_complemented l then (
      match Hashtbl.find_opt not_memo nid with
      | Some inv -> inv
      | None ->
        let inv = Circuit.Netlist.add_gate c Circuit.Gate.Not [ nid ] in
        Hashtbl.add not_memo nid inv;
        inv)
    else nid
  in
  (* inputs must exist (in order) even if unused by the outputs *)
  for id = 0 to Sat.Vec.size m.nodes - 1 do
    match Sat.Vec.get m.nodes id with
    | Input _ -> ignore (node_id id)
    | Const | And _ -> ()
  done;
  List.iter (fun (name, l) -> Circuit.Netlist.set_output ~name c (edge l)) outputs;
  c

let to_cnf m =
  let f = Cnf.Formula.create () in
  let vars = Array.init (Sat.Vec.size m.nodes) (fun _ -> Cnf.Formula.fresh_var f) in
  let lit_of (l : lit) =
    let base = Cnf.Lit.pos vars.(node_of l) in
    if is_complemented l then Cnf.Lit.negate base else base
  in
  (* constant-true node *)
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos vars.(0) ];
  for id = 0 to Sat.Vec.size m.nodes - 1 do
    match Sat.Vec.get m.nodes id with
    | Const | Input _ -> ()
    | And (a, b) ->
      let out = Cnf.Lit.pos vars.(id) in
      let la = lit_of a and lb = lit_of b in
      Cnf.Formula.add_clause_l f [ Cnf.Lit.negate out; la ];
      Cnf.Formula.add_clause_l f [ Cnf.Lit.negate out; lb ];
      Cnf.Formula.add_clause_l f
        [ out; Cnf.Lit.negate la; Cnf.Lit.negate lb ]
  done;
  (f, lit_of)
