(* Test pattern generation for stuck-at faults (Sec. 3 of the paper).

   Generates tests for every stuck-at fault of a carry-skip adder with
   injected redundant logic, reporting coverage, the redundant (hence
   untestable) faults, and the effect of fault simulation.

   Run with: dune exec examples/example_atpg.exe *)

let () =
  let base = Circuit.Generators.carry_skip_adder ~bits:4 ~block:2 in
  let circuit = Circuit.Transform.add_redundancy ~seed:7 ~count:2 base in
  Format.printf "circuit: %a@." Circuit.Netlist.pp_stats circuit;

  Format.printf "@.-- full flow with fault simulation --@.";
  let s = Eda.Atpg.run circuit in
  Format.printf "%a@." Eda.Atpg.pp_summary s;

  Format.printf "@.-- the redundant faults --@.";
  let redundant = Eda.Redundancy.identify circuit in
  List.iter
    (fun f -> Format.printf "  %a@." (Eda.Atpg.pp_fault circuit) f)
    redundant;

  Format.printf "@.-- redundancy removal --@.";
  let r = Eda.Redundancy.remove circuit in
  Format.printf "gates %d -> %d after removing %d redundancies@."
    r.Eda.Redundancy.gates_before r.Eda.Redundancy.gates_after
    r.Eda.Redundancy.removed_faults;

  Format.printf "@.-- one fault in detail --@.";
  match Eda.Atpg.fault_list circuit with
  | f :: _ ->
    (match Eda.Atpg.generate_test circuit f with
     | Eda.Atpg.Test v, st ->
       let bits =
         String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')
       in
       Format.printf "fault %a: test vector [%s] (%d decisions)@."
         (Eda.Atpg.pp_fault circuit) f bits st.Sat.Types.decisions
     | Eda.Atpg.Redundant, _ -> Format.printf "fault is redundant@."
     | Eda.Atpg.Aborted why, _ -> Format.printf "aborted: %s@." why)
  | [] -> ()
