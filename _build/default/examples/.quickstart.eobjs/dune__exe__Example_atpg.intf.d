examples/example_atpg.mli:
