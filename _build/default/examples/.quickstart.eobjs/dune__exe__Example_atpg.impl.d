examples/example_atpg.ml: Array Circuit Eda Format List Sat String
