examples/example_delay.ml: Circuit Eda Format List
