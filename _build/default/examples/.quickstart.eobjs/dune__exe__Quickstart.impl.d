examples/quickstart.ml: Array Circuit Cnf Csat Format List Option Sat
