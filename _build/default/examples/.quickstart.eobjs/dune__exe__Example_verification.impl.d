examples/example_verification.ml: Circuit Cnf Eda Format List Sat
