examples/example_routing.ml: Eda Format List Sat
