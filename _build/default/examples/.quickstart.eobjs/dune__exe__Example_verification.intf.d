examples/example_verification.mli:
