examples/example_bmc.ml: Array Circuit Eda Format List Printf String
