examples/quickstart.mli:
