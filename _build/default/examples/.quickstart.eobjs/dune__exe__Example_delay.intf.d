examples/example_delay.mli:
