examples/example_equivalence.ml: Array Circuit Eda Format Sat String
