examples/example_bmc.mli:
