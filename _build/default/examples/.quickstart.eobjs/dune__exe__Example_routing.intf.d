examples/example_routing.mli:
