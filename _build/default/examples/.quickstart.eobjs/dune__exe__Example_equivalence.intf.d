examples/example_equivalence.mli:
