(* Quickstart: build a CNF formula, solve it, inspect the model; then
   encode a circuit property (the paper's Figure 1) and solve that.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. plain CNF: (x1 | x2) & (~x1 | x2) & (x1 | ~x2) *)
  let f = Cnf.Dimacs.parse_string "p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n" in
  (match Sat.Cdcl.solve (Sat.Cdcl.create f) with
   | Sat.Types.Sat m ->
     Format.printf "CNF instance: SATISFIABLE, x1=%b x2=%b@." m.(0) m.(1)
   | outcome -> Format.printf "CNF instance: %a@." Sat.Types.pp_outcome outcome);

  (* 2. the same through the full pipeline front-end *)
  let report =
    Sat.Solver.solve ~pipeline:Sat.Solver.full_pipeline f
  in
  Format.printf "Pipeline: %a in %.4fs@." Sat.Types.pp_outcome
    report.Sat.Solver.outcome report.Sat.Solver.time_seconds;

  (* 3. circuits: Figure 1 of the paper.  Encode the circuit per
     Table 1 and ask for an input pattern making z = 0. *)
  let c = Circuit.Generators.fig1 () in
  Format.printf "Figure 1 circuit: %a@." Circuit.Netlist.pp_stats c;
  let enc = Circuit.Encode.encode c in
  let z = Option.get (Circuit.Netlist.find_by_name c "z") in
  Circuit.Encode.assert_output enc.Circuit.Encode.formula
    (enc.Circuit.Encode.lit_of_node z) false;
  (match Sat.Cdcl.solve (Sat.Cdcl.create enc.Circuit.Encode.formula) with
   | Sat.Types.Sat m ->
     let v name =
       let n = Option.get (Circuit.Netlist.find_by_name c name) in
       m.(Cnf.Lit.var (enc.Circuit.Encode.lit_of_node n))
     in
     Format.printf "z=0 reachable with w1=%b w2=%b (x=%b y=%b z=%b)@."
       (v "w1") (v "w2") (v "x") (v "y") (v "z")
   | outcome -> Format.printf "%a@." Sat.Types.pp_outcome outcome);

  (* 4. the structural layer of Section 5 answers the same query with a
     partial input pattern — no overspecification *)
  let r = Csat.solve ~objectives:[ (z, false) ] c in
  Format.printf
    "structural layer: %d of %d inputs specified (don't-cares elsewhere)@."
    r.Csat.specified_inputs r.Csat.total_inputs;
  List.iter
    (fun (node, value) ->
       Format.printf "  %s = %b@." (Circuit.Netlist.name c node) value)
    r.Csat.pattern
