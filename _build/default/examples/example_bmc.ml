(* Bounded model checking (Sec. 3, [5]): find the shortest input
   sequence driving a sequential circuit into a bad state.

   Run with: dune exec examples/example_bmc.exe *)

let show name seq ~max_bound =
  let r = Eda.Bmc.check ~max_bound seq in
  (match r.Eda.Bmc.result with
   | Eda.Bmc.Counterexample frames ->
     Format.printf "%s: counterexample of length %d@." name
       (List.length frames);
     List.iteri
       (fun t frame ->
          let bits =
            String.init (Array.length frame) (fun i ->
                if frame.(i) then '1' else '0')
          in
          Format.printf "  cycle %2d: inputs [%s]@." t bits)
       frames;
     (* replay it on the simulator *)
     let outs = Circuit.Sequential.simulate seq ~inputs:frames in
     Format.printf "  replay: bad=%b in the final cycle@."
       (List.nth outs (List.length outs - 1)).(0)
   | Eda.Bmc.No_counterexample ->
     Format.printf "%s: no counterexample up to bound %d@." name
       r.Eda.Bmc.bound_reached);
  Format.printf "  solver effort per bound: %s@.@."
    (String.concat ", "
       (List.map
          (fun (k, c) -> Printf.sprintf "k%d:%dcfl" k c)
          r.Eda.Bmc.per_bound_conflicts))

let () =
  Format.printf "-- correct 4-bit counter: bad = (count = 15) --@.";
  show "counter" (Circuit.Sequential.counter ~bits:4 ~buggy_at:None) ~max_bound:20;

  Format.printf "-- buggy counter: jumps from 5 to 15 --@.";
  show "buggy counter"
    (Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 5))
    ~max_bound:20;

  Format.printf "-- bound too small: property holds up to 10 --@.";
  show "deep counter" (Circuit.Sequential.counter ~bits:5 ~buggy_at:None) ~max_bound:10
