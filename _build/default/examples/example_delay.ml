(* SAT-based circuit delay computation (Sec. 3, [28, 36]): the true
   (floating-mode) delay of a carry-skip adder is smaller than its
   topological delay because the ripple path through a skipping block is
   a false path.

   Run with: dune exec examples/example_delay.exe *)

let report name c =
  Format.printf "-- %s: %a --@." name Circuit.Netlist.pp_stats c;
  List.iter
    (fun r ->
       Format.printf "  %-6s topo=%2d true=%2d%s@." r.Eda.Delay.output
         r.Eda.Delay.topological r.Eda.Delay.true_floating
         (if r.Eda.Delay.false_path then "   <- false path" else ""))
    (Eda.Delay.report c);
  Format.printf "@."

let () =
  report "ripple adder (8 bits)" (Circuit.Generators.ripple_adder ~bits:8);
  report "carry-skip adder (8 bits, blocks of 4)"
    (Circuit.Generators.carry_skip_adder ~bits:8 ~block:4);
  report "parity tree (8 bits)" (Circuit.Generators.parity ~bits:8);

  (* crosstalk analysis rides on the same timed encoding *)
  let c = Circuit.Generators.carry_skip_adder ~bits:4 ~block:2 in
  Format.printf "-- crosstalk windows on the carry-skip adder --@.";
  let pairs = Eda.Crosstalk.coupled_pairs c ~max_level_gap:0 in
  let examined = ref 0 and noisy = ref 0 in
  List.iter
    (fun (a, b) ->
       if !examined < 10 then begin
         incr examined;
         let q = { Eda.Crosstalk.victim = a; aggressor = b; window = (2, 5) } in
         match Eda.Crosstalk.analyze c q with
         | Eda.Crosstalk.Noise (_, _, t) ->
           incr noisy;
           Format.printf "  %s / %s: opposite switching possible at t=%d@."
             (Circuit.Netlist.name c a) (Circuit.Netlist.name c b) t
         | Eda.Crosstalk.Safe -> ()
         | Eda.Crosstalk.Unknown why -> Format.printf "  unknown: %s@." why
       end)
    pairs;
  Format.printf "%d of %d examined pairs can couple in window [2,5]@."
    !noisy !examined
