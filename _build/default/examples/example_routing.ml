(* SAT-based FPGA detailed routing (Sec. 3, [29, 30]): sweep the channel
   width and find the routability crossover.

   Run with: dune exec examples/example_routing.exe *)

let () =
  let base =
    Eda.Routing.random_instance ~seed:2026 ~width:5 ~height:5 ~tracks:1
      ~nets:14
  in
  Format.printf "grid 5x5, %d two-pin nets@.@." (List.length base.Eda.Routing.nets);
  Format.printf "%-8s %-12s %-10s %-10s@." "tracks" "result" "decisions"
    "conflicts";
  let crossover = ref None in
  for tracks = 1 to 5 do
    let inst = { base with Eda.Routing.tracks } in
    let result, stats = Eda.Routing.route inst in
    let label =
      match result with
      | Eda.Routing.Routed routes ->
        assert (Eda.Routing.check_routes inst routes);
        if !crossover = None then crossover := Some tracks;
        "ROUTED"
      | Eda.Routing.Unroutable -> "unroutable"
      | Eda.Routing.Unknown _ -> "unknown"
    in
    Format.printf "%-8d %-12s %-10d %-10d@." tracks label
      stats.Sat.Types.decisions stats.Sat.Types.conflicts
  done;
  (match !crossover with
   | Some t -> Format.printf "@.routable from %d tracks upward@." t
   | None -> Format.printf "@.not routable within 5 tracks@.");
  (* show one routing in detail *)
  match
    Eda.Routing.route { base with Eda.Routing.tracks = 5 }
  with
  | Eda.Routing.Routed routes, _ ->
    Format.printf "@.a 5-track solution:@.";
    List.iter
      (fun r ->
         let net = List.nth base.Eda.Routing.nets r.Eda.Routing.net_index in
         let (sx, sy) = net.Eda.Routing.src and (dx, dy) = net.Eda.Routing.dst in
         Format.printf "  net %2d (%d,%d)->(%d,%d): %s-first on track %d@."
           r.Eda.Routing.net_index sx sy dx dy
           (if r.Eda.Routing.vertical_first then "vertical" else "horizontal")
           r.Eda.Routing.track)
      routes
  | _ -> ()
