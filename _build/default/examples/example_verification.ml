(* Verification-grade answers: certified UNSAT proofs, unbounded safety
   by k-induction, and processor-style reasoning with uninterpreted
   functions.

   Run with: dune exec examples/example_verification.exe *)

let () =
  (* 1. certified solving: every learned clause is replayed by an
     independent reverse-unit-propagation checker *)
  Format.printf "-- certified UNSAT --@.";
  let php =
    let v i j = Cnf.Lit.pos ((i * 5) + j) in
    let f = Cnf.Formula.create ~nvars:30 () in
    for i = 0 to 5 do
      Cnf.Formula.add_clause_l f (List.init 5 (fun j -> v i j))
    done;
    for j = 0 to 4 do
      for i1 = 0 to 5 do
        for i2 = i1 + 1 to 5 do
          Cnf.Formula.add_clause_l f
            [ Cnf.Lit.negate (v i1 j); Cnf.Lit.negate (v i2 j) ]
        done
      done
    done;
    f
  in
  (match Sat.Proof.solve_certified php with
   | Sat.Types.Unsat, Sat.Proof.Valid_refutation ->
     Format.printf
       "pigeonhole(6,5): UNSAT, and the emitted proof checks out@."
   | _ -> Format.printf "unexpected@.");

  (* 2. k-induction: from 'no counterexample up to k' to 'safe forever' *)
  Format.printf "@.-- unbounded safety --@.";
  let ring = Circuit.Sequential.ring_counter ~bits:8 in
  (match Eda.Bmc.prove_inductive ~max_k:3 ring with
   | Eda.Bmc.Proved k ->
     Format.printf
       "8-stage token ring: two tokens can never coexist (k=%d induction)@."
       k
   | _ -> Format.printf "unexpected@.");
  let buggy = Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 5) in
  (match Eda.Bmc.prove_inductive ~max_k:20 buggy with
   | Eda.Bmc.Refuted frames ->
     Format.printf "buggy counter: refuted with a %d-cycle trace@."
       (List.length frames)
   | _ -> Format.printf "unexpected@.");

  (* 3. sequential equivalence: product machine + register
     correspondence *)
  Format.printf "@.-- sequential equivalence --@.";
  let s27 = Circuit.Generators.s27 () in
  (match Eda.Seq_equiv.check s27 (Circuit.Generators.s27 ()) with
   | Eda.Seq_equiv.Equivalent k ->
     Format.printf "ISCAS s27 vs itself: equivalent for all inputs (k=%d)@." k
   | _ -> Format.printf "unexpected@.");
  let good = Circuit.Sequential.counter ~bits:4 ~buggy_at:None in
  let bad' = Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 6) in
  (match Eda.Seq_equiv.check good bad' with
   | Eda.Seq_equiv.Different frames ->
     Format.printf "good vs buggy counter: distinguished in %d cycles@."
       (List.length frames)
   | _ -> Format.printf "unexpected@.");

  (* 4. uninterpreted functions: the datapath-abstraction trick of
     processor verification *)
  Format.printf "@.-- equality + uninterpreted functions --@.";
  let open Eda.Euf in
  let src = var "src" and dest = var "dest" in
  let bus = var "bus" and regval = var "regval" in
  let spec_operand = Ite (src === dest, bus, regval) in
  let impl_operand = Ite (Not (src === dest), regval, bus) in
  let alu a b = fn "alu" [ a; b ] in
  Format.printf "bypass mux + abstract ALU agree with the spec: %b@."
    (valid (alu spec_operand (var "op2") === alu impl_operand (var "op2")));
  let broken = Ite (src === dest, regval, bus) in
  Format.printf "swapped-polarity bypass caught: %b@."
    (not (valid (alu spec_operand (var "op2") === alu broken (var "op2"))))
