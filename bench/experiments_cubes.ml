(* Experiment E29: cube-and-conquer vs portfolio vs sequential CDCL.

   Three engines on the same multiplier miters, interleaved (one rep =
   all three back to back, so machine drift hits them equally),
   best-of-[reps] wall clock per engine:

     seq     one CDCL run (the baseline every parallel engine must beat
             in *total work*, not just wall clock)
     port    the diversified portfolio with clause sharing (E24 engine)
     cube    lookahead cube generation + work-stealing conquer workers
             sharing low-LBD clauses through the same pool

   Families: cross-architecture multiplier miters (array vs Wallace —
   equivalent, so UNSAT, and structurally dissimilar: the E27 shape
   where internal cut points are scarce), XOR-decomposition miters
   (array multiplier vs its rewrite — UNSAT), and injected-bug miters
   (usually SAT, exercising the early-exit path and model validation).

   Every definite verdict is validated: UNSAT instances against
   [Proof.solve_certified] (an independent RUP-checked sequential run),
   SAT models by direct evaluation on the miter CNF.  The engines must
   also agree with each other wherever both are definite.

   The honest-parallelism comparison on this host is *total conflicts*:
   cube-and-conquer at [jobs] workers should spend measurably fewer
   than [jobs] x the sequential conflicts (the decomposition prunes the
   search, it does not just duplicate it), and the JSON records
   [host_cores] so wall-clock numbers are read in context — on a
   single-core host the parallel engines time-slice and wall clock is
   not expected to improve.

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_cubes.json in the current dir *)

module T = Sat.Types

type row = {
  name : string;
  family : string;
  expected : string;        (* certified / evaluated verdict: sat / unsat *)
  seq_tag : string;
  port_tag : string;
  cube_tag : string;
  seq_s : float;
  port_s : float;
  cube_s : float;
  seq_conflicts : int;
  cube_conflicts : int;
  cubes : int;
  refuted : int;
  solved_cubes : int;
  splits : int;
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv
let jobs = 2
let cutoff = 10_000

(* every engine gets the same (generous) conflict budget so a full run
   terminates even if an instance is mis-sized; within it all verdicts
   here are definite *)
let budget = 4_000_000

let seq_config = { T.default with T.max_conflicts = Some budget }

let tag = function
  | T.Sat _ -> "sat"
  | T.Unsat -> "unsat"
  | _ -> "?"

let conflicts_of = function
  | Some st -> st.T.conflicts
  | None -> 0

(* --- instance families --------------------------------------------------- *)

let cross bits () =
  Circuit.Miter.to_cnf
    (Circuit.Generators.multiplier ~bits)
    (Circuit.Generators.wallace_multiplier ~bits)

let mult_xor bits () =
  let c = Circuit.Generators.multiplier ~bits in
  Circuit.Miter.to_cnf c (Circuit.Transform.rewrite_xor c)

let bug bits seed () =
  let c = Circuit.Generators.wallace_multiplier ~bits in
  let mutant, _what = Circuit.Transform.inject_bug ~seed c in
  Circuit.Miter.to_cnf c mutant

let run_case ~reps ~family name mk =
  let f, _map = mk () in
  (* ground truth once per instance: certified sequential for UNSAT,
     model evaluation for SAT *)
  let expected =
    match Sat.Proof.solve_certified ~config:seq_config f with
    | T.Unsat, Sat.Proof.Valid_refutation -> "unsat"
    | T.Unsat, _ -> failwith (name ^ ": uncertified UNSAT refutation")
    | T.Sat m, _ ->
      if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
        failwith (name ^ ": certified run returned a non-model");
      "sat"
    | _ -> "?"
  in
  let seq_best = ref infinity and port_best = ref infinity in
  let cube_best = ref infinity in
  let seq_tag = ref "?" and port_tag = ref "?" and cube_tag = ref "?" in
  let seq_conflicts = ref 0 and cube_conflicts = ref 0 in
  let cubes = ref 0 and refuted = ref 0 in
  let solved_cubes = ref 0 and splits = ref 0 in
  let check what t =
    if t <> "?" && expected <> "?" && t <> expected then
      failwith (Printf.sprintf "%s: %s says %s, expected %s" name what t
                  expected)
  in
  for rep = 1 to reps do
    let seq = Sat.Solver.solve ~engine:(Sat.Solver.Cdcl seq_config) f in
    if seq.Sat.Solver.time_seconds < !seq_best then begin
      seq_best := seq.Sat.Solver.time_seconds;
      seq_conflicts := conflicts_of seq.Sat.Solver.solver_stats
    end;
    seq_tag := tag seq.Sat.Solver.outcome;
    let port =
      Sat.Solver.solve
        ~engine:
          (Sat.Solver.Portfolio
             { Sat.Portfolio.default_options with
               Sat.Portfolio.jobs;
               config = { seq_config with T.random_seed = rep } })
        f
    in
    if port.Sat.Solver.time_seconds < !port_best then
      port_best := port.Sat.Solver.time_seconds;
    port_tag := tag port.Sat.Solver.outcome;
    let cc =
      Sat.Conquer.solve
        ~options:
          { Sat.Conquer.default_options with
            Sat.Conquer.jobs;
            cutoff;
            cube = { Sat.Cube.default_options with Sat.Cube.seed = rep };
            config = { T.default with T.random_seed = rep } }
        f
    in
    if cc.Sat.Conquer.time_seconds < !cube_best then begin
      cube_best := cc.Sat.Conquer.time_seconds;
      cube_conflicts := cc.Sat.Conquer.stats.T.conflicts;
      cubes := List.length cc.Sat.Conquer.lookahead.Sat.Cube.cubes;
      refuted := List.length cc.Sat.Conquer.lookahead.Sat.Cube.refuted;
      solved_cubes := cc.Sat.Conquer.solved_cubes;
      splits := cc.Sat.Conquer.splits
    end;
    cube_tag := tag cc.Sat.Conquer.outcome;
    (match cc.Sat.Conquer.outcome with
     | T.Sat m ->
       if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
         failwith (name ^ ": cube-conquer returned a non-model")
     | _ -> ());
    check "seq" !seq_tag;
    check "portfolio" !port_tag;
    check "cube-conquer" !cube_tag
  done;
  {
    name;
    family;
    expected;
    seq_tag = !seq_tag;
    port_tag = !port_tag;
    cube_tag = !cube_tag;
    seq_s = !seq_best;
    port_s = !port_best;
    cube_s = !cube_best;
    seq_conflicts = !seq_conflicts;
    cube_conflicts = !cube_conflicts;
    cubes = !cubes;
    refuted = !refuted;
    solved_cubes = !solved_cubes;
    splits = !splits;
  }

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | l ->
    let n = List.length l in
    let a = Array.of_list l in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

(* cube total conflicts as a fraction of jobs x sequential conflicts:
   below 1.0 means the decomposition beats naive work duplication *)
let work_ratio r =
  if r.seq_conflicts = 0 then None
  else Some (float_of_int r.cube_conflicts
             /. (float_of_int jobs *. float_of_int r.seq_conflicts))

let write_json path ~mode rows =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b "  \"experiment\": \"E29\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"cube_cutoff\": %d,\n" cutoff);
  Buffer.add_string b
    (Printf.sprintf "  \"conflict_budget\": %d,\n" budget);
  Buffer.add_string b "  \"instances\": [\n";
  List.iteri
    (fun i r ->
       let ratio =
         match work_ratio r with
         | Some x -> Printf.sprintf "%.3f" x
         | None -> "null"
       in
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"family\": \"%s\", \"expected\": \
             \"%s\", \"seq\": \"%s\", \"portfolio\": \"%s\", \"cube\": \
             \"%s\", \"seq_s\": %.6f, \"portfolio_s\": %.6f, \"cube_s\": \
             %.6f, \"seq_conflicts\": %d, \"cube_conflicts\": %d, \
             \"conflicts_vs_jobsx_seq\": %s, \"cubes\": %d, \
             \"refuted_branches\": %d, \"solved_cubes\": %d, \"splits\": \
             %d}%s\n"
            r.name r.family r.expected r.seq_tag r.port_tag r.cube_tag
            r.seq_s r.port_s r.cube_s r.seq_conflicts r.cube_conflicts
            ratio r.cubes r.refuted r.solved_cubes r.splits
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  let ratios = List.filter_map work_ratio rows in
  Buffer.add_string b
    (Printf.sprintf "  \"median_conflicts_vs_jobsx_seq\": %.3f,\n"
       (median ratios));
  Buffer.add_string b
    (Printf.sprintf "  \"all_verdicts_validated\": %b\n"
       (List.for_all
          (fun r ->
             r.expected <> "?" && r.seq_tag = r.expected
             && r.port_tag = r.expected && r.cube_tag = r.expected)
          rows));
  Buffer.add_string b "}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e29 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E29 cube-and-conquer vs portfolio vs sequential"
    "lookahead decomposition + work-stealing conquer workers, interleaved \
     against the clause-sharing portfolio and one CDCL run";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case ?(reps = reps) ~family name mk =
    rows := run_case ~reps ~family name mk :: !rows
  in
  List.iter
    (fun bits ->
       case ~family:"cross" (Printf.sprintf "mult-vs-wall%d" bits)
         (cross bits))
    (if smoke then [ 3 ] else [ 4; 5 ]);
  List.iter
    (fun bits ->
       case ~family:"xor" (Printf.sprintf "mult%d-xor" bits) (mult_xor bits))
    (if smoke then [ 3 ] else [ 4; 5 ]);
  List.iter
    (fun (bits, seed) ->
       case ~family:"bug" (Printf.sprintf "wall%d-bug%d" bits seed)
         (bug bits seed))
    (if smoke then [ (3, 1) ] else [ (4, 1); (5, 2) ]);
  (* the hard anchor: a cross-architecture miter an order of magnitude
     past the 5-bit instances (best-of-1 — this one is expensive) *)
  if not smoke then
    case ~reps:1 ~family:"cross" "mult-vs-wall6" (cross 6);
  let rows = List.rev !rows in
  Util.row "%-16s %-6s %-5s %9s %9s %9s %10s %10s %6s@." "instance" "family"
    "ans" "seq" "port" "cube" "seq-confl" "cube-confl" "work";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %-5s %8.3fs %8.3fs %8.3fs %10d %10d %6s@."
         r.name r.family r.cube_tag r.seq_s r.port_s r.cube_s
         r.seq_conflicts r.cube_conflicts
         (match work_ratio r with
          | Some x -> Printf.sprintf "%.2fx" x
          | None -> "-"))
    rows;
  let ratios = List.filter_map work_ratio rows in
  if ratios <> [] then
    Util.row
      "median cube conflicts vs %dx sequential: %.2fx (below 1.00 = the \
       decomposition prunes)@."
      jobs (median ratios);
  if json () then begin
    write_json "BENCH_cubes.json" ~mode rows;
    Util.row "@.wrote BENCH_cubes.json (%s mode)@." mode
  end;
  Util.row
    "@.every verdict validated: UNSAT against a RUP-certified sequential \
     run, SAT models by evaluation on the miter CNF.  Best of %d \
     interleaved run(s) per engine at jobs=%d on a %d-core host — on few \
     cores read the conflict totals, not the wall clock.@."
    reps jobs
    (Domain.recommended_domain_count ())
