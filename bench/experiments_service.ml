(* Experiment E28: the SAT service daemon (satd).

   Three measurements:

   1. warm result cache — a repeated-CEC query stream (the same miters
      re-verified over and over, as a CI loop would) through one
      scheduler, cache off vs cache on; acceptance: cached median
      per-query latency at least 2x better;
   2. warm session pool — an incrementally grown clause chain (a BMC
      unrolling shape): each query extends the previous one, cache on
      resumes the pooled session at the longest prefix instead of
      solving from scratch;
   3. throughput scaling — a live daemon on a Unix socket, 8 concurrent
      client domains hammering it with real (uncached) queries, for
      worker-pool sizes 1/2/4.

   --smoke   tiny instance sizes: asserts the harness runs end to end
   --json    also write BENCH_service.json in the current dir          *)

module J = Sat.Json
module T = Sat.Types
module P = Service.Protocol

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

let clauses_of f =
  let out = ref [] in
  Cnf.Formula.iter_clauses f (fun c ->
      out := List.map Cnf.Lit.to_dimacs (Cnf.Clause.to_list c) :: !out);
  List.rev !out

let miter_clauses a b = clauses_of (fst (Circuit.Miter.to_cnf a b))

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let sum = List.fold_left ( +. ) 0.

(* --- 1: repeated-CEC stream through the result cache --------------------- *)

type cache_row = {
  label : string;
  distinct : int;
  repeats : int;
  cold_median_s : float;
  warm_median_s : float;
  cold_total_s : float;
  warm_total_s : float;
  speedup : float;
}

let cec_stream ~smoke =
  let g = Circuit.Generators.multiplier in
  let w = Circuit.Generators.wallace_multiplier in
  let named =
    if smoke then
      [
        ("cec-mult2", miter_clauses (g ~bits:2) (w ~bits:2));
        ("cec-add4",
         miter_clauses
           (Circuit.Generators.ripple_adder ~bits:4)
           (Circuit.Generators.kogge_stone_adder ~bits:4));
      ]
    else
      [
        ("cec-mult4", miter_clauses (g ~bits:4) (w ~bits:4));
        ("cec-mult5", miter_clauses (g ~bits:5) (w ~bits:5));
        ("cec-add12",
         miter_clauses
           (Circuit.Generators.ripple_adder ~bits:12)
           (Circuit.Generators.kogge_stone_adder ~bits:12));
        ("cec-alu3",
         miter_clauses
           (Circuit.Generators.alu ~bits:3)
           (Circuit.Transform.simplify (Circuit.Generators.alu ~bits:3)));
      ]
  in
  let repeats = if smoke then 3 else 6 in
  (* interleave: q1 q2 ... qk, q1 q2 ... qk, ... — a CI loop shape *)
  let stream =
    List.concat_map (fun _ -> named) (List.init repeats (fun i -> i))
  in
  (named, repeats, stream)

let run_stream ~use_cache stream =
  let sch = Service.Scheduler.create ~jobs:1 () in
  let times =
    List.map
      (fun (_, cls) ->
         let t0 = Unix.gettimeofday () in
         (match Service.Scheduler.solve sch (P.mk_solve ~use_cache cls) with
          | Ok a ->
            (match a.Service.Scheduler.outcome with
             | T.Unknown r -> failwith ("E28: query did not finish: " ^ r)
             | _ -> ())
          | Error _ -> failwith "E28: scheduler refused a query");
         Unix.gettimeofday () -. t0)
      stream
  in
  Service.Scheduler.shutdown sch;
  times

let bench_result_cache ~smoke =
  let named, repeats, stream = cec_stream ~smoke in
  let cold = run_stream ~use_cache:false stream in
  let warm = run_stream ~use_cache:true stream in
  (* the first round of the cached run populates the cache; judge the
     steady state on the repeat rounds only *)
  let k = List.length named in
  let drop_first l = List.filteri (fun i _ -> i >= k) l in
  let cold_m = median (drop_first cold) in
  let warm_m = median (drop_first warm) in
  {
    label = "repeated-cec";
    distinct = k;
    repeats;
    cold_median_s = cold_m;
    warm_median_s = warm_m;
    cold_total_s = sum cold;
    warm_total_s = sum warm;
    speedup = (if warm_m > 0. then cold_m /. warm_m else infinity);
  }

(* --- 2: incrementally grown chain through the session pool ---------------- *)

let grown_chain ~smoke =
  (* base formula plus a growing tail of constraints: query i sees the
     base and the first i tail blocks — every query extends the last *)
  let nvars = if smoke then 30 else 140 in
  let base = clauses_of (Util.random_3sat ~seed:11 ~nvars ~ratio:3.5) in
  let steps = if smoke then 3 else 8 in
  let block_size = if smoke then 8 else 40 in
  let tail =
    clauses_of
      (Util.random_3sat ~seed:42 ~nvars ~ratio:10.)
  in
  let block i = List.filteri (fun j _ -> j / block_size = i) tail in
  List.init steps (fun i ->
      base @ List.concat (List.init (i + 1) block))

let bench_session_pool ~smoke =
  let queries = grown_chain ~smoke in
  let run use_cache =
    run_stream ~use_cache (List.map (fun cls -> ("grown", cls)) queries)
  in
  let cold = run false in
  let warm = run true in
  (* every warm query after the first resumes the previous one *)
  let cold_m = median (List.tl cold) in
  let warm_m = median (List.tl warm) in
  {
    label = "grown-chain";
    distinct = List.length queries;
    repeats = 1;
    cold_median_s = cold_m;
    warm_median_s = warm_m;
    cold_total_s = sum cold;
    warm_total_s = sum warm;
    speedup = (if warm_m > 0. then cold_m /. warm_m else infinity);
  }

(* --- 3: throughput scaling on a live daemon ------------------------------- *)

type scale_row = {
  jobs : int;
  clients : int;
  per_client : int;
  wall_s : float;
  qps : float;
  all_correct : bool;
}

let throughput_workload ~smoke =
  (* mixed SAT/UNSAT with enough search per query that solving, not
     socket plumbing, dominates — otherwise pool scaling is invisible.
     Expected statuses are computed here, once, by a reference solve. *)
  let formulas =
    if smoke then [ Util.pigeonhole 5 5; Util.pigeonhole 5 4 ]
    else
      [
        Util.pigeonhole 8 8;
        Util.pigeonhole 8 7;
        Util.random_3sat ~seed:4 ~nvars:150 ~ratio:4.26;
        Util.pigeonhole 9 8;
      ]
  in
  List.map
    (fun f ->
       let expect =
         match Sat.Cdcl.solve (Sat.Cdcl.create f) with
         | T.Sat _ -> "sat"
         | T.Unsat | T.Unsat_assuming _ -> "unsat"
         | T.Unknown r -> failwith ("E28: reference solve unknown: " ^ r)
       in
       (expect, clauses_of f))
    formulas

let bench_throughput ~smoke ~jobs =
  let workload = throughput_workload ~smoke in
  let clients = 8 in
  let per_client = if smoke then 2 else List.length workload in
  let dir = Filename.temp_file "satd_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "satd.sock" in
  let server =
    Service.Server.create
      { Service.Server.default_config with
        Service.Server.unix_path = Some path;
        jobs;
        max_queue = 256 }
  in
  let runner = Domain.spawn (fun () -> Service.Server.run server) in
  let rec await n =
    if n = 0 then failwith "E28: daemon never came up";
    match Service.Client.connect_unix path with
    | c -> Service.Client.close c
    | exception Unix.Unix_error _ ->
      Unix.sleepf 0.02;
      await (n - 1)
  in
  await 250;
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.init clients (fun ci ->
        Domain.spawn (fun () ->
            let c = Service.Client.connect_unix path in
            let ok = ref true in
            for q = 0 to per_client - 1 do
              let expect, cls =
                List.nth workload ((ci + q) mod List.length workload)
              in
              match
                Service.Client.solve c (P.mk_solve ~use_cache:false cls)
              with
              | Ok r -> if r.P.r_status <> expect then ok := false
              | Error _ -> ok := false
            done;
            Service.Client.close c;
            !ok))
  in
  let oks = Array.map Domain.join doms in
  let wall = Unix.gettimeofday () -. t0 in
  Service.Server.stop server;
  Domain.join runner;
  (try Sys.remove path with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let total = clients * per_client in
  {
    jobs;
    clients;
    per_client;
    wall_s = wall;
    qps = float_of_int total /. wall;
    all_correct = Array.for_all Fun.id oks;
  }

(* --- report --------------------------------------------------------------- *)

let json_of_cache_row r =
  J.Obj
    [
      ("label", J.String r.label);
      ("distinct", J.Int r.distinct);
      ("repeats", J.Int r.repeats);
      ("cold_median_s", J.Float r.cold_median_s);
      ("warm_median_s", J.Float r.warm_median_s);
      ("cold_total_s", J.Float r.cold_total_s);
      ("warm_total_s", J.Float r.warm_total_s);
      ("speedup",
       if Float.is_finite r.speedup then J.Float r.speedup
       else J.String "inf");
    ]

let json_of_scale_row r =
  J.Obj
    [
      ("jobs", J.Int r.jobs);
      ("clients", J.Int r.clients);
      ("queries", J.Int (r.clients * r.per_client));
      ("wall_s", J.Float r.wall_s);
      ("qps", J.Float r.qps);
      ("all_correct", J.Bool r.all_correct);
    ]

(* worker-pool speedup is bounded by the machine: a pool of 4 on a
   single-core host cannot beat a pool of 1 on CPU-bound queries *)
let host_cores () = Domain.recommended_domain_count ()

let e28 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E28 SAT service daemon (satd)"
    "tentpole contract: warm-cache median speedup >= 2x on a \
     repeated-CEC stream; throughput scales with the worker pool \
     under 8 concurrent clients";
  let show r =
    Util.row "%-14s %4dx%-3d %11.4fs %11.4fs %9.1fx   (totals %.2fs vs %.2fs)@."
      r.label r.distinct r.repeats r.cold_median_s r.warm_median_s
      (if Float.is_finite r.speedup then r.speedup else 9999.)
      r.cold_total_s r.warm_total_s
  in
  Util.row "%-14s %-8s %12s %12s %10s@." "stream" "shape" "cold-median"
    "warm-median" "speedup";
  Util.line ();
  let cache_row = bench_result_cache ~smoke in
  show cache_row;
  let session_row = bench_session_pool ~smoke in
  show session_row;
  Util.row
    "@.throughput: 8 concurrent clients on a Unix-socket daemon (%d \
     core%s available — pool speedup saturates at min(jobs, cores)):@."
    (host_cores ())
    (if host_cores () = 1 then "" else "s");
  Util.row "%6s %8s %9s %10s %8s %9s@." "jobs" "clients" "queries" "wall"
    "qps" "correct";
  Util.line ();
  let pool_sizes = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let scale_rows =
    List.map
      (fun jobs ->
         let r = bench_throughput ~smoke ~jobs in
         Util.row "%6d %8d %9d %9.3fs %8.1f %9s@." r.jobs r.clients
           (r.clients * r.per_client) r.wall_s r.qps
           (if r.all_correct then "yes" else "NO");
         r)
      pool_sizes
  in
  if json () then begin
    let doc =
      J.Obj
        [
          ("schema", J.String "satreda-bench");
          ("version", J.Int 1);
          ("experiment", J.String "E28");
          ("mode", J.String mode);
          ("cache",
           J.List [ json_of_cache_row cache_row; json_of_cache_row session_row ]);
          ("host_cores", J.Int (host_cores ()));
          ("scaling", J.List (List.map json_of_scale_row scale_rows));
        ]
    in
    let oc = open_out "BENCH_service.json" in
    output_string oc (J.to_string ~indent:true doc);
    output_char oc '\n';
    close_out oc;
    Util.row "@.wrote BENCH_service.json (%s mode)@." mode
  end;
  Util.row
    "@.cold runs every query from scratch (use_cache:false); warm serves \
     exact repeats from the result cache and grown chains from the pooled \
     warm session.  Medians exclude the first (cache-filling) round.  \
     Throughput rows run real uncached queries end to end over the \
     socket; on an N-core host qps grows with the pool up to N workers \
     and then flattens (the JSON records host_cores so single-core \
     results are not misread as a scaling failure).@."
