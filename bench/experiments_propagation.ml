(* Experiment E24: unit-propagation throughput micro-benchmarks.

   Deduce() dominates CDCL runtime on the hard CEC/BMC instances the EDA
   front-ends generate, so this experiment tracks raw propagation speed
   (props/sec) and wall clock on three instance families, plus DIMACS
   parse throughput for large inputs.

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_propagation.json in the current directory *)

module T = Sat.Types

type solve_row = {
  name : string;
  answer : string;
  time_s : float;       (* best-of-reps wall clock for one solve *)
  props : int;          (* propagations of that solve *)
  props_per_sec : float;
}

type parse_row = {
  p_name : string;
  bytes : int;
  p_time_s : float;
  mb_per_sec : float;
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

(* Best-of-[reps] timing; each rep builds a fresh solver so learned
   clauses from one rep never speed up the next. *)
let run_solve ~reps name mk_formula =
  let best_t = ref infinity and best_props = ref 0 and answer = ref "?" in
  for _ = 1 to reps do
    let f = mk_formula () in
    let s = Sat.Cdcl.create f in
    let outcome, dt = Util.time (fun () -> Sat.Cdcl.solve s) in
    answer := Util.outcome_label outcome;
    if dt < !best_t then begin
      best_t := dt;
      best_props := (Sat.Cdcl.stats s).T.propagations
    end
  done;
  let t = !best_t and props = !best_props in
  {
    name;
    answer = !answer;
    time_s = t;
    props;
    props_per_sec = (if t > 0. then float_of_int props /. t else 0.);
  }

let run_parse ~reps p_name text =
  let bytes = String.length text in
  let best = ref infinity in
  for _ = 1 to reps do
    let _, dt = Util.time (fun () -> ignore (Cnf.Dimacs.parse_string text)) in
    if dt < !best then best := dt
  done;
  let t = !best in
  {
    p_name;
    bytes;
    p_time_s = t;
    mb_per_sec =
      (if t > 0. then float_of_int bytes /. t /. (1024. *. 1024.) else 0.);
  }

let write_json path ~mode solves parses =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  (* schema versioning shared with the --metrics surface (docs/METRICS.md) *)
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b (Printf.sprintf "  \"experiment\": \"E24\",\n");
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "  \"propagation\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"answer\": \"%s\", \"time_s\": %.6f, \
             \"propagations\": %d, \"props_per_sec\": %.0f}%s\n"
            r.name r.answer r.time_s r.props r.props_per_sec
            (if i = List.length solves - 1 then "" else ",")))
    solves;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"parse\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"bytes\": %d, \"time_s\": %.6f, \
             \"mb_per_sec\": %.2f}%s\n"
            r.p_name r.bytes r.p_time_s r.mb_per_sec
            (if i = List.length parses - 1 then "" else ",")))
    parses;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e24 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E24 propagation throughput (blocking literals, flat watchers)"
    "paper: Sec. 4 Figure 2 (Deduce() is the inner loop); MiniSat/Glucose \
     watcher memory layout";
  let reps = if smoke then 1 else 5 in
  (* --- propagation throughput ------------------------------------------ *)
  let solves = ref [] in
  let case name mk = solves := run_solve ~reps name mk :: !solves in
  (if smoke then case "php(5,4)" (fun () -> Util.pigeonhole 5 4)
   else case "php(9,8)" (fun () -> Util.pigeonhole 9 8));
  let nvars = if smoke then 40 else 220 in
  List.iter
    (fun seed ->
       case
         (Printf.sprintf "3sat-%d@4.26" seed)
         (fun () -> Util.random_3sat ~seed ~nvars ~ratio:4.26))
    [ 3; 5; 9 ];
  let bits = if smoke then 2 else 6 in
  case
    (Printf.sprintf "miter-mult%d" bits)
    (fun () ->
       let f, _ =
         Circuit.Miter.to_cnf
           (Circuit.Generators.multiplier ~bits)
           (Circuit.Generators.wallace_multiplier ~bits)
       in
       f);
  let solves = List.rev !solves in
  Util.row "%-16s %-6s %10s %12s %12s@." "instance" "ans" "time" "props"
    "props/sec";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %9.3fs %12d %12.0f@." r.name r.answer r.time_s
         r.props r.props_per_sec)
    solves;
  (* --- DIMACS parse throughput ----------------------------------------- *)
  let parses = ref [] in
  let pcase name text = parses := run_parse ~reps name text :: !parses in
  let synth_nvars = if smoke then 500 else 30_000 in
  pcase
    (Printf.sprintf "synth-3sat-%dv" synth_nvars)
    (Cnf.Dimacs.to_string
       (Util.random_3sat ~seed:1 ~nvars:synth_nvars ~ratio:4.2));
  List.iter
    (fun file ->
       let path = Filename.concat "examples" file in
       if Sys.file_exists path then begin
         let ic = open_in path in
         let text = really_input_string ic (in_channel_length ic) in
         close_in ic;
         pcase file text
       end)
    [ "php43.cnf"; "color5.cnf" ];
  let parses = List.rev !parses in
  Util.row "@.%-20s %10s %10s %10s@." "parse input" "bytes" "time" "MB/s";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-20s %10d %9.4fs %10.1f@." r.p_name r.bytes r.p_time_s
         r.mb_per_sec)
    parses;
  if json () then begin
    write_json "BENCH_propagation.json" ~mode solves parses;
    Util.row "@.wrote BENCH_propagation.json (%s mode)@." mode
  end;
  Util.row
    "@.props/sec is propagations (trail literals processed by Deduce()) \
     divided by solve wall clock, best of %d run(s); EXPERIMENTS.md records \
     the before/after trajectory of these numbers.@."
    reps
