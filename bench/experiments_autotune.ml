(* Experiment E31: per-instance auto-tuning vs the default configuration.

   Two variants of the same solver run interleaved (one rep = both
   variants back to back, so machine drift hits them equally):

     default   Solver.solve with the stock configuration and no
               preprocessing decision — the path a caller gets without
               opting in to anything
     auto      Solver.Auto.solve: extract the docs/TUNING.md feature
               set, apply the decision table, run the chosen policy

   Families: CEC miters (multiplier and XOR-rewrite shapes, the
   gate-like profile the G1/P2 rules target), pigeonhole (dense,
   structureless UNSAT) and random 3-SAT at the phase transition (the
   R2 restart rule's territory).  Auto-tuning must never change an
   answer: every SAT model from either variant is evaluated against
   the formula, and every UNSAT instance is re-solved with proof
   logging and its refutation forward-checked.

   The honesty metric is extraction overhead: the time Autotune.extract
   spends measuring, as a fraction of the auto variant's total solve
   time, targeted below 2% (docs/TUNING.md "Cost contract").

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_autotune.json in the current dir *)

module T = Sat.Types
module S = Sat.Solver
module A = Sat.Autotune

type row = {
  name : string;
  family : string;
  answer : string;
  default_s : float;
  auto_s : float;
  extraction_s : float;  (* feature-extraction share of the auto time *)
  rules : string;        (* fired decision-table rule ids, auto variant *)
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

let validate name f (outcome : T.outcome) =
  match outcome with
  | T.Sat m ->
    if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
      failwith (name ^ ": model violates the formula")
  | T.Unsat | T.Unsat_assuming _ -> ()
  | T.Unknown why -> failwith (name ^ ": inconclusive (" ^ why ^ ")")

let certify name f =
  match Sat.Proof.solve_certified f with
  | (T.Unsat | T.Unsat_assuming _), Sat.Proof.Valid_refutation -> ()
  | (T.Unsat | T.Unsat_assuming _), _ ->
    failwith (name ^ ": refutation failed the forward check")
  | _ -> failwith (name ^ ": certified re-solve disagrees with UNSAT")

(* Interleaved A/B, best-of-[reps] per variant.  Answers must agree
   between the variants; the winning auto rep also reports its
   extraction time and fired rules. *)
let run_case ~reps ~family name mk_formula =
  let best_default = ref infinity and best_auto = ref infinity in
  let extraction = ref 0.0 and rules = ref "" and answer = ref "?" in
  let record label a =
    if !answer = "?" then answer := a
    else if a <> !answer then
      failwith
        (Printf.sprintf "%s: %s answers %s, other variant %s" name label a
           !answer)
  in
  for _ = 1 to reps do
    let f = mk_formula () in
    let r, dt = Util.time (fun () -> S.solve f) in
    validate (name ^ "/default") f r.S.outcome;
    record "default" (Util.outcome_label r.S.outcome);
    if dt < !best_default then best_default := dt;
    let f = mk_formula () in
    let (plan, r), dt = Util.time (fun () -> S.Auto.solve f) in
    validate (name ^ "/auto") f r.S.outcome;
    record "auto" (Util.outcome_label r.S.outcome);
    if dt < !best_auto then begin
      best_auto := dt;
      extraction := plan.S.Auto.features.A.extraction_time_s;
      rules := String.concat " " plan.S.Auto.policy.A.reason
    end
  done;
  (* answer preservation is part of the contract: certify the UNSAT
     verdicts through the proof checker, at every size we run *)
  if !answer = "UNSAT" || !answer = "UNSAT*" then certify name (mk_formula ());
  {
    name;
    family;
    answer = !answer;
    default_s = !best_default;
    auto_s = !best_auto;
    extraction_s = !extraction;
    rules = !rules;
  }

(* --- instance families --------------------------------------------------- *)

let miter bits () =
  let f, _ =
    Circuit.Miter.to_cnf
      (Circuit.Generators.multiplier ~bits)
      (Circuit.Generators.wallace_multiplier ~bits)
  in
  f

let miter_xor bits () =
  let w = Circuit.Generators.wallace_multiplier ~bits in
  let f, _ =
    Circuit.Miter.to_cnf w
      (Circuit.Transform.rewrite_xor
         (Circuit.Generators.wallace_multiplier ~bits))
  in
  f

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | l ->
    let n = List.length l in
    let a = Array.of_list l in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let write_json path ~mode rows medians overhead =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b "  \"experiment\": \"E31\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "  \"auto_vs_default\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"family\": \"%s\", \"answer\": \"%s\", \
             \"default_s\": %.6f, \"auto_s\": %.6f, \"speedup\": %.3f, \
             \"extraction_s\": %.6f, \"rules\": \"%s\"}%s\n"
            r.name r.family r.answer r.default_s r.auto_s
            (r.default_s /. r.auto_s) r.extraction_s r.rules
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"median_speedup_by_family\": {\n";
  List.iteri
    (fun i (fam, m) ->
       Buffer.add_string b
         (Printf.sprintf "    \"%s\": %.3f%s\n" fam m
            (if i = List.length medians - 1 then "" else ",")))
    medians;
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf "  \"extraction_overhead_frac\": %.5f,\n" overhead);
  Buffer.add_string b "  \"extraction_overhead_target\": 0.02,\n";
  Buffer.add_string b "  \"all_answers_validated\": true\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e31 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E31 per-instance auto-tuning (features + decision table)"
    "structure-aware policy selection vs the stock configuration; \
     interleaved A/B, every answer validated or certified";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case ~family name mk = rows := run_case ~reps ~family name mk :: !rows in
  List.iter
    (fun bits -> case ~family:"miter" (Printf.sprintf "miter-mult%d" bits)
        (miter bits))
    (if smoke then [ 2 ] else [ 4; 5 ]);
  List.iter
    (fun bits ->
       case ~family:"miter"
         (Printf.sprintf "miter-wall%d-xor" bits)
         (miter_xor bits))
    (if smoke then [] else [ 5; 6 ]);
  (if smoke then case ~family:"php" "php(5,4)" (fun () -> Util.pigeonhole 5 4)
   else begin
     case ~family:"php" "php(7,6)" (fun () -> Util.pigeonhole 7 6);
     case ~family:"php" "php(8,7)" (fun () -> Util.pigeonhole 8 7)
   end);
  let nvars = if smoke then 60 else 180 in
  List.iter
    (fun seed ->
       case ~family:"3sat"
         (Printf.sprintf "3sat-%d@4.26" seed)
         (fun () -> Util.random_3sat ~seed ~nvars ~ratio:4.26))
    (if smoke then [ 3 ] else [ 3; 5; 7 ]);
  let rows = List.rev !rows in
  Util.row "%-16s %-6s %-6s %9s %9s %8s %9s  %s@." "instance" "family" "ans"
    "default" "auto" "speedup" "extract" "rules";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %-6s %8.3fs %8.3fs %7.2fx %8.5fs  %s@." r.name
         r.family r.answer r.default_s r.auto_s (r.default_s /. r.auto_s)
         r.extraction_s r.rules)
    rows;
  let medians =
    List.map
      (fun fam ->
         ( fam,
           median
             (List.filter_map
                (fun r ->
                   if r.family = fam then Some (r.default_s /. r.auto_s)
                   else None)
                rows) ))
      [ "miter"; "php"; "3sat" ]
  in
  List.iter
    (fun (fam, m) -> Util.row "median speedup %-6s %.2fx@." fam m)
    medians;
  let overhead =
    let ex = List.fold_left (fun a r -> a +. r.extraction_s) 0.0 rows
    and tot = List.fold_left (fun a r -> a +. r.auto_s) 0.0 rows in
    if tot > 0.0 then ex /. tot else 0.0
  in
  Util.row "extraction overhead: %.2f%% of auto solve time (target < 2%%)@."
    (100.0 *. overhead);
  if json () then begin
    write_json "BENCH_autotune.json" ~mode rows medians overhead;
    Util.row "@.wrote BENCH_autotune.json (%s mode)@." mode
  end;
  Util.row
    "@.default is Solver.solve with the stock configuration; auto extracts \
     the docs/TUNING.md features and applies the decision table.  Best of \
     %d interleaved run(s) per variant; every SAT model is evaluated \
     against the formula and every UNSAT verdict is re-certified through \
     the proof checker.@."
    reps
