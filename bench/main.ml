(* Benchmark harness: one section per experiment id of DESIGN.md /
   EXPERIMENTS.md.

   dune exec bench/main.exe              -- run everything
   dune exec bench/main.exe -- --only E5 -- run one experiment
   dune exec bench/main.exe -- --list    -- list experiment ids        *)

let experiments =
  [
    ("E1", "Table 1 + Figure 1: gate CNF formulas", Experiments_core.e1);
    ("E2", "CDCL (learning + NCB) vs DPLL", Experiments_core.e2);
    ("E3", "Figure 3: conflict analysis", Experiments_core.e3);
    ("E4", "Figure 4: recursive learning on CNF", Experiments_core.e4);
    ("E5", "Section 5 structural layer", Experiments_core.e5);
    ("E6", "randomized restarts", Experiments_core.e6);
    ("E7", "equivalency reasoning", Experiments_core.e7);
    ("E8", "incremental SAT over fault lists", Experiments_core.e8);
    ("E9", "ATPG coverage", Experiments_apps.e9);
    ("E10", "CEC: SAT vs BDD", Experiments_apps.e10);
    ("E11", "circuit delay computation", Experiments_apps.e11);
    ("E12", "bounded model checking", Experiments_apps.e12);
    ("E13", "FPGA routing crossover", Experiments_apps.e13);
    ("E14", "covering + prime implicants", Experiments_apps.e14);
    ("E15", "local search vs backtrack search", Experiments_apps.e15);
    ("E16", "pseudo-Boolean optimization", Experiments_apps.e16);
    ("E17", "clause deletion policies", Experiments_apps.e17);
    ("E18", "path delay faults, incremental", Experiments_apps.e18);
    ("E19", "crosstalk noise analysis", Experiments_apps.e19);
    ("E20", "functional vector generation", Experiments_apps.e20);
    ("E21", "EUF / processor verification", Experiments_apps.e21);
    ("E22", "incremental sessions vs from-scratch", Experiments_session.e22);
    ("E23", "parallel portfolio with clause sharing", Experiments_parallel.e23);
    ("E24", "propagation throughput + parse timing", Experiments_propagation.e24);
    ("E25", "observability overhead (metrics + tracing)", Experiments_observability.e25);
    ("E26", "preprocessing ablation (BVE + inprocessing)", Experiments_preprocessing.e26);
    ("E27", "fraiging CEC vs monolithic miter", Experiments_fraig.e27);
    ("E28", "SAT service daemon (satd)", Experiments_service.e28);
    ("E29", "cube-and-conquer vs portfolio vs sequential",
     Experiments_cubes.e29);
    ("E30", "proof logging overhead + DRAT trimming", Experiments_proofs.e30);
    ("E31", "per-instance auto-tuning vs default", Experiments_autotune.e31);
  ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (id, title, _) -> Printf.printf "%-5s %s\n" id title)
      experiments
  else begin
    let only =
      let rec find = function
        | "--only" :: id :: _ -> Some id
        | _ :: rest -> find rest
        | [] -> None
      in
      find args
    in
    let selected =
      match only with
      | None -> experiments
      | Some id ->
        (match List.filter (fun (eid, _, _) -> eid = id) experiments with
         | [] ->
           Printf.eprintf "unknown experiment %s (try --list)\n" id;
           exit 2
         | l -> l)
    in
    let t0 = Unix.gettimeofday () in
    Format.printf
      "Reproduction benchmarks for \"Boolean Satisfiability in Electronic \
       Design Automation\" (DAC 2000)@.";
    List.iter (fun (_, _, run) -> run ()) selected;
    Format.printf "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
  end
