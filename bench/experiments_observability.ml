(* Experiment E25: observability overhead + a trace-driven finding.

   The tentpole contract of the tracing/metrics layer is "zero cost when
   disabled": every emission site is one option check.  This experiment
   measures it on the E24 instance suite — each instance solved three
   ways (instrumentation off / metrics registry attached / metrics +
   trace sink attached) — and then uses the metrics themselves to show
   something the aggregate counters cannot: how differently the LBD
   distribution is shaped on structured (pigeonhole) versus random
   (3-SAT) instances.

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_observability.json in the current dir  *)

module T = Sat.Types
module M = Sat.Metrics
module Tr = Sat.Trace
module J = Sat.Json

type mode = Off | Metrics_only | Metrics_and_trace

let mode_label = function
  | Off -> "off"
  | Metrics_only -> "metrics"
  | Metrics_and_trace -> "metrics+trace"

type row = {
  name : string;
  answer : string;
  time_off : float;
  time_metrics : float;
  time_traced : float;
  conflicts : int;
  events : int;  (* trace records of the traced run *)
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

(* Best-of-[reps] solve wall clock in one instrumentation mode; a fresh
   solver per rep so learning never leaks between reps. *)
let solve_mode ~reps mk_formula mode =
  let best = ref infinity and answer = ref "?" in
  let conflicts = ref 0 and events = ref 0 in
  for _ = 1 to reps do
    let f = mk_formula () in
    let s = Sat.Cdcl.create f in
    let m = match mode with Off -> None | _ -> Some (M.create ()) in
    let sink =
      match mode with Metrics_and_trace -> Some (Tr.make_sink ()) | _ -> None
    in
    Option.iter (fun m -> Sat.Cdcl.set_instruments s (Some (M.solver_instruments m))) m;
    Sat.Cdcl.set_tracer s sink;
    let outcome, dt = Util.time (fun () -> Sat.Cdcl.solve s) in
    answer := Util.outcome_label outcome;
    if dt < !best then begin
      best := dt;
      conflicts := (Sat.Cdcl.stats s).T.conflicts;
      events := (match sink with Some sk -> Tr.length sk | None -> 0)
    end
  done;
  (!best, !answer, !conflicts, !events)

let run_case ~reps name mk_formula =
  let time_off, answer, conflicts, _ = solve_mode ~reps mk_formula Off in
  let time_metrics, _, _, _ = solve_mode ~reps mk_formula Metrics_only in
  let time_traced, _, _, events =
    solve_mode ~reps mk_formula Metrics_and_trace
  in
  { name; answer; time_off; time_metrics; time_traced; conflicts; events }

let pct base t = if base > 0. then (t -. base) /. base *. 100. else 0.

(* LBD histogram of one (instrumented) solve. *)
let lbd_histogram mk_formula =
  let m = M.create () in
  let s = Sat.Cdcl.create (mk_formula ()) in
  Sat.Cdcl.set_instruments s (Some (M.solver_instruments m));
  ignore (Sat.Cdcl.solve s);
  M.histogram m "solver/lbd" ~bounds:M.lbd_bounds

let json_of_row r =
  J.Obj
    [
      ("name", J.String r.name);
      ("answer", J.String r.answer);
      ("time_off_s", J.Float r.time_off);
      ("time_metrics_s", J.Float r.time_metrics);
      ("time_traced_s", J.Float r.time_traced);
      ("metrics_overhead_pct", J.Float (pct r.time_off r.time_metrics));
      ("traced_overhead_pct", J.Float (pct r.time_off r.time_traced));
      ("conflicts", J.Int r.conflicts);
      ("trace_events", J.Int r.events);
    ]

let json_of_hist name h =
  J.Obj
    [
      ("name", J.String name);
      ("le", J.List (Array.to_list (Array.map (fun b -> J.Float b) (M.histogram_bounds h))));
      ("counts", J.List (Array.to_list (Array.map (fun c -> J.Int c) (M.histogram_counts h))));
      ("count", J.Int (M.histogram_total h));
      ("sum", J.Float (M.histogram_sum h));
    ]

let e25 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E25 observability overhead (structured tracing + metrics)"
    "tentpole contract: one option check per site when disabled; \
     docs/METRICS.md documents the snapshot schema";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case name mk = rows := run_case ~reps name mk :: !rows in
  (if smoke then case "php(5,4)" (fun () -> Util.pigeonhole 5 4)
   else case "php(9,8)" (fun () -> Util.pigeonhole 9 8));
  let nvars = if smoke then 40 else 220 in
  List.iter
    (fun seed ->
       case
         (Printf.sprintf "3sat-%d@4.26" seed)
         (fun () -> Util.random_3sat ~seed ~nvars ~ratio:4.26))
    [ 3; 5; 9 ];
  let bits = if smoke then 2 else 6 in
  case
    (Printf.sprintf "miter-mult%d" bits)
    (fun () ->
       let f, _ =
         Circuit.Miter.to_cnf
           (Circuit.Generators.multiplier ~bits)
           (Circuit.Generators.wallace_multiplier ~bits)
       in
       f);
  let rows = List.rev !rows in
  Util.row "%-16s %-6s %9s %9s %7s %9s %7s %9s@." "instance" "ans" "off"
    "metrics" "ovh%" "traced" "ovh%" "events";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %8.3fs %8.3fs %6.1f%% %8.3fs %6.1f%% %9d@."
         r.name r.answer r.time_off r.time_metrics
         (pct r.time_off r.time_metrics) r.time_traced
         (pct r.time_off r.time_traced) r.events)
    rows;
  (* --- the metrics paying for themselves: LBD shape php vs 3-SAT ------- *)
  let php_h =
    lbd_histogram (fun () ->
        if smoke then Util.pigeonhole 5 4 else Util.pigeonhole 9 8)
  in
  let sat_h =
    lbd_histogram (fun () -> Util.random_3sat ~seed:3 ~nvars ~ratio:4.26)
  in
  let share_le_2 h =
    let counts = M.histogram_counts h in
    let total = M.histogram_total h in
    if total = 0 then 0.
    else float_of_int (counts.(0) + counts.(1)) /. float_of_int total *. 100.
  in
  Util.row "@.learned-clause LBD distribution (bucket upper bounds %s):@."
    (String.concat ","
       (Array.to_list (Array.map (fun b -> string_of_int (int_of_float b)) M.lbd_bounds)));
  let show name h =
    Util.row "  %-12s %s  (%.0f%% of clauses have LBD<=2, mean %.2f)@." name
      (String.concat " "
         (Array.to_list (Array.map string_of_int (M.histogram_counts h))))
      (share_le_2 h)
      (M.histogram_sum h /. float_of_int (max 1 (M.histogram_total h)))
  in
  show "pigeonhole" php_h;
  show "random-3sat" sat_h;
  if json () then begin
    let doc =
      J.Obj
        [
          ("schema", J.String "satreda-bench");
          ("version", J.Int M.schema_version);
          ("experiment", J.String "E25");
          ("mode", J.String mode);
          ("overhead", J.List (List.map json_of_row rows));
          ("lbd",
           J.List
             [ json_of_hist "pigeonhole" php_h;
               json_of_hist "random-3sat" sat_h ]);
        ]
    in
    let oc = open_out "BENCH_observability.json" in
    output_string oc (J.to_string ~indent:true doc);
    output_char oc '\n';
    close_out oc;
    Util.row "@.wrote BENCH_observability.json (%s mode)@." mode
  end;
  Util.row
    "@.off/metrics/traced are best-of-%d wall clocks of the same solve with \
     instrumentation disabled, a metrics registry attached, and registry + \
     trace sink attached; ovh%% is relative to off.  Timing noise at these \
     sub-second scales dominates single-digit percentages — EXPERIMENTS.md \
     records the acceptance thresholds (<=2%% metrics, <=10%% traced).@."
    reps
