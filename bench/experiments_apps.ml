(* Experiments E9-E20: the EDA applications of Section 3. *)

module T = Sat.Types

(* E9 — ATPG coverage across circuit families. *)
let e9 () =
  Util.header "E9  ATPG: stuck-at fault coverage and redundancy"
    "paper: Sec. 3 (test generation [20, 25, 38])";
  let circuits =
    [
      ("c17", Circuit.Generators.c17 ());
      ("ripple6", Circuit.Generators.ripple_adder ~bits:6);
      ("carryskip6", Circuit.Generators.carry_skip_adder ~bits:6 ~block:3);
      (* constant folding first: the array multiplier's top carry row is
         dead logic whose faults would otherwise read as redundancy *)
      ("mult4", Circuit.Transform.simplify (Circuit.Generators.multiplier ~bits:4));
      ("alu3", Circuit.Generators.alu ~bits:3);
      ("ripple4+redund",
       Circuit.Transform.add_redundancy ~seed:5 ~count:3
         (Circuit.Generators.ripple_adder ~bits:4));
    ]
  in
  Util.row "%-16s %7s %9s %10s %8s %8s %9s %8s@." "circuit" "faults"
    "detected" "redundant" "vectors" "dropped" "coverage" "time";
  Util.line ();
  List.iter
    (fun (name, c) ->
       let s = Eda.Atpg.run c in
       Util.row "%-16s %7d %9d %10d %8d %8d %8.1f%% %7.3fs@." name
         s.Eda.Atpg.total s.Eda.Atpg.detected s.Eda.Atpg.redundant
         (List.length s.Eda.Atpg.vectors) s.Eda.Atpg.dropped_by_simulation
         (100. *. float_of_int s.Eda.Atpg.detected
          /. float_of_int s.Eda.Atpg.total)
         s.Eda.Atpg.time_seconds)
    circuits;
  (* covering applied back onto testing: static test-set compaction *)
  Util.row "@.test-set compaction (minimum covering subset, Sec. 3 [9, 23]):@.";
  List.iter
    (fun (name, c) ->
       let s = Eda.Atpg.run c in
       let r, dt = Util.time (fun () -> Eda.Compaction.compact c s.Eda.Atpg.vectors) in
       Util.row "  %-14s %3d -> %3d vectors (%d faults kept covered) %7.3fs@."
         name r.Eda.Compaction.original
         (List.length r.Eda.Compaction.compacted)
         r.Eda.Compaction.faults_covered dt)
    [
      ("ripple6", Circuit.Generators.ripple_adder ~bits:6);
      ("alu3", Circuit.Generators.alu ~bits:3);
      ("carryskip6", Circuit.Generators.carry_skip_adder ~bits:6 ~block:3);
    ];
  Util.row
    "expected shape: full coverage of testable faults; redundancy only \
     where injected; fault simulation covers most faults without a SAT \
     call; the covering step then shrinks the vector set at no coverage \
     loss.@."

(* E10 — CEC: SAT vs BDD. *)
let e10 () =
  Util.header "E10  Equivalence checking: SAT miter vs BDD"
    "paper: Sec. 1, Sec. 3 (CEC [16, 19, 26])";
  let node_limit = 200_000 in
  Util.row "%-20s | %-22s | %-20s | %-22s@." "pair"
    (Printf.sprintf "bdd (limit %dk nodes)" (node_limit / 1000))
    "sat miter" "sat sweeping";
  Util.line ();
  let families =
    List.concat
      [
        List.map
          (fun bits ->
             let c = Circuit.Generators.ripple_adder ~bits in
             (Printf.sprintf "adder%d vs demorgan" bits, c,
              Circuit.Transform.demorgan ~seed:bits c))
          [ 4; 8 ];
        List.map
          (fun bits ->
             let c = Circuit.Generators.multiplier ~bits in
             (Printf.sprintf "mult%d vs rewrite" bits, c,
              Circuit.Transform.rewrite_xor c))
          [ 3; 5; 7 ];
        List.map
          (fun bits ->
             (Printf.sprintf "array%d vs wallace" bits,
              Circuit.Generators.multiplier ~bits,
              Circuit.Generators.wallace_multiplier ~bits))
          [ 4; 5 ];
        [ ("ripple8 vs koggestone",
           Circuit.Generators.ripple_adder ~bits:8,
           Circuit.Generators.kogge_stone_adder ~bits:8) ];
        List.map
          (fun (inputs, gates) ->
             let c = Circuit.Generators.random_circuit ~inputs ~gates ~seed:5 in
             (Printf.sprintf "random %d-in/%dg" inputs gates, c,
              Circuit.Transform.demorgan ~seed:6 c))
          [ (40, 700); (48, 1200) ];
      ]
  in
  List.iter
    (fun (name, c1, c2) ->
       let b = Eda.Equiv.check_bdd ~node_limit c1 c2 in
       let s = Eda.Equiv.check_sat ~pipeline:Sat.Solver.full_pipeline c1 c2 in
       let w = Eda.Sweep.check c1 c2 in
       let verdict_label time = function
         | Eda.Equiv.Equivalent -> Printf.sprintf "EQ   %7.3fs" time
         | Eda.Equiv.Inequivalent _ -> Printf.sprintf "DIFF %7.3fs" time
         | Eda.Equiv.Inconclusive _ ->
           Printf.sprintf "BLOWUP (>%dk)" (node_limit / 1000)
       in
       let label (r : Eda.Equiv.report) =
         match r.Eda.Equiv.verdict with
         | Eda.Equiv.Equivalent ->
           Printf.sprintf "EQ   %7.3fs %7dn" r.Eda.Equiv.time_seconds
             r.Eda.Equiv.bdd_nodes
         | v -> verdict_label r.Eda.Equiv.time_seconds v
       in
       Util.row "%-20s | %-22s | %-20s | %-22s@." name (label b)
         (verdict_label s.Eda.Equiv.time_seconds s.Eda.Equiv.verdict)
         (Printf.sprintf "%s %5d mrg"
            (verdict_label w.Eda.Sweep.times.Eda.Sweep.total_s
               w.Eda.Sweep.verdict)
            w.Eda.Sweep.stats.Eda.Sweep.merges))
    families;
  (* the AIG route: structural merging before any SAT call *)
  Util.row "@.AIG-merged miters (hash-consing discharges shared logic):@.";
  List.iter
    (fun (name, c1, c2) ->
       let r = Eda.Equiv.check_aig c1 c2 in
       let verdict =
         match r.Eda.Equiv.verdict with
         | Eda.Equiv.Equivalent -> "EQ"
         | Eda.Equiv.Inequivalent _ -> "DIFF"
         | Eda.Equiv.Inconclusive _ -> "?"
       in
       Util.row "  %-22s %-5s %7.3fs  %6d aig nodes%s@." name verdict
         r.Eda.Equiv.time_seconds r.Eda.Equiv.bdd_nodes
         (if r.Eda.Equiv.sat_stats = None then "  (no SAT call needed)" else ""))
    [
      ("mult7 vs rewrite", Circuit.Generators.multiplier ~bits:7,
       Circuit.Transform.rewrite_xor (Circuit.Generators.multiplier ~bits:7));
      ("mult5 vs itself", Circuit.Generators.multiplier ~bits:5,
       Circuit.Netlist.copy (Circuit.Generators.multiplier ~bits:5));
      ("random 48-in/1200g",
       Circuit.Generators.random_circuit ~inputs:48 ~gates:1200 ~seed:5,
       Circuit.Transform.demorgan ~seed:6
         (Circuit.Generators.random_circuit ~inputs:48 ~gates:1200 ~seed:5));
    ];
  Util.row
    "expected shape: BDD cost tracks the function (canonical form), so it \
     wins on arithmetic of moderate width but blows past the node limit on \
     wide random logic regardless of similarity; the SAT miter exploits \
     structural similarity and keeps answering; incremental SAT sweeping \
     (simulation-guided internal equivalences) beats the monolithic miter \
     wherever the implementations share structure; identical structure is \
     discharged outright by AIG hash-consing — the combined-methods \
     message of [16, 25].@."

(* E11 — circuit delay computation. *)
let e11 () =
  Util.header "E11  True (floating-mode) vs topological delay"
    "paper: Sec. 3 (delay computation [28, 36])";
  Util.row "%-26s %-8s %6s %6s %s@." "circuit" "output" "topo" "true"
    "false path";
  Util.line ();
  List.iter
    (fun (name, c) ->
       List.iter
         (fun r ->
            if r.Eda.Delay.output = "cout" || r.Eda.Delay.output = "par" then
              Util.row "%-26s %-8s %6d %6d %s@." name r.Eda.Delay.output
                r.Eda.Delay.topological r.Eda.Delay.true_floating
                (if r.Eda.Delay.false_path then "yes" else "no"))
         (Eda.Delay.report c))
    [
      ("ripple8", Circuit.Generators.ripple_adder ~bits:8);
      ("carryskip8/b2", Circuit.Generators.carry_skip_adder ~bits:8 ~block:2);
      ("carryskip8/b4", Circuit.Generators.carry_skip_adder ~bits:8 ~block:4);
      ("carryskip12/b4", Circuit.Generators.carry_skip_adder ~bits:12 ~block:4);
      ("koggestone8", Circuit.Generators.kogge_stone_adder ~bits:8);
      ("parity8", Circuit.Generators.parity ~bits:8);
    ];
  Util.row
    "expected shape: ripple and parity are delay-exact; carry-skip \
     carry-outs have false paths (true < topological), growing with \
     width.@."

(* E12 — bounded model checking. *)
let e12 () =
  Util.header "E12  Bounded model checking of counters"
    "paper: Sec. 3 (BMC [5])";
  Util.row "%-22s %8s %10s %10s %9s@." "design" "cex len" "max k" "conflicts"
    "time";
  Util.line ();
  List.iter
    (fun (name, bits, buggy_at, bound) ->
       let seq = Circuit.Sequential.counter ~bits ~buggy_at in
       let r = Eda.Bmc.check ~max_bound:bound seq in
       let cex =
         match r.Eda.Bmc.result with
         | Eda.Bmc.Counterexample frames -> string_of_int (List.length frames)
         | Eda.Bmc.No_counterexample -> "none"
       in
       let conflicts =
         List.fold_left (fun a (_, c) -> a + c) 0 r.Eda.Bmc.per_bound_conflicts
       in
       Util.row "%-22s %8s %10d %10d %8.3fs@." name cex r.Eda.Bmc.bound_reached
         conflicts r.Eda.Bmc.time_seconds)
    [
      ("counter3", 3, None, 12);
      ("counter4", 4, None, 20);
      ("counter5", 5, None, 36);
      ("counter4 bug@3", 4, Some 3, 20);
      ("counter5 bug@5", 5, Some 5, 36);
      ("counter5 bound 10", 5, None, 10);
    ];
  (* unbounded proofs by k-induction where BMC can only bound-check *)
  Util.row "@.k-induction (unbounded):@.";
  List.iter
    (fun (name, seq, max_k) ->
       let r, dt = Util.time (fun () -> Eda.Bmc.prove_inductive ~max_k seq) in
       let label =
         match r with
         | Eda.Bmc.Proved k -> Printf.sprintf "PROVED for all depths (k=%d)" k
         | Eda.Bmc.Refuted frames ->
           Printf.sprintf "REFUTED (cex length %d)" (List.length frames)
         | Eda.Bmc.Bound_reached -> "inconclusive (not inductive)"
       in
       Util.row "  %-18s %-34s %7.3fs@." name label dt)
    [
      ("ring5", Circuit.Sequential.ring_counter ~bits:5, 3);
      ("ring12", Circuit.Sequential.ring_counter ~bits:12, 3);
      ("counter4", Circuit.Sequential.counter ~bits:4 ~buggy_at:None, 20);
      ("counter4 bug@3",
       Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 3), 20);
    ];
  Util.row
    "expected shape: counterexample length 2^bits for correct counters \
     (bad at all-ones), buggy designs fail at the injected depth + 2; \
     too-small bounds report none.@."

(* E13 — FPGA routing. *)
let e13 () =
  Util.header "E13  SAT-based detailed routing: channel-width crossover"
    "paper: Sec. 3 (FPGA routing [29, 30])";
  let seeds = [ 101; 102; 103; 104; 105; 106 ] in
  Util.row "%-8s %10s %12s %10s@." "tracks" "routable" "decisions" "time";
  Util.line ();
  for tracks = 1 to 5 do
    let routable = ref 0 and dec = ref 0 and total_t = ref 0. in
    List.iter
      (fun seed ->
         let inst =
           Eda.Routing.random_instance ~seed ~width:5 ~height:5 ~tracks
             ~nets:15
         in
         let (result, st), dt = Util.time (fun () -> Eda.Routing.route inst) in
         total_t := !total_t +. dt;
         dec := !dec + st.T.decisions;
         match result with
         | Eda.Routing.Routed routes ->
           assert (Eda.Routing.check_routes inst routes);
           incr routable
         | Eda.Routing.Unroutable -> ()
         | Eda.Routing.Unknown _ -> ())
      seeds;
    Util.row "%-8d %6d/%-3d %12d %9.3fs@." tracks !routable (List.length seeds)
      !dec !total_t
  done;
  Util.row
    "expected shape: unroutable at 1-2 tracks, crossover to fully \
     routable as the channel widens — the UNSAT->SAT boundary the cited \
     work explores.@."

(* E14 — covering and prime implicants. *)
let e14 () =
  Util.header "E14  Covering problems and minimum-size prime implicants"
    "paper: Sec. 3 (covering [9, 23], prime implicants [22])";
  Util.row "%-14s %8s %8s %8s %14s %9s@." "instance" "greedy" "sat-opt"
    "pb-opt" "b&b (nodes)" "time";
  Util.line ();
  List.iter
    (fun seed ->
       let inst =
         Eda.Covering.random_instance ~seed ~nelems:40 ~nsets:18 ~density:0.18
       in
       let g = Eda.Covering.greedy inst in
       let (opt, pb, bnb), dt =
         Util.time (fun () ->
             let opt = Eda.Covering.sat_optimal inst in
             let pb =
               Eda.Pseudo_boolean.solve (Eda.Pseudo_boolean.covering_problem inst)
             in
             let bnb = Eda.Covering.branch_and_bound inst in
             (opt, pb, bnb))
       in
       let opt_cost =
         match opt with
         | Some sol -> Eda.Covering.cover_cost inst sol
         | None -> -1
       in
       let pb_cost =
         match pb with Eda.Pseudo_boolean.Optimal (_, v), _ -> v | _ -> -1
       in
       let bnb_label =
         match bnb with
         | Some (sol, nodes) ->
           Printf.sprintf "%d (%dn)" (Eda.Covering.cover_cost inst sol) nodes
         | None -> "budget"
       in
       Util.row "%-14s %8d %8d %8d %14s %8.3fs@."
         (Printf.sprintf "cover s%d" seed)
         (Eda.Covering.cover_cost inst g)
         opt_cost pb_cost bnb_label dt)
    [ 1; 2; 3; 4; 5 ];
  Util.row "@.%-20s %10s %12s@." "function" "vars" "min implicant";
  Util.line ();
  List.iter
    (fun seed ->
       let rng = Sat.Rng.create seed in
       let f = Cnf.Formula.create ~nvars:8 () in
       for _ = 1 to 12 do
         let len = 2 + Sat.Rng.int rng 3 in
         Cnf.Formula.add_clause_l f
           (List.init len (fun _ ->
                Cnf.Lit.of_var (Sat.Rng.int rng 8) (Sat.Rng.bool rng)))
       done;
       match Eda.Prime.minimum_prime_implicant f with
       | Some term ->
         Util.row "%-20s %10d %12d@."
           (Printf.sprintf "rand cnf s%d" seed)
           (Cnf.Formula.nvars f) (List.length term)
       | None ->
         Util.row "%-20s %10d %12s@."
           (Printf.sprintf "rand cnf s%d" seed)
           (Cnf.Formula.nvars f) "unsat")
    [ 11; 12; 13; 14 ];
  Util.row
    "expected shape: SAT and PB optima agree and never exceed greedy.@."

(* E15 — local search vs backtrack search. *)
let e15 () =
  Util.header "E15  Local search vs saturation vs backtrack search"
    "paper: Sec. 4 (the four approaches; only backtrack search proves \
     unsatisfiability at scale)";
  Util.row "%-24s %-8s %-14s %-16s %-12s@." "instance" "kind" "walksat"
    "saturation(d2)" "cdcl";
  Util.line ();
  let run_both name kind f =
    let ws, wt =
      Util.time (fun () ->
          Sat.Local_search.solve
            ~config:{ Sat.Local_search.default with
                      Sat.Local_search.max_flips = 200_000; max_tries = 3 }
            f)
    in
    let st, stt =
      Util.time (fun () -> Sat.Stalmarck.saturate ~depth:2 f)
    in
    let cd, ct =
      Util.time (fun () -> Sat.Cdcl.solve (Sat.Cdcl.create f))
    in
    let st_label =
      match st with
      | Sat.Stalmarck.Refuted d -> Printf.sprintf "UNSAT(d%d)" d
      | Sat.Stalmarck.Saturated _ -> "saturated"
    in
    Util.row "%-24s %-8s %-14s %-16s %-12s@." name kind
      (Printf.sprintf "%s %5.2fs" (Util.outcome_label ws.Sat.Local_search.outcome) wt)
      (Printf.sprintf "%s %5.2fs" st_label stt)
      (Printf.sprintf "%s %5.2fs" (Util.outcome_label cd) ct)
  in
  List.iter
    (fun seed ->
       run_both
         (Printf.sprintf "rand3sat n=150 s%d" seed)
         "random"
         (Util.random_3sat ~seed ~nvars:150 ~ratio:4.0))
    [ 21; 22; 23 ];
  run_both "php(8,7)" "unsat" (Util.pigeonhole 8 7);
  run_both "cec miter" "unsat"
    (fst
       (Circuit.Miter.to_cnf
          (Circuit.Generators.multiplier ~bits:3)
          (Circuit.Transform.rewrite_xor (Circuit.Generators.multiplier ~bits:3))));
  Util.row
    "expected shape: WalkSAT competitive on satisfiable random formulas \
     but answers '>budget' on every unsatisfiable instance; depth-2 \
     saturation refutes the structured CEC miter without search yet \
     saturates inconclusively on the pigeonhole family — only backtrack \
     search handles everything (the paper's Sec. 4 conclusion).@."

(* E16 — pseudo-Boolean optimization. *)
let e16 () =
  Util.header "E16  Linear pseudo-Boolean optimization"
    "paper: Sec. 3 (Barth [3])";
  Util.row "%-18s %8s %10s %10s %12s %9s@." "instance" "sets" "greedy"
    "optimum" "improvements" "time";
  Util.line ();
  List.iter
    (fun seed ->
       let inst =
         Eda.Covering.random_instance ~seed ~nelems:30 ~nsets:15 ~density:0.2
       in
       (* weighted costs 1..4 *)
       let rng = Sat.Rng.create (seed * 13) in
       let inst =
         { inst with Eda.Covering.cost =
             Array.map (fun _ -> 1 + Sat.Rng.int rng 4) inst.Eda.Covering.cost }
       in
       let g = Eda.Covering.greedy inst in
       let (result, st), dt =
         Util.time (fun () ->
             Eda.Pseudo_boolean.solve (Eda.Pseudo_boolean.covering_problem inst))
       in
       match result with
       | Eda.Pseudo_boolean.Optimal (_, v) ->
         Util.row "%-18s %8d %10d %10d %12d %8.3fs@."
           (Printf.sprintf "wcover s%d" seed)
           (Array.length inst.Eda.Covering.sets)
           (Eda.Covering.cover_cost inst g)
           v st.Eda.Pseudo_boolean.improvements dt
       | _ -> Util.row "%-18s failed@." (Printf.sprintf "wcover s%d" seed))
    [ 31; 32; 33; 34; 35 ];
  Util.row
    "expected shape: the optimum never exceeds greedy; the descent \
     improves in a handful of steps (Barth's linear search).@."

(* E17 — clause deletion policy ablation. *)
let e17 () =
  Util.header "E17  Learned-clause deletion policies"
    "paper: Sec. 4.1 property 3 (relevance-based learning)";
  let instances =
    [
      ("php(8,7)", Util.pigeonhole 8 7);
      ("rand3sat n=100 unsat", Util.random_3sat ~seed:77 ~nvars:100 ~ratio:5.0);
    ]
  in
  let policies =
    [
      ("no deletion", T.No_deletion);
      ("size-bounded 8", T.Size_bounded 8);
      ("relevance (8,4)", T.Relevance (8, 4));
      ("lbd-bounded 4", T.Lbd_bounded 4);
      ("activity halving", T.Activity_halving);
    ]
  in
  Util.row "%-22s %-18s %8s %9s %9s %9s %8s@." "instance" "policy" "result"
    "learned" "deleted" "conflicts" "time";
  Util.line ();
  List.iter
    (fun (iname, f) ->
       List.iter
         (fun (pname, deletion) ->
            let cfg = { T.default with T.deletion } in
            let s = Sat.Cdcl.create ~config:cfg f in
            let o, dt = Util.time (fun () -> Sat.Cdcl.solve s) in
            let st = Sat.Cdcl.stats s in
            Util.row "%-22s %-18s %8s %9d %9d %9d %7.3fs@." iname pname
              (Util.outcome_label o) st.T.learned st.T.deleted st.T.conflicts dt)
         policies;
       Util.line ())
    instances;
  Util.row
    "expected shape: deletion trades memory (learned - deleted kept) \
     against conflicts; relevance-based deletion keeps the clause \
     database small without losing completeness.@."

(* E18 — path delay fault testing, incremental. *)
let e18 () =
  Util.header "E18  Robust path-delay-fault tests, incremental vs scratch"
    "paper: Sec. 3 [7], Sec. 6 [18]";
  Util.row "%-16s %-14s %7s %9s %11s %10s %9s@." "circuit" "mode" "paths"
    "testable" "untestable" "conflicts" "time";
  Util.line ();
  List.iter
    (fun (name, c, limit) ->
       let paths = Eda.Path_delay.enumerate_paths c ~limit in
       List.iter
         (fun (mode, incremental) ->
            let s, dt =
              Util.time (fun () ->
                  Eda.Path_delay.test_paths ~incremental c paths)
            in
            Util.row "%-16s %-14s %7d %9d %11d %10d %8.3fs@." name mode
              s.Eda.Path_delay.paths s.Eda.Path_delay.testable
              s.Eda.Path_delay.untestable s.Eda.Path_delay.conflicts dt)
         [ ("incremental", true); ("scratch", false) ];
       Util.line ())
    [
      ("ripple5", Circuit.Generators.ripple_adder ~bits:5, 30);
      ("carryskip6/b3", Circuit.Generators.carry_skip_adder ~bits:6 ~block:3, 40);
    ];
  Util.row
    "expected shape: identical verdicts; the incremental encoding \
     amortises the two-copy circuit CNF across the path list (the [18] \
     claim).  Carry-skip circuits have robust-untestable paths.@."

(* E19 — crosstalk noise analysis. *)
let e19 () =
  Util.header "E19  Crosstalk noise: opposite-switching alignment queries"
    "paper: Sec. 3 (crosstalk [8])";
  let c = Circuit.Generators.carry_skip_adder ~bits:4 ~block:2 in
  let pairs = Eda.Crosstalk.coupled_pairs c ~max_level_gap:0 in
  Util.row "circuit: %a; %d same-level coupling candidates@."
    Circuit.Netlist.pp_stats c (List.length pairs);
  List.iter
    (fun (lo, hi) ->
       (* only nets still switching inside the window are candidates:
          pick pairs whose level falls in it, as a layout filter would *)
       let relevant =
         List.filter
           (fun (a, _) ->
              let lvl = Circuit.Netlist.level c a in
              lvl >= lo && lvl <= hi + 1)
           pairs
       in
       let examined = ref 0 and noisy = ref 0 in
       let _, dt =
         Util.time (fun () ->
             List.iter
               (fun (a, b) ->
                  if !examined < 25 then begin
                    incr examined;
                    match
                      Eda.Crosstalk.analyze c
                        { Eda.Crosstalk.victim = a; aggressor = b;
                          window = (lo, hi) }
                    with
                    | Eda.Crosstalk.Noise _ -> incr noisy
                    | Eda.Crosstalk.Safe -> ()
                    | Eda.Crosstalk.Unknown _ -> ()
                  end)
               relevant)
       in
       Util.row "window [%d,%d]: %d of %d level-matched pairs can switch \
                 oppositely (%.3fs)@."
         lo hi !noisy !examined dt)
    [ (0, 2); (2, 5); (5, 9); (9, 12) ];
  Util.row
    "expected shape: wide early windows flag many pairs; late windows \
     only deep nets — the alignment pruning the cited analysis needs.@."

(* E20 — functional vector generation. *)
let e20 () =
  Util.header "E20  Functional test vector generation"
    "paper: Sec. 3 (functional vectors [13])";
  Util.row "%-14s %11s %8s %12s %9s %9s %8s@." "circuit" "objectives"
    "covered" "unreachable" "vectors" "sat calls" "time";
  Util.line ();
  List.iter
    (fun (name, c, warmup) ->
       let objs = Eda.Fvg.toggle_objectives c in
       let r = Eda.Fvg.generate ~random_warmup:warmup c objs in
       Util.row "%-14s %11d %8d %12d %9d %9d %7.3fs@."
         (Printf.sprintf "%s w%d" name warmup)
         r.Eda.Fvg.objectives r.Eda.Fvg.covered r.Eda.Fvg.unreachable
         (List.length r.Eda.Fvg.vectors) r.Eda.Fvg.sat_calls
         r.Eda.Fvg.time_seconds)
    [
      ("alu3", Circuit.Generators.alu ~bits:3, 0);
      ("alu3", Circuit.Generators.alu ~bits:3, 2);
      ("comparator5", Circuit.Generators.comparator ~bits:5, 0);
      ("comparator5", Circuit.Generators.comparator ~bits:5, 2);
      ("mult4", Circuit.Generators.multiplier ~bits:4, 2);
    ];
  Util.row
    "expected shape: random warmup covers the easy objectives; \
     incremental SAT mops up the rest with few calls; unreachable \
     objectives (untoggleable nets) are proven, not abandoned.@."

(* E21 — equality with uninterpreted functions (processor verification). *)
let e21 () =
  Util.header
    "E21  Equality + uninterpreted functions reduced to SAT"
    "paper: Sec. 3 (processor verification, Velev & Bryant [6])";
  let open Eda.Euf in
  let x = var "x" in
  let f t = fn "f" [ t ] in
  let iterate k t =
    let rec go acc n = if n = 0 then acc else go (f acc) (n - 1) in
    go t k
  in
  Util.row "%-34s %8s %8s %8s %10s@." "query" "valid" "consts" "eqvars"
    "conflicts";
  Util.line ();
  let show name formula =
    let r = Eda.Euf.solve (Not formula) in
    Util.row "%-34s %8b %8d %8d %10d@." name (not r.satisfiable)
      r.term_constants r.equality_vars
      r.sat_stats.Sat.Types.conflicts
  in
  show "x=y => f(x)=f(y)"
    (Imp (var "x" === var "y", f (var "x") === f (var "y")));
  List.iter
    (fun n ->
       show
         (Printf.sprintf "f^%d=x & f^%d=x => f(x)=x" n (n + 1))
         (Imp
            (And [ iterate n x === x; iterate (n + 1) x === x ],
             f x === x)))
    [ 3; 6; 9; 12 ];
  (* the forwarding-path fragment of the cited processor proofs *)
  let bypass =
    let regval = var "regval" and bus = var "bus" in
    let src = var "src" and dest = var "dest" in
    let spec = Ite (src === dest, bus, regval) in
    let impl = Ite (Not (src === dest), regval, bus) in
    fn "alu" [ spec; var "op2" ] === fn "alu" [ impl; var "op2" ]
  in
  show "bypass mux feeds identical ALU" bypass;
  Util.row
    "expected shape: validity certified through Ackermann expansion + \
     transitivity; the f^n cycle family grows the equality graph \
     (conflicts rise with n) yet stays routine for the CDCL core.@."
