(* Experiment E22: incremental sessions vs from-scratch solving. *)

module T = Sat.Types

(* E22 — one solver serving many related queries (BMC bounds, ATPG
   faults) against re-encoding and re-solving each query from scratch. *)
let e22 () =
  Util.header "E22 incremental sessions vs from-scratch re-solving"
    "paper: Sec. 2-3 (solver reuse across related queries [18, 25])";
  Util.row "BMC: one session grows a frame per bound vs fresh unrolling:@.";
  Util.row "%-14s %-13s %7s %9s %9s %8s %8s@." "circuit" "mode" "bound"
    "frames" "decis" "confl" "time";
  Util.line ();
  let bmc_case name seq max_bound =
    List.iter
      (fun (mode, incremental) ->
         let r = Eda.Bmc.check ~incremental ~max_bound seq in
         let t = r.Eda.Bmc.total_stats in
         Util.row "%-14s %-13s %7d %9d %9d %8d %7.3fs@." name mode
           r.Eda.Bmc.bound_reached r.Eda.Bmc.frames_encoded
           t.T.decisions t.T.conflicts r.Eda.Bmc.time_seconds)
      [ ("incremental", true); ("from-scratch", false) ]
  in
  bmc_case "counter4-bug9"
    (Circuit.Sequential.counter ~bits:4 ~buggy_at:(Some 9)) 20;
  bmc_case "counter5"
    (Circuit.Sequential.counter ~bits:5 ~buggy_at:None) 16;
  bmc_case "ring8" (Circuit.Sequential.ring_counter ~bits:8) 12;
  Util.row "@.ATPG: one session with activation groups vs per-fault solvers:@.";
  Util.row "%-14s %-13s %7s %9s %9s %8s %8s@." "circuit" "mode" "faults"
    "detected" "decis" "confl" "time";
  Util.line ();
  let atpg_case name c =
    List.iter
      (fun (mode, run) ->
         let s : Eda.Atpg.summary = run c in
         Util.row "%-14s %-13s %7d %9d %9d %8d %7.3fs@." name mode
           s.Eda.Atpg.total s.Eda.Atpg.detected s.Eda.Atpg.decisions
           s.Eda.Atpg.conflicts s.Eda.Atpg.time_seconds)
      [
        ("incremental", fun c -> Eda.Atpg.run_incremental c);
        ("from-scratch", fun c -> Eda.Atpg.run ~fault_simulation:false c);
      ]
  in
  atpg_case "c17" (Circuit.Generators.c17 ());
  atpg_case "ripple6" (Circuit.Generators.ripple_adder ~bits:6);
  atpg_case "alu3" (Circuit.Generators.alu ~bits:3);
  atpg_case "mult4"
    (Circuit.Transform.simplify (Circuit.Generators.multiplier ~bits:4))
