(* Experiment E23: parallel portfolio solving with clause sharing. *)

module T = Sat.Types
module P = Sat.Portfolio

(* E23 — one formula, N diversified CDCL workers racing on OCaml domains,
   exchanging low-LBD learned clauses through a shared pool.  Sequential
   baseline vs portfolio with sharing on and off. *)
let e23 () =
  Util.header "E23 parallel portfolio with learned-clause sharing"
    "paper: Sec. 6 (search diversification; portfolio solvers built on \
     [27, 27a])";
  let jobs = 4 in
  Util.row "workers: %d (host has %d core(s) - domains are time-shared)@.@."
    jobs (Domain.recommended_domain_count ());
  Util.row "%-18s %-6s %8s %8s %8s %7s %7s %9s@." "instance" "ans" "seq"
    "share" "noshare" "spdup" "confl" "exp/imp";
  Util.line ();
  let speedups = ref [] in
  let case name f =
    let seq_outcome, seq_t =
      Util.time (fun () -> Sat.Cdcl.solve (Sat.Cdcl.create (f ())))
    in
    let run share =
      P.solve
        ~options:
          {
            P.jobs;
            config = T.default;
            sharing = { P.default_sharing with P.share };
            timeout = None;
            metrics = None;
            trace = None;
          }
        (f ())
    in
    let rs = run true in
    let rn = run false in
    let spdup = seq_t /. rs.P.time_seconds in
    speedups := spdup :: !speedups;
    Util.row "%-18s %-6s %7.3fs %7.3fs %7.3fs %6.2fx %7d %4d/%-4d@." name
      (Util.outcome_label seq_outcome)
      seq_t rs.P.time_seconds rn.P.time_seconds spdup
      rs.P.stats.T.conflicts rs.P.stats.T.exported rs.P.stats.T.imported
  in
  case "php(8,7)" (fun () -> Util.pigeonhole 8 7);
  (* 200-variable instances just below the phase transition: sequential
     runtimes are heavy-tailed, which is where a diversified portfolio
     pays off even when the domains time-share one core *)
  List.iter
    (fun seed ->
       case
         (Printf.sprintf "3sat-%d@4.1" seed)
         (fun () -> Util.random_3sat ~seed ~nvars:200 ~ratio:4.1))
    [ 7; 12; 16; 5 ];
  let sorted = List.sort compare !speedups in
  let median = List.nth sorted (List.length sorted / 2) in
  Util.row "@.median wall-clock speedup vs sequential: %.2fx@." median;
  Util.row
    "sharing column vs noshare shows the effect of LBD<=%d clause exchange;@ \
     SAT instances gain from diversification (some worker finds a model@ \
     early), UNSAT instances pay the time-sharing cost on a 1-core host@."
    P.default_sharing.P.max_lbd
