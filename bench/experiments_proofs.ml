(* Experiment E30: proof logging overhead and backward trimming.

   Every instance is solved twice with the full pipeline (bounded
   variable elimination + inprocessing), interleaved: once with proof
   logging off (the production configuration) and once with the DRAT
   stream on.  The UNSAT stream is then backward-trimmed into an LRAT
   certificate, which is re-validated by the independent LRAT replayer.
   Reported per instance:

     overhead     proof-logging solve time / plain solve time
     trim ratio   additions kept by the backward trim / total additions
     check/solve  trim+validate time / proof-logging solve time
     core         original clauses surviving in the unsat core

   Families: CEC miters (known-UNSAT equivalences) and pigeonhole.

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_proofs.json in the current dir *)

module T = Sat.Types
module S = Sat.Solver
module P = Sat.Proof

type row = {
  name : string;
  family : string;
  plain_s : float;
  proof_s : float;
  steps : int;    (* DRAT stream length, deletions included *)
  adds : int;     (* additions in the stream *)
  kept : int;     (* additions surviving the backward trim *)
  core : int;     (* original clauses in the unsat core *)
  nclauses : int; (* original clause count *)
  trim_s : float; (* trim + LRAT re-validation time *)
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

let plain_config = { T.default with T.inprocessing = true }

let proof_config =
  { T.default with T.inprocessing = true; proof_logging = true }

let solve config f = S.solve ~engine:(S.Cdcl config) ~pipeline:S.full_pipeline f

let run_case ~reps ~family name mk =
  let best_plain = ref infinity
  and best_proof = ref infinity
  and best_trim = ref infinity in
  let steps = ref 0 and adds = ref 0 and kept = ref 0 and core = ref 0 in
  let nclauses = ref 0 in
  for _ = 1 to reps do
    let f = mk () in
    nclauses := Cnf.Formula.nclauses f;
    let r_plain, dt_plain = Util.time (fun () -> solve plain_config f) in
    (match r_plain.S.outcome with
     | T.Unsat | T.Unsat_assuming _ -> ()
     | o -> failwith (name ^ ": expected UNSAT, got " ^ Util.outcome_label o));
    let r_proof, dt_proof = Util.time (fun () -> solve proof_config f) in
    let proof =
      match r_proof.S.proof with
      | Some p -> p
      | None -> failwith (name ^ ": proof-logging run produced no proof")
    in
    let (kept_adds, core_ids), dt_trim =
      Util.time (fun () ->
          match P.trim f proof with
          | P.Trimmed { lines; core; kept_adds; total_adds = _ } ->
            (match P.check_lrat f lines with
             | Ok () -> (kept_adds, core)
             | Error e -> failwith (name ^ ": LRAT rejected: " ^ e))
          | P.Not_refutation -> failwith (name ^ ": proof not a refutation")
          | P.Trim_invalid i ->
            failwith (Printf.sprintf "%s: invalid step %d" name i))
    in
    steps := List.length proof;
    adds :=
      List.length (List.filter (function P.Add _ -> true | _ -> false) proof);
    kept := kept_adds;
    core := List.length core_ids;
    if dt_plain < !best_plain then best_plain := dt_plain;
    if dt_proof < !best_proof then best_proof := dt_proof;
    if dt_trim < !best_trim then best_trim := dt_trim
  done;
  {
    name;
    family;
    plain_s = !best_plain;
    proof_s = !best_proof;
    steps = !steps;
    adds = !adds;
    kept = !kept;
    core = !core;
    nclauses = !nclauses;
    trim_s = !best_trim;
  }

let miter bits () =
  let f, _ =
    Circuit.Miter.to_cnf
      (Circuit.Generators.multiplier ~bits)
      (Circuit.Generators.wallace_multiplier ~bits)
  in
  f

let adder_miter bits () =
  let f, _ =
    Circuit.Miter.to_cnf
      (Circuit.Generators.ripple_adder ~bits)
      (Circuit.Generators.kogge_stone_adder ~bits)
  in
  f

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let write_json path ~mode rows =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b "  \"experiment\": \"E30\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "  \"proofs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"family\": \"%s\", \"plain_s\": %.6f, \
            \"proof_s\": %.6f, \"logging_overhead\": %.3f, \
            \"drat_steps\": %d, \"additions\": %d, \"kept_additions\": %d, \
            \"trim_ratio\": %.3f, \"core_clauses\": %d, \"nclauses\": %d, \
            \"trim_s\": %.6f, \"check_vs_solve\": %.3f}%s\n"
           r.name r.family r.plain_s r.proof_s (r.proof_s /. r.plain_s)
           r.steps r.adds r.kept (ratio r.kept r.adds) r.core r.nclauses
           r.trim_s (r.trim_s /. r.proof_s)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e30 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E30 proof logging overhead + backward trimming"
    "full pipeline (BVE + inprocessing) with DRAT logging on vs off; \
     backward trim into LRAT, re-validated independently";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case ~family name mk = rows := run_case ~reps ~family name mk :: !rows in
  List.iter
    (fun bits ->
      case ~family:"miter" (Printf.sprintf "miter-mult%d" bits) (miter bits))
    (if smoke then [ 2 ] else [ 3; 4 ]);
  List.iter
    (fun bits ->
      case ~family:"miter"
        (Printf.sprintf "miter-add%d" bits)
        (adder_miter bits))
    (if smoke then [ 3 ] else [ 8; 16 ]);
  (if smoke then case ~family:"php" "php(5,4)" (fun () -> Util.pigeonhole 5 4)
   else begin
     case ~family:"php" "php(7,6)" (fun () -> Util.pigeonhole 7 6);
     case ~family:"php" "php(8,7)" (fun () -> Util.pigeonhole 8 7)
   end);
  let rows = List.rev !rows in
  Util.row "%-14s %-6s %9s %9s %8s %8s %7s %7s %9s@." "instance" "family"
    "plain" "proof" "ovhd" "steps" "trim%" "core" "check";
  Util.line ();
  List.iter
    (fun r ->
      Util.row "%-14s %-6s %8.3fs %8.3fs %7.2fx %8d %6.1f%% %7d %8.3fs@."
        r.name r.family r.plain_s r.proof_s (r.proof_s /. r.plain_s) r.steps
        (100. *. ratio r.kept r.adds)
        r.core r.trim_s)
    rows;
  if json () then begin
    write_json "BENCH_proofs.json" ~mode rows;
    Util.row "@.wrote BENCH_proofs.json (%s mode)@." mode
  end;
  Util.row
    "@.plain and proof-logging runs interleaved, best of %d rep(s); every \
     refutation is backward-trimmed and its LRAT certificate re-validated. \
     trim%% is the share of logged additions the trimmed certificate keeps; \
     core counts original clauses the refutation depends on.@."
    reps
