(* Experiment E26: preprocessing ablation — bounded variable elimination
   and inprocessing.

   Three variants of the same solver run interleaved (one rep = all
   variants back to back, so machine drift hits them equally):

     base      full pipeline with elimination off — the pre-elimination
               solver this PR started from
     bve       full pipeline, bounded variable elimination on (default)
     bve+inp   bve plus the in-search simplification hook
               (learnt subsumption + vivification at restart boundaries)

   Families: CEC miters (array vs Wallace multiplier), pigeonhole,
   ATPG test-generation instances, and random 3-SAT at the phase
   transition.  Every SAT model is validated against the *original*
   formula after model reconstruction through the elimination stack,
   and the UNSAT anchors are re-certified through the proof checker
   with elimination and inprocessing both enabled (their additions and
   deletions land in the DRAT stream; see docs/PROOFS.md).

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_preprocessing.json in the current dir *)

module T = Sat.Types
module S = Sat.Solver

type row = {
  name : string;
  family : string;
  answer : string;
  base_s : float;
  bve_s : float;
  bve_inp_s : float;
  eliminated : int;       (* vars removed by elimination, bve variant *)
  clauses_removed : int;  (* clause count change from elimination *)
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

let inp_config =
  { T.default with T.inprocessing = true; inprocess_interval = 1_000 }

let variants =
  [
    ("base",
     fun f -> S.solve ~pipeline:{ S.full_pipeline with S.elim = false } f);
    ("bve", fun f -> S.solve ~pipeline:S.full_pipeline f);
    ("bve+inp",
     fun f ->
       S.solve ~engine:(S.Cdcl inp_config) ~pipeline:S.full_pipeline f);
  ]

let validate name f (r : S.report) =
  match r.S.outcome with
  | T.Sat m ->
    if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
      failwith (name ^ ": reconstructed model violates the original formula")
  | T.Unsat | T.Unsat_assuming _ -> ()
  | T.Unknown why -> failwith (name ^ ": inconclusive (" ^ why ^ ")")

(* Interleaved A/B, best-of-[reps] per variant; answers must agree
   across variants and SAT models must check out post-reconstruction. *)
let run_case ~reps ~family name mk_formula =
  let n = List.length variants in
  let best = Array.make n infinity in
  let answer = ref "?" and eliminated = ref 0 and clauses_removed = ref 0 in
  for _ = 1 to reps do
    List.iteri
      (fun i (vname, solve) ->
         let f = mk_formula () in
         let r, dt = Util.time (fun () -> solve f) in
         validate (name ^ "/" ^ vname) f r;
         let a = Util.outcome_label r.S.outcome in
         if !answer = "?" then answer := a
         else if a <> !answer then
           failwith
             (Printf.sprintf "%s: %s answers %s, others %s" name vname a
                !answer);
         if vname = "bve" then begin
           match r.S.preprocess_stats with
           | Some p ->
             eliminated := p.Sat.Preprocess.eliminated;
             clauses_removed := p.Sat.Preprocess.elim_clauses_removed
           | None -> ()
         end;
         if dt < best.(i) then best.(i) <- dt)
      variants
  done;
  {
    name;
    family;
    answer = !answer;
    base_s = best.(0);
    bve_s = best.(1);
    bve_inp_s = best.(2);
    eliminated = !eliminated;
    clauses_removed = !clauses_removed;
  }

(* --- instance families --------------------------------------------------- *)

let miter bits () =
  let f, _ =
    Circuit.Miter.to_cnf
      (Circuit.Generators.multiplier ~bits)
      (Circuit.Generators.wallace_multiplier ~bits)
  in
  f

(* circuit vs its XOR-decomposed rewrite: the synthesis-redundancy CEC
   shape, full of single-use Tseitin definitions elimination feeds on *)
let miter_xor bits () =
  let w = Circuit.Generators.wallace_multiplier ~bits in
  let f, _ =
    Circuit.Miter.to_cnf w
      (Circuit.Transform.rewrite_xor (Circuit.Generators.wallace_multiplier ~bits))
  in
  f

(* fault test-generation CNF: instance circuit + activation/observation
   objectives as units, the Figure 1 construction *)
let atpg_cnf c fault =
  let inst, objectives = Eda.Atpg.instance c fault in
  let enc = Circuit.Encode.encode inst in
  List.iter
    (fun (node, v) ->
       Circuit.Encode.assert_output enc.Circuit.Encode.formula
         (enc.Circuit.Encode.lit_of_node node)
         v)
    objectives;
  enc.Circuit.Encode.formula

let atpg_cases ~smoke =
  let c =
    if smoke then Circuit.Generators.c17 ()
    else Circuit.Generators.multiplier ~bits:4
  in
  let faults = Eda.Atpg.fault_list c in
  let total = List.length faults in
  let picks = if smoke then [ 0 ] else [ 0; total / 3; 2 * total / 3 ] in
  List.map
    (fun i ->
       let fault = List.nth faults i in
       ( Printf.sprintf "atpg-%s-f%d" (if smoke then "c17" else "mult4") i,
         fun () -> atpg_cnf c fault ))
    picks

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | l ->
    let n = List.length l in
    let a = Array.of_list l in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let write_json path ~mode rows certified medians =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b "  \"experiment\": \"E26\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "  \"ablation\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"family\": \"%s\", \"answer\": \"%s\", \
             \"base_s\": %.6f, \"bve_s\": %.6f, \"bve_inprocess_s\": %.6f, \
             \"speedup_bve\": %.3f, \"vars_eliminated\": %d, \
             \"clauses_removed\": %d}%s\n"
            r.name r.family r.answer r.base_s r.bve_s r.bve_inp_s
            (r.base_s /. r.bve_s) r.eliminated r.clauses_removed
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"median_speedup_by_family\": {\n";
  List.iteri
    (fun i (fam, m) ->
       Buffer.add_string b
         (Printf.sprintf "    \"%s\": %.3f%s\n" fam m
            (if i = List.length medians - 1 then "" else ",")))
    medians;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"unsat_certified_with_elim\": [";
  Buffer.add_string b
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") certified));
  Buffer.add_string b "]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e26 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E26 preprocessing ablation (variable elimination + inprocessing)"
    "SatELite-style bounded elimination ahead of search; interleaved A/B \
     against the pre-elimination pipeline";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case ~family name mk = rows := run_case ~reps ~family name mk :: !rows in
  (* CEC miters: the target family for the elimination win *)
  List.iter
    (fun bits -> case ~family:"miter" (Printf.sprintf "miter-mult%d" bits)
        (miter bits))
    (if smoke then [ 2 ] else [ 4; 5; 6 ]);
  List.iter
    (fun bits ->
       case ~family:"miter"
         (Printf.sprintf "miter-wall%d-xor" bits)
         (miter_xor bits))
    (if smoke then [] else [ 5; 6; 7 ]);
  (* pigeonhole: dense occurrence lists, elimination mostly declines *)
  (if smoke then case ~family:"php" "php(5,4)" (fun () -> Util.pigeonhole 5 4)
   else case ~family:"php" "php(8,7)" (fun () -> Util.pigeonhole 8 7));
  (* ATPG test generation (Figure 1 construction) *)
  List.iter
    (fun (name, mk) -> case ~family:"atpg" name mk)
    (atpg_cases ~smoke);
  (* random 3-SAT: no functional structure, elimination should be a wash *)
  let nvars = if smoke then 60 else 200 in
  List.iter
    (fun seed ->
       case ~family:"3sat"
         (Printf.sprintf "3sat-%d@4.26" seed)
         (fun () -> Util.random_3sat ~seed ~nvars ~ratio:4.26))
    (if smoke then [ 3 ] else [ 3; 5 ]);
  let rows = List.rev !rows in
  Util.row "%-16s %-6s %-6s %9s %9s %9s %8s %6s@." "instance" "family" "ans"
    "base" "bve" "bve+inp" "speedup" "elim";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %-6s %8.3fs %8.3fs %8.3fs %7.2fx %6d@." r.name
         r.family r.answer r.base_s r.bve_s r.bve_inp_s (r.base_s /. r.bve_s)
         r.eliminated)
    rows;
  let medians =
    List.map
      (fun fam ->
         ( fam,
           median
             (List.filter_map
                (fun r ->
                   if r.family = fam then Some (r.base_s /. r.bve_s) else None)
                rows) ))
      [ "miter"; "php"; "atpg"; "3sat" ]
  in
  List.iter
    (fun (fam, m) -> Util.row "median speedup %-6s %.2fx@." fam m)
    medians;
  (* elimination now emits DRAT: the UNSAT anchors certify end to end
     through the full pipeline, BVE and inprocessing included *)
  let certified =
    List.filter_map
      (fun (name, f) ->
         let r =
           S.solve
             ~engine:
               (S.Cdcl { inp_config with T.proof_logging = true })
             ~pipeline:S.full_pipeline f
         in
         match r.S.outcome, r.S.proof with
         | (T.Unsat | T.Unsat_assuming _), Some proof ->
           (match Sat.Proof.trim f proof with
            | Sat.Proof.Trimmed _ -> Some name
            | _ -> failwith (name ^ ": UNSAT refutation failed to trim"))
         | _ -> failwith (name ^ ": UNSAT refutation failed to certify"))
      [
        ("php(5,4)", Util.pigeonhole 5 4);
        ("miter-mult3", miter 3 ());
      ]
  in
  Util.row "UNSAT certified with elimination + inprocessing: %s@."
    (String.concat ", " certified);
  if json () then begin
    write_json "BENCH_preprocessing.json" ~mode rows certified medians;
    Util.row "@.wrote BENCH_preprocessing.json (%s mode)@." mode
  end;
  Util.row
    "@.base is the pre-elimination pipeline (elim off); bve adds bounded \
     variable elimination; bve+inp additionally simplifies the learnt \
     database during search.  Best of %d interleaved run(s) per variant; \
     every SAT model is validated against the original formula after \
     reconstruction through the elimination stack.@."
    reps
