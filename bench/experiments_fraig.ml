(* Experiment E27: fraiging CEC vs the monolithic miter.

   Two engines on the same equivalence checks, interleaved (one rep =
   both engines back to back, so machine drift hits them equally),
   best-of-[reps] wall clock per engine:

     mono    one miter CNF through the full preprocessing pipeline,
             solved in a single budgeted SAT call (the E10/E26 route)
     fraig   the sweeping pipeline: structural hashing into one AIG,
             simulation-derived candidate classes, incremental SAT
             proofs that merge the graph as they land

   Families: array and Wallace multipliers against their XOR-decomposed
   rewrites (the synthesis-redundancy CEC shape, dense in internal
   equivalences) plus a cross-architecture pair (array vs Wallace) where
   internal cut points are scarce and fraiging has to earn its keep at
   the outputs.  Verdicts are cross-checked between the engines on every
   instance where both are definite, and against BDDs on the small
   overlap.  The "beyond" instances are sized past the old mult6/wall7
   ceiling: the monolithic engine runs into its conflict budget there
   while fraig still finishes.

   Flags (read from the bench command line, after "--"):
     --smoke   tiny instance sizes: asserts the harness runs end to end
     --json    also write BENCH_cec.json in the current dir *)

module T = Sat.Types

type row = {
  name : string;
  family : string;
  answer : string;       (* fraig verdict: eq / neq / ? *)
  mono_answer : string;
  fraig_s : float;
  mono_s : float;
  aig_nodes : int;
  fraig_nodes : int;
  merges : int;
  sat_calls : int;
}

let smoke () = Array.exists (( = ) "--smoke") Sys.argv
let json () = Array.exists (( = ) "--json") Sys.argv

(* the monolithic engine gets a conflict budget: past the old ceiling it
   is the one that gives up, and the budget keeps full runs bounded *)
let mono_conflicts = 400_000

let mono_config = { T.default with T.max_conflicts = Some mono_conflicts }

let verdict_tag = function
  | Eda.Equiv.Equivalent -> "eq"
  | Eda.Equiv.Inequivalent _ -> "neq"
  | Eda.Equiv.Inconclusive _ -> "?"

let run_case ~reps ~family name mk_pair =
  let fraig_best = ref infinity and mono_best = ref infinity in
  let fraig_tag = ref "?" and mono_tag = ref "?" in
  let aig_nodes = ref 0 and fraig_nodes = ref 0 in
  let merges = ref 0 and sat_calls = ref 0 in
  for _ = 1 to reps do
    let c1, c2 = mk_pair () in
    let w = Eda.Sweep.check c1 c2 in
    let ft = w.Eda.Sweep.times.Eda.Sweep.total_s in
    if ft < !fraig_best then fraig_best := ft;
    fraig_tag := verdict_tag w.Eda.Sweep.verdict;
    aig_nodes := w.Eda.Sweep.stats.Eda.Sweep.aig_nodes;
    fraig_nodes := w.Eda.Sweep.stats.Eda.Sweep.fraig_nodes;
    merges := w.Eda.Sweep.stats.Eda.Sweep.merges;
    sat_calls := w.Eda.Sweep.stats.Eda.Sweep.sat_calls;
    let m =
      Eda.Equiv.check_sat ~config:mono_config
        ~pipeline:Sat.Solver.full_pipeline c1 c2
    in
    if m.Eda.Equiv.time_seconds < !mono_best then
      mono_best := m.Eda.Equiv.time_seconds;
    mono_tag := verdict_tag m.Eda.Equiv.verdict;
    (* definite verdicts must agree *)
    if !fraig_tag <> "?" && !mono_tag <> "?" && !fraig_tag <> !mono_tag then
      failwith
        (Printf.sprintf "%s: fraig says %s, mono says %s" name !fraig_tag
           !mono_tag)
  done;
  {
    name;
    family;
    answer = !fraig_tag;
    mono_answer = !mono_tag;
    fraig_s = !fraig_best;
    mono_s = !mono_best;
    aig_nodes = !aig_nodes;
    fraig_nodes = !fraig_nodes;
    merges = !merges;
    sat_calls = !sat_calls;
  }

(* --- instance families --------------------------------------------------- *)

let mult_xor bits () =
  let c = Circuit.Generators.multiplier ~bits in
  (c, Circuit.Transform.rewrite_xor (Circuit.Generators.multiplier ~bits))

let wall_xor bits () =
  let c = Circuit.Generators.wallace_multiplier ~bits in
  ( c,
    Circuit.Transform.rewrite_xor
      (Circuit.Generators.wallace_multiplier ~bits) )

let cross bits () =
  ( Circuit.Generators.multiplier ~bits,
    Circuit.Generators.wallace_multiplier ~bits )

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | l ->
    let n = List.length l in
    let a = Array.of_list l in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let write_json path ~mode rows medians beyond bdd_checked =
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"satreda-bench\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"version\": %d,\n" Sat.Metrics.schema_version);
  Buffer.add_string b "  \"experiment\": \"E27\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b
    (Printf.sprintf "  \"mono_conflict_budget\": %d,\n" mono_conflicts);
  Buffer.add_string b "  \"cec\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"family\": \"%s\", \"fraig\": \"%s\", \
             \"mono\": \"%s\", \"fraig_s\": %.6f, \"mono_s\": %.6f, \
             \"speedup\": %.3f, \"aig_nodes\": %d, \"fraig_nodes\": %d, \
             \"merges\": %d, \"sat_calls\": %d}%s\n"
            r.name r.family r.answer r.mono_answer r.fraig_s r.mono_s
            (r.mono_s /. r.fraig_s) r.aig_nodes r.fraig_nodes r.merges
            r.sat_calls
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"median_speedup_by_family\": {\n";
  List.iteri
    (fun i (fam, m) ->
       Buffer.add_string b
         (Printf.sprintf "    \"%s\": %.3f%s\n" fam m
            (if i = List.length medians - 1 then "" else ",")))
    medians;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"beyond_mono_budget\": [";
  Buffer.add_string b
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") beyond));
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"bdd_cross_checked\": [";
  Buffer.add_string b
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") bdd_checked));
  Buffer.add_string b "]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let e27 () =
  let smoke = smoke () in
  let mode = if smoke then "smoke" else "full" in
  Util.header "E27 fraiging CEC vs the monolithic miter"
    "structural hashing + simulation classes + incremental SAT sweeping, \
     interleaved A/B against one budgeted miter CNF";
  let reps = if smoke then 1 else 5 in
  let rows = ref [] in
  let case ?(reps = reps) ~family name mk =
    rows := run_case ~reps ~family name mk :: !rows
  in
  List.iter
    (fun bits ->
       case ~family:"mult" (Printf.sprintf "mult%d-xor" bits) (mult_xor bits))
    (if smoke then [ 3 ] else [ 4; 5; 6 ]);
  List.iter
    (fun bits ->
       case ~family:"wall" (Printf.sprintf "wall%d-xor" bits) (wall_xor bits))
    (if smoke then [ 4 ] else [ 5; 6; 7 ]);
  List.iter
    (fun bits ->
       case ~family:"cross" (Printf.sprintf "mult-vs-wall%d" bits)
         (cross bits))
    (if smoke then [ 3 ] else [ 4; 5 ]);
  (* past the old mult6/wall7 ceiling: the monolithic engine hits its
     conflict budget, fraig still finishes (best-of-1 — these are the
     expensive anchors) *)
  if not smoke then begin
    List.iter
      (fun bits ->
         case ~reps:1 ~family:"beyond" (Printf.sprintf "mult%d-xor" bits)
           (mult_xor bits))
      [ 7; 8 ];
    List.iter
      (fun bits ->
         case ~reps:1 ~family:"beyond" (Printf.sprintf "wall%d-xor" bits)
           (wall_xor bits))
      [ 8; 9 ]
  end;
  let rows = List.rev !rows in
  Util.row "%-16s %-6s %-4s %-6s %9s %9s %8s %7s %7s@." "instance" "family"
    "ans" "mono" "fraig" "mono" "speedup" "merges" "nodes";
  Util.line ();
  List.iter
    (fun r ->
       Util.row "%-16s %-6s %-4s %-6s %8.3fs %8.3fs %7.2fx %7d %7d@." r.name
         r.family r.answer r.mono_answer r.fraig_s r.mono_s
         (r.mono_s /. r.fraig_s) r.merges r.fraig_nodes)
    rows;
  let medians =
    List.map
      (fun fam ->
         ( fam,
           median
             (List.filter_map
                (fun r ->
                   if r.family = fam then Some (r.mono_s /. r.fraig_s)
                   else None)
                rows) ))
      (if smoke then [ "mult"; "wall"; "cross" ]
       else [ "mult"; "wall"; "cross"; "beyond" ])
  in
  List.iter
    (fun (fam, m) -> Util.row "median speedup %-6s %.2fx@." fam m)
    medians;
  let beyond =
    List.filter_map
      (fun r ->
         if r.family = "beyond" && r.answer <> "?" && r.mono_answer = "?"
         then Some r.name
         else None)
      rows
  in
  if beyond <> [] then
    Util.row "fraig-only (mono exhausted %d conflicts): %s@." mono_conflicts
      (String.concat ", " beyond);
  (* BDD cross-check on the small overlap: three definite verdicts per
     instance, all must agree *)
  let bdd_checked =
    List.filter_map
      (fun (name, mk) ->
         let c1, c2 = mk () in
         let b = Eda.Equiv.check_bdd c1 c2 in
         let f = Eda.Equiv.check_fraig c1 c2 in
         match (b.Eda.Equiv.verdict, f.Eda.Equiv.verdict) with
         | Eda.Equiv.Equivalent, Eda.Equiv.Equivalent -> Some name
         | Eda.Equiv.Inequivalent _, Eda.Equiv.Inequivalent _ -> Some name
         | Eda.Equiv.Inconclusive _, _ -> None
         | _ -> failwith (name ^ ": BDD and fraig disagree"))
      (if smoke then [ ("mult3-xor", mult_xor 3) ]
       else
         [
           ("mult4-xor", mult_xor 4);
           ("wall5-xor", wall_xor 5);
           ("mult-vs-wall4", cross 4);
         ])
  in
  Util.row "BDD cross-checked: %s@." (String.concat ", " bdd_checked);
  if json () then begin
    write_json "BENCH_cec.json" ~mode rows medians beyond bdd_checked;
    Util.row "@.wrote BENCH_cec.json (%s mode)@." mode
  end;
  Util.row
    "@.mono solves one miter CNF through the full preprocessing pipeline \
     under a %d-conflict budget; fraig sweeps the shared-input AIG with \
     simulation-guided incremental SAT.  Best of %d interleaved run(s) per \
     engine; definite verdicts cross-checked between engines and against \
     BDDs on the small overlap.@."
    mono_conflicts reps
