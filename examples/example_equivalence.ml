(* Combinational equivalence checking: SAT vs BDD (Sec. 1 and 3).

   Verifies a multiplier against a restructured implementation, then
   hunts an injected bug; shows where BDDs blow up while SAT keeps
   going.

   Run with: dune exec examples/example_equivalence.exe *)

let describe name (r : Eda.Equiv.report) =
  match r.Eda.Equiv.verdict with
  | Eda.Equiv.Equivalent ->
    Format.printf "%-22s EQUIVALENT     (%.3fs, bdd nodes %d)@." name
      r.Eda.Equiv.time_seconds r.Eda.Equiv.bdd_nodes
  | Eda.Equiv.Inequivalent v ->
    let bits =
      String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')
    in
    Format.printf "%-22s DIFFER at input [%s] (%.3fs)@." name bits
      r.Eda.Equiv.time_seconds
  | Eda.Equiv.Inconclusive why ->
    Format.printf "%-22s INCONCLUSIVE: %s@." name why

let () =
  let bits = 4 in
  let golden = Circuit.Generators.multiplier ~bits in
  let revised =
    Circuit.Transform.demorgan ~seed:3
      (Circuit.Transform.rewrite_xor golden)
  in
  Format.printf "golden:  %a@." Circuit.Netlist.pp_stats golden;
  Format.printf "revised: %a@.@." Circuit.Netlist.pp_stats revised;

  describe "sat miter" (Eda.Equiv.check_sat golden revised);
  describe "sat + preprocessing"
    (Eda.Equiv.check_sat ~pipeline:Sat.Solver.full_pipeline golden revised);
  describe "sat + rec. learning" (Eda.Equiv.check_rl ~depth:1 golden revised);
  describe "bdd" (Eda.Equiv.check_bdd golden revised);
  describe "aig merge" (Eda.Equiv.check_aig golden revised);
  (let r = Eda.Sweep.check golden revised in
   Format.printf "%-22s %s (%.3fs, %d internal equivalences proven)@."
     "sat sweeping"
     (match r.Eda.Sweep.verdict with
      | Eda.Equiv.Equivalent -> "EQUIVALENT"
      | Eda.Equiv.Inequivalent _ -> "DIFFER"
      | Eda.Equiv.Inconclusive _ -> "INCONCLUSIVE")
     r.Eda.Sweep.times.Eda.Sweep.total_s r.Eda.Sweep.stats.Eda.Sweep.merges);

  Format.printf "@.-- with an injected bug --@.";
  let buggy, what = Circuit.Transform.inject_bug ~seed:13 revised in
  Format.printf "mutation: %s@." what;
  describe "sat miter" (Eda.Equiv.check_sat golden buggy);
  describe "bdd" (Eda.Equiv.check_bdd golden buggy);

  Format.printf "@.-- scaling: BDD node limit vs SAT --@.";
  let big = Circuit.Generators.multiplier ~bits:6 in
  let big2 = Circuit.Transform.rewrite_xor big in
  describe "bdd (100k nodes)" (Eda.Equiv.check_bdd ~node_limit:100_000 big big2);
  describe "sat miter" (Eda.Equiv.check_sat big big2)
