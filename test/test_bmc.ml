module B = Eda.Bmc
module S = Circuit.Sequential

let correct_counter_depth () =
  let c = S.counter ~bits:3 ~buggy_at:None in
  match (B.check ~max_bound:12 c).B.result with
  | B.Counterexample frames ->
    (* count reaches 7 after 7 enabled increments; bad observed in the
       8th frame *)
    Alcotest.(check int) "depth" 8 (List.length frames);
    let outs = S.simulate c ~inputs:frames in
    Alcotest.(check bool) "replay reaches bad" true
      (List.exists (fun o -> o.(0)) outs)
  | B.No_counterexample -> Alcotest.fail "counter must reach bad"

let buggy_counter_shallower () =
  let c = S.counter ~bits:3 ~buggy_at:(Some 2) in
  match (B.check ~max_bound:12 c).B.result with
  | B.Counterexample frames ->
    Alcotest.(check int) "shortcut depth" 4 (List.length frames);
    let outs = S.simulate c ~inputs:frames in
    Alcotest.(check bool) "replay" true (List.exists (fun o -> o.(0)) outs)
  | B.No_counterexample -> Alcotest.fail "buggy counter must fail earlier"

let bound_too_small () =
  let c = S.counter ~bits:4 ~buggy_at:None in
  let r = B.check ~max_bound:5 c in
  (match r.B.result with
   | B.No_counterexample -> ()
   | B.Counterexample _ -> Alcotest.fail "bad unreachable within 5 steps");
  Alcotest.(check int) "bound reached" 5 r.B.bound_reached

let counterexample_is_minimal () =
  (* BMC explores increasing bounds, so the cex has minimal length *)
  let c = S.counter ~bits:2 ~buggy_at:None in
  match (B.check ~max_bound:10 c).B.result with
  | B.Counterexample frames ->
    Alcotest.(check int) "minimal" 4 (List.length frames);
    (* shorter prefixes never reach bad *)
    let outs = S.simulate c ~inputs:frames in
    List.iteri
      (fun i o ->
         if i < List.length outs - 1 then
           Alcotest.(check bool) "not earlier" false o.(0))
      outs
  | B.No_counterexample -> Alcotest.fail "expected cex"

let enable_can_be_held_low () =
  (* the solver must choose to enable on every stepping frame (the final
     frame's input is a don't-care: [bad] reads the current state) *)
  let c = S.counter ~bits:2 ~buggy_at:None in
  match (B.check ~max_bound:6 c).B.result with
  | B.Counterexample frames ->
    let stepping = List.filteri (fun i _ -> i < List.length frames - 1) frames in
    Alcotest.(check bool) "every stepping frame enabled" true
      (List.for_all (fun f -> f.(0)) stepping)
  | B.No_counterexample -> Alcotest.fail "expected cex"

let per_bound_stats () =
  let c = S.counter ~bits:2 ~buggy_at:None in
  let r = B.check ~max_bound:6 c in
  Alcotest.(check int) "stats rows" r.B.bound_reached
    (List.length r.B.per_bound_conflicts)

let missing_bad_output () =
  let c = S.lfsr ~bits:3 ~taps:[ 1; 2 ] in
  Alcotest.check_raises "no bad output"
    (Invalid_argument "Bmc.check: no output named bad") (fun () ->
        ignore (B.check ~max_bound:2 c))

let custom_property_name () =
  let c = S.lfsr ~bits:3 ~taps:[ 1; 2 ] in
  (* tap0 starts at 1: 'property' tap0 fails at frame 0 *)
  match (B.check ~bad_output:"tap0" ~max_bound:3 c).B.result with
  | B.Counterexample frames -> Alcotest.(check int) "frame 0" 1 (List.length frames)
  | B.No_counterexample -> Alcotest.fail "tap0 is initially 1"

let induction_proves_ring_counter () =
  let ring = S.ring_counter ~bits:5 in
  (* bounded checking alone cannot conclude *)
  (match (B.check ~max_bound:12 ring).B.result with
   | B.No_counterexample -> ()
   | B.Counterexample _ -> Alcotest.fail "ring counter is safe");
  match B.prove_inductive ~max_k:3 ring with
  | B.Proved k -> Alcotest.(check bool) "small induction depth" true (k <= 2)
  | B.Refuted _ -> Alcotest.fail "safe design refuted"
  | B.Bound_reached -> Alcotest.fail "one-hot invariant is 1-inductive"

let induction_refutes_buggy () =
  let c = S.counter ~bits:3 ~buggy_at:None in
  (* bad IS reachable: induction must report the counterexample *)
  match B.prove_inductive ~max_k:10 c with
  | B.Refuted frames -> Alcotest.(check int) "depth" 8 (List.length frames)
  | B.Proved _ -> Alcotest.fail "reachable bad state proved safe?!"
  | B.Bound_reached -> Alcotest.fail "cex lies within the bound"

let induction_gives_up_honestly () =
  (* the plain counter's bad state is reachable only at depth 8; with
     max_k below that, neither a proof (not inductive) nor a cex fits *)
  let c = S.counter ~bits:3 ~buggy_at:None in
  match B.prove_inductive ~max_k:3 c with
  | B.Bound_reached -> ()
  | B.Proved _ -> Alcotest.fail "non-inductive property proved"
  | B.Refuted frames ->
    Alcotest.failf "cex of %d frames within k=3?" (List.length frames)

let explain_bound_names_needed_frames () =
  let c = S.counter ~bits:3 ~buggy_at:None in
  (* bad first fires in frame 7; at bound 5 it is still unreachable *)
  (match B.explain_bound ~bound:5 c with
   | Some frames ->
     Alcotest.(check bool) "frames within range" true
       (List.for_all (fun t -> t >= 0 && t < 5) frames);
     (* the last frame defines the queried bad literal, so its
        transition logic must be part of any refutation *)
     Alcotest.(check bool) "last frame needed" true (List.mem 4 frames)
   | None -> Alcotest.fail "bad is unreachable at bound 5");
  (* at bound 8 a counterexample exists, so there is nothing to explain *)
  match B.explain_bound ~bound:8 c with
  | None -> ()
  | Some _ -> Alcotest.fail "counterexample expected at bound 8"

let suite =
  [
    Th.case "induction proves ring counter" induction_proves_ring_counter;
    Th.case "induction refutes buggy" induction_refutes_buggy;
    Th.case "induction bound reached" induction_gives_up_honestly;
    Th.case "correct counter depth" correct_counter_depth;
    Th.case "buggy counter shallower" buggy_counter_shallower;
    Th.case "bound too small" bound_too_small;
    Th.case "minimal counterexample" counterexample_is_minimal;
    Th.case "enable chosen" enable_can_be_held_low;
    Th.case "per-bound stats" per_bound_stats;
    Th.case "missing bad output" missing_bad_output;
    Th.case "custom property" custom_property_name;
    Th.case "explain bound" explain_bound_names_needed_frames;
  ]
