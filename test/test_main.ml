(* Aggregated alcotest runner: one suite per module. *)

let () =
  Alcotest.run "satreda"
    [
      ("lit", Test_lit.suite);
      ("clause", Test_clause.suite);
      ("formula+dimacs", Test_formula.suite);
      ("expr+tseitin", Test_expr.suite);
      ("cardinality", Test_cardinality.suite);
      ("resolution", Test_resolution.suite);
      ("vec+heap+rng", Test_vec_heap_rng.suite);
      ("bcp", Test_bcp.suite);
      ("cdcl", Test_cdcl.suite);
      ("watches", Test_watches.suite);
      ("proof", Test_proof.suite);
      ("dpll", Test_dpll.suite);
      ("local-search", Test_local_search.suite);
      ("stalmarck", Test_stalmarck.suite);
      ("preprocess", Test_preprocess.suite);
      ("equivalence-reasoning", Test_equivalence.suite);
      ("recursive-learning", Test_recursive_learning.suite);
      ("solver", Test_solver.suite);
      ("session", Test_session.suite);
      ("portfolio", Test_portfolio.suite);
      ("bdd", Test_bdd.suite);
      ("aig", Test_aig.suite);
      ("gate", Test_gate.suite);
      ("netlist", Test_netlist.suite);
      ("simulate", Test_simulate.suite);
      ("simulate-ternary", Test_simulate3.suite);
      ("encode", Test_encode.suite);
      ("bench-format", Test_bench_format.suite);
      ("transform", Test_transform.suite);
      ("generators-2", Test_generators2.suite);
      ("sequential", Test_sequential.suite);
      ("miter", Test_miter.suite);
      ("csat", Test_csat.suite);
      ("atpg", Test_atpg.suite);
      ("compaction", Test_compaction.suite);
      ("redundancy", Test_redundancy.suite);
      ("equiv-checking", Test_equiv.suite);
      ("sat-sweeping", Test_sweep.suite);
      ("delay", Test_delay.suite);
      ("path-delay", Test_path_delay.suite);
      ("bmc", Test_bmc.suite);
      ("euf", Test_euf.suite);
      ("seq-equiv", Test_seq_equiv.suite);
      ("fvg", Test_fvg.suite);
      ("routing", Test_routing.suite);
      ("covering", Test_covering.suite);
      ("prime-implicants", Test_prime.suite);
      ("pseudo-boolean", Test_pseudo_boolean.suite);
      ("crosstalk", Test_crosstalk.suite);
      ("misc-robustness", Test_misc.suite);
      ("cross-module-properties", Test_properties.suite);
      ("paper-figures", Test_paper_figures.suite);
    ]
