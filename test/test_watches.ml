(* Guards for the propagation-layer memory overhaul: the debug watch
   checker after solving (and after clause-database reductions, which
   exercise lazy deletion + compaction), plus a 300-instance sweep pinned
   to the answer set recorded before blocking literals were introduced. *)

(* bench/util.ml's generator, duplicated so tests depend only on the
   libraries *)
let random_3sat ~seed ~nvars ~ratio =
  let rng = Sat.Rng.create seed in
  let f = Cnf.Formula.create ~nvars () in
  let nclauses = int_of_float (float_of_int nvars *. ratio) in
  for _ = 1 to nclauses do
    let rec distinct acc n =
      if n = 0 then acc
      else
        let v = Sat.Rng.int rng nvars in
        if List.mem v acc then distinct acc n else distinct (v :: acc) (n - 1)
    in
    let vars = distinct [] 3 in
    Cnf.Formula.add_clause_l f
      (List.map (fun v -> Cnf.Lit.of_var v (Sat.Rng.bool rng)) vars)
  done;
  f

let check_ok ctx s =
  match Sat.Cdcl.check_watches s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" ctx msg)

let configs =
  [
    ("default", Sat.Types.default);
    ("grasp-like", Sat.Types.grasp_like);
    ("lbd", { Sat.Types.default with deletion = Sat.Types.Lbd_bounded 3 });
    ("size", { Sat.Types.default with deletion = Sat.Types.Size_bounded 4 });
    ("no-deletion", { Sat.Types.default with deletion = Sat.Types.No_deletion });
    ("chrono+proof",
     { Sat.Types.default with chronological = true; proof_logging = true });
  ]

(* invariant holds after solving, after a reduction pass (lazy deletion +
   tombstone compaction), and after an incremental re-solve *)
let invariant_after_solve () =
  List.iter
    (fun (cname, config) ->
       List.iter
         (fun seed ->
            let f = random_3sat ~seed ~nvars:60 ~ratio:4.26 in
            let s = Sat.Cdcl.create ~config f in
            let ctx = Printf.sprintf "%s/seed%d" cname seed in
            ignore (Sat.Cdcl.solve s);
            check_ok (ctx ^ " post-solve") s;
            Sat.Cdcl.prune_learnts s ~keep:(fun ~lbd ~size:_ ~lits:_ ->
                lbd <= 2);
            check_ok (ctx ^ " post-prune") s;
            ignore (Sat.Cdcl.solve s);
            check_ok (ctx ^ " post-resolve") s)
         [ 1; 7; 13 ])
    configs

(* heavy deletion pressure: repeated solve-under-budget / prune cycles
   must keep the tombstone accounting exact *)
let invariant_under_churn () =
  let f = random_3sat ~seed:42 ~nvars:120 ~ratio:4.26 in
  let s = Sat.Cdcl.create f in
  for round = 1 to 5 do
    ignore (Sat.Cdcl.solve ~max_conflicts:200 s);
    check_ok (Printf.sprintf "churn round %d solve" round) s;
    Sat.Cdcl.prune_learnts s ~keep:(fun ~lbd:_ ~size:_ ~lits:_ ->
        round mod 2 = 0);
    check_ok (Printf.sprintf "churn round %d prune" round) s
  done

(* Answers of the solver before the blocking-literal overhaul on 300
   random instances at the phase transition (nvars=40, ratio=4.26,
   seeds 0..299, default config).  Blocking literals may legally change
   the search path but never an answer; DPLL arbitrates independently. *)
let recorded_answers =
  "SSSSUSSSSUUSUUSSUUSSSSUSSSSUUSSUUSUUSSSSSUUUSSSUSSUSUUSSUSSS\
   UUSSSSUUSSUUSSSSSSUSUSSSSSUUUUSSSSSSUUUSSSSSSUUSSSUUSSSSSSSU\
   SSSUSSUUUSUSSSSSUSSSSSUSSUSSSSSUSSUSSSSSUSSUSSSSSUSUSSSUUUSS\
   SSUSUUSUSSSSSSSUSSUUUSUSSSSSSUUSSSSUUSSUUUSUSSUUUUUSSSSSUSUS\
   SUSUSSUSSSUSUSSUUSSSSSUSUSSUSUUSSUSSSSUSSSSUUSSSSSUUSSSSUUSU"

let property_300 () =
  Alcotest.(check int) "recorded sweep size" 300
    (String.length recorded_answers);
  for seed = 0 to 299 do
    let f = random_3sat ~seed ~nvars:40 ~ratio:4.26 in
    let s = Sat.Cdcl.create f in
    let cdcl = Sat.Cdcl.solve s in
    check_ok (Printf.sprintf "sweep seed %d" seed) s;
    let c = if Th.outcome_sat cdcl then 'S' else 'U' in
    if c <> recorded_answers.[seed] then
      Alcotest.failf "seed %d: answer %c differs from pre-overhaul %c" seed c
        recorded_answers.[seed];
    let dpll, _ = Sat.Dpll.solve f in
    let d = if Th.outcome_sat dpll then 'S' else 'U' in
    if c <> d then Alcotest.failf "seed %d: cdcl %c vs dpll %c" seed c d;
    (* SAT models must actually satisfy the formula *)
    if c = 'S' then
      let m = Th.model_of cdcl in
      Cnf.Formula.iter_clauses f (fun cl ->
          if
            not
              (List.exists
                 (fun l -> m.(Cnf.Lit.var l) = Cnf.Lit.is_pos l)
                 (Cnf.Clause.to_list cl))
          then Alcotest.failf "seed %d: model leaves a clause false" seed)
  done

let suite =
  [
    Th.case "watch invariant across configs" invariant_after_solve;
    Th.case "watch invariant under deletion churn" invariant_under_churn;
    Th.case "300-instance sweep vs pre-overhaul answers + dpll" property_300;
  ]
