(* The SAT service layer: formula chain hashing, the wire protocol,
   the result/session cache, the scheduler, and a live daemon exercised
   end-to-end over a Unix-domain socket. *)

module J = Sat.Json
module T = Sat.Types
module F = Service.Fhash
module P = Service.Protocol

let php = Test_session.php

let clauses_of_formula f =
  let out = ref [] in
  Cnf.Formula.iter_clauses f (fun c ->
      out := List.map Cnf.Lit.to_dimacs (Cnf.Clause.to_list c) :: !out);
  List.rev !out

let php_clauses n m = clauses_of_formula (php n m)

(* --- chain hashing -------------------------------------------------------- *)

let fhash_canonical () =
  (* literal order and duplicates inside a clause do not matter *)
  Alcotest.(check bool) "permuted lits" true
    (F.full [ [ 1; -2; 3 ] ] = F.full [ [ 3; 1; -2 ] ]);
  Alcotest.(check bool) "duplicate lits" true
    (F.full [ [ 1; 1; 2 ] ] = F.full [ [ 1; 2 ] ]);
  (* clause order matters: the chain is a sequence, not a set, so every
     prefix of a growing formula has a stable hash *)
  Alcotest.(check bool) "clause order sensitive" true
    (F.full [ [ 1 ]; [ 2 ] ] <> F.full [ [ 2 ]; [ 1 ] ]);
  Alcotest.(check bool) "distinct formulas distinct" true
    (F.full (php_clauses 5 4) <> F.full (php_clauses 5 5));
  Alcotest.(check bool) "polarity matters" true
    (F.full [ [ 1 ] ] <> F.full [ [ -1 ] ])

let fhash_prefix_chain () =
  let cls = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] in
  let hs = F.prefix_hashes cls in
  Alcotest.(check int) "n+1 hashes" (List.length cls + 1) (Array.length hs);
  Alcotest.(check bool) "starts empty" true (hs.(0) = F.empty);
  Alcotest.(check bool) "ends full" true (hs.(3) = F.full cls);
  (* each prefix hash equals the independent hash of that prefix *)
  Alcotest.(check bool) "prefix 2" true (hs.(2) = F.full [ [ 1; 2 ]; [ -1; 3 ] ]);
  (* extend is the chain step *)
  Alcotest.(check bool) "extend" true (F.extend hs.(2) [ -2; -3 ] = hs.(3));
  Alcotest.(check bool) "hex is 16 chars" true
    (String.length (F.to_hex hs.(3)) = 16)

(* --- protocol ------------------------------------------------------------- *)

let decode json =
  match P.request_of_json json with
  | Ok (id, req) -> (id, req)
  | Error (_, _, msg) -> Alcotest.failf "decode failed: %s" msg

let protocol_solve_roundtrip () =
  let params =
    P.mk_solve ~nvars:5 ~assumptions:[ 1; -3 ] ~max_conflicts:100
      ~timeout_ms:2000 ~tenant:"atpg" ~use_cache:false
      [ [ 1; 2 ]; [ -1; 3 ] ]
  in
  match decode (P.solve_request ~id:"q7" params) with
  | "q7", P.Solve p ->
    Alcotest.(check bool) "clauses" true (p.P.clauses = params.P.clauses);
    Alcotest.(check int) "nvars" 5 p.P.nvars;
    Alcotest.(check bool) "assumptions" true (p.P.assumptions = [ 1; -3 ]);
    Alcotest.(check bool) "conflicts" true (p.P.max_conflicts = Some 100);
    Alcotest.(check bool) "timeout" true (p.P.timeout_ms = Some 2000);
    Alcotest.(check string) "tenant" "atpg" p.P.tenant;
    Alcotest.(check bool) "cache off" false p.P.use_cache
  | _, _ -> Alcotest.fail "wrong request shape"

let protocol_other_verbs () =
  (match decode (P.ping_request ~id:"a") with
   | "a", P.Ping -> ()
   | _ -> Alcotest.fail "ping");
  (match decode (P.stats_request ~id:"b") with
   | "b", P.Stats -> ()
   | _ -> Alcotest.fail "stats");
  (match decode (P.shutdown_request ~id:"c") with
   | "c", P.Shutdown -> ()
   | _ -> Alcotest.fail "shutdown");
  match decode (P.cancel_request ~id:"d" ~target:"q1") with
  | "d", P.Cancel "q1" -> ()
  | _ -> Alcotest.fail "cancel"

let protocol_dimacs_payload () =
  (* a solve request may carry the formula as DIMACS text instead of a
     clause list *)
  let json =
    J.Obj
      [
        ("v", J.Int P.version);
        ("id", J.String "x");
        ("verb", J.String "solve");
        ("dimacs", J.String "p cnf 2 2\n1 2 0\n-1 2 0\n");
      ]
  in
  match decode json with
  | "x", P.Solve p ->
    Alcotest.(check bool) "clauses" true (p.P.clauses = [ [ 1; 2 ]; [ -1; 2 ] ]);
    Alcotest.(check bool) "nvars" true (p.P.nvars >= 2)
  | _ -> Alcotest.fail "dimacs solve"

let protocol_rejects () =
  let refused ?(code = P.Bad_request) json =
    match P.request_of_json json with
    | Ok _ -> Alcotest.fail "should have been refused"
    | Error (_, c, _) ->
      Alcotest.(check string) "code" (P.error_code_string code)
        (P.error_code_string c)
  in
  refused (J.List [ J.Int 1 ]);
  refused (J.Obj [ ("id", J.String "x"); ("verb", J.String "frobnicate") ]);
  (* zero is the DIMACS terminator, never a literal *)
  refused
    (J.Obj
       [
         ("id", J.String "x");
         ("verb", J.String "solve");
         ("clauses", J.List [ J.List [ J.Int 1; J.Int 0 ] ]);
       ]);
  (* protocol version mismatch *)
  refused
    (J.Obj
       [ ("v", J.Int 99); ("id", J.String "x"); ("verb", J.String "ping") ]);
  (* error replies keep the id when it is recoverable *)
  match
    P.request_of_json
      (J.Obj [ ("id", J.String "q9"); ("verb", J.String "nope") ])
  with
  | Error ("q9", _, _) -> ()
  | _ -> Alcotest.fail "id not recovered"

let protocol_reply_roundtrip () =
  let reply json =
    match P.reply_of_json json with
    | Ok r -> r
    | Error e -> Alcotest.failf "reply refused: %s" e
  in
  let res cached outcome =
    {
      P.outcome;
      cached;
      warm = false;
      matched_prefix = 0;
      time_s = 0.25;
      conflicts = 3;
      decisions = 9;
    }
  in
  let sat = reply (P.solve_reply ~id:"s" ~nvars:3 (res true (T.Sat [| true; false; true |]))) in
  Alcotest.(check string) "sat id" "s" sat.P.r_id;
  Alcotest.(check string) "sat status" "sat" sat.P.r_status;
  Alcotest.(check bool) "sat cached" true sat.P.r_cached;
  (match sat.P.r_model with
   | Some m -> Alcotest.(check bool) "model" true (m = [| true; false; true |])
   | None -> Alcotest.fail "sat reply lost its model");
  let unsat = reply (P.solve_reply ~id:"u" ~nvars:2 (res false T.Unsat)) in
  Alcotest.(check string) "unsat status" "unsat" unsat.P.r_status;
  let unk = reply (P.solve_reply ~id:"k" ~nvars:2 (res false (T.Unknown "timeout"))) in
  Alcotest.(check string) "unknown status" "unknown" unk.P.r_status;
  Alcotest.(check bool) "reason" true (unk.P.r_reason = Some "timeout");
  let err = reply (P.error_reply ~id:"e" P.Overloaded "queue is full") in
  Alcotest.(check string) "error status" "error" err.P.r_status;
  (match err.P.r_error with
   | Some (P.Overloaded, _) -> ()
   | _ -> Alcotest.fail "error code lost");
  let ok = reply (P.ok_reply ~id:"o" ~verb:"ping") in
  Alcotest.(check string) "ok status" "ok" ok.P.r_status

(* --- cache ---------------------------------------------------------------- *)

let cache_results () =
  let c = Service.Cache.create ~max_results:2 () in
  let cls = [ [ 1; 2 ]; [ -1 ] ] in
  let h = F.full cls in
  Alcotest.(check bool) "empty miss" true
    (Service.Cache.find_result c ~hash:h ~nclauses:2 ~assumptions:[] = None);
  Service.Cache.store_result c ~hash:h ~nclauses:2 ~assumptions:[]
    (T.Sat [| false; true |]);
  (match Service.Cache.find_result c ~hash:h ~nclauses:2 ~assumptions:[] with
   | Some (T.Sat _) -> ()
   | _ -> Alcotest.fail "stored result lost");
  (* clause-count mismatch = hash collision guard *)
  Alcotest.(check bool) "collision guard" true
    (Service.Cache.find_result c ~hash:h ~nclauses:3 ~assumptions:[] = None);
  (* assumptions key, order-insensitively *)
  Service.Cache.store_result c ~hash:h ~nclauses:2 ~assumptions:[ 2; 1 ] T.Unsat;
  (match Service.Cache.find_result c ~hash:h ~nclauses:2 ~assumptions:[ 1; 2 ] with
   | Some T.Unsat -> ()
   | _ -> Alcotest.fail "assumption key mismatch");
  (* Unknown never stored *)
  Service.Cache.store_result c ~hash:h ~nclauses:2 ~assumptions:[ 7 ]
    (T.Unknown "budget");
  Alcotest.(check bool) "unknown not cached" true
    (Service.Cache.find_result c ~hash:h ~nclauses:2 ~assumptions:[ 7 ] = None);
  (* FIFO eviction at capacity 2 *)
  Service.Cache.store_result c ~hash:(F.full [ [ 9 ] ]) ~nclauses:1
    ~assumptions:[] T.Unsat;
  let s = Service.Cache.stats c in
  Alcotest.(check int) "capacity held" 2 s.Service.Cache.results_stored;
  Alcotest.(check int) "evicted one" 1 s.Service.Cache.results_evicted

let cache_session_pool () =
  let c = Service.Cache.create ~max_sessions:2 () in
  let cls = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] in
  let hs = F.prefix_hashes cls in
  Alcotest.(check bool) "cold" true (Service.Cache.checkout c hs = None);
  (* pool a session holding the 2-clause prefix *)
  let s = Sat.Session.create () in
  Sat.Session.add_clause s [ Cnf.Lit.of_dimacs 1; Cnf.Lit.of_dimacs 2 ];
  Sat.Session.add_clause s [ Cnf.Lit.of_dimacs (-1); Cnf.Lit.of_dimacs 3 ];
  Service.Cache.checkin c ~hash:hs.(2) ~nclauses:2 s;
  (match Service.Cache.checkout c hs with
   | Some (s', n) ->
     Alcotest.(check int) "longest prefix" 2 n;
     Alcotest.(check bool) "same session" true (s' == s)
   | None -> Alcotest.fail "warm prefix not found");
  (* checkout removes: exclusive ownership *)
  Alcotest.(check bool) "removed" true (Service.Cache.checkout c hs = None);
  (* an exact-hash pool entry beats a shorter prefix *)
  let short = Sat.Session.create () in
  Sat.Session.add_clause short [ Cnf.Lit.of_dimacs 1; Cnf.Lit.of_dimacs 2 ];
  Service.Cache.checkin c ~hash:hs.(1) ~nclauses:1 short;
  Service.Cache.checkin c ~hash:hs.(3) ~nclauses:3 s;
  (match Service.Cache.checkout c hs with
   | Some (_, 3) -> ()
   | Some (_, n) -> Alcotest.failf "expected full match, got prefix %d" n
   | None -> Alcotest.fail "pool empty")

(* --- scheduler ------------------------------------------------------------ *)

let sched_solve params =
  let sch = Service.Scheduler.create ~jobs:2 () in
  let r = Service.Scheduler.solve sch params in
  Service.Scheduler.shutdown sch;
  r

let scheduler_solves () =
  (match sched_solve (P.mk_solve (php_clauses 5 5)) with
   | Ok a ->
     (match a.Service.Scheduler.outcome with
      | T.Sat _ -> ()
      | o -> Alcotest.failf "expected sat, got %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused");
  match sched_solve (P.mk_solve (php_clauses 5 4)) with
  | Ok a ->
    (match a.Service.Scheduler.outcome with
     | T.Unsat -> ()
     | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o)
  | Error _ -> Alcotest.fail "refused"

let scheduler_result_cache () =
  let sch = Service.Scheduler.create ~jobs:2 () in
  let params = P.mk_solve (php_clauses 6 5) in
  (match Service.Scheduler.solve sch params with
   | Ok a ->
     Alcotest.(check bool) "first solve not cached" false
       a.Service.Scheduler.cached
   | Error _ -> Alcotest.fail "refused");
  (match Service.Scheduler.solve sch params with
   | Ok a ->
     Alcotest.(check bool) "repeat cached" true a.Service.Scheduler.cached;
     (match a.Service.Scheduler.outcome with
      | T.Unsat -> ()
      | o -> Alcotest.failf "cached verdict wrong: %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused");
  let s = Service.Cache.stats (Service.Scheduler.cache sch) in
  Alcotest.(check int) "one hit" 1 s.Service.Cache.result_hits;
  Service.Scheduler.shutdown sch

let scheduler_warm_sessions () =
  let sch = Service.Scheduler.create ~jobs:1 () in
  let base = php_clauses 6 5 in
  (match Service.Scheduler.solve sch (P.mk_solve base) with
   | Ok a -> Alcotest.(check bool) "cold first" false a.Service.Scheduler.warm
   | Error _ -> Alcotest.fail "refused");
  (* grow the formula: same clause sequence + two fixing units; the
     repeat must resume the pooled session at the full prefix *)
  let grown = base @ [ [ 1 ]; [ -1 ] ] in
  (match Service.Scheduler.solve sch (P.mk_solve grown) with
   | Ok a ->
     Alcotest.(check bool) "warm resume" true a.Service.Scheduler.warm;
     Alcotest.(check int) "matched the whole base" (List.length base)
       a.Service.Scheduler.matched_prefix;
     (match a.Service.Scheduler.outcome with
      | T.Unsat -> ()
      | o -> Alcotest.failf "grown verdict wrong: %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused");
  Service.Scheduler.shutdown sch

let scheduler_cancellation () =
  let sch = Service.Scheduler.create ~jobs:1 () in
  let slow = P.mk_solve ~use_cache:false (php_clauses 10 9) in
  let got = Atomic.make None in
  (match
     Service.Scheduler.submit sch
       ~on_done:(fun a -> Atomic.set got (Some a))
       slow
   with
   | Ok job ->
     (* let the worker pick it up, then cancel mid-search *)
     Unix.sleepf 0.1;
     Service.Scheduler.cancel sch job;
     let rec wait n =
       if n = 0 then Alcotest.fail "cancelled query never answered";
       match Atomic.get got with
       | Some a ->
         (match a.Service.Scheduler.outcome with
          | T.Unknown "cancelled" -> ()
          | o -> Alcotest.failf "expected cancelled, got %a" T.pp_outcome o)
       | None ->
         Unix.sleepf 0.05;
         wait (n - 1)
     in
     wait 200
   | Error _ -> Alcotest.fail "refused");
  (* the worker and its session survive the cancellation *)
  (match Service.Scheduler.solve sch (P.mk_solve (php_clauses 5 5)) with
   | Ok a ->
     (match a.Service.Scheduler.outcome with
      | T.Sat _ -> ()
      | o -> Alcotest.failf "scheduler poisoned: %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused after cancel");
  Service.Scheduler.shutdown sch

let scheduler_deadline () =
  let sch = Service.Scheduler.create ~jobs:1 () in
  let got = Atomic.make None in
  let deadline = Sat.Monotime.now_s () +. 0.1 in
  (match
     Service.Scheduler.submit sch ~deadline
       ~on_done:(fun a -> Atomic.set got (Some a))
       (P.mk_solve ~use_cache:false (php_clauses 10 9))
   with
   | Ok _ ->
     let rec wait n =
       if n = 0 then Alcotest.fail "deadline never enforced";
       Service.Scheduler.tick sch;
       match Atomic.get got with
       | Some a ->
         (match a.Service.Scheduler.outcome with
          | T.Unknown "timeout" -> ()
          | o -> Alcotest.failf "expected timeout, got %a" T.pp_outcome o)
       | None ->
         Unix.sleepf 0.05;
         wait (n - 1)
     in
     wait 200
   | Error _ -> Alcotest.fail "refused");
  Service.Scheduler.shutdown sch

let scheduler_overload_and_drain () =
  (* one worker, queue of one: the third concurrent submission must be
     refused with Overloaded, not queued without bound *)
  let sch = Service.Scheduler.create ~jobs:1 ~max_queue:1 () in
  let slow () = P.mk_solve ~use_cache:false (php_clauses 9 8) in
  let submit () =
    Service.Scheduler.submit sch ~on_done:(fun _ -> ()) (slow ())
  in
  (match submit () with Ok _ -> () | Error _ -> Alcotest.fail "first refused");
  Unix.sleepf 0.1;
  (* worker busy on #1; #2 fills the queue *)
  (match submit () with Ok _ -> () | Error _ -> Alcotest.fail "second refused");
  let rec fill n =
    if n = 0 then Alcotest.fail "overload never signalled"
    else
      match submit () with
      | Error Service.Scheduler.Overloaded -> ()
      | Error Service.Scheduler.Draining -> Alcotest.fail "not draining yet"
      | Ok _ -> fill (n - 1)
  in
  fill 10;
  (* draining refuses immediately and drain completes (workers are
     interrupted by nothing here — the queries run to completion) *)
  Service.Scheduler.set_draining sch;
  (match submit () with
   | Error Service.Scheduler.Draining -> ()
   | _ -> Alcotest.fail "draining not signalled");
  Service.Scheduler.drain sch;
  Alcotest.(check bool) "quiescent" true (Service.Scheduler.quiescent sch);
  Service.Scheduler.shutdown sch

let scheduler_tenant_metrics () =
  let sch = Service.Scheduler.create ~jobs:2 () in
  (match Service.Scheduler.solve sch (P.mk_solve ~tenant:"bmc" (php_clauses 6 5)) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "refused");
  (match Service.Scheduler.solve sch (P.mk_solve ~tenant:"atpg" (php_clauses 5 5)) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "refused");
  (match Service.Scheduler.stats_json sch with
   | J.Obj fields ->
     (match List.assoc_opt "tenants" fields with
      | Some (J.Obj tenants) ->
        Alcotest.(check bool) "bmc tenant" true
          (List.mem_assoc "bmc" tenants);
        Alcotest.(check bool) "atpg tenant" true
          (List.mem_assoc "atpg" tenants);
        (* the rollup carries real solver counters *)
        (match List.assoc "bmc" tenants with
         | J.Obj _ as m ->
           (match J.member "counters" m with
            | Some (J.Obj cs) ->
              (match List.assoc_opt "solver/conflicts" cs with
               | Some (J.Int c) ->
                 Alcotest.(check bool) "conflicts counted" true (c > 0)
               | _ -> Alcotest.fail "no conflicts counter")
            | _ -> Alcotest.fail "no counters")
         | _ -> Alcotest.fail "tenant not an object")
      | _ -> Alcotest.fail "no tenants rollup")
   | _ -> Alcotest.fail "stats not an object");
  Service.Scheduler.shutdown sch

(* --- end-to-end over a Unix socket ---------------------------------------- *)

let with_daemon ?(jobs = 2) ?(max_queue = 64) f =
  let dir = Filename.temp_file "satd_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "satd.sock" in
  let server =
    Service.Server.create
      { Service.Server.default_config with
        Service.Server.unix_path = Some path;
        jobs;
        max_queue }
  in
  let runner = Domain.spawn (fun () -> Service.Server.run server) in
  (* wait for the listener to answer *)
  let rec await n =
    if n = 0 then Alcotest.fail "daemon never came up";
    match Service.Client.connect_unix path with
    | c -> Service.Client.close c
    | exception Unix.Unix_error _ ->
      Unix.sleepf 0.02;
      await (n - 1)
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Domain.join runner;
      (try Sys.remove path with Sys_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () -> f path)

let expect_ok what = function
  | Ok (r : P.reply) when r.P.r_error = None -> r
  | Ok r ->
    (match r.P.r_error with
     | Some (c, m) ->
       Alcotest.failf "%s: error %s (%s)" what (P.error_code_string c) m
     | None -> assert false)
  | Error e -> Alcotest.failf "%s: %s" what e

let daemon_solves_and_caches () =
  with_daemon (fun path ->
      let c = Service.Client.connect_unix path in
      let r = expect_ok "ping" (Service.Client.ping c) in
      Alcotest.(check string) "pong" "ok" r.P.r_status;
      (* SAT and UNSAT through the wire *)
      let sat = expect_ok "sat" (Service.Client.solve c (P.mk_solve (php_clauses 5 5))) in
      Alcotest.(check string) "sat" "sat" sat.P.r_status;
      (match sat.P.r_model with
       | Some m ->
         (* the model really satisfies the formula *)
         Alcotest.(check bool) "model valid" true
           (Cnf.Formula.eval
              (fun v -> v < Array.length m && m.(v))
              (php 5 5))
       | None -> Alcotest.fail "no model");
      let unsat =
        expect_ok "unsat" (Service.Client.solve c (P.mk_solve (php_clauses 5 4)))
      in
      Alcotest.(check string) "unsat" "unsat" unsat.P.r_status;
      Alcotest.(check bool) "first solve searched" false unsat.P.r_cached;
      (* exact repeat answers from the result cache *)
      let again =
        expect_ok "repeat" (Service.Client.solve c (P.mk_solve (php_clauses 5 4)))
      in
      Alcotest.(check string) "repeat verdict" "unsat" again.P.r_status;
      Alcotest.(check bool) "repeat cached" true again.P.r_cached;
      (* stats reflect the hit *)
      let st = expect_ok "stats" (Service.Client.stats c) in
      (match st.P.r_data with
       | Some data ->
         (match J.member "cache" data with
          | Some cache ->
            (match J.member "hits" cache with
             | Some (J.Int h) ->
               Alcotest.(check bool) "cache hits visible" true (h >= 1)
             | _ -> Alcotest.fail "no hits counter")
          | None -> Alcotest.fail "no cache section")
       | None -> Alcotest.fail "stats carried no data");
      Service.Client.close c)

let daemon_survives_malformed_frames () =
  with_daemon (fun path ->
      let c = Service.Client.connect_unix path in
      (* raw garbage: not JSON at all *)
      Service.Client.send_raw c "this is not json\n";
      (match Service.Client.recv c with
       | Ok r ->
         Alcotest.(check string) "error reply" "error" r.P.r_status;
         (match r.P.r_error with
          | Some (P.Parse_error, _) -> ()
          | _ -> Alcotest.fail "expected parse_error")
       | Error e -> Alcotest.failf "recv failed: %s" e);
      (* valid JSON, invalid request *)
      Service.Client.send_raw c "{\"verb\":\"frobnicate\",\"id\":\"z\"}\n";
      (match Service.Client.recv c with
       | Ok r ->
         (match r.P.r_error with
          | Some (P.Bad_request, _) -> ()
          | _ -> Alcotest.fail "expected bad_request")
       | Error e -> Alcotest.failf "recv failed: %s" e);
      (* the same connection still works after both *)
      let r = expect_ok "ping after garbage" (Service.Client.ping c) in
      Alcotest.(check string) "alive" "ok" r.P.r_status;
      let sat =
        expect_ok "solve after garbage"
          (Service.Client.solve c (P.mk_solve [ [ 1 ] ]))
      in
      Alcotest.(check string) "still solving" "sat" sat.P.r_status;
      Service.Client.close c)

let daemon_survives_midquery_disconnect () =
  with_daemon ~jobs:1 (fun path ->
      (* a client fires a slow query and vanishes *)
      let rude = Service.Client.connect_unix path in
      Service.Client.send rude
        (P.solve_request ~id:"doomed"
           (P.mk_solve ~use_cache:false (php_clauses 10 9)));
      Unix.sleepf 0.15;
      (* the query is now running on the single worker *)
      Service.Client.close rude;
      (* the disconnect cancels it, freeing the worker for others *)
      let polite = Service.Client.connect_unix path in
      let t0 = Unix.gettimeofday () in
      let r =
        expect_ok "solve after disconnect"
          (Service.Client.solve polite (P.mk_solve (php_clauses 5 5)))
      in
      Alcotest.(check string) "healthy" "sat" r.P.r_status;
      Alcotest.(check bool) "served promptly (worker was freed)" true
        (Unix.gettimeofday () -. t0 < 30.);
      let st = expect_ok "stats" (Service.Client.stats polite) in
      (match st.P.r_data with
       | Some data ->
         (match J.member "service" data with
          | Some svc ->
            (match J.member "cancelled" svc with
             | Some (J.Int n) ->
               Alcotest.(check bool) "cancellation counted" true (n >= 1)
             | _ -> Alcotest.fail "no cancelled counter")
          | None -> Alcotest.fail "no service section")
       | None -> Alcotest.fail "no stats data");
      Service.Client.close polite)

let daemon_concurrent_clients () =
  with_daemon ~jobs:2 (fun path ->
      (* 8 client domains, mixed SAT/UNSAT, all answered correctly *)
      let clients =
        Array.init 8 (fun i ->
            Domain.spawn (fun () ->
                let c = Service.Client.connect_unix path in
                let expect, params =
                  if i mod 2 = 0 then ("sat", P.mk_solve (php_clauses 5 5))
                  else ("unsat", P.mk_solve (php_clauses 5 4))
                in
                let r = Service.Client.solve c params in
                Service.Client.close c;
                match r with
                | Ok rep -> rep.P.r_status = expect
                | Error _ -> false))
      in
      let oks = Array.map Domain.join clients in
      Alcotest.(check bool) "all 8 answered correctly" true
        (Array.for_all Fun.id oks))

let daemon_graceful_shutdown () =
  with_daemon (fun path ->
      let c = Service.Client.connect_unix path in
      let _ = expect_ok "solve" (Service.Client.solve c (P.mk_solve [ [ 1 ] ])) in
      let r = expect_ok "shutdown" (Service.Client.shutdown c) in
      Alcotest.(check string) "acknowledged" "ok" r.P.r_status;
      Service.Client.close c;
      (* the daemon is gone: new connections are refused *)
      Unix.sleepf 0.2;
      match Service.Client.connect_unix path with
      | c2 ->
        Service.Client.close c2;
        Alcotest.fail "daemon still listening after shutdown"
      | exception Unix.Unix_error _ -> ())

let suite =
  [
    Th.case "chain hash canonicalization" fhash_canonical;
    Th.case "prefix hash chain" fhash_prefix_chain;
    Th.case "protocol solve round trip" protocol_solve_roundtrip;
    Th.case "protocol other verbs" protocol_other_verbs;
    Th.case "protocol dimacs payload" protocol_dimacs_payload;
    Th.case "protocol rejects bad requests" protocol_rejects;
    Th.case "protocol reply round trip" protocol_reply_roundtrip;
    Th.case "result cache" cache_results;
    Th.case "warm session pool" cache_session_pool;
    Th.case "scheduler solves" scheduler_solves;
    Th.case "scheduler result cache" scheduler_result_cache;
    Th.case "scheduler warm sessions" scheduler_warm_sessions;
    Th.case "scheduler cancellation" scheduler_cancellation;
    Th.case "scheduler deadline" scheduler_deadline;
    Th.case "scheduler overload and drain" scheduler_overload_and_drain;
    Th.case "scheduler tenant metrics" scheduler_tenant_metrics;
    Th.case "daemon solves and caches" daemon_solves_and_caches;
    Th.case "daemon survives malformed frames" daemon_survives_malformed_frames;
    Th.case "daemon survives mid-query disconnect"
      daemon_survives_midquery_disconnect;
    Th.case "daemon serves concurrent clients" daemon_concurrent_clients;
    Th.case "daemon graceful shutdown" daemon_graceful_shutdown;
  ]
