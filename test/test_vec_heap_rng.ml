let vec_basics () =
  let v = Sat.Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Sat.Vec.is_empty v);
  for i = 1 to 100 do
    Sat.Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Sat.Vec.size v);
  Alcotest.(check int) "get" 42 (Sat.Vec.get v 41);
  Alcotest.(check int) "last" 100 (Sat.Vec.last v);
  Alcotest.(check int) "pop" 100 (Sat.Vec.pop v);
  Sat.Vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Sat.Vec.get v 0);
  Sat.Vec.shrink v 10;
  Alcotest.(check int) "shrink" 10 (Sat.Vec.size v);
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check bool) "filter" true
    (Sat.Vec.to_list v |> List.for_all (fun x -> x mod 2 = 0));
  Sat.Vec.clear v;
  Alcotest.(check bool) "cleared" true (Sat.Vec.is_empty v)

let vec_errors () =
  let v = Sat.Vec.of_list ~dummy:0 [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Sat.Vec.get v 2));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      let e = Sat.Vec.create ~dummy:0 () in
      ignore (Sat.Vec.pop e))

let vec_sort () =
  let v = Sat.Vec.of_list ~dummy:0 [ 3; 1; 2 ] in
  Sat.Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Sat.Vec.to_list v)

let heap_property () =
  let scores = Array.make 50 0. in
  let h = Sat.Heap.create ~scores 50 in
  let rng = Sat.Rng.create 5 in
  for v = 0 to 49 do
    scores.(v) <- Sat.Rng.float rng;
    Sat.Heap.insert h v
  done;
  let rec drain acc =
    if Sat.Heap.is_empty h then List.rev acc
    else drain (Sat.Heap.pop_max h :: acc)
  in
  let order = drain [] in
  Alcotest.(check int) "all popped" 50 (List.length order);
  let rec descending = function
    | a :: (b :: _ as rest) -> scores.(a) >= scores.(b) && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "max-heap order" true (descending order)

let heap_update () =
  let scores = Array.make 4 0. in
  let h = Sat.Heap.create ~scores 4 in
  List.iter (Sat.Heap.insert h) [ 0; 1; 2; 3 ];
  scores.(2) <- 10.;
  Sat.Heap.update h 2;
  Alcotest.(check int) "bumped wins" 2 (Sat.Heap.pop_max h);
  Alcotest.(check bool) "removed" false (Sat.Heap.mem h 2);
  Sat.Heap.insert h 2;
  Alcotest.(check bool) "reinserted" true (Sat.Heap.mem h 2)

let heap_grow () =
  let scores = Array.make 100 0. in
  let h = Sat.Heap.create ~scores 2 in
  Sat.Heap.insert h 50;
  Alcotest.(check bool) "grown mem" true (Sat.Heap.mem h 50)

let rng_determinism () =
  let a = Sat.Rng.create 42 and b = Sat.Rng.create 42 in
  let xs = List.init 20 (fun _ -> Sat.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sat.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Sat.Rng.create 43 in
  let zs = List.init 20 (fun _ -> Sat.Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let rng_bounds () =
  let rng = Sat.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Sat.Rng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds";
    let f = Sat.Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int") (fun () ->
      ignore (Sat.Rng.int rng 0))

let rng_copy () =
  let a = Sat.Rng.create 9 in
  ignore (Sat.Rng.int a 10);
  let b = Sat.Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Sat.Rng.int a 1000)
    (Sat.Rng.int b 1000)

let suite =
  [
    Th.case "vec basics" vec_basics;
    Th.case "vec errors" vec_errors;
    Th.case "vec sort" vec_sort;
    Th.case "heap property" heap_property;
    Th.case "heap update" heap_update;
    Th.case "heap grow" heap_grow;
    Th.case "rng determinism" rng_determinism;
    Th.case "rng bounds" rng_bounds;
    Th.case "rng copy" rng_copy;
  ]
