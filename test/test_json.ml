(* The hand-rolled JSON printer/parser behind the metrics and trace
   surfaces: print/parse round trips, float fidelity, strictness. *)

module J = Sat.Json

let roundtrip v =
  match J.parse (J.to_string v) with
  | Ok v' -> J.equal v v'
  | Error _ -> false

let basic_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("t", J.Bool true);
        ("f", J.Bool false);
        ("i", J.Int (-42));
        ("x", J.Float 3.25);
        ("s", J.String "a \"quoted\" \\ line\nwith\ttabs");
        ("l", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (roundtrip v);
  Alcotest.(check bool)
    "indented round trip" true
    (match J.parse (J.to_string ~indent:true v) with
     | Ok v' -> J.equal v v'
     | Error _ -> false)

let float_fidelity () =
  List.iter
    (fun f ->
       match J.parse (J.to_string (J.Float f)) with
       | Ok (J.Float f') -> Alcotest.(check (float 0.)) "exact" f f'
       | Ok (J.Int i) -> Alcotest.(check (float 0.)) "as int" f (float_of_int i)
       | _ -> Alcotest.fail "parse failed")
    [ 0.; 1.; -1.5; 0.1; 1e-9; 1.7976931348623157e308; 4.9e-324;
      3.141592653589793; 1e15; 123456.789 ]

let special_floats_are_null () =
  Alcotest.(check string) "nan" "null" (J.to_string (J.Float nan));
  Alcotest.(check string) "inf" "null" (J.to_string (J.Float infinity))

let parse_strictness () =
  let bad s =
    match J.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "trailing comma" true (bad "[1,]");
  Alcotest.(check bool) "bare word" true (bad "truth");
  Alcotest.(check bool) "empty input" true (bad "");
  Alcotest.(check bool) "lone minus" true (bad "-")

let parse_values () =
  let ok s v =
    match J.parse s with
    | Ok v' -> J.equal v v'
    | Error _ -> false
  in
  Alcotest.(check bool) "int" true (ok "17" (J.Int 17));
  Alcotest.(check bool) "neg float" true (ok "-2.5e1" (J.Float (-25.)));
  Alcotest.(check bool) "escape" true (ok {|"A\n"|} (J.String "A\n"));
  Alcotest.(check bool) "ws" true
    (ok " { \"a\" : [ 1 , 2 ] } " (J.Obj [ ("a", J.List [ J.Int 1; J.Int 2 ]) ]))

let accessors () =
  let v = J.Obj [ ("n", J.Int 3); ("x", J.Float 2.5); ("s", J.String "hi") ] in
  let get f k = Option.get (f (Option.get (J.member k v))) in
  Alcotest.(check int) "member int" 3 (get J.to_int "n");
  Alcotest.(check (float 0.)) "int as float" 3.0 (get J.to_float "n");
  Alcotest.(check (float 0.)) "float" 2.5 (get J.to_float "x");
  Alcotest.(check string) "string" "hi" (get J.to_string_opt "s");
  Alcotest.(check bool) "missing member" true (J.member "zz" v = None)

let suite =
  [
    Th.case "print/parse round trip" basic_roundtrip;
    Th.case "float fidelity" float_fidelity;
    Th.case "nan/inf encode as null" special_floats_are_null;
    Th.case "parser strictness" parse_strictness;
    Th.case "parsed values" parse_values;
    Th.case "accessors" accessors;
  ]
