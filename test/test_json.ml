(* The hand-rolled JSON printer/parser behind the metrics and trace
   surfaces: print/parse round trips, float fidelity, strictness. *)

module J = Sat.Json

let roundtrip v =
  match J.parse (J.to_string v) with
  | Ok v' -> J.equal v v'
  | Error _ -> false

let basic_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("t", J.Bool true);
        ("f", J.Bool false);
        ("i", J.Int (-42));
        ("x", J.Float 3.25);
        ("s", J.String "a \"quoted\" \\ line\nwith\ttabs");
        ("l", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (roundtrip v);
  Alcotest.(check bool)
    "indented round trip" true
    (match J.parse (J.to_string ~indent:true v) with
     | Ok v' -> J.equal v v'
     | Error _ -> false)

let float_fidelity () =
  List.iter
    (fun f ->
       match J.parse (J.to_string (J.Float f)) with
       | Ok (J.Float f') -> Alcotest.(check (float 0.)) "exact" f f'
       | Ok (J.Int i) -> Alcotest.(check (float 0.)) "as int" f (float_of_int i)
       | _ -> Alcotest.fail "parse failed")
    [ 0.; 1.; -1.5; 0.1; 1e-9; 1.7976931348623157e308; 4.9e-324;
      3.141592653589793; 1e15; 123456.789 ]

let special_floats_are_null () =
  Alcotest.(check string) "nan" "null" (J.to_string (J.Float nan));
  Alcotest.(check string) "inf" "null" (J.to_string (J.Float infinity))

let parse_strictness () =
  let bad s =
    match J.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "trailing comma" true (bad "[1,]");
  Alcotest.(check bool) "bare word" true (bad "truth");
  Alcotest.(check bool) "empty input" true (bad "");
  Alcotest.(check bool) "lone minus" true (bad "-")

let rfc_strictness () =
  (* the hardened grammar corners: number shapes, raw control
     characters, and the nesting-depth bound *)
  let bad s = match J.parse s with Ok _ -> false | Error _ -> true in
  let ok s = match J.parse s with Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "leading zero" true (bad "01");
  Alcotest.(check bool) "neg leading zero" true (bad "-01");
  Alcotest.(check bool) "bare dot" true (bad "1.");
  Alcotest.(check bool) "dot first" true (bad ".5");
  Alcotest.(check bool) "empty exponent" true (bad "1e");
  Alcotest.(check bool) "plus sign" true (bad "+1");
  Alcotest.(check bool) "zero ok" true (ok "0");
  Alcotest.(check bool) "neg zero ok" true (ok "-0");
  Alcotest.(check bool) "exp forms ok" true
    (ok "1e3" && ok "1E+3" && ok "1.25e-3" && ok "0.5");
  Alcotest.(check bool) "raw newline in string" true (bad "\"a\nb\"");
  Alcotest.(check bool) "raw tab in string" true (bad "\"a\tb\"");
  Alcotest.(check bool) "escaped tab ok" true (ok {|"a\tb"|});
  let nest n = String.make n '[' ^ String.make n ']' in
  Alcotest.(check bool) "depth 100 ok" true (ok (nest 100));
  Alcotest.(check bool) "depth 1000 refused" true (bad (nest 1000));
  Alcotest.(check bool) "mixed deep refused" true
    (bad (String.concat "" (List.init 600 (fun _ -> "{\"a\":["))))

let line_framing () =
  (match J.parse_line "{\"a\":1}" with
   | Ok v -> Alcotest.(check bool) "frame parses" true
               (J.equal v (J.Obj [ ("a", J.Int 1) ]))
   | Error e -> Alcotest.failf "frame refused: %s" e);
  (match J.parse_line "{\"a\":\n1}" with
   | Ok _ -> Alcotest.fail "embedded newline must be refused"
   | Error _ -> ());
  (* read_frame: one JSON value per line, CRLF tolerated, EOF = None *)
  let path = Filename.temp_file "satreda_json" ".jsonl" in
  let oc = open_out_bin path in
  output_string oc "{\"q\":1}\n[1,2]\r\nnot json\n42\n";
  close_out oc;
  let ic = open_in_bin path in
  let frames = ref [] in
  let rec go () =
    match J.read_frame ic with
    | Some r ->
      frames := r :: !frames;
      go ()
    | None -> ()
  in
  go ();
  close_in ic;
  Sys.remove path;
  (match List.rev !frames with
   | [ Ok o; Ok l; Error _; Ok n ] ->
     Alcotest.(check bool) "object" true (J.equal o (J.Obj [ ("q", J.Int 1) ]));
     Alcotest.(check bool) "crlf list" true (J.equal l (J.List [ J.Int 1; J.Int 2 ]));
     Alcotest.(check bool) "number" true (J.equal n (J.Int 42))
   | fs -> Alcotest.failf "expected 4 frames, got %d" (List.length fs))

let parse_values () =
  let ok s v =
    match J.parse s with
    | Ok v' -> J.equal v v'
    | Error _ -> false
  in
  Alcotest.(check bool) "int" true (ok "17" (J.Int 17));
  Alcotest.(check bool) "neg float" true (ok "-2.5e1" (J.Float (-25.)));
  Alcotest.(check bool) "escape" true (ok {|"A\n"|} (J.String "A\n"));
  Alcotest.(check bool) "ws" true
    (ok " { \"a\" : [ 1 , 2 ] } " (J.Obj [ ("a", J.List [ J.Int 1; J.Int 2 ]) ]))

let accessors () =
  let v = J.Obj [ ("n", J.Int 3); ("x", J.Float 2.5); ("s", J.String "hi") ] in
  let get f k = Option.get (f (Option.get (J.member k v))) in
  Alcotest.(check int) "member int" 3 (get J.to_int "n");
  Alcotest.(check (float 0.)) "int as float" 3.0 (get J.to_float "n");
  Alcotest.(check (float 0.)) "float" 2.5 (get J.to_float "x");
  Alcotest.(check string) "string" "hi" (get J.to_string_opt "s");
  Alcotest.(check bool) "missing member" true (J.member "zz" v = None)

let suite =
  [
    Th.case "print/parse round trip" basic_roundtrip;
    Th.case "float fidelity" float_fidelity;
    Th.case "nan/inf encode as null" special_floats_are_null;
    Th.case "parser strictness" parse_strictness;
    Th.case "rfc strictness (numbers, control chars, depth)" rfc_strictness;
    Th.case "line framing (parse_line, read_frame)" line_framing;
    Th.case "parsed values" parse_values;
    Th.case "accessors" accessors;
  ]
