(* Guards for the in-search simplification hook (learnt-clause
   subsumption + vivification at restart boundaries) and for bounded
   variable elimination under incremental growth.

   The answer sweep reuses the corpus recorded in test_watches.ml:
   inprocessing may legally change the search path but never an answer,
   and the watch invariant must survive the detach/re-attach cycle that
   vivification performs on live clauses. *)

(* The corpus instances are small (tens of conflicts), so the default
   Luby-100 schedule would never restart and the hook — which only fires
   at restart boundaries — would sit idle.  A fast Luby-10 schedule with
   a short interval makes it fire hundreds of times across the sweep;
   restart policy never affects answers, so the recorded corpus is still
   the arbiter. *)
let inprocess_config =
  { Sat.Types.default with
    Sat.Types.inprocessing = true;
    inprocess_interval = 20;
    restarts = Sat.Types.Luby 10 }

let corpus_answers_preserved () =
  let total = Sat.Cdcl.{ inp_rounds = 0; inp_subsumed = 0;
                         inp_vivified = 0; inp_vivified_lits = 0 } in
  for seed = 0 to 299 do
    let f = Test_watches.random_3sat ~seed ~nvars:40 ~ratio:4.26 in
    let s = Sat.Cdcl.create ~config:inprocess_config f in
    let o = Sat.Cdcl.solve s in
    (match Sat.Cdcl.check_watches s with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "seed %d: %s" seed msg);
    let i = Sat.Cdcl.inprocess_stats s in
    total.Sat.Cdcl.inp_rounds <- total.Sat.Cdcl.inp_rounds + i.Sat.Cdcl.inp_rounds;
    total.Sat.Cdcl.inp_subsumed <-
      total.Sat.Cdcl.inp_subsumed + i.Sat.Cdcl.inp_subsumed;
    total.Sat.Cdcl.inp_vivified <-
      total.Sat.Cdcl.inp_vivified + i.Sat.Cdcl.inp_vivified;
    let c = if Th.outcome_sat o then 'S' else 'U' in
    if c <> Test_watches.recorded_answers.[seed] then
      Alcotest.failf "seed %d: answer %c differs from recorded %c" seed c
        Test_watches.recorded_answers.[seed];
    if c = 'S' then begin
      let m = Th.model_of o in
      Cnf.Formula.iter_clauses f (fun cl ->
          if
            not
              (List.exists
                 (fun l -> m.(Cnf.Lit.var l) = Cnf.Lit.is_pos l)
                 (Cnf.Clause.to_list cl))
          then Alcotest.failf "seed %d: model leaves a clause false" seed)
    end
  done;
  (* the sweep must actually exercise the hook, not just schedule it *)
  Alcotest.(check bool) "inprocessing ran" true (total.Sat.Cdcl.inp_rounds > 0);
  Alcotest.(check bool) "inprocessing simplified something" true
    (total.Sat.Cdcl.inp_subsumed + total.Sat.Cdcl.inp_vivified > 0)

let proof_checks_with_inprocessing () =
  (* vivification under proof logging appends the shortened clause as a
     RUP step; the refutation must still certify end to end *)
  let php n m =
    let v i j = (i * m) + j + 1 in
    let cls = ref [] in
    for i = 0 to n - 1 do
      cls := List.init m (fun j -> v i j) :: !cls
    done;
    for j = 0 to m - 1 do
      for i1 = 0 to n - 1 do
        for i2 = i1 + 1 to n - 1 do
          cls := [ -(v i1 j); -(v i2 j) ] :: !cls
        done
      done
    done;
    Th.formula_of !cls
  in
  let f = php 7 6 in
  let config =
    { inprocess_config with
      Sat.Types.proof_logging = true;
      inprocess_interval = 50 }
  in
  let s = Sat.Cdcl.create ~config f in
  (match Sat.Cdcl.solve s with
   | Sat.Types.Unsat -> ()
   | _ -> Alcotest.fail "php(7,6) must be UNSAT");
  Alcotest.(check bool) "inprocessing ran on php" true
    ((Sat.Cdcl.inprocess_stats s).Sat.Cdcl.inp_rounds > 0);
  match Sat.Proof.check f (Sat.Cdcl.proof s) with
  | Sat.Proof.Valid_refutation -> ()
  | Sat.Proof.Valid_derivation ->
    Alcotest.fail "proof valid but empty clause missing"
  | Sat.Proof.Invalid_step i -> Alcotest.failf "proof invalid at step %d" i

(* Bounded variable elimination with a frozen set must stay sound when
   the formula later grows with clauses over the frozen variables — the
   Session workflow that Solver.Incremental documents for callers who
   know their growth variables in advance.  Unit/failed-literal fixes
   are re-asserted inside the session, exactly as Incremental does. *)
let frozen_growth_sound () =
  let module P = Sat.Preprocess in
  for seed = 0 to 99 do
    let rng = Sat.Rng.create (seed + 1_000) in
    let nvars = 8 + Sat.Rng.int rng 8 in
    let nfrozen = 2 + Sat.Rng.int rng 4 in
    let frozen = List.init nfrozen (fun v -> v) in
    let f = Th.random_cnf rng nvars (2 * nvars + Sat.Rng.int rng nvars) 4 in
    let growth =
      List.init
        (1 + Sat.Rng.int rng 4)
        (fun _ ->
           List.init
             (1 + Sat.Rng.int rng 2)
             (fun _ ->
                Cnf.Lit.of_var (Sat.Rng.int rng nfrozen) (Sat.Rng.bool rng)))
    in
    let combined = Cnf.Formula.create ~nvars () in
    Cnf.Formula.iter_clauses f (fun c ->
        Cnf.Formula.add_clause_l combined (Cnf.Clause.to_list c));
    List.iter (Cnf.Formula.add_clause_l combined) growth;
    let dpll, _ = Sat.Dpll.solve combined in
    let expected = Th.outcome_sat dpll in
    match P.run ~pures:false ~frozen f with
    | P.Unsat ->
      if expected then Alcotest.failf "seed %d: preprocessing wrongly UNSAT" seed
    | P.Simplified s ->
      let sess = Sat.Session.of_formula s.P.formula in
      List.iter
        (fun (v, b) -> Sat.Session.add_clause sess [ Cnf.Lit.of_var v b ])
        s.P.fix;
      ignore (Sat.Session.solve sess);
      List.iter (Sat.Session.add_clause sess) growth;
      (match Sat.Session.solve sess with
       | Sat.Types.Sat _ ->
         if not expected then
           Alcotest.failf "seed %d: session SAT but combined UNSAT" seed;
         let m =
           match Sat.Session.model sess with
           | Some m -> m
           | None -> Alcotest.failf "seed %d: SAT without a model" seed
         in
         let full = P.complete_model s m in
         if not (Cnf.Formula.eval (fun v -> full.(v)) combined) then
           Alcotest.failf "seed %d: completed model violates combined formula"
             seed
       | Sat.Types.Unsat ->
         if expected then
           Alcotest.failf "seed %d: session UNSAT but combined SAT" seed
       | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
         Alcotest.failf "seed %d: inconclusive session query" seed)
  done

let suite =
  [
    Th.case "inprocessing preserves recorded answers" corpus_answers_preserved;
    Th.case "proof checks with inprocessing" proof_checks_with_inprocessing;
    Th.case "frozen elimination sound under session growth" frozen_growth_sound;
  ]
