module S = Eda.Sweep

let equivalent_pairs_proven () =
  List.iter
    (fun (name, c1, c2) ->
       match (S.check c1 c2).S.verdict with
       | Eda.Equiv.Equivalent -> ()
       | Eda.Equiv.Inequivalent _ -> Alcotest.failf "%s: false negative" name
       | Eda.Equiv.Inconclusive why -> Alcotest.failf "%s: %s" name why)
    [
      ("mult3", Circuit.Generators.multiplier ~bits:3,
       Circuit.Transform.rewrite_xor (Circuit.Generators.multiplier ~bits:3));
      ("adder", Circuit.Generators.ripple_adder ~bits:4,
       Circuit.Transform.demorgan ~seed:2 (Circuit.Generators.ripple_adder ~bits:4));
      ("parity", Circuit.Generators.parity ~bits:6,
       Circuit.Transform.double_invert ~seed:3 (Circuit.Generators.parity ~bits:6));
      ("self", Circuit.Generators.alu ~bits:2,
       Circuit.Netlist.copy (Circuit.Generators.alu ~bits:2));
      ("mult vs wallace", Circuit.Generators.multiplier ~bits:4,
       Circuit.Generators.wallace_multiplier ~bits:4);
      ("ripple vs kogge", Circuit.Generators.ripple_adder ~bits:8,
       Circuit.Generators.kogge_stone_adder ~bits:8);
    ]

let counterexamples_valid () =
  let base = Circuit.Generators.ripple_adder ~bits:3 in
  let found = ref 0 in
  for seed = 1 to 8 do
    let buggy, _ = Circuit.Transform.inject_bug ~seed base in
    match (S.check base buggy).S.verdict with
    | Eda.Equiv.Inequivalent vec ->
      incr found;
      let o1 = Circuit.Simulate.eval_outputs base vec in
      let o2 = Circuit.Simulate.eval_outputs buggy vec in
      Alcotest.(check bool) "cex distinguishes" true (o1 <> o2)
    | Eda.Equiv.Equivalent -> () (* benign mutation *)
    | Eda.Equiv.Inconclusive why -> Alcotest.failf "inconclusive: %s" why
  done;
  Alcotest.(check bool) "bugs found" true (!found > 0)

let agrees_with_miter () =
  let rng = Sat.Rng.create 111 in
  for seed = 1 to 12 do
    let c1 = Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:(seed + 300) in
    let c2 =
      if Sat.Rng.bool rng then Circuit.Transform.demorgan ~seed c1
      else fst (Circuit.Transform.inject_bug ~seed c1)
    in
    let sweep = (S.check c1 c2).S.verdict in
    let miter = (Eda.Equiv.check_sat c1 c2).Eda.Equiv.verdict in
    match sweep, miter with
    | Eda.Equiv.Equivalent, Eda.Equiv.Equivalent -> ()
    | Eda.Equiv.Inequivalent _, Eda.Equiv.Inequivalent _ -> ()
    | _ -> Alcotest.failf "sweep and miter disagree on seed %d" seed
  done

let internal_equivalences_found () =
  let c = Circuit.Generators.multiplier ~bits:3 in
  let c2 = Circuit.Transform.rewrite_xor c in
  let r = S.check c c2 in
  Alcotest.(check bool) "candidates seen" true (r.S.stats.S.candidates > 0);
  Alcotest.(check bool) "pairs merged" true (r.S.stats.S.merges > 0);
  Alcotest.(check bool) "simulation ran" true (r.S.stats.S.simulation_words > 0);
  Alcotest.(check bool) "miter shrank" true
    (r.S.stats.S.fraig_nodes < r.S.stats.S.aig_nodes)

let refinement_on_counterexamples () =
  (* random circuits vs their mutants force refinement *)
  let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:40 ~seed:7 in
  let c2, _ = Circuit.Transform.inject_bug ~seed:5 c in
  let r = S.check ~words:1 c c2 in
  (* with a single seed word, some candidates are spurious and must be
     refuted (statistically certain on 40-gate circuits) *)
  Alcotest.(check bool) "some activity" true
    (r.S.stats.S.merges + r.S.stats.S.refuted > 0);
  Alcotest.(check bool) "refutations resimulate" true
    (r.S.stats.S.refuted = 0
     || r.S.stats.S.refinement_rounds > 0)

let phase_times_cover_total () =
  let c = Circuit.Generators.multiplier ~bits:4 in
  let c2 = Circuit.Transform.rewrite_xor c in
  let r = S.check c c2 in
  let t = r.S.times in
  Alcotest.(check bool) "non-negative" true
    (t.S.simulate_s >= 0. && t.S.refine_s >= 0. && t.S.prove_s >= 0.);
  Alcotest.(check bool) "phases within total" true
    (t.S.simulate_s +. t.S.refine_s +. t.S.prove_s <= t.S.total_s +. 0.05)

let budget_skips_not_fatal () =
  (* a 1-conflict budget per candidate forces skips on a multiplier, but
     the verdict must still be derived (final queries are unbudgeted) *)
  let c = Circuit.Generators.multiplier ~bits:4 in
  let c2 = Circuit.Transform.rewrite_xor c in
  let r = S.check ~candidate_conflicts:1 c c2 in
  match r.S.verdict with
  | Eda.Equiv.Equivalent -> ()
  | Eda.Equiv.Inequivalent _ -> Alcotest.fail "false negative under budget"
  | Eda.Equiv.Inconclusive why -> Alcotest.failf "inconclusive: %s" why

let metrics_populated () =
  let m = Sat.Metrics.create () in
  let c = Circuit.Generators.multiplier ~bits:3 in
  let c2 = Circuit.Transform.rewrite_xor c in
  let r = S.check ~metrics:m c c2 in
  Alcotest.(check int) "sweep/merges counter"
    r.S.stats.S.merges
    (Sat.Metrics.counter_value (Sat.Metrics.counter m "sweep/merges"));
  Alcotest.(check int) "sweep/sat_calls counter"
    r.S.stats.S.sat_calls
    (Sat.Metrics.counter_value (Sat.Metrics.counter m "sweep/sat_calls"))

let interface_mismatch () =
  let a = Circuit.Generators.parity ~bits:3 in
  let b = Circuit.Generators.parity ~bits:4 in
  match (S.check a b).S.verdict with
  | Eda.Equiv.Inequivalent _ -> ()
  | _ -> Alcotest.fail "interface mismatch"

(* the satellite property: fraig vs BDD vs monolithic miter on 300+
   random pairs, equivalent and mutated, with counterexamples validated
   by simulation *)
let engines_agree_on_random_pairs () =
  let rng = Sat.Rng.create 4242 in
  let checked = ref 0 in
  for seed = 1 to 150 do
    let inputs = 4 + Sat.Rng.int rng 4 in
    let gates = 15 + Sat.Rng.int rng 30 in
    let c1 =
      Circuit.Generators.random_circuit ~inputs ~gates ~seed:(seed * 17)
    in
    let variants =
      [
        Circuit.Transform.demorgan ~seed c1;
        (* a mutant; occasionally functionally benign *)
        fst (Circuit.Transform.inject_bug ~seed c1);
      ]
    in
    List.iter
      (fun c2 ->
         incr checked;
         let f = Eda.Equiv.check_fraig ~seed c1 c2 in
         let b = Eda.Equiv.check_bdd c1 c2 in
         let s = Eda.Equiv.check_sat c1 c2 in
         let tag = function
           | Eda.Equiv.Equivalent -> "eq"
           | Eda.Equiv.Inequivalent _ -> "neq"
           | Eda.Equiv.Inconclusive _ -> "?"
         in
         let tf = tag f.Eda.Equiv.verdict
         and tb = tag b.Eda.Equiv.verdict
         and ts = tag s.Eda.Equiv.verdict in
         if tf <> tb || tf <> ts then
           Alcotest.failf
             "seed %d: fraig=%s bdd=%s mono=%s" seed tf tb ts;
         match f.Eda.Equiv.verdict with
         | Eda.Equiv.Inequivalent vec ->
           let o1 = Circuit.Simulate.eval_outputs c1 vec in
           let o2 = Circuit.Simulate.eval_outputs c2 vec in
           if o1 = o2 then
             Alcotest.failf "seed %d: fraig cex does not distinguish" seed
         | _ -> ())
      variants
  done;
  Alcotest.(check bool) "300+ pairs" true (!checked >= 300)

let suite =
  [
    Th.case "equivalent pairs" equivalent_pairs_proven;
    Th.case "counterexamples" counterexamples_valid;
    Th.case "agrees with miter" agrees_with_miter;
    Th.case "internal equivalences" internal_equivalences_found;
    Th.case "refinement" refinement_on_counterexamples;
    Th.case "phase times" phase_times_cover_total;
    Th.case "budget skips" budget_skips_not_fatal;
    Th.case "metrics" metrics_populated;
    Th.case "interface mismatch" interface_mismatch;
    Th.case "engines agree x300" engines_agree_on_random_pairs;
  ]
