(* Cube-and-conquer (Sat.Cube + Sat.Conquer): lookahead cube
   generation, cover soundness, the work-stealing conquer loop, and
   agreement with the certified sequential solver. *)

module T = Sat.Types

let php n m =
  let v i j = (i * m) + j + 1 in
  let cls = ref [] in
  for i = 0 to n - 1 do
    cls := List.init m (fun j -> v i j) :: !cls
  done;
  for j = 0 to m - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  Th.formula_of !cls

let random_3cnf ~seed ~nvars ~ratio =
  let rng = Sat.Rng.create seed in
  let f = Cnf.Formula.create ~nvars () in
  let nclauses = int_of_float (float_of_int nvars *. ratio) in
  for _ = 1 to nclauses do
    let rec distinct acc n =
      if n = 0 then acc
      else
        let v = Sat.Rng.int rng nvars in
        if List.mem v acc then distinct acc n else distinct (v :: acc) (n - 1)
    in
    Cnf.Formula.add_clause_l f
      (List.map
         (fun v -> Cnf.Lit.of_var v (Sat.Rng.bool rng))
         (distinct [] 3))
  done;
  f

let opts ?(jobs = 2) ?(depth = 4) ?(cutoff = 10_000) ?timeout () =
  {
    Sat.Conquer.default_options with
    Sat.Conquer.jobs;
    cube = { Sat.Cube.default_options with Sat.Cube.depth };
    cutoff;
    timeout;
  }

(* --- the lookahead generator ---------------------------------------------- *)

let generator_is_deterministic () =
  let gen () =
    Sat.Cube.generate
      ~options:{ Sat.Cube.default_options with Sat.Cube.depth = 5; seed = 7 }
      (random_3cnf ~seed:3 ~nvars:60 ~ratio:4.0)
  in
  let a = gen () and b = gen () in
  Alcotest.(check bool) "same cubes" true (a.Sat.Cube.cubes = b.Sat.Cube.cubes);
  Alcotest.(check bool) "same units" true (a.Sat.Cube.units = b.Sat.Cube.units);
  Alcotest.(check bool) "same refuted branches" true
    (a.Sat.Cube.refuted = b.Sat.Cube.refuted);
  Alcotest.(check int) "same probe count" a.Sat.Cube.probes b.Sat.Cube.probes

(* soundness of the cover: F is satisfiable iff F extended with some
   cube is.  We check it by brute force on small formulas — every model
   of F must satisfy at least one cube (given the failed-literal units),
   and every refuted branch must be a correct implicate (no model of F
   inside it). *)
let cover_preserves_models () =
  let checked = ref 0 in
  for seed = 1 to 40 do
    let nvars = 8 + (seed mod 5) in
    let f = random_3cnf ~seed ~nvars ~ratio:3.5 in
    let la =
      Sat.Cube.generate
        ~options:{ Sat.Cube.default_options with Sat.Cube.depth = 3; seed }
        f
    in
    match la.Sat.Cube.decided with
    | Some (T.Sat m) ->
      Alcotest.(check bool) "lookahead model satisfies" true
        (Cnf.Formula.eval (fun v -> m.(v)) f)
    | Some T.Unsat ->
      (* brute force confirms there is no model at all *)
      let models = ref 0 in
      for bits = 0 to (1 lsl nvars) - 1 do
        if Cnf.Formula.eval (fun v -> bits land (1 lsl v) <> 0) f then
          incr models
      done;
      Alcotest.(check int) "lookahead UNSAT is real" 0 !models
    | Some _ | None ->
      incr checked;
      let sat_lit value l =
        let v = Cnf.Lit.var l in
        if Cnf.Lit.is_pos l then value v else not (value v)
      in
      for bits = 0 to (1 lsl nvars) - 1 do
        let value v = bits land (1 lsl v) <> 0 in
        if Cnf.Formula.eval value f then begin
          (* units are implied literals: every model satisfies them *)
          List.iter
            (fun l ->
               Alcotest.(check bool) "failed-literal unit holds" true
                 (sat_lit value l))
            la.Sat.Cube.units;
          (* no model lives inside a refuted branch *)
          List.iter
            (fun branch ->
               Alcotest.(check bool) "refuted branch excludes models" false
                 (List.for_all (sat_lit value) branch))
            la.Sat.Cube.refuted;
          (* and some cube covers the model *)
          Alcotest.(check bool) "some cube covers every model" true
            (List.exists (List.for_all (sat_lit value)) la.Sat.Cube.cubes)
        end
      done
  done;
  Alcotest.(check bool) "exercised the cover check" true (!checked > 0)

let generator_refutes_php () =
  let la =
    Sat.Cube.generate
      ~options:{ Sat.Cube.default_options with Sat.Cube.depth = 12 }
      (php 4 3)
  in
  match la.Sat.Cube.decided with
  | Some T.Unsat -> ()
  | Some o -> Alcotest.failf "expected lookahead unsat, got %a" T.pp_outcome o
  | None ->
    (* not refuted outright: the cover must still be nonempty and the
       conquer phase settles it *)
    Alcotest.(check bool) "cubes emitted" true (la.Sat.Cube.cubes <> [])

(* --- the conquer loop ------------------------------------------------------ *)

let conquer_unsat_php () =
  let r = Sat.Conquer.solve ~options:(opts ~jobs:2 ~depth:6 ()) (php 7 6) in
  match r.Sat.Conquer.outcome with
  | T.Unsat -> ()
  | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o

let conquer_sat_model_validated () =
  (* an easily satisfiable formula: the reported model must check out *)
  let f = random_3cnf ~seed:11 ~nvars:50 ~ratio:3.0 in
  let r = Sat.Conquer.solve ~options:(opts ~jobs:2 ~depth:4 ()) f in
  match r.Sat.Conquer.outcome with
  | T.Sat m ->
    Alcotest.(check bool) "model satisfies" true
      (Cnf.Formula.eval (fun v -> m.(v)) f)
  | o -> Alcotest.failf "expected sat, got %a" T.pp_outcome o

let conquer_splits_under_tiny_cutoff () =
  (* a 1-conflict budget forces every nontrivial cube over its cutoff:
     the dynamic splitter must engage and the answer stay exact *)
  let r =
    Sat.Conquer.solve ~options:(opts ~jobs:2 ~depth:2 ~cutoff:1 ()) (php 6 5)
  in
  (match r.Sat.Conquer.outcome with
   | T.Unsat -> ()
   | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o);
  Alcotest.(check bool) "splitter engaged" true (r.Sat.Conquer.splits > 0)

let conquer_timeout_no_deadlock () =
  let t0 = Unix.gettimeofday () in
  let r =
    Sat.Conquer.solve ~options:(opts ~jobs:2 ~timeout:0.1 ()) (php 10 9)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r.Sat.Conquer.outcome with
   | T.Unknown "timeout" -> ()
   | T.Unsat -> () (* fast host: allowed to finish inside the window *)
   | o -> Alcotest.failf "expected timeout or unsat, got %a" T.pp_outcome o);
  Alcotest.(check bool) "returned promptly (no deadlock)" true (elapsed < 10.)

let conquer_stop_flag () =
  let stop = Atomic.make true in
  let r =
    Sat.Conquer.solve
      ~options:{ (opts ~jobs:2 ()) with Sat.Conquer.stop = Some stop }
      (php 9 8)
  in
  match r.Sat.Conquer.outcome with
  | T.Unknown _ -> ()
  | T.Unsat -> () (* refuted during lookahead before the flag is polled *)
  | o -> Alcotest.failf "expected interrupted or unsat, got %a" T.pp_outcome o

(* 300 random 3-CNF instances straddling the phase transition:
   cube-and-conquer (jobs=2, sharing on) agrees with the certified
   sequential solver; every SAT model is evaluated against the formula,
   every UNSAT answer cross-checked by the RUP proof checker. *)
let property_cube_conquer_agrees_with_certified () =
  let disagreements = ref 0 in
  for seed = 1 to 300 do
    let nvars = 20 + (seed mod 11) in
    let ratio = 3.8 +. (0.1 *. float_of_int (seed mod 10)) in
    let f = random_3cnf ~seed ~nvars ~ratio in
    let r = Sat.Conquer.solve ~options:(opts ~jobs:2 ~depth:4 ()) f in
    let certified, verdict = Sat.Proof.solve_certified f in
    (match (r.Sat.Conquer.outcome, certified) with
     | T.Sat m, T.Sat _ ->
       if not (Cnf.Formula.eval (fun v -> v < Array.length m && m.(v)) f)
       then begin
         incr disagreements;
         Printf.printf "seed %d: cube-conquer model does not satisfy\n" seed
       end
     | T.Unsat, T.Unsat ->
       if verdict <> Sat.Proof.Valid_refutation then begin
         incr disagreements;
         Printf.printf "seed %d: refutation not certified\n" seed
       end
     | o, c ->
       incr disagreements;
       Format.printf "seed %d: cube-conquer %a vs certified %a@." seed
         T.pp_outcome o T.pp_outcome c)
  done;
  Alcotest.(check int)
    "cube-conquer agrees with certified solver on 300 instances" 0
    !disagreements

let suite =
  [
    Th.case "generator is deterministic under a fixed seed"
      generator_is_deterministic;
    Th.case "cube cover preserves models (brute force)" cover_preserves_models;
    Th.case "generator refutes php(4,3) by probing alone"
      generator_refutes_php;
    Th.case "conquer refutes php(7,6)" conquer_unsat_php;
    Th.case "conquer SAT model validated" conquer_sat_model_validated;
    Th.case "dynamic splitting under a tiny cutoff stays exact"
      conquer_splits_under_tiny_cutoff;
    Th.case "conquer timeout, no deadlock" conquer_timeout_no_deadlock;
    Th.case "external stop flag honoured" conquer_stop_flag;
    Th.case "cube-conquer vs certified on 300 phase-transition instances"
      property_cube_conquer_agrees_with_certified;
  ]
