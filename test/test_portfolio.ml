(* Parallel portfolio solving (Sat.Portfolio) and the core hooks it is
   built on: cooperative interrupt, the learn hook, level-0 clause
   import, and the jobs=1 sequential-path guarantee. *)

module T = Sat.Types
module P = Sat.Portfolio

let php n m =
  let v i j = (i * m) + j + 1 in
  let cls = ref [] in
  for i = 0 to n - 1 do
    cls := List.init m (fun j -> v i j) :: !cls
  done;
  for j = 0 to m - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  Th.formula_of !cls

(* random 3-CNF straddling the phase transition (clause/var ratio around
   4.26), like the hard-instance families of Sec. 6 *)
let random_3cnf ~seed ~nvars ~ratio =
  let rng = Sat.Rng.create seed in
  let f = Cnf.Formula.create ~nvars () in
  let nclauses = int_of_float (float_of_int nvars *. ratio) in
  for _ = 1 to nclauses do
    let rec distinct acc n =
      if n = 0 then acc
      else
        let v = Sat.Rng.int rng nvars in
        if List.mem v acc then distinct acc n else distinct (v :: acc) (n - 1)
    in
    Cnf.Formula.add_clause_l f
      (List.map
         (fun v -> Cnf.Lit.of_var v (Sat.Rng.bool rng))
         (distinct [] 3))
  done;
  f

let opts ?(jobs = 4) ?(share = true) ?timeout () =
  {
    P.jobs;
    config = T.default;
    sharing = { P.default_sharing with P.share };
    timeout;
    metrics = None;
    trace = None;
  }

(* --- core hooks ----------------------------------------------------------- *)

let interrupt_leaves_solver_reusable () =
  let s = Sat.Cdcl.create (php 7 6) in
  (* interrupt from inside the search, through the learn hook *)
  let learns = ref 0 in
  Sat.Cdcl.set_learn_hook s
    (Some (fun _ _ ->
         incr learns;
         if !learns = 5 then Sat.Cdcl.interrupt s));
  (match Sat.Cdcl.solve s with
   | T.Unknown "interrupted" -> ()
   | o -> Alcotest.failf "expected interrupted, got %a" T.pp_outcome o);
  Alcotest.(check int) "interrupt counted" 1 (Sat.Cdcl.stats s).T.interrupts;
  Alcotest.(check bool) "request consumed" false (Sat.Cdcl.interrupt_requested s);
  (* the request was consumed: the same solver finishes the job *)
  Sat.Cdcl.set_learn_hook s None;
  (match Sat.Cdcl.solve s with
   | T.Unsat -> ()
   | o -> Alcotest.failf "expected unsat after resume, got %a" T.pp_outcome o)

let learn_hook_fires_once_per_clause () =
  let s = Sat.Cdcl.create (php 6 5) in
  let seen = ref [] in
  Sat.Cdcl.set_learn_hook s (Some (fun lits lbd -> seen := (lits, lbd) :: !seen));
  (match Sat.Cdcl.solve s with
   | T.Unsat -> ()
   | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o);
  Alcotest.(check int) "one callback per learned clause"
    (Sat.Cdcl.stats s).T.learned (List.length !seen);
  List.iter
    (fun (lits, lbd) ->
       let len = List.length lits in
       Alcotest.(check bool) "lbd consistent with clause size" true
         (lbd >= 1 && lbd <= max 1 len))
    !seen

let import_respects_level0_and_locking () =
  let f = Cnf.Formula.create ~nvars:2 () in
  let s = Sat.Cdcl.create f in
  (* import x∨y, then the unit ¬y: propagation makes the imported binary
     clause the reason for x, i.e. locked *)
  Sat.Cdcl.import_clause s [ Th.lit 1; Th.lit 2 ];
  Sat.Cdcl.import_clause s [ Th.lit (-2) ];
  Alcotest.(check int) "both imports counted" 2 (Sat.Cdcl.stats s).T.imported;
  Alcotest.(check int) "x forced true" 1 (Sat.Cdcl.value_var s 0);
  (* a keep-nothing retention pass must not delete the locked reason *)
  Sat.Cdcl.prune_learnts s ~keep:(fun ~lbd:_ ~size:_ ~lits:_ -> false);
  Alcotest.(check int) "locked import survives" 1
    (List.length (Sat.Cdcl.learned_clauses s));
  match Sat.Cdcl.solve s with
  | T.Sat m ->
    Alcotest.(check bool) "model has x" true m.(0);
    Alcotest.(check bool) "model has ¬y" false m.(1)
  | o -> Alcotest.failf "expected sat, got %a" T.pp_outcome o

let import_implicates_keep_outcomes () =
  (* clauses learned by one solver are sound imports for another solver
     of the same formula *)
  let f = php 6 5 in
  let teacher = Sat.Cdcl.create f in
  let exported = ref [] in
  Sat.Cdcl.set_learn_hook teacher
    (Some (fun lits lbd -> if lbd <= 6 then exported := (lits, lbd) :: !exported));
  (match Sat.Cdcl.solve teacher with
   | T.Unsat -> ()
   | o -> Alcotest.failf "teacher: expected unsat, got %a" T.pp_outcome o);
  Alcotest.(check bool) "teacher exported something" true (!exported <> []);
  let student = Sat.Cdcl.create f in
  List.iter (fun (lits, lbd) -> Sat.Cdcl.import_clause ~lbd student lits)
    !exported;
  match Sat.Cdcl.solve student with
  | T.Unsat -> ()
  | o -> Alcotest.failf "student: expected unsat, got %a" T.pp_outcome o

(* --- the portfolio --------------------------------------------------------- *)

let jobs1_is_the_sequential_solver () =
  let mk () = random_3cnf ~seed:42 ~nvars:40 ~ratio:4.2 in
  let s = Sat.Cdcl.create ~config:T.default (mk ()) in
  let seq_outcome = Sat.Cdcl.solve s in
  let r = P.solve ~options:(opts ~jobs:1 ()) (mk ()) in
  (match (seq_outcome, r.P.outcome) with
   | T.Sat a, T.Sat b ->
     Alcotest.(check bool) "same model" true (a = b)
   | T.Unsat, T.Unsat -> ()
   | _ -> Alcotest.fail "jobs=1 diverged from the sequential solver");
  Alcotest.(check bool) "same stats, field for field" true
    (Sat.Cdcl.stats s = r.P.per_worker.(0).P.worker_stats)

let portfolio_unsat_with_sharing () =
  let r = P.solve ~options:(opts ~jobs:4 ()) (php 7 6) in
  (match r.P.outcome with
   | T.Unsat -> ()
   | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o);
  Alcotest.(check bool) "has a winner" true (r.P.winner <> None);
  Alcotest.(check int) "all workers reported" 4 (Array.length r.P.per_worker)

let portfolio_timeout_no_deadlock () =
  let t0 = Unix.gettimeofday () in
  let r = P.solve ~options:(opts ~jobs:2 ~timeout:0.1 ()) (php 10 9) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r.P.outcome with
   | T.Unknown "timeout" -> ()
   | o -> Alcotest.failf "expected timeout, got %a" T.pp_outcome o);
  Alcotest.(check bool) "returned promptly (no deadlock)" true (elapsed < 10.);
  Alcotest.(check bool) "workers interrupted" true (r.P.stats.T.interrupts >= 1)

(* ≥200 random 3-CNF instances straddling the phase transition:
   portfolio (jobs=4, sharing on) agrees with the certified sequential
   solver; every SAT model is evaluated against the formula, every
   UNSAT answer is cross-checked by the RUP proof checker. *)
let property_portfolio_agrees_with_certified () =
  let disagreements = ref 0 in
  for seed = 1 to 200 do
    let nvars = 20 + (seed mod 11) in
    let ratio = 3.8 +. (0.1 *. float_of_int (seed mod 10)) in
    let f = random_3cnf ~seed ~nvars ~ratio in
    let r = P.solve ~options:(opts ~jobs:4 ()) f in
    let certified, verdict = Sat.Proof.solve_certified f in
    (match (r.P.outcome, certified) with
     | T.Sat m, T.Sat _ ->
       if not (Cnf.Formula.eval (fun v -> v < Array.length m && m.(v)) f) then begin
         incr disagreements;
         Printf.printf "seed %d: portfolio model does not satisfy\n" seed
       end
     | T.Unsat, T.Unsat ->
       if verdict <> Sat.Proof.Valid_refutation then begin
         incr disagreements;
         Printf.printf "seed %d: refutation not certified\n" seed
       end
     | o, c ->
       incr disagreements;
       Format.printf "seed %d: portfolio %a vs certified %a@." seed
         T.pp_outcome o T.pp_outcome c)
  done;
  Alcotest.(check int) "portfolio agrees with certified solver on 200 instances"
    0 !disagreements

let repeated_timeouts_under_concurrent_cancellation () =
  (* a service under cancellation pressure runs many portfolios back to
     back, each cut short; none may deadlock, leak a domain, or poison
     the next round — and a final unbudgeted solve must still be exact *)
  for round = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let r = P.solve ~options:(opts ~jobs:3 ~timeout:0.05 ()) (php 10 9) in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match r.P.outcome with
     | T.Unknown "timeout" -> ()
     | o -> Alcotest.failf "round %d: expected timeout, got %a" round
              T.pp_outcome o);
    Alcotest.(check bool) "prompt return" true (elapsed < 10.)
  done;
  match (P.solve ~options:(opts ~jobs:3 ()) (php 5 4)).P.outcome with
  | T.Unsat -> ()
  | o -> Alcotest.failf "portfolio poisoned by timeouts: %a" T.pp_outcome o

let sessions_cancelled_in_parallel () =
  (* N sessions each solving in its own domain, one canceller sweeping
     across all of them — the concurrent-cancellation shape of a daemon
     dropping a client with many in-flight queries *)
  let n = 4 in
  let sessions = Array.init n (fun _ -> Sat.Session.of_formula (php 10 9)) in
  let workers =
    Array.map (fun s -> Domain.spawn (fun () -> Sat.Session.solve s)) sessions
  in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Array.iter Sat.Session.interrupt sessions)
  in
  let outcomes = Array.map Domain.join workers in
  Domain.join canceller;
  Array.iteri
    (fun i o ->
       match o with
       | T.Unknown "interrupted" -> ()
       | o -> Alcotest.failf "session %d: expected interrupted, got %a" i
                T.pp_outcome o)
    outcomes;
  (* every session returns to the pool reusable *)
  Array.iter
    (fun s ->
       Sat.Session.clear_interrupt s;
       Sat.Session.add_clause s [ Th.lit 1 ];
       Sat.Session.add_clause s [ Th.lit (-1) ];
       match Sat.Session.solve s with
       | T.Unsat -> ()
       | o -> Alcotest.failf "cancelled session unusable: %a" T.pp_outcome o)
    sessions

let suite =
  [
    Th.case "interrupt leaves solver reusable" interrupt_leaves_solver_reusable;
    Th.case "learn hook fires once per clause" learn_hook_fires_once_per_clause;
    Th.case "import at level 0, locked survives prune"
      import_respects_level0_and_locking;
    Th.case "imported implicates preserve outcomes"
      import_implicates_keep_outcomes;
    Th.case "jobs=1 is the sequential solver" jobs1_is_the_sequential_solver;
    Th.case "portfolio unsat with sharing" portfolio_unsat_with_sharing;
    Th.case "portfolio timeout, no deadlock" portfolio_timeout_no_deadlock;
    Th.case "portfolio vs certified on 200 phase-transition instances"
      property_portfolio_agrees_with_certified;
    Th.case "repeated timeouts under concurrent cancellation"
      repeated_timeouts_under_concurrent_cancellation;
    Th.case "sessions cancelled in parallel" sessions_cancelled_in_parallel;
  ]
