(* Metrics registry: bucket-boundary convention, merge semantics, and
   the schema-stable JSON snapshot (round trip + byte determinism). *)

module M = Sat.Metrics
module J = Sat.Json

let bucket_boundaries () =
  let bounds = [| 1.; 2.; 4. |] in
  (* inclusive upper bound: v == bound lands IN that bucket *)
  Alcotest.(check int) "below first" 0 (M.bucket_index bounds 0.5);
  Alcotest.(check int) "exactly first" 0 (M.bucket_index bounds 1.0);
  Alcotest.(check int) "just above first" 1 (M.bucket_index bounds 1.0000001);
  Alcotest.(check int) "exactly second" 1 (M.bucket_index bounds 2.0);
  Alcotest.(check int) "exactly last" 2 (M.bucket_index bounds 4.0);
  Alcotest.(check int) "overflow" 3 (M.bucket_index bounds 4.5);
  Alcotest.(check int) "far overflow" 3 (M.bucket_index bounds 1e9)

let histogram_counts () =
  let m = M.create () in
  let h = M.histogram m "h" ~bounds:[| 1.; 2.; 4. |] in
  List.iter (M.observe h) [ 0.5; 1.0; 2.0; 3.0; 4.0; 100.0 ];
  Alcotest.(check (array int)) "counts" [| 2; 1; 2; 1 |] (M.histogram_counts h);
  Alcotest.(check int) "total" 6 (M.histogram_total h);
  Alcotest.(check (float 1e-9)) "sum" 110.5 (M.histogram_sum h)

let kind_and_bounds_clashes () =
  let m = M.create () in
  let _ = M.counter m "x" in
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"x\" is a counter, not a gauge")
    (fun () -> ignore (M.gauge m "x"));
  let _ = M.histogram m "h" ~bounds:[| 1.; 2. |] in
  (* same bounds: same histogram; different bounds: refused *)
  let h2 = M.histogram m "h" ~bounds:[| 1.; 2. |] in
  M.observe h2 1.5;
  Alcotest.(check int) "shared" 1 (M.histogram_total h2);
  Alcotest.check_raises "bounds clash"
    (Invalid_argument "Metrics: \"h\" re-registered with different bounds")
    (fun () -> ignore (M.histogram m "h" ~bounds:[| 1.; 3. |]))

let merge_semantics () =
  let a = M.create () and b = M.create () in
  M.incr ~by:3 (M.counter a "c");
  M.incr ~by:4 (M.counter b "c");
  M.set_gauge (M.gauge a "g") 2.;
  M.set_gauge (M.gauge b "g") 5.;
  M.observe (M.histogram a "h" ~bounds:[| 1.; 2. |]) 0.5;
  M.observe (M.histogram b "h" ~bounds:[| 1.; 2. |]) 1.5;
  M.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 7 (M.counter_value (M.counter a "c"));
  Alcotest.(check (float 0.)) "gauges max" 5. (M.gauge_value (M.gauge a "g"));
  Alcotest.(check (array int)) "histograms add" [| 1; 1; 0 |]
    (M.histogram_counts (M.histogram a "h" ~bounds:[| 1.; 2. |]))

let populate m =
  M.incr ~by:9 (M.counter m "solver/decisions");
  M.set_gauge (M.gauge m "solver/max_level") 12.;
  let h = M.histogram m "solver/lbd" ~bounds:M.lbd_bounds in
  List.iter (M.observe_int h) [ 1; 2; 2; 5; 40 ];
  M.time m "phase/x" (fun () -> ())

let json_roundtrip () =
  let m = M.create () in
  populate m;
  let j = M.to_json ~tool:"test" m in
  (match M.of_json j with
   | Error e -> Alcotest.fail e
   | Ok m' ->
     (* a second snapshot of the restored registry is byte-identical,
        modulo the timer's wall-time payload we can't control; compare
        the full documents *)
     Alcotest.(check string) "round trip"
       (J.to_string j)
       (J.to_string (M.to_json ~tool:"test" m')));
  (* version mismatch is refused *)
  let bumped =
    match j with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function "version", _ -> ("version", J.Int 999) | kv -> kv)
           fields)
    | _ -> Alcotest.fail "snapshot not an object"
  in
  match M.of_json bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_json must refuse a foreign schema version"

let json_determinism () =
  (* same values registered in different orders produce identical bytes *)
  let a = M.create () and b = M.create () in
  M.incr ~by:1 (M.counter a "z");
  M.incr ~by:2 (M.counter a "a");
  M.incr ~by:2 (M.counter b "a");
  M.incr ~by:1 (M.counter b "z");
  Alcotest.(check string) "sorted keys"
    (J.to_string (M.to_json a))
    (J.to_string (M.to_json b))

let stats_bridge () =
  let st = Sat.Types.mk_stats () in
  st.Sat.Types.decisions <- 5;
  st.Sat.Types.conflicts <- 2;
  st.Sat.Types.max_level <- 7;
  let m = M.create () in
  M.add_stats m st;
  M.add_stats m st;
  Alcotest.(check int) "adds accumulate" 10
    (M.counter_value (M.counter m "solver/decisions"));
  let m2 = M.create () in
  M.record_stats m2 st;
  M.record_stats m2 st;
  Alcotest.(check int) "record sets" 5
    (M.counter_value (M.counter m2 "solver/decisions"));
  Alcotest.(check (float 0.)) "max level gauge" 7.
    (M.gauge_value (M.gauge m2 "solver/max_level"))

let timers () =
  let m = M.create () in
  M.phase_begin m "p";
  M.phase_end m "p";
  M.phase_end m "p" (* unmatched end: no-op *);
  let t = M.timer m "p" in
  Alcotest.(check bool) "non-negative" true (M.timer_seconds t >= 0.);
  let x = M.time m "q" (fun () -> 41 + 1) in
  Alcotest.(check int) "value through" 42 x

let suite =
  [
    Th.case "bucket boundary convention" bucket_boundaries;
    Th.case "histogram counts" histogram_counts;
    Th.case "registration clashes" kind_and_bounds_clashes;
    Th.case "merge semantics" merge_semantics;
    Th.case "JSON round trip + version pin" json_roundtrip;
    Th.case "JSON byte determinism" json_determinism;
    Th.case "stats bridge add vs record" stats_bridge;
    Th.case "phase timers" timers;
  ]
