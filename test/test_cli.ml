(* End-to-end CLI contract: SAT-competition exit codes and the
   --metrics JSON surface, exercised through the real satsolve binary.
   The binary and the example files are dune deps of the test runner. *)

let satsolve = Filename.concat (Filename.concat ".." "bin") "satsolve.exe"
let dratcheck = Filename.concat (Filename.concat ".." "bin") "dratcheck.exe"
let bench_gen = Filename.concat (Filename.concat ".." "bin") "bench_gen.exe"
let example f = Filename.concat (Filename.concat ".." "examples") f

let run_exe exe args =
  Sys.command (Filename.quote_command exe args ~stdout:Filename.null)

let run args = run_exe satsolve args

let exit_codes () =
  Alcotest.(check int) "UNSAT exits 20" 20 (run [ example "php43.cnf" ]);
  Alcotest.(check int) "SAT exits 10" 10 (run [ example "color5.cnf" ]);
  (* local search cannot refute: UNKNOWN exits 0 *)
  Alcotest.(check int) "UNKNOWN exits 0" 0
    (run [ example "php43.cnf"; "--engine"; "walksat" ]);
  Alcotest.(check int) "bad flag exits like cmdliner" 124
    (run [ example "php43.cnf"; "--no-such-flag" ])

let certify_exit_codes () =
  Alcotest.(check int) "certified UNSAT exits 20" 20
    (run [ example "php43.cnf"; "--certify" ]);
  Alcotest.(check int) "certified SAT exits 10" 10
    (run [ example "color5.cnf"; "--certify" ])

let metrics_schema () =
  let path = Filename.temp_file "satsolve_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Alcotest.(check int) "solve exits 20" 20
         (run [ example "php43.cnf"; "--metrics"; path ]);
       let ic = open_in_bin path in
       let text = really_input_string ic (in_channel_length ic) in
       close_in ic;
       let j =
         match Sat.Json.parse text with
         | Ok j -> j
         | Error e -> Alcotest.fail ("metrics file is not valid JSON: " ^ e)
       in
       let member k =
         match Sat.Json.member k j with
         | Some v -> v
         | None -> Alcotest.fail ("missing field " ^ k)
       in
       Alcotest.(check string) "schema" Sat.Metrics.schema_name
         (Option.get (Sat.Json.to_string_opt (member "schema")));
       Alcotest.(check int) "version" Sat.Metrics.schema_version
         (Option.get (Sat.Json.to_int (member "version")));
       Alcotest.(check string) "tool" "satsolve"
         (Option.get (Sat.Json.to_string_opt (member "tool")));
       (* restoring through of_json proves the snapshot is schema-complete *)
       (match Sat.Metrics.of_json j with
        | Ok m ->
          let d =
            Sat.Metrics.counter_value (Sat.Metrics.counter m "solver/decisions")
          in
          Alcotest.(check bool) "decisions recorded" true (d > 0)
        | Error e -> Alcotest.fail ("of_json refused the snapshot: " ^ e)))

let trace_schema () =
  let path = Filename.temp_file "satsolve_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Alcotest.(check int) "solve exits 20" 20
         (run [ example "php43.cnf"; "--trace"; path ]);
       let ic = open_in path in
       let lines = ref [] in
       (try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> close_in ic);
       let lines = List.rev !lines in
       Alcotest.(check bool) "has header + events" true (List.length lines > 1);
       List.iteri
         (fun i line ->
            match Sat.Json.parse line with
            | Error e ->
              Alcotest.fail (Printf.sprintf "line %d invalid: %s" i e)
            | Ok j ->
              if i = 0 then
                Alcotest.(check string) "header schema" Sat.Trace.schema_name
                  (Option.get
                     (Sat.Json.to_string_opt
                        (Option.get (Sat.Json.member "schema" j))))
              else (
                ignore (Option.get (Sat.Json.member "t" j));
                ignore (Option.get (Sat.Json.member "ev" j))))
         lines)

let in_tmp name f =
  let path = Filename.temp_file "satreda_cli" name in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let proof_check_core_flow () =
  (* solve → DRAT → trim/check → LRAT + core, all through the binaries *)
  in_tmp ".drat" (fun proof ->
      in_tmp ".lrat" (fun lrat ->
          in_tmp ".core" (fun core ->
              Alcotest.(check int) "--proof --check certifies UNSAT" 20
                (run
                   [ example "php43.cnf"; "--preprocess"; "--inprocess";
                     "--proof"; proof; "--check" ]);
              Alcotest.(check int) "dratcheck verifies and exports" 0
                (run_exe dratcheck
                   [ example "php43.cnf"; proof; "--lrat"; lrat; "--core";
                     core; "--stats" ]);
              Alcotest.(check int) "forward mode agrees" 0
                (run_exe dratcheck [ example "php43.cnf"; proof; "--forward" ]);
              Alcotest.(check int) "exported LRAT re-validates" 0
                (run_exe dratcheck
                   [ example "php43.cnf"; "--check-lrat"; lrat ]);
              (* the exported core is a DIMACS formula and still UNSAT *)
              Alcotest.(check int) "core is UNSAT" 20 (run [ core ]))))

let proof_of_sat_is_derivation () =
  in_tmp ".drat" (fun proof ->
      Alcotest.(check int) "SAT still exits 10" 10
        (run [ example "color5.cnf"; "--preprocess"; "--proof"; proof ]);
      Alcotest.(check int) "no refutation to trim" 1
        (run_exe dratcheck [ example "color5.cnf"; proof ]))

let dratcheck_rejects_garbage () =
  in_tmp ".cnf" (fun cnf ->
      in_tmp ".drat" (fun proof ->
          let write path text =
            let oc = open_out path in
            output_string oc text;
            close_out oc
          in
          write cnf "p cnf 2 2\n1 2 0\n-1 2 0\n";
          (* [1] is not an implicate: forward checking must reject it *)
          write proof "1 0\n0\n";
          Alcotest.(check int) "bogus step rejected" 2
            (run_exe dratcheck [ cnf; proof; "--forward" ]);
          Alcotest.(check int) "missing file is an I/O error" 3
            (run_exe dratcheck [ cnf; proof ^ ".nope" ])))

let miter_corpus_flow () =
  (* the CI certification loop in miniature: generate an equivalence
     miter, solve with the full pipeline, proof-check the verdict *)
  in_tmp ".cnf" (fun cnf ->
      in_tmp ".drat" (fun proof ->
          Alcotest.(check int) "miter CNF generated" 0
            (run_exe bench_gen
               [ "ripple"; "--bits"; "3"; "--miter-with"; "kogge"; "--cnf";
                 "-o"; cnf ]);
          Alcotest.(check int) "equivalence certified" 20
            (run
               [ cnf; "--preprocess"; "--inprocess"; "--proof"; proof;
                 "--check" ]);
          Alcotest.(check int) "dratcheck agrees" 0
            (run_exe dratcheck [ cnf; proof ])))

let suite =
  [
    Th.case "exit codes" exit_codes;
    Th.case "certify exit codes" certify_exit_codes;
    Th.case "proof/check/core flow" proof_check_core_flow;
    Th.case "SAT proofs are derivations" proof_of_sat_is_derivation;
    Th.case "dratcheck rejects garbage" dratcheck_rejects_garbage;
    Th.case "miter corpus flow" miter_corpus_flow;
    Th.case "--metrics schema" metrics_schema;
    Th.case "--trace schema" trace_schema;
  ]
