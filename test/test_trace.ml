(* Structured event tracing: sink mechanics, solver event streams, and
   the merged multi-worker ordering guarantee. *)

module Tr = Sat.Trace
module T = Sat.Types

let php = Test_session.php

let sink_mechanics () =
  let s = Tr.make_sink ~worker:3 ~capacity:4 () in
  for i = 0 to 5 do
    Tr.emit s (Tr.Restart { number = i })
  done;
  Alcotest.(check int) "capacity bounds storage" 4 (Tr.length s);
  Alcotest.(check int) "overflow counted" 2 (Tr.dropped s);
  Alcotest.(check int) "worker tag" 3 (Tr.worker s);
  let rs = Tr.records s in
  Array.iteri
    (fun i (r : Tr.record) ->
       Alcotest.(check int) "seq dense" i r.Tr.seq;
       Alcotest.(check int) "worker stamped" 3 r.Tr.worker)
    rs;
  (* timestamps never go backwards within a sink *)
  for i = 1 to Array.length rs - 1 do
    Alcotest.(check bool) "time monotone" true
      (rs.(i).Tr.time_s >= rs.(i - 1).Tr.time_s)
  done

let cdcl_event_stream () =
  let s = Sat.Cdcl.create (php 4 3) in
  let sink = Tr.make_sink () in
  Sat.Cdcl.set_tracer s (Some sink);
  (match Sat.Cdcl.solve s with
   | T.Unsat -> ()
   | _ -> Alcotest.fail "php 4/3 must be UNSAT");
  let count p = Array.fold_left (fun n r -> if p r.Tr.event then n + 1 else n) 0 (Tr.records sink) in
  Alcotest.(check int) "one solve-begin" 1
    (count (function Tr.Solve_begin _ -> true | _ -> false));
  (match
     Array.find_opt
       (fun r -> match r.Tr.event with Tr.Solve_end _ -> true | _ -> false)
       (Tr.records sink)
   with
   | Some { Tr.event = Tr.Solve_end { outcome; _ }; _ } ->
     Alcotest.(check string) "outcome label" "unsat" outcome
   | _ -> Alcotest.fail "missing solve-end");
  Alcotest.(check bool) "saw decisions" true
    (count (function Tr.Decision _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "saw conflicts" true
    (count (function Tr.Conflict _ -> true | _ -> false) > 0);
  (* every conflict below the last learns a clause; learn events carry
     positive sizes and LBDs *)
  Array.iter
    (fun r ->
       match r.Tr.event with
       | Tr.Learn { lbd; size } ->
         Alcotest.(check bool) "lbd positive" true (lbd >= 1);
         Alcotest.(check bool) "size positive" true (size >= 1)
       | _ -> ())
    (Tr.records sink)

let session_spans () =
  let sess = Sat.Session.of_formula (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ]) in
  let sink = Tr.make_sink () in
  Sat.Session.set_tracer sess (Some sink);
  ignore (Sat.Session.solve sess);
  ignore (Sat.Session.solve sess);
  let queries =
    Array.to_list (Tr.records sink)
    |> List.filter_map (fun r ->
        match r.Tr.event with Tr.Solve_begin { query } -> Some query | _ -> None)
  in
  Alcotest.(check (list int)) "query numbering" [ 1; 2 ] queries

let merged_ordering () =
  (* interleave two sinks by hand; merged must be time-sorted and keep
     each worker's emission order *)
  let a = Tr.make_sink ~worker:0 () and b = Tr.make_sink ~worker:1 () in
  Tr.emit a (Tr.Restart { number = 0 });
  Tr.emit b (Tr.Restart { number = 100 });
  Tr.emit a (Tr.Restart { number = 1 });
  Tr.emit b (Tr.Restart { number = 101 });
  let merged = Tr.merged [ a; b ] in
  Alcotest.(check int) "all records" 4 (Array.length merged);
  let check_worker w expect =
    let seen =
      Array.to_list merged
      |> List.filter (fun r -> r.Tr.worker = w)
      |> List.map (fun r ->
          match r.Tr.event with Tr.Restart { number } -> number | _ -> -1)
    in
    Alcotest.(check (list int)) "per-worker order" expect seen
  in
  check_worker 0 [ 0; 1 ];
  check_worker 1 [ 100; 101 ];
  for i = 1 to Array.length merged - 1 do
    Alcotest.(check bool) "globally time-sorted" true
      (merged.(i).Tr.time_s >= merged.(i - 1).Tr.time_s)
  done

let portfolio_interleaving () =
  (* a real multi-worker run: each worker's subsequence of the absorbed
     stream must keep dense, increasing seq numbers *)
  let sink = Tr.make_sink () in
  let options =
    { Sat.Portfolio.default_options with
      Sat.Portfolio.jobs = 3;
      trace = Some sink }
  in
  let r = Sat.Portfolio.solve ~options (php 5 4) in
  (match r.Sat.Portfolio.outcome with
   | T.Unsat -> ()
   | _ -> Alcotest.fail "php 5/4 must be UNSAT");
  let per_worker = Hashtbl.create 8 in
  Array.iter
    (fun (rec_ : Tr.record) ->
       let w = rec_.Tr.worker in
       let prev = Option.value ~default:(-1) (Hashtbl.find_opt per_worker w) in
       Alcotest.(check bool) "seq increases within worker" true
         (rec_.Tr.seq > prev);
       Hashtbl.replace per_worker w rec_.Tr.seq)
    (Tr.merged [ sink ]);
  Alcotest.(check bool) "several workers traced" true
    (Hashtbl.length per_worker >= 2);
  (* merged view of the absorbed sink is globally time-sorted *)
  let m = Tr.merged [ sink ] in
  for i = 1 to Array.length m - 1 do
    Alcotest.(check bool) "merged time-sorted" true
      (m.(i).Tr.time_s >= m.(i - 1).Tr.time_s)
  done

let jsonl_encoding () =
  let s = Tr.make_sink () in
  Tr.emit s (Tr.Learn { lbd = 2; size = 5 });
  let j = Tr.record_to_json (Tr.records s).(0) in
  let get k = Option.get (Sat.Json.member k j) in
  Alcotest.(check string) "ev" "learn"
    (Option.get (Sat.Json.to_string_opt (get "ev")));
  Alcotest.(check int) "lbd" 2 (Option.get (Sat.Json.to_int (get "lbd")));
  Alcotest.(check int) "size" 5 (Option.get (Sat.Json.to_int (get "size")));
  let h = Tr.header ~tool:"t" ~dropped:0 () in
  Alcotest.(check string) "header schema" Tr.schema_name
    (Option.get (Sat.Json.to_string_opt (Option.get (Sat.Json.member "schema" h))))

let suite =
  [
    Th.case "sink capacity, seq, timestamps" sink_mechanics;
    Th.case "cdcl event stream" cdcl_event_stream;
    Th.case "session query spans" session_spans;
    Th.case "merged keeps per-worker order" merged_ordering;
    Th.case "portfolio interleaving" portfolio_interleaving;
    Th.case "JSONL encoding" jsonl_encoding;
  ]
