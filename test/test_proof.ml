module P = Sat.Proof

let certified_unsat () =
  let f =
    Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ]
  in
  match P.solve_certified f with
  | Sat.Types.Unsat, P.Valid_refutation -> ()
  | Sat.Types.Unsat, _ -> Alcotest.fail "UNSAT but proof did not certify"
  | _ -> Alcotest.fail "expected UNSAT"

let certified_pigeonhole () =
  let v i j = (i * 4) + j + 1 in
  let cls = ref [] in
  for i = 0 to 4 do
    cls := List.init 4 (fun j -> v i j) :: !cls
  done;
  for j = 0 to 3 do
    for i1 = 0 to 4 do
      for i2 = i1 + 1 to 4 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  match P.solve_certified (Th.formula_of !cls) with
  | Sat.Types.Unsat, P.Valid_refutation -> ()
  | _ -> Alcotest.fail "php(5,4) must certify"

let sat_runs_give_valid_derivations () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 3; -2 ] ] in
  match P.solve_certified f with
  | Sat.Types.Sat _, (P.Valid_derivation | P.Valid_refutation) -> ()
  | Sat.Types.Sat _, P.Invalid_step i -> Alcotest.failf "invalid step %d" i
  | _ -> Alcotest.fail "expected SAT"

let corrupted_proof_rejected () =
  (* a clause that is not an implicate cannot be RUP *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  let bogus = [ P.Add (Cnf.Clause.of_dimacs_list [ 1 ]) ] in
  (match P.check f bogus with
   | P.Invalid_step 0 -> ()
   | _ -> Alcotest.fail "bogus step accepted");
  (* a valid step followed by a bogus one *)
  let mixed =
    [
      P.Add (Cnf.Clause.of_dimacs_list [ 2 ]);
      P.Add (Cnf.Clause.of_dimacs_list [ -1 ]);
    ]
  in
  match P.check f mixed with
  | P.Invalid_step 1 -> ()
  | _ -> Alcotest.fail "second step should fail"

let empty_proof_of_sat () =
  let f = Th.formula_of [ [ 1 ] ] in
  match P.check f [] with
  | P.Valid_derivation -> ()
  | _ -> Alcotest.fail "empty proof is a valid derivation"

let inconsistent_formula_trivially_refuted () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ] ] in
  match P.check f [] with
  | P.Valid_refutation -> ()
  | _ -> Alcotest.fail "root conflict is already a refutation"

let prop_unsat_always_certifiable =
  QCheck.Test.make ~name:"every UNSAT run certifies" ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 51) in
       let f =
         Th.random_cnf rng (4 + Sat.Rng.int rng 8) (10 + Sat.Rng.int rng 40) 3
       in
       match P.solve_certified f with
       | Sat.Types.Unsat, v -> v = P.Valid_refutation
       | Sat.Types.Sat m, v ->
         Cnf.Formula.eval (fun x -> m.(x)) f
         && (match v with
             | P.Valid_derivation | P.Valid_refutation -> true
             | P.Invalid_step _ -> false)
       | (Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _), _ -> false)

let prop_deletion_policies_still_certify =
  QCheck.Test.make ~name:"proofs survive clause deletion" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 61) in
       let f = Th.random_cnf rng 9 45 3 in
       let config =
         { Sat.Types.default with Sat.Types.deletion = Sat.Types.Size_bounded 3 }
       in
       match P.solve_certified ~config f with
       | Sat.Types.Unsat, v -> v = P.Valid_refutation
       | Sat.Types.Sat _, P.Invalid_step _ -> false
       | _ -> true)

(* --- DRAT with deletions, trimming, cores ------------------------------- *)

let proof_config =
  { Sat.Types.default with
    Sat.Types.proof_logging = true;
    inprocessing = true;
    deletion = Sat.Types.Size_bounded 3 }

let unsat_proof f =
  let s = Sat.Cdcl.create ~config:proof_config f in
  match Sat.Cdcl.solve s with
  | Sat.Types.Unsat -> Sat.Cdcl.proof s
  | _ -> Alcotest.fail "expected UNSAT"

let php n =
  (* php(n, n-1): minimally unsatisfiable *)
  let holes = n - 1 in
  let v i j = (i * holes) + j + 1 in
  let cls = ref [] in
  for i = 0 to n - 1 do
    cls := List.init holes (fun j -> v i j) :: !cls
  done;
  for j = 0 to holes - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  Th.formula_of !cls

let trim_emits_checkable_lrat () =
  let f = php 4 in
  let steps = unsat_proof f in
  match P.trim f steps with
  | P.Trimmed { lines; kept_adds; total_adds; _ } ->
    Alcotest.(check bool) "trim keeps at most everything" true
      (kept_adds <= total_adds);
    (match P.check_lrat f lines with
     | Ok () -> ()
     | Error e -> Alcotest.failf "trimmed LRAT rejected: %s" e);
    (* the trimmed additions alone are still a valid DRAT refutation *)
    let trimmed = List.map (fun (ln : P.lrat_line) -> P.Add ln.lits) lines in
    (match P.check f trimmed with
     | P.Valid_refutation -> ()
     | _ -> Alcotest.fail "trimmed proof no longer checks")
  | P.Not_refutation -> Alcotest.fail "trim: not a refutation"
  | P.Trim_invalid i -> Alcotest.failf "trim: invalid step %d" i

let unsat_core_smoke () =
  let f = Th.formula_of [ [ 1 ]; [ -1 ]; [ 2; 3 ] ] in
  let steps = unsat_proof f in
  match P.trim f steps with
  | P.Trimmed { core; _ } ->
    Alcotest.(check (list int)) "core is the contradictory pair" [ 1; 2 ] core;
    (* the core refutes on its own, and is minimal: dropping either
       clause loses unsatisfiability *)
    (match Th.solve_cdcl (P.core_formula f core) with
     | Sat.Types.Unsat -> ()
     | _ -> Alcotest.fail "core should be UNSAT");
    List.iter
      (fun drop ->
        let rest = List.filter (fun id -> id <> drop) core in
        match Th.solve_cdcl (P.core_formula f rest) with
        | Sat.Types.Sat _ -> ()
        | _ -> Alcotest.fail "core minus one clause should be SAT")
      core
  | _ -> Alcotest.fail "trim failed"

let pigeonhole_core_is_everything () =
  (* minimally unsatisfiable: a valid refutation must use every clause *)
  let f = php 4 in
  let steps = unsat_proof f in
  match P.trim f steps with
  | P.Trimmed { core; _ } ->
    Alcotest.(check int) "core covers every clause"
      (Cnf.Formula.nclauses f) (List.length core)
  | _ -> Alcotest.fail "trim failed"

let deletions_parse_and_print () =
  let c l = Cnf.Clause.of_dimacs_list l in
  let steps =
    [ P.Add (c [ 1; -2 ]); P.Delete (c [ 3; 2; -1 ]); P.Add (c []) ]
  in
  Alcotest.(check bool) "drat text roundtrip" true
    (P.parse_drat (P.drat_to_string steps) = steps);
  let lines =
    [
      { P.id = 4; lits = c [ 1 ]; hints = [ 1; 3 ] };
      { P.id = 5; lits = c []; hints = [ 4; 2 ] };
    ]
  in
  Alcotest.(check bool) "lrat text roundtrip" true
    (P.parse_lrat (P.lrat_to_string lines) = lines)

let pures_incompatible_with_proof () =
  let f = Th.formula_of [ [ 1; 2 ] ] in
  match Sat.Preprocess.run ~pures:true ~proof:(fun _ -> ()) f with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let preprocess_refutation_is_self_contained () =
  let f =
    Th.formula_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3 ]; [ 4; 5 ] ]
  in
  let steps = ref [] in
  (match Sat.Preprocess.run ~proof:(fun s -> steps := s :: !steps) f with
   | Sat.Preprocess.Unsat -> ()
   | Sat.Preprocess.Simplified _ -> Alcotest.fail "expected UNSAT");
  match P.check f (List.rev !steps) with
  | P.Valid_refutation -> ()
  | _ -> Alcotest.fail "preprocessor refutation should check"

(* the ISSUE's 300-instance corpus: the full Solver pipeline (BVE +
   probing off, inprocessing + aggressive deletion on) must emit a DRAT
   stream that both forward-checks and backward-trims into a valid LRAT
   certificate on every UNSAT verdict *)
let prop_full_pipeline_drat =
  QCheck.Test.make
    ~name:"full-pipeline DRAT with deletions trims and checks" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sat.Rng.create (seed + 71) in
      let f =
        Th.random_cnf rng (5 + Sat.Rng.int rng 9) (15 + Sat.Rng.int rng 45) 3
      in
      let report =
        Sat.Solver.solve
          ~engine:(Sat.Solver.Cdcl proof_config)
          ~pipeline:Sat.Solver.full_pipeline f
      in
      let steps = Option.value report.Sat.Solver.proof ~default:[] in
      match report.Sat.Solver.outcome with
      | Sat.Types.Unsat ->
        P.check f steps = P.Valid_refutation
        && (match P.trim f steps with
           | P.Trimmed { lines; kept_adds; total_adds; _ } ->
             kept_adds <= total_adds && P.check_lrat f lines = Ok ()
           | P.Not_refutation | P.Trim_invalid _ -> false)
      | Sat.Types.Sat m -> Cnf.Formula.eval (fun x -> m.(x)) f
      | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false)

let suite =
  [
    Th.case "certified unsat" certified_unsat;
    Th.case "certified pigeonhole" certified_pigeonhole;
    Th.case "sat derivations" sat_runs_give_valid_derivations;
    Th.case "corrupted proofs rejected" corrupted_proof_rejected;
    Th.case "empty proof" empty_proof_of_sat;
    Th.case "trivial refutation" inconsistent_formula_trivially_refuted;
    Th.case "trim emits checkable LRAT" trim_emits_checkable_lrat;
    Th.case "unsat core smoke" unsat_core_smoke;
    Th.case "pigeonhole core is everything" pigeonhole_core_is_everything;
    Th.case "DRAT/LRAT text roundtrip" deletions_parse_and_print;
    Th.case "pures rejected with proof" pures_incompatible_with_proof;
    Th.case "preprocess refutation checks" preprocess_refutation_is_self_contained;
    Th.qcheck prop_unsat_always_certifiable;
    Th.qcheck prop_deletion_policies_still_certify;
    Th.qcheck prop_full_pipeline_drat;
  ]
