module S = Sat.Solver

let engines =
  [
    ("cdcl", S.Cdcl Sat.Types.default);
    ("dpll", S.Dpll Sat.Types.default);
    ("grasp-like", S.Cdcl Sat.Types.grasp_like);
  ]

let pipelines =
  [
    ("none", S.no_pipeline);
    ("full", S.full_pipeline);
    ("probe", { S.full_pipeline with S.probe_failed_literals = true });
    ("rl2", { S.no_pipeline with S.recursive_learning = 2 });
    ("equiv-only", { S.no_pipeline with S.equivalence = true });
  ]

let differential () =
  let rng = Sat.Rng.create 57 in
  for _ = 1 to 20 do
    let f = Th.random_cnf rng 8 25 4 in
    let expected = Th.outcome_sat (Sat.Brute.solve f) in
    List.iter
      (fun (en, engine) ->
         List.iter
           (fun (pn, pipeline) ->
              let r = S.solve ~engine ~pipeline f in
              (match r.S.outcome with
               | Sat.Types.Sat m ->
                 if not expected then
                   Alcotest.failf "%s/%s claims SAT on UNSAT" en pn;
                 if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
                   Alcotest.failf "%s/%s returned a bad model" en pn
               | Sat.Types.Unsat ->
                 if expected then Alcotest.failf "%s/%s claims UNSAT on SAT" en pn
               | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
                 Alcotest.failf "%s/%s inconclusive" en pn))
           pipelines)
      engines
  done

let walksat_engine () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  let r = S.solve ~engine:(S.Walksat Sat.Local_search.default) f in
  Alcotest.(check bool) "walksat engine sat" true (Th.outcome_sat r.S.outcome)

let report_fields () =
  let c = Circuit.Generators.parity ~bits:4 in
  let c2 = Circuit.Transform.double_invert ~seed:1 c in
  let f, _ = Circuit.Miter.to_cnf c c2 in
  let r = S.solve ~pipeline:S.full_pipeline f in
  Alcotest.(check bool) "unsat miter" false (Th.outcome_sat r.S.outcome);
  (* bounded variable elimination either refutes the miter during
     preprocessing (no stats record: the clause set died there) or
     reports eliminated variables *)
  (match r.S.preprocess_stats with
   | Some p ->
     Alcotest.(check bool) "elimination fired" true
       (p.Sat.Preprocess.eliminated > 0)
   | None -> ());
  Alcotest.(check bool) "time recorded" true (r.S.time_seconds >= 0.);
  (* with elimination off, the double-inverted wires survive preprocessing
     and the equivalence stage is what merges them *)
  let r2 =
    S.solve ~pipeline:{ S.full_pipeline with S.elim = false } f
  in
  Alcotest.(check bool) "unsat miter (no elim)" false
    (Th.outcome_sat r2.S.outcome);
  Alcotest.(check bool) "preprocess ran" true (r2.S.preprocess_stats <> None);
  Alcotest.(check bool) "equivalences found" true (r2.S.equivalence_merged > 0)

let solve_dimacs_front () =
  let r = S.solve_dimacs "p cnf 2 2\n1 2 0\n-1 2 0\n" in
  Alcotest.(check bool) "dimacs front-end" true (Th.outcome_sat r.S.outcome)

let pipeline_detects_unsat_alone () =
  (* preprocessing alone proves this one *)
  let r = S.solve ~pipeline:S.full_pipeline (Th.formula_of [ [ 1 ]; [ -1 ] ]) in
  Alcotest.(check bool) "unsat via pipeline" false (Th.outcome_sat r.S.outcome)

let suite =
  [
    Th.case "differential engines x pipelines" differential;
    Th.case "walksat engine" walksat_engine;
    Th.case "report fields" report_fields;
    Th.case "dimacs front-end" solve_dimacs_front;
    Th.case "pipeline-only unsat" pipeline_detects_unsat_alone;
  ]
