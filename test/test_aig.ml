module A = Aig
module N = Circuit.Netlist

let constants_and_identities () =
  let m = A.create () in
  let a = A.add_input m in
  Alcotest.(check bool) "a & true = a" true (A.and_ m a A.const_true = a);
  Alcotest.(check bool) "a & false = false" true
    (A.and_ m a A.const_false = A.const_false);
  Alcotest.(check bool) "a & a = a" true (A.and_ m a a = a);
  Alcotest.(check bool) "a & ~a = false" true
    (A.and_ m a (A.neg a) = A.const_false);
  Alcotest.(check bool) "double negation" true (A.neg (A.neg a) = a)

let hash_consing () =
  let m = A.create () in
  let a = A.add_input m in
  let b = A.add_input m in
  let g1 = A.and_ m a b in
  let g2 = A.and_ m b a in
  Alcotest.(check bool) "commutative sharing" true (g1 = g2);
  Alcotest.(check int) "one AND node" 1 (A.num_ands m);
  let x1 = A.xor m a b in
  let x2 = A.xor m a b in
  Alcotest.(check bool) "xor shared" true (x1 = x2)

let eval_semantics () =
  let m = A.create () in
  let a = A.add_input m in
  let b = A.add_input m in
  let f = A.mux m a (A.xor m a b) (A.or_ m a b) in
  for mask = 0 to 3 do
    let ins = [| mask land 1 <> 0; mask land 2 <> 0 |] in
    let expected = if ins.(0) then ins.(0) <> ins.(1) else ins.(0) || ins.(1) in
    Alcotest.(check bool) "mux/xor/or eval" expected (A.eval m ins f)
  done

let netlist_roundtrip () =
  List.iter
    (fun c ->
       let m, outs = A.of_netlist c in
       let back = A.to_netlist m ~outputs:outs in
       Th.assert_equivalent ~msg:"aig roundtrip" c back;
       (* AIG evaluation matches circuit simulation *)
       let rng = Sat.Rng.create 3 in
       for _ = 1 to 30 do
         let ins =
           Array.init (List.length (N.inputs c)) (fun _ -> Sat.Rng.bool rng)
         in
         let sim = Circuit.Simulate.eval_outputs c ins in
         List.iteri
           (fun i (_, e) ->
              Alcotest.(check bool) "aig eval" sim.(i) (A.eval m ins e))
           outs
       done)
    [
      Circuit.Generators.c17 ();
      Circuit.Generators.ripple_adder ~bits:3;
      Circuit.Generators.multiplier ~bits:3;
      Circuit.Generators.parity ~bits:5;
      Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~seed:9;
    ]

let merge_shares_structure () =
  let c = Circuit.Generators.ripple_adder ~bits:4 in
  let m_single, _ = A.of_netlist c in
  let m_double, pairs = A.merge_netlists c (N.copy c) in
  (* an identical copy adds no AND nodes at all *)
  Alcotest.(check int) "full sharing" (A.num_ands m_single)
    (A.num_ands m_double);
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "outputs collapse" true (a = b))
    pairs

let cnf_translation () =
  let rng = Sat.Rng.create 21 in
  for seed = 1 to 15 do
    let c = Circuit.Generators.random_circuit ~inputs:5 ~gates:25 ~seed:(seed + 40) in
    let m, outs = A.of_netlist c in
    let f, lit_of = A.to_cnf m in
    let ins = Array.init 5 (fun _ -> Sat.Rng.bool rng) in
    (* constrain the inputs through fresh input edges *)
    let g = Cnf.Formula.copy f in
    List.iteri
      (fun i _ ->
         let l = lit_of (A.input m i) in
         Cnf.Formula.add_clause_l g
           [ (if ins.(i) then l else Cnf.Lit.negate l) ])
      (N.inputs c);
    match Th.solve_cdcl g with
    | Sat.Types.Sat model ->
      List.iteri
        (fun i (_, e) ->
           let l = lit_of e in
           let v = model.(Cnf.Lit.var l) in
           let v = if Cnf.Lit.is_pos l then v else not v in
           Alcotest.(check bool) "cnf model matches simulation"
             (Circuit.Simulate.eval_outputs c ins).(i) v)
        outs
    | _ -> Alcotest.fail "inputs fixed: sat expected"
  done

let aig_based_cec () =
  (* merged-manager equivalence check: miter over shared-structure AIG *)
  let c1 = Circuit.Generators.multiplier ~bits:3 in
  let c2 = Circuit.Transform.rewrite_xor c1 in
  let m, pairs = A.merge_netlists c1 c2 in
  let diff =
    List.fold_left
      (fun acc (a, b) -> A.or_ m acc (A.xor m a b))
      A.const_false pairs
  in
  let f, lit_of = A.to_cnf m in
  Cnf.Formula.add_clause_l f [ lit_of diff ];
  Alcotest.(check bool) "equivalent via AIG miter" false
    (Th.outcome_sat (Th.solve_cdcl f))

let two_level_rewriting () =
  let m = A.create () in
  let x = A.add_input m in
  let y = A.add_input m in
  let xy = A.and_ m x y in
  (* absorption *)
  Alcotest.(check bool) "(x&y)&x = x&y" true (A.and_ m xy x = xy);
  (* contradiction *)
  Alcotest.(check bool) "(x&y)&~x = 0" true
    (A.and_ m xy (A.neg x) = A.const_false);
  (* complemented implication *)
  Alcotest.(check bool) "~(x&y)&~x = ~x" true
    (A.and_ m (A.neg xy) (A.neg x) = A.neg x);
  (* substitution: ~(x&y)&x = x&~y *)
  Alcotest.(check bool) "~(x&y)&x = x&~y" true
    (A.and_ m (A.neg xy) x = A.and_ m x (A.neg y));
  (* resolution: ~(x&y)&~(x&~y) = ~x *)
  let xny = A.and_ m x (A.neg y) in
  Alcotest.(check bool) "resolution" true
    (A.and_ m (A.neg xy) (A.neg xny) = A.neg x);
  (* cross-AND contradiction: (x&y)&(s&~y)... shares literal y *)
  let z = A.add_input m in
  let zy = A.and_ m z (A.neg y) in
  Alcotest.(check bool) "(x&y)&(z&~y) = 0" true
    (A.and_ m xy zy = A.const_false)

let rewriting_preserves_semantics () =
  (* random AND trees built through the rewriting constructor must agree
     with a reference evaluation *)
  let rng = Sat.Rng.create 99 in
  for _ = 1 to 50 do
    let m = A.create () in
    let n_in = 4 in
    let ins = Array.init n_in (fun _ -> A.add_input m) in
    (* reference: edge -> (bool array -> bool) closure via A.eval *)
    let pool = ref (Array.to_list ins) in
    for _ = 1 to 25 do
      let pick () =
        let l = !pool in
        let e = List.nth l (Sat.Rng.int rng (List.length l)) in
        if Sat.Rng.bool rng then A.neg e else e
      in
      let e = A.and_ m (pick ()) (pick ()) in
      pool := e :: !pool
    done;
    (* semantics: every pool edge evaluates like the AND/NOT tree it was
       built from — cross-checked against sim_words below *)
    for mask = 0 to (1 lsl n_in) - 1 do
      let vals = Array.init n_in (fun i -> mask land (1 lsl i) <> 0) in
      let words = Array.init n_in (fun i -> if vals.(i) then 1 else 0) in
      let sim = A.sim_words m words in
      List.iter
        (fun e ->
           let by_eval = A.eval m vals e in
           let w = sim.(A.node_of e) land 1 <> 0 in
           let by_sim = if A.is_complemented e then not w else w in
           Alcotest.(check bool) "eval agrees with sim_words" by_eval by_sim)
        !pool
    done
  done

let sim_words_parallel () =
  let c = Circuit.Generators.multiplier ~bits:3 in
  let m, outs = A.of_netlist c in
  let n_in = List.length (N.inputs c) in
  let rng = Sat.Rng.create 5 in
  let words = Circuit.Simulate.random_words rng n_in in
  let sim = A.sim_words m words in
  (* each bit lane of the packed word is one ordinary evaluation *)
  for lane = 0 to Circuit.Simulate.word_width - 1 do
    let ins = Array.init n_in (fun i -> words.(i) land (1 lsl lane) <> 0) in
    List.iter
      (fun (_, e) ->
         let w = sim.(A.node_of e) land (1 lsl lane) <> 0 in
         let v = if A.is_complemented e then not w else w in
         Alcotest.(check bool) "lane matches eval" (A.eval m ins e) v)
      outs
  done

let cleanup_sweeps_dangling () =
  let m = A.create () in
  let a = A.add_input m in
  let b = A.add_input m in
  let c = A.add_input m in
  let keep = A.and_ m a b in
  let _dangling = A.and_ m (A.xor m a c) (A.or_ m b c) in
  let total = A.num_ands m in
  let m2, outs = A.cleanup m ~outputs:[ keep; A.neg keep ] in
  Alcotest.(check bool) "dangling dropped" true (A.num_ands m2 < total);
  Alcotest.(check int) "inputs preserved" (A.num_inputs m) (A.num_inputs m2);
  (match outs with
   | [ k; nk ] ->
     Alcotest.(check bool) "complement preserved" true (nk = A.neg k);
     for mask = 0 to 7 do
       let ins = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
       Alcotest.(check bool) "cleanup preserves function"
         (A.eval m ins keep) (A.eval m2 ins k)
     done
   | _ -> Alcotest.fail "two outputs expected")

let session_cnf_incremental () =
  let c = Circuit.Generators.ripple_adder ~bits:3 in
  let m, outs = A.of_netlist c in
  let scnf = A.Session_cnf.create m in
  let sess = A.Session_cnf.session scnf in
  Alcotest.(check int) "lazy: nothing emitted" 0
    (A.Session_cnf.emitted_nodes scnf);
  let (_, o0) = List.hd outs in
  let l0 = A.Session_cnf.lit_of scnf o0 in
  let emitted_one = A.Session_cnf.emitted_nodes scnf in
  Alcotest.(check bool) "cone emitted" true (emitted_one > 0);
  Alcotest.(check bool) "only the cone" true (emitted_one <= A.num_ands m);
  (* solving under the cone's activation groups constrains the output *)
  let acts = A.Session_cnf.assumptions scnf [ o0 ] in
  let n_in = List.length (N.inputs c) in
  let rng = Sat.Rng.create 8 in
  for _ = 1 to 10 do
    let ins = Array.init n_in (fun _ -> Sat.Rng.bool rng) in
    let in_lits =
      List.init n_in (fun i ->
          let l = A.Session_cnf.lit_of scnf (A.input m i) in
          if ins.(i) then l else Cnf.Lit.negate l)
    in
    let expected = (Circuit.Simulate.eval_outputs c ins).(0) in
    let goal = if expected then Cnf.Lit.negate l0 else l0 in
    (* asserting the wrong polarity under the cone must be UNSAT *)
    match Sat.Session.solve ~assumptions:(goal :: (in_lits @ acts)) sess with
    | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> ()
    | _ -> Alcotest.fail "cone clauses must pin the output"
  done;
  (* releasing a node's group makes its definition vanish *)
  let n_and =
    let rec find id =
      match A.view m id with A.And _ -> id | _ -> find (id + 1)
    in
    find 0
  in
  A.Session_cnf.release scnf (A.of_node n_and);
  let acts' = A.Session_cnf.assumptions scnf [ o0 ] in
  Alcotest.(check bool) "released group dropped from assumptions" true
    (List.length acts' < List.length acts)

let suite =
  [
    Th.case "constants" constants_and_identities;
    Th.case "hash consing" hash_consing;
    Th.case "eval" eval_semantics;
    Th.case "netlist roundtrip" netlist_roundtrip;
    Th.case "merge sharing" merge_shares_structure;
    Th.case "cnf translation" cnf_translation;
    Th.case "aig cec" aig_based_cec;
    Th.case "two-level rewriting" two_level_rewriting;
    Th.case "rewriting semantics" rewriting_preserves_semantics;
    Th.case "sim words" sim_words_parallel;
    Th.case "cleanup" cleanup_sweeps_dangling;
    Th.case "session cnf" session_cnf_incremental;
  ]
