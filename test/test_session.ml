(* Incremental session layer: clause addition between solves, activation
   groups, per-call budgets and stats deltas, retention policies. *)

module T = Sat.Types
module S = Sat.Session
module Lit = Cnf.Lit

let php n m =
  let v i j = (i * m) + j + 1 in
  let cls = ref [] in
  for i = 0 to n - 1 do
    cls := List.init m (fun j -> v i j) :: !cls
  done;
  for j = 0 to m - 1 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        cls := [ -(v i1 j); -(v i2 j) ] :: !cls
      done
    done
  done;
  Th.formula_of !cls

let grow_after_sat () =
  (* SAT, then added clauses flip the verdict to UNSAT *)
  let s = S.of_formula (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ]) in
  Alcotest.(check bool) "initially sat" true (Th.outcome_sat (S.solve s));
  Alcotest.(check bool) "model cached" true (S.model s <> None);
  S.add_clause s [ Th.lit 1; Th.lit (-2) ];
  Alcotest.(check bool) "cached model invalidated" true (S.model s = None);
  Alcotest.(check bool) "still sat" true (Th.outcome_sat (S.solve s));
  S.add_clause s [ Th.lit (-1); Th.lit (-2) ];
  (match S.solve s with
   | T.Unsat -> ()
   | _ -> Alcotest.fail "expected UNSAT after growth");
  (* the session stays usable even at UNSAT: re-solving agrees *)
  match S.solve s with
  | T.Unsat -> ()
  | _ -> Alcotest.fail "UNSAT must be stable"

let models_satisfy_growing_formula () =
  let rng = Sat.Rng.create 99 in
  let f = Th.random_cnf rng 12 20 4 in
  let s = S.of_formula f in
  let clauses = ref [] in
  Cnf.Formula.iter_clauses f (fun c -> clauses := Cnf.Clause.to_list c :: !clauses);
  let check_model () =
    match S.solve s with
    | T.Sat m ->
      List.iter
        (fun cl ->
           let sat =
             List.exists
               (fun l ->
                  let v = m.(Lit.var l) in
                  if Lit.is_pos l then v else not v)
               cl
           in
           Alcotest.(check bool) "clause satisfied" true sat)
        !clauses;
      true
    | T.Unsat | T.Unsat_assuming _ -> false
    | T.Unknown why -> Alcotest.fail why
  in
  let continue = ref (check_model ()) in
  for _ = 1 to 10 do
    if !continue then begin
      let len = 2 + Sat.Rng.int rng 3 in
      let cl =
        List.init len (fun _ ->
            Lit.of_var (Sat.Rng.int rng 12) (Sat.Rng.bool rng))
      in
      S.add_clause s cl;
      clauses := cl :: !clauses;
      continue := check_model ()
    end
  done

let activation_groups () =
  (* x alone; group A forces ~x, group B forces x *)
  let s = S.create () in
  let x = Lit.pos (S.new_var s) in
  let a = S.new_activation s in
  let b = S.new_activation s in
  S.add_clause_in s ~group:a [ Lit.negate x ];
  S.add_clause_in s ~group:b [ x ];
  Alcotest.(check bool) "a active" true (S.is_active s a);
  (* both groups on: contradiction *)
  (match S.solve ~assumptions:[ a; b ] s with
   | T.Unsat_assuming core ->
     Alcotest.(check bool) "core non-empty" true (core <> [])
   | T.Unsat -> ()
   | _ -> Alcotest.fail "expected UNSAT under both groups");
  (* only group a: satisfiable with ~x *)
  (match S.solve ~assumptions:[ a ] s with
   | T.Sat m ->
     Alcotest.(check bool) "group a forces ~x" false (m.(Lit.var x))
   | _ -> Alcotest.fail "expected SAT under group a");
  (* release a: its clause must stop constraining even when b is on *)
  S.release s a;
  Alcotest.(check bool) "a released" false (S.is_active s a);
  (match S.solve ~assumptions:[ b ] s with
   | T.Sat m -> Alcotest.(check bool) "group b forces x" true (m.(Lit.var x))
   | _ -> Alcotest.fail "expected SAT under group b after release");
  (* double release is a no-op; releasing a non-activation raises *)
  S.release s a;
  (match S.release s x with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "release of plain literal must raise")

let released_group_flips_to_unsat () =
  (* permanent clause [a] plus releasing a (unit ~a) is a contradiction:
     adding clauses between solves can flip SAT to UNSAT *)
  let s = S.create () in
  let a = S.new_activation s in
  S.add_clause s [ a ];
  Alcotest.(check bool) "sat with a on" true (Th.outcome_sat (S.solve s));
  S.release s a;
  match S.solve s with
  | T.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT after releasing a pinned group"

let failure_cores_survive_reuse () =
  let s = S.of_formula (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ -3; -2 ] ]) in
  let check_core () =
    match S.solve ~assumptions:[ Th.lit 3; Th.lit (-2) ] s with
    | T.Unsat_assuming core ->
      Alcotest.(check bool) "core subset of assumptions" true
        (List.for_all
           (fun l -> Lit.equal l (Th.lit 3) || Lit.equal l (Th.lit (-2)))
           core);
      Alcotest.(check bool) "core non-empty" true (core <> [])
    | T.Unsat -> Alcotest.fail "expected assumption failure, not plain UNSAT"
    | _ -> Alcotest.fail "expected UNSAT under assumptions"
  in
  check_core ();
  Alcotest.(check bool) "sat without assumptions" true
    (Th.outcome_sat (S.solve s));
  (* same failing query again after an unrelated successful one *)
  check_core ()

let budget_does_not_poison () =
  let s = S.of_formula (php 7 6) in
  (match S.solve ~max_conflicts:0 s with
   | T.Unknown _ -> ()
   | T.Unsat -> Alcotest.fail "php 7 6 cannot be refuted in 0 conflicts"
   | _ -> Alcotest.fail "expected budget Unknown");
  (* an exhausted budget must not leak into the next query *)
  (match S.solve s with
   | T.Unsat -> ()
   | _ -> Alcotest.fail "expected UNSAT once unbudgeted");
  (* and a later budgeted query starts from a fresh allowance *)
  match S.solve ~max_decisions:0 (S.of_formula (php 7 6)) with
  | T.Unknown _ | T.Unsat -> ()
  | _ -> Alcotest.fail "decision budget ignored"

let per_call_deltas_disjoint () =
  let s = S.of_formula (php 6 5) in
  ignore (S.solve s);
  let d1 = S.last_stats s in
  let c1 = S.cumulative_stats s in
  ignore (S.solve s);
  let d2 = S.last_stats s in
  let c2 = S.cumulative_stats s in
  Alcotest.(check bool) "first call works" true (d1.T.conflicts > 0);
  (* deltas are disjoint: they sum to the cumulative difference *)
  Alcotest.(check int) "conflicts partition"
    c2.T.conflicts (c1.T.conflicts + d2.T.conflicts);
  Alcotest.(check int) "decisions partition"
    c2.T.decisions (c1.T.decisions + d2.T.decisions);
  Alcotest.(check int) "queries counted" 2 (S.queries s);
  (* copy/diff helpers compose *)
  let snap = T.copy_stats c2 in
  ignore (S.solve s);
  let d3 = T.diff_stats (S.cumulative_stats s) snap in
  Alcotest.(check int) "diff matches last delta"
    (S.last_stats s).T.conflicts d3.T.conflicts

let retention_policies_sound () =
  List.iter
    (fun retention ->
       let s = S.of_formula ~retention (php 6 5) in
       (* several queries with throwaway activation groups: the verdict
          must stay correct whatever the pruning policy drops *)
       for _ = 1 to 3 do
         let act = S.new_activation s in
         S.add_clause_in s ~group:act [ act ] (* tautological under act *);
         (match S.solve ~assumptions:[ act ] s with
          | T.Unsat | T.Unsat_assuming _ -> ()
          | _ -> Alcotest.fail "php 6 5 must stay UNSAT");
         S.release s act
       done;
       match S.solve s with
       | T.Unsat -> ()
       | _ -> Alcotest.fail "final verdict wrong under retention policy")
    [ S.Keep_all; S.Drop_released; S.Keep_lbd 3 ]

let solver_pipeline_sessions () =
  (* Solver.Incremental: simplify once, serve several queries *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ]; [ 2; 3; 4 ]; [ -3; 4 ] ] in
  let inc = Sat.Solver.Incremental.open_session f in
  (match Sat.Solver.Incremental.solve inc with
   | T.Sat m ->
     (* models are lifted back to the original variable space *)
     Alcotest.(check bool) "covers original vars" true (Array.length m >= 4);
     Alcotest.(check bool) "x2 forced" true m.(1)
   | _ -> Alcotest.fail "expected SAT");
  (* growth through the pipeline front-end *)
  Sat.Solver.Incremental.add_clause inc [ Th.lit (-2) ];
  (match Sat.Solver.Incremental.solve inc with
   | T.Unsat -> ()
   | _ -> Alcotest.fail "expected UNSAT after adding ~x2");
  Alcotest.(check int) "queries counted" 2 (Sat.Solver.Incremental.queries inc)

(* --- cooperative cancellation (the SAT-service contract) ----------------- *)

let cross_domain_interrupt_keeps_session_reusable () =
  (* a service worker solves; the event loop cancels from another domain *)
  let s = S.of_formula (php 10 9) in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        S.interrupt s)
  in
  (match S.solve s with
   | T.Unknown "interrupted" -> ()
   | o -> Alcotest.failf "expected interrupted, got %a" T.pp_outcome o);
  Domain.join canceller;
  Alcotest.(check bool) "request consumed" false (S.interrupt_requested s);
  (* the session survives into the pool: growth + a fresh query work *)
  S.add_clause s [ Th.lit 1 ];
  S.add_clause s [ Th.lit (-1) ];
  match S.solve s with
  | T.Unsat -> ()
  | o -> Alcotest.failf "expected unsat after reuse, got %a" T.pp_outcome o

let interrupt_storm_single_query () =
  (* many cancellers racing one query: exactly one interruption, and the
     session still answers correctly afterwards *)
  let s = S.of_formula (php 10 9) in
  let cancellers =
    Array.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Unix.sleepf 0.02;
            for _ = 1 to 100 do
              S.interrupt s
            done))
  in
  (match S.solve s with
   | T.Unknown "interrupted" -> ()
   | o -> Alcotest.failf "expected interrupted, got %a" T.pp_outcome o);
  Array.iter Domain.join cancellers;
  (* late interrupts may still be pending: a pool must be able to
     withdraw them before the next tenant's query *)
  S.clear_interrupt s;
  Alcotest.(check bool) "withdrawn" false (S.interrupt_requested s);
  match S.solve ~assumptions:[ Th.lit 1 ] (S.of_formula (php 5 5)) with
  | T.Sat _ -> (
      (* and the stormed session itself still solves under budget *)
      match S.solve ~max_conflicts:5 s with
      | T.Unknown ("budget" | "interrupted") | T.Unsat -> ()
      | o -> Alcotest.failf "stormed session unusable: %a" T.pp_outcome o)
  | o -> Alcotest.failf "fresh session broken: %a" T.pp_outcome o

let clear_interrupt_withdraws_pending () =
  (* a cancellation racing with completion leaves the flag set; pooling
     the session without clearing would abort the next tenant's query *)
  let s = S.of_formula (Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ]) in
  S.interrupt s;
  Alcotest.(check bool) "pending" true (S.interrupt_requested s);
  S.clear_interrupt s;
  Alcotest.(check bool) "withdrawn" false (S.interrupt_requested s);
  match S.solve s with
  | T.Sat _ -> ()
  | o -> Alcotest.failf "expected sat after withdrawal, got %a" T.pp_outcome o

let timeout_then_interrupt_sequence () =
  (* the scheduler's two Unknown flavours compose on one session *)
  let s = S.of_formula (php 8 7) in
  (match S.solve ~max_conflicts:5 s with
   | T.Unknown "budget" -> ()
   | T.Unsat -> Alcotest.fail "php 8 7 cannot finish in 5 conflicts"
   | o -> Alcotest.failf "expected budget, got %a" T.pp_outcome o);
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        S.interrupt s)
  in
  (match S.solve s with
   | T.Unknown "interrupted" | T.Unsat -> ()
   | o -> Alcotest.failf "expected interrupted/unsat, got %a" T.pp_outcome o);
  Domain.join canceller;
  S.clear_interrupt s;
  (* budgets still enforced after the interrupt *)
  match S.solve ~max_decisions:0 s with
  | T.Unknown _ | T.Unsat -> ()
  | o -> Alcotest.failf "budget ignored after interrupt: %a" T.pp_outcome o

let minimize_assumptions_shrinks () =
  (* x1 ∨ x2 forces one of them on: assuming both off is contradictory,
     and the third assumption is irrelevant noise *)
  let s = S.of_formula (Th.formula_of [ [ 1; 2 ] ]) in
  (match
     S.minimize_assumptions s [ Th.lit (-1); Th.lit (-2); Th.lit 3 ]
   with
   | Some core ->
     Alcotest.(check bool)
       "noise dropped, order preserved" true
       (core = [ Th.lit (-1); Th.lit (-2) ])
   | None -> Alcotest.fail "expected an UNSAT core");
  Alcotest.(check bool) "queries accounted" true (S.queries s > 1);
  (* satisfiable assumption sets yield no core *)
  (match S.minimize_assumptions s [ Th.lit 1; Th.lit 3 ] with
   | None -> ()
   | Some _ -> Alcotest.fail "SAT must give None");
  (* a formula UNSAT on its own needs no assumptions at all *)
  let s2 = S.of_formula (Th.formula_of [ [ 1 ]; [ -1 ] ]) in
  match S.minimize_assumptions s2 [ Th.lit 2 ] with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "core of an UNSAT formula must be empty"
  | None -> Alcotest.fail "expected Some []"

let minimize_assumptions_php () =
  (* php(3,3) is satisfiable, but forcing pigeons 0 and 1 both into
     hole 0 is contradictory; the third assumption is harmless *)
  let s = S.of_formula (php 3 3) in
  let v i j = (i * 3) + j + 1 in
  let asms = [ Th.lit (v 0 0); Th.lit (v 1 0); Th.lit (v 2 1) ] in
  match S.minimize_assumptions s asms with
  | Some core ->
    Alcotest.(check bool) "two pigeons, one hole" true
      (core = [ Th.lit (v 0 0); Th.lit (v 1 0) ])
  | None -> Alcotest.fail "expected an UNSAT core"

let suite =
  [
    Th.case "grow after sat" grow_after_sat;
    Th.case "models satisfy growing formula" models_satisfy_growing_formula;
    Th.case "activation groups" activation_groups;
    Th.case "released group flips to unsat" released_group_flips_to_unsat;
    Th.case "failure cores survive reuse" failure_cores_survive_reuse;
    Th.case "budget does not poison" budget_does_not_poison;
    Th.case "per-call deltas disjoint" per_call_deltas_disjoint;
    Th.case "retention policies" retention_policies_sound;
    Th.case "pipeline sessions" solver_pipeline_sessions;
    Th.case "cross-domain interrupt keeps session reusable"
      cross_domain_interrupt_keeps_session_reusable;
    Th.case "interrupt storm, single query" interrupt_storm_single_query;
    Th.case "clear_interrupt withdraws pending" clear_interrupt_withdraws_pending;
    Th.case "timeout then interrupt sequence" timeout_then_interrupt_sequence;
    Th.case "minimize assumptions" minimize_assumptions_shrinks;
    Th.case "minimize assumptions php" minimize_assumptions_php;
  ]
