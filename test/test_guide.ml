(* Guidance seeding and per-instance auto-tuning.

   These tests pin the docs/TUNING.md contract: the seeding formulas of
   Sat.Guide, the feature formulas and decision table of Sat.Autotune,
   and the answer-preservation property of the whole --auto path (every
   SAT model validated, every UNSAT re-certified). *)

module T = Sat.Types
module G = Sat.Guide
module A = Sat.Autotune

let php = Test_session.php
let feps = 1e-9
let checkf msg expect got = Alcotest.(check (float feps)) msg expect got

let assoc msg v l =
  match List.assoc_opt v l with
  | Some x -> x
  | None -> Alcotest.failf "%s: var %d not seeded" msg v

(* --- seeding formulas ----------------------------------------------------- *)

(* activity(v) = (0.5 + 0.5*fanout/fmax) * (1 - |2*prob - 1|),
   phase(v) = prob >= 0.5, fmax = max fanout (at least 1). *)
let observations_pinned () =
  let g =
    G.of_observations
      [
        { G.var = 0; prob = 0.5; fanout = 2 };
        { G.var = 1; prob = 1.0; fanout = 4 };
        { G.var = 2; prob = 0.25; fanout = 1 };
      ]
  in
  let act = g.T.seed_activity and ph = g.T.seed_phase in
  checkf "undecided mid-fanout" 0.75 (assoc "act" 0 act);
  checkf "settled signal earns nothing" 0.0 (assoc "act" 1 act);
  checkf "quarter probability" 0.3125 (assoc "act" 2 act);
  Alcotest.(check bool) "phase at 0.5 is true" true (assoc "ph" 0 ph);
  Alcotest.(check bool) "phase at 1.0" true (assoc "ph" 1 ph);
  Alcotest.(check bool) "phase at 0.25" false (assoc "ph" 2 ph)

(* Jeroslow-Wang: w(l) = sum over clauses with l of 2^-|c|;
   activity(v) = (w+ + w-)/maxw, phase(v) = w+ >= w-. *)
let of_formula_pinned () =
  let f = Cnf.Formula.create ~nvars:4 () in
  List.iter (Cnf.Formula.add_dimacs f) [ [ 1; 2 ]; [ -1; 2 ]; [ -2; 3 ] ];
  let g = G.of_formula f in
  let act = g.T.seed_activity and ph = g.T.seed_phase in
  (* per-var totals: v1 = 0.5, v2 = 0.75, v3 = 0.25; maxw = 0.75 *)
  checkf "v1" (0.5 /. 0.75) (assoc "act" 0 act);
  checkf "v2 is the max" 1.0 (assoc "act" 1 act);
  checkf "v3" (0.25 /. 0.75) (assoc "act" 2 act);
  Alcotest.(check bool) "tied weight phases true" true (assoc "ph" 0 ph);
  Alcotest.(check bool) "positive-heavy v2" true (assoc "ph" 1 ph);
  Alcotest.(check bool) "positive-only v3" true (assoc "ph" 2 ph);
  (* the unmentioned 4th variable is not seeded at all *)
  Alcotest.(check bool) "v4 unseeded" true (List.assoc_opt 3 act = None);
  Alcotest.(check int) "nseeded" 3 (G.nseeded g)

let of_formula_deterministic () =
  let build () =
    let rng = Sat.Rng.create 7 in
    Th.random_cnf rng 40 120 3
  in
  let g1 = G.of_formula (build ()) and g2 = G.of_formula (build ()) in
  Alcotest.(check bool) "same activities" true
    (g1.T.seed_activity = g2.T.seed_activity);
  Alcotest.(check bool) "same phases" true (g1.T.seed_phase = g2.T.seed_phase)

(* --- applying guidance ---------------------------------------------------- *)

let guided_answers_unchanged () =
  let check_same f =
    let guided =
      { T.default with T.guide = Some (G.of_formula f) }
    in
    let plain = Th.solve_cdcl f and g = Th.solve_cdcl ~config:guided f in
    match (plain, g) with
    | T.Sat _, T.Sat m ->
      Alcotest.(check bool) "guided model valid" true
        (Cnf.Formula.eval (fun v -> m.(v)) f)
    | T.Unsat, T.Unsat -> ()
    | _ -> Alcotest.fail "guided and unguided answers differ"
  in
  check_same (php 5 5);
  check_same (php 5 4);
  let rng = Sat.Rng.create 11 in
  for _ = 1 to 20 do
    check_same (Th.random_cnf rng 20 60 3)
  done

let guidance_out_of_range_ignored () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 2 ] ] in
  let g =
    {
      T.seed_activity = [ (999, 0.5); (-3, 0.7); (0, 0.9) ];
      seed_phase = [ (999, true); (1, false) ];
    }
  in
  match Th.solve_cdcl ~config:{ T.default with T.guide = Some g } f with
  | T.Sat m ->
    Alcotest.(check bool) "model valid" true
      (Cnf.Formula.eval (fun v -> m.(v)) f)
  | _ -> Alcotest.fail "expected SAT"

let session_apply_guidance () =
  let f = php 5 5 in
  let sess = Sat.Session.create () in
  for _ = 1 to Cnf.Formula.nvars f do
    ignore (Sat.Session.new_var sess)
  done;
  Cnf.Formula.iter_clauses f (fun c ->
      Sat.Session.add_clause sess (Cnf.Clause.to_list c));
  Sat.Session.apply_guidance sess (G.of_formula f);
  match Sat.Session.solve sess with
  | T.Sat m ->
    Alcotest.(check bool) "guided session model valid" true
      (Cnf.Formula.eval (fun v -> m.(v)) f)
  | _ -> Alcotest.fail "php(5,5) is satisfiable"

(* --- feature extraction --------------------------------------------------- *)

(* One Tseitin AND gate o = a AND b: (-o a)(-o b)(o -a -b). *)
let and_gate_cnf () = Th.formula_of [ [ -3; 1 ]; [ -3; 2 ]; [ 3; -1; -2 ] ]

let extract_pinned () =
  let ft = A.extract (and_gate_cnf ()) in
  Alcotest.(check int) "nvars" 3 ft.A.nvars;
  Alcotest.(check int) "nclauses" 3 ft.A.nclauses;
  checkf "ratio" 1.0 ft.A.clause_var_ratio;
  checkf "binary" (2. /. 3.) ft.A.binary_frac;
  checkf "ternary" (1. /. 3.) ft.A.ternary_frac;
  checkf "all horn" 1.0 ft.A.horn_frac;
  (* only the gate output matches the occurrence profile *)
  checkf "one gate-shaped var of three" (1. /. 3.) ft.A.gate_like_frac;
  Alcotest.(check int) "every var probed" 3 ft.A.probes_run

let extract_deterministic () =
  let rng = Sat.Rng.create 23 in
  let f = Th.random_cnf rng 60 200 3 in
  let a = A.extract f and b = A.extract f in
  let strip ft = { ft with A.extraction_time_s = 0.0 } in
  Alcotest.(check bool) "same features" true (strip a = strip b)

let probe_density_regression () =
  (* an implication chain propagates nearly the whole trail per probe;
     disjoint binary clauses propagate nothing beyond the probe itself *)
  let n = 50 in
  let chain =
    Th.formula_of (List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]))
  in
  let pairs =
    Th.formula_of (List.init (n / 2) (fun i -> [ (2 * i) + 1; (2 * i) + 2 ]))
  in
  let dc = (A.extract chain).A.probe_density
  and dp = (A.extract pairs).A.probe_density in
  Alcotest.(check bool) "chain is dense" true (dc >= 0.1);
  Alcotest.(check bool) "chain denser than disjoint pairs" true (dc > dp);
  Alcotest.(check bool) "disjoint pairs are sparse" true (dp < 0.05)

(* --- the decision table --------------------------------------------------- *)

let ft ?(nvars = 100) ?(nclauses = 500) ?(r = 1.0) ?(b2 = 0.0) ?(b3 = 0.0)
    ?(horn = 0.0) ?(g = 0.0) ?(d = 0.0) () =
  {
    A.nvars;
    nclauses;
    clause_var_ratio = r;
    binary_frac = b2;
    ternary_frac = b3;
    horn_frac = horn;
    gate_like_frac = g;
    probe_density = d;
    probe_failed_frac = 0.0;
    probes_run = 0;
    extraction_time_s = 0.0;
  }

let selector_engine_rules () =
  (match (A.select ~jobs:1 (ft ~d:0.5 ())).A.engine with
   | A.Sequential -> ()
   | _ -> Alcotest.fail "E1: jobs<=1 is sequential");
  (match (A.select ~jobs:4 (ft ~d:0.05 ~nvars:100 ())).A.engine with
   | A.Cube_conquer 4 -> ()
   | _ -> Alcotest.fail "E2: dense and big goes cube-conquer");
  (match (A.select ~jobs:4 (ft ~d:0.05 ~nvars:63 ())).A.engine with
   | A.Portfolio_race 4 -> ()
   | _ -> Alcotest.fail "E3: too small for cubes races a portfolio");
  match (A.select ~jobs:4 (ft ~d:0.01 ~nvars:100 ())).A.engine with
  | A.Portfolio_race 4 -> ()
  | _ -> Alcotest.fail "E3: sparse propagation races a portfolio"

let selector_preprocess_rules () =
  (match (A.select (ft ~nclauses:199 ~g:0.9 ())).A.preprocess with
   | A.Pre_off -> ()
   | _ -> Alcotest.fail "P1: tiny formulas skip preprocessing");
  (match (A.select (ft ~nclauses:200 ~g:0.25 ())).A.preprocess with
   | A.Pre_full -> ()
   | _ -> Alcotest.fail "P2: gate-like earns the full pipeline");
  match (A.select (ft ~nclauses:200 ~g:0.24 ())).A.preprocess with
  | A.Pre_basic -> ()
  | _ -> Alcotest.fail "P3: everything else gets the basic pass"

let selector_restart_inprocess_guidance_rules () =
  (match (A.select (ft ~g:0.25 ~r:5.0 ~b3:0.9 ())).A.restarts with
   | T.Luby 100 -> ()
   | _ -> Alcotest.fail "R1: gate-like keeps fast Luby-100");
  (match (A.select (ft ~g:0.0 ~r:3.5 ~b3:0.5 ())).A.restarts with
   | T.Luby 512 -> ()
   | _ -> Alcotest.fail "R2: random-3SAT-shaped slows restarts");
  (match (A.select (ft ~g:0.0 ~r:3.4 ~b3:0.9 ())).A.restarts with
   | T.Luby 100 -> ()
   | _ -> Alcotest.fail "R3: default Luby-100");
  Alcotest.(check bool) "I1: big formulas inprocess" true
    (A.select (ft ~nclauses:2000 ())).A.inprocessing;
  Alcotest.(check bool) "I0: small formulas do not" false
    (A.select (ft ~nclauses:1999 ())).A.inprocessing;
  Alcotest.(check bool) "G1: gate-like is guided" true
    (A.select (ft ~g:0.25 ())).A.guided;
  Alcotest.(check bool) "G0: otherwise unguided" false
    (A.select (ft ~g:0.24 ())).A.guided

let selector_reason_trail () =
  let p = A.select ~jobs:1 (ft ~nclauses:2000 ~r:4.0 ~b3:0.6 ()) in
  Alcotest.(check (list string)) "rule ids in dimension order"
    [ "E1"; "P3"; "R2"; "I1"; "G0" ]
    p.A.reason;
  let q = A.select ~jobs:2 (ft ~nclauses:150 ~g:0.5 ~d:0.5 ()) in
  Alcotest.(check (list string)) "gate-like trail"
    [ "E2"; "P1"; "R1"; "I0"; "G1" ]
    q.A.reason

let select_pure () =
  let x = ft ~nclauses:2000 ~g:0.3 ~d:0.1 () in
  Alcotest.(check bool) "same features, same policy" true
    (A.select ~jobs:3 x = A.select ~jobs:3 x)

(* --- the auto path end to end --------------------------------------------- *)

(* Every --auto verdict must be reproducible by a certified run: SAT
   models are evaluated against the original formula, UNSAT answers are
   re-solved with proof logging and the refutation forward-checked. *)
let auto_agrees_with_certified () =
  let rng = Sat.Rng.create 0xA0 in
  let chain n =
    Th.formula_of
      ([ 1 ] :: List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]))
  in
  let instance i =
    if i mod 10 = 0 then begin
      (* structured: a miter of a random circuit against itself (UNSAT)
         or against a rewired sibling (usually SAT) *)
      let c1 = Circuit.Generators.random_circuit ~inputs:5 ~gates:20 ~seed:i in
      let c2 =
        if i mod 20 = 0 then fst (Circuit.Transform.inject_bug ~seed:i c1)
        else c1
      in
      fst (Circuit.Miter.to_cnf c1 c2)
    end
    else if i mod 10 = 5 then chain (64 + (i mod 37))
    else
      Th.random_cnf rng
        (8 + Sat.Rng.int rng 24)
        (20 + Sat.Rng.int rng 80)
        3
  in
  for i = 1 to 300 do
    let f = instance i in
    let jobs = if i mod 15 = 0 then 2 else 1 in
    let _plan, report = Sat.Solver.Auto.solve ~jobs f in
    match report.Sat.Solver.outcome with
    | T.Sat m ->
      if not (Cnf.Formula.eval (fun v -> m.(v)) f) then
        Alcotest.failf "instance %d: auto model does not satisfy" i
    | T.Unsat | T.Unsat_assuming _ -> (
      match Sat.Proof.solve_certified f with
      | (T.Unsat | T.Unsat_assuming _), Sat.Proof.Valid_refutation -> ()
      | (T.Unsat | T.Unsat_assuming _), _ ->
        Alcotest.failf "instance %d: refutation did not certify" i
      | T.Sat _, _ ->
        Alcotest.failf "instance %d: auto said UNSAT, certified run SAT" i
      | T.Unknown _, _ ->
        Alcotest.failf "instance %d: certified run inconclusive" i)
    | T.Unknown why ->
      Alcotest.failf "instance %d: auto gave up (%s)" i why
  done

let auto_plan_matches_table () =
  (* the plan the solver executes is the policy the table predicts *)
  let f = and_gate_cnf () in
  let plan = Sat.Solver.Auto.plan f in
  Alcotest.(check (list string)) "tiny gate formula"
    [ "E1"; "P1"; "R1"; "I0"; "G1" ]
    plan.Sat.Solver.Auto.policy.A.reason;
  Alcotest.(check bool) "G1 produced a non-empty seeding" true
    (plan.Sat.Solver.Auto.guidance <> None);
  match plan.Sat.Solver.Auto.engine with
  | Sat.Solver.Cdcl cfg ->
    Alcotest.(check bool) "guidance attached to the engine config" true
      (cfg.T.guide <> None)
  | _ -> Alcotest.fail "E1 must map to the sequential engine"

let auto_emits_metrics () =
  let reg = Sat.Metrics.create () in
  let f = and_gate_cnf () in
  (match (Sat.Solver.Auto.solve ~metrics:reg f : _ * Sat.Solver.report) with
   | _, { Sat.Solver.outcome = T.Sat _; _ } -> ()
   | _ -> Alcotest.fail "gate CNF is satisfiable");
  let c name = Sat.Metrics.counter_value (Sat.Metrics.counter reg name) in
  Alcotest.(check int) "autotune/runs" 1 (c "autotune/runs");
  Alcotest.(check int) "autotune/engine_cdcl" 1 (c "autotune/engine_cdcl");
  Alcotest.(check int) "autotune/guided" 1 (c "autotune/guided");
  Alcotest.(check int) "guide/applications" 1 (c "guide/applications");
  Alcotest.(check int) "guide/seeded_vars" 3 (c "guide/seeded_vars");
  Alcotest.(check bool) "gate_like_frac gauge" true
    (Sat.Metrics.gauge_value (Sat.Metrics.gauge reg "autotune/gate_like_frac")
     > 0.0)

(* --- guided EDA pipelines ------------------------------------------------- *)

let sweep_guided_agrees () =
  let a = Circuit.Generators.ripple_adder ~bits:4 in
  let b = Circuit.Generators.kogge_stone_adder ~bits:4 in
  (match (Eda.Sweep.check ~guide:true a b).Eda.Sweep.verdict with
   | Eda.Equiv.Equivalent -> ()
   | _ -> Alcotest.fail "guided sweep: adders are equivalent");
  let c = Circuit.Generators.random_circuit ~inputs:5 ~gates:25 ~seed:3 in
  let buggy, _ = Circuit.Transform.inject_bug ~seed:4 c in
  let plain = (Eda.Sweep.check c buggy).Eda.Sweep.verdict
  and guided = (Eda.Sweep.check ~guide:true c buggy).Eda.Sweep.verdict in
  let same =
    match (plain, guided) with
    | Eda.Equiv.Equivalent, Eda.Equiv.Equivalent
    | Eda.Equiv.Inequivalent _, Eda.Equiv.Inequivalent _ ->
      true
    | _ -> false
  in
  Alcotest.(check bool) "guided and plain sweep verdicts agree" true same

let bmc_guided_agrees () =
  let seq = Circuit.Sequential.counter ~bits:3 ~buggy_at:(Some 5) in
  let plain = Eda.Bmc.check ~max_bound:10 seq
  and guided = Eda.Bmc.check ~guide:true ~max_bound:10 seq in
  (match (plain.Eda.Bmc.result, guided.Eda.Bmc.result) with
   | Eda.Bmc.Counterexample a, Eda.Bmc.Counterexample b ->
     Alcotest.(check int) "same counterexample length" (List.length a)
       (List.length b)
   | _ -> Alcotest.fail "both runs must find the bug");
  let ok = Circuit.Sequential.counter ~bits:3 ~buggy_at:None in
  match (Eda.Bmc.check ~guide:true ~max_bound:6 ok).Eda.Bmc.result with
  | Eda.Bmc.No_counterexample -> ()
  | _ -> Alcotest.fail "guided BMC invented a counterexample"

(* --- the service path ----------------------------------------------------- *)

let scheduler_autotune () =
  let module P = Service.Protocol in
  let module J = Sat.Json in
  let clauses_of f =
    let out = ref [] in
    Cnf.Formula.iter_clauses f (fun c ->
        out := List.map Cnf.Lit.to_dimacs (Cnf.Clause.to_list c) :: !out);
    List.rev !out
  in
  let sch = Service.Scheduler.create ~jobs:2 ~autotune:true () in
  (match Service.Scheduler.solve sch (P.mk_solve (clauses_of (php 5 5))) with
   | Ok a ->
     (match a.Service.Scheduler.outcome with
      | T.Sat m ->
        Alcotest.(check bool) "tuned model valid" true
          (Cnf.Formula.eval (fun v -> m.(v)) (php 5 5))
      | o -> Alcotest.failf "expected sat, got %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused");
  (match Service.Scheduler.solve sch (P.mk_solve (clauses_of (php 5 4))) with
   | Ok a ->
     (match a.Service.Scheduler.outcome with
      | T.Unsat -> ()
      | o -> Alcotest.failf "expected unsat, got %a" T.pp_outcome o)
   | Error _ -> Alcotest.fail "refused");
  (* a budgeted query must keep exact budget semantics: never tuned *)
  (match
     Service.Scheduler.solve sch
       (P.mk_solve ~max_conflicts:5 (clauses_of (php 7 6)))
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "refused");
  (match
     Option.bind
       (J.member "service" (Service.Scheduler.stats_json sch))
       (J.member "autotuned")
   with
   | Some (J.Int n) ->
     Alcotest.(check int) "two cold unbudgeted queries tuned" 2 n
   | _ -> Alcotest.fail "stats_json lacks service.autotuned");
  Service.Scheduler.shutdown sch

let suite =
  [
    Th.case "of_observations pins the published formulas" observations_pinned;
    Th.case "of_formula pins Jeroslow-Wang" of_formula_pinned;
    Th.case "of_formula is deterministic" of_formula_deterministic;
    Th.case "guided answers unchanged" guided_answers_unchanged;
    Th.case "out-of-range seeds ignored" guidance_out_of_range_ignored;
    Th.case "session apply_guidance" session_apply_guidance;
    Th.case "extract pins the feature formulas" extract_pinned;
    Th.case "extract is deterministic" extract_deterministic;
    Th.case "probe density separates chain from chaff" probe_density_regression;
    Th.case "selector engine rules" selector_engine_rules;
    Th.case "selector preprocess rules" selector_preprocess_rules;
    Th.case "selector restart/inprocess/guidance rules"
      selector_restart_inprocess_guidance_rules;
    Th.case "selector reason trail" selector_reason_trail;
    Th.case "select is a pure function" select_pure;
    Th.case "auto agrees with certified answers (300 instances)"
      auto_agrees_with_certified;
    Th.case "auto plan matches the table" auto_plan_matches_table;
    Th.case "auto emits metrics" auto_emits_metrics;
    Th.case "guided sweep agrees" sweep_guided_agrees;
    Th.case "guided BMC agrees" bmc_guided_agrees;
    Th.case "scheduler autotunes cold queries" scheduler_autotune;
  ]
