module P = Sat.Preprocess

let run ?subsumption ?strengthen ?probe_failed_literals f =
  P.run ?subsumption ?strengthen ?probe_failed_literals f

let units_propagated () =
  match run (Th.formula_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ 3; 4 ] ]) with
  | P.Simplified s ->
    Alcotest.(check int) "units" 3 s.P.stats.P.units;
    Alcotest.(check int) "everything satisfied" 0
      (Cnf.Formula.nclauses s.P.formula);
    let m = P.complete_model s (Array.make 4 false) in
    Alcotest.(check bool) "fix applies" true (m.(0) && m.(1) && m.(2))
  | P.Unsat -> Alcotest.fail "not unsat"

let unsat_detected () =
  (match run (Th.formula_of [ [ 1 ]; [ -1 ] ]) with
   | P.Unsat -> ()
   | P.Simplified _ -> Alcotest.fail "expected unsat");
  match run (Th.formula_of [ [ 1 ]; [ -1; 2 ]; [ -2 ] ]) with
  | P.Unsat -> ()
  | P.Simplified _ -> Alcotest.fail "expected chained unsat"

let pure_literals () =
  (* x1 appears only positively *)
  match run (Th.formula_of [ [ 1; 2 ]; [ 1; -2; 3 ]; [ 3; -2 ] ]) with
  | P.Simplified s ->
    Alcotest.(check bool) "pures found" true (s.P.stats.P.pures > 0)
  | P.Unsat -> Alcotest.fail "not unsat"

let subsumption_removes () =
  (* (~1 2) subsumes the longer clauses; mixed polarities keep the pure-
     literal pass from consuming everything before subsumption counts *)
  match
    run ~strengthen:false
      (Th.formula_of [ [ -1; 2 ]; [ -1; 2; 3 ]; [ -1; 2; 4 ]; [ 1; -2 ] ])
  with
  | P.Simplified s ->
    Alcotest.(check int) "subsumed" 2 s.P.stats.P.subsumed
  | P.Unsat -> Alcotest.fail "not unsat"

let strengthening_fires () =
  (* (1 2) strengthens (-1 2 3) to (2 3), which then subsumes (2 3 4) *)
  match run (Th.formula_of [ [ 1; 2 ]; [ -1; 2; 3 ]; [ 2; 3; 4 ] ]) with
  | P.Simplified s ->
    Alcotest.(check bool) "strengthened" true (s.P.stats.P.strengthened > 0)
  | P.Unsat -> Alcotest.fail "not unsat"

let probing_finds_failed_literals () =
  (* assuming -1 propagates a conflict through (1 2)(1 -2), forcing 1;
     every variable occurs in both polarities so pure literals can't
     pre-empt the probe *)
  match
    run ~probe_failed_literals:true
      (Th.formula_of [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 3; 4 ]; [ -3; -4 ] ])
  with
  | P.Simplified s ->
    Alcotest.(check bool) "failed literal" true
      (s.P.stats.P.failed_literals + s.P.stats.P.units > 0);
    let m = P.complete_model s (Array.make 4 false) in
    Alcotest.(check bool) "x1 fixed true" true m.(0)
  | P.Unsat -> Alcotest.fail "unexpected unsat"

(* --- bounded variable elimination -------------------------------------- *)

let bve_eliminates_and_reconstructs () =
  (* x2 has one positive and two negative occurrences; its only
     non-tautological resolvent (1 3) replaces three clauses.  Pures are
     off so elimination is what does the work. *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -2; 3 ]; [ -1; -2 ] ] in
  match P.run ~pures:false f with
  | P.Unsat -> Alcotest.fail "not unsat"
  | P.Simplified s ->
    Alcotest.(check bool) "elimination fired" true (s.P.stats.P.eliminated > 0);
    (match Th.solve_cdcl s.P.formula with
     | Sat.Types.Sat m ->
       let full = P.complete_model s m in
       Alcotest.(check bool) "reconstructed model satisfies original" true
         (Cnf.Formula.eval (fun v -> full.(v)) f)
     | _ -> Alcotest.fail "simplified formula must stay SAT")

let bve_respects_frozen () =
  let f = Th.formula_of [ [ 1; 2 ]; [ -2; 3 ]; [ -1; -2 ] ] in
  match P.run ~pures:false ~frozen:[ 0; 1; 2 ] f with
  | P.Unsat -> Alcotest.fail "not unsat"
  | P.Simplified s ->
    Alcotest.(check int) "nothing eliminated when all vars frozen" 0
      s.P.stats.P.eliminated;
    Alcotest.(check (list (pair int bool))) "no fixes invented" [] s.P.fix

let bve_respects_caps () =
  (* every variable resolves to at least one non-tautological resolvent,
     so a clause cap of 0 must abort every elimination attempt *)
  let f = Th.formula_of [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ -3; 1 ] ] in
  match
    P.run ~subsumption:false ~strengthen:false ~pures:false ~elim_clause_cap:0
      f
  with
  | P.Unsat -> Alcotest.fail "not unsat"
  | P.Simplified s ->
    Alcotest.(check int) "clause cap blocks elimination" 0
      s.P.stats.P.eliminated;
    Alcotest.(check int) "clauses untouched" 4
      (Cnf.Formula.nclauses s.P.formula)

let prop_bve_vs_dpll =
  (* verdicts against an independent DPLL arbiter, and every SAT model
     reconstructed through the elimination stack must satisfy the
     original clauses *)
  QCheck.Test.make ~name:"bve preserves verdicts and reconstructs models"
    ~count:1000
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 11) in
       let nvars = 4 + Sat.Rng.int rng 12 in
       let f = Th.random_cnf rng nvars (2 + Sat.Rng.int rng (4 * nvars)) 4 in
       let dpll, _ = Sat.Dpll.solve f in
       let expected = Th.outcome_sat dpll in
       match P.run f with
       | P.Unsat -> not expected
       | P.Simplified s -> (
           match Th.solve_cdcl s.P.formula with
           | Sat.Types.Sat m ->
             expected
             &&
             let full = P.complete_model s m in
             Cnf.Formula.eval (fun v -> full.(v)) f
           | Sat.Types.Unsat -> not expected
           | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false))

let prop_equisatisfiable_and_model_complete =
  QCheck.Test.make ~name:"preprocessing preserves satisfiability" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
       let rng = Sat.Rng.create (seed + 3) in
       let f = Th.random_cnf rng (3 + Sat.Rng.int rng 8) (3 + Sat.Rng.int rng 30) 4 in
       let expected = Th.outcome_sat (Sat.Brute.solve f) in
       match run ~probe_failed_literals:(seed mod 2 = 0) f with
       | P.Unsat -> not expected
       | P.Simplified s -> (
           match Th.solve_cdcl s.P.formula with
           | Sat.Types.Sat m ->
             expected
             &&
             let full = P.complete_model s m in
             Cnf.Formula.eval (fun v -> full.(v)) f
           | Sat.Types.Unsat -> not expected
           | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> false))

let suite =
  [
    Th.case "units" units_propagated;
    Th.case "unsat detection" unsat_detected;
    Th.case "pure literals" pure_literals;
    Th.case "subsumption" subsumption_removes;
    Th.case "strengthening" strengthening_fires;
    Th.case "failed literal probing" probing_finds_failed_literals;
    Th.case "bve eliminates and reconstructs" bve_eliminates_and_reconstructs;
    Th.case "bve respects frozen" bve_respects_frozen;
    Th.case "bve respects caps" bve_respects_caps;
    Th.qcheck prop_bve_vs_dpll;
    Th.qcheck prop_equisatisfiable_and_model_complete;
  ]
