(** Equivalence-checking verdicts, shared by every CEC engine.

    Lives in its own module so that the engines can depend on each
    other in either direction: {!Equiv} re-exports the type (with its
    constructors) for the established [Equiv.verdict] surface, and the
    fraiging pipeline in {!Sweep} produces the same type without
    depending on {!Equiv}. *)

type t =
  | Equivalent
  | Inequivalent of bool array
      (** a distinguishing input vector, in input order *)
  | Inconclusive of string
      (** resource budget exhausted (SAT) or node limit hit (BDD) *)

val pp : Format.formatter -> t -> unit
