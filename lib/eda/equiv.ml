module N = Circuit.Netlist
module Gate = Circuit.Gate
module Miter = Circuit.Miter

type verdict = Verdict.t =
  | Equivalent
  | Inequivalent of bool array
  | Inconclusive of string

type report = {
  verdict : verdict;
  time_seconds : float;
  sat_stats : Sat.Types.stats option;
  bdd_nodes : int;
}

let extract_vector c1 lit_of_node m =
  (* miter inputs come first and correspond to c1's inputs positionally *)
  Array.init (List.length (N.inputs c1)) (fun i ->
      let l = lit_of_node i in
      let v = m.(Cnf.Lit.var l) in
      if Cnf.Lit.is_pos l then v else not v)

let check_sat ?metrics ?trace ?(config = Sat.Types.default) ?engine
    ?(pipeline = Sat.Solver.no_pipeline) c1 c2 =
  let t0 = Unix.gettimeofday () in
  let f, lit_of_node = Miter.to_cnf c1 c2 in
  let engine =
    match engine with Some e -> e | None -> Sat.Solver.Cdcl config
  in
  let rep = Sat.Solver.solve ?metrics ?trace ~engine ~pipeline f in
  let verdict =
    match rep.Sat.Solver.outcome with
    | Sat.Types.Unsat -> Equivalent
    | Sat.Types.Sat m -> Inequivalent (extract_vector c1 lit_of_node m)
    | Sat.Types.Unsat_assuming _ -> Equivalent
    | Sat.Types.Unknown why -> Inconclusive why
  in
  {
    verdict;
    time_seconds = Unix.gettimeofday () -. t0;
    sat_stats = rep.Sat.Solver.solver_stats;
    bdd_nodes = 0;
  }

let check_rl ?metrics ?trace ?(config = Sat.Types.default) ~depth c1 c2 =
  check_sat ?metrics ?trace ~config
    ~pipeline:{ Sat.Solver.no_pipeline with recursive_learning = depth }
    c1 c2

let node_bdds man c ~var_of_input =
  let values = Array.make (max 1 (N.num_nodes c)) (Bdd.zero man) in
  List.iteri
    (fun i id -> values.(id) <- Bdd.var man (var_of_input i))
    (N.inputs c);
  for id = 0 to N.num_nodes c - 1 do
    match N.node c id with
    | N.Input -> ()
    | N.Const b -> values.(id) <- (if b then Bdd.one man else Bdd.zero man)
    | N.Gate (g, fs) ->
      let ins = List.map (fun f -> values.(f)) fs in
      let fold2 op = function
        | x :: rest -> List.fold_left (op man) x rest
        | [] -> invalid_arg "node_bdds"
      in
      values.(id) <-
        (match g with
         | Gate.And -> fold2 Bdd.and_ ins
         | Gate.Or -> fold2 Bdd.or_ ins
         | Gate.Nand -> Bdd.not_ man (fold2 Bdd.and_ ins)
         | Gate.Nor -> Bdd.not_ man (fold2 Bdd.or_ ins)
         | Gate.Xor -> fold2 Bdd.xor ins
         | Gate.Xnor -> Bdd.not_ man (fold2 Bdd.xor ins)
         | Gate.Not -> Bdd.not_ man (List.hd ins)
         | Gate.Buf -> List.hd ins)
  done;
  values

let check_bdd ?(node_limit = 500_000) c1 c2 =
  let t0 = Unix.gettimeofday () in
  let man = Bdd.manager ~node_limit () in
  let finish verdict =
    {
      verdict;
      time_seconds = Unix.gettimeofday () -. t0;
      sat_stats = None;
      bdd_nodes = Bdd.node_count man;
    }
  in
  if List.length (N.inputs c1) <> List.length (N.inputs c2)
     || List.length (N.outputs c1) <> List.length (N.outputs c2)
  then finish (Inequivalent [||])
  else
    try
      let v1 = node_bdds man c1 ~var_of_input:(fun i -> i) in
      let v2 = node_bdds man c2 ~var_of_input:(fun i -> i) in
      let pairs = List.combine (N.output_ids c1) (N.output_ids c2) in
      let rec compare = function
        | [] -> finish Equivalent
        | (o1, o2) :: rest ->
          if Bdd.equal v1.(o1) v2.(o2) then compare rest
          else begin
            let diff = Bdd.xor man v1.(o1) v2.(o2) in
            let n_inputs = List.length (N.inputs c1) in
            let vec = Array.make n_inputs false in
            (match Bdd.any_sat diff with
             | Some assignment ->
               List.iter
                 (fun (v, b) -> if v < n_inputs then vec.(v) <- b)
                 assignment
             | None -> ());
            finish (Inequivalent vec)
          end
      in
      compare pairs
    with Bdd.Node_limit -> finish (Inconclusive "BDD node limit")

let check_aig ?(config = Sat.Types.default) c1 c2 =
  let t0 = Unix.gettimeofday () in
  let finish ?stats verdict nodes =
    {
      verdict;
      time_seconds = Unix.gettimeofday () -. t0;
      sat_stats = stats;
      bdd_nodes = nodes;
    }
  in
  match Aig.merge_netlists c1 c2 with
  | exception Invalid_argument _ -> finish (Inequivalent [||]) 0
  | m, pairs ->
    let unresolved = List.filter (fun (a, b) -> a <> b) pairs in
    if unresolved = [] then finish Equivalent (Aig.node_count m)
    else begin
      let diff =
        List.fold_left
          (fun acc (a, b) -> Aig.or_ m acc (Aig.xor m a b))
          Aig.const_false unresolved
      in
      let f, lit_of = Aig.to_cnf m in
      Cnf.Formula.add_clause_l f [ lit_of diff ];
      let sess = Sat.Session.of_formula ~config f in
      let outcome = Sat.Session.solve sess in
      let stats = Sat.Session.cumulative_stats sess in
      match outcome with
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
        finish ~stats Equivalent (Aig.node_count m)
      | Sat.Types.Sat model ->
        let n_inputs = List.length (N.inputs c1) in
        let vec =
          Array.init n_inputs (fun i ->
              let l = lit_of (Aig.input m i) in
              let v = model.(Cnf.Lit.var l) in
              if Cnf.Lit.is_pos l then v else not v)
        in
        finish ~stats (Inequivalent vec) (Aig.node_count m)
      | Sat.Types.Unknown why ->
        finish ~stats (Inconclusive why) (Aig.node_count m)
    end

let check_fraig ?metrics ?trace ?config ?words ?seed ?candidate_conflicts
    ?guide c1 c2 =
  let r =
    Sweep.check ?config ?words ?seed ?candidate_conflicts ?guide ?metrics
      ?trace c1 c2
  in
  {
    verdict = r.Sweep.verdict;
    time_seconds = r.Sweep.times.Sweep.total_s;
    sat_stats = r.Sweep.solver_stats;
    bdd_nodes = r.Sweep.stats.Sweep.fraig_nodes;
  }
