module N = Circuit.Netlist
module Gate = Circuit.Gate
module Lit = Cnf.Lit

type path = N.node_id list

let enumerate_paths c ~limit =
  let acc = ref [] and count = ref 0 in
  (* DFS backward from each output, deepest fanin first *)
  let rec descend suffix x =
    if !count < limit then
      match N.node c x with
      | N.Input ->
        acc := (x :: suffix) :: !acc;
        incr count
      | N.Const _ -> ()
      | N.Gate (_, fs) ->
        let ordered =
          List.sort (fun a b -> Int.compare (N.level c b) (N.level c a)) fs
        in
        List.iter (fun w -> descend (x :: suffix) w) ordered
  in
  let outs =
    List.sort
      (fun a b -> Int.compare (N.level c b) (N.level c a))
      (N.output_ids c)
  in
  List.iter (fun o -> descend [] o) outs;
  List.rev !acc

let validate_path c = function
  | [] -> false
  | first :: rest ->
    (match N.node c first with
     | N.Input -> true
     | N.Gate _ | N.Const _ -> false)
    &&
    let rec ok prev = function
      | [] -> true
      | x :: rest -> List.mem prev (N.fanins c x) && ok x rest
    in
    ok first rest

type outcome =
  | Test of bool array * bool array
  | Untestable
  | Aborted of string

(* Per-gate robust side constraints as clause lists over (lit1, lit2)
   node-literal maps; [dir] is the on-path input transition (true =
   rising).  Also asserts exact on-path values. *)
let path_constraints c ~lit1 ~lit2 ~path ~rising emit =
  let unit_eq lit v = emit [ (if v then lit else Lit.negate lit) ] in
  let rec walk dir = function
    | [] | [ _ ] -> ()
    | n_j :: (n_next :: _ as rest) ->
      (match N.node c n_next with
       | N.Gate (g, fs) ->
         let sides = List.filter (fun w -> w <> n_j) fs in
         let steady w =
           (* v1(w) = v2(w) *)
           emit [ lit1 w; Lit.negate (lit2 w) ];
           emit [ Lit.negate (lit1 w); lit2 w ]
         in
         (match g with
          | Gate.And | Gate.Nand ->
            if dir then
              List.iter
                (fun w ->
                   unit_eq (lit1 w) true;
                   unit_eq (lit2 w) true)
                sides
            else List.iter (fun w -> unit_eq (lit2 w) true) sides
          | Gate.Or | Gate.Nor ->
            if not dir then
              List.iter
                (fun w ->
                   unit_eq (lit1 w) false;
                   unit_eq (lit2 w) false)
                sides
            else List.iter (fun w -> unit_eq (lit2 w) false) sides
          | Gate.Xor | Gate.Xnor -> List.iter steady sides
          | Gate.Not | Gate.Buf -> ());
         walk (dir <> Gate.inverting g) rest
       | N.Input | N.Const _ -> invalid_arg "path_constraints: bad path")
  in
  (* exact values along the path: rising j-node has v1=0, v2=1 *)
  let rec values dir = function
    | [] -> ()
    | n :: rest ->
      unit_eq (lit1 n) (not dir);
      unit_eq (lit2 n) dir;
      (match rest with
       | [] -> ()
       | next :: _ ->
         (match N.node c next with
          | N.Gate (g, _) -> values (dir <> Gate.inverting g) rest
          | N.Input | N.Const _ -> invalid_arg "path_constraints"))
  in
  values rising path;
  walk rising path

let extract c lit m =
  List.map (fun id ->
      let l = lit id in
      let v = m.(Lit.var l) in
      if Lit.is_pos l then v else not v)
    (N.inputs c)
  |> Array.of_list

let robust_test ?(config = Sat.Types.default) c ~path ~rising =
  if not (validate_path c path) then invalid_arg "robust_test: invalid path";
  let f = Cnf.Formula.create () in
  let lit1 = Circuit.Encode.encode_into f c in
  let lit2 = Circuit.Encode.encode_into f c in
  path_constraints c ~lit1 ~lit2 ~path ~rising (Cnf.Formula.add_clause_l f);
  let sess = Sat.Session.of_formula ~config f in
  match Sat.Session.solve sess with
  | Sat.Types.Sat m -> Test (extract c lit1 m, extract c lit2 m)
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> Untestable
  | Sat.Types.Unknown why -> Aborted why

type summary = {
  paths : int;
  testable : int;
  untestable : int;
  aborted : int;
  decisions : int;
  conflicts : int;
  time_seconds : float;
}

let test_paths ?(config = Sat.Types.default) ?(incremental = true) c paths =
  let t0 = Unix.gettimeofday () in
  let testable = ref 0 and untestable = ref 0 and aborted = ref 0 in
  let decisions = ref 0 and conflicts = ref 0 in
  if incremental then begin
    (* one session for the whole path list: the two circuit copies are
       encoded once; each (path, direction) query is an activation group
       that is released as soon as the query is answered *)
    let f = Cnf.Formula.create () in
    let lit1 = Circuit.Encode.encode_into f c in
    let lit2 = Circuit.Encode.encode_into f c in
    let sess = Sat.Session.of_formula ~config f in
    List.iter
      (fun path ->
         let tested =
           List.exists
             (fun rising ->
                let act = Sat.Session.new_activation sess in
                path_constraints c ~lit1 ~lit2 ~path ~rising (fun cl ->
                    Sat.Session.add_clause_in sess ~group:act cl);
                let r = Sat.Session.solve ~assumptions:[ act ] sess in
                Sat.Session.release sess act;
                match r with
                | Sat.Types.Sat _ -> true
                | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> false
                | Sat.Types.Unknown _ ->
                  incr aborted;
                  false)
             [ true; false ]
         in
         if tested then incr testable else incr untestable)
      paths;
    let st = Sat.Session.cumulative_stats sess in
    decisions := st.Sat.Types.decisions;
    conflicts := st.Sat.Types.conflicts
  end
  else
    List.iter
      (fun path ->
         let try_dir rising =
           let f = Cnf.Formula.create () in
           let lit1 = Circuit.Encode.encode_into f c in
           let lit2 = Circuit.Encode.encode_into f c in
           path_constraints c ~lit1 ~lit2 ~path ~rising
             (Cnf.Formula.add_clause_l f);
           let sess = Sat.Session.of_formula ~config f in
           let r = Sat.Session.solve sess in
           let st = Sat.Session.cumulative_stats sess in
           decisions := !decisions + st.Sat.Types.decisions;
           conflicts := !conflicts + st.Sat.Types.conflicts;
           match r with
           | Sat.Types.Sat _ -> true
           | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> false
           | Sat.Types.Unknown _ ->
             incr aborted;
             false
         in
         if try_dir true || try_dir false then incr testable
         else incr untestable)
      paths;
  {
    paths = List.length paths;
    testable = !testable;
    untestable = !untestable;
    aborted = !aborted;
    decisions = !decisions;
    conflicts = !conflicts;
    time_seconds = Unix.gettimeofday () -. t0;
  }
