module N = Circuit.Netlist
module Gate = Circuit.Gate
module Lit = Cnf.Lit

type encoding = {
  formula : Cnf.Formula.t;
  value_lit : N.node_id -> Lit.t;
  stable_by : N.node_id -> int -> Lit.t;
  horizon : int;
}

let weighted_levels ~gate_delay c =
  let levels = Array.make (max 1 (N.num_nodes c)) 0 in
  for id = 0 to N.num_nodes c - 1 do
    levels.(id) <-
      (match N.node c id with
       | N.Input | N.Const _ -> 0
       | N.Gate (g, fs) ->
         let d = gate_delay g in
         if d < 1 then invalid_arg "Delay: gate delays must be positive";
         d + List.fold_left (fun m f -> max m levels.(f)) 0 fs)
  done;
  levels

let weighted_level ?(gate_delay = fun _ -> 1) c x =
  (weighted_levels ~gate_delay c).(x)

let encode_stability ?(gate_delay = fun _ -> 1) c =
  let f = Cnf.Formula.create () in
  let value_lit = Circuit.Encode.encode_into f c in
  let const_true = Lit.pos (Cnf.Formula.fresh_var f) in
  Cnf.Formula.add_clause_l f [ const_true ];
  let const_false = Lit.negate const_true in
  let levels = weighted_levels ~gate_delay c in
  let horizon =
    List.fold_left (fun m (_, o) -> max m levels.(o)) 0 (N.outputs c)
  in
  let memo : (int * int, Lit.t) Hashtbl.t = Hashtbl.create 256 in
  let fresh () = Lit.pos (Cnf.Formula.fresh_var f) in
  let define out ins g =
    List.iter (Cnf.Formula.add_clause f) (Circuit.Encode.gate_clauses ~out ~ins g)
  in
  let rec stable_by x t =
    match N.node c x with
    | N.Input | N.Const _ -> if t >= 0 then const_true else const_false
    | N.Gate (g, fs) ->
      let lvl = levels.(x) in
      if t >= lvl then const_true
      else if t < gate_delay g then const_false
      else (
        match Hashtbl.find_opt memo (x, t) with
        | Some l -> l
        | None ->
          let s = fresh () in
          Hashtbl.add memo (x, t) s;
          let d = gate_delay g in
          let ins_stable = List.map (fun w -> stable_by w (t - d)) fs in
          let all =
            match ins_stable with
            | [ one ] -> one
            | many ->
              let a = fresh () in
              define a many Gate.And;
              a
          in
          let ctrl_terms =
            match Gate.controlling g with
            | None -> []
            | Some cval ->
              List.map2
                (fun w sw ->
                   let vw = value_lit w in
                   let want = if cval then vw else Lit.negate vw in
                   let term = fresh () in
                   define term [ sw; want ] Gate.And;
                   term)
                fs ins_stable
          in
          (match all :: ctrl_terms with
           | [ only ] ->
             (* s <-> only *)
             define s [ only ] Gate.Buf
           | terms -> define s terms Gate.Or);
          s)
  in
  (* materialise every stability variable now: solvers snapshot the
     formula, so nothing may be allocated lazily afterwards *)
  for x = 0 to N.num_nodes c - 1 do
    for t = 0 to levels.(x) do
      ignore (stable_by x t)
    done
  done;
  { formula = f; value_lit; stable_by; horizon }

let topological_delay c x = N.level c x

let true_delay ?(config = Sat.Types.default) ?(gate_delay = fun _ -> 1) c o =
  let enc = encode_stability ~gate_delay c in
  (* the descending sweep over T reuses one session per output *)
  let sess = Sat.Session.of_formula ~config enc.formula in
  let lvl = weighted_level ~gate_delay c o in
  let calls = ref 0 in
  (* largest T with some vector leaving o unstable at T-1 *)
  let rec search t =
    if t < 1 then 0
    else begin
      incr calls;
      match
        Sat.Session.solve
          ~assumptions:[ Lit.negate (enc.stable_by o (t - 1)) ]
          sess
      with
      | Sat.Types.Sat _ -> t
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> search (t - 1)
      | Sat.Types.Unknown _ -> t (* conservative: report the bound *)
    end
  in
  let result = search lvl in
  (result, !calls)

type output_report = {
  output : string;
  topological : int;
  true_floating : int;
  false_path : bool;
}

let report ?(config = Sat.Types.default) c =
  List.map
    (fun (name, o) ->
       let topo = topological_delay c o in
       let tru, _ = true_delay ~config c o in
       { output = name; topological = topo; true_floating = tru;
         false_path = tru < topo })
    (N.outputs c)
