(** Sequential equivalence checking on the product machine — the natural
    composition of the paper's CEC (Sec. 3) and BMC ([5]) applications.

    Both machines run in lockstep over shared primary inputs; the product
    property says the outputs (and, when the state encodings correspond,
    the states) agree.  With register correspondence the property is
    1-inductive whenever the next-state logic is combinationally
    equivalent, giving an unbounded proof; otherwise the checker falls
    back to bounded exploration. *)

type result =
  | Equivalent of int
      (** proven for all input sequences (k-induction closed at k) *)
  | Bounded_equivalent of int
      (** no difference within the bound; not proven beyond it *)
  | Different of bool array list
      (** a distinguishing input sequence (one vector per cycle) *)

val check :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config ->
  ?max_k:int ->
  ?bound:int ->
  ?jobs:int ->
  Circuit.Sequential.t -> Circuit.Sequential.t -> result
(** [max_k] (default 4) bounds the induction attempt; [bound]
    (default 16) the fallback bounded search.  Raises
    [Invalid_argument] when primary-input or output counts differ.
    With [jobs >= 2] the induction chain and the bounded search run as
    a strategy race on separate domains — a proof answers [Equivalent]
    without waiting for the bounded sweep, a counterexample answers
    [Different] without waiting for the induction chain; the
    combination is order-independent because both cannot exist.
    [metrics] observes the underlying induction and BMC sessions
    (per-query solver deltas plus the [bmc/*] instruments of the
    bounded fallback); [trace] is attached to the bounded fallback's
    solvers. *)
