module N = Circuit.Netlist
module Lit = Cnf.Lit

type query = {
  victim : N.node_id;
  aggressor : N.node_id;
  window : int * int;
}

type verdict =
  | Noise of bool array * bool array * int
  | Safe
  | Unknown of string

let analyze ?(config = Sat.Types.default) c q =
  (* copy 1: the settled pre-transition vector; copy 2: the stability
     encoding of the post-transition vector *)
  let enc2 = Delay.encode_stability c in
  let f = enc2.Delay.formula in
  let lit1 = Circuit.Encode.encode_into f c in
  let lit2 = enc2.Delay.value_lit in
  (* opposite switching: victim rises, aggressor falls *)
  Cnf.Formula.add_clause_l f [ Lit.negate (lit1 q.victim) ];
  Cnf.Formula.add_clause_l f [ lit2 q.victim ];
  Cnf.Formula.add_clause_l f [ lit1 q.aggressor ];
  Cnf.Formula.add_clause_l f [ Lit.negate (lit2 q.aggressor) ];
  (* the scan over overlap instants reuses one session *)
  let sess = Sat.Session.of_formula ~config f in
  let lo, hi = q.window in
  let lo = max lo 0 in
  let hi = min hi enc2.Delay.horizon in
  let extract m lit =
    List.map
      (fun id ->
         let l = lit id in
         let v = m.(Lit.var l) in
         if Lit.is_pos l then v else not v)
      (N.inputs c)
    |> Array.of_list
  in
  (* overlap at t: neither net stable by t under vector 2 *)
  let rec scan t =
    if t > hi then Safe
    else
      match
        Sat.Session.solve
          ~assumptions:
            [ Lit.negate (enc2.Delay.stable_by q.victim t);
              Lit.negate (enc2.Delay.stable_by q.aggressor t) ]
          sess
      with
      | Sat.Types.Sat m -> Noise (extract m lit1, extract m lit2, t)
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> scan (t + 1)
      | Sat.Types.Unknown why -> Unknown why
  in
  scan lo

let coupled_pairs c ~max_level_gap =
  let gates = ref [] in
  for id = N.num_nodes c - 1 downto 0 do
    match N.node c id with
    | N.Gate _ -> gates := id :: !gates
    | N.Input | N.Const _ -> ()
  done;
  let gs = !gates in
  List.concat_map
    (fun a ->
       List.filter_map
         (fun b ->
            if a < b && abs (N.level c a - N.level c b) <= max_level_gap
            then Some (a, b)
            else None)
         gs)
    gs
