module N = Circuit.Netlist
module Lit = Cnf.Lit

type stats = {
  simulation_words : int;
  candidate_pairs : int;
  proved : int;
  refuted : int;
  sat_calls : int;
  decisions : int;
  conflicts : int;
}

type report = {
  verdict : Equiv.verdict;
  stats : stats;
  time_seconds : float;
}

let mask = (1 lsl Circuit.Simulate.word_width) - 1

(* the merged (two circuits, shared inputs) netlist plus the original
   output correspondences *)
let merge c1 c2 =
  let m = N.create () in
  let shared =
    List.mapi (fun i _ -> N.add_input ~name:(Printf.sprintf "pi%d" i) m)
      (N.inputs c1)
  in
  let input_map ins =
    let table = Hashtbl.create 16 in
    List.iter2 (fun src dst -> Hashtbl.replace table src dst) ins shared;
    fun id -> Hashtbl.find_opt table id
  in
  let map1 = N.import c1 ~into:m ~map_node:(input_map (N.inputs c1)) in
  let map2 = N.import c2 ~into:m ~map_node:(input_map (N.inputs c2)) in
  let pairs =
    List.map2
      (fun a b -> (map1.(a), map2.(b)))
      (N.output_ids c1) (N.output_ids c2)
  in
  (m, pairs)

(* signatures: packed simulation words per node, newest first; the
   canonical key complements so that a node and its inverse collide *)
let canonical sig_ =
  match sig_ with
  | [] -> ([], false)
  | w :: _ ->
    if w land 1 = 1 then (List.map (fun x -> lnot x land mask) sig_, true)
    else (sig_, false)

let check ?(config = Sat.Types.default) ?(words = 4) ?(seed = 77) c1 c2 =
  let t0 = Unix.gettimeofday () in
  let fail_stats =
    { simulation_words = 0; candidate_pairs = 0; proved = 0; refuted = 0;
      sat_calls = 0; decisions = 0; conflicts = 0 }
  in
  if List.length (N.inputs c1) <> List.length (N.inputs c2)
     || List.length (N.outputs c1) <> List.length (N.outputs c2)
  then
    { verdict = Equiv.Inequivalent [||]; stats = fail_stats;
      time_seconds = Unix.gettimeofday () -. t0 }
  else begin
    let m, out_pairs = merge c1 c2 in
    let n = N.num_nodes m in
    let enc = Circuit.Encode.encode m in
    let lit x = enc.Circuit.Encode.lit_of_node x in
    (* one session for the whole sweep: every candidate-pair query and
       every merge clause reuses the same learned-clause database *)
    let sess = Sat.Session.of_formula ~config enc.Circuit.Encode.formula in
    let n_inputs = List.length (N.inputs m) in
    (* initial random simulation *)
    let rng = Sat.Rng.create seed in
    let sigs = Array.make (max 1 n) [] in
    let sim_words = ref 0 in
    let add_simulation node_bits =
      incr sim_words;
      for x = 0 to n - 1 do
        sigs.(x) <- node_bits x :: sigs.(x)
      done
    in
    for _ = 1 to words do
      let ws = Circuit.Simulate.random_words rng n_inputs in
      let values = Circuit.Simulate.parallel_all m ws in
      add_simulation (fun x -> values.(x))
    done;
    (* union-find with complementation phases *)
    let parent = Array.init (max 1 n) (fun x -> x) in
    let phase = Array.make (max 1 n) false in
    let rec find x =
      if parent.(x) = x then (x, false)
      else begin
        let r, p = find parent.(x) in
        parent.(x) <- r;
        phase.(x) <- phase.(x) <> p;
        (r, phase.(x))
      end
    in
    let proved = ref 0 and refuted = ref 0 and pairs_tried = ref 0 in
    let sat_calls = ref 0 in
    (* one implication direction: rep=a-val forces n=b-val *)
    let unsat_under assumptions =
      incr sat_calls;
      match Sat.Session.solve ~assumptions sess with
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> `Unsat
      | Sat.Types.Sat model -> `Sat model
      | Sat.Types.Unknown _ -> `Unknown
    in
    let prove_pair rep x pol =
      (* conjecture: x = rep xor pol *)
      let lr = lit rep and lx = lit x in
      let lx' = if pol then Lit.negate lx else lx in
      incr pairs_tried;
      match unsat_under [ lr; Lit.negate lx' ] with
      | `Sat model -> `Refuted model
      | `Unknown -> `Unknown
      | `Unsat -> (
          match unsat_under [ Lit.negate lr; lx' ] with
          | `Sat model -> `Refuted model
          | `Unknown -> `Unknown
          | `Unsat ->
            Sat.Session.add_clause sess [ Lit.negate lr; lx' ];
            Sat.Session.add_clause sess [ lr; Lit.negate lx' ];
            `Proved)
    in
    let refine_with_model model =
      (* a counterexample distinguishes many pairs at once: fold the
         model in as one more signature bit-pattern *)
      add_simulation (fun x ->
          let l = lit x in
          let v = model.(Lit.var l) in
          if (if Lit.is_pos l then v else not v) then mask else 0)
    in
    let round () =
      let classes = Hashtbl.create 64 in
      for x = n - 1 downto 0 do
        let key, _ = canonical sigs.(x) in
        Hashtbl.replace classes key (x :: Option.value ~default:[]
                                       (Hashtbl.find_opt classes key))
      done;
      let progress = ref false in
      Hashtbl.iter
        (fun _ members ->
           match members with
           | [] | [ _ ] -> ()
           | rep0 :: rest ->
             List.iter
               (fun x ->
                  let r_rep, p_rep = find rep0 in
                  let r_x, p_x = find x in
                  if r_rep <> r_x then begin
                    (* recheck signatures: a counterexample from earlier
                       in this round may already distinguish them *)
                    let _, comp_rep = canonical sigs.(rep0) in
                    let _, comp_x = canonical sigs.(x) in
                    let key_rep, _ = canonical sigs.(rep0) in
                    let key_x, _ = canonical sigs.(x) in
                    if key_rep = key_x then begin
                      let pol = comp_rep <> comp_x in
                      (* polarity between the union-find roots *)
                      let root_pol = pol <> p_rep <> p_x in
                      match prove_pair r_rep r_x root_pol with
                      | `Proved ->
                        parent.(r_x) <- r_rep;
                        phase.(r_x) <- root_pol;
                        incr proved;
                        progress := true
                      | `Refuted model ->
                        refine_with_model model;
                        incr refuted;
                        progress := true
                      | `Unknown -> ()
                    end
                  end)
               rest)
        classes;
      !progress
    in
    let rounds = ref 0 in
    while round () && !rounds < 20 do
      incr rounds
    done;
    (* final output comparison *)
    let rec outputs_equal = function
      | [] -> Equiv.Equivalent
      | (a, b) :: rest ->
        let r_a, p_a = find a and r_b, p_b = find b in
        if r_a = r_b && p_a = p_b then outputs_equal rest
        else begin
          let la = lit a and lb = lit b in
          let cex model =
            Array.init n_inputs (fun i ->
                let l = lit i in
                let v = model.(Cnf.Lit.var l) in
                if Cnf.Lit.is_pos l then v else not v)
          in
          match unsat_under [ la; Lit.negate lb ] with
          | `Sat model -> Equiv.Inequivalent (cex model)
          | `Unknown -> Equiv.Inconclusive "budget"
          | `Unsat -> (
              match unsat_under [ Lit.negate la; lb ] with
              | `Sat model -> Equiv.Inequivalent (cex model)
              | `Unknown -> Equiv.Inconclusive "budget"
              | `Unsat -> outputs_equal rest)
        end
    in
    let verdict = outputs_equal out_pairs in
    let st = Sat.Session.cumulative_stats sess in
    {
      verdict;
      stats =
        {
          simulation_words = !sim_words;
          candidate_pairs = !pairs_tried;
          proved = !proved;
          refuted = !refuted;
          sat_calls = !sat_calls;
          decisions = st.Sat.Types.decisions;
          conflicts = st.Sat.Types.conflicts;
        };
      time_seconds = Unix.gettimeofday () -. t0;
    }
  end
