module N = Circuit.Netlist
module Lit = Cnf.Lit
module Scnf = Aig.Session_cnf

type phase_times = {
  simulate_s : float;
  refine_s : float;
  prove_s : float;
  total_s : float;
}

type stats = {
  aig_nodes : int;
  fraig_nodes : int;
  simulation_words : int;
  classes : int;
  candidates : int;
  merges : int;
  refuted : int;
  skipped : int;
  refinement_rounds : int;
  sat_calls : int;
  decisions : int;
  conflicts : int;
}

type report = {
  verdict : Verdict.t;
  stats : stats;
  times : phase_times;
  solver_stats : Sat.Types.stats option;
}

let word_mask = (1 lsl Circuit.Simulate.word_width) - 1

let empty_stats =
  { aig_nodes = 0; fraig_nodes = 0; simulation_words = 0; classes = 0;
    candidates = 0; merges = 0; refuted = 0; skipped = 0;
    refinement_rounds = 0; sat_calls = 0; decisions = 0; conflicts = 0 }

let check ?(config = Sat.Types.default) ?(words = 4) ?(seed = 77)
    ?(candidate_conflicts = 20_000) ?(jobs = 1) ?(guide = false) ?metrics
    ?trace c1 c2 =
  let t_start = Unix.gettimeofday () in
  let words = max 1 words in
  let sim_t = ref 0. and refine_t = ref 0. and prove_t = ref 0. in
  let timed acc name f =
    let t0 = Unix.gettimeofday () in
    let r =
      match metrics with Some m -> Sat.Metrics.time m name f | None -> f ()
    in
    acc := !acc +. (Unix.gettimeofday () -. t0);
    r
  in
  let finish ?solver_stats verdict stats =
    let total = Unix.gettimeofday () -. t_start in
    Option.iter
      (fun m ->
         let add name v = Sat.Metrics.incr ~by:v (Sat.Metrics.counter m name) in
         add "sweep/classes" stats.classes;
         add "sweep/candidates" stats.candidates;
         add "sweep/merges" stats.merges;
         add "sweep/refuted" stats.refuted;
         add "sweep/skipped" stats.skipped;
         add "sweep/sat_calls" stats.sat_calls;
         add "sweep/refinement_rounds" stats.refinement_rounds;
         add "sweep/simulation_words" stats.simulation_words;
         Sat.Metrics.set_gauge
           (Sat.Metrics.gauge m "sweep/aig_nodes")
           (float_of_int stats.aig_nodes);
         Sat.Metrics.set_gauge
           (Sat.Metrics.gauge m "sweep/fraig_nodes")
           (float_of_int stats.fraig_nodes))
      metrics;
    {
      verdict;
      stats;
      times =
        { simulate_s = !sim_t; refine_s = !refine_t; prove_s = !prove_t;
          total_s = total };
      solver_stats;
    }
  in
  if List.length (N.inputs c1) <> List.length (N.inputs c2)
     || List.length (N.outputs c1) <> List.length (N.outputs c2)
  then finish (Verdict.Inequivalent [||]) empty_stats
  else begin
    (* 1. structural phase: hash both circuits into one AIG over shared
       inputs (common logic merges for free, the two-level rules do a
       bounded cleanup) *)
    let old_man, out_pairs = Aig.merge_netlists c1 c2 in
    let n_old = Aig.node_count old_man in
    let n_inputs = List.length (N.inputs c1) in
    let rng = Sat.Rng.create seed in
    (* 2. the functionally reduced AIG under construction, and the lazy
       per-node CNF session behind the candidate proofs *)
    let nm = Aig.create () in
    for _ = 1 to n_inputs do ignore (Aig.add_input nm) done;
    let scnf = Scnf.create ~config nm in
    let sess = Scnf.session scnf in
    Option.iter (fun m -> Sat.Session.attach_metrics sess m) metrics;
    Option.iter (fun tr -> Sat.Session.set_tracer sess (Some tr)) trace;
    (* input variables exist up front so counterexample models always
       cover the primary inputs *)
    let input_lits =
      Array.init n_inputs (fun i -> Scnf.lit_of scnf (Aig.input nm i))
    in
    (* --- signatures: packed simulation words per fraig node ------------- *)
    let cap = ref (max 64 (2 * n_old)) in
    let sigs = ref (Array.make !cap [||]) in
    let merged : Aig.lit option array ref = ref (Array.make !cap None) in
    let seen = ref (Array.make !cap false) in
    let fanout = ref (Array.make !cap 0) in
    let grow_to n =
      if n > !cap then begin
        let c = max n (2 * !cap) in
        let s = Array.make c [||] in
        Array.blit !sigs 0 s 0 !cap;
        let mg = Array.make c None in
        Array.blit !merged 0 mg 0 !cap;
        let sn = Array.make c false in
        Array.blit !seen 0 sn 0 !cap;
        let fo = Array.make c 0 in
        Array.blit !fanout 0 fo 0 !cap;
        sigs := s;
        merged := mg;
        seen := sn;
        fanout := fo;
        cap := c
      end
    in
    (* fanout watermark: nodes below [fo_known] have contributed their
       fanin references to the counts *)
    let fo_known = ref 0 in
    let account_fanouts () =
      let n = Aig.node_count nm in
      grow_to n;
      for v = !fo_known to n - 1 do
        match Aig.view nm v with
        | Aig.And (a, b) ->
          let fo = !fanout in
          fo.(Aig.node_of a) <- fo.(Aig.node_of a) + 1;
          fo.(Aig.node_of b) <- fo.(Aig.node_of b) + 1
        | Aig.Const | Aig.Input _ -> ()
      done;
      fo_known := n
    in
    let popcount w =
      let rec go w acc =
        if w = 0 then acc else go (w lsr 1) (acc + (w land 1))
      in
      go w 0
    in
    (* seed the session's branching heuristic for variables the lazy CNF
       allocated since the last call: signal probability straight from
       the sweep's own simulation signatures, fanout from the counts
       above (docs/TUNING.md "Seeding from observations") *)
    let apply_guide nwords =
      if guide then begin
        account_fanouts ();
        Scnf.guide scnf
          ~prob_of:(fun id ->
            let s = (!sigs).(id) in
            let n = min nwords (Array.length s) in
            if n = 0 then 0.5
            else begin
              let ones = ref 0 in
              for w = 0 to n - 1 do
                ones := !ones + popcount s.(w)
              done;
              float_of_int !ones
              /. float_of_int (n * Circuit.Simulate.word_width)
            end)
          ~fanout_of:(fun id -> (!fanout).(id))
      end
    in
    let nwords = ref 0 in
    let sim_words_count = ref 0 in
    let append_sim_word input_word =
      let vals = Aig.sim_words nm input_word in
      grow_to (Array.length vals);
      for id = 0 to Array.length vals - 1 do
        let old = (!sigs).(id) in
        let a = Array.make (!nwords + 1) 0 in
        Array.blit old 0 a 0 !nwords;
        a.(!nwords) <- vals.(id);
        (!sigs).(id) <- a
      done;
      incr nwords;
      incr sim_words_count
    in
    let compute_sig v =
      match Aig.view nm v with
      | Aig.And (a, b) ->
        let sa = (!sigs).(Aig.node_of a) and sb = (!sigs).(Aig.node_of b) in
        let ca = Aig.is_complemented a and cb = Aig.is_complemented b in
        Array.init !nwords (fun w ->
            let va = if ca then lnot sa.(w) land word_mask else sa.(w) in
            let vb = if cb then lnot sb.(w) land word_mask else sb.(w) in
            va land vb)
      | Aig.Const | Aig.Input _ -> assert false
    in
    let phase id = ((!sigs).(id)).(0) land 1 = 1 in
    let canon id =
      let a = (!sigs).(id) in
      let ph = a.(0) land 1 = 1 in
      let rec go w =
        if w >= !nwords then []
        else (if ph then lnot a.(w) land word_mask else a.(w)) :: go (w + 1)
      in
      go 0
    in
    (* --- candidate classes --------------------------------------------- *)
    let table : (int list, int list ref) Hashtbl.t = Hashtbl.create 256 in
    let inserted = ref [] in
    let dirty = ref false in
    let classes_formed = ref 0 in
    (* a class counts once its representative meets its first challenger
       (merged challengers never enter the bucket, so bucket size alone
       undercounts) *)
    let challenged = Hashtbl.create 64 in
    let insert v =
      let key = canon v in
      match Hashtbl.find_opt table key with
      | Some b -> b := !b @ [ v ]
      | None -> Hashtbl.replace table key (ref [ v ])
    in
    let register v =
      inserted := v :: !inserted;
      insert v
    in
    let rebuild () =
      Hashtbl.reset table;
      List.iter
        (fun v -> if (!merged).(v) = None then insert v)
        (List.rev !inserted)
    in
    let lookup v =
      if !dirty then begin
        timed refine_t "sweep/refine" rebuild;
        dirty := false
      end;
      Hashtbl.find_opt table (canon v)
    in
    (* --- counters ------------------------------------------------------ *)
    let candidates = ref 0 and merges = ref 0 and refuted = ref 0 in
    let skipped = ref 0 and rounds = ref 0 and sat_calls = ref 0 in
    let solve_with ?max_conflicts assumptions =
      incr sat_calls;
      timed prove_t "sweep/prove" (fun () ->
          Sat.Session.solve ~assumptions ?max_conflicts sess)
    in
    (* a counterexample becomes one more simulation word: its pattern in
       bit 0, fresh random patterns in the remaining 61 bits *)
    let refine model =
      incr rounds;
      timed sim_t "sweep/simulate" (fun () ->
          let word = Circuit.Simulate.random_words rng n_inputs in
          for i = 0 to n_inputs - 1 do
            let bit =
              let l = input_lits.(i) in
              let var = Lit.var l in
              if var < Array.length model then
                if Lit.is_pos l then model.(var) else not model.(var)
              else Sat.Rng.bool rng
            in
            word.(i) <- word.(i) land lnot 1 lor (if bit then 1 else 0)
          done;
          append_sim_word word);
      dirty := true
    in
    let prove r v pol =
      incr candidates;
      let lr = Scnf.lit_of scnf (Aig.of_node r) in
      let lv = Scnf.lit_of scnf (Aig.of_node v) in
      let lv' = if pol then Lit.negate lv else lv in
      let acts = Scnf.assumptions scnf [ Aig.of_node r; Aig.of_node v ] in
      apply_guide !nwords;
      let query extra =
        match solve_with ~max_conflicts:candidate_conflicts (extra @ acts) with
        | Sat.Types.Sat model -> `Sat model
        | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> `Unsat
        | Sat.Types.Unknown _ -> `Unknown
      in
      match query [ lr; Lit.negate lv' ] with
      | `Sat model -> `Refuted model
      | `Unknown -> `Unknown
      | `Unsat -> (
          match query [ Lit.negate lr; lv' ] with
          | `Sat model -> `Refuted model
          | `Unknown -> `Unknown
          | `Unsat -> `Proved)
    in
    (* prove-or-split loop for one fresh node; every refutation strictly
       separates the node from its current representative, so this
       terminates *)
    let rec classify v =
      match lookup v with
      | Some bucket -> (
          match
            List.find_opt (fun r -> r <> v && (!merged).(r) = None) !bucket
          with
          | Some r -> (
              if not (Hashtbl.mem challenged r) then begin
                Hashtbl.add challenged r ();
                incr classes_formed
              end;
              let pol = phase v <> phase r in
              match prove r v pol with
              | `Proved ->
                incr merges;
                let rt = Aig.of_node r in
                let target = if pol then Aig.neg rt else rt in
                (!merged).(v) <- Some target;
                (* the merged node is dead: drop its clause group (the
                   session retention pass also sheds learned clauses
                   polluted by it) *)
                Scnf.release scnf (Aig.of_node v);
                Some target
              | `Refuted model ->
                incr refuted;
                refine model;
                classify v
              | `Unknown ->
                incr skipped;
                register v;
                None)
          | None ->
            register v;
            None)
      | None ->
        register v;
        None
    in
    (* merged-away nodes can resurface through a structural-hash hit *)
    let rec resolve e =
      match (!merged).(Aig.node_of e) with
      | Some t -> resolve (if Aig.is_complemented e then Aig.neg t else t)
      | None -> e
    in
    (* 3. seed the classes: random simulation over constant and inputs *)
    timed sim_t "sweep/simulate" (fun () ->
        for _ = 1 to words do
          append_sim_word (Circuit.Simulate.random_words rng n_inputs)
        done);
    grow_to (Aig.node_count nm);
    timed refine_t "sweep/refine" (fun () ->
        for id = 0 to Aig.node_count nm - 1 do
          (!seen).(id) <- true;
          register id
        done);
    apply_guide !nwords;
    (* 4. fraig loop: rebuild the merged AIG inputs-outward over
       representatives, proving or splitting every candidate *)
    let repr = Array.make (max 1 n_old) Aig.const_false in
    let map_edge l =
      let e = repr.(Aig.node_of l) in
      if Aig.is_complemented l then Aig.neg e else e
    in
    let known = ref (Aig.node_count nm) in
    for id = 0 to n_old - 1 do
      match Aig.view old_man id with
      | Aig.Const -> repr.(id) <- Aig.const_true
      | Aig.Input k -> repr.(id) <- Aig.input nm k
      | Aig.And (a, b) ->
        let cand = Aig.and_ nm (map_edge a) (map_edge b) in
        let nnow = Aig.node_count nm in
        if nnow > !known then begin
          grow_to nnow;
          timed sim_t "sweep/simulate" (fun () ->
              for v = !known to nnow - 1 do
                (!sigs).(v) <- compute_sig v
              done);
          known := nnow
        end;
        let e = resolve cand in
        let v = Aig.node_of e in
        repr.(id) <-
          (match Aig.view nm v with
           | Aig.And _ when not (!seen).(v) ->
             (!seen).(v) <- true;
             (match classify v with
              | Some t -> if Aig.is_complemented e then Aig.neg t else t
              | None -> e)
           | Aig.And _ | Aig.Const | Aig.Input _ -> e)
    done;
    (* 5. outputs: pairs usually collapse to the same fraig edge; the
       residue falls to final queries under the caller's budgets only *)
    let remaining =
      List.filter_map
        (fun (a, b) ->
           let ea = resolve (map_edge a) and eb = resolve (map_edge b) in
           if ea = eb then None else Some (ea, eb))
        out_pairs
    in
    let cex model =
      Array.init n_inputs (fun i ->
          let l = input_lits.(i) in
          let var = Lit.var l in
          var < Array.length model
          && (if Lit.is_pos l then model.(var) else not model.(var)))
    in
    (* With [jobs > 1] the final queries run under the candidate budget
       and a residual hard pair escalates to cube-and-conquer on a
       standalone cone CNF: the two output cones of the fraiged AIG are
       Tseitin-encoded over the primary inputs (vars 0..n_inputs-1),
       the disequality of the pair asserted, and the miter decomposed
       across the worker domains. *)
    let cone_miter ea eb =
      let f = Cnf.Formula.create ~nvars:n_inputs () in
      let var_of = Hashtbl.create 64 in
      let rec visit id =
        match Hashtbl.find_opt var_of id with
        | Some v -> v
        | None ->
          let v =
            match Aig.view nm id with
            | Aig.Input k -> k
            | Aig.Const -> Cnf.Formula.fresh_var f
            | Aig.And (a, b) ->
              let la = lit_of_edge a and lb = lit_of_edge b in
              let v = Cnf.Formula.fresh_var f in
              Cnf.Formula.add_clause_l f [ Lit.neg_of_var v; la ];
              Cnf.Formula.add_clause_l f [ Lit.neg_of_var v; lb ];
              Cnf.Formula.add_clause_l f
                [ Lit.pos v; Lit.negate la; Lit.negate lb ];
              v
          in
          Hashtbl.replace var_of id v;
          v
      and lit_of_edge e =
        let v = visit (Aig.node_of e) in
        if Aig.is_complemented e then Lit.neg_of_var v else Lit.pos v
      in
      let a = lit_of_edge ea and b = lit_of_edge eb in
      (* pin the constant node in case a cone reaches it *)
      if Hashtbl.mem var_of (Aig.node_of Aig.const_true) then
        Cnf.Formula.add_clause_l f [ lit_of_edge Aig.const_true ];
      Cnf.Formula.add_clause_l f [ a; b ];
      Cnf.Formula.add_clause_l f [ Lit.negate a; Lit.negate b ];
      f
    in
    let conquer_pair ea eb =
      Option.iter
        (fun m -> Sat.Metrics.incr (Sat.Metrics.counter m "sweep/cube_fallbacks"))
        metrics;
      let options =
        { Sat.Conquer.default_options with
          Sat.Conquer.jobs;
          config = { config with Sat.Types.proof_logging = false };
          metrics;
          trace }
      in
      timed prove_t "sweep/prove" (fun () ->
          (Sat.Conquer.solve ~options (cone_miter ea eb)).Sat.Conquer.outcome)
    in
    let final_budget = if jobs > 1 then Some candidate_conflicts else None in
    let rec outputs_equal = function
      | [] -> Verdict.Equivalent
      | (ea, eb) :: rest -> (
          let fallback () =
            match conquer_pair ea eb with
            | Sat.Types.Sat model ->
              Verdict.Inequivalent
                (Array.init n_inputs (fun i ->
                     i < Array.length model && model.(i)))
            | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
              outputs_equal rest
            | Sat.Types.Unknown why -> Verdict.Inconclusive why
          in
          let la = Scnf.lit_of scnf ea and lb = Scnf.lit_of scnf eb in
          let acts = Scnf.assumptions scnf [ ea; eb ] in
          apply_guide !nwords;
          match solve_with ?max_conflicts:final_budget
                  (la :: Lit.negate lb :: acts)
          with
          | Sat.Types.Sat model -> Verdict.Inequivalent (cex model)
          | Sat.Types.Unknown _ when jobs > 1 -> fallback ()
          | Sat.Types.Unknown _ -> Verdict.Inconclusive "budget"
          | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> (
              match solve_with ?max_conflicts:final_budget
                      (Lit.negate la :: lb :: acts)
              with
              | Sat.Types.Sat model -> Verdict.Inequivalent (cex model)
              | Sat.Types.Unknown _ when jobs > 1 -> fallback ()
              | Sat.Types.Unknown _ -> Verdict.Inconclusive "budget"
              | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
                outputs_equal rest))
    in
    let verdict = outputs_equal remaining in
    let st = Sat.Session.cumulative_stats sess in
    finish ~solver_stats:st verdict
      {
        aig_nodes = n_old;
        fraig_nodes = Aig.node_count nm - !merges;
        simulation_words = !sim_words_count;
        classes = !classes_formed;
        candidates = !candidates;
        merges = !merges;
        refuted = !refuted;
        skipped = !skipped;
        refinement_rounds = !rounds;
        sat_calls = !sat_calls;
        decisions = st.Sat.Types.decisions;
        conflicts = st.Sat.Types.conflicts;
      }
  end
