module N = Circuit.Netlist
module S = Circuit.Sequential
module Lit = Cnf.Lit
module Session = Sat.Session

type result =
  | Counterexample of bool array list
  | No_counterexample

type report = {
  result : result;
  bound_reached : int;
  per_bound_conflicts : (int * int) list;
  per_bound_stats : (int * Sat.Types.stats) list;
  total_stats : Sat.Types.stats;
  frames_encoded : int;
  time_seconds : float;
  timed_out : bool;
}

(* Each frame is encoded into a scratch formula whose variables are then
   remapped into the live session; state inputs are bound to the previous
   frame's next-state literals. *)
let encode_frame ?group sess seq state_lits =
  let comb = seq.S.comb in
  let scratch = Cnf.Formula.create () in
  let pre_table = Hashtbl.create 16 in
  List.iter2
    (fun node l -> Hashtbl.replace pre_table node l)
    seq.S.state_inputs state_lits;
  let remap = Hashtbl.create 64 in
  let lit_of_scratch l =
    let v = Lit.var l in
    let nv =
      match Hashtbl.find_opt remap v with
      | Some nv -> nv
      | None ->
        let nv = Session.new_var sess in
        Hashtbl.replace remap v nv;
        nv
    in
    if Lit.is_pos l then Lit.pos nv else Lit.neg_of_var nv
  in
  let pre id =
    match Hashtbl.find_opt pre_table id with
    | Some session_lit ->
      (* a scratch var bound to the (positive) session literal *)
      let sv = Cnf.Formula.fresh_var scratch in
      Hashtbl.replace remap sv (Lit.var session_lit);
      assert (Lit.is_pos session_lit);
      Some (Lit.pos sv)
    | None -> None
  in
  let lit_of = Circuit.Encode.encode_into scratch ~pre comb in
  let add =
    match group with
    | Some g -> Session.add_clause_in sess ~group:g
    | None -> Session.add_clause sess
  in
  Cnf.Formula.iter_clauses scratch (fun cl ->
      add (List.map lit_of_scratch (Cnf.Clause.to_list cl)));
  fun id -> lit_of_scratch (lit_of id)

let bad_node_of seq bad_output =
  match
    List.find_opt (fun (n, _) -> n = bad_output) (N.outputs seq.S.comb)
  with
  | Some (_, id) -> id
  | None -> invalid_arg ("Bmc.check: no output named " ^ bad_output)

(* Fresh session whose frame-0 state literals are constants from init. *)
let initial_state sess seq =
  List.map
    (fun b ->
       let v = Session.new_var sess in
       Session.add_clause sess [ (if b then Lit.pos v else Lit.neg_of_var v) ];
       Lit.pos v)
    seq.S.init

let extract_inputs seq frames m =
  List.rev_map
    (fun fr ->
       List.map
         (fun pi ->
            let l = fr pi in
            let v = m.(Lit.var l) in
            if Lit.is_pos l then v else not v)
         seq.S.primary_inputs
       |> Array.of_list)
    frames

let check ?metrics ?trace ?(config = Sat.Types.default) ?(bad_output = "bad")
    ?(incremental = true) ?(guide = false) ?timeout ~max_bound seq =
  S.validate seq;
  let t0 = Unix.gettimeofday () in
  let bad_node = bad_node_of seq bad_output in
  (* one simulation pass over the frame circuit (state inputs free);
     each encoded frame re-applies the observations through its own
     node-to-literal map, seeding branching for the new variables *)
  let observations =
    if guide then Some (Circuit.Guidance.observe seq.S.comb) else None
  in
  let guide_frame sess frame =
    Option.iter
      (fun obs ->
         Session.apply_guidance sess
           (Circuit.Guidance.to_guide
              ~lit_of_node:(fun id -> Some (frame id))
              obs))
      observations
  in
  (* per-bound observability: bound time histogram + progress gauge;
     per-query solver deltas flow in through [Session.attach_metrics] *)
  let bound_time =
    Option.map
      (fun m ->
         Sat.Metrics.histogram m "bmc/bound_time_s"
           ~bounds:Sat.Metrics.time_bounds)
      metrics
  in
  let bound_gauge = Option.map (fun m -> Sat.Metrics.gauge m "bmc/bound") metrics in
  let frames_counter =
    Option.map (fun m -> Sat.Metrics.counter m "bmc/frames_encoded") metrics
  in
  let attach sess =
    Option.iter (Session.attach_metrics sess) metrics;
    match trace with Some _ -> Session.set_tracer sess trace | None -> ()
  in
  let per_bound = ref [] in
  let total = Sat.Types.mk_stats () in
  let frames_encoded = ref 0 in
  let result = ref None in
  let timed_out = ref false in
  let k = ref 0 in
  (* wall clock: a monitor domain presses the cooperative interrupt on
     whichever solver is current once the deadline passes; requests are
     consumed per query, so it keeps pressing until the loop stops it *)
  let current : Sat.Cdcl.t option Atomic.t = Atomic.make None in
  let stop_monitor = Atomic.make false in
  let monitor =
    Option.map
      (fun secs ->
         let deadline = t0 +. secs in
         Domain.spawn (fun () ->
             while not (Atomic.get stop_monitor) do
               if Unix.gettimeofday () >= deadline then
                 Option.iter Sat.Cdcl.interrupt (Atomic.get current);
               Unix.sleepf 0.005
             done))
      timeout
  in
  let solve_frame sess assumptions =
    Atomic.set current (Some (Session.raw sess));
    let o = Session.solve ~assumptions sess in
    (match o with
     | Sat.Types.Unknown "interrupted" -> timed_out := true
     | _ -> ());
    o
  in
  if incremental then begin
    (* one session across all bounds: frames stay encoded, learned
       clauses and heuristic state carry over from bound to bound *)
    let sess = Session.create ~config () in
    attach sess;
    let frames : (N.node_id -> Lit.t) list ref = ref [] in
    let state = ref (initial_state sess seq) in
    while !result = None && !k < max_bound do
      let bt0 = Sat.Monotime.now_s () in
      let frame = encode_frame sess seq !state in
      incr frames_encoded;
      frames := frame :: !frames;
      guide_frame sess frame;
      let bad_lit = frame bad_node in
      (match solve_frame sess [ bad_lit ] with
       | Sat.Types.Sat m ->
         result := Some (Counterexample (extract_inputs seq !frames m))
       | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> ()
       | Sat.Types.Unknown _ -> result := Some No_counterexample);
      let d = Session.last_stats sess in
      Sat.Types.add_stats_into total d;
      per_bound := (!k, d) :: !per_bound;
      state := List.map frame seq.S.next_state;
      Option.iter
        (fun h -> Sat.Metrics.observe h (Sat.Monotime.now_s () -. bt0))
        bound_time;
      Option.iter (fun g -> Sat.Metrics.set_gauge g (float_of_int !k)) bound_gauge;
      incr k
    done
  end
  else
    (* from-scratch reference mode (for comparison): every bound builds a
       fresh session and re-encodes frames 0..k *)
    while !result = None && !k < max_bound do
      let bt0 = Sat.Monotime.now_s () in
      let sess = Session.create ~config () in
      attach sess;
      let frames : (N.node_id -> Lit.t) list ref = ref [] in
      let state = ref (initial_state sess seq) in
      for _ = 0 to !k do
        let frame = encode_frame sess seq !state in
        incr frames_encoded;
        frames := frame :: !frames;
        guide_frame sess frame;
        state := List.map frame seq.S.next_state
      done;
      let bad_lit = (List.hd !frames) bad_node in
      (match solve_frame sess [ bad_lit ] with
       | Sat.Types.Sat m ->
         result := Some (Counterexample (extract_inputs seq !frames m))
       | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> ()
       | Sat.Types.Unknown _ -> result := Some No_counterexample);
      let d = Session.last_stats sess in
      Sat.Types.add_stats_into total d;
      per_bound := (!k, d) :: !per_bound;
      Option.iter
        (fun h -> Sat.Metrics.observe h (Sat.Monotime.now_s () -. bt0))
        bound_time;
      Option.iter (fun g -> Sat.Metrics.set_gauge g (float_of_int !k)) bound_gauge;
      incr k
    done;
  Atomic.set stop_monitor true;
  Option.iter Domain.join monitor;
  Option.iter
    (fun c -> Sat.Metrics.set_counter c !frames_encoded)
    frames_counter;
  {
    result = Option.value ~default:No_counterexample !result;
    bound_reached = !k;
    per_bound_conflicts =
      List.rev_map (fun (k, d) -> (k, d.Sat.Types.conflicts)) !per_bound;
    per_bound_stats = List.rev !per_bound;
    total_stats = total;
    frames_encoded = !frames_encoded;
    time_seconds = Unix.gettimeofday () -. t0;
    timed_out = !timed_out;
  }

(* Which frames does unreachability actually depend on?  Re-encode
   frames 0..bound-1 with each frame's transition clauses guarded by an
   activation literal, then ask [Session.minimize_assumptions] to shrink
   {activations} ∪ {bad at the last frame}: the activation literals that
   survive name the frames the refutation needs. *)
let explain_bound ?(config = Sat.Types.default) ?(bad_output = "bad") ~bound
    seq =
  S.validate seq;
  if bound < 1 then invalid_arg "Bmc.explain_bound: bound must be >= 1";
  let bad_node = bad_node_of seq bad_output in
  let sess = Session.create ~config () in
  let state = ref (initial_state sess seq) in
  let acts = ref [] in
  let last_bad = ref (Lit.pos 0) in
  for _t = 0 to bound - 1 do
    let a = Session.new_activation sess in
    acts := a :: !acts;
    let frame = encode_frame ~group:a sess seq !state in
    state := List.map frame seq.S.next_state;
    last_bad := frame bad_node
  done;
  let acts = List.rev !acts in
  match Session.minimize_assumptions sess (acts @ [ !last_bad ]) with
  | None -> None (* a counterexample of this length exists *)
  | Some core ->
    Some
      (List.mapi (fun t a -> (t, a)) acts
       |> List.filter_map (fun (t, a) ->
              if List.mem a core then Some t else None))

type induction_result =
  | Proved of int
  | Refuted of bool array list
  | Bound_reached

(* Simple k-induction (no uniqueness constraints): sound for proving,
   incomplete.  Base: no counterexample within k steps of the initial
   state.  Step: from any state, k consecutive good cycles force a good
   (k+1)-th.

   Both obligations run over their own incremental session: the base
   session grows one frame per k (each bound queries only the newest
   frame — earlier bounds were refuted by earlier iterations), and the
   step session turns the previous iteration's queried [bad] into a
   permanent [~bad] before appending the next frame. *)
let prove_inductive ?metrics ?(config = Sat.Types.default)
    ?(bad_output = "bad") ?(max_k = 8) seq =
  S.validate seq;
  let bad_node = bad_node_of seq bad_output in
  (* base session: frames from the initial state *)
  let base = Session.create ~config () in
  let base_frames : (N.node_id -> Lit.t) list ref = ref [] in
  let base_state = ref (initial_state base seq) in
  (* step session: frames from a free (arbitrary) state *)
  let step = Session.create ~config () in
  Option.iter
    (fun m ->
       Session.attach_metrics base m;
       Session.attach_metrics step m)
    metrics;
  let step_state =
    ref (List.map (fun _ -> Lit.pos (Session.new_var step)) seq.S.init)
  in
  let step_frame0 = encode_frame step seq !step_state in
  step_state := List.map step_frame0 seq.S.next_state;
  let step_prev_bad = ref (step_frame0 bad_node) in
  let rec attempt k =
    if k > max_k then Bound_reached
    else begin
      (* base obligation at depth k: extend by frame k-1, query its bad *)
      let frame = encode_frame base seq !base_state in
      base_frames := frame :: !base_frames;
      base_state := List.map frame seq.S.next_state;
      match Session.solve ~assumptions:[ frame bad_node ] base with
      | Sat.Types.Sat m -> Refuted (extract_inputs seq !base_frames m)
      | Sat.Types.Unknown _ -> Bound_reached
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
        (* step obligation: frames 0..k good, is frame k's bad forced
           off?  The previous iteration's queried bad becomes a
           permanent constraint. *)
        Session.add_clause step [ Lit.negate !step_prev_bad ];
        let frame = encode_frame step seq !step_state in
        step_state := List.map frame seq.S.next_state;
        let bad = frame bad_node in
        step_prev_bad := bad;
        (match Session.solve ~assumptions:[ bad ] step with
         | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> Proved k
         | Sat.Types.Sat _ | Sat.Types.Unknown _ -> attempt (k + 1))
    end
  in
  attempt 1
