module Lit = Cnf.Lit

type term = (int * bool) list

let is_implicant f term =
  let sat_clause c =
    List.exists
      (fun (v, b) -> Cnf.Clause.mem (Lit.of_var v b) c)
      term
  in
  let ok = ref true in
  Cnf.Formula.iter_clauses f (fun c -> if not (sat_clause c) then ok := false);
  !ok

(* selector variables: p_v = 2v chooses literal v, n_v = 2v+1 chooses ~v *)
let minimum_prime_implicant ?(config = Sat.Types.default) f =
  match Sat.Session.solve (Sat.Session.of_formula ~config f) with
  | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ -> None
  | Sat.Types.Sat _ ->
    let n = Cnf.Formula.nvars f in
    let g = Cnf.Formula.create ~nvars:(2 * n) () in
    let p v = Lit.pos (2 * v) and q v = Lit.pos ((2 * v) + 1) in
    for v = 0 to n - 1 do
      (* a variable appears with at most one polarity *)
      Cnf.Formula.add_clause_l g [ Lit.negate (p v); Lit.negate (q v) ]
    done;
    Cnf.Formula.iter_clauses f (fun c ->
        let sel =
          List.map
            (fun l -> if Lit.is_pos l then p (Lit.var l) else q (Lit.var l))
            (Cnf.Clause.to_list c)
        in
        Cnf.Formula.add_clause_l g sel);
    let selectors = List.concat_map (fun v -> [ p v; q v ]) (List.init n Fun.id) in
    let extract m =
      List.filter_map
        (fun v ->
           if m.(2 * v) then Some (v, true)
           else if m.((2 * v) + 1) then Some (v, false)
           else None)
        (List.init n Fun.id)
    in
    (* one session across the binary search: each cardinality bound is an
       activation group (its Sinz counter is encoded over fresh session
       variables), released once the bound is answered *)
    let sess = Sat.Session.of_formula ~config g in
    let solve_bound k =
      let base = Sat.Session.nvars sess in
      let scratch = Cnf.Formula.create ~nvars:base () in
      Cnf.Cardinality.at_most scratch selectors k;
      let act = Sat.Session.new_activation sess in
      let remap = Hashtbl.create 16 in
      let map_lit l =
        let v = Lit.var l in
        let nv =
          if v < base then v
          else
            match Hashtbl.find_opt remap v with
            | Some nv -> nv
            | None ->
              let nv = Sat.Session.new_var sess in
              Hashtbl.replace remap v nv;
              nv
        in
        if Lit.is_pos l then Lit.pos nv else Lit.neg_of_var nv
      in
      Cnf.Formula.iter_clauses scratch (fun cl ->
          Sat.Session.add_clause_in sess ~group:act
            (List.map map_lit (Cnf.Clause.to_list cl)));
      let r = Sat.Session.solve ~assumptions:[ act ] sess in
      Sat.Session.release sess act;
      match r with
      | Sat.Types.Sat m -> Some (extract m)
      | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ | Sat.Types.Unknown _ ->
        None
    in
    (match solve_bound n with
     | None -> None (* cannot happen for satisfiable f with total terms *)
     | Some initial ->
       let best = ref initial in
       let lo = ref 0 and hi = ref (List.length initial) in
       while !lo < !hi do
         let mid = (!lo + !hi) / 2 in
         match solve_bound mid with
         | Some sol ->
           best := sol;
           hi := List.length sol
         | None -> lo := mid + 1
       done;
       Some !best)
