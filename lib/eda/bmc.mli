(** Bounded model checking of sequential circuits (Sec. 3, Biere et
    al. [5]).

    The transition relation is unrolled frame by frame into one
    incremental SAT {!Sat.Session}; the safety property ("output [bad]
    never rises") is queried per bound under an assumption, so frames
    are shared across bounds and learned clauses, variable activities
    and saved phases persist from bound to bound. *)

type result =
  | Counterexample of bool array list
      (** primary-input vector per frame, frame 0 first; the property
          fails in the last frame *)
  | No_counterexample
      (** up to the requested bound *)

type report = {
  result : result;
  bound_reached : int;
  per_bound_conflicts : (int * int) list;  (** (k, conflicts spent at k) *)
  per_bound_stats : (int * Sat.Types.stats) list;
      (** per-query statistics deltas, one row per bound *)
  total_stats : Sat.Types.stats;  (** summed across all bounds *)
  frames_encoded : int;
      (** transition-relation copies built: [bound_reached] when
          incremental, quadratic when re-encoding from scratch *)
  time_seconds : float;
  timed_out : bool;
      (** the wall clock fired: [result] is [No_counterexample] only up
          to [bound_reached] *)
}

val check :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config ->
  ?bad_output:string ->
  ?incremental:bool ->
  ?guide:bool ->
  ?timeout:float ->
  max_bound:int ->
  Circuit.Sequential.t ->
  report
(** [bad_output] (default ["bad"]) names the property output in the
    sequential circuit's combinational part.

    [guide] (default off) runs one {!Circuit.Guidance.observe}
    simulation pass over the frame circuit (state inputs treated as
    free) and seeds each newly encoded frame's variables with the
    derived activities and phases ({!Sat.Session.apply_guidance},
    docs/TUNING.md).  Purely heuristic — results are unchanged.

    [incremental] (default [true]) extends one session across bounds —
    reaching bound k encodes each frame exactly once.  With
    [incremental:false] every bound rebuilds a fresh solver and
    re-encodes frames [0..k] — the from-scratch reference mode the
    Section 6 comparison benchmarks against.

    [timeout] bounds the whole run in wall-clock seconds.  A monitor
    domain presses {!Sat.Cdcl.interrupt} on the active solver once the
    deadline passes; the interrupted query is reported in the statistics
    ([interrupts] counter) and the report carries [timed_out = true]
    with all per-bound statistics intact.

    [metrics] attaches a registry: every underlying session contributes
    its per-query deltas, each bound's wall time (encode + solve) lands
    in the [bmc/bound_time_s] histogram, [bmc/bound] tracks the last
    completed bound, and [bmc/frames_encoded] mirrors the report field.
    [trace] attaches an event sink to every underlying solver. *)

val explain_bound :
  ?config:Sat.Types.config ->
  ?bad_output:string ->
  bound:int ->
  Circuit.Sequential.t ->
  int list option
(** Which frames does "[bad] is unreachable in exactly [bound] steps"
    actually depend on?  Re-encodes frames [0..bound-1] into a fresh
    session with each frame's transition clauses guarded by an
    activation literal, then runs {!Sat.Session.minimize_assumptions}
    over the activation literals plus the final frame's [bad]: the
    activations surviving in the minimized core name the frames the
    refutation needs (often a suffix — earlier frames' logic is
    irrelevant once the reachable-state sleeve has stabilized).

    Returns [None] when a counterexample of this length exists, and
    [Some frames] (ascending frame indices, possibly empty) otherwise.
    Raises [Invalid_argument] for [bound < 1]. *)

type induction_result =
  | Proved of int
      (** the property holds at every depth; the argument is the
          induction length k that closed the proof *)
  | Refuted of bool array list
      (** a real counterexample (input vectors per frame) *)
  | Bound_reached
      (** neither proved nor refuted within [max_k] *)

val prove_inductive :
  ?metrics:Sat.Metrics.t ->
  ?config:Sat.Types.config ->
  ?bad_output:string ->
  ?max_k:int ->
  Circuit.Sequential.t ->
  induction_result
(** Simple k-induction (sound, incomplete: no state-uniqueness
    constraints).  Where bounded checking can only say "no
    counterexample up to k", an inductive property is certified for
    {e all} depths — the natural unbounded extension of the BMC usage
    the paper surveys.  Both the base and the step obligation keep their
    own incremental session across increasing k, so each transition
    frame is encoded exactly once per obligation. *)
