type t =
  | Equivalent
  | Inequivalent of bool array
  | Inconclusive of string

let pp ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Inequivalent v ->
    Format.fprintf ppf "inequivalent at [%s]"
      (String.init (Array.length v) (fun i -> if v.(i) then '1' else '0'))
  | Inconclusive why -> Format.fprintf ppf "inconclusive (%s)" why
