(** SAT sweeping as a fraiging pipeline (Sec. 3 / Sec. 6 — the
    combination of structural methods with an incrementally-used SAT
    solver behind [16, 25]).

    Both circuits are structurally hashed into one AIG over shared
    inputs, so all syntactically common logic merges for free and the
    two-level rewriting rules do a bounded cleanup.  The pipeline then
    rebuilds the graph inputs-outward into a {e functionally reduced}
    AIG: 62-way bit-parallel random simulation partitions nodes into
    candidate-equivalence classes (up to complementation); each fresh
    node that lands in an existing class is checked against the class
    representative with a cone-limited query on one incremental
    {!Sat.Session} (clauses emitted lazily per node, each node's
    definition in its own activation group).  A proven candidate is
    merged — every later node is built over the representative, so the
    miter shrinks as sweeping proceeds and the merged node's clause
    group is released; a refuting counterexample becomes a new
    simulation pattern that splits the candidate classes; a
    budget-limited candidate is skipped, not fatal.  The output pairs
    usually collapse structurally; any residue falls to final
    (unbudgeted) SAT queries. *)

type phase_times = {
  simulate_s : float;  (** bit-parallel simulation (seeding + resimulation) *)
  refine_s : float;    (** candidate-class bookkeeping and splitting *)
  prove_s : float;     (** incremental SAT queries *)
  total_s : float;     (** whole check, wall clock *)
}

type stats = {
  aig_nodes : int;  (** merged structural AIG, before sweeping *)
  fraig_nodes : int;  (** live nodes of the functionally reduced AIG *)
  simulation_words : int;
  classes : int;  (** classes that attracted at least one candidate *)
  candidates : int;  (** candidate pairs submitted to the prover *)
  merges : int;  (** candidates proven and merged *)
  refuted : int;  (** candidates refuted by a counterexample *)
  skipped : int;  (** candidates abandoned on a per-query budget *)
  refinement_rounds : int;  (** counterexample-driven resimulations *)
  sat_calls : int;
  decisions : int;
  conflicts : int;
}

type report = {
  verdict : Verdict.t;
  stats : stats;
  times : phase_times;
  solver_stats : Sat.Types.stats option;
}

val check :
  ?config:Sat.Types.config ->
  ?words:int ->
  ?seed:int ->
  ?candidate_conflicts:int ->
  ?jobs:int ->
  ?guide:bool ->
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** [words] (default 4) random simulation words seed the candidate
    classes; [candidate_conflicts] (default 20_000) bounds each
    candidate query — exhausted candidates are skipped, never wrong.
    With [guide] (default off) the session's branching heuristic is
    seeded from the sweep's own simulation signatures and fanout counts
    before each query batch ({!Aig.Session_cnf.guide},
    docs/TUNING.md): signal probability comes for free from the
    signature popcount, so guidance costs one pass over newly emitted
    nodes.  Purely heuristic — verdicts are unchanged.
    With [jobs] at 1 (the default) final output queries run under
    [config]'s own budgets only, so a definite verdict is definite.
    With [jobs > 1] the final queries run under the candidate budget
    and a residual hard pair escalates to cube-and-conquer
    ({!Sat.Conquer}) on a standalone Tseitin encoding of its two output
    cones, decomposed across [jobs] worker domains (counted by the
    [sweep/cube_fallbacks] metric).  [metrics] attaches the registry to
    the session (standard [solver/*] instruments) and fills the
    [sweep/*] counter group and the [sweep/simulate], [sweep/refine]
    and [sweep/prove] phase timers (schema: docs/METRICS.md). *)
