(** Automatic test pattern generation for single stuck-at faults
    (Sec. 3; Larrabee [20], Stephan et al. [38], Marques-Silva &
    Sakallah [25]).

    A fault instance is built as a circuit: the fault-free circuit and
    the faulty fanout cone share the primary inputs; the fault site is
    replaced by a constant in the faulty copy; a [diff] output compares
    the affected primary outputs.  The instance is satisfiable — the
    [diff] objective reachable — iff the fault is testable, and a model
    is a test vector.  Untestable faults are redundant. *)

type fault = { node : Circuit.Netlist.node_id; stuck_at : bool }

val pp_fault : Circuit.Netlist.t -> Format.formatter -> fault -> unit

val fault_list : Circuit.Netlist.t -> fault list
(** Both polarities on every input and gate output (uncollapsed). *)

val instance :
  Circuit.Netlist.t -> fault ->
  Circuit.Netlist.t * (Circuit.Netlist.node_id * bool) list
(** The test-generation circuit and its objectives (fault activation +
    difference observation).  The instance circuit's inputs correspond
    positionally to the original circuit's inputs. *)

type test_outcome =
  | Test of bool array  (** input vector, in input order *)
  | Redundant
  | Aborted of string

val generate_test :
  ?config:Sat.Types.config ->
  ?use_structural:bool ->
  Circuit.Netlist.t -> fault -> test_outcome * Sat.Types.stats
(** [use_structural] (default false) solves through the Section 5 layer
    ({!Csat}); don't-care inputs of the pattern are then completed with
    [false]. *)

type summary = {
  total : int;
  detected : int;
  redundant : int;
  aborted : int;
  vectors : bool array list;     (** the collected test set *)
  sat_calls : int;
  dropped_by_simulation : int;   (** faults covered without a SAT call *)
  decisions : int;               (** summed over SAT calls *)
  conflicts : int;
  time_seconds : float;
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?metrics:Sat.Metrics.t ->
  ?config:Sat.Types.config ->
  ?use_structural:bool ->
  ?fault_simulation:bool ->
  ?random_patterns:int ->
  Circuit.Netlist.t -> summary
(** Full flow over the fault list; with [fault_simulation] (default
    true) each new vector is simulated against the remaining faults and
    detected ones are dropped.  [random_patterns] (default 0) words of
    random vectors run first — the classical two-phase flow where
    random-pattern-testable faults never reach the deterministic
    stage.

    [metrics] attaches a registry: every deterministic SAT call's wall
    time lands in the [atpg/fault_time_s] histogram and its solver
    statistics are accumulated, and the summary is mirrored into the
    [atpg/faults], [atpg/detected], [atpg/redundant], [atpg/aborted],
    [atpg/sat_calls] and [atpg/dropped_by_simulation] counters. *)

val run_incremental :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config ->
  ?on_query:(fault -> Sat.Types.stats -> unit) ->
  Circuit.Netlist.t ->
  summary
(** Iterated-SAT formulation (Sec. 6, [18] [25]): a single incremental
    {!Sat.Session} holds the fault-free circuit clauses once; each fault
    adds its faulty-cone clauses as an activation group and is solved
    under the group's assumption, so learned clauses about the
    fault-free logic are reused across the whole fault list.  Resolved
    faults are {!Sat.Session.release}d, and the session's retention pass
    drops learned clauses polluted by released groups.  [on_query] is
    called after each SAT query with that query's statistics delta.  No
    fault simulation, so the SAT-call count is comparable with
    [run ~fault_simulation:false].

    [metrics] / [trace] observe the run like {!run}: the session
    contributes per-query deltas, each fault's wall time (cone encoding
    + solve + release) lands in [atpg/fault_time_s], and the summary
    counters are written.  [trace] attaches an event sink to the
    underlying solver. *)

val fault_simulate :
  Circuit.Netlist.t -> fault list -> bool array list -> fault list
(** Faults of the list detected by at least one of the vectors
    (bit-parallel simulation of the faulty cones). *)
