(** Combinational equivalence checking (Sec. 3, [16, 19, 26]).

    SAT-based checking solves the miter CNF; the BDD-based checker builds
    canonical output functions and compares them — the head-to-head of
    experiment E10. *)

type verdict = Verdict.t =
  | Equivalent
  | Inequivalent of bool array
      (** a distinguishing input vector, in input order *)
  | Inconclusive of string
      (** budget exhausted (SAT) or node limit hit (BDD) *)

type report = {
  verdict : verdict;
  time_seconds : float;
  sat_stats : Sat.Types.stats option;
  bdd_nodes : int;  (** 0 for the SAT method *)
}

val check_sat :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config ->
  ?engine:Sat.Solver.engine ->
  ?pipeline:Sat.Solver.pipeline ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** Solves the miter; [pipeline] defaults to no preprocessing (set
    equivalency reasoning etc. for experiment E7).  [engine] overrides
    the solving engine — e.g. [Sat.Solver.Portfolio _] races diversified
    workers on one hard miter; it defaults to [Cdcl config].  [metrics]
    and [trace] are forwarded to {!Sat.Solver.solve}. *)

val check_bdd :
  ?node_limit:int -> Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** Builds ROBDDs for all outputs of both circuits in input order;
    equivalence is pointer equality.  [node_limit] (default 500_000)
    bounds blow-up. *)

val check_rl :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config -> depth:int ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** SAT check with recursive-learning preprocessing of the miter CNF at
    the given depth — the paper's Sec. 4.2 / [26] combination. *)

val check_aig :
  ?config:Sat.Types.config ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** Builds both circuits into one AIG manager (shared inputs): the
    hash-consing performs structural merging for free, identical output
    edges are discharged without any SAT call, and the residue is a
    compact three-clauses-per-node miter CNF.  [bdd_nodes] reports the
    AIG node count. *)

val check_fraig :
  ?metrics:Sat.Metrics.t ->
  ?trace:Sat.Trace.sink ->
  ?config:Sat.Types.config ->
  ?words:int ->
  ?seed:int ->
  ?candidate_conflicts:int ->
  ?guide:bool ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> report
(** The full fraiging pipeline of {!Sweep.check}: structural hashing
    into one AIG, simulation-derived candidate classes, incremental SAT
    sweeping with merge-on-proof and counterexample-driven refinement.
    The default CEC engine.  [bdd_nodes] reports the live node count of
    the functionally reduced AIG; use {!Sweep.check} directly for the
    per-phase breakdown. *)
