module N = Circuit.Netlist
module S = Circuit.Sequential
module Gate = Circuit.Gate

type result =
  | Equivalent of int
  | Bounded_equivalent of int
  | Different of bool array list

(* the product machine; [match_states] adds state-correspondence to the
   property (requires equal state counts) *)
let product ?(match_states = false) s1 s2 =
  let m = N.create () in
  let pis =
    List.mapi (fun i _ -> N.add_input ~name:(Printf.sprintf "pi%d" i) m)
      s1.S.primary_inputs
  in
  let st1 =
    List.mapi (fun i _ -> N.add_input ~name:(Printf.sprintf "l%d" i) m)
      s1.S.state_inputs
  in
  let st2 =
    List.mapi (fun i _ -> N.add_input ~name:(Printf.sprintf "r%d" i) m)
      s2.S.state_inputs
  in
  let import seq sts =
    let table = Hashtbl.create 16 in
    List.iter2 (fun src dst -> Hashtbl.replace table src dst)
      seq.S.primary_inputs pis;
    List.iter2 (fun src dst -> Hashtbl.replace table src dst)
      seq.S.state_inputs sts;
    N.import seq.S.comb ~into:m ~map_node:(Hashtbl.find_opt table)
  in
  let map1 = import s1 st1 in
  let map2 = import s2 st2 in
  let mismatches =
    List.map2
      (fun a b -> N.add_gate m Gate.Xor [ map1.(a); map2.(b) ])
      (N.output_ids s1.S.comb) (N.output_ids s2.S.comb)
  in
  let state_mismatches =
    if match_states then
      List.map2 (fun a b -> N.add_gate m Gate.Xor [ a; b ]) st1 st2
    else []
  in
  let bad =
    match mismatches @ state_mismatches with
    | [ one ] -> N.add_gate ~name:"bad" m Gate.Buf [ one ]
    | many -> N.add_gate ~name:"bad" m Gate.Or many
  in
  N.set_output m bad;
  {
    S.comb = m;
    primary_inputs = pis;
    state_inputs = st1 @ st2;
    next_state =
      List.map (fun x -> map1.(x)) s1.S.next_state
      @ List.map (fun x -> map2.(x)) s2.S.next_state;
    init = s1.S.init @ s2.S.init;
  }

let check ?metrics ?trace ?(config = Sat.Types.default) ?(max_k = 4)
    ?(bound = 16) ?(jobs = 1) s1 s2 =
  S.validate s1;
  S.validate s2;
  if List.length s1.S.primary_inputs <> List.length s2.S.primary_inputs then
    invalid_arg "Seq_equiv.check: primary input counts differ";
  if List.length (N.outputs s1.S.comb) <> List.length (N.outputs s2.S.comb)
  then invalid_arg "Seq_equiv.check: output counts differ";
  let same_state_count =
    List.length s1.S.state_inputs = List.length s2.S.state_inputs
  in
  if jobs <= 1 then begin
    (* try the strengthened (register-correspondence) induction first *)
    let inductive_attempt =
      if not same_state_count then None
      else
        match
          Bmc.prove_inductive ?metrics ~config ~max_k
            (product ~match_states:true s1 s2)
        with
        | Bmc.Proved k -> Some (Equivalent k)
        | Bmc.Refuted _ | Bmc.Bound_reached -> None
    in
    match inductive_attempt with
    | Some r -> r
    | None -> (
        (* outputs-only property: refute with BMC, or try plain induction *)
        let prod = product ~match_states:false s1 s2 in
        match Bmc.prove_inductive ?metrics ~config ~max_k prod with
        | Bmc.Proved k -> Equivalent k
        | Bmc.Refuted frames -> Different frames
        | Bmc.Bound_reached -> (
            match
              (Bmc.check ?metrics ?trace ~config ~max_bound:bound prod)
                .Bmc.result
            with
            | Bmc.Counterexample frames -> Different frames
            | Bmc.No_counterexample -> Bounded_equivalent bound))
  end
  else begin
    (* strategy race: the induction chain (strengthened, then plain) and
       the bounded search run on separate domains; proofs and
       counterexamples cannot both exist, so the combination is
       order-independent.  Each side observes into a private registry
       and sink, merged after the join. *)
    let reg () =
      match metrics with Some _ -> Some (Sat.Metrics.create ()) | None -> None
    in
    let sink i =
      match trace with
      | Some _ -> Some (Sat.Trace.make_sink ~worker:i ())
      | None -> None
    in
    let ind_reg = reg () and bmc_reg = reg () in
    let bmc_sink = sink 1 in
    let induction () =
      let strengthened =
        if not same_state_count then None
        else
          match
            Bmc.prove_inductive ?metrics:ind_reg ~config ~max_k
              (product ~match_states:true s1 s2)
          with
          | Bmc.Proved k -> Some (`Proved k)
          | Bmc.Refuted _ | Bmc.Bound_reached -> None
      in
      match strengthened with
      | Some r -> r
      | None -> (
          match
            Bmc.prove_inductive ?metrics:ind_reg ~config ~max_k
              (product ~match_states:false s1 s2)
          with
          | Bmc.Proved k -> `Proved k
          | Bmc.Refuted frames -> `Refuted frames
          | Bmc.Bound_reached -> `Open)
    in
    let bounded () =
      match
        (Bmc.check ?metrics:bmc_reg ?trace:bmc_sink ~config ~max_bound:bound
           (product ~match_states:false s1 s2))
          .Bmc.result
      with
      | Bmc.Counterexample frames -> `Cex frames
      | Bmc.No_counterexample -> `Clean
    in
    let d = Domain.spawn bounded in
    let ind = induction () in
    let bmc_r = Domain.join d in
    (match metrics with
     | Some m ->
       List.iter
         (function
           | Some r -> Sat.Metrics.merge_into ~into:m r
           | None -> ())
         [ ind_reg; bmc_reg ]
     | None -> ());
    (match (trace, bmc_sink) with
     | Some dst, Some s -> Sat.Trace.absorb ~into:dst s
     | _ -> ());
    match (ind, bmc_r) with
    | `Proved k, _ -> Equivalent k
    | _, `Cex frames -> Different frames  (* BMC's counterexample is shortest *)
    | `Refuted frames, _ -> Different frames
    | `Open, `Clean -> Bounded_equivalent bound
  end
