module N = Circuit.Netlist
module Lit = Cnf.Lit

type objective = N.node_id * bool

let toggle_objectives c =
  let objs = ref [] in
  for id = N.num_nodes c - 1 downto 0 do
    match N.node c id with
    | N.Gate _ -> objs := (id, false) :: (id, true) :: !objs
    | N.Input | N.Const _ -> ()
  done;
  !objs

type report = {
  objectives : int;
  covered : int;
  unreachable : int;
  vectors : bool array list;
  sat_calls : int;
  dropped_by_simulation : int;
  time_seconds : float;
}

let generate ?(config = Sat.Types.default) ?(random_warmup = 2) c objectives =
  let t0 = Unix.gettimeofday () in
  let n_inputs = List.length (N.inputs c) in
  let enc = Circuit.Encode.encode c in
  (* one session serves every coverage objective *)
  let sess = Sat.Session.of_formula ~config enc.Circuit.Encode.formula in
  let pending = Hashtbl.create 64 in
  List.iter (fun o -> Hashtbl.replace pending o ()) objectives;
  let vectors = ref [] in
  let sat_calls = ref 0
  and dropped = ref 0
  and unreachable = ref 0 in
  (* simulate packed vectors, dropping covered objectives; [mask]
     selects which word bits correspond to real vectors *)
  let simulate_snapshot ~credit ~mask words =
    let values = Circuit.Simulate.parallel_all c words in
    let snapshot = Hashtbl.fold (fun k () acc -> k :: acc) pending [] in
    List.iter
      (fun (node, v) ->
         let bits = if v then values.(node) else lnot values.(node) in
         if bits land mask <> 0 && Hashtbl.mem pending (node, v) then begin
           Hashtbl.remove pending (node, v);
           if credit then incr dropped
         end)
      snapshot
  in
  let full_mask = (1 lsl Circuit.Simulate.word_width) - 1 in
  let rng = Sat.Rng.create config.Sat.Types.random_seed in
  let warmup_vectors = ref [] in
  for _ = 1 to random_warmup do
    let words = Circuit.Simulate.random_words rng n_inputs in
    for b = 0 to Circuit.Simulate.word_width - 1 do
      warmup_vectors :=
        Array.map (fun w -> w land (1 lsl b) <> 0) words :: !warmup_vectors
    done;
    simulate_snapshot ~credit:true ~mask:full_mask words
  done;
  List.iter
    (fun (node, v) ->
       if Hashtbl.mem pending (node, v) then begin
         incr sat_calls;
         let l = enc.Circuit.Encode.lit_of_node node in
         let assumption = if v then l else Lit.negate l in
         match Sat.Session.solve ~assumptions:[ assumption ] sess with
         | Sat.Types.Sat m ->
           let vec =
             List.map
               (fun id -> m.(Lit.var (enc.Circuit.Encode.lit_of_node id)))
               (N.inputs c)
             |> Array.of_list
           in
           vectors := vec :: !vectors;
           Hashtbl.remove pending (node, v);
           (* drop other objectives covered by this vector *)
           let words = Array.map (fun b -> if b then 1 else 0) vec in
           simulate_snapshot ~credit:true ~mask:1 words
         | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ ->
           incr unreachable;
           Hashtbl.remove pending (node, v)
         | Sat.Types.Unknown _ -> Hashtbl.remove pending (node, v)
       end)
    objectives;
  let total = List.length objectives in
  {
    objectives = total;
    covered = total - !unreachable;
    unreachable = !unreachable;
    vectors = List.rev !vectors @ !warmup_vectors;
    sat_calls = !sat_calls;
    dropped_by_simulation = !dropped;
    time_seconds = Unix.gettimeofday () -. t0;
  }
