module N = Circuit.Netlist
module Gate = Circuit.Gate
module Lit = Cnf.Lit

type fault = { node : N.node_id; stuck_at : bool }

let pp_fault c ppf f =
  Format.fprintf ppf "%s/sa%d" (N.name c f.node) (if f.stuck_at then 1 else 0)

let fault_list c =
  let fs = ref [] in
  for id = N.num_nodes c - 1 downto 0 do
    match N.node c id with
    | N.Input | N.Gate _ ->
      fs := { node = id; stuck_at = false } :: { node = id; stuck_at = true } :: !fs
    | N.Const _ -> ()
  done;
  !fs

(* in-cone flags for the transitive fanout of the fault site *)
let cone_flags c node =
  let flags = Array.make (max 1 (N.num_nodes c)) false in
  List.iter (fun x -> flags.(x) <- true) (N.transitive_fanout c node);
  flags

let instance c fault =
  let m = N.create () in
  let shared =
    List.map (fun id -> N.add_input ~name:(N.name c id) m) (N.inputs c)
  in
  let input_map =
    let table = Hashtbl.create 16 in
    List.iter2 (fun src dst -> Hashtbl.replace table src dst) (N.inputs c) shared;
    fun id -> Hashtbl.find_opt table id
  in
  let good = N.import c ~into:m ~map_node:input_map in
  let cone = cone_flags c fault.node in
  let faulty = Array.make (max 1 (N.num_nodes c)) (-1) in
  for id = 0 to N.num_nodes c - 1 do
    if cone.(id) then
      if id = fault.node then faulty.(id) <- N.add_const m fault.stuck_at
      else
        match N.node c id with
        | N.Gate (g, fs) ->
          let pick f = if cone.(f) then faulty.(f) else good.(f) in
          faulty.(id) <- N.add_gate m g (List.map pick fs)
        | N.Input | N.Const _ -> assert false
  done;
  let affected =
    List.filter (fun o -> cone.(o)) (N.output_ids c)
  in
  let diffs =
    List.map (fun o -> N.add_gate m Gate.Xor [ good.(o); faulty.(o) ]) affected
  in
  let diff =
    match diffs with
    | [] -> N.add_const m false (* fault unobservable: instance is UNSAT *)
    | [ d ] -> N.add_gate ~name:"diff" m Gate.Buf [ d ]
    | ds -> N.add_gate ~name:"diff" m Gate.Or ds
  in
  N.set_output m diff;
  (m, [ (good.(fault.node), not fault.stuck_at); (diff, true) ])

type test_outcome = Test of bool array | Redundant | Aborted of string

let generate_test ?(config = Sat.Types.default) ?(use_structural = false) c
    fault =
  let inst, objectives = instance c fault in
  let r = Csat.solve ~config ~use_layer:use_structural ~objectives inst in
  let n_inputs = List.length (N.inputs c) in
  match r.Csat.outcome with
  | Sat.Types.Sat _ ->
    let vec = Array.make n_inputs false in
    List.iteri
      (fun i id ->
         match List.assoc_opt id r.Csat.pattern with
         | Some b -> vec.(i) <- b
         | None -> ())
      (N.inputs inst);
    (Test vec, r.Csat.stats)
  | Sat.Types.Unsat -> (Redundant, r.Csat.stats)
  | Sat.Types.Unsat_assuming _ -> (Redundant, r.Csat.stats)
  | Sat.Types.Unknown why -> (Aborted why, r.Csat.stats)

(* --- bit-parallel fault simulation -------------------------------------- *)

let pack_vectors vectors n_inputs =
  (* groups of up to [word_width] vectors -> one word array per group *)
  let rec chunks = function
    | [] -> []
    | vs ->
      let rec take n acc = function
        | [] -> (List.rev acc, [])
        | v :: rest ->
          if n = 0 then (List.rev acc, v :: rest)
          else take (n - 1) (v :: acc) rest
      in
      let batch, rest = take Circuit.Simulate.word_width [] vs in
      batch :: chunks rest
  in
  chunks vectors
  |> List.map (fun batch ->
      let words = Array.make n_inputs 0 in
      List.iteri
        (fun b (v : bool array) ->
           Array.iteri (fun i x -> if x then words.(i) <- words.(i) lor (1 lsl b)) v)
        batch;
      words)

let fault_simulate c faults vectors =
  let n_inputs = List.length (N.inputs c) in
  let out_ids = N.output_ids c in
  let batches = pack_vectors vectors n_inputs in
  let detected f =
    List.exists
      (fun words ->
         let good = Circuit.Simulate.parallel_all c words in
         let cone = cone_flags c f.node in
         let faulty = Array.copy good in
         let full = (1 lsl Circuit.Simulate.word_width) - 1 in
         faulty.(f.node) <- (if f.stuck_at then full else 0);
         for id = 0 to N.num_nodes c - 1 do
           if cone.(id) && id <> f.node then
             match N.node c id with
             | N.Gate (g, fs) ->
               faulty.(id) <-
                 Circuit.Simulate.parallel_gate g
                   (List.map (fun x -> faulty.(x)) fs)
             | N.Input | N.Const _ -> ()
         done;
         List.exists (fun o -> good.(o) lxor faulty.(o) <> 0) out_ids)
      batches
  in
  List.filter detected faults

(* --- full flows ---------------------------------------------------------- *)

type summary = {
  total : int;
  detected : int;
  redundant : int;
  aborted : int;
  vectors : bool array list;
  sat_calls : int;
  dropped_by_simulation : int;
  decisions : int;
  conflicts : int;
  time_seconds : float;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "faults=%d detected=%d redundant=%d aborted=%d vectors=%d sat_calls=%d \
     dropped=%d decisions=%d conflicts=%d time=%.3fs"
    s.total s.detected s.redundant s.aborted (List.length s.vectors)
    s.sat_calls s.dropped_by_simulation s.decisions s.conflicts s.time_seconds

let fault_time_hist metrics =
  Option.map
    (fun m ->
       Sat.Metrics.histogram m "atpg/fault_time_s"
         ~bounds:Sat.Metrics.time_bounds)
    metrics

let write_counters metrics s =
  Option.iter
    (fun m ->
       let set name v = Sat.Metrics.set_counter (Sat.Metrics.counter m name) v in
       set "atpg/faults" s.total;
       set "atpg/detected" s.detected;
       set "atpg/redundant" s.redundant;
       set "atpg/aborted" s.aborted;
       set "atpg/sat_calls" s.sat_calls;
       set "atpg/dropped_by_simulation" s.dropped_by_simulation)
    metrics

let run ?metrics ?(config = Sat.Types.default) ?(use_structural = false)
    ?(fault_simulation = true) ?(random_patterns = 0) c =
  let t0 = Unix.gettimeofday () in
  let fault_time = fault_time_hist metrics in
  let faults = fault_list c in
  let dropped = Hashtbl.create 64 in
  let detected = ref 0
  and redundant = ref 0
  and aborted = ref 0
  and sat_calls = ref 0
  and dropped_count = ref 0
  and decisions = ref 0
  and conflicts = ref 0 in
  let vectors = ref [] in
  (* random-pattern phase: easy-to-test faults never reach SAT *)
  if random_patterns > 0 then begin
    let rng = Sat.Rng.create config.Sat.Types.random_seed in
    let n_inputs = List.length (N.inputs c) in
    for _ = 1 to random_patterns do
      let words = Circuit.Simulate.random_words rng n_inputs in
      let batch =
        List.init Circuit.Simulate.word_width (fun b ->
            Array.map (fun w -> w land (1 lsl b) <> 0) words)
      in
      let remaining =
        List.filter
          (fun g -> not (Hashtbl.mem dropped (g.node, g.stuck_at)))
          faults
      in
      let hit = fault_simulate c remaining batch in
      if hit <> [] then begin
        List.iter (fun g -> Hashtbl.replace dropped (g.node, g.stuck_at) ()) hit;
        vectors := List.rev_append batch !vectors
      end
    done
  end;
  List.iter
    (fun f ->
       if Hashtbl.mem dropped (f.node, f.stuck_at) then begin
         incr dropped_count;
         incr detected
       end
       else begin
         incr sat_calls;
         let ft0 = Sat.Monotime.now_s () in
         let outcome, st = generate_test ~config ~use_structural c f in
         Option.iter
           (fun h -> Sat.Metrics.observe h (Sat.Monotime.now_s () -. ft0))
           fault_time;
         Option.iter (fun m -> Sat.Metrics.add_stats m st) metrics;
         decisions := !decisions + st.Sat.Types.decisions;
         conflicts := !conflicts + st.Sat.Types.conflicts;
         match outcome with
         | Test v ->
           incr detected;
           vectors := v :: !vectors;
           if fault_simulation then begin
             let remaining =
               List.filter
                 (fun g -> not (Hashtbl.mem dropped (g.node, g.stuck_at)))
                 faults
             in
             List.iter
               (fun g -> Hashtbl.replace dropped (g.node, g.stuck_at) ())
               (fault_simulate c remaining [ v ])
           end
         | Redundant -> incr redundant
         | Aborted _ -> incr aborted
       end)
    faults;
  let s =
    {
      total = List.length faults;
      detected = !detected;
      redundant = !redundant;
      aborted = !aborted;
      vectors = List.rev !vectors;
      sat_calls = !sat_calls;
      dropped_by_simulation = !dropped_count;
      decisions = !decisions;
      conflicts = !conflicts;
      time_seconds = Unix.gettimeofday () -. t0;
    }
  in
  write_counters metrics s;
  s

(* Incremental formulation: one session; the fault-free circuit is
   encoded once, each fault's faulty cone is an activation group that is
   released once the fault is resolved.  The session's between-query
   retention pass then drops learned clauses polluted by released
   activation literals.  [on_query] observes each fault's per-query
   statistics delta. *)
let run_incremental ?metrics ?trace ?(config = Sat.Types.default)
    ?(on_query = fun _ _ -> ()) c =
  let t0 = Unix.gettimeofday () in
  let fault_time = fault_time_hist metrics in
  let enc = Circuit.Encode.encode c in
  let sess = Sat.Session.of_formula ~config enc.Circuit.Encode.formula in
  Option.iter (Sat.Session.attach_metrics sess) metrics;
  (match trace with
   | Some _ -> Sat.Session.set_tracer sess trace
   | None -> ());
  let fresh () = Lit.pos (Sat.Session.new_var sess) in
  let faults = fault_list c in
  let detected = ref 0
  and redundant = ref 0
  and aborted = ref 0 in
  let vectors = ref [] in
  let inputs = N.inputs c in
  List.iter
    (fun f ->
       let ft0 = Sat.Monotime.now_s () in
       let base_var = Sat.Session.nvars sess in
       let act = Sat.Session.new_activation sess in
       let guard clause = Sat.Session.add_clause_in sess ~group:act clause in
       let cone = cone_flags c f.node in
       let faulty = Array.make (max 1 (N.num_nodes c)) (Lit.pos 0) in
       for id = 0 to N.num_nodes c - 1 do
         if cone.(id) then
           if id = f.node then begin
             let fv = fresh () in
             faulty.(id) <- fv;
             guard [ (if f.stuck_at then fv else Lit.negate fv) ]
           end
           else
             match N.node c id with
             | N.Gate (g, fs) ->
               let out = fresh () in
               faulty.(id) <- out;
               let pick x =
                 if cone.(x) then faulty.(x)
                 else enc.Circuit.Encode.lit_of_node x
               in
               let ins = List.map pick fs in
               (* guarded Table-1 clauses; n-ary XORs chained *)
               let rec emit out ins g =
                 match g, ins with
                 | (Gate.Xor | Gate.Xnor), _ :: _ :: _ :: _ ->
                   (match ins with
                    | a :: b :: rest ->
                      let aux = fresh () in
                      List.iter
                        (fun cl -> guard (Cnf.Clause.to_list cl))
                        (Circuit.Encode.gate_clauses ~out:aux ~ins:[ a; b ]
                           Gate.Xor);
                      emit out (aux :: rest) g
                    | _ -> assert false)
                 | _ ->
                   List.iter
                     (fun cl -> guard (Cnf.Clause.to_list cl))
                     (Circuit.Encode.gate_clauses ~out ~ins g)
               in
               emit out ins g
             | N.Input | N.Const _ -> assert false
       done;
       let affected = List.filter (fun o -> cone.(o)) (N.output_ids c) in
       if affected = [] then incr redundant
       else begin
         let diffs =
           List.map
             (fun o ->
                let d = fresh () in
                List.iter
                  (fun cl -> guard (Cnf.Clause.to_list cl))
                  (Circuit.Encode.gate_clauses ~out:d
                     ~ins:[ enc.Circuit.Encode.lit_of_node o; faulty.(o) ]
                     Gate.Xor);
                d)
             affected
         in
         guard diffs;
         (* fault activation *)
         let site = enc.Circuit.Encode.lit_of_node f.node in
         guard [ (if f.stuck_at then Lit.negate site else site) ];
         (match Sat.Session.solve ~assumptions:[ act ] sess with
          | Sat.Types.Sat m ->
            incr detected;
            let vec =
              List.map
                (fun id -> m.(Lit.var (enc.Circuit.Encode.lit_of_node id)))
                inputs
              |> Array.of_list
            in
            vectors := vec :: !vectors
          | Sat.Types.Unsat | Sat.Types.Unsat_assuming _ -> incr redundant
          | Sat.Types.Unknown _ -> incr aborted);
         on_query f (Sat.Session.last_stats sess)
       end;
       (* retire this fault's group and pin its now-unconstrained
          variables so later solves never branch on them *)
       Sat.Session.release sess act;
       for v = base_var + 1 to Sat.Session.nvars sess - 1 do
         Sat.Session.add_clause sess [ Lit.neg_of_var v ]
       done;
       Option.iter
         (fun h -> Sat.Metrics.observe h (Sat.Monotime.now_s () -. ft0))
         fault_time)
    faults;
  let st = Sat.Session.cumulative_stats sess in
  let s =
    {
      total = List.length faults;
      detected = !detected;
      redundant = !redundant;
      aborted = !aborted;
      vectors = List.rev !vectors;
      sat_calls = List.length faults;
      dropped_by_simulation = 0;
      decisions = st.Sat.Types.decisions;
      conflicts = st.Sat.Types.conflicts;
      time_seconds = Unix.gettimeofday () -. t0;
    }
  in
  write_counters metrics s;
  s
