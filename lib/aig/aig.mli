(** And-inverter graphs: two-input AND nodes with complemented edges,
    hash-consed on construction.

    The normal form behind most SAT-based EDA flows: conversion to AIG
    is itself a structural-hashing pass, two circuits built into one
    manager share all common logic, and the CNF translation emits three
    clauses per AND node.

    Construction applies {e two-level rewriting} on top of the level-one
    identities: absorption ([(x & y) & x = x & y]), two-level
    contradiction ([(x & y) & ~x = 0], including between two AND
    children), substitution ([~(x & y) & x = x & ~y]) and resolution
    ([~(x & y) & ~(x & ~y) = ~x]).  Together with constant propagation
    these are the bounded cleanup rules of a fraiging front-end: they
    fire in O(1) per node and never grow the graph. *)

type man
(** A manager; owns the node table. *)

type lit = private int
(** An edge: node index with a complement bit.  Only valid with the
    manager that created it. *)

val create : unit -> man

val const_false : lit
val const_true : lit

val add_input : man -> lit
(** Inputs are numbered in creation order. *)

val num_inputs : man -> int

val input : man -> int -> lit
(** The edge of the i-th input (creation order).  Raises [Not_found]
    when out of range. *)

val num_ands : man -> int

val neg : lit -> lit
val is_complemented : lit -> bool

val node_of : lit -> int
(** The node index under an edge. *)

val of_node : int -> lit
(** The uncomplemented edge of a node index. *)

val and_ : man -> lit -> lit -> lit
(** Hash-consed with the level-one simplifications ([a & a = a],
    [a & ~a = 0], constants) plus the two-level rewriting rules above. *)

val or_ : man -> lit -> lit -> lit
val xor : man -> lit -> lit -> lit
val mux : man -> lit -> lit -> lit -> lit
(** [mux m s t e] = if [s] then [t] else [e]. *)

type view = Const | Input of int | And of lit * lit

val view : man -> int -> view
(** Structure of a node, for algorithms that walk the graph (sweeping,
    cone extraction).  Node indices are a topological order: an AND's
    children always have smaller indices. *)

val eval : man -> bool array -> lit -> bool
(** Input values in creation order. *)

val sim_words : man -> int array -> int array
(** 62-way bit-parallel simulation: each input carries
    [Circuit.Simulate.word_width] packed patterns; returns the packed
    word per node (indexed by node, not edge).  One linear pass over the
    node table. *)

val of_netlist : Circuit.Netlist.t -> man * (string * lit) list
(** Converts a combinational netlist; returns the manager and the named
    output edges.  The AIG inputs correspond positionally to the
    netlist's inputs. *)

val merge_netlists :
  Circuit.Netlist.t -> Circuit.Netlist.t -> man * (lit * lit) list
(** Builds both circuits over shared inputs in one manager — common
    structure is hash-consed away — and returns the paired output
    edges.  Raises [Invalid_argument] on interface mismatch. *)

val cleanup : man -> outputs:lit list -> man * lit list
(** Dangling-node sweep: rebuilds the cones of [outputs] in a fresh
    manager through the rewriting constructor, re-applying constant
    propagation and the two-level rules, and drops every node not
    reachable from the outputs.  The input interface (count and order)
    is preserved even for inputs no output depends on. *)

val to_netlist : man -> outputs:(string * lit) list -> Circuit.Netlist.t
(** Re-materialises as a gate netlist (AND/NOT gates). *)

val to_cnf : man -> Cnf.Formula.t * (lit -> Cnf.Lit.t)
(** Tseitin translation: one variable per node, three clauses per AND.
    The mapping converts any edge of the manager to a formula literal. *)

val node_count : man -> int
(** Inputs + AND nodes + the constant. *)

(** {2 Structure observations for solver guidance}

    The signals docs/TUNING.md's seeding rules consume: estimated
    signal probabilities from random 62-way bit-parallel simulation,
    and structural fanout counts.  Deterministic for a fixed seed. *)

val fanout_counts : man -> int array
(** Per-node fanout: how many AND nodes reference the node (either
    polarity), indexed by node id. *)

val signal_probs : ?rounds:int -> ?seed:int -> man -> float array
(** Per-node signal probability estimated over [rounds] (default 4)
    random simulation words — [rounds * 62] patterns — indexed by node
    id.  The constant node reports 1. *)

val guidance :
  ?rounds:int ->
  ?seed:int ->
  man ->
  var_of:(int -> int option) ->
  Sat.Types.guidance
(** Branching guidance for an encoding of this graph: observations for
    every node [var_of] maps to a solver variable, folded through
    {!Sat.Guide.of_observations}.  For a {!to_cnf} encoding,
    [var_of id = Some (Cnf.Lit.var (lit_of (of_node id)))]. *)

(** Incremental per-node CNF emission into a {!Sat.Session}.

    The substrate of SAT sweeping: instead of translating the whole
    graph up front, clauses are emitted lazily, cone by cone, as the
    sweep queries nodes — and each AND node's three clauses live in
    their own session {e activation group}, so the clauses of a node
    that is later merged away can be {!release}d (the session's
    retention policy then also drops learned clauses polluted by the
    dead group). *)
module Session_cnf : sig
  type t

  val create : ?config:Sat.Types.config -> man -> t
  (** A fresh empty session over the manager.  The manager may keep
      growing after this call; new nodes are picked up lazily. *)

  val session : t -> Sat.Session.t
  (** The underlying session — for solving, budgets, metrics, tracing. *)

  val lit_of : t -> lit -> Cnf.Lit.t
  (** The session literal of an edge.  On first touch of a node this
      emits the defining clauses of its whole cone (three clauses per
      AND node, each node's clauses in a fresh activation group; the
      constant node gets a permanent unit; inputs get a bare
      variable). *)

  val assumptions : t -> lit list -> Cnf.Lit.t list
  (** Activation literals of every live AND group in the cones of the
      given edges (emitting the cones first if needed) — the assumption
      set that switches exactly those definitions on for one query. *)

  val release : t -> lit -> unit
  (** Drops the defining clause group of the edge's node.  Only legal
      once nothing will reference the node again (a node merged away by
      sweeping); releasing a node without a group is a no-op. *)

  val emitted_nodes : t -> int
  (** Number of AND nodes whose clauses have been emitted so far. *)

  val guide :
    t -> prob_of:(int -> float) -> fanout_of:(int -> int) -> unit
  (** Seeds the session's branching heuristic
      ({!Sat.Session.apply_guidance}) for every node whose session
      variable was allocated since the previous [guide] call, asking
      the suppliers for each node's signal probability and fanout.
      Consuming the pending list makes repeated calls O(new nodes) —
      call it after each batch of [lit_of]/[assumptions] touches, e.g.
      once per sweep round.  Legal between solves. *)

  val pending_guides : t -> int
  (** Number of nodes awaiting a [guide] call (exposed for tests). *)
end
