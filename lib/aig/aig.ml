(* Nodes: node 0 is the constant (TRUE when referenced uncomplemented);
   inputs and ANDs follow.  An edge (lit) packs a node index and a
   complement bit, like CNF literals.  Creation order is a topological
   order: an AND's children always have smaller node indices. *)

type lit = int

type node =
  | Const
  | Input of int
  | And of lit * lit

type view = node = Const | Input of int | And of lit * lit

type man = {
  nodes : node Sat.Vec.t;
  strash : (lit * lit, int) Hashtbl.t;
  input_ids : int Sat.Vec.t;  (* input ordinal -> node index *)
  mutable inputs : int;
  mutable ands : int;
}

let create () =
  let m =
    { nodes = Sat.Vec.create ~dummy:Const (); strash = Hashtbl.create 256;
      input_ids = Sat.Vec.create ~dummy:(-1) (); inputs = 0; ands = 0 }
  in
  Sat.Vec.push m.nodes Const;
  m

let const_true : lit = 0
let const_false : lit = 1
let node_of (l : lit) = l lsr 1
let of_node (id : int) : lit = id * 2
let neg (l : lit) : lit = l lxor 1
let is_complemented l = l land 1 = 1

let add_input m =
  let id = Sat.Vec.size m.nodes in
  Sat.Vec.push m.nodes (Input m.inputs);
  Sat.Vec.push m.input_ids id;
  m.inputs <- m.inputs + 1;
  (id * 2 : lit)

let num_inputs m = m.inputs

let input m i =
  if i < 0 || i >= m.inputs then raise Not_found;
  (Sat.Vec.get m.input_ids i * 2 : lit)

let num_ands m = m.ands

let node_count m = Sat.Vec.size m.nodes

let view m id = Sat.Vec.get m.nodes id

(* The underlying AND node of an edge, if any. *)
let node_children m l =
  match Sat.Vec.get m.nodes (node_of l) with
  | And (x, y) -> Some (x, y)
  | Const | Input _ -> None

let rec and_ m a b =
  (* level-one identities *)
  if a = const_false || b = const_false then const_false
  else if a = const_true then b
  else if b = const_true then a
  else if a = b then a
  else if a = neg b then const_false
  else
    match two_level m a b with
    | Some r -> r
    | None ->
      let x, y = if a <= b then (a, b) else (b, a) in
      (match Hashtbl.find_opt m.strash (x, y) with
       | Some id -> (id * 2 : lit)
       | None ->
         let id = Sat.Vec.size m.nodes in
         Sat.Vec.push m.nodes (And (x, y));
         Hashtbl.add m.strash (x, y) id;
         m.ands <- m.ands + 1;
         (id * 2 : lit))

(* Two-level rewriting (the bounded AIG cleanup rules): each rule
   inspects at most the children of the two operands, so it is O(1),
   and every right-hand side is an existing edge, a constant, or a
   recursive [and_] over strictly older nodes — terminating and never
   growing the graph. *)
and two_level m a b =
  match one_sided m a b with
  | Some _ as r -> r
  | None ->
    (match one_sided m b a with
     | Some _ as r -> r
     | None -> both_sided m a b)

(* Rules keyed on [a]'s underlying AND node. *)
and one_sided m a b =
  match node_children m a with
  | None -> None
  | Some (x, y) ->
    if not (is_complemented a) then
      if b = x || b = y then Some a (* absorption: (x&y) & x = x&y *)
      else if b = neg x || b = neg y then
        Some const_false (* contradiction: (x&y) & ~x = 0 *)
      else None
    else if b = neg x || b = neg y then
      Some b (* ~x -> ~(x&y), so ~(x&y) & ~x = ~x *)
    else if b = x then Some (and_ m x (neg y)) (* substitution *)
    else if b = y then Some (and_ m y (neg x))
    else None

(* Rules needing both operands' AND nodes. *)
and both_sided m a b =
  match node_children m a, node_children m b with
  | Some (x, y), Some (w, z) ->
    let pa = not (is_complemented a) and pb = not (is_complemented b) in
    if pa && pb then
      if x = neg w || x = neg z || y = neg w || y = neg z then
        Some const_false (* children contradict across the two ANDs *)
      else None
    else if (not pa) && not pb then
      (* resolution: ~(s&t) & ~(s&~t) = ~s *)
      if (x = w && y = neg z) || (x = z && y = neg w) then Some (neg x)
      else if (y = w && x = neg z) || (y = z && x = neg w) then Some (neg y)
      else None
    else begin
      (* one plain, one complemented: s&t forces a child of the
         complemented AND false, so the complemented edge is true *)
      let (s, t), (u, v), plain =
        if pa then ((x, y), (w, z), a) else ((w, z), (x, y), b)
      in
      if u = neg s || u = neg t || v = neg s || v = neg t then Some plain
      else None
    end
  | _ -> None

let or_ m a b = neg (and_ m (neg a) (neg b))

let xor m a b =
  (* a xor b = (a | b) & ~(a & b) *)
  and_ m (or_ m a b) (neg (and_ m a b))

let mux m s t e = or_ m (and_ m s t) (and_ m (neg s) e)

let eval m inputs l =
  let memo = Array.make (Sat.Vec.size m.nodes) (-1) in
  let rec node_val id =
    if memo.(id) >= 0 then memo.(id) = 1
    else begin
      let v =
        match Sat.Vec.get m.nodes id with
        | Const -> true
        | Input k -> inputs.(k)
        | And (a, b) -> edge_val a && edge_val b
      in
      memo.(id) <- (if v then 1 else 0);
      v
    end
  and edge_val l =
    let v = node_val (node_of l) in
    if is_complemented l then not v else v
  in
  edge_val l

let word_mask = (1 lsl Circuit.Simulate.word_width) - 1

let sim_words m inputs =
  if Array.length inputs < m.inputs then
    invalid_arg "Aig.sim_words: input word count mismatch";
  let n = Sat.Vec.size m.nodes in
  let out = Array.make n 0 in
  let edge l =
    let v = out.(node_of l) in
    if is_complemented l then lnot v land word_mask else v
  in
  for id = 0 to n - 1 do
    out.(id) <-
      (match Sat.Vec.get m.nodes id with
       | Const -> word_mask
       | Input k -> inputs.(k) land word_mask
       | And (a, b) -> edge a land edge b)
  done;
  out

let build_from m circuit input_edges =
  let values = Array.make (max 1 (Circuit.Netlist.num_nodes circuit)) const_false in
  List.iteri
    (fun i id -> values.(id) <- input_edges.(i))
    (Circuit.Netlist.inputs circuit);
  let conj = function
    | [] -> const_true
    | e :: rest -> List.fold_left (and_ m) e rest
  in
  for id = 0 to Circuit.Netlist.num_nodes circuit - 1 do
    match Circuit.Netlist.node circuit id with
    | Circuit.Netlist.Input -> ()
    | Circuit.Netlist.Const b ->
      values.(id) <- (if b then const_true else const_false)
    | Circuit.Netlist.Gate (g, fs) ->
      let ins = List.map (fun f -> values.(f)) fs in
      values.(id) <-
        (match g with
         | Circuit.Gate.And -> conj ins
         | Circuit.Gate.Nand -> neg (conj ins)
         | Circuit.Gate.Or -> neg (conj (List.map neg ins))
         | Circuit.Gate.Nor -> conj (List.map neg ins)
         | Circuit.Gate.Xor ->
           (match ins with
            | e :: rest -> List.fold_left (xor m) e rest
            | [] -> const_false)
         | Circuit.Gate.Xnor ->
           (match ins with
            | e :: rest -> neg (List.fold_left (xor m) e rest)
            | [] -> const_true)
         | Circuit.Gate.Not -> (match ins with [ e ] -> neg e | _ -> assert false)
         | Circuit.Gate.Buf -> (match ins with [ e ] -> e | _ -> assert false))
  done;
  values

let of_netlist circuit =
  let m = create () in
  let input_edges =
    Array.of_list (List.map (fun _ -> add_input m) (Circuit.Netlist.inputs circuit))
  in
  let values = build_from m circuit input_edges in
  (m, List.map (fun (n, o) -> (n, values.(o))) (Circuit.Netlist.outputs circuit))

let merge_netlists c1 c2 =
  if List.length (Circuit.Netlist.inputs c1)
     <> List.length (Circuit.Netlist.inputs c2)
     || List.length (Circuit.Netlist.outputs c1)
        <> List.length (Circuit.Netlist.outputs c2)
  then invalid_arg "Aig.merge_netlists: interface mismatch";
  let m = create () in
  let input_edges =
    Array.of_list (List.map (fun _ -> add_input m) (Circuit.Netlist.inputs c1))
  in
  let v1 = build_from m c1 input_edges in
  let v2 = build_from m c2 input_edges in
  let pairs =
    List.map2
      (fun a b -> (v1.(a), v2.(b)))
      (Circuit.Netlist.output_ids c1) (Circuit.Netlist.output_ids c2)
  in
  (m, pairs)

let cleanup m ~outputs =
  let fresh = create () in
  let input_edges = Array.init m.inputs (fun _ -> add_input fresh) in
  let memo = Array.make (Sat.Vec.size m.nodes) (-1) in
  let rec edge l =
    let e = node (node_of l) in
    if is_complemented l then neg e else e
  and node id =
    if memo.(id) >= 0 then memo.(id)
    else begin
      let e =
        match Sat.Vec.get m.nodes id with
        | Const -> const_true
        | Input k -> input_edges.(k)
        | And (a, b) -> and_ fresh (edge a) (edge b)
      in
      memo.(id) <- e;
      e
    end
  in
  (fresh, List.map edge outputs)

let to_netlist m ~outputs =
  let c = Circuit.Netlist.create () in
  let node_map = Array.make (Sat.Vec.size m.nodes) (-1) in
  let not_memo = Hashtbl.create 32 in
  let rec node_id id =
    if node_map.(id) >= 0 then node_map.(id)
    else begin
      let nid =
        match Sat.Vec.get m.nodes id with
        | Const ->
          Circuit.Netlist.add_const c true
        | Input _ -> Circuit.Netlist.add_input c
        | And (a, b) ->
          let fa = edge a and fb = edge b in
          Circuit.Netlist.add_gate c Circuit.Gate.And [ fa; fb ]
      in
      node_map.(id) <- nid;
      nid
    end
  and edge l =
    let nid = node_id (node_of l) in
    if is_complemented l then (
      match Hashtbl.find_opt not_memo nid with
      | Some inv -> inv
      | None ->
        let inv = Circuit.Netlist.add_gate c Circuit.Gate.Not [ nid ] in
        Hashtbl.add not_memo nid inv;
        inv)
    else nid
  in
  (* inputs must exist (in order) even if unused by the outputs *)
  for id = 0 to Sat.Vec.size m.nodes - 1 do
    match Sat.Vec.get m.nodes id with
    | Input _ -> ignore (node_id id)
    | Const | And _ -> ()
  done;
  List.iter (fun (name, l) -> Circuit.Netlist.set_output ~name c (edge l)) outputs;
  c

(* --- structure observations for solver guidance -------------------------- *)

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let fanout_counts m =
  let n = Sat.Vec.size m.nodes in
  let fo = Array.make n 0 in
  for id = 0 to n - 1 do
    match Sat.Vec.get m.nodes id with
    | And (a, b) ->
      fo.(node_of a) <- fo.(node_of a) + 1;
      fo.(node_of b) <- fo.(node_of b) + 1
    | Const | Input _ -> ()
  done;
  fo

let signal_probs ?(rounds = 4) ?(seed = 0x5eed) m =
  let n = Sat.Vec.size m.nodes in
  let rng = Sat.Rng.create seed in
  let ones = Array.make n 0 in
  for _ = 1 to rounds do
    let vals = sim_words m (Circuit.Simulate.random_words rng m.inputs) in
    for id = 0 to n - 1 do
      ones.(id) <- ones.(id) + popcount vals.(id)
    done
  done;
  let total =
    float_of_int (max 1 (rounds * Circuit.Simulate.word_width))
  in
  Array.map (fun c -> float_of_int c /. total) ones

let guidance ?rounds ?seed m ~var_of =
  let probs = signal_probs ?rounds ?seed m in
  let fo = fanout_counts m in
  let obs = ref [] in
  for id = Sat.Vec.size m.nodes - 1 downto 0 do
    match var_of id with
    | Some v ->
      obs :=
        { Sat.Guide.var = v; prob = probs.(id); fanout = fo.(id) } :: !obs
    | None -> ()
  done;
  Sat.Guide.of_observations !obs

let to_cnf m =
  let f = Cnf.Formula.create () in
  let vars = Array.init (Sat.Vec.size m.nodes) (fun _ -> Cnf.Formula.fresh_var f) in
  let lit_of (l : lit) =
    let base = Cnf.Lit.pos vars.(node_of l) in
    if is_complemented l then Cnf.Lit.negate base else base
  in
  (* constant-true node *)
  Cnf.Formula.add_clause_l f [ Cnf.Lit.pos vars.(0) ];
  for id = 0 to Sat.Vec.size m.nodes - 1 do
    match Sat.Vec.get m.nodes id with
    | Const | Input _ -> ()
    | And (a, b) ->
      let out = Cnf.Lit.pos vars.(id) in
      let la = lit_of a and lb = lit_of b in
      Cnf.Formula.add_clause_l f [ Cnf.Lit.negate out; la ];
      Cnf.Formula.add_clause_l f [ Cnf.Lit.negate out; lb ];
      Cnf.Formula.add_clause_l f
        [ out; Cnf.Lit.negate la; Cnf.Lit.negate lb ]
  done;
  (f, lit_of)

module Session_cnf = struct
  type nonrec t = {
    man : man;
    sess : Sat.Session.t;
    mutable vars : int array;            (* node -> session var, -1 = none *)
    mutable groups : Cnf.Lit.t option array;  (* node -> activation literal *)
    mutable stamp : int array;           (* cone-walk visit marks *)
    mutable stamp_id : int;
    mutable emitted : int;
    mutable fresh : int list;
        (* nodes whose session vars were allocated since the last
           [guide] call — the lazily-grown frontier guidance still owes
           seeds to *)
  }

  let create ?config man =
    {
      man;
      sess = Sat.Session.create ?config ();
      vars = Array.make 64 (-1);
      groups = Array.make 64 None;
      stamp = Array.make 64 0;
      stamp_id = 0;
      emitted = 0;
      fresh = [];
    }

  let session t = t.sess

  (* the manager may have grown since the last call *)
  let sync t =
    let n = Sat.Vec.size t.man.nodes in
    if Array.length t.vars < n then begin
      let cap = max n (2 * Array.length t.vars) in
      let vars = Array.make cap (-1) in
      Array.blit t.vars 0 vars 0 (Array.length t.vars);
      let groups = Array.make cap None in
      Array.blit t.groups 0 groups 0 (Array.length t.groups);
      let stamp = Array.make cap 0 in
      Array.blit t.stamp 0 stamp 0 (Array.length t.stamp);
      t.vars <- vars;
      t.groups <- groups;
      t.stamp <- stamp
    end

  let lit_of_emitted t l =
    let base = Cnf.Lit.pos t.vars.(node_of l) in
    if is_complemented l then Cnf.Lit.negate base else base

  let rec ensure t id =
    if t.vars.(id) < 0 then
      match Sat.Vec.get t.man.nodes id with
      | Const ->
        let v = Sat.Session.new_var t.sess in
        t.vars.(id) <- v;
        Sat.Session.add_clause t.sess [ Cnf.Lit.pos v ]
      | Input _ ->
        t.vars.(id) <- Sat.Session.new_var t.sess;
        t.fresh <- id :: t.fresh
      | And (a, b) ->
        ensure t (node_of a);
        ensure t (node_of b);
        let v = Sat.Session.new_var t.sess in
        t.vars.(id) <- v;
        t.fresh <- id :: t.fresh;
        let g = Sat.Session.new_activation t.sess in
        t.groups.(id) <- Some g;
        t.emitted <- t.emitted + 1;
        let out = Cnf.Lit.pos v in
        let la = lit_of_emitted t a and lb = lit_of_emitted t b in
        Sat.Session.add_clause_in t.sess ~group:g [ Cnf.Lit.negate out; la ];
        Sat.Session.add_clause_in t.sess ~group:g [ Cnf.Lit.negate out; lb ];
        Sat.Session.add_clause_in t.sess ~group:g
          [ out; Cnf.Lit.negate la; Cnf.Lit.negate lb ]

  let lit_of t l =
    sync t;
    ensure t (node_of l);
    lit_of_emitted t l

  let assumptions t edges =
    sync t;
    List.iter (fun l -> ensure t (node_of l)) edges;
    t.stamp_id <- t.stamp_id + 1;
    let acc = ref [] in
    let rec walk id =
      if t.stamp.(id) <> t.stamp_id then begin
        t.stamp.(id) <- t.stamp_id;
        match Sat.Vec.get t.man.nodes id with
        | Const | Input _ -> ()
        | And (a, b) ->
          (match t.groups.(id) with
           | Some g when Sat.Session.is_active t.sess g -> acc := g :: !acc
           | Some _ | None -> ());
          walk (node_of a);
          walk (node_of b)
      end
    in
    List.iter (fun l -> walk (node_of l)) edges;
    !acc

  let release t l =
    sync t;
    match t.groups.(node_of l) with
    | Some g -> if Sat.Session.is_active t.sess g then Sat.Session.release t.sess g
    | None -> ()

  (* Seed the session's branching heuristic for the variables allocated
     since the last call.  The probability/fanout suppliers see node
     ids; a sweep passes its own simulation signatures and an
     incrementally maintained fanout count.  Consuming the fresh list
     keeps repeated calls O(new nodes), so guiding an ever-growing
     sweep session stays cheap. *)
  let guide t ~prob_of ~fanout_of =
    match t.fresh with
    | [] -> ()
    | fresh ->
      t.fresh <- [];
      let obs =
        List.rev_map
          (fun id ->
             { Sat.Guide.var = t.vars.(id); prob = prob_of id;
               fanout = fanout_of id })
          fresh
      in
      let g = Sat.Guide.of_observations obs in
      Sat.Session.apply_guidance t.sess g;
      Option.iter (fun m -> Sat.Guide.emit_metrics m g) (Sat.Session.metrics t.sess)

  let pending_guides t = List.length t.fresh

  let emitted_nodes t = t.emitted
end
