(* Simulation-derived branching observations over a netlist.

   Random 62-way bit-parallel simulation estimates each node's signal
   probability; together with structural fanout this is exactly what
   Sat.Guide.of_observations wants (see docs/TUNING.md "Seeding from
   observations").  The estimate is deliberately crude — a few hundred
   random patterns — because its only consumer is a branching
   heuristic: a wrong probability costs search time, never
   correctness. *)

type observation = { node : Netlist.node_id; prob : float; fanout : int }

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let observe ?(rounds = 4) ?(seed = 0x5eed) c =
  let n = Netlist.num_nodes c in
  let nins = List.length (Netlist.inputs c) in
  let rng = Sat.Rng.create seed in
  let ones = Array.make n 0 in
  for _ = 1 to rounds do
    let words = Simulate.random_words rng nins in
    let vals = Simulate.parallel_all c words in
    for i = 0 to n - 1 do
      ones.(i) <- ones.(i) + popcount vals.(i)
    done
  done;
  let total = float_of_int (max 1 (rounds * Simulate.word_width)) in
  Array.init n (fun i ->
      {
        node = i;
        prob = float_of_int ones.(i) /. total;
        fanout = List.length (Netlist.fanouts c i);
      })

let to_guide ~lit_of_node obs =
  Sat.Guide.of_observations
    (Array.fold_right
       (fun o acc ->
          match lit_of_node o.node with
          | None -> acc
          | Some l ->
            (* a negative encoding literal sees the complemented signal *)
            let prob = if Cnf.Lit.is_pos l then o.prob else 1.0 -. o.prob in
            { Sat.Guide.var = Cnf.Lit.var l; prob; fanout = o.fanout } :: acc)
       obs [])

let guidance ?rounds ?seed c ~lit_of_node =
  to_guide ~lit_of_node (observe ?rounds ?seed c)
