(** ISCAS BENCH netlist format.

    Supported lines: [INPUT(name)], [OUTPUT(name)], comments ([#]) and
    gate definitions [name = GATE(a, b, ...)] with the gate names of
    {!Gate.of_string}.  The combinational entry points reject [DFF];
    {!parse_sequential_string} accepts ISCAS-89-style [q = DFF(d)] lines,
    turning each flip-flop output into a state input (initialised to 0,
    the s-series convention) and its argument into the next-state
    function. *)

exception Parse_error of string

val parse_string : string -> Netlist.t
val parse_file : string -> Netlist.t
val to_string : Netlist.t -> string
val write_file : string -> Netlist.t -> unit

val parse_sequential_string : string -> Sequential.t
val parse_sequential_file : string -> Sequential.t

val sequential_to_string : Sequential.t -> string
(** Prints with [DFF] lines; only all-false initial states are
    representable (raises [Invalid_argument] otherwise). *)
