(** Simulation-derived branching observations.

    Estimates per-node signal probabilities by random 62-way
    bit-parallel simulation ({!Simulate.parallel_all}) and pairs them
    with structural fanout, producing the observations
    {!Sat.Guide.of_observations} turns into initial VSIDS activities
    and saved phases (the DAC-2000 Section 5 structure signals; see
    [docs/TUNING.md]).

    Deterministic for a fixed [seed] and [rounds].  Purely heuristic:
    guidance influences search order only, never answers. *)

type observation = {
  node : Netlist.node_id;
  prob : float;  (** estimated signal probability in [0, 1] *)
  fanout : int;
}

val observe : ?rounds:int -> ?seed:int -> Netlist.t -> observation array
(** [observe c] simulates [rounds] (default 4) random word batches —
    [rounds * 62] patterns — and reports one observation per node,
    indexed by node id. *)

val to_guide :
  lit_of_node:(Netlist.node_id -> Cnf.Lit.t option) ->
  observation array ->
  Sat.Types.guidance
(** Map observations into solver guidance through an encoding.  Nodes
    mapped to [None] are dropped; a negative literal flips the
    probability (the variable encodes the complemented signal). *)

val guidance :
  ?rounds:int ->
  ?seed:int ->
  Netlist.t ->
  lit_of_node:(Netlist.node_id -> Cnf.Lit.t option) ->
  Sat.Types.guidance
(** {!observe} followed by {!to_guide}. *)
