(** Gate-level combinational netlists.

    Nodes are numbered densely from 0 in creation order, which is a
    topological order by construction (a gate may only reference already
    existing nodes).  The structure is a mutable builder; analyses
    ({!fanouts}, {!level}) are computed on demand against the current
    contents. *)

type node_id = int

type node =
  | Input
  | Const of bool
  | Gate of Gate.t * node_id list

type t

val create : unit -> t

val add_input : ?name:string -> t -> node_id
val add_const : t -> bool -> node_id
val add_gate : ?name:string -> t -> Gate.t -> node_id list -> node_id
(** Raises [Invalid_argument] on bad arity or dangling fanin ids. *)

val set_output : ?name:string -> t -> node_id -> unit
(** Marks a node as a primary output (a node may be marked once). *)

val num_nodes : t -> int
val node : t -> node_id -> node
val inputs : t -> node_id list
(** In creation order. *)

val outputs : t -> (string * node_id) list
val output_ids : t -> node_id list
val name : t -> node_id -> string
(** The given name or ["n<id>"]. *)

val find_by_name : t -> string -> node_id option

val fanins : t -> node_id -> node_id list
val fanouts : t -> node_id -> node_id list
(** Reverse edges; recomputed when the netlist changed. *)

val gate_count : t -> int
val level : t -> node_id -> int
(** Longest path from an input/constant (inputs are level 0). *)

val depth : t -> int
(** Maximum output level. *)

val transitive_fanin : t -> node_id -> node_id list
val transitive_fanout : t -> node_id -> node_id list

val copy : t -> t

val import :
  t -> into:t -> map_node:(node_id -> node_id option) -> node_id array
(** Copies every node of the source into [into].  [map_node] may redirect
    a source node to an existing node of the destination (used to share
    primary inputs and to cut at fault sites); unmapped inputs raise
    [Invalid_argument].  Outputs are not marked.  Returns the source-id to
    destination-id mapping. *)

val pp_stats : Format.formatter -> t -> unit
