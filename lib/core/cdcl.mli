(** Conflict-driven clause-learning SAT solver.

    This is the generic backtrack-search algorithm of Figure 2 of the paper
    with the "key properties" of modern solvers (Sec. 4.1): conflict
    analysis with clause recording, non-chronological backtracking,
    relevance-based (and other) clause-deletion policies, branching
    heuristics, randomized restarts (Sec. 6), and incremental solving under
    assumptions (Sec. 6).

    Two-literal watching is used for Boolean constraint propagation
    ([Deduce]); 1-UIP conflict analysis implements [Diagnose]; the asserted
    UIP literal at the backjump level realises GRASP's conflict-induced
    necessary assignments.

    A {!plugin} lets a client layer observe assignments and override the
    decision procedure and the satisfiability test — the mechanism by which
    the [Csat] library adds the circuit structural layer of Section 5
    without touching the solver's data structures. *)

type t

type plugin = {
  on_assign : Cnf.Lit.t -> unit;
      (** called after every assignment (decision or implication) *)
  on_unassign : Cnf.Lit.t -> unit;
      (** called as assignments are undone during backtracking *)
  decide : unit -> Cnf.Lit.t option;
      (** consulted before the built-in heuristic; must return an
          unassigned literal or [None] to fall through *)
  is_complete : unit -> bool;
      (** when it returns [true] the current (possibly partial) assignment
          is declared satisfying and the search stops — the paper's
          "empty justification frontier" termination test *)
}

val no_plugin : plugin

val create : ?config:Types.config -> Cnf.Formula.t -> t
(** Builds a solver over a snapshot of the formula's clauses.  Later
    clauses added to the [Formula.t] are not seen; use {!add_clause}.
    When the configuration carries a [guide], it is applied once the
    formula's variables and clauses are in (see {!apply_guidance}). *)

val apply_guidance : t -> Types.guidance -> unit
(** Seeds VSIDS activities and saved phases from structure-derived
    guidance (see {!module:Guide} and [docs/TUNING.md]).  Activities in
    [[0, 1]] are scaled to the solver's current activity ceiling, so
    seeded variables are branched first but later conflict-driven bumps
    can overtake them; a seed below a variable's current activity is
    ignored.  Phases overwrite the saved polarity.  Legal between
    solves; variables outside the solver's range are skipped.  Purely
    heuristic — never changes the answer. *)

val config : t -> Types.config
val set_plugin : t -> plugin -> unit

val nvars : t -> int
val new_var : t -> int

val add_clause : t -> Cnf.Lit.t list -> unit
(** Adds a clause at decision level 0 (the solver must not be
    mid-search).  Adding a falsified clause makes the instance
    unsatisfiable. *)

val import_clause : ?lbd:int -> t -> Cnf.Lit.t list -> unit
(** Accepts a {e foreign} clause — typically one learned by another
    solver working on the same formula — at decision level 0, reusing
    {!add_clause}'s simplification and watch invariants.  The clause is
    recorded as a learnt clause carrying [lbd] (default: its length), so
    clause-deletion policies may later discard it; clauses currently
    locked as propagation reasons are never deleted.  Importing is sound
    iff the clause is an implicate of the solver's formula.  Counted in
    the [imported] field of {!Types.stats}.  Legal between [solve] calls and from a
    {!set_restart_hook} callback (both are level-0 boundaries). *)

val interrupt : t -> unit
(** Requests cooperative interruption of the running (or next) [solve]
    call.  Safe to call from any domain.  The search loop checks the
    flag once per iteration and returns [Unknown "interrupted"], leaving
    the solver at level 0 and fully reusable; the request is consumed,
    so a subsequent [solve] runs to completion.  Counted in the
    [interrupts] field of {!Types.stats}. *)

val interrupt_requested : t -> bool
(** [true] while an {!interrupt} request is pending (not yet consumed by
    a [solve] loop iteration). *)

val clear_interrupt : t -> unit
(** Withdraws a pending {!interrupt} request.  For session pools: a
    cancellation that races with the end of the solve it meant to stop
    would otherwise leave the flag set and spuriously abort the {e next}
    query on the same solver.  Only the owner of the solver (the worker
    that knows no solve is running) may call this. *)

val set_learn_hook : t -> (Cnf.Lit.t list -> int -> unit) option -> unit
(** [set_learn_hook s (Some h)] makes the solver call [h lits lbd] once
    for every recorded learned clause (unit learned clauses report
    [lbd = 1]), before the clause is attached.  Used to export strong
    clauses to other solvers of the same formula.  [None] removes the
    hook. *)

val set_restart_hook : t -> (unit -> unit) option -> unit
(** Called at level-0 boundaries of the search: once at [solve] entry
    and after every restart.  The solver is at decision level 0 during
    the callback, so {!import_clause} is legal there — the import side
    of clause sharing. *)

val set_tracer : t -> Trace.sink option -> unit
(** Attaches a {!Trace} sink.  The solver then emits structured events —
    decisions, propagation batches, conflicts, learned clauses, restarts,
    database reductions, imports, and solve begin/end — into the sink.
    With [None] (the default) every emission site is a single option
    check; the propagation inner loop is untouched either way. *)

val set_instruments : t -> Metrics.solver_instruments option -> unit
(** Attaches the standard search-shape histograms
    ({!Metrics.solver_instruments}): LBD per learned clause, decision
    levels unwound per conflict, and trail depth at each conflict.
    [None] (the default) disables the observations. *)

val set_metrics : t -> Metrics.t option -> unit
(** Attaches a full metrics registry for the counter-shaped
    instrumentation that {!set_instruments}'s fixed histogram record
    cannot carry: the inprocessing pass increments [inprocess/rounds],
    [inprocess/subsumed], [inprocess/vivified] and
    [inprocess/vivified_literals], and brackets itself in a ["simplify"]
    phase span ({!Metrics.phase_begin}/{!Metrics.phase_end}).  [None]
    (the default) disables the emissions. *)

type inprocess_stats = {
  mutable inp_rounds : int;    (** inprocessing passes run *)
  mutable inp_subsumed : int;  (** learnt clauses deleted by subsumption *)
  mutable inp_vivified : int;  (** learnt clauses shortened by vivification *)
  mutable inp_vivified_lits : int;  (** literals removed by vivification *)
}

val inprocess_stats : t -> inprocess_stats
(** Cumulative counters of the inprocessing hook enabled by
    {!Types.config.inprocessing}: at restart boundaries (at least
    [inprocess_interval] conflicts apart) the solver deletes learnt
    clauses subsumed by a smaller clause and {e vivifies} the
    lowest-LBD learnt clauses — asserting the negation of each literal
    in turn and shortening the clause when propagation closes it early.
    The pass is budgeted (clauses and propagations per pass) so it can
    never dominate the search it is meant to accelerate. *)

val solve :
  ?assumptions:Cnf.Lit.t list ->
  ?max_conflicts:int ->
  ?max_decisions:int ->
  t ->
  Types.outcome
(** Runs the search.  The solver backtracks to level 0 afterwards and can
    be reused incrementally: learned clauses persist across calls.

    [max_conflicts] / [max_decisions] bound {e this call only} — they are
    measured from the call's starting counters, unlike the lifetime
    budgets in {!Types.config}.  A budgeted call returns
    [Unknown "budget"] and leaves the solver reusable. *)

val stats : t -> Types.stats
(** Cumulative across [solve] calls; snapshot with {!Types.copy_stats}
    and scope per call with {!Types.diff_stats}. *)

val prune_learnts :
  t ->
  keep:(lbd:int -> size:int -> lits:Cnf.Lit.t array -> bool) ->
  unit
(** Applies a retention policy to the learned-clause database (legal only
    between [solve] calls): clauses for which [keep] returns [false] are
    deleted, except clauses currently locked as propagation reasons.
    [lits] is the solver's internal array — do not mutate it. *)

val value : t -> Cnf.Lit.t -> int
(** Current assignment of a literal: 1 true, 0 false, -1 unassigned.
    Intended for plugins during search. *)

val value_var : t -> int -> int

val decision_level : t -> int

val learned_clauses : t -> Cnf.Clause.t list
(** The currently recorded (non-deleted) learned clauses — each an
    implicate of the original formula. *)

val proof : t -> Types.proof_step list
(** The DRAT proof stream in emission order (requires
    [config.proof_logging]).  [Add] steps are learned or vivified
    clauses, each reverse-unit-propagation derivable from the clauses
    active when it appears; [Delete] steps record clause-database
    reductions, learnt-clause subsumption, and inprocessing rewrites.
    Clauses accepted through {!import_clause} are {e not} recorded, so
    proofs from clause-sharing runs are incomplete — proof-producing
    configurations must run a single sequential solver.  See
    {!module:Proof} and [docs/PROOFS.md]. *)

val check_watches : t -> (unit, string) result
(** Debug-only invariant checker (O(clauses × watch-list length) — never
    call it on a hot path): verifies that every undeleted clause of
    length ≥ 2 is watched on exactly its first two literals, once in each
    list; that every watcher entry's blocking literal belongs to its
    clause; and that tombstone entries left by lazy deletion agree with
    the solver's dead-watcher count.  [Error msg] describes the first
    violation found.  Legal at any decision level. *)

val last_partial_assignment : t -> int array option
(** Snapshot of the variable assignment (1/0/-1) at the moment the last
    [solve] declared satisfiability — before the automatic backtrack.
    With an early-terminating plugin this exposes the don't-cares of the
    computed solution (overspecification analysis, Sec. 5). *)

(** {2 Lookahead probing}

    Primitives for march-style lookahead ({!module:Cube}): drive the
    watcher-based propagator one literal at a time, measure the
    propagation it causes, and undo it.  Probing never learns clauses,
    never touches the branching heuristic and never counts conflicts —
    its cost is pure propagation work.  Legal only between [solve]
    calls; the prober owns the solver's decision levels. *)

type probe =
  | Probe_conflict
      (** the probed literal is a {e failed literal}: under the current
          prefix its negation is implied.  The scratch level has already
          been popped. *)
  | Probe_ok of int * int
      (** [Probe_ok (i, j)] — propagation reached a fixpoint; the newly
          implied literals occupy trail positions [i .. j-1] (read them
          with {!trail_get} {e before} {!probe_pop}). *)

val trail_size : t -> int
(** Number of currently assigned literals.  Equal to {!nvars} exactly
    when the assignment is total — propagation fixpoint without conflict
    on a total assignment is a model. *)

val trail_get : t -> int -> Cnf.Lit.t
(** The [i]-th literal of the trail, in assignment order. *)

val consistent : t -> bool
(** [false] once the formula has been refuted at level 0 (by
    {!add_clause}, {!propagate_root} or a root {!probe_assert}).  All
    probing must stop then: the instance is unsatisfiable. *)

val propagate_root : t -> bool
(** Propagates pending level-0 units to fixpoint (must be called before
    the first probe).  Returns {!consistent}. *)

val probe_push : t -> Cnf.Lit.t -> probe
(** Opens a scratch decision level, asserts the literal and propagates.
    On [Probe_ok] the level stays open — either recurse deeper (the
    literal becomes a cube decision) or {!probe_pop} to undo the probe.
    On [Probe_conflict] the level is popped automatically.  An
    already-true literal yields an empty [Probe_ok] span; an
    already-false one yields [Probe_conflict]. *)

val probe_pop : t -> unit
(** Undoes the most recent open {!probe_push} level (no-op at level 0). *)

val probe_assert : t -> Cnf.Lit.t -> bool
(** Asserts a literal {e at the current level} and propagates — the
    fold-back step for failed literals.  At level 0 the assertion is a
    permanent unit.  Returns [false] on conflict: at level 0 this
    refutes the formula ({!consistent} becomes [false]); above level 0
    the caller must abandon the current prefix ({!probe_pop} through its
    levels) — the trail above the last consistent level is poisoned. *)

val var_activity : t -> int -> float
(** The VSIDS activity of a variable — lets a conquer scheduler split a
    too-hard cube on the variable its search fought over most. *)
