(** Struct-of-arrays watcher lists for two-literal watching.

    Each entry pairs a {e blocking literal} with a clause reference — an
    index into the solver's clause table — stored as two parallel flat
    [int array]s rather than an array of boxed tuples.  When the blocker
    is already true the clause is satisfied and the propagation loop
    skips the clause dereference entirely (the MiniSat 2.2 / Glucose
    watcher layout); and because both payloads are unboxed integers, no
    store into a watch list ever invokes the GC write barrier. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool

val push : t -> int -> int -> unit
(** [push w blocker cref] appends an entry. *)

val blocker : t -> int -> int
val cref : t -> int -> int

val unsafe_blocker : t -> int -> int
(** No bounds check; the caller must prove [0 <= i < size]. *)

val unsafe_cref : t -> int -> int
val unsafe_set : t -> int -> int -> int -> unit

val raw_blockers : t -> int array
(** The backing blocker array.  Invalidated by growth ([push] past
    capacity); only borrow it across code that cannot grow this list. *)

val raw_crefs : t -> int array

val shrink : t -> int -> unit
(** Truncates to the first [n] entries. *)

val clear : t -> unit
val iter : (int -> int -> unit) -> t -> unit

val filter_in_place : (int -> bool) -> t -> unit
(** Keeps only entries whose clause reference satisfies the predicate,
    preserving order — the watch-list compaction primitive. *)
