(* Per-instance auto-tuning: cheap syntactic + probe-measured features,
   and a transparent rule-based selector mapping them to a solving
   policy.

   Everything here is a published contract: the feature formulas and
   the decision table are specified in docs/TUNING.md and pinned by
   test/test_guide.ml.  Keep the three in sync — the whole point of a
   rule-based selector (rather than a learned one) is that a user can
   read the table, predict the policy, and file a bug when the solver
   disagrees. *)

type features = {
  nvars : int;
  nclauses : int;
  clause_var_ratio : float;
  binary_frac : float;
  ternary_frac : float;
  horn_frac : float;
  gate_like_frac : float;
  probe_density : float;
  probe_failed_frac : float;
  probes_run : int;
  extraction_time_s : float;
}

type engine_choice =
  | Sequential
  | Portfolio_race of int
  | Cube_conquer of int

type preprocess_level = Pre_off | Pre_basic | Pre_full

type policy = {
  engine : engine_choice;
  preprocess : preprocess_level;
  restarts : Types.restart_policy;
  inprocessing : bool;
  guided : bool;
  reason : string list;
}

(* --- feature extraction --------------------------------------------------- *)

(* Gate-shape test (docs/TUNING.md "gate_like_frac"): variable [v] is
   gate-shaped when its occurrence profile matches a Tseitin AND/OR
   output, i.e. the clause set contains the two binary implication
   clauses plus the ternary closing clause of o = a AND b:
   (-o a)(-o b)(o -a -b).  Either polarity orientation counts. *)
let gate_shaped ~bin_pos ~bin_neg ~ter_pos ~ter_neg v =
  (bin_neg.(v) >= 2 && ter_pos.(v) >= 1)
  || (bin_pos.(v) >= 2 && ter_neg.(v) >= 1)

(* Probe density (docs/TUNING.md "probe_density"): over the
   [min probes n] highest-occurrence variables (ties broken toward the
   lower index), push the positive literal through the propagator and
   measure trail growth; the feature is the mean growth per
   non-conflicting probe, divided by the variable count.  Probing never
   learns or counts conflicts, so extraction is pure propagation work. *)
let probe_density_of f ~occ ~probes =
  let n = Cnf.Formula.nvars f in
  if probes <= 0 || n = 0 then (0.0, 0.0, 0)
  else begin
    let s = Cdcl.create f in
    if not (Cdcl.propagate_root s) then (0.0, 1.0, 0)
    else begin
      let order = Array.init n (fun v -> v) in
      Array.sort
        (fun a b ->
           if occ.(a) <> occ.(b) then compare occ.(b) occ.(a)
           else compare a b)
        order;
      let k = min probes n in
      let growth = ref 0 and ok = ref 0 and failed = ref 0 in
      (try
         for i = 0 to k - 1 do
           if not (Cdcl.consistent s) then raise Exit;
           match Cdcl.probe_push s (Cnf.Lit.pos order.(i)) with
           | Cdcl.Probe_conflict -> incr failed
           | Cdcl.Probe_ok (lo, hi) ->
             growth := !growth + (hi - lo);
             incr ok;
             Cdcl.probe_pop s
         done
       with Exit -> ());
      let probed = !ok + !failed in
      let d =
        if !ok = 0 then 0.0
        else float_of_int !growth /. float_of_int !ok /. float_of_int n
      in
      let ff =
        if probed = 0 then 0.0
        else float_of_int !failed /. float_of_int probed
      in
      (d, ff, probed)
    end
  end

let extract ?(probes = 32) f =
  let t0 = Monotime.now_s () in
  let n = Cnf.Formula.nvars f and m = Cnf.Formula.nclauses f in
  let occ = Array.make (max n 1) 0 in
  let bin_pos = Array.make (max n 1) 0
  and bin_neg = Array.make (max n 1) 0
  and ter_pos = Array.make (max n 1) 0
  and ter_neg = Array.make (max n 1) 0 in
  let bin = ref 0 and ter = ref 0 and horn = ref 0 in
  Cnf.Formula.iter_clauses f (fun c ->
      let len = Cnf.Clause.size c in
      if len = 2 then incr bin;
      if len = 3 then incr ter;
      let pos_lits = ref 0 in
      List.iter
        (fun l ->
           let v = Cnf.Lit.var l in
           if v < n then begin
             occ.(v) <- occ.(v) + 1;
             if Cnf.Lit.is_pos l then begin
               incr pos_lits;
               if len = 2 then bin_pos.(v) <- bin_pos.(v) + 1;
               if len = 3 then ter_pos.(v) <- ter_pos.(v) + 1
             end
             else begin
               if len = 2 then bin_neg.(v) <- bin_neg.(v) + 1;
               if len = 3 then ter_neg.(v) <- ter_neg.(v) + 1
             end
           end)
        (Cnf.Clause.to_list c);
      if !pos_lits <= 1 then incr horn);
  let gate_like = ref 0 in
  for v = 0 to n - 1 do
    if gate_shaped ~bin_pos ~bin_neg ~ter_pos ~ter_neg v then incr gate_like
  done;
  let fm = float_of_int (max 1 m) in
  let probe_density, probe_failed_frac, probes_run =
    probe_density_of f ~occ ~probes
  in
  {
    nvars = n;
    nclauses = m;
    clause_var_ratio = float_of_int m /. float_of_int (max 1 n);
    binary_frac = float_of_int !bin /. fm;
    ternary_frac = float_of_int !ter /. fm;
    horn_frac = float_of_int !horn /. fm;
    gate_like_frac = float_of_int !gate_like /. float_of_int (max 1 n);
    probe_density;
    probe_failed_frac;
    probes_run;
    extraction_time_s = Monotime.now_s () -. t0;
  }

(* --- the selector --------------------------------------------------------- *)

(* The decision table (docs/TUNING.md "Selector decision table").  Each
   dimension fires exactly one rule; [reason] records the fired ids in
   order engine, preprocess, restarts, inprocessing, guidance. *)
let select ?(jobs = 1) (ft : features) =
  let fired = ref [] in
  let fire id v = fired := id :: !fired; v in
  let g = ft.gate_like_frac in
  let engine =
    if jobs <= 1 then fire "E1" Sequential
    else if ft.probe_density >= 0.02 && ft.nvars >= 64 then
      fire "E2" (Cube_conquer jobs)
    else fire "E3" (Portfolio_race jobs)
  in
  let preprocess =
    if ft.nclauses < 200 then fire "P1" Pre_off
    else if g >= 0.25 then fire "P2" Pre_full
    else fire "P3" Pre_basic
  in
  let restarts =
    if g >= 0.25 then fire "R1" (Types.Luby 100)
    else if ft.clause_var_ratio >= 3.5 && ft.ternary_frac >= 0.5 then
      fire "R2" (Types.Luby 512)
    else fire "R3" (Types.Luby 100)
  in
  let inprocessing =
    if ft.nclauses >= 2000 then fire "I1" true else fire "I0" false
  in
  let guided = if g >= 0.25 then fire "G1" true else fire "G0" false in
  { engine; preprocess; restarts; inprocessing; guided; reason = List.rev !fired }

(* --- rendering and metrics ----------------------------------------------- *)

let engine_label = function
  | Sequential -> "cdcl"
  | Portfolio_race j -> Printf.sprintf "portfolio(%d)" j
  | Cube_conquer j -> Printf.sprintf "cube-conquer(%d)" j

let preprocess_label = function
  | Pre_off -> "off"
  | Pre_basic -> "basic"
  | Pre_full -> "full"

let restarts_label = function
  | Types.No_restarts -> "none"
  | Types.Luby b -> Printf.sprintf "luby(%d)" b
  | Types.Geometric (b, f) -> Printf.sprintf "geometric(%d,%.2f)" b f

let feature_fields ft =
  [
    ("nvars", float_of_int ft.nvars);
    ("nclauses", float_of_int ft.nclauses);
    ("clause_var_ratio", ft.clause_var_ratio);
    ("binary_frac", ft.binary_frac);
    ("ternary_frac", ft.ternary_frac);
    ("horn_frac", ft.horn_frac);
    ("gate_like_frac", ft.gate_like_frac);
    ("probe_density", ft.probe_density);
    ("probe_failed_frac", ft.probe_failed_frac);
    ("probes_run", float_of_int ft.probes_run);
    ("extraction_time_s", ft.extraction_time_s);
  ]

let pp_features ppf ft =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s=%g@ " k v)
    (feature_fields ft)

let pp_policy ppf p =
  Format.fprintf ppf
    "engine=%s@ preprocess=%s@ restarts=%s@ inprocessing=%b@ guided=%b@ \
     rules=%s"
    (engine_label p.engine)
    (preprocess_label p.preprocess)
    (restarts_label p.restarts)
    p.inprocessing p.guided
    (String.concat "," p.reason)

let emit_metrics reg ft p =
  Metrics.incr (Metrics.counter reg "autotune/runs");
  Metrics.set_gauge
    (Metrics.gauge reg "autotune/clause_var_ratio")
    ft.clause_var_ratio;
  Metrics.set_gauge
    (Metrics.gauge reg "autotune/gate_like_frac")
    ft.gate_like_frac;
  Metrics.set_gauge (Metrics.gauge reg "autotune/probe_density") ft.probe_density;
  Metrics.set_gauge
    (Metrics.gauge reg "autotune/extraction_seconds")
    ft.extraction_time_s;
  let engine_counter =
    match p.engine with
    | Sequential -> "autotune/engine_cdcl"
    | Portfolio_race _ -> "autotune/engine_portfolio"
    | Cube_conquer _ -> "autotune/engine_cube"
  in
  Metrics.incr (Metrics.counter reg engine_counter);
  if p.guided then Metrics.incr (Metrics.counter reg "autotune/guided")
