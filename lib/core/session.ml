(* Incremental solving sessions over a single long-lived CDCL solver.
   See session.mli for the contract. *)

module Lit = Cnf.Lit

type retention =
  | Keep_all
  | Drop_released
  | Keep_lbd of int

type activation_state = Active | Released

(* per-query observability bundle; see [attach_metrics] *)
type obs = {
  reg : Metrics.t;
  q_count : Metrics.counter;
  q_time : Metrics.histogram;
}

type t = {
  cdcl : Cdcl.t;
  activations : (int, activation_state) Hashtbl.t; (* activation var -> state *)
  mutable retention : retention;
  mutable queries : int;
  mutable last : Types.stats;
  mutable cached_model : bool array option;
  mutable released_dirty : bool;
      (* a release happened since the last retention pass *)
  mutable obs : obs option;
}

let create ?(config = Types.default) ?(retention = Drop_released) () =
  {
    cdcl = Cdcl.create ~config (Cnf.Formula.create ());
    activations = Hashtbl.create 16;
    retention;
    queries = 0;
    last = Types.mk_stats ();
    cached_model = None;
    released_dirty = false;
    obs = None;
  }

let of_formula ?(config = Types.default) ?(retention = Drop_released) f =
  {
    cdcl = Cdcl.create ~config f;
    activations = Hashtbl.create 16;
    retention;
    queries = 0;
    last = Types.mk_stats ();
    cached_model = None;
    released_dirty = false;
    obs = None;
  }

let set_retention t r = t.retention <- r
let interrupt t = Cdcl.interrupt t.cdcl
let interrupt_requested t = Cdcl.interrupt_requested t.cdcl
let clear_interrupt t = Cdcl.clear_interrupt t.cdcl
let nvars t = Cdcl.nvars t.cdcl
let new_var t = Cdcl.new_var t.cdcl
let apply_guidance t g = Cdcl.apply_guidance t.cdcl g
let raw t = t.cdcl
let queries t = t.queries
let last_stats t = t.last
let cumulative_stats t = Types.copy_stats (Cdcl.stats t.cdcl)
let model t = t.cached_model

(* --- observability -------------------------------------------------------- *)

let attach_metrics t m =
  Cdcl.set_instruments t.cdcl (Some (Metrics.solver_instruments m));
  Cdcl.set_metrics t.cdcl (Some m);
  t.obs <-
    Some
      {
        reg = m;
        q_count = Metrics.counter m "session/queries";
        q_time =
          Metrics.histogram m "session/query_time_s"
            ~bounds:Metrics.time_bounds;
      }

let metrics t = Option.map (fun o -> o.reg) t.obs
let set_tracer t tr = Cdcl.set_tracer t.cdcl tr

let add_clause t lits =
  t.cached_model <- None;
  Cdcl.add_clause t.cdcl lits

let add_formula t f =
  Cnf.Formula.iter_clauses f (fun c -> add_clause t (Cnf.Clause.to_list c))

(* --- activation groups --------------------------------------------------- *)

let new_activation t =
  let v = Cdcl.new_var t.cdcl in
  Hashtbl.replace t.activations v Active;
  Lit.pos v

let check_active t a name =
  match Hashtbl.find_opt t.activations (Lit.var a) with
  | Some Active when Lit.is_pos a -> ()
  | Some Active | Some Released | None ->
    invalid_arg (name ^ ": not a live activation literal of this session")

let add_clause_in t ~group lits =
  check_active t group "Session.add_clause_in";
  add_clause t (Lit.negate group :: lits)

let is_active t a =
  Lit.is_pos a && Hashtbl.find_opt t.activations (Lit.var a) = Some Active

let release t a =
  match Hashtbl.find_opt t.activations (Lit.var a) with
  | Some Released -> ()
  | Some Active ->
    Hashtbl.replace t.activations (Lit.var a) Released;
    t.released_dirty <- true;
    add_clause t [ Lit.negate a ]
  | None -> invalid_arg "Session.release: not an activation literal"

(* --- between-query retention --------------------------------------------- *)

let mentions_released t lits =
  Array.exists
    (fun l -> Hashtbl.find_opt t.activations (Lit.var l) = Some Released)
    lits

let apply_retention t =
  match t.retention with
  | Keep_all -> ()
  | Drop_released ->
    (* cheap fast path: nothing released since the last pass *)
    if t.released_dirty then begin
      Cdcl.prune_learnts t.cdcl ~keep:(fun ~lbd:_ ~size:_ ~lits ->
          not (mentions_released t lits));
      t.released_dirty <- false
    end
  | Keep_lbd bound ->
    Cdcl.prune_learnts t.cdcl ~keep:(fun ~lbd ~size:_ ~lits ->
        lbd <= bound && not (mentions_released t lits));
    t.released_dirty <- false

(* --- queries -------------------------------------------------------------- *)

let solve ?(assumptions = []) ?max_conflicts ?max_decisions t =
  if t.queries > 0 then apply_retention t;
  let before = Types.copy_stats (Cdcl.stats t.cdcl) in
  let t0 = match t.obs with Some _ -> Monotime.now_s () | None -> 0. in
  let outcome = Cdcl.solve ~assumptions ?max_conflicts ?max_decisions t.cdcl in
  t.queries <- t.queries + 1;
  t.last <- Types.diff_stats (Cdcl.stats t.cdcl) before;
  (match t.obs with
   | Some o ->
     Metrics.incr o.q_count;
     Metrics.observe o.q_time (Monotime.now_s () -. t0);
     (* per-query deltas {e add} into the registry, so metrics stay
        correct even when a caller runs many short-lived sessions
        against one registry (e.g. BMC in from-scratch mode) *)
     Metrics.add_stats o.reg t.last
   | None -> ());
  t.cached_model <-
    (match outcome with Types.Sat m -> Some m | _ -> None);
  outcome

(* Core-driven assumption minimization: shrink an assumption set to a
   (locally) minimal subset still refuted by the formula.  Each query's
   [Unsat_assuming] core prunes the candidate set; a destructive pass
   then tries dropping each surviving literal once. *)
let minimize_assumptions ?(max_rounds = 4) ?max_conflicts t assumptions =
  let solve_with asms = solve ~assumptions:asms ?max_conflicts t in
  match solve_with assumptions with
  | Types.Sat _ | Types.Unknown _ -> None
  | Types.Unsat -> Some []
  | Types.Unsat_assuming core ->
    (* fixpoint: re-solving under the core alone often yields a smaller
       core, because the search is no longer steered by the dropped
       assumptions *)
    let rec fixpoint rounds core =
      if rounds <= 0 || core = [] then core
      else
        match solve_with core with
        | Types.Unsat -> []
        | Types.Unsat_assuming c when List.length c < List.length core ->
          fixpoint (rounds - 1) c
        | _ -> core
    in
    let core = fixpoint max_rounds core in
    (* destructive pass: drop one literal at a time; keep it when the
       query turns SAT (or exhausts its budget) without it *)
    let rec shrink kept = function
      | [] -> kept
      | l :: rest -> (
        match solve_with (List.rev_append kept rest) with
        | Types.Unsat -> []
        | Types.Unsat_assuming c ->
          shrink
            (List.filter (fun k -> List.mem k c) kept)
            (List.filter (fun r -> List.mem r c) rest)
        | Types.Sat _ | Types.Unknown _ -> shrink (l :: kept) rest)
    in
    let final = shrink [] core in
    Some (List.filter (fun l -> List.mem l final) assumptions)
