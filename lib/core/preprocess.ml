module Lit = Cnf.Lit
module Clause = Cnf.Clause

type stats = {
  mutable units : int;
  mutable pures : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_literals : int;
  mutable rounds : int;
}

type simplified = {
  formula : Cnf.Formula.t;
  fix : (int * bool) list;
  stats : stats;
}

type result = Unsat | Simplified of simplified

exception Found_unsat

type state = {
  nvars : int;
  mutable clauses : Clause.t list;
  assign : int array; (* var -> -1/0/1 *)
  mutable fix : (int * bool) list;
  st : stats;
}

let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let fix_lit s reason l =
  let v = Lit.var l in
  match lit_value s l with
  | 1 -> ()
  | 0 -> raise Found_unsat
  | _ ->
    s.assign.(v) <- (if Lit.is_pos l then 1 else 0);
    s.fix <- (v, Lit.is_pos l) :: s.fix;
    (match reason with
     | `Unit -> s.st.units <- s.st.units + 1
     | `Pure -> s.st.pures <- s.st.pures + 1
     | `Failed -> s.st.failed_literals <- s.st.failed_literals + 1)

(* Remove satisfied clauses and false literals; fix unit clauses.
   Returns true when anything changed. *)
let simplify_clauses s =
  let changed = ref false in
  let rec stable () =
    let local = ref false in
    let keep c =
      let lits = Clause.to_list c in
      if List.exists (fun l -> lit_value s l = 1) lits then begin
        local := true;
        None
      end
      else
        let free = List.filter (fun l -> lit_value s l <> 0) lits in
        match free with
        | [] -> raise Found_unsat
        | [ l ] ->
          fix_lit s `Unit l;
          local := true;
          None
        | _ ->
          if List.length free < List.length lits then local := true;
          Some (Clause.of_list free)
    in
    s.clauses <- List.filter_map keep s.clauses;
    if !local then begin
      changed := true;
      stable ()
    end
  in
  stable ();
  !changed

let pure_literals s =
  let occ = Array.make (2 * max 1 s.nvars) 0 in
  List.iter
    (fun c -> List.iter (fun l -> occ.(l) <- occ.(l) + 1) (Clause.to_list c))
    s.clauses;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 then begin
      let p = occ.(Lit.pos v) and q = occ.(Lit.neg_of_var v) in
      if p > 0 && q = 0 then begin
        fix_lit s `Pure (Lit.pos v);
        changed := true
      end
      else if q > 0 && p = 0 then begin
        fix_lit s `Pure (Lit.neg_of_var v);
        changed := true
      end
    end
  done;
  !changed

let occurrence_table s =
  let occ = Array.make (2 * max 1 s.nvars) [] in
  List.iteri
    (fun ci c -> List.iter (fun l -> occ.(l) <- ci :: occ.(l)) (Clause.to_list c))
    s.clauses;
  occ

let subsume_pass s =
  let arr = Array.of_list s.clauses in
  let alive = Array.make (Array.length arr) true in
  let occ = occurrence_table s in
  let changed = ref false in
  Array.iteri
    (fun ci c ->
       if alive.(ci) then begin
         (* candidates share c's rarest literal *)
         let rare =
           Clause.to_list c
           |> List.fold_left
                (fun best l ->
                   match best with
                   | Some b when List.length occ.(b) <= List.length occ.(l) -> best
                   | Some _ | None -> Some l)
                None
         in
         match rare with
         | None -> ()
         | Some l ->
           List.iter
             (fun cj ->
                if cj <> ci && alive.(cj) && Clause.size c <= Clause.size arr.(cj)
                   && Clause.subsumes c arr.(cj)
                then begin
                  alive.(cj) <- false;
                  s.st.subsumed <- s.st.subsumed + 1;
                  changed := true
                end)
             occ.(l)
       end)
    arr;
  s.clauses <-
    Array.to_list arr
    |> List.filteri (fun i _ -> alive.(i));
  !changed

(* self-subsuming resolution: if d contains (c \ {l}) and ~l, drop ~l
   from d — the resolvent of c and d on l strengthens d *)
let strengthen_pass s =
  let arr = Array.of_list s.clauses |> Array.map (fun c -> ref c) in
  let occ = Array.make (2 * max 1 s.nvars) [] in
  Array.iteri
    (fun ci rc ->
       List.iter (fun l -> occ.(l) <- ci :: occ.(l)) (Clause.to_list !rc))
    arr;
  let changed = ref false in
  Array.iteri
    (fun ci rc ->
       List.iter
         (fun l ->
            let rest =
              List.filter (fun m -> not (Lit.equal m l)) (Clause.to_list !rc)
            in
            List.iter
              (fun cj ->
                 if cj <> ci then begin
                   let d = !(arr.(cj)) in
                   if Clause.mem (Lit.negate l) d
                      && List.for_all (fun m -> Clause.mem m d) rest
                   then begin
                     let d' =
                       Clause.of_list
                         (List.filter
                            (fun m -> not (Lit.equal m (Lit.negate l)))
                            (Clause.to_list d))
                     in
                     arr.(cj) := d';
                     s.st.strengthened <- s.st.strengthened + 1;
                     changed := true
                   end
                 end)
              occ.(Lit.negate l))
         (Clause.to_list !rc))
    arr;
  s.clauses <- Array.to_list arr |> List.map ( ! );
  !changed

let probe s =
  let f = Cnf.Formula.of_clauses ~nvars:s.nvars s.clauses in
  let bcp = Bcp.create f in
  if not (Bcp.is_consistent bcp) then raise Found_unsat;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && Bcp.value_var bcp v < 0 then begin
      let mark = Bcp.checkpoint bcp in
      let pos_ok =
        match Bcp.assume bcp (Lit.pos v) with
        | Some _ ->
          Bcp.backtrack bcp mark;
          true
        | None -> false
      in
      let neg_ok =
        match Bcp.assume bcp (Lit.neg_of_var v) with
        | Some _ ->
          Bcp.backtrack bcp mark;
          true
        | None -> false
      in
      match pos_ok, neg_ok with
      | false, false -> raise Found_unsat
      | false, true ->
        fix_lit s `Failed (Lit.neg_of_var v);
        ignore (Bcp.add_unit bcp (Lit.neg_of_var v));
        if not (Bcp.is_consistent bcp) then raise Found_unsat;
        changed := true
      | true, false ->
        fix_lit s `Failed (Lit.pos v);
        ignore (Bcp.add_unit bcp (Lit.pos v));
        if not (Bcp.is_consistent bcp) then raise Found_unsat;
        changed := true
      | true, true -> ()
    end
  done;
  !changed

let run ?(subsumption = true) ?(strengthen = true) ?(pures = true)
    ?(probe_failed_literals = false) f =
  let st =
    { units = 0; pures = 0; subsumed = 0; strengthened = 0;
      failed_literals = 0; rounds = 0 }
  in
  let s =
    {
      nvars = Cnf.Formula.nvars f;
      clauses = Array.to_list (Cnf.Formula.clauses f);
      assign = Array.make (max 1 (Cnf.Formula.nvars f)) (-1);
      fix = [];
      st;
    }
  in
  let subsumption_on = subsumption in
  try
    let continue = ref true in
    while !continue do
      st.rounds <- st.rounds + 1;
      let c1 = simplify_clauses s in
      let c2 = if pures then pure_literals s else false in
      let c3 = if subsumption_on then subsume_pass s else false in
      let c4 = if strengthen then strengthen_pass s else false in
      let c5 = if probe_failed_literals then probe s else false in
      continue := (c1 || c2 || c3 || c4 || c5) && st.rounds < 20
    done;
    Simplified
      {
        formula = Cnf.Formula.of_clauses ~nvars:s.nvars s.clauses;
        fix = List.rev s.fix;
        stats = st;
      }
  with Found_unsat -> Unsat

let complete_model (simp : simplified) model =
  let m = Array.copy model in
  List.iter (fun (v, b) -> m.(v) <- b) simp.fix;
  m
